(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (E1-E13, see DESIGN.md) and times the key analysis and
   allocation kernels with Bechamel — one Test.make per table/figure group.

   Usage:
     dune exec bench/main.exe             # the paper's full 3 x 3 protocol
     dune exec bench/main.exe -- --quick  # 1 sequence x 1 architecture
     dune exec bench/main.exe -- --no-bechamel  # tables only
     dune exec bench/main.exe -- --jobs N # fan the independent table cells
                                          # out over N domains (0 = number
                                          # of cores); tables identical
     dune exec bench/main.exe -- --metrics FILE # export the telemetry
                                                # registry of the table runs
                                                # as JSON (correlates wall
                                                # clock with states explored) *)

open Bechamel
open Bechamel.Toolkit

module Models = Appmodel.Models

(* --------------------------- Bechamel timers ----------------------- *)

(* One micro-benchmark per experiment group, measuring its computational
   kernel on a fixed workload. *)
let bechamel_tests () =
  let example_app = Models.example_app () in
  let example_arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app:example_app ~arch:example_arch ~binding
      ~slices:[| 5; 5 |] ()
  in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let h263 = Models.h263 () in
  let h263_gamma = Appmodel.Appgraph.gamma h263 in
  let h263_taus =
    Array.init 4 (fun a -> Appmodel.Appgraph.max_exec_time h263 a)
  in
  let bench_app = List.hd (Gen.Benchsets.sequence ~set:4 ~seq:0 ~count:1) in
  let bench_arch = Gen.Benchsets.architecture 0 in
  [
    (* E1: the two throughput-analysis routes. *)
    Test.make ~name:"E1-selftimed-h263"
      (Staged.stage (fun () ->
           Analysis.Selftimed.analyze h263.Appmodel.Appgraph.graph h263_taus));
    Test.make ~name:"E1-hsdf-convert-h263"
      (Staged.stage (fun () ->
           Sdf.Hsdf.convert h263.Appmodel.Appgraph.graph h263_gamma));
    (* E5: the constrained state-space exploration. *)
    Test.make ~name:"E5-constrained-example"
      (Staged.stage (fun () -> Core.Constrained.analyze ba ~schedules));
    (* E6: schedule construction. *)
    Test.make ~name:"E6-list-scheduler"
      (Staged.stage (fun () -> Core.List_scheduler.schedules ba));
    (* E7: one binding step. *)
    Test.make ~name:"E7-binding-step"
      (Staged.stage (fun () ->
           Core.Binding_step.bind
             ~weights:(Core.Cost.weights 1. 1. 1.)
             example_app example_arch));
    (* E8: one full strategy run on a generated graph. *)
    Test.make ~name:"E8-strategy-generated"
      (Staged.stage (fun () ->
           Core.Strategy.allocate ~max_states:200_000
             ~weights:(Core.Cost.weights 0. 1. 2.)
             bench_app bench_arch));
    (* E9/E10 share E8's kernel; E11's kernel at example scale: *)
    Test.make ~name:"E11-slice-allocation"
      (Staged.stage (fun () ->
           let scheds = Core.List_scheduler.schedules ba in
           Core.Slice_alloc.allocate example_app example_arch binding scheds));
    (* E12: MCR on a mid-size expansion. *)
    Test.make ~name:"E12-mcr-expanded"
      (Staged.stage
         (let g =
            Sdf.Sdfg.of_lists ~actors:[ "a"; "b"; "c" ]
              ~channels:
                [ ("a", "b", 50, 1, 0); ("b", "c", 1, 50, 0); ("c", "a", 1, 1, 1) ]
          in
          let gamma = Sdf.Repetition.vector_exn g in
          let h = Sdf.Hsdf.convert g gamma in
          let taus = Sdf.Hsdf.timing h [| 9; 2; 7 |] in
          fun () -> Analysis.Mcr.max_cycle_ratio h.Sdf.Hsdf.graph taus));
    (* E13: the inflation-model analysis. *)
    Test.make ~name:"E13-tdma-inflation"
      (Staged.stage (fun () -> Core.Tdma_inflation.throughput ba ~schedules));
  ]

let run_bechamel () =
  Tables.section "TIMERS" "Bechamel micro-benchmarks (ns per run, OLS fit)";
  let tests = Test.make_grouped ~name:"sdfalloc" (bechamel_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (v :: _) -> v
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-36s %16s\n" "benchmark" "time per run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-36s %16s\n" name human)
    rows

(* ------------------------------- main ------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let with_bechamel = not (List.mem "--no-bechamel" argv) in
  let metrics_file =
    let rec find = function
      | "--metrics" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> (
          match int_of_string_opt n with
          | Some n -> n
          | None ->
              Printf.eprintf "--jobs expects an integer, got %S\n" n;
              exit 2)
      | _ :: rest -> find rest
      | [] -> 1
    in
    find argv
  in
  Par.set_jobs jobs;
  if metrics_file <> None then Obs.set_enabled true;
  let seqs = if quick then [ 0 ] else [ 0; 1; 2 ] in
  let archs = if quick then [ 0 ] else [ 0; 1; 2 ] in
  Printf.printf
    "Reproduction harness: Stuijk et al., 'Multiprocessor Resource \
     Allocation\nfor Throughput-Constrained Synchronous Dataflow Graphs', \
     DAC 2007.\nScale: %d sequence(s) x %d architecture(s)%s\n"
    (List.length seqs) (List.length archs)
    (if quick then " (--quick)" else " (the paper's full protocol)");
  Tables.e2_e3_example_models ();
  Tables.e4_binding_aware ();
  Tables.e5_statespaces ();
  Tables.e6_list_scheduler ();
  Tables.e7_table3 ();
  Tables.e1_h263_hsdf ();
  Tables.e12_baseline_sweep ();
  Tables.e21_hsdf_allocation ();
  Tables.e13_tdma_ablation ();
  Tables.e14_protocol_improvements ();
  Tables.e15_buffer_tradeoff ();
  Tables.e16_connection_models ();
  Tables.e17_sync_models ();
  Tables.e18_dimensioning ();
  Tables.e19_csdf_lumping ();
  Tables.e20_criticality_validation ();
  Tables.e22_guarantee_validation ();
  Tables.e23_composition ();
  Tables.e11_multimedia ();
  Tables.e8_e9_e10 ~seqs ~archs ();
  (match metrics_file with
  | None -> ()
  | Some path ->
      (* [Par] is dependency-free; copy the pool's totals into counters so
         they appear in the exported registry. *)
      Obs.Counter.add "pool.jobs" (Par.jobs ());
      Obs.Counter.add "pool.tasks" (Par.tasks_executed ());
      Obs.Counter.add "pool.batches" (Par.batches_executed ());
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Obs.write_channel oc);
      Printf.printf "\ntelemetry registry of the table runs written to %s\n" path;
      (* The micro-benchmarks below must time the kernels with telemetry
         off, the configuration whose overhead we guarantee (< 2%). *)
      Obs.set_enabled false);
  if with_bechamel then begin
    (* The micro-benchmarks time the real analysis kernels: with the memo
       tables warm from the table runs every iteration after the first
       would be a lookup, so memoization is switched off here. *)
    Analysis.Memo.set_enabled false;
    run_bechamel ()
  end;
  print_newline ()
