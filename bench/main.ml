(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (E1-E13, see DESIGN.md) and times the key analysis and
   allocation kernels with Bechamel — one Test.make per table/figure group.

   Usage:
     dune exec bench/main.exe             # the paper's full 3 x 3 protocol
     dune exec bench/main.exe -- --quick  # 1 sequence x 1 architecture
     dune exec bench/main.exe -- --no-bechamel  # tables only
     dune exec bench/main.exe -- --jobs N # fan the independent table cells
                                          # out over N domains (0 = number
                                          # of cores); tables identical
     dune exec bench/main.exe -- --metrics FILE # export the telemetry
                                                # registry of the table runs
                                                # as JSON (correlates wall
                                                # clock with states explored)
     dune exec bench/main.exe -- --trace FILE # export a Chrome trace-event
                                                # timeline of the table runs
     dune exec bench/main.exe -- --explore-bench FILE # seed-vs-new state-
                                                # space engine comparison on
                                                # the E8-E10 grid, written
                                                # as JSON (BENCH_4.json) *)

open Bechamel
open Bechamel.Toolkit

module Models = Appmodel.Models

(* --------------------------- Bechamel timers ----------------------- *)

(* One micro-benchmark per experiment group, measuring its computational
   kernel on a fixed workload. *)
let bechamel_tests () =
  let example_app = Models.example_app () in
  let example_arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app:example_app ~arch:example_arch ~binding
      ~slices:[| 5; 5 |] ()
  in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let h263 = Models.h263 () in
  let h263_gamma = Appmodel.Appgraph.gamma h263 in
  let h263_taus =
    Array.init 4 (fun a -> Appmodel.Appgraph.max_exec_time h263 a)
  in
  let bench_app = List.hd (Gen.Benchsets.sequence ~set:4 ~seq:0 ~count:1) in
  let bench_arch = Gen.Benchsets.architecture 0 in
  [
    (* E1: the two throughput-analysis routes. *)
    Test.make ~name:"E1-selftimed-h263"
      (Staged.stage (fun () ->
           Analysis.Selftimed.analyze h263.Appmodel.Appgraph.graph h263_taus));
    Test.make ~name:"E1-hsdf-convert-h263"
      (Staged.stage (fun () ->
           Sdf.Hsdf.convert h263.Appmodel.Appgraph.graph h263_gamma));
    (* E5: the constrained state-space exploration. *)
    Test.make ~name:"E5-constrained-example"
      (Staged.stage (fun () -> Core.Constrained.analyze ba ~schedules));
    (* E6: schedule construction. *)
    Test.make ~name:"E6-list-scheduler"
      (Staged.stage (fun () -> Core.List_scheduler.schedules ba));
    (* E7: one binding step. *)
    Test.make ~name:"E7-binding-step"
      (Staged.stage (fun () ->
           Core.Binding_step.bind
             ~weights:(Core.Cost.weights 1. 1. 1.)
             example_app example_arch));
    (* E8: one full strategy run on a generated graph. *)
    Test.make ~name:"E8-strategy-generated"
      (Staged.stage (fun () ->
           Core.Strategy.allocate ~max_states:200_000
             ~weights:(Core.Cost.weights 0. 1. 2.)
             bench_app bench_arch));
    (* E9/E10 share E8's kernel; E11's kernel at example scale: *)
    Test.make ~name:"E11-slice-allocation"
      (Staged.stage (fun () ->
           let scheds = Core.List_scheduler.schedules ba in
           Core.Slice_alloc.allocate example_app example_arch binding scheds));
    (* E12: MCR on a mid-size expansion. *)
    Test.make ~name:"E12-mcr-expanded"
      (Staged.stage
         (let g =
            Sdf.Sdfg.of_lists ~actors:[ "a"; "b"; "c" ]
              ~channels:
                [ ("a", "b", 50, 1, 0); ("b", "c", 1, 50, 0); ("c", "a", 1, 1, 1) ]
          in
          let gamma = Sdf.Repetition.vector_exn g in
          let h = Sdf.Hsdf.convert g gamma in
          let taus = Sdf.Hsdf.timing h [| 9; 2; 7 |] in
          fun () -> Analysis.Mcr.max_cycle_ratio h.Sdf.Hsdf.graph taus));
    (* E13: the inflation-model analysis. *)
    Test.make ~name:"E13-tdma-inflation"
      (Staged.stage (fun () -> Core.Tdma_inflation.throughput ba ~schedules));
  ]

let run_bechamel () =
  Tables.section "TIMERS" "Bechamel micro-benchmarks (ns per run, OLS fit)";
  let tests = Test.make_grouped ~name:"sdfalloc" (bechamel_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (v :: _) -> v
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-36s %16s\n" "benchmark" "time per run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-36s %16s\n" name human)
    rows

(* ------------------ exploration engine microbenchmark --------------- *)

(* Seed-vs-new comparison of the state-space kernels on the E8-E10
   workload grid (benchmark sets 1-4, all three sequences): the packed
   engine ([Selftimed.analyze] / [Constrained.analyze], memoization off)
   against the retained Marshal/Hashtbl references kept as
   [analyze_reference]. Reports states per second on each side, packed
   bytes per state on the engine side, and the resulting speedup; the JSON
   written here is committed as BENCH_4.json. *)

module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph

let explore_max_states = 200_000

let selftimed_cases set =
  List.concat_map
    (fun seq ->
      Gen.Benchsets.sequence ~set ~seq ~count:40
      |> List.filter_map (fun (app : Appgraph.t) ->
             let g = app.Appgraph.graph in
             let taus =
               Array.init (Sdfg.num_actors g) (fun a ->
                   Appgraph.max_exec_time app a)
             in
             (* Keep the cases both engines complete: a deadlock or cap
                abort times exception unwinding, not exploration. *)
             match
               Analysis.Selftimed.analyze_reference
                 ~max_states:explore_max_states g taus
             with
             | (_ : Analysis.Selftimed.result) -> Some (g, taus)
             | exception Analysis.Selftimed.Deadlocked -> None
             | exception Analysis.Selftimed.State_space_exceeded _ -> None))
    [ 0; 1; 2 ]

(* Timed passes over a whole case list (repeated so each measurement spans
   tens of milliseconds); states are taken from the results so both
   engines are required to agree on the work done. *)
let explore_reps = 10

let sweep analyze cases =
  let states = ref 0 in
  (* Start from a compacted heap so a major GC triggered by the previous
     sweep's garbage is not billed to this one. *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to explore_reps do
    List.iter
      (fun (g, taus) ->
        let r = analyze ~max_states:explore_max_states g taus in
        states := !states + r.Analysis.Selftimed.states)
      cases
  done;
  (!states, Unix.gettimeofday () -. t0)

let arena_bytes () =
  match Obs.Gauge.value "engine.arena_bytes" with
  | Some b -> b
  | None -> 0.

let constrained_workloads () =
  (* One bindable application per benchmark set, bound and list-scheduled
     the way the allocation flow does it. *)
  let arch = Gen.Benchsets.architecture 0 in
  List.filter_map
    (fun set ->
      Gen.Benchsets.sequence ~set ~seq:0 ~count:10
      |> List.find_map (fun app ->
             match
               Core.Binding_step.bind
                 ~weights:(Core.Cost.weights 0. 1. 2.)
                 app arch
             with
             | Error _ -> None
             | Ok binding -> (
                 let slices =
                   Core.Bind_aware.half_wheel_slices app arch binding
                 in
                 let ba = Core.Bind_aware.build ~app ~arch ~binding ~slices () in
                 match
                   Core.List_scheduler.schedules
                     ~max_states:explore_max_states ba
                 with
                 | schedules -> (
                     match
                       Core.Constrained.analyze_reference
                         ~max_states:explore_max_states ba ~schedules
                     with
                     | (_ : Core.Constrained.result) -> Some (ba, schedules)
                     | exception _ -> None)
                 | exception _ -> None)))
    [ 1; 2; 3; 4 ]

let sweep_constrained analyze workloads =
  let states = ref 0 in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to explore_reps do
    List.iter
      (fun (ba, schedules) ->
        let r = analyze ~max_states:explore_max_states ba ~schedules in
        states := !states + r.Core.Constrained.states)
      workloads
  done;
  (!states, Unix.gettimeofday () -. t0)

(* ---------------------- domain-scaling sweep ------------------------ *)

(* The sharded frontier sweep ([Selftimed.analyze_parallel]) across 1, 2,
   4 and 8 domains on each workload set, plus a dedicated large-graph set
   whose per-case state spaces are deep enough for the pack/probe
   pipeline to matter (the E8-E10 grid cases are tiny — dozens of states
   — so their scaling rows mostly price the per-sweep setup).

   Every domain count must agree with the sequential engine on every
   result; the table reports states per second and parallel efficiency
   (st/s at d over d times st/s at 1). The [scaling-assert] line is the
   CI hook: on a >= 4-core machine the 4-domain large-set rate must be at
   least twice the 1-domain rate; on smaller machines it prints SKIP —
   a single-core container cannot measure parallel speedup. *)

let scaling_reps = 3
let scaling_domains = [ 1; 2; 4; 8 ]

(* Completing self-timed chains are short (the state spaces of consistent
   SDF graphs recur within a few dozen instants — the observation the
   exploration approach rests on), so a deep-chain workload is built from
   graphs that exceed a moderated state cap: each such case is exactly
   [large_max_states] states of pack/route/probe work on a big packed
   state (24-40 actors), the regime the sharded pipeline targets. *)
let large_max_states = 50_000

let large_profile =
  {
    (Gen.Benchsets.set_profile 1) with
    Gen.Sdfgen.p_name = "large";
    n_actors = (24, 40);
    max_rep = 6;
    tau = (4, 24);
    tau_spread = 0.9;
    extra_edge_prob = 0.1;
    self_loop_prob = 0.3;
  }

let large_cases () =
  let rng = Gen.Rng.create ~seed:7_368_787 in
  List.init 40 (fun i ->
      Gen.Sdfgen.generate (Gen.Rng.split rng) large_profile
        ~proc_types:Gen.Benchsets.proc_types
        ~name:(Printf.sprintf "large%d" i))
  |> List.filter_map (fun (app : Appgraph.t) ->
         let g = app.Appgraph.graph in
         let taus =
           Array.init (Sdfg.num_actors g) (fun a ->
               Appgraph.max_exec_time app a)
         in
         match
           Analysis.Selftimed.analyze ~max_states:large_max_states g taus
         with
         | (_ : Analysis.Selftimed.result) -> None
         | exception Analysis.Selftimed.Deadlocked -> None
         | exception Analysis.Selftimed.State_space_exceeded _ ->
             Some (g, taus))
  |> List.filteri (fun i _ -> i < 6)

(* A capped case still explores exactly [max_states] states before the
   abort — count them; both sides of the scaling comparison must agree on
   every outcome, checked by the caller via the state totals. *)
let sweep_parallel ~domains ~max_states cases =
  let states = ref 0 in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to scaling_reps do
    List.iter
      (fun (g, taus) ->
        match
          Analysis.Selftimed.analyze_parallel ~domains ~max_states g taus
        with
        | r -> states := !states + r.Analysis.Selftimed.states
        | exception Analysis.Selftimed.State_space_exceeded _ ->
            states := !states + max_states)
      cases
  done;
  (!states, Unix.gettimeofday () -. t0)

(* Hard determinism gate on the timed workload itself: the first case of
   the set is compared outcome by outcome across all domain counts, and
   the timed sweeps must visit identical state totals. *)
let assert_scaling_result name ~max_states (g, taus) =
  let outcome d =
    match
      Analysis.Selftimed.analyze_parallel ~domains:d ~max_states g taus
    with
    | r ->
        `Res
          ( r.Analysis.Selftimed.period,
            r.Analysis.Selftimed.iterations_per_period,
            r.Analysis.Selftimed.transient,
            r.Analysis.Selftimed.states )
    | exception Analysis.Selftimed.Deadlocked -> `Dead
    | exception Analysis.Selftimed.State_space_exceeded _ -> `Exceeded
  in
  let o1 = outcome 1 in
  List.iter
    (fun d ->
      if outcome d <> o1 then (
        Printf.eprintf
          "scaling: %s: %d-domain result diverges from sequential\n" name d;
        exit 1))
    (List.filter (fun d -> d > 1) scaling_domains)

let scaling_bench () =
  let per_sec states dt = float_of_int states /. Float.max dt 1e-9 in
  Printf.printf
    "\nDomain-scaling sweep (sharded frontier sweep, reps %d, max_states %d)\n\
     %-12s %8s %10s" scaling_reps explore_max_states "workload" "cases"
    "states";
  List.iter
    (fun d -> Printf.printf " %9s %5s" (Printf.sprintf "d=%d st/s" d) "eff")
    scaling_domains;
  print_newline ();
  (* The E8-E10 sets price the per-sweep setup on dozens-of-states chains
     (a quarter of each grid keeps the wall clock in check); the large
     set streams deep capped chains through the shards. *)
  let quarter cases = List.filteri (fun i _ -> i mod 4 = 0) cases in
  let sets =
    List.map
      (fun set ->
        ( Printf.sprintf "set%d" set,
          quarter (selftimed_cases set),
          explore_max_states ))
      [ 1; 2; 3; 4 ]
    @ [ ("large", large_cases (), large_max_states) ]
  in
  let large_rates = ref [] in
  let rows =
    List.map
      (fun (name, cases, max_states) ->
        (match cases with
        | c :: _ -> assert_scaling_result name ~max_states c
        | [] ->
            Printf.eprintf "scaling: %s: empty case list\n" name;
            exit 1);
        let runs =
          List.map
            (fun d ->
              let states, dt = sweep_parallel ~domains:d ~max_states cases in
              (d, states, dt))
            scaling_domains
        in
        let _, states1, dt1 = List.hd runs in
        List.iter
          (fun (d, states, _) ->
            if states <> states1 then (
              Printf.eprintf
                "scaling: %s: %d-domain sweep visited %d states, sequential \
                 %d\n"
                name d states states1;
              exit 1))
          runs;
        let base = per_sec states1 dt1 in
        Printf.printf "%-12s %8d %10d" name (List.length cases)
          (states1 / scaling_reps);
        let cols =
          List.map
            (fun (d, states, dt) ->
              let rate = per_sec states dt in
              let eff = rate /. (float_of_int d *. base) in
              if name = "large" then large_rates := (d, rate) :: !large_rates;
              Printf.printf " %9.0f %4.2f " rate eff;
              Obs.Json.(
                Assoc
                  [
                    ("domains", Int d);
                    ("states_per_sec", Float rate);
                    ("efficiency", Float eff);
                  ]))
            runs
        in
        print_newline ();
        Obs.Json.
          ( name,
            Assoc
              [
                ("cases", Int (List.length cases));
                ("states_per_rep", Int (states1 / scaling_reps));
                ("domains", List cols);
              ] ))
      sets
  in
  let cores = Domain.recommended_domain_count () in
  let verdict =
    if cores < 4 then Printf.sprintf "SKIP (machine has %d core(s))" cores
    else
      let rate d = List.assoc d !large_rates in
      if rate 4 >= 2.0 *. rate 1 then "PASS"
      else
        Printf.sprintf "FAIL (4-domain %.0f st/s < 2x 1-domain %.0f st/s)"
          (rate 4) (rate 1)
  in
  Printf.printf "scaling-assert: 4-domain >= 2x 1-domain on large set: %s\n"
    verdict;
  ( Obs.Json.(
      Assoc
        [
          ("reps", Int scaling_reps);
          ("cores", Int cores);
          ("assert", String verdict);
          ("sets", Assoc rows);
        ]),
    String.length verdict >= 4 && String.sub verdict 0 4 = "FAIL" )

let explore_bench path =
  Analysis.Memo.set_enabled false;
  Obs.set_enabled true;
  let per_sec states dt = float_of_int states /. Float.max dt 1e-9 in
  Printf.printf
    "Exploration engine microbenchmark (E8-E10 grid, max_states %d)\n\
     %-12s %8s %10s %14s %14s %10s %8s\n"
    explore_max_states "workload" "cases" "states" "ref st/s" "engine st/s"
    "bytes/st" "speedup";
  let row name cases ref_states ref_dt eng_states eng_dt bytes_per_state =
    let speedup = per_sec eng_states eng_dt /. per_sec ref_states ref_dt in
    Printf.printf "%-12s %8d %10d %14.0f %14.0f %10.1f %7.2fx\n%!" name cases
      eng_states (per_sec ref_states ref_dt) (per_sec eng_states eng_dt)
      bytes_per_state speedup;
    Obs.Json.(
      ( name,
        Assoc
          [
            ("cases", Int cases);
            ("states", Int eng_states);
            ( "reference",
              Assoc
                [
                  ("seconds", Float ref_dt);
                  ("states_per_sec", Float (per_sec ref_states ref_dt));
                ] );
            ( "engine",
              Assoc
                [
                  ("seconds", Float eng_dt);
                  ("states_per_sec", Float (per_sec eng_states eng_dt));
                  ("bytes_per_state", Float bytes_per_state);
                ] );
            ("speedup", Float speedup);
          ] ))
  in
  let tot_ref_states = ref 0
  and tot_ref_dt = ref 0.
  and tot_eng_states = ref 0
  and tot_eng_dt = ref 0.
  and tot_bytes = ref 0.
  and tot_cases = ref 0 in
  let selftimed_rows =
    List.map
      (fun set ->
        let cases = selftimed_cases set in
        (* The filtering pass above doubles as a warm-up of both the
           allocator and the generated workload. *)
        let ref_states, ref_dt =
          sweep
            (fun ~max_states g taus ->
              Analysis.Selftimed.analyze_reference ~max_states g taus)
            cases
        in
        let bytes = ref 0. in
        let eng_states, eng_dt =
          sweep
            (fun ~max_states g taus ->
              let r = Analysis.Selftimed.analyze ~max_states g taus in
              bytes := !bytes +. arena_bytes ();
              r)
            cases
        in
        tot_ref_states := !tot_ref_states + ref_states;
        tot_ref_dt := !tot_ref_dt +. ref_dt;
        tot_eng_states := !tot_eng_states + eng_states;
        tot_eng_dt := !tot_eng_dt +. eng_dt;
        tot_bytes := !tot_bytes +. !bytes;
        tot_cases := !tot_cases + List.length cases;
        row
          (Printf.sprintf "set%d" set)
          (List.length cases) ref_states ref_dt eng_states eng_dt
          (!bytes /. Float.max (float_of_int eng_states) 1.))
      [ 1; 2; 3; 4 ]
  in
  let overall =
    row "selftimed" !tot_cases !tot_ref_states !tot_ref_dt !tot_eng_states
      !tot_eng_dt
      (!tot_bytes /. Float.max (float_of_int !tot_eng_states) 1.)
  in
  let constrained =
    let workloads = constrained_workloads () in
    let ref_states, ref_dt =
      sweep_constrained
        (fun ~max_states ba ~schedules ->
          Core.Constrained.analyze_reference ~max_states ba ~schedules)
        workloads
    in
    let bytes = ref 0. in
    let eng_states, eng_dt =
      sweep_constrained
        (fun ~max_states ba ~schedules ->
          let r = Core.Constrained.analyze ~max_states ba ~schedules in
          bytes := !bytes +. arena_bytes ();
          r)
        workloads
    in
    row "constrained" (List.length workloads) ref_states ref_dt eng_states
      eng_dt
      (!bytes /. Float.max (float_of_int eng_states) 1.)
  in
  let scaling, scaling_failed = scaling_bench () in
  let doc =
    Obs.Json.(
      Assoc
        [
          ("bench", String "engine-explore");
          ("grid", String "E8-E10 sets 1-4, sequences 0-2, 40 apps each");
          ("reps", Int explore_reps);
          ("max_states", Int explore_max_states);
          ("selftimed", Assoc selftimed_rows);
          ("overall", Assoc [ overall; constrained ]);
          ("scaling", scaling);
        ])
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string doc));
  Printf.printf "exploration benchmark written to %s\n" path;
  if scaling_failed then exit 1

(* ------------------------------- main ------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let with_bechamel = not (List.mem "--no-bechamel" argv) in
  let metrics_file =
    let rec find = function
      | "--metrics" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let trace_file =
    let rec find = function
      | "--trace" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> (
          match int_of_string_opt n with
          | Some n -> n
          | None ->
              Printf.eprintf "--jobs expects an integer, got %S\n" n;
              exit 2)
      | _ :: rest -> find rest
      | [] -> 1
    in
    find argv
  in
  (match
     let rec find = function
       | "--explore-bench" :: path :: _ -> Some path
       | _ :: rest -> find rest
       | [] -> None
     in
     find argv
   with
  | Some path ->
      (* Standalone mode: only the seed-vs-new engine comparison. *)
      explore_bench path;
      exit 0
  | None -> ());
  if trace_file <> None then
    Par.set_worker_hook (fun i ->
        Obs.Trace.set_thread_name (Printf.sprintf "worker %d" (i + 1)));
  Par.set_jobs jobs;
  if metrics_file <> None || trace_file <> None then Obs.set_enabled true;
  if trace_file <> None then begin
    Obs.Trace.set_thread_name "main";
    Obs.Trace.start ()
  end;
  let seqs = if quick then [ 0 ] else [ 0; 1; 2 ] in
  let archs = if quick then [ 0 ] else [ 0; 1; 2 ] in
  Printf.printf
    "Reproduction harness: Stuijk et al., 'Multiprocessor Resource \
     Allocation\nfor Throughput-Constrained Synchronous Dataflow Graphs', \
     DAC 2007.\nScale: %d sequence(s) x %d architecture(s)%s\n"
    (List.length seqs) (List.length archs)
    (if quick then " (--quick)" else " (the paper's full protocol)");
  Tables.e2_e3_example_models ();
  Tables.e4_binding_aware ();
  Tables.e5_statespaces ();
  Tables.e6_list_scheduler ();
  Tables.e7_table3 ();
  Tables.e1_h263_hsdf ();
  Tables.e12_baseline_sweep ();
  Tables.e21_hsdf_allocation ();
  Tables.e13_tdma_ablation ();
  Tables.e14_protocol_improvements ();
  Tables.e15_buffer_tradeoff ();
  Tables.e16_connection_models ();
  Tables.e17_sync_models ();
  Tables.e18_dimensioning ();
  Tables.e19_csdf_lumping ();
  Tables.e20_criticality_validation ();
  Tables.e22_guarantee_validation ();
  Tables.e23_composition ();
  Tables.e24_scenario ();
  Tables.e11_multimedia ();
  Tables.e8_e9_e10 ~seqs ~archs ();
  (match metrics_file with
  | None -> ()
  | Some path ->
      (* [Par] is dependency-free; copy the pool's totals into counters so
         they appear in the exported registry. *)
      Obs.Counter.add "pool.jobs" (Par.jobs ());
      Obs.Counter.add "pool.tasks" (Par.tasks_executed ());
      Obs.Counter.add "pool.batches" (Par.batches_executed ());
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Obs.write_channel oc);
      Printf.printf "\ntelemetry registry of the table runs written to %s\n" path);
  (match trace_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.Trace.write_channel oc);
      Printf.printf "timeline trace of the table runs written to %s\n" path);
  (* The micro-benchmarks below must time the kernels with telemetry off,
     the configuration whose overhead we guarantee (< 2%). *)
  if metrics_file <> None || trace_file <> None then Obs.set_enabled false;
  if with_bechamel then begin
    (* The micro-benchmarks time the real analysis kernels: with the memo
       tables warm from the table runs every iteration after the first
       would be a lookup, so memoization is switched off here. *)
    Analysis.Memo.set_enabled false;
    run_bechamel ()
  end;
  print_newline ()
