(* Regeneration of every table and figure of the paper's evaluation (see
   DESIGN.md, experiment index E1-E13). Each function prints the same rows
   or series the paper reports; absolute numbers depend on this machine and
   on the reproduction's benchmark scale, the shapes are the target. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

module Strategy_alloc = Core.Strategy

let line = String.make 72 '-'

let section id title =
  Printf.printf "\n%s\n%s %s\n%s\n" line id title line

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let cost_functions =
  [ (1., 0., 0.); (0., 1., 0.); (0., 0., 1.); (1., 1., 1.); (0., 1., 2.) ]

let pp_weights (c1, c2, c3) = Printf.sprintf "%g,%g,%g" c1 c2 c3

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 / Sec. 1 — the H.263 problem-size argument.              *)
(* ------------------------------------------------------------------ *)

let e1_h263_hsdf () =
  section "E1" "H.263: SDFG-direct analysis vs HSDF conversion (Fig. 1, Sec. 1)";
  let app = Models.h263 () in
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  let c = Baseline.Hsdf_flow.compare_analysis g taus ~output:3 in
  Printf.printf "SDFG actors:                 %d\n" c.Baseline.Hsdf_flow.sdfg_actors;
  Printf.printf "HSDFG actors (paper: 4754):  %d\n" c.Baseline.Hsdf_flow.hsdf_actors;
  Printf.printf "throughput (state space):    %s\n"
    (Rat.to_string c.Baseline.Hsdf_flow.throughput_sdfg);
  Printf.printf "throughput (HSDF + MCR):     %s  (must agree)\n"
    (Rat.to_string c.Baseline.Hsdf_flow.throughput_hsdf);
  Printf.printf "SDFG state-space time:       %.3f s\n" c.Baseline.Hsdf_flow.sdfg_seconds;
  Printf.printf "HSDF conversion time:        %.3f s\n" c.Baseline.Hsdf_flow.convert_seconds;
  Printf.printf "MCR on the HSDFG:            %.3f s\n" c.Baseline.Hsdf_flow.mcr_seconds;
  let direct = c.Baseline.Hsdf_flow.sdfg_seconds in
  let via = c.Baseline.Hsdf_flow.convert_seconds +. c.Baseline.Hsdf_flow.mcr_seconds in
  if direct > 0. then
    Printf.printf "HSDF route / direct route:   %.1fx\n" (via /. direct)

(* ------------------------------------------------------------------ *)
(* E2/E3: Tabs. 1-2 — the running example's models.                    *)
(* ------------------------------------------------------------------ *)

let e2_e3_example_models () =
  section "E2/E3" "Running example: platform (Tab. 1) and application (Tab. 2)";
  Format.printf "%a@." Archgraph.pp (Models.example_platform ());
  Format.printf "%a@." Appgraph.pp (Models.example_app ())

(* ------------------------------------------------------------------ *)
(* E4: Fig. 4 — binding-aware SDFG of the example.                     *)
(* ------------------------------------------------------------------ *)

let example_binding = [| 0; 0; 1 |]

let e4_binding_aware () =
  section "E4" "Binding-aware SDFG for a1,a2 -> t1, a3 -> t2 (Fig. 4)";
  let ba =
    Core.Bind_aware.build ~app:(Models.example_app ())
      ~arch:(Models.example_platform ()) ~binding:example_binding
      ~slices:[| 5; 5 |] ()
  in
  Format.printf "%a@." Sdfg.pp ba.Core.Bind_aware.graph;
  Array.iteri
    (fun i tau ->
      Printf.printf "Upsilon(%s) = %d\n"
        (Sdfg.actor_name ba.Core.Bind_aware.graph i)
        tau)
    ba.Core.Bind_aware.exec_times

(* ------------------------------------------------------------------ *)
(* E5: Fig. 5 — the three throughput numbers.                          *)
(* ------------------------------------------------------------------ *)

let e5_statespaces () =
  section "E5" "State spaces of the running example (Fig. 5)";
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding:example_binding ~slices:[| 5; 5 |]
      ()
  in
  let a = Analysis.Selftimed.analyze app.Appgraph.graph [| 1; 1; 2 |] in
  let b =
    Analysis.Selftimed.analyze ba.Core.Bind_aware.graph
      ba.Core.Bind_aware.exec_times
  in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let c = Core.Constrained.analyze ba ~schedules in
  Printf.printf "%-44s %-8s %s\n" "" "paper" "measured";
  Printf.printf "%-44s %-8s %s\n" "(a) application SDFG, thr(a3)" "1/2"
    (Rat.to_string a.Analysis.Selftimed.throughput.(2));
  Printf.printf "%-44s %-8s %s\n" "(b) binding-aware SDFG, thr(a3)" "1/29"
    (Rat.to_string b.Analysis.Selftimed.throughput.(2));
  Printf.printf "%-44s %-8s %s\n" "(c) schedule/TDMA-constrained, thr(a3)" "1/30"
    (Rat.to_string c.Core.Constrained.throughput)

(* ------------------------------------------------------------------ *)
(* E6: Sec. 9.2 — list-scheduler schedules.                            *)
(* ------------------------------------------------------------------ *)

let e6_list_scheduler () =
  section "E6" "List-scheduler static orders on the example (Sec. 9.2)";
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding:example_binding
      ~slices:(Core.Bind_aware.half_wheel_slices app arch example_binding) ()
  in
  let pp_s s =
    Format.asprintf "%a"
      (Core.Schedule.pp (fun ppf a ->
           Format.pp_print_string ppf (Sdfg.actor_name ba.Core.Bind_aware.graph a)))
      s
  in
  let raw = Core.List_scheduler.raw_schedules ba in
  let compact = Core.List_scheduler.schedules ba in
  Array.iteri
    (fun t s ->
      match (s, compact.(t)) with
      | Some s, Some c ->
          Printf.printf "tile t%d: raw %-40s -> compacted %s\n" (t + 1) (pp_s s)
            (pp_s c)
      | _ -> ())
    raw;
  print_endline "(paper: the t1 schedule compacts to (a1 a2)*)"

(* ------------------------------------------------------------------ *)
(* E7: Tab. 3 — bindings per cost-function setting.                    *)
(* ------------------------------------------------------------------ *)

let e7_table3 () =
  section "E7" "Binding of actors to tiles (Tab. 3)";
  Printf.printf "%-10s %-4s %-4s %-4s\n" "c1,c2,c3" "a1" "a2" "a3";
  List.iter
    (fun (c1, c2, c3) ->
      match
        Core.Binding_step.bind
          ~weights:(Core.Cost.weights c1 c2 c3)
          (Models.example_app ()) (Models.example_platform ())
      with
      | Ok b ->
          Printf.printf "%-10s %-4s %-4s %-4s\n"
            (pp_weights (c1, c2, c3))
            (if b.(0) = 0 then "t1" else "t2")
            (if b.(1) = 0 then "t1" else "t2")
            (if b.(2) = 0 then "t1" else "t2")
      | Error _ ->
          Printf.printf "%-10s failed\n" (pp_weights (c1, c2, c3)))
    [ (1., 0., 0.); (0., 1., 0.); (0., 0., 1.); (1., 1., 1.) ];
  print_endline
    "(paper rows: t1 t1 t2 | t1 t2 t2 | t1 t1 t1 | t1 t1 t2; the (0,1,0)\n\
    \ row deviates in a2 — a near-tie documented in EXPERIMENTS.md)"

(* ------------------------------------------------------------------ *)
(* E8-E10: Tabs. 4-5 and the Sec. 10.2 aggregates.                     *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  bound : int;
  wheel : int;
  mem : int;
  conns : int;
  bw_in : int;
  bw_out : int;
  checks : int;
  seconds : float;
}

let run_cell ~weights ~set ~seq ~arch_variant =
  let apps = Gen.Benchsets.sequence ~set ~seq ~count:40 in
  let arch = Gen.Benchsets.architecture arch_variant in
  let report, seconds =
    wall (fun () ->
        Core.Multi_app.allocate_until_failure ~weights ~max_states:200_000 apps
          arch)
  in
  let checks =
    List.fold_left
      (fun acc (a : Core.Strategy.allocation) ->
        acc + a.Core.Strategy.stats.Core.Strategy.throughput_checks)
      0 report.Core.Multi_app.allocations
  in
  {
    bound = List.length report.Core.Multi_app.allocations;
    wheel = report.Core.Multi_app.wheel_used;
    mem = report.Core.Multi_app.memory_used;
    conns = report.Core.Multi_app.connections_used;
    bw_in = report.Core.Multi_app.bw_in_used;
    bw_out = report.Core.Multi_app.bw_out_used;
    checks;
    seconds;
  }

(* The benchmark protocol of Sec. 10.1: average over sequences and
   architectures. [seqs]/[archs] control the scale (the paper uses 3 x 3;
   the default bench run uses a subset for wall-clock reasons; run with
   --full for the complete protocol). *)
let e8_e9_e10 ~seqs ~archs () =
  section "E8"
    (Printf.sprintf
       "Average number of application graphs bound (Tab. 4; %d seq x %d arch)"
       (List.length seqs) (List.length archs));
  (* Every (weights, set, seq, arch) cell is an independent allocation
     run, so the whole grid fans out over the worker pool ([--jobs]); the
     results are regrouped in enumeration order afterwards, keeping the
     printed tables byte-identical to a sequential run. *)
  let grid =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun set ->
            List.concat_map
              (fun seq ->
                List.map (fun arch_variant -> (w, set, seq, arch_variant)) archs)
              seqs)
          [ 1; 2; 3; 4 ])
      cost_functions
  in
  let results =
    Par.map
      (fun ((c1, c2, c3), set, seq, arch_variant) ->
        run_cell ~weights:(Core.Cost.weights c1 c2 c3) ~set ~seq ~arch_variant)
      grid
  in
  let cells = Hashtbl.create 32 in
  List.iter2
    (fun (w, set, _, _) r ->
      let key = (w, set) in
      let sofar = Option.value (Hashtbl.find_opt cells key) ~default:[] in
      Hashtbl.replace cells key (sofar @ [ r ]))
    grid results;
  let avg f runs =
    List.fold_left (fun acc r -> acc +. f r) 0. runs
    /. float_of_int (List.length runs)
  in
  Printf.printf "%-10s %8s %8s %8s %8s\n" "c1,c2,c3" "set1" "set2" "set3" "set4";
  List.iter
    (fun w ->
      Printf.printf "%-10s" (pp_weights w);
      List.iter
        (fun set ->
          let runs = Hashtbl.find cells (w, set) in
          Printf.printf " %8.2f" (avg (fun r -> float_of_int r.bound) runs))
        [ 1; 2; 3; 4 ];
      print_newline ())
    cost_functions;
  print_endline
    "(paper shape: (0,0,1) wins set 1, (0,1,0) strong on set 2, (0,0,1) and\n\
    \ (0,1,2) win set 3, (0,1,2) wins set 4, (1,0,0) weak outside set 1)";

  section "E9" "Resource efficiency for set 4 (Tab. 5)";
  (* Paper normalisation: per resource, divide by the largest usage over
     the five cost functions. *)
  let set4 w = Hashtbl.find cells (w, 4) in
  let totals f w = avg f (set4 w) in
  let resources =
    [
      ("timewheel", fun r -> float_of_int r.wheel);
      ("memory", fun r -> float_of_int r.mem);
      ("connections", fun r -> float_of_int r.conns);
      ("input bw", fun r -> float_of_int r.bw_in);
      ("output bw", fun r -> float_of_int r.bw_out);
    ]
  in
  Printf.printf "%-10s" "c1,c2,c3";
  List.iter (fun (name, _) -> Printf.printf " %12s" name) resources;
  print_newline ();
  let maxima =
    List.map
      (fun (_, f) ->
        List.fold_left (fun acc w -> Float.max acc (totals f w)) 0. cost_functions)
      resources
  in
  List.iter
    (fun w ->
      Printf.printf "%-10s" (pp_weights w);
      List.iteri
        (fun i (_, f) ->
          let m = List.nth maxima i in
          Printf.printf " %12.2f" (if m > 0. then totals f w /. m else 0.))
        resources;
      print_newline ())
    cost_functions;

  section "E10" "Strategy effort (Sec. 10.2 aggregates)";
  let all_runs = Hashtbl.fold (fun _ rs acc -> rs @ acc) cells [] in
  let total_bound = List.fold_left (fun acc r -> acc + r.bound) 0 all_runs in
  let total_checks = List.fold_left (fun acc r -> acc + r.checks) 0 all_runs in
  let total_secs = List.fold_left (fun acc r -> acc +. r.seconds) 0. all_runs in
  if total_bound > 0 then begin
    Printf.printf "throughput computations per allocated graph: %.1f (paper: 16.1)\n"
      (float_of_int total_checks /. float_of_int total_bound);
    Printf.printf "strategy run-time per allocated graph:       %.3f s (paper: 5 s on a 2007 P4)\n"
      (total_secs /. float_of_int total_bound)
  end

(* ------------------------------------------------------------------ *)
(* E11: Sec. 10.3 — the multimedia system.                             *)
(* ------------------------------------------------------------------ *)

let e11_multimedia () =
  section "E11" "Multimedia system: 3 x H.263 + MP3 on a 2x2 MP-SoC (Sec. 10.3)";
  let apps =
    [
      Models.h263 ~name:"h263_0" (); Models.h263 ~name:"h263_1" ();
      Models.h263 ~name:"h263_2" (); Models.mp3 ();
    ]
  in
  let hsdf_total =
    List.fold_left
      (fun acc (a : Appgraph.t) ->
        acc + Sdf.Repetition.iteration_firings (Appgraph.gamma a))
      0 apps
  in
  Printf.printf "system as an HSDFG: %d actors (paper: 14275)\n" hsdf_total;
  let report, secs =
    wall (fun () ->
        Core.Multi_app.allocate_until_failure
          ~weights:(Core.Cost.weights 2. 0. 1.)
          ~max_states:2_000_000 apps
          (Models.multimedia_platform ()))
  in
  Printf.printf "applications allocated: %d of 4 in %.1f s\n"
    (List.length report.Core.Multi_app.allocations)
    secs;
  let checks, slice_t, total_t =
    List.fold_left
      (fun (c, s, t) (a : Core.Strategy.allocation) ->
        let st = a.Core.Strategy.stats in
        ( c + st.Core.Strategy.throughput_checks,
          s +. st.Core.Strategy.slice_seconds,
          t +. st.Core.Strategy.bind_seconds
          +. st.Core.Strategy.schedule_seconds +. st.Core.Strategy.slice_seconds ))
      (0, 0., 0.) report.Core.Multi_app.allocations
  in
  List.iter
    (fun (a : Core.Strategy.allocation) ->
      Printf.printf "  %-8s thr %-12s constraint %-12s slices [%s]\n"
        a.Core.Strategy.app.Appgraph.app_name
        (Rat.to_string a.Core.Strategy.throughput)
        (Rat.to_string a.Core.Strategy.app.Appgraph.lambda)
        (String.concat ";"
           (Array.to_list (Array.map string_of_int a.Core.Strategy.slices))))
    report.Core.Multi_app.allocations;
  Printf.printf "throughput computations: %d (paper: 34 in slice allocation)\n" checks;
  if total_t > 0. then
    Printf.printf "slice allocation share of run-time: %.0f%% (paper: ~90%%)\n"
      (100. *. slice_t /. total_t)

(* ------------------------------------------------------------------ *)
(* E12: the HSDF-baseline run-time sweep.                              *)
(* ------------------------------------------------------------------ *)

let e12_baseline_sweep () =
  section "E12" "Analysis cost vs rate scale: SDFG-direct vs HSDF route (Sec. 1)";
  Printf.printf "%8s %12s %14s %14s %10s\n" "rate k" "HSDF actors" "SDFG (s)"
    "HSDF (s)" "ratio";
  List.iter
    (fun k ->
      (* vld-style chain: a -(k)-> b -(1,1)-> c -(1,k)-> d -> a. *)
      let g =
        Sdfg.of_lists ~actors:[ "a"; "b"; "c"; "d" ]
          ~channels:
            [
              ("a", "b", k, 1, 0); ("b", "c", 1, 1, 0); ("c", "d", 1, k, 0);
              ("d", "a", 1, 1, 1);
            ]
      in
      let taus = [| 50; 3; 4; 20 |] in
      let c = Baseline.Hsdf_flow.compare_analysis g taus ~output:3 in
      let direct = c.Baseline.Hsdf_flow.sdfg_seconds in
      let via =
        c.Baseline.Hsdf_flow.convert_seconds +. c.Baseline.Hsdf_flow.mcr_seconds
      in
      assert (Rat.equal c.Baseline.Hsdf_flow.throughput_sdfg c.Baseline.Hsdf_flow.throughput_hsdf);
      Printf.printf "%8d %12d %14.4f %14.4f %10s\n" k
        c.Baseline.Hsdf_flow.hsdf_actors direct via
        (if direct > 0. then Printf.sprintf "%.1fx" (via /. direct) else "-"))
    [ 10; 50; 200; 800; 2376 ];
  print_endline
    "(shape: the HSDF route's cost grows with the rate scale while the\n\
    \ SDFG-direct state space grows only with the firings per iteration)"

(* ------------------------------------------------------------------ *)
(* E13: TDMA model ablation.                                           *)
(* ------------------------------------------------------------------ *)

let e13_tdma_ablation () =
  section "E13"
    "TDMA models: constrained execution vs execution-time inflation [4]";
  Printf.printf "%-12s %14s %14s %8s\n" "graph" "constrained" "inflation [4]" "gain";
  let show name ba schedules =
    let ours = Core.Constrained.throughput_or_zero ba ~schedules in
    let theirs = Core.Tdma_inflation.throughput ba ~schedules in
    let gain =
      if Rat.compare theirs Rat.zero > 0 then
        Rat.to_float (Rat.div ours theirs)
      else Float.nan
    in
    Printf.printf "%-12s %14s %14s %7.2fx\n" name (Rat.to_string ours)
      (Rat.to_string theirs) gain
  in
  (* The running example. *)
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let ba = Core.Bind_aware.build ~app ~arch ~binding:example_binding ~slices:[| 5; 5 |] () in
  show "example" ba
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |];
  (* Generated graphs at 50% slices. *)
  let arch9 = Gen.Benchsets.architecture 0 in
  List.iter
    (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let app =
        Gen.Sdfgen.generate rng (Gen.Benchsets.set_profile 1)
          ~proc_types:Gen.Benchsets.proc_types
          ~name:(Printf.sprintf "g%d" seed)
      in
      match Core.Binding_step.bind ~weights:(Core.Cost.weights 0. 1. 2.) app arch9 with
      | Error _ -> ()
      | Ok binding -> (
          let slices = Core.Bind_aware.half_wheel_slices app arch9 binding in
          let ba = Core.Bind_aware.build ~app ~arch:arch9 ~binding ~slices () in
          match Core.List_scheduler.schedules ~max_states:100_000 ba with
          | exception _ -> ()
          | schedules -> show app.Appgraph.app_name ba schedules))
    [ 1; 2; 3; 5; 8; 13 ];
  print_endline
    "(paper Sec. 8.2: the constrained execution postpones firings by at\n\
    \ most w - omega and usually less, so it never reports less throughput\n\
    \ than the inflation model — smaller slices then suffice)"

(* ------------------------------------------------------------------ *)
(* E14: the Sec. 10.1/10.2 improvements, quantified.                   *)
(* ------------------------------------------------------------------ *)

let e14_protocol_improvements () =
  section "E14"
    "Allocation protocol improvements the paper suggests (Secs. 10.1-10.2)";
  let weights = Core.Cost.weights 0. 1. 2. in
  Printf.printf "%-42s %6s %6s %6s %6s\n" "protocol" "set1" "set2" "set3" "set4";
  (* The four sets of one protocol row are independent runs: fan them out,
     print the counts in set order once all four are back. *)
  let counts_for run_set =
    Par.map run_set [ 1; 2; 3; 4 ]
    |> List.iter (fun bound -> Printf.printf " %6d" bound)
  in
  let run ~policy ~order label =
    Printf.printf "%-42s" label;
    counts_for (fun set ->
        let apps = Gen.Benchsets.sequence ~set ~seq:0 ~count:40 in
        let report =
          Core.Multi_app.allocate_until_failure ~weights ~policy ~order
            ~max_states:200_000 apps
            (Gen.Benchsets.architecture 0)
        in
        List.length report.Core.Multi_app.allocations);
    print_newline ()
  in
  run ~policy:Core.Multi_app.Stop_at_first_failure ~order:Core.Multi_app.As_given
    "paper protocol (stop at first failure)";
  run ~policy:Core.Multi_app.Skip_failed ~order:Core.Multi_app.As_given
    "+ reject-and-continue";
  run ~policy:Core.Multi_app.Skip_failed
    ~order:Core.Multi_app.By_total_work_ascending "+ light-first preordering";
  run ~policy:Core.Multi_app.Skip_failed
    ~order:Core.Multi_app.By_total_work_descending "+ heavy-first preordering";
  (let label = "+ per-app weight-ladder retry" in
   Printf.printf "%-42s" label;
   counts_for (fun set ->
       let apps = Gen.Benchsets.sequence ~set ~seq:0 ~count:40 in
       let report =
         Core.Multi_app.allocate_until_failure
           ~retry_ladder:Core.Flow.default_weight_ladder
           ~policy:Core.Multi_app.Skip_failed ~max_states:200_000 apps
           (Gen.Benchsets.architecture 0)
       in
       List.length report.Core.Multi_app.allocations);
   print_newline ());
  print_endline
    "(the paper predicts both mechanisms \"may improve the results\"; the\n\
    \ skip policy can only increase the counts)"

(* ------------------------------------------------------------------ *)
(* E15: the [21]-style buffer-space / throughput trade-off.            *)
(* ------------------------------------------------------------------ *)

let e15_buffer_tradeoff () =
  section "E15"
    "Storage-space vs throughput trade-off (substrate of Theta; [21])";
  let show name g taus output =
    Printf.printf "%s:\n" name;
    List.iter
      (fun p ->
        Printf.printf "  total %3d slots -> throughput %s\n"
          p.Analysis.Buffer_sizing.total_tokens
          (Rat.to_string p.Analysis.Buffer_sizing.rate))
      (Analysis.Buffer_sizing.pareto ~max_states:200_000 g taus ~output)
  in
  let app = Models.example_app () in
  show "running example" app.Appgraph.graph [| 1; 1; 2 |] 2;
  let g =
    Sdfg.of_lists ~actors:[ "src"; "f1"; "f2"; "snk" ]
      ~channels:
        [
          ("src", "f1", 2, 3, 0); ("f1", "f2", 1, 1, 0); ("f2", "snk", 3, 2, 0);
          ("snk", "src", 1, 1, 3);
        ]
  in
  show "multirate pipeline" g [| 2; 3; 3; 2 |] 3;
  print_endline
    "(shape as in [21]: a staircase — throughput grows with storage until\n\
    \ the graph's structural bound, after which extra slots are wasted)"

(* ------------------------------------------------------------------ *)
(* E16: NoC connection-model ablation (the Sec. 8.1 extension point).  *)
(* ------------------------------------------------------------------ *)

let e16_connection_models () =
  section "E16"
    "Connection models: paper's single actor c vs pipelined NoC path [14]";
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  Printf.printf "%-34s %14s %14s\n" "configuration" "simple c" "pipelined";
  let thr model =
    let ba =
      Core.Bind_aware.build ~connection_model:model ~app ~arch
        ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
    in
    Core.Constrained.throughput_or_zero ba ~schedules
  in
  Printf.printf "%-34s %14s %14s\n" "example, 50% slices"
    (Rat.to_string (thr Core.Bind_aware.Simple_connection))
    (Rat.to_string (thr (Core.Bind_aware.Pipelined_connection { stages = 2 })));
  (* A long-latency platform shows the pipelining gain: raise the
     connection latency so the single-actor model serialises hard. *)
  let slow_arch =
    Platform.Archgraph.make
      (Platform.Archgraph.tiles arch)
      [
        { Platform.Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 12 };
        { Platform.Archgraph.k_idx = 1; from_tile = 1; to_tile = 0; latency = 12 };
      ]
  in
  let thr_slow model =
    let ba =
      Core.Bind_aware.build ~connection_model:model ~app ~arch:slow_arch
        ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
    in
    Core.Constrained.throughput_or_zero ba ~schedules
  in
  Printf.printf "%-34s %14s %14s\n" "12-cycle connection latency"
    (Rat.to_string (thr_slow Core.Bind_aware.Simple_connection))
    (Rat.to_string
       (thr_slow (Core.Bind_aware.Pipelined_connection { stages = 4 })));
  print_endline
    "(the pipelined model lets tokens overlap across hops, so long paths\n\
    \ stop serialising whole transfers — the paper's suggested refinement)"

(* ------------------------------------------------------------------ *)
(* E17: conservatism of the worst-case-arrival sync actor.             *)
(* ------------------------------------------------------------------ *)

let e17_sync_models () =
  section "E17"
    "Wheel-offset conservatism: worst-case arrival vs aligned wheels";
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  Printf.printf "%-20s %16s %16s\n" "slice size" "worst-case s" "aligned wheels";
  List.iter
    (fun omega ->
      let thr sync_model =
        let ba =
          Core.Bind_aware.build ~sync_model ~app ~arch ~binding:[| 0; 0; 1 |]
            ~slices:[| omega; omega |] ()
        in
        Core.Constrained.throughput_or_zero ba ~schedules
      in
      Printf.printf "%-20s %16s %16s\n"
        (Printf.sprintf "omega = %d of 10" omega)
        (Rat.to_string (thr Core.Bind_aware.Worst_case_arrival))
        (Rat.to_string (thr Core.Bind_aware.Aligned_wheels)))
    [ 2; 4; 5; 8; 10 ];
  print_endline
    "(the paper charges every cross-tile token the full foreign wheel\n\
    \ share, w - omega; with one global TDMA phase the engine's own gating\n\
    \ is exact and the sync wait vanishes — smaller slices then suffice)"

(* ------------------------------------------------------------------ *)
(* E18: platform dimensioning (the Sec. 10.2 improvement).             *)
(* ------------------------------------------------------------------ *)

let e18_dimensioning () =
  section "E18" "Platform dimensioning: smallest mesh fitting a workload";
  let tpl =
    {
      Core.Dimensioning.proc_types = Gen.Benchsets.proc_types;
      wheel = 60;
      mem = 600_000;
      max_conns = 32;
      in_bw = 3_000;
      out_bw = 3_000;
      hop_latency = 1;
    }
  in
  Printf.printf "%-18s %10s %12s %12s\n" "workload" "mesh" "tiles" "wheel used";
  List.iter
    (fun n ->
      let apps = Gen.Benchsets.sequence ~set:4 ~seq:0 ~count:n in
      match
        Core.Dimensioning.smallest_mesh
          ~weights:(Core.Cost.weights 0. 1. 2.)
          ~max_states:200_000 tpl apps
      with
      | Some r ->
          Printf.printf "%-18s %10s %12d %12d\n"
            (Printf.sprintf "%d apps (set 4)" n)
            (Printf.sprintf "%dx%d" r.Core.Dimensioning.rows
               r.Core.Dimensioning.cols)
            (r.Core.Dimensioning.rows * r.Core.Dimensioning.cols)
            r.Core.Dimensioning.report.Core.Multi_app.wheel_used
      | None ->
          Printf.printf "%-18s %10s\n" (Printf.sprintf "%d apps" n)
            "no fit <= 16 tiles")
    [ 1; 2; 4; 6; 9 ];
  print_endline
    "(inverting the paper's experiment: size the platform for the workload\n\
    \ instead of counting the workload a fixed platform carries)"

(* ------------------------------------------------------------------ *)
(* E19: CSDF front-end — the cost of lumping to SDF.                   *)
(* ------------------------------------------------------------------ *)

let e19_csdf_lumping () =
  section "E19" "CSDF front-end: phase-accurate analysis vs SDF lumping";
  Printf.printf "%-22s %16s %16s %8s\n" "graph" "csdf (exact)" "lumped SDF" "ratio";
  let show name g taus output =
    let exact = Csdf.Selftimed.throughput g taus output in
    let lumped =
      match
        Analysis.Selftimed.analyze
          (Csdf.Graph.lump ~serialized:true g)
          (Csdf.Graph.lump_exec_times g taus)
      with
      | r -> r.Analysis.Selftimed.throughput.(output)
      | exception Analysis.Selftimed.Deadlocked -> Rat.zero
    in
    let ratio =
      if Rat.compare lumped Rat.zero > 0 then Rat.to_float (Rat.div exact lumped)
      else Float.nan
    in
    Printf.printf "%-22s %16s %16s %7.2fx\n" name (Rat.to_string exact)
      (Rat.to_string lumped) ratio
  in
  let deint =
    Csdf.Graph.of_lists
      ~actors:[ ("src", 1); ("deint", 2); ("outA", 1); ("outB", 1) ]
      ~channels:
        [
          ("src", "deint", [ 1 ], [ 1; 1 ], 0);
          ("deint", "outA", [ 1; 0 ], [ 1 ], 0);
          ("deint", "outB", [ 0; 1 ], [ 1 ], 0);
          ("outA", "src", [ 2 ], [ 1 ], 4);
        ]
  in
  show "deinterleaver" deint [| [| 2 |]; [| 1; 3 |]; [| 2 |]; [| 2 |] |] 2;
  let early =
    Csdf.Graph.of_lists ~actors:[ ("p", 2); ("c", 1) ]
      ~channels:
        [ ("p", "c", [ 1; 1 ], [ 1 ], 0); ("c", "p", [ 1 ], [ 1; 1 ], 2) ]
  in
  show "early producer" early [| [| 5; 5 |]; [| 5 |] |] 1;
  let burst =
    Csdf.Graph.of_lists ~actors:[ ("burst", 3); ("sink", 1) ]
      ~channels:
        [ ("burst", "sink", [ 2; 0; 1 ], [ 1 ], 0);
          ("sink", "burst", [ 1 ], [ 1; 1; 1 ], 3) ]
  in
  show "bursty source" burst [| [| 2; 6; 2 |]; [| 3 |] |] 1;
  print_endline
    "(lumping is conservative — it never overstates throughput, so\n\
    \ allocation guarantees derived on the lumped SDF remain valid for\n\
    \ the cyclo-static application; the ratio is the price paid)"

(* ------------------------------------------------------------------ *)
(* E20: does the Eqn.-1 criticality estimate predict real sensitivity? *)
(* ------------------------------------------------------------------ *)

let e20_criticality_validation () =
  section "E20"
    "Eqn. 1 validation: structural criticality vs measured sensitivity";
  let check name (app : Appgraph.t) =
    let g = app.Appgraph.graph in
    let n = Sdfg.num_actors g in
    let taus = Array.init n (fun a -> Appgraph.max_exec_time app a) in
    let crit = (Core.Cost.actor_criticality app).Core.Cost.per_actor in
    let sens =
      Analysis.Sensitivity.measure ~max_states:500_000 g taus
        ~output:app.Appgraph.output_actor
    in
    Printf.printf "%s:\n" name;
    Printf.printf "  %-10s %14s %14s\n" "actor" "Eqn.1 cost" "sensitivity";
    for a = 0 to n - 1 do
      Printf.printf "  %-10s %14s %14.6f\n" (Sdfg.actor_name g a)
        (Rat.to_string crit.(a))
        sens.Analysis.Sensitivity.sensitivity.(a)
    done;
    (* Agreement: the estimate's top actor among the measured criticals. *)
    let measured = Analysis.Sensitivity.critical_actors sens in
    let estimated_top =
      List.hd
        (List.sort
           (fun a b -> Rat.compare crit.(b) crit.(a))
           (List.init n Fun.id))
    in
    Printf.printf "  estimate's top actor %s is %s\n"
      (Sdfg.actor_name g estimated_top)
      (if List.mem estimated_top measured then
         "on a measured critical cycle"
       else "NOT measured as critical (heuristic miss)")
  in
  check "running example" (Models.example_app ());
  check "jpeg decoder" (Models.jpeg ());
  check "wlan receiver" (Models.wlan ());
  print_endline
    "(Eqn. 1 sees only cycles and worst-case times; actors on no cycle\n\
    \ score 0 even when the feedback loop makes them rate-limiting — the\n\
    \ binding step compensates with its total-work tie-break)"

(* ------------------------------------------------------------------ *)
(* E21: the full allocation flow on the HSDF expansion (Sec. 1/2).     *)
(* ------------------------------------------------------------------ *)

let e21_hsdf_allocation () =
  section "E21"
    "End-to-end allocation: direct SDFG flow vs HSDF-expansion route";
  (* A deliberately resource-generous platform: on the standard benchmark
     mesh the HSDF route already fails to BIND beyond k = 8, because its
     per-copy state and per-precedence-edge buffers/connections over-count
     resources — one half of the paper's infeasibility argument. Making the
     platform generous isolates the other half: the run-time growth. *)
  let arch =
    Archgraph.mesh ~rows:3 ~cols:3 ~proc_types:Gen.Benchsets.proc_types
      ~wheel:60 ~mem:20_000_000 ~max_conns:4_096 ~in_bw:1_000_000
      ~out_bw:1_000_000 ~hop_latency:1 ()
  in
  Printf.printf "%8s %12s %14s %14s %8s\n" "rate k" "HSDF actors" "direct (s)"
    "HSDF route (s)" "factor";
  List.iter
    (fun k ->
      (* The E12 chain as a full application graph. *)
      let graph =
        Sdfg.of_lists ~actors:[ "a"; "b"; "c"; "d" ]
          ~channels:
            [
              ("a", "b", k, 1, 0); ("b", "c", 1, 1, 0); ("c", "d", 1, k, 0);
              ("d", "a", 1, 1, 1);
            ]
      in
      let r t m = Appgraph.{ exec_time = t; memory = m } in
      let reqs =
        [|
          [ ("risc", r 40 400); ("dsp", r 50 400) ];
          [ ("risc", r 3 100); ("dsp", r 2 100); ("vliw", r 3 100) ];
          [ ("risc", r 4 100); ("dsp", r 3 100); ("vliw", r 4 100) ];
          [ ("risc", r 18 400); ("vliw", r 15 400) ];
        |]
      in
      let chan cap =
        Appgraph.
          { token_size = 32; alpha_tile = cap; alpha_src = cap;
            alpha_dst = cap; bandwidth = 16 }
      in
      let creqs = [| chan (k + 1); chan 2; chan (k + 1); chan 2 |] in
      let seq = 40 + (k * 3) + (k * 4) + 18 in
      let lambda = Rat.make 1 (8 * seq) in
      let app =
        Appgraph.make ~name:(Printf.sprintf "chain%d" k) ~graph ~reqs ~creqs
          ~lambda ~output_actor:3
      in
      let c =
        Baseline.Hsdf_alloc.compare_allocation
          ~weights:(Core.Cost.weights 0. 1. 2.)
          ~max_states:400_000 app arch
      in
      let factor =
        if c.Baseline.Hsdf_alloc.direct_seconds > 0. then
          (c.Baseline.Hsdf_alloc.expand_seconds
          +. c.Baseline.Hsdf_alloc.hsdf_flow_seconds)
          /. c.Baseline.Hsdf_alloc.direct_seconds
        else Float.nan
      in
      Printf.printf "%8d %12d %14.3f %14.3f %7.1fx%s\n" k
        c.Baseline.Hsdf_alloc.hsdf_actors c.Baseline.Hsdf_alloc.direct_seconds
        (c.Baseline.Hsdf_alloc.expand_seconds
        +. c.Baseline.Hsdf_alloc.hsdf_flow_seconds)
        factor
        (match (c.Baseline.Hsdf_alloc.direct_ok, c.Baseline.Hsdf_alloc.hsdf_ok) with
        | true, true -> ""
        | true, false -> "  (HSDF route failed to allocate)"
        | false, _ -> "  (direct route failed)"))
    [ 2; 8; 24; 64; 120 ];
  print_endline
    "(the paper's core argument end to end: every step of an HSDF-based\n\
    \ strategy pays the expansion — binding, cycle enumeration, scheduling\n\
    \ and every throughput check)"

(* ------------------------------------------------------------------ *)
(* E22: guarantee validation — simulate deployments with random wheel  *)
(* offsets; the conservative bound must hold, and is often tight.      *)
(* ------------------------------------------------------------------ *)

let e22_guarantee_validation () =
  section "E22"
    "Guarantee validation: implementation runs under arbitrary wheel offsets";
  Printf.printf "%-14s %12s %12s %12s %10s\n" "application" "guaranteed"
    "worst run" "best run" "verdict";
  let validate name (app : Appgraph.t) arch offset_samples =
    match Strategy_alloc.allocate app arch with
    | Error _ -> Printf.printf "%-14s allocation failed\n" name
    | Ok a ->
        let guaranteed = a.Core.Strategy.throughput in
        let ba =
          Core.Bind_aware.build ~sync_model:Core.Bind_aware.Aligned_wheels
            ~app ~arch ~binding:a.Core.Strategy.binding
            ~slices:a.Core.Strategy.slices ()
        in
        (* Each offset sample is an independent constrained analysis —
           fan them out, then fold the extrema (order-independent). *)
        let worst, best =
          Par.map
            (fun offsets ->
              (Core.Constrained.analyze ~offsets ~max_states:500_000 ba
                 ~schedules:a.Core.Strategy.schedules)
                .Core.Constrained.throughput)
            offset_samples
          |> List.fold_left
               (fun (worst, best) t ->
                 ( (if Rat.compare t worst < 0 then t else worst),
                   if Rat.compare t best > 0 then t else best ))
               (Rat.infinity, Rat.zero)
        in
        Printf.printf "%-14s %12s %12s %12s %10s\n" name
          (Rat.to_string guaranteed) (Rat.to_string worst)
          (Rat.to_string best)
          (if Rat.compare worst guaranteed >= 0 then "holds" else "VIOLATED")
  in
  (* The example: exhaustive over both 10-unit wheels. *)
  let all_offsets =
    List.concat_map (fun a -> List.init 10 (fun b -> [| a; b |])) (List.init 10 Fun.id)
  in
  validate "example" (Models.example_app ()) (Models.example_platform ())
    all_offsets;
  (* A generated application on the 3x3 mesh: sampled offsets. *)
  let rng = Gen.Rng.create ~seed:4242 in
  let app =
    Gen.Sdfgen.generate rng (Gen.Benchsets.set_profile 1)
      ~proc_types:Gen.Benchsets.proc_types ~name:"val0"
  in
  let arch = Gen.Benchsets.architecture 0 in
  let samples =
    List.init 40 (fun _ -> Array.init 9 (fun _ -> Gen.Rng.int rng 60))
  in
  validate "generated" app arch samples;
  print_endline
    "(the implementation simulator uses real arrivals — no sync actor —\n\
    \ and per-tile wheel phases; the paper's worst-case-arrival model must\n\
    \ lower-bound every run, and on the example it is exactly tight)"

(* ------------------------------------------------------------------ *)
(* E23: isolation — all applications executing together keep their     *)
(* individual guarantees (the paper's central promise).                *)
(* ------------------------------------------------------------------ *)

let e23_composition () =
  section "E23"
    "Isolation: joint execution of all allocated applications";
  (* Exact joint state space: two copies of the running example. *)
  let arch = Models.example_platform () in
  let report =
    Core.Multi_app.allocate_until_failure
      ~weights:(Core.Cost.weights 1. 1. 1.)
      [
        Models.example_app ();
        Appgraph.with_lambda (Models.example_app ()) (Rat.make 1 60);
      ]
      arch
  in
  let members = Core.Composition.members_of_allocations report.Core.Multi_app.allocations in
  let r = Core.Composition.analyze members in
  Printf.printf "%-14s %14s %14s %10s\n" "application" "guaranteed"
    "in composition" "verdict";
  List.iteri
    (fun i (a : Core.Strategy.allocation) ->
      Printf.printf "%-14s %14s %14s %10s\n"
        (Printf.sprintf "example#%d" i)
        (Rat.to_string a.Core.Strategy.throughput)
        (Rat.to_string r.Core.Composition.throughput.(i))
        (if Rat.compare r.Core.Composition.throughput.(i) a.Core.Strategy.throughput >= 0
         then "holds" else "VIOLATED"))
    report.Core.Multi_app.allocations;
  (* Windowed measurement: the heterogeneous decoder mix (incommensurate
     periods never jointly recur, so the joint rate is estimated over a
     long horizon; the estimate is quantised to whole output tokens and
     approaches the true rate from below). *)
  let arch = Models.multimedia_platform () in
  let apps = [ Models.jpeg (); Models.wlan (); Models.mp3 () ] in
  let report =
    Core.Multi_app.allocate_until_failure
      ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 apps arch
  in
  let members = Core.Composition.members_of_allocations report.Core.Multi_app.allocations in
  let horizon = 40_000_000 in
  let rates = Core.Composition.measure ~horizon members in
  List.iteri
    (fun i (a : Core.Strategy.allocation) ->
      let guaranteed = a.Core.Strategy.throughput in
      let measured = rates.(i) in
      (* One output token of slack absorbs the window quantisation. *)
      let with_slack =
        Rat.add measured (Rat.make 2 (horizon / 2))
      in
      Printf.printf "%-14s %14s %14s %10s\n"
        a.Core.Strategy.app.Appgraph.app_name (Rat.to_string guaranteed)
        (Rat.to_string measured)
        (if Rat.compare with_slack guaranteed >= 0 then "holds"
         else "VIOLATED"))
    report.Core.Multi_app.allocations;
  print_endline
    "(one joint event-driven execution of every binding-aware graph, each\n\
    \ application gated by its own window of the shared TDMA wheels — the\n\
    \ guarantees compose because the windows are disjoint)"

(* ------------------------------------------------------------------ *)
(* E24: scenario FSMs — worst-case rate across mode sequences.         *)
(* ------------------------------------------------------------------ *)

let e24_scenario () =
  section "E24" "Scenario FSM: worst-case rate over all mode sequences";
  let app = Models.h263 () in
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  (* Baseline: the one-mode FSM is the plain self-timed execution. *)
  let single = Scenario.Fsm.single g taus in
  let base = Scenario.Product.analyze single in
  (* A degraded mode (every actor 25% slower) reached and left with an
     occupancy-holding rebinding delay, as a platform reconfiguration
     between a full-quality and a reduced-quality decode would cost. *)
  let degraded =
    {
      Scenario.Fsm.m_name = "degraded";
      rates = (single.Scenario.Fsm.modes.(0)).Scenario.Fsm.rates;
      taus = Array.map (fun t -> t + ((t + 3) / 4)) taus;
    }
  in
  let fsm =
    Scenario.Fsm.make ~name:"h263-quality" ~graph:g
      ~modes:
        [|
          { (single.Scenario.Fsm.modes.(0)) with Scenario.Fsm.m_name = "full" };
          degraded;
        |]
      ~transitions:
        [|
          { Scenario.Fsm.t_src = 0; t_dst = 0; delay = 0 };
          { Scenario.Fsm.t_src = 0; t_dst = 1; delay = 2000 };
          { Scenario.Fsm.t_src = 1; t_dst = 1; delay = 0 };
          { Scenario.Fsm.t_src = 1; t_dst = 0; delay = 2000 };
        |]
      ~initial:0
  in
  let (r, dt) = wall (fun () -> Scenario.Product.analyze fsm) in
  Printf.printf "%-22s %16s %10s %10s\n" "scenario" "worst-case rate" "states"
    "edges";
  Printf.printf "%-22s %16s %10d %10d\n" "single (self-timed)"
    (Rat.to_string base.Scenario.Product.worst_rate)
    base.Scenario.Product.product_states base.Scenario.Product.product_edges;
  Printf.printf "%-22s %16s %10d %10d   %.3f s\n" "full<->degraded"
    (Rat.to_string r.Scenario.Product.worst_rate)
    r.Scenario.Product.product_states r.Scenario.Product.product_edges dt;
  print_endline
    "(the worst-case cycle alternates modes, paying both rebinding delays;\n\
    \ the product explores every reachable (mode, normalized-occupancy)\n\
    \ pair on the same packed engine as the self-timed analysis)"
