(* Stress/soak the allocation daemon and check its invariants.

   Forks `sdf3_serve` itself (see --serve-bin), swarms it with --clients
   thread clients sending a seeded deterministic workload, then drains
   and verdicts the oracles: exactly-one response per request id, every
   "overloaded" backed by a provably full admission window, the journal
   byte-identical to a sequential in-process re-run, interactive p99
   below batch p50 under saturation, and a clean exit-0 drain with the
   socket unlinked. Exit 0 iff every oracle passed — the CI load-smoke
   job and test/cli/loadtest.t grep the `loadtest: oracle ...` lines. *)

let run root socket journal daemon_log report serve_bin clients requests seed
    mode rps think_ms pipeline drain_after_s max_inflight reserved_slots
    workers timeout_s no_latency_check tcp mix_i mix_s mix_b cases_count =
  let cfg =
    {
      (Loadtest.Driver.default_config ~serve_bin) with
      Loadtest.Driver.root;
      socket;
      journal;
      daemon_log;
      report;
      clients;
      requests;
      seed;
      mode =
        (if mode = "open" then Loadtest.Driver.Open else Loadtest.Driver.Closed);
      rps;
      think_ms;
      pipeline = max 1 pipeline;
      drain_after_s;
      max_inflight;
      reserved_slots;
      workers;
      timeout_s;
      latency_check = not no_latency_check;
      tcp;
      mix =
        {
          Loadtest.Workload.interactive = mix_i;
          standard = mix_s;
          batch = mix_b;
        };
      cases_count;
    }
  in
  exit (Loadtest.Driver.run cfg)

open Cmdliner

let root =
  Arg.(
    value
    & opt (some dir) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Directory of .xml cases to load against (default: generate a \
              small corpus in a temp dir)")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket for the forked daemon (default: temp dir)")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Daemon journal path (default: temp dir; always checked)")

let daemon_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "daemon-log" ] ~docv:"FILE"
        ~doc:"Capture the daemon's stdout/stderr here (echoed on failure)")

let report =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write a JSON report: totals, latency histograms per tier, \
              oracle verdicts and the daemon's wire-fetched stats")

let serve_bin =
  Arg.(
    value & opt string "sdf3_serve"
    & info [ "serve-bin" ] ~docv:"EXE"
        ~doc:"The daemon executable to fork (resolved via PATH)")

let clients =
  Arg.(
    value & opt int 50
    & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections")

let requests =
  Arg.(
    value & opt int 10
    & info [ "requests" ] ~docv:"N" ~doc:"Requests per client")

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Workload seed; the run is a deterministic function of \
              (seed, clients, requests)")

let mode =
  Arg.(
    value
    & opt (enum [ ("closed", "closed"); ("open", "open") ]) "closed"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"closed: each client loops with think time; open: aggregate \
              --rps schedule")

let rps =
  Arg.(
    value & opt float 200.
    & info [ "rps" ] ~docv:"R"
        ~doc:"Open mode: target aggregate requests per second")

let think_ms =
  Arg.(
    value & opt float 5.
    & info [ "think-ms" ] ~docv:"MS"
        ~doc:"Closed mode: pause after each response")

let pipeline =
  Arg.(
    value & opt int 4
    & info [ "pipeline" ] ~docv:"N"
        ~doc:"Max outstanding requests per connection (responses matched \
              by id)")

let drain_after_s =
  Arg.(
    value
    & opt (some float) None
    & info [ "drain-after-s" ] ~docv:"S"
        ~doc:"Initiate the drain $(docv) seconds in, while requests are \
              still in flight (default: after all clients finish)")

let max_inflight =
  Arg.(
    value & opt int 8
    & info [ "max-inflight" ] ~docv:"N" ~doc:"Daemon admission window")

let reserved_slots =
  Arg.(
    value & opt int 1
    & info [ "reserved-slots" ] ~docv:"N"
        ~doc:"Daemon slots reserved for interactive requests")

let workers =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:"Daemon worker threads (0 = one per admission slot)")

let timeout_s =
  Arg.(
    value & opt float 120.
    & info [ "timeout-s" ] ~docv:"S"
        ~doc:"Hard wall-clock cap on the client phase")

let no_latency_check =
  Arg.(
    value & flag
    & info [ "no-latency-check" ]
        ~doc:"Skip the interactive-p99 < batch-p50 oracle (e.g. on \
              heavily loaded CI machines)")

let tcp =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Drive the daemon over loopback TCP port $(docv) instead of \
              the Unix socket")

let mix_interactive =
  Arg.(
    value & opt float 0.3
    & info [ "mix-interactive" ] ~docv:"W" ~doc:"Interactive tier weight")

let mix_standard =
  Arg.(
    value & opt float 0.3
    & info [ "mix-standard" ] ~docv:"W" ~doc:"Standard tier weight")

let mix_batch =
  Arg.(
    value & opt float 0.4
    & info [ "mix-batch" ] ~docv:"W" ~doc:"Batch tier weight")

let cases_count =
  Arg.(
    value & opt int 6
    & info [ "cases" ] ~docv:"N"
        ~doc:"Size of the generated corpus when --root is absent")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_loadtest"
       ~doc:
         "Load-test the allocation daemon with a seeded workload and \
          invariant oracles: no lost or duplicated responses, honest \
          overload rejections, byte-checked journal, tiered latency, \
          clean drain")
    Term.(
      const run $ root $ socket $ journal $ daemon_log $ report $ serve_bin
      $ clients $ requests $ seed $ mode $ rps $ think_ms $ pipeline
      $ drain_after_s $ max_inflight $ reserved_slots $ workers $ timeout_s
      $ no_latency_check $ tcp $ mix_interactive $ mix_standard $ mix_batch
      $ cases_count)

let () = exit (Cmd.eval cmd)
