(* Differential / metamorphic fuzzer for the analysis and allocation
   stack. Generates random consistent SDFGs, checks the oracle catalogue
   from lib/check on each, and on the first disagreement shrinks the case
   and persists it into the regression corpus. *)

let run count time seed max_states corpus no_corpus mutant scenario_mutant
    app_every verbose log_level metrics_file metrics_stderr trace_file =
  Cli_common.setup_logs log_level;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  (* The registry is written before every exit path, including the
     counterexample and undetected-mutant failures. *)
  let finish code =
    Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
      ~to_stderr:metrics_stderr ();
    if code <> 0 then exit code
  in
  let log msg = if verbose then Printf.eprintf "%s\n%!" msg in
  let cfg =
    {
      Check.Harness.seed;
      count;
      time_budget = time;
      max_states;
      mutant;
      scenario_mutant;
      corpus_dir = (if no_corpus then None else Some corpus);
      app_every;
      log;
    }
  in
  if mutant then log "fuzz: mutant injection enabled (self-test mode)";
  if scenario_mutant then
    log "fuzz: scenario mutant injection enabled (self-test mode)";
  let s = Check.Harness.run cfg in
  match s.Check.Harness.counterexample with
  | None ->
      Printf.printf "fuzz: seed %d, %d cases, %d oracle checks, %d skips, 0 failures\n"
        seed s.Check.Harness.cases s.Check.Harness.checks
        s.Check.Harness.skips;
      if mutant || scenario_mutant then begin
        (* A mutant run that finds nothing means the oracles are blind. *)
        Printf.printf "fuzz: ERROR: injected mutant was not detected\n";
        finish 2
      end
      else finish 0
  | Some cex ->
      let open Check.Harness in
      Printf.printf "fuzz: counterexample after %d cases (seed %d)\n"
        s.cases seed;
      Printf.printf "  oracle:  %s\n" cex.oracle;
      Printf.printf "  reason:  %s\n" cex.message;
      Printf.printf "  shrunk:  %d actors, %d channels (%d shrink steps)\n"
        (Sdf.Sdfg.num_actors cex.shrunk.Check.Case.graph)
        (Sdf.Sdfg.num_channels cex.shrunk.Check.Case.graph)
        cex.shrink_steps;
      (match cex.written with
      | Some path -> Printf.printf "  saved:   %s\n" path
      | None -> ());
      print_string (Check.Case.to_text cex.shrunk);
      finish 1

open Cmdliner

let count =
  Arg.(
    value & opt int 200
    & info [ "count"; "n" ] ~doc:"Number of random cases to generate")

let time =
  Arg.(
    value
    & opt (some float) None
    & info [ "time" ] ~docv:"SECONDS"
        ~doc:"Stop after $(docv) of wall clock, whichever of count/time\n\
             \ comes first")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master RNG seed")

let max_states =
  Arg.(
    value & opt int 50_000
    & info [ "max-states" ]
        ~doc:"State-space cap per analysis; larger caps skip fewer cases")

let corpus =
  Arg.(
    value
    & opt string Check.Corpus.default_dir
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for shrunk counterexamples (created on demand)")

let no_corpus =
  Arg.(
    value & flag
    & info [ "no-corpus" ] ~doc:"Do not persist counterexamples")

let mutant =
  Arg.(
    value & flag
    & info [ "inject-mutant" ]
        ~doc:
          "Self-test: inject an off-by-one initial-token mutant into the\n\
          \ MCR replay and expect the differential oracle to catch and\n\
          \ shrink it (exit 2 if it does not)")

let scenario_mutant =
  Arg.(
    value & flag
    & info [ "inject-scenario-mutant" ]
        ~doc:
          "Self-test: make the scenario product engine drop every\n\
          \ mode-transition delay while the brute-force enumeration keeps\n\
          \ them, and expect diff.scenario-vs-enumeration to catch and\n\
          \ shrink the divergence (exit 2 if it does not)")

let app_every =
  Arg.(
    value & opt int 10
    & info [ "app-every" ]
        ~doc:"Run the allocation-flow invariance oracle on every Nth case\n\
             \ (0 disables)")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress on stderr")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_fuzz"
       ~doc:"Differential and metamorphic fuzzing of the analysis stack")
    Term.(
      const run $ count $ time $ seed $ max_states $ corpus $ no_corpus
      $ mutant $ scenario_mutant $ app_every $ verbose $ Cli_common.log_level
      $ Cli_common.metrics_file $ Cli_common.metrics_stderr
      $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
