(* Allocation-as-a-service daemon (and its one-shot client mode).

   Daemon: listen on a Unix-domain socket (and optionally loopback TCP)
   for newline-delimited JSON allocation/analysis requests, answer each
   under a per-request QoS budget, keep the analysis memo caches warm
   across requests, journal executed flow requests in the sdf3_batch
   JSONL format, and drain gracefully on the `drain` verb or SIGTERM.

   Client: `--request JSON` (repeatable) connects to a running daemon —
   retrying while it boots — sends each request as one line, waits for
   its reply, and prints it. A rejected request (status "overloaded" or
   "draining") is retried up to --retry times with capped exponential
   backoff; if the final reply is still a rejection the client exits 3,
   so scripts can tell "busy" (3) from "broken" (1). This is what the
   cram tests and the CI serve-smoke job script the protocol with. *)

let connect_retry ~addr ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let domain = Unix.domain_of_sockaddr addr in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Some fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _) ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.05;
          attempt ()
        end
    | exception e ->
        Unix.close fd;
        raise e
  in
  attempt ()

(* Was the reply an admission rejection (retryable "busy"), as opposed
   to ok or a hard error? *)
let rejected_status line =
  match Obs.Json.parse line with
  | Error _ -> false
  | Ok j -> (
      match Obs.Json.member "status" j with
      | Some (Obs.Json.String ("overloaded" | "draining")) -> true
      | _ -> false)

let client ~socket ~tcp ~timeout_s ~retry requests =
  let addr =
    match tcp with
    | Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | None -> Unix.ADDR_UNIX socket
  in
  let fd = ref None in
  let ensure_fd () =
    match !fd with
    | Some _ as f -> f
    | None -> (
        match connect_retry ~addr ~timeout_s with
        | Some f ->
            fd := Some f;
            !fd
        | None ->
            Printf.eprintf "could not connect within %.0fs\n" timeout_s;
            None)
  in
  let close_fd () =
    Option.iter (fun f -> try Unix.close f with Unix.Unix_error _ -> ()) !fd;
    fd := None
  in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let send_line f line =
    let b = Bytes.of_string (line ^ "\n") in
    let off = ref 0 in
    try
      while !off < Bytes.length b do
        match Unix.write f b !off (Bytes.length b - !off) with
        | n -> off := !off + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      true
    with Unix.Unix_error _ -> false
  in
  (* One reply line; the daemon may close right after the last reply
     (drain), so end-of-stream is reported as [None], not an exception. *)
  let rec read_line f =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
    | None -> (
        match Unix.read f chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_line f
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line f
        | exception Unix.Unix_error _ -> None)
  in
  let incomplete = ref false in
  let rejected = ref false in
  let send_request req =
    let rec attempt k =
      match ensure_fd () with
      | None -> incomplete := true
      | Some f ->
          if not (send_line f req) then begin
            close_fd ();
            incomplete := true
          end
          else (
            match read_line f with
            | None ->
                close_fd ();
                incomplete := true
            | Some reply ->
                if rejected_status reply && k < retry then begin
                  (* Capped exponential backoff before resending. *)
                  Unix.sleepf (Float.min 1.0 (0.05 *. (2. ** float_of_int k)));
                  attempt (k + 1)
                end
                else begin
                  print_endline reply;
                  if rejected_status reply then rejected := true
                end)
    in
    attempt 0
  in
  List.iter send_request requests;
  close_fd ();
  if !incomplete then 1 else if !rejected then 3 else 0

let serve socket tcp root journal max_inflight reserved_slots workers
    cache_capacity idle_timeout read_timeout requests retry connect_timeout
    jobs log_level metrics_file metrics_stderr trace_file =
  if requests <> [] then
    exit (client ~socket ~tcp ~timeout_s:connect_timeout ~retry requests);
  Cli_common.setup_logs log_level;
  Cli_common.init_jobs jobs;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  Option.iter Analysis.Memo.set_capacity_all cache_capacity;
  let cancel = Budget.Cancel.create () in
  let admission =
    Server.Admission.create ~reserved:reserved_slots ~capacity:max_inflight ()
  in
  let journal_oc =
    Option.map
      (fun path ->
        open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path)
      journal
  in
  (* Analysis parallelism inside one request: only honoured when the
     daemon serves requests one at a time (workers = 1); Daemon.run
     clamps it otherwise — see Handler.clamp_sweep_for_pool. *)
  let sweep_domains =
    if jobs <= 0 then Domain.recommended_domain_count () else jobs
  in
  let handler =
    Server.Handler.create ~root ?journal:journal_oc ~cancel ~sweep_domains
      ~admission ()
  in
  (* The handler only flips flags here; the accept loop acts on them at
     its next tick (begin_drain + cancel trigger). *)
  let term = Atomic.make false in
  let on_signal _ = Atomic.set term true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let cfg =
    {
      (Server.Daemon.default_config ~socket_path:socket) with
      Server.Daemon.tcp_port = tcp;
      idle_timeout_s = idle_timeout;
      read_timeout_s = read_timeout;
      workers;
    }
  in
  let code =
    Server.Daemon.run
      ~external_stop:(fun () -> Atomic.get term)
      ~on_ready:(fun () ->
        Printf.printf "sdf3_serve: listening on %s\n%!" socket)
      cfg handler ~cancel
  in
  Option.iter close_out journal_oc;
  Printf.printf "sdf3_serve: drained after %d request(s), %d rejected\n%!"
    (Server.Handler.requests_served handler)
    (Server.Handler.requests_rejected handler);
  if Obs.enabled () then begin
    let hits = float_of_int (Obs.Counter.value "cache.hits") in
    let misses = float_of_int (Obs.Counter.value "cache.misses") in
    if hits +. misses > 0. then
      Obs.Gauge.set "server.cache_hit_rate" (hits /. (hits +. misses))
  end;
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  exit code

open Cmdliner

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (daemon) or connect to \
              (client)")

let tcp =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Also listen on (or, with --request, connect to) loopback TCP \
              port $(docv)")

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Directory request \"file\" fields resolve against")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Append one sdf3_batch-format JSON line per executed flow \
              request (the durable request log)")

let max_inflight =
  Arg.(
    value & opt int 4
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Admission window: concurrent work requests beyond $(docv) \
              are rejected with status \"overloaded\"")

let reserved_slots =
  Arg.(
    value & opt int 1
    & info [ "reserved-slots" ] ~docv:"N"
        ~doc:"Hold $(docv) admission slots back for interactive-tier \
              requests (clamped to at most max-inflight - 1); standard \
              and batch work admits only into the remaining slots")

let workers =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker threads executing admitted requests (0 = one per \
              admission slot). Requests pipelined on one connection run \
              concurrently; responses are matched by id")

let cache_capacity =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Bound every analysis memo table to $(docv) entries \
              (LRU-ish eviction; default 65536 per table)")

let idle_timeout =
  Arg.(
    value & opt float 300.
    & info [ "idle-timeout-s" ] ~docv:"S"
        ~doc:"Close a connection idle between requests for $(docv) seconds")

let read_timeout =
  Arg.(
    value & opt float 30.
    & info [ "read-timeout-s" ] ~docv:"S"
        ~doc:"Close a connection stalled mid-request for $(docv) seconds")

let requests =
  Arg.(
    value & opt_all string []
    & info [ "request" ] ~docv:"JSON"
        ~doc:"Client mode: send $(docv) as one request line to a running \
              daemon and print the reply (repeatable, in order)")

let retry =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:"Client mode: resend a rejected request (\"overloaded\" or \
              \"draining\") up to $(docv) times with capped exponential \
              backoff; exit 3 if the final reply is still a rejection")

let connect_timeout =
  Arg.(
    value & opt float 10.
    & info [ "connect-timeout-s" ] ~docv:"S"
        ~doc:"Client mode: retry connecting for up to $(docv) seconds \
              (covers daemon boot time)")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_serve"
       ~doc:
         "Allocation-as-a-service daemon: newline-delimited JSON requests \
          with QoS budgets, admission control, a shared memo cache and \
          graceful drain")
    Term.(
      const serve $ socket $ tcp $ root $ journal $ max_inflight
      $ reserved_slots $ workers $ cache_capacity $ idle_timeout
      $ read_timeout $ requests $ retry $ connect_timeout $ Cli_common.jobs
      $ Cli_common.log_level $ Cli_common.metrics_file
      $ Cli_common.metrics_stderr $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
