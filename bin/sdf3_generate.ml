(* Generate random benchmark application graphs (the paper's Section 10.1
   benchmark sets) and write them as text files. *)

module Appgraph = Appmodel.Appgraph

let generate set seq count out xml log_level metrics_file metrics_stderr
    trace_file =
  Cli_common.setup_logs log_level;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  if set < 1 || set > 4 then begin
    Printf.eprintf "set must be 1..4\n";
    exit 1
  end;
  let apps =
    Obs.Span.with_ "generate.benchset" (fun () ->
        Gen.Benchsets.sequence ~set ~seq ~count)
  in
  List.iteri
    (fun i app ->
      let g = app.Appgraph.graph in
      let taus =
        Array.init (Sdf.Sdfg.num_actors g) (fun a ->
            Appgraph.max_exec_time app a)
      in
      let name = app.Appgraph.app_name in
      match out with
      | None -> print_string (Sdf.Textio.print ~exec_times:taus name g)
      | Some dir ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s.%s" name (if xml then "xml" else "sdf"))
          in
          if xml then Appmodel.Sdf3_xml.write_app_file path app
          else Sdf.Textio.write_file ~exec_times:taus path name g;
          Printf.printf "wrote %s (%d actors, lambda=%s)\n" path
            (Sdf.Sdfg.num_actors g)
            (Sdf.Rat.to_string app.Appgraph.lambda);
          ignore i)
    apps;
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ()

open Cmdliner

let set = Arg.(value & opt int 1 & info [ "set" ] ~doc:"Benchmark set (1..4)")
let seq = Arg.(value & opt int 0 & info [ "seq" ] ~doc:"Sequence index (0..2)")
let count = Arg.(value & opt int 5 & info [ "count"; "n" ] ~doc:"Number of graphs")

let out =
  Arg.(
    value
    & opt (some dir) None
    & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Write one .sdf file per graph into $(docv)")

let xml =
  Arg.(
    value & flag
    & info [ "xml" ]
        ~doc:
          "With $(b,--out), write full SDF3 application XML (.xml, with \
           resource annotations — the format $(b,sdf3_flow) and \
           $(b,sdf3_batch) read) instead of the plain .sdf text format")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_generate" ~doc:"Generate random benchmark SDFGs")
    Term.(
      const generate $ set $ seq $ count $ out $ xml $ Cli_common.log_level
      $ Cli_common.metrics_file $ Cli_common.metrics_stderr
      $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
