(* Analyze an SDFG from a text file: consistency, repetition vector,
   deadlock, self-timed throughput, HSDF size and MCR — the SDFG analysis
   toolbox of the library, packaged like SDF3's sdf3analysis tool. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(* XML application files carry Gamma; analyse with worst-case times. *)
let load file =
  if Filename.check_suffix file ".xml" then begin
    match Appmodel.Sdf3_xml.read_app_file file with
    | app ->
        let g = app.Appmodel.Appgraph.graph in
        let taus =
          Array.init (Sdfg.num_actors g) (fun a ->
              Appmodel.Appgraph.max_exec_time app a)
        in
        { Sdf.Textio.doc_name = app.Appmodel.Appgraph.app_name; graph = g;
          exec_times = Some taus }
    | exception Appmodel.Sdf3_xml.Error m ->
        Printf.eprintf "%s: %s\n" file m;
        exit 1
    | exception Sdf.Xml.Parse_error { position; message } ->
        Printf.eprintf "%s: offset %d: %s\n" file position message;
        exit 1
  end
  else
    match Sdf.Textio.parse_file file with
    | doc -> doc
    | exception Sdf.Textio.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" file line message;
        exit 1

let analyze_scenario graph taus path =
  match Scenario.Fsm.parse_file ~graph ~taus path with
  | exception Scenario.Fsm.Parse_error { line; message } ->
      if line > 0 then Printf.eprintf "%s:%d: %s\n" path line message
      else Printf.eprintf "%s: %s\n" path message;
      exit 1
  | fsm -> (
      Printf.printf "scenario %s: %d modes, %d transitions (initial %s)\n"
        fsm.Scenario.Fsm.name
        (Array.length fsm.Scenario.Fsm.modes)
        (Array.length fsm.Scenario.Fsm.transitions)
        fsm.Scenario.Fsm.modes.(fsm.Scenario.Fsm.initial).Scenario.Fsm.m_name;
      match
        Obs.Span.with_ "analyze.scenario" (fun () ->
            Scenario.Product.analyze fsm)
      with
      | r ->
          Printf.printf
            "scenario worst-case rate = %s iteration(s)/time unit\n"
            (Rat.to_string r.Scenario.Product.worst_rate);
          Printf.printf "scenario product: %d states, %d edges\n"
            r.Scenario.Product.product_states
            r.Scenario.Product.product_edges
      | exception Scenario.Product.Deadlocked ->
          Printf.printf "scenario DEADLOCKS (some mode sequence jams)\n";
          exit 3
      | exception Scenario.Product.State_space_exceeded n ->
          Printf.printf "scenario product state space exceeds %d states\n" n;
          exit 4)

let analyze file show_hsdf show_dot show_trace scenario jobs log_level
    metrics_file metrics_stderr trace_file =
  Cli_common.setup_logs log_level;
  (* The sweep spawns its own shard domains — the Par pool stays down. *)
  let domains = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  (match load file with
  | { Sdf.Textio.doc_name; graph; exec_times } -> (
      Printf.printf "graph %s: %d actors, %d channels\n" doc_name
        (Sdfg.num_actors graph) (Sdfg.num_channels graph);
      (match Sdf.Repetition.compute graph with
      | Sdf.Repetition.Inconsistent { channel } ->
          Printf.printf "INCONSISTENT (witness channel %s)\n"
            (Sdfg.channel_name graph channel);
          exit 2
      | Sdf.Repetition.Disconnected ->
          Printf.printf "NOT CONNECTED\n";
          exit 2
      | Sdf.Repetition.Consistent gamma -> (
          print_string "repetition vector:";
          Array.iteri
            (fun a v -> Printf.printf " %s=%d" (Sdfg.actor_name graph a) v)
            gamma;
          print_newline ();
          (match Sdf.Deadlock.check graph gamma with
          | Sdf.Deadlock.Deadlock_free -> print_endline "deadlock free"
          | Sdf.Deadlock.Deadlocked { blocked } ->
              Printf.printf "DEADLOCKS (blocked:%s)\n"
                (String.concat ","
                   (List.map (Sdfg.actor_name graph) blocked));
              exit 3);
          if show_hsdf then begin
            let h = Sdf.Hsdf.convert graph gamma in
            Printf.printf "hsdf: %d actors, %d channels\n"
              (Sdfg.num_actors h.Sdf.Hsdf.graph)
              (Sdfg.num_channels h.Sdf.Hsdf.graph)
          end;
          match exec_times with
          | None ->
              if scenario <> None then begin
                Printf.eprintf
                  "--scenario requires execution times in the graph file\n";
                exit 1
              end;
              print_endline
                "no execution times in file; skipping throughput analysis"
          | Some taus ->
              (match show_trace with
              | None -> ()
              | Some path ->
                  let t = Analysis.Trace.selftimed graph taus in
                  let oc = open_out path in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () ->
                      output_string oc
                        (Analysis.Trace.to_dot
                           ~actor_name:(Sdfg.actor_name graph) t));
                  Printf.printf "state-space trace written to %s\n" path);
              let r =
                Obs.Span.with_ "analyze.selftimed" (fun () ->
                    Analysis.Selftimed.analyze_parallel ~domains graph taus)
              in
              Array.iteri
                (fun a thr ->
                  Printf.printf "throughput %s = %s\n"
                    (Sdfg.actor_name graph a) (Rat.to_string thr))
                r.Analysis.Selftimed.throughput;
              Printf.printf
                "state space: %d states, transient %d, period %d\n"
                r.Analysis.Selftimed.states r.Analysis.Selftimed.transient
                r.Analysis.Selftimed.period;
              Printf.printf "periodic phase: %d iteration(s) per period\n"
                r.Analysis.Selftimed.iterations_per_period;
              let h =
                Obs.Span.with_ "analyze.hsdf_convert" (fun () ->
                    Sdf.Hsdf.convert graph gamma)
              in
              (match
                 Obs.Span.with_ "analyze.mcr" (fun () ->
                     Analysis.Mcr.max_cycle_ratio h.Sdf.Hsdf.graph
                       (Sdf.Hsdf.timing h taus))
               with
              | Analysis.Mcr.Ratio r ->
                  Printf.printf "hsdf max cycle ratio = %s\n" (Rat.to_string r)
              | Analysis.Mcr.Acyclic -> print_endline "hsdf: acyclic"
              | Analysis.Mcr.Zero_token_cycle _ ->
                  print_endline "hsdf: zero-token cycle");
              Option.iter (analyze_scenario graph taus) scenario));
      match show_dot with
      | None -> ()
      | Some path ->
          Sdf.Dot.write_file ?exec_times ~name:doc_name path graph;
          Printf.printf "dot written to %s\n" path));
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ()

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SDFG text file")

let hsdf = Arg.(value & flag & info [ "hsdf" ] ~doc:"Report the HSDF expansion size")

let dot =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT" ~doc:"Write a Graphviz rendering to $(docv)")

(* [--trace] is the shared Chrome-trace timeline (Cli_common.trace_file);
   the state-space trajectory dump lives under [--state-trace]. *)
let state_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-trace" ] ~docv:"OUT"
        ~doc:"Write the self-timed state-space trace (Fig.-5 style) to $(docv)")

let scenario =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Scenario FSM over the graph (text format, see lib/scenario):\n\
          \ modes with their own rates and execution times, transitions\n\
          \ with rebinding delays. Reports the worst-case throughput over\n\
          \ all scenario sequences by product-state-space exploration.\n\
          \ Requires execution times in $(i,FILE)'s base graph.")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_analyze" ~doc:"Analyse a synchronous dataflow graph")
    Term.(
      const analyze $ file $ hsdf $ dot $ state_trace $ scenario
      $ Cli_common.jobs
      $ Cli_common.log_level $ Cli_common.metrics_file
      $ Cli_common.metrics_stderr $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
