(* Shared command-line plumbing for the sdf3_* binaries: the Logs reporter
   setup (previously only sdf3_flow installed one, so library log sources
   were silently dropped by the other tools) and the telemetry flags. *)

let setup_logs level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level level

open Cmdliner

let log_level =
  Arg.(
    value
    & opt
        (enum
           [ ("quiet", None); ("info", Some Logs.Info); ("debug", Some Logs.Debug) ])
        None
    & info [ "log" ] ~docv:"LEVEL"
        ~doc:"Logging: quiet (default), info (progress) or debug (every \
              probe, plus live telemetry spans when metrics are enabled)")

let metrics_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Enable telemetry and write the registry (counters, timers, \
              events) as JSON to $(docv) on exit")

let metrics_stderr =
  Arg.(
    value & flag
    & info [ "metrics-stderr" ]
        ~doc:"Enable telemetry and dump the registry as JSON to stderr on \
              exit")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Enable timeline tracing and write the run as Chrome \
              trace-event JSON (openable in Perfetto or chrome://tracing) \
              to $(docv) on exit; parallel work appears as one track per \
              domain")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Evaluate independent throughput checks on $(docv) domains \
              (default 1: strictly sequential, byte-identical output). 0 \
              picks the machine's recommended domain count.")

(* Call before the workload. The worker hook is installed first so the
   pool's domains label their own trace tracks as they spawn. *)
let init_jobs n =
  Par.set_worker_hook (fun i ->
      Obs.Trace.set_thread_name (Printf.sprintf "worker %d" (i + 1)));
  Par.set_jobs n

(* Call before the workload: enables the registry (and the Logs live sink
   at debug level) when any metrics output was requested, starts the
   timeline when a trace was, and routes the budget's amortised probe to
   the states/s heartbeat in either case. *)
let init_metrics ?(trace = None) ~file ~to_stderr () =
  if file <> None || to_stderr then begin
    Obs.set_enabled true;
    Obs.Sink.logs ()
  end;
  (match trace with
  | None -> ()
  | Some _ ->
      Obs.set_enabled true;
      Obs.Trace.set_thread_name "main";
      Obs.Trace.start ());
  if Obs.enabled () then
    Budget.set_probe_hook (fun ~states -> Obs.Heartbeat.probe ~states)

(* [Par] is dependency-free (it cannot record into [Obs] itself), so the
   pool's lifetime totals are copied into counters at serialization time. *)
let export_par_stats () =
  if Obs.enabled () then begin
    Obs.Counter.add "pool.jobs" (Par.jobs ());
    Obs.Counter.add "pool.tasks" (Par.tasks_executed ());
    Obs.Counter.add "pool.skipped" (Par.tasks_skipped ());
    Obs.Counter.add "pool.batches" (Par.batches_executed ())
  end

let write_metrics ?(trace = None) ~file ~to_stderr () =
  export_par_stats ();
  (match file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.write_channel oc));
  if to_stderr then begin
    Obs.write_channel stderr;
    flush stderr
  end;
  match trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.Trace.write_channel oc)
