(* Aggregate metrics registries, batch journals and timeline traces into
   one static HTML dashboard; also a trace validator for CI
   (--check-trace). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let check_trace path =
  let text = try read_file path with Sys_error e -> fail "%s" e in
  match Obs.Json.parse text with
  | Error e -> fail "%s: invalid JSON: %s" path e
  | Ok j -> (
      match Obs.Trace.validate j with
      | Error e -> fail "%s: invalid trace: %s" path e
      | Ok { Obs.Trace.events; tracks } ->
          Printf.printf "%s: ok (%d events, %d tracks)\n" path events tracks)

let run metrics journals traces check output title =
  match check with
  | _ :: _ -> List.iter check_trace check
  | [] ->
      let registries =
        List.map
          (fun path ->
            let text = try read_file path with Sys_error e -> fail "%s" e in
            match Obs.Json.parse text with
            | Error e -> fail "%s: invalid JSON: %s" path e
            | Ok j -> (
                match
                  Report.registry_of_json ~label:(Filename.basename path) j
                with
                | Error e -> fail "%s" e
                | Ok r -> r))
          metrics
      in
      let journals =
        List.map
          (fun path ->
            let text = try read_file path with Sys_error e -> fail "%s" e in
            match
              Report.journal_of_string ~label:(Filename.basename path) text
            with
            | Error e -> fail "%s" e
            | Ok j -> j)
          journals
      in
      let page = Report.html ?title ~registries ~journals ~traces () in
      let oc = open_out_bin output in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc page);
      Printf.printf "wrote %s\n" output

open Cmdliner

let metrics =
  Arg.(
    value & opt_all file []
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Metrics registry JSON (from $(b,--metrics) on the other tools). \
           Repeatable; timers are merged across registries.")

let journals =
  Arg.(
    value & opt_all file []
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"$(b,sdf3_batch) JSONL journal. Repeatable.")

let traces =
  Arg.(
    value & opt_all string []
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Chrome trace-event JSON to link (not inline) from the report. \
           Repeatable.")

let check =
  Arg.(
    value & opt_all file []
    & info [ "check-trace" ] ~docv:"FILE"
        ~doc:
          "Validate $(docv) as Chrome trace-event JSON (well-formed, \
           monotone per-track timestamps, balanced begin/end pairs) and \
           exit; no report is written. Repeatable; exits non-zero on the \
           first invalid file.")

let output =
  Arg.(
    value
    & opt string "report.html"
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output HTML file")

let title =
  Arg.(
    value
    & opt (some string) None
    & info [ "title" ] ~docv:"TITLE" ~doc:"Report title")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_report"
       ~doc:"Render an HTML run report from metrics, journals and traces")
    Term.(const run $ metrics $ journals $ traces $ check $ output $ title)

let () = exit (Cmd.eval cmd)
