(* Batch driver: run the allocation flow over a directory of SDF3-style
   application files with a per-case resource budget, isolating per-case
   failure and journaling one JSON line per case so an interrupted batch
   can be resumed.

   The journal is the contract: it contains only deterministic fields
   (case id, status, throughput / failure label — never timings or state
   counts), lines appear in sorted case order and are flushed one by one,
   so a resumed run produces a journal byte-identical to an uninterrupted
   one on the same inputs. *)

module Appgraph = Appmodel.Appgraph
module Rat = Sdf.Rat
open Core

let parse_platform = function
  | "example" -> Appmodel.Models.example_platform ()
  | "multimedia" -> Appmodel.Models.multimedia_platform ()
  | "mesh3x3" -> Gen.Benchsets.architecture 0
  | s ->
      Printf.eprintf "unknown platform %S (try example, multimedia, mesh3x3)\n"
        s;
      exit 1

(* Journal lines come from Server.Journal — the same encoder the daemon's
   request log uses, so a served journal and a batch journal over the same
   inputs are byte-comparable. *)
module Journal = Server.Journal

let line_of json = Journal.to_line json
let line_error case msg = line_of (Journal.error ~case msg)

(* One case, fully isolated: every exception — parse error, inconsistent
   graph, analysis bug — becomes this case's "error" line instead of
   taking down the batch. *)
let run_case ~dir ~arch ~deadline ~case_max_states case =
  (* Timeline bracketing: the span shows the case on its executing
     domain's track, the async arc ties the whole case together even when
     chunked scheduling moves it between domains across a resume. *)
  let async_id = Hashtbl.hash case in
  Obs.Trace.async_begin ~cat:"batch" ~id:async_id case;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.async_end ~cat:"batch" ~id:async_id case)
  @@ fun () ->
  Obs.Span.with_ "batch.case" @@ fun () ->
  try
    let app = Appmodel.Sdf3_xml.read_app_file (Filename.concat dir case) in
    (* The wall clock starts when the case starts (here, inside the pool
       task), not when the batch was launched. *)
    let budget = Budget.make ?wall_s:deadline ?max_states:case_max_states () in
    let r = Flow.allocate_with_retry ~budget app arch in
    line_of (Journal.of_flow_result ~case r)
  with
  | Appmodel.Sdf3_xml.Error m -> line_error case m
  | Sdf.Xml.Parse_error { position; message } ->
      line_error case (Printf.sprintf "offset %d: %s" position message)
  | e -> line_error case (Printexc.to_string e)

(* Journal recovery for --resume: keep only the complete (newline-
   terminated) prefix — a line torn by a kill is rewritten away — and
   collect the case ids it already covers. *)
let recover journal =
  match open_in_bin journal with
  | exception Sys_error _ -> []
  | ic ->
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      let cut =
        match String.rindex_opt content '\n' with
        | None -> 0
        | Some i -> i + 1
      in
      let prefix = String.sub content 0 cut in
      if cut < len then begin
        let oc = open_out_bin journal in
        output_string oc prefix;
        close_out oc
      end;
      String.split_on_char '\n' prefix
      |> List.filter_map (fun line ->
             (* Every journal line starts with {"case":"..."}. *)
             let tag = {|{"case":"|} in
             if String.length line > String.length tag then
               let rest =
                 String.sub line (String.length tag)
                   (String.length line - String.length tag)
               in
               Option.map (String.sub rest 0) (String.index_opt rest '"')
             else None)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec chunks n = function
  | [] -> []
  | l -> (
      let head = take n l in
      match List.filteri (fun i _ -> i >= n) l with
      | [] -> [ head ]
      | rest -> head :: chunks n rest)

let run dir platform_spec deadline case_max_states limit journal resume jobs
    log_level metrics_file metrics_stderr trace_file =
  Cli_common.setup_logs log_level;
  Cli_common.init_jobs jobs;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  let arch = parse_platform platform_spec in
  let cases =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort String.compare
  in
  if cases = [] then begin
    Printf.eprintf "no .xml cases in %s\n" dir;
    exit 1
  end;
  let already = if resume then recover journal else [] in
  if not resume then begin
    (* Fresh run: truncate any stale journal. *)
    let oc = open_out_bin journal in
    close_out oc
  end;
  let todo = List.filter (fun c -> not (List.mem c already)) cases in
  let todo = match limit with None -> todo | Some n -> take n todo in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 journal in
  (* Chunked fan-out: each chunk runs its cases on the pool, then its lines
     are appended in sorted order and flushed — a kill between chunks (or
     mid-append) loses at most one chunk plus one torn line, both of which
     --resume recovers from. *)
  List.iter
    (fun chunk ->
      let lines =
        Par.map (run_case ~dir ~arch ~deadline ~case_max_states) chunk
      in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc)
        lines)
    (chunks (max 1 (Par.jobs ())) todo);
  close_out oc;
  Printf.printf "%d cases done (%d skipped via resume), journal %s\n"
    (List.length todo) (List.length already) journal;
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  (* Exit 1 iff any case of the final journal errored; partial and failed
     cases are expected batch outcomes. *)
  let ic = open_in_bin journal in
  let err = ref false in
  (try
     while true do
       let line = input_line ic in
       let tag = {|"status":"error"|} in
       let tl = String.length tag in
       let ll = String.length line in
       let found = ref false in
       for i = 0 to ll - tl do
         if (not !found) && String.sub line i tl = tag then found := true
       done;
       if !found then err := true
     done
   with End_of_file -> ());
  close_in ic;
  exit (if !err then 1 else 0)

open Cmdliner

let dir =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"DIR" ~doc:"Directory of SDF3 application XML files")

let platform =
  Arg.(
    value
    & opt string "multimedia"
    & info [ "platform" ] ~docv:"NAME"
        ~doc:"Platform: example, multimedia or mesh3x3")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-per-case" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per case; a case that runs out is journaled \
           with status $(b,partial) and the batch moves on")

let case_max_states =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states-per-case" ] ~docv:"N"
        ~doc:
          "State budget per throughput analysis within a case \
           (deterministic, unlike a deadline); exhaustion degrades the \
           case to $(b,partial)")

let limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N"
        ~doc:
          "Process at most $(docv) not-yet-journaled cases, then stop \
           (deterministic interruption, for testing --resume)")

let journal =
  Arg.(
    value
    & opt string "batch.jsonl"
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Checkpoint journal: one JSON line per completed case")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip cases already present in the journal (a torn trailing \
           line is discarded first) and append the remainder")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_batch"
       ~doc:
         "Budgeted batch allocation over a directory of SDFG flow problems, \
          with a resumable checkpoint journal")
    Term.(
      const run $ dir $ platform $ deadline $ case_max_states $ limit $ journal
      $ resume $ Cli_common.jobs $ Cli_common.log_level
      $ Cli_common.metrics_file $ Cli_common.metrics_stderr
      $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
