(* Design-space exploration around one application:
   - the storage-space / throughput trade-off of its graph (the DAC'06
     exploration the paper builds its Theta annotations on), and
   - the cost of tightening the throughput constraint on a platform: how
     much TDMA slice the allocation strategy must reserve as lambda grows. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph

let model_of_name = function
  | "example" -> (Appmodel.Models.example_app (), Appmodel.Models.example_platform ())
  | "mp3" -> (Appmodel.Models.mp3 (), Appmodel.Models.multimedia_platform ())
  | "h263" -> (Appmodel.Models.h263 (), Appmodel.Models.multimedia_platform ())
  | s ->
      Printf.eprintf "unknown model %S (try example, h263, mp3)\n" s;
      exit 1

let buffer_tradeoff app =
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  print_endline "buffer-space / throughput trade-off (worst-case actor times):";
  Printf.printf "  %12s %16s   distribution\n" "total slots" "throughput";
  List.iter
    (fun p ->
      Printf.printf "  %12d %16s   [%s]\n" p.Analysis.Buffer_sizing.total_tokens
        (Rat.to_string p.Analysis.Buffer_sizing.rate)
        (String.concat ";"
           (Array.to_list
              (Array.map string_of_int p.Analysis.Buffer_sizing.distribution))))
    (Analysis.Buffer_sizing.pareto ~max_states:500_000 g taus
       ~output:app.Appgraph.output_actor)

let lambda_sweep app arch =
  print_endline
    "\nconstraint tightness vs reserved TDMA slice (allocation strategy):";
  Printf.printf "  %16s %16s %12s %8s\n" "lambda" "achieved" "slice total" "checks";
  (* Sweep multiples of the model's own constraint. The sweep points are
     independent allocations of one graph, so they fan out over the worker
     pool ([--jobs]); rows are printed afterwards, in sweep order, making
     the output independent of the job count. *)
  [ (1, 4); (1, 2); (3, 4); (1, 1); (5, 4); (3, 2); (2, 1) ]
  |> Par.map (fun (num, den) ->
         let lambda = Rat.mul app.Appgraph.lambda (Rat.make num den) in
         let app = Appgraph.with_lambda app lambda in
         (lambda, Core.Strategy.allocate ~max_states:1_000_000 app arch))
  |> List.iter (fun (lambda, outcome) ->
         match outcome with
         | Ok alloc ->
             Printf.printf "  %16s %16s %12d %8d\n" (Rat.to_string lambda)
               (Rat.to_string alloc.Core.Strategy.throughput)
               (Array.fold_left ( + ) 0 alloc.Core.Strategy.slices)
               alloc.Core.Strategy.stats.Core.Strategy.throughput_checks
         | Error f ->
             Printf.printf "  %16s %s\n" (Rat.to_string lambda)
               (Format.asprintf "%a" Core.Strategy.pp_failure f))

let latency_report app =
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  Printf.printf "\nlatency (self-timed, worst-case actor times):\n";
  (match
     Analysis.Latency.first_output_completion ~max_states:500_000 g taus
       ~output:app.Appgraph.output_actor
   with
  | t -> Printf.printf "  first output token after %d time units\n" t
  | exception Not_found -> print_endline "  output actor starved");
  Printf.printf "  first-iteration makespan: %d time units\n"
    (Analysis.Latency.iteration_makespan ~max_states:500_000 g taus)

let dse model skip_buffers jobs log_level metrics_file metrics_stderr
    trace_file =
  Cli_common.setup_logs log_level;
  Cli_common.init_jobs jobs;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  let app, arch = model_of_name model in
  Printf.printf "design-space exploration for %s (lambda %s)\n\n"
    app.Appgraph.app_name
    (Rat.to_string app.Appgraph.lambda);
  if not skip_buffers then buffer_tradeoff app;
  latency_report app;
  lambda_sweep app arch;
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ()

open Cmdliner

let model =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL" ~doc:"Model name: example, h263 or mp3")

let skip_buffers =
  Arg.(
    value & flag
    & info [ "no-buffers" ]
        ~doc:"Skip the buffer trade-off (slow for strongly multirate graphs)")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_dse" ~doc:"Design-space exploration for an application model")
    Term.(
      const dse $ model $ skip_buffers $ Cli_common.jobs
      $ Cli_common.log_level $ Cli_common.metrics_file
      $ Cli_common.metrics_stderr $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
