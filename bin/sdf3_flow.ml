(* The complete resource-allocation flow (paper Section 9) from the command
   line: allocate a list of applications onto a platform and report
   bindings, schedules, slices and achieved throughput. *)

module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let parse_apps spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> s <> "")
  |> List.mapi (fun i name ->
         match name with
         | "example" -> Appmodel.Models.example_app ()
         | "h263" -> Appmodel.Models.h263 ~name:(Printf.sprintf "h263_%d" i) ()
         | "mp3" -> Appmodel.Models.mp3 ~name:(Printf.sprintf "mp3_%d" i) ()
         | "jpeg" -> Appmodel.Models.jpeg ~name:(Printf.sprintf "jpeg_%d" i) ()
         | "wlan" -> Appmodel.Models.wlan ~name:(Printf.sprintf "wlan_%d" i) ()
         | s ->
             Printf.eprintf
               "unknown application %S (try example, h263, mp3, jpeg, wlan)\n" s;
             exit 1)

let parse_platform = function
  | "example" -> Appmodel.Models.example_platform ()
  | "multimedia" -> Appmodel.Models.multimedia_platform ()
  | "mesh3x3" -> Gen.Benchsets.architecture 0
  | s ->
      Printf.eprintf "unknown platform %S (try example, multimedia, mesh3x3)\n" s;
      exit 1

let parse_weights s =
  match String.split_on_char ',' s |> List.map float_of_string_opt with
  | [ Some c1; Some c2; Some c3 ] -> Core.Cost.weights c1 c2 c3
  | _ ->
      Printf.eprintf "weights must be three comma-separated numbers\n";
      exit 1

open Core

(* Necessary-condition gate: even a perfect allocation cannot beat the
   scenario worst case, so an application whose worst-case output rate
   (over all mode sequences, with worst-case execution times) already
   misses lambda is excluded before any binding work is spent. The gate
   is conservative the other way — passing it does not promise the
   allocated (slice-throttled) graph meets lambda; the flow still
   verifies that per allocation. *)
let scenario_gate path apps =
  List.filter
    (fun (app : Appgraph.t) ->
      let g = app.Appgraph.graph in
      let taus =
        Array.init (Sdf.Sdfg.num_actors g) (fun a ->
            Appgraph.max_exec_time app a)
      in
      match Scenario.Fsm.parse_file ~graph:g ~taus path with
      | exception Scenario.Fsm.Parse_error { line; message } ->
          if line > 0 then Printf.eprintf "%s:%d: %s\n" path line message
          else
            Printf.eprintf "%s (%s): %s\n" path app.Appgraph.app_name message;
          exit 1
      | fsm -> (
          match
            Obs.Span.with_ "flow.scenario_gate" (fun () ->
                Scenario.Product.analyze fsm)
          with
          | exception Scenario.Product.Deadlocked ->
              Printf.printf
                "%s: excluded by scenario gate (a mode sequence deadlocks)\n"
                app.Appgraph.app_name;
              false
          | exception Scenario.Product.State_space_exceeded _ ->
              Printf.printf
                "%s: scenario gate inconclusive (state cap); keeping\n"
                app.Appgraph.app_name;
              true
          | r ->
              let rate = r.Scenario.Product.worst_rate in
              if Sdf.Rat.is_infinite rate then true
              else begin
                (* Worst-case firings of the output actor per time unit:
                   the product rate is in iterations, the slowest mode
                   bounds the output firings one iteration yields. *)
                let out = app.Appgraph.output_actor in
                let gmin =
                  Array.fold_left
                    (fun acc gamma -> min acc gamma.(out))
                    max_int fsm.Scenario.Fsm.gamma
                in
                let out_rate = Sdf.Rat.mul_int rate gmin in
                if Sdf.Rat.compare out_rate app.Appgraph.lambda >= 0 then true
                else begin
                  Printf.printf
                    "%s: excluded by scenario gate (worst-case output rate \
                     %s < lambda %s)\n"
                    app.Appgraph.app_name
                    (Sdf.Rat.to_string out_rate)
                    (Sdf.Rat.to_string app.Appgraph.lambda);
                  false
                end
              end))
    apps

let flow apps_spec files set count platform_spec weights_spec verbose skip
    ordering scenario deploy gantt jobs log_level metrics_file metrics_stderr
    trace_file =
  Cli_common.setup_logs log_level;
  Cli_common.init_jobs jobs;
  Cli_common.init_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ();
  let arch = parse_platform platform_spec in
  let apps =
    match (files, set) with
    | _ :: _, _ ->
        List.map
          (fun path ->
            try Appmodel.Sdf3_xml.read_app_file path with
            | Appmodel.Sdf3_xml.Error m ->
                Printf.eprintf "%s: %s\n" path m;
                exit 1
            | Sdf.Xml.Parse_error { position; message } ->
                Printf.eprintf "%s: offset %d: %s\n" path position message;
                exit 1)
          files
    | [], Some set -> Gen.Benchsets.sequence ~set ~seq:0 ~count
    | [], None -> parse_apps apps_spec
  in
  let apps =
    match scenario with None -> apps | Some path -> scenario_gate path apps
  in
  let weights = parse_weights weights_spec in
  let policy =
    if skip then Multi_app.Skip_failed else Multi_app.Stop_at_first_failure
  in
  let report =
    Multi_app.allocate_until_failure ~weights ~policy ~order:ordering apps arch
  in
  let bound = List.length report.Multi_app.allocations in
  Printf.printf "%d of %d applications allocated\n" bound (List.length apps);
  List.iter
    (fun (a : Strategy.allocation) ->
      let app = a.Strategy.app in
      Printf.printf "\n== %s (lambda %s) ==\n" app.Appgraph.app_name
        (Sdf.Rat.to_string app.Appgraph.lambda);
      Printf.printf "throughput %s after %d throughput checks\n"
        (Sdf.Rat.to_string a.Strategy.throughput)
        a.Strategy.stats.Strategy.throughput_checks;
      Array.iteri
        (fun actor tile ->
          Printf.printf "  %s -> %s\n"
            (Sdf.Sdfg.actor_name app.Appgraph.graph actor)
            (Archgraph.tile arch tile).Tile.t_name)
        a.Strategy.binding;
      Array.iteri
        (fun t omega ->
          if omega > 0 then begin
            Printf.printf "  %s: slice %d/%d"
              (Archgraph.tile arch t).Tile.t_name omega
              (Archgraph.tile arch t).Tile.wheel;
            (if verbose then
               match a.Strategy.schedules.(t) with
               | Some s ->
                   Printf.printf ", order %s"
                     (Format.asprintf "%a"
                        (Schedule.pp (fun ppf actor ->
                             Format.pp_print_string ppf
                               (Sdf.Sdfg.actor_name app.Appgraph.graph actor)))
                        s)
               | None -> ());
            print_newline ()
          end)
        a.Strategy.slices)
    report.Multi_app.allocations;
  (if gantt then
     List.iter
       (fun (a : Strategy.allocation) ->
         let ba =
           Bind_aware.build ~app:a.Strategy.app ~arch:a.Strategy.arch
             ~binding:a.Strategy.binding ~slices:a.Strategy.slices ()
         in
         let view =
           Gantt.capture ~horizon:72 ba ~schedules:a.Strategy.schedules
         in
         Printf.printf "\n-- %s --\n%s"
           a.Strategy.app.Appgraph.app_name (Gantt.render view))
       report.Multi_app.allocations);
  (match deploy with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (a : Strategy.allocation) ->
          let path =
            Filename.concat dir
              (a.Strategy.app.Appgraph.app_name ^ ".deploy.xml")
          in
          Deployment.write_file path a;
          Printf.printf "deployment descriptor written to %s\n" path)
        report.Multi_app.allocations);
  (match report.Multi_app.first_failure with
  | None -> ()
  | Some f ->
      Printf.printf "\nstopped: %s\n"
        (Format.asprintf "%a" Strategy.pp_failure f));
  Printf.printf
    "\nresources committed: wheel %d, memory %d bits, %d connections, bw in \
     %d out %d\n"
    report.Multi_app.wheel_used report.Multi_app.memory_used
    report.Multi_app.connections_used report.Multi_app.bw_in_used
    report.Multi_app.bw_out_used;
  Cli_common.write_metrics ~trace:trace_file ~file:metrics_file
    ~to_stderr:metrics_stderr ()

open Cmdliner

let apps =
  Arg.(
    value
    & opt string "h263,h263,h263,mp3"
    & info [ "apps" ] ~docv:"LIST"
        ~doc:"Comma-separated applications (example, h263, mp3)")

let files =
  Arg.(
    value
    & opt_all file []
    & info [ "file" ] ~docv:"FILE"
        ~doc:"Load an application graph from an SDF3-style XML file \
              (repeatable); overrides --apps/--set")

let set =
  Arg.(
    value
    & opt (some int) None
    & info [ "set" ] ~docv:"N"
        ~doc:"Use generated benchmark set $(docv) (1..4) instead of --apps")

let count = Arg.(value & opt int 10 & info [ "count"; "n" ] ~doc:"Graphs when using --set")

let platform =
  Arg.(
    value
    & opt string "multimedia"
    & info [ "platform" ] ~docv:"NAME"
        ~doc:"Platform: example, multimedia or mesh3x3")

let weights =
  Arg.(
    value
    & opt string "1,1,1"
    & info [ "weights" ] ~docv:"C1,C2,C3"
        ~doc:"Tile cost function constants of Eqn. 2")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print static-order schedules")

let skip =
  Arg.(
    value & flag
    & info [ "skip-failed" ]
        ~doc:"Reject unallocatable applications and continue (the paper's \
              run-time improvement) instead of stopping at the first failure")

let gantt =
  Arg.(
    value & flag
    & info [ "gantt" ]
        ~doc:"Print an ASCII Gantt chart of each allocation's execution")

let deploy =
  Arg.(
    value
    & opt (some dir) None
    & info [ "deploy" ] ~docv:"DIR"
        ~doc:"Write one XML deployment descriptor per allocated application \
              into $(docv)")

let scenario =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ] ~docv:"FILE"
        ~doc:
          "Scenario FSM applied to every application as an admission gate:\n\
          \ an application whose worst-case scenario output rate misses its\n\
          \ lambda (a necessary condition no allocation can repair) is\n\
          \ excluded before binding")

let ordering =
  Arg.(
    value
    & opt
        (enum
           [ ("given", Core.Multi_app.As_given);
             ("heavy-first", Core.Multi_app.By_total_work_descending);
             ("light-first", Core.Multi_app.By_total_work_ascending) ])
        Core.Multi_app.As_given
    & info [ "order" ] ~docv:"ORDER"
        ~doc:"Preprocessing order: given, heavy-first or light-first")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_flow" ~doc:"Throughput-constrained resource allocation for SDFGs")
    Term.(
      const flow $ apps $ files $ set $ count $ platform $ weights $ verbose
      $ skip $ ordering $ scenario $ deploy $ gantt $ Cli_common.jobs
      $ Cli_common.log_level $ Cli_common.metrics_file
      $ Cli_common.metrics_stderr $ Cli_common.trace_file)

let () = exit (Cmd.eval cmd)
