(* Explore the impact of the tile-cost function constants (Eqn. 2) on how
   many applications fit, in the spirit of the paper's Table 4 but at demo
   scale: one sequence of each benchmark set on one 3x3 platform.

   Run with: dune exec examples/costfn_exploration.exe *)

let cost_functions =
  [
    (1., 0., 0.); (* balance processing *)
    (0., 1., 0.); (* balance memory *)
    (0., 0., 1.); (* minimise communication *)
    (1., 1., 1.); (* balance everything *)
    (0., 1., 2.); (* the paper's derived setting: communication first,
                     memory second *)
  ]

let () =
  let arch = Gen.Benchsets.architecture 0 in
  Printf.printf "%-10s %6s %6s %6s %6s\n" "c1,c2,c3" "set1" "set2" "set3" "set4";
  List.iter
    (fun (c1, c2, c3) ->
      Printf.printf "%-10s" (Printf.sprintf "%g,%g,%g" c1 c2 c3);
      List.iter
        (fun set ->
          let apps = Gen.Benchsets.sequence ~set ~seq:0 ~count:40 in
          let weights = Core.Cost.weights c1 c2 c3 in
          let report =
            Core.Multi_app.allocate_until_failure ~weights
              ~max_states:200_000 apps arch
          in
          Printf.printf " %6d%!"
            (List.length report.Core.Multi_app.allocations))
        [ 1; 2; 3; 4 ];
      print_newline ())
    cost_functions;
  print_endline
    "\nColumns: processing- / memory- / communication-intensive / mixed \
     graph sets.\nCompare with the paper's Table 4: communication-aware \
     cost functions win\non the processing- and communication-bound sets, \
     the memory-balancing ones\non the memory-bound set, and (0,1,2) is a \
     strong all-rounder."
