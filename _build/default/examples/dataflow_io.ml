(* Working with SDFG files: write a graph in the text format, read it back,
   run the analyses, and export Graphviz renderings of the graph and of its
   homogeneous expansion.

   Run with: dune exec examples/dataflow_io.exe *)

module Sdfg = Sdf.Sdfg

let () =
  (* A small multirate sample-rate converter chain (CD 44.1 kHz to DAT
     48 kHz style rates, scaled down). *)
  let g =
    Sdfg.of_lists
      ~actors:[ "in"; "up"; "fir"; "down"; "out" ]
      ~channels:
        [
          ("in", "up", 1, 1, 0);
          ("up", "fir", 3, 1, 0);
          ("fir", "down", 1, 2, 0);
          ("down", "out", 2, 3, 0);
          ("out", "in", 1, 1, 2); (* rate control feedback *)
        ]
  in
  let taus = [| 2; 1; 4; 1; 3 |] in
  let text = Sdf.Textio.print ~exec_times:taus "converter" g in
  print_string text;
  let doc = Sdf.Textio.parse text in
  assert (Sdfg.num_actors doc.Sdf.Textio.graph = Sdfg.num_actors g);
  assert (doc.Sdf.Textio.exec_times = Some taus);
  let gamma = Sdf.Repetition.vector_exn doc.Sdf.Textio.graph in
  print_string "repetition vector:";
  Array.iteri
    (fun a v -> Printf.printf " %s=%d" (Sdfg.actor_name g a) v)
    gamma;
  print_newline ();
  let h = Sdf.Hsdf.convert g gamma in
  Printf.printf "HSDF expansion: %d actors, %d channels\n"
    (Sdfg.num_actors h.Sdf.Hsdf.graph)
    (Sdfg.num_channels h.Sdf.Hsdf.graph);
  let out = Sdfg.actor_index g "out" in
  let thr = Analysis.Selftimed.throughput g taus out in
  Printf.printf "self-timed throughput(out) = %s\n" (Sdf.Rat.to_string thr);
  let via_hsdf = Baseline.Hsdf_flow.throughput_via_hsdf g taus ~output:out in
  Printf.printf "via HSDF + max cycle ratio = %s (must agree)\n"
    (Sdf.Rat.to_string via_hsdf);
  let dir = Filename.get_temp_dir_name () in
  let dot_path = Filename.concat dir "converter.dot" in
  let hsdf_path = Filename.concat dir "converter_hsdf.dot" in
  Sdf.Dot.write_file ~name:"converter" ~exec_times:taus dot_path g;
  Sdf.Dot.write_file ~name:"converter_hsdf" hsdf_path h.Sdf.Hsdf.graph;
  Printf.printf "Graphviz files: %s and %s\n" dot_path hsdf_path
