(* Cyclo-static dataflow front-end: model a deinterleaving video pipeline
   as CSDF, analyse it phase-accurately, lump it to SDF, and let the
   paper's allocation strategy place it with a throughput guarantee that
   transfers to the cyclo-static original (lumping is conservative).

   Run with: dune exec examples/csdf_pipeline.exe *)

module Graph = Csdf.Graph
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph

let () =
  (* A field deinterleaver: the splitter forwards tokens alternately to the
     even/odd field filters; the merger consumes one from each. *)
  let g =
    Graph.of_lists
      ~actors:
        [ ("capture", 1); ("split", 2); ("even", 1); ("odd", 1); ("merge", 2) ]
      ~channels:
        [
          ("capture", "split", [ 1 ], [ 1; 1 ], 0);
          ("split", "even", [ 1; 0 ], [ 1 ], 0);
          ("split", "odd", [ 0; 1 ], [ 1 ], 0);
          ("even", "merge", [ 1 ], [ 1; 0 ], 0);
          ("odd", "merge", [ 1 ], [ 0; 1 ], 0);
          ("merge", "capture", [ 1; 1 ], [ 1 ], 4);
        ]
  in
  Format.printf "%a@." Graph.pp g;
  let taus =
    [| [| 3 |]; [| 1; 1 |]; [| 8 |]; [| 8 |]; [| 2; 2 |] |]
  in
  let r = Csdf.Selftimed.analyze g taus in
  Printf.printf "phase-accurate throughput(merge cycles): %s\n"
    (Rat.to_string (Csdf.Selftimed.throughput g taus 4));
  Printf.printf "state space: %d states, period %d\n\n" r.Csdf.Selftimed.states
    r.Csdf.Selftimed.period;

  (* Lump to SDF: one actor per CSDF actor, rates summed over a cycle. *)
  let lumped = Graph.lump ~serialized:true g in
  let ltaus = Graph.lump_exec_times g taus in
  let lr = Analysis.Selftimed.analyze lumped ltaus in
  Printf.printf "lumped SDF throughput(merge): %s (conservative)\n\n"
    (Rat.to_string lr.Analysis.Selftimed.throughput.(4));

  (* Hand the lumped application to the allocation flow. *)
  let r' t m = Appgraph.{ exec_time = t; memory = m } in
  let reqs =
    Array.map
      (fun tau ->
        [ ("risc", r' tau 2048); ("dsp", r' (max 1 (tau / 2)) 2048) ])
      ltaus
  in
  let chan =
    Appgraph.
      { token_size = 128; alpha_tile = 6; alpha_src = 4; alpha_dst = 6;
        bandwidth = 32 }
  in
  let creqs = Array.make (Sdf.Sdfg.num_channels lumped) chan in
  (* Constraint: half of what the lumped graph can do alone, leaving room
     for TDMA sharing and cross-tile transport. *)
  let lambda = Rat.div_int lr.Analysis.Selftimed.throughput.(4) 2 in
  let app =
    Appgraph.make ~name:"deinterlacer" ~graph:lumped ~reqs ~creqs ~lambda
      ~output_actor:4
  in
  let tile idx name pt =
    Platform.Tile.make ~idx ~name ~proc_type:pt ~wheel:40 ~mem:65_536
      ~max_conns:6 ~in_bw:128 ~out_bw:128 ()
  in
  let arch =
    Platform.Archgraph.make
      [| tile 0 "risc0" "risc"; tile 1 "dsp0" "dsp" |]
      [
        { Platform.Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 1 };
        { Platform.Archgraph.k_idx = 1; from_tile = 1; to_tile = 0; latency = 1 };
      ]
  in
  match Core.Strategy.allocate app arch with
  | Ok alloc ->
      Printf.printf
        "allocated with guaranteed throughput %s (constraint %s);\n\
         the guarantee transfers to the cyclo-static pipeline because the\n\
         lumped actor is strictly more demanding than its phases.\n"
        (Rat.to_string alloc.Core.Strategy.throughput)
        (Rat.to_string lambda)
  | Error f -> Format.printf "allocation failed: %a@." Core.Strategy.pp_failure f
