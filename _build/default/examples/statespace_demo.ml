(* A walkthrough of the paper's Section 8 on its running example (Fig. 3-5):

   (a) the application SDFG alone reaches throughput 1/2 for actor a3;
   (b) modelling the binding (bounded buffers, connection delay, worst-case
       TDMA arrival) in a binding-aware SDFG drops it to 1/29;
   (c) additionally constraining the execution by the static-order
       schedules and the 50% TDMA slices drops it to 1/30.

   Run with: dune exec examples/statespace_demo.exe *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph

let () =
  let app = Appmodel.Models.example_app () in
  let arch = Appmodel.Models.example_platform () in
  let g = app.Appgraph.graph in
  let a3 = Sdfg.actor_index g "a3" in

  (* (a) The plain graph with the execution times of the binding below. *)
  let taus = [| 1; 1; 2 |] in
  let r = Analysis.Selftimed.analyze g taus in
  Printf.printf "(a) self-timed execution of the SDFG:\n";
  Printf.printf "    throughput(a3) = %s   (paper: 1/2)\n"
    (Rat.to_string r.Analysis.Selftimed.throughput.(a3));
  Printf.printf "    state space: %d states, period %d\n\n"
    r.Analysis.Selftimed.states r.Analysis.Selftimed.period;

  (* (b) Bind a1, a2 to tile t1 and a3 to tile t2, with 50%% slices. The
     binding-aware SDFG materialises the bounded buffer of d1, the
     connection actor c (latency 1 + 100/10 = 11 time units per token) and
     the sync actor s (worst-case wait of 5 for t2's slice). *)
  let binding = [| 0; 0; 1 |] in
  let slices = [| 5; 5 |] in
  let ba = Core.Bind_aware.build ~app ~arch ~binding ~slices () in
  Printf.printf "(b) binding-aware SDFG (%d actors, %d channels):\n"
    (Sdfg.num_actors ba.Core.Bind_aware.graph)
    (Sdfg.num_channels ba.Core.Bind_aware.graph);
  let rb = Analysis.Selftimed.analyze ba.Core.Bind_aware.graph ba.Core.Bind_aware.exec_times in
  Printf.printf "    throughput(a3) = %s   (paper: 1/29)\n\n"
    (Rat.to_string rb.Analysis.Selftimed.throughput.(a3));

  (* (c) Constrain the execution by the static orders (a1 a2)* and (a3)*
     and by the TDMA wheels (slice [0,5) of a 10-unit wheel on each tile).
     Schedules are over binding-aware actor indices, which coincide with
     application actor indices for application actors. *)
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let rc = Core.Constrained.analyze ba ~schedules in
  Printf.printf "(c) schedule- and TDMA-constrained execution:\n";
  Printf.printf "    throughput(a3) = %s   (paper: 1/30)\n"
    (Rat.to_string rc.Core.Constrained.throughput);
  Printf.printf "    period %d, transient %d, %d states\n\n"
    rc.Core.Constrained.period rc.Core.Constrained.transient
    rc.Core.Constrained.states;

  (* The list scheduler reconstructs exactly these orders, including the
     compaction of the recurrent (a1 a2) pattern (paper Section 9.2). *)
  let raw = Core.List_scheduler.raw_schedules ba in
  let compact = Core.List_scheduler.schedules ba in
  let pp_sched s =
    Format.asprintf "%a"
      (Core.Schedule.pp (fun ppf a ->
           Format.pp_print_string ppf
             (Sdfg.actor_name ba.Core.Bind_aware.graph a)))
      s
  in
  Printf.printf "list scheduler on 50%% slices:\n";
  Array.iteri
    (fun t s ->
      match (s, compact.(t)) with
      | Some raw_s, Some compact_s ->
          Printf.printf "    tile t%d: %s   -> compacted %s\n" (t + 1)
            (pp_sched raw_s) (pp_sched compact_s)
      | _ -> ())
    raw;

  (* The transition chains themselves (the paper draws them in Fig. 5). *)
  let name_of a = Sdf.Sdfg.actor_name ba.Core.Bind_aware.graph a in
  let pp_actor ppf a = Format.pp_print_string ppf (name_of a) in
  Printf.printf "transition chain of (a):\n";
  Format.printf "%a@."
    (Analysis.Trace.pp (fun ppf a ->
         Format.pp_print_string ppf (Sdf.Sdfg.actor_name g a)))
    (Analysis.Trace.selftimed g taus);
  let events = ref [] in
  let observer time actor = events := (time, actor) :: !events in
  let rc2 = Core.Constrained.analyze ~observer ba ~schedules in
  Printf.printf "\ntransition chain of (c):\n";
  Format.printf "%a@."
    (Analysis.Trace.pp pp_actor)
    (Analysis.Trace.of_events ~events:(List.rev !events)
       ~transient:rc2.Core.Constrained.transient
       ~period:rc2.Core.Constrained.period ~throughput:[||]);
  (* And the same execution as a Gantt chart. *)
  let gantt = Core.Gantt.capture ~horizon:64 ba ~schedules in
  Printf.printf "\nGantt view of (c):\n%s\n" (Core.Gantt.render gantt);

  (* Compare with the execution-time-inflation model of [4]: it charges
     every firing the full foreign wheel share up front, so its throughput
     is never above the constrained-execution result. *)
  let inflated = Core.Tdma_inflation.throughput ba ~schedules in
  Printf.printf
    "\nTDMA models: constrained execution %s vs inflation model [4] %s\n"
    (Rat.to_string rc.Core.Constrained.throughput)
    (Rat.to_string inflated)
