examples/quickstart.ml: Appmodel Array Core Format Platform Printf Sdf
