examples/statespace_demo.ml: Analysis Appmodel Array Core Format List Printf Sdf
