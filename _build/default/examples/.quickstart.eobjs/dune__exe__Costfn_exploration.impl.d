examples/costfn_exploration.ml: Core Gen List Printf
