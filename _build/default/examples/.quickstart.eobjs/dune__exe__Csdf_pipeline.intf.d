examples/csdf_pipeline.mli:
