examples/quickstart.mli:
