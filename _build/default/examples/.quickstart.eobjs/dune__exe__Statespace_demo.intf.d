examples/statespace_demo.mli:
