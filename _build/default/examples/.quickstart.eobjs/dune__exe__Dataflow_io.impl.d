examples/dataflow_io.ml: Analysis Array Baseline Filename Printf Sdf
