examples/multimedia_system.ml: Appmodel Array Core List Platform Printf Sdf String Unix
