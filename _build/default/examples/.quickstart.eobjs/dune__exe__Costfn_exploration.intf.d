examples/costfn_exploration.mli:
