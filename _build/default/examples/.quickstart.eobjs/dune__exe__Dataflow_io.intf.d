examples/dataflow_io.mli:
