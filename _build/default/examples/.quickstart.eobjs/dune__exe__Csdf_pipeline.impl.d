examples/csdf_pipeline.ml: Analysis Appmodel Array Core Csdf Format Platform Printf Sdf
