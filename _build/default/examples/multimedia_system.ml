(* The multimedia system of the paper's Section 10.3: three H.263 decoders
   (4 actors each; HSDF expansion 4754 actors each) and one MP3 decoder
   (13 actors) are allocated on a 2x2 heterogeneous platform with two
   generic processors and two accelerators, using tile-cost weights
   (2, 0, 1): balance processing, ignore memory, limit communication.

   Run with: dune exec examples/multimedia_system.exe *)

module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let () =
  let arch = Appmodel.Models.multimedia_platform () in
  let apps =
    [
      Appmodel.Models.h263 ~name:"h263_video0" ();
      Appmodel.Models.h263 ~name:"h263_video1" ();
      Appmodel.Models.h263 ~name:"h263_video2" ();
      Appmodel.Models.mp3 ~name:"mp3_audio" ();
    ]
  in
  (* The paper's point about problem size: the same system as an HSDFG. *)
  let hsdf_total =
    List.fold_left
      (fun acc (app : Appgraph.t) ->
        acc + Sdf.Repetition.iteration_firings (Appgraph.gamma app))
      0 apps
  in
  Printf.printf
    "system: %d applications, %d SDFG actors, %d actors as an HSDFG\n\n"
    (List.length apps)
    (List.fold_left
       (fun acc (app : Appgraph.t) ->
         acc + Sdf.Sdfg.num_actors app.Appgraph.graph)
       0 apps)
    hsdf_total;
  let weights = Core.Cost.weights 2. 0. 1. in
  let t0 = Unix.gettimeofday () in
  let report =
    Core.Multi_app.allocate_until_failure ~weights ~max_states:2_000_000 apps
      arch
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let bound = List.length report.Core.Multi_app.allocations in
  Printf.printf "%d of %d applications allocated in %.1f s\n" bound
    (List.length apps) elapsed;
  let total_checks = ref 0 in
  let slice_time = ref 0. in
  let total_time = ref 0. in
  List.iter
    (fun (a : Core.Strategy.allocation) ->
      let s = a.Core.Strategy.stats in
      total_checks := !total_checks + s.Core.Strategy.throughput_checks;
      slice_time := !slice_time +. s.Core.Strategy.slice_seconds;
      total_time :=
        !total_time +. s.Core.Strategy.bind_seconds
        +. s.Core.Strategy.schedule_seconds +. s.Core.Strategy.slice_seconds;
      Printf.printf "  %-12s throughput %-12s (constraint %-12s) slices [%s]\n"
        a.Core.Strategy.app.Appgraph.app_name
        (Sdf.Rat.to_string a.Core.Strategy.throughput)
        (Sdf.Rat.to_string a.Core.Strategy.app.Appgraph.lambda)
        (String.concat ";"
           (Array.to_list (Array.map string_of_int a.Core.Strategy.slices))))
    report.Core.Multi_app.allocations;
  Printf.printf
    "\n%d throughput computations in total; slice allocation used %.0f%% of \
     the strategy run-time (paper: ~90%%)\n"
    !total_checks
    (if !total_time > 0. then 100. *. !slice_time /. !total_time else 0.);
  Printf.printf
    "per-tile wheel occupancy after allocation: %s (of %d each)\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun t -> Printf.sprintf "%s=%d" t.Tile.t_name t.Tile.occupied)
             (Archgraph.tiles report.Core.Multi_app.remaining))))
    (Archgraph.tile arch 0).Tile.wheel;

  (* Isolation check: run all four applications together, each gated by its
     own window of the shared wheels, and confirm every guarantee holds in
     the joint execution (windowed estimate; quantised to output tokens). *)
  print_endline "\njoint execution (isolation check):";
  let members =
    Core.Composition.members_of_allocations report.Core.Multi_app.allocations
  in
  let horizon = 60_000_000 in
  let rates = Core.Composition.measure ~horizon members in
  List.iteri
    (fun i (a : Core.Strategy.allocation) ->
      let slack = Sdf.Rat.make 2 (horizon / 2) in
      Printf.printf "  %-12s measured %-14s %s\n"
        a.Core.Strategy.app.Appgraph.app_name
        (Sdf.Rat.to_string rates.(i))
        (if
           Sdf.Rat.compare
             (Sdf.Rat.add rates.(i) slack)
             a.Core.Strategy.throughput
           >= 0
         then "guarantee holds"
         else "GUARANTEE VIOLATED"))
    report.Core.Multi_app.allocations
