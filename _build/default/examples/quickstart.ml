(* Quickstart: model a small application, describe a platform, and let the
   allocation strategy bind, schedule and reserve TDMA slices for it.

   Run with: dune exec examples/quickstart.exe *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let () =
  (* 1. The application structure: a three-stage pipeline with a decimating
     filter (consumes 4 samples, produces 1) and a feedback edge that bounds
     the pipeline depth. Token counts on channels are initial tokens. *)
  let graph =
    Sdfg.of_lists
      ~actors:[ "src"; "filter"; "sink" ]
      ~channels:
        [
          ("src", "filter", 1, 4, 0); (* 4 samples per filter firing *)
          ("filter", "sink", 1, 1, 0);
          ("sink", "src", 4, 1, 4); (* feedback: 4 tokens in flight *)
        ]
  in
  (* 2. Resource requirements: execution time and state size per processor
     type (Gamma), and per channel the token size, buffer sizes and
     bandwidth need (Theta). *)
  let r t m = Appgraph.{ exec_time = t; memory = m } in
  let reqs =
    [|
      [ ("risc", r 2 256) ];
      [ ("risc", r 10 1024); ("dsp", r 4 1024) ]; (* faster on the DSP *)
      [ ("risc", r 3 512) ];
    |]
  in
  let chan ~sz ~buf ~bw =
    Appgraph.
      { token_size = sz; alpha_tile = buf; alpha_src = buf; alpha_dst = buf;
        bandwidth = bw }
  in
  let creqs =
    [| chan ~sz:32 ~buf:8 ~bw:16; chan ~sz:32 ~buf:2 ~bw:16;
       chan ~sz:8 ~buf:8 ~bw:8 |]
  in
  (* 3. The throughput constraint: the sink must fire at least once every
     40 time units. *)
  let app =
    Appgraph.make ~name:"quickstart" ~graph ~reqs ~creqs
      ~lambda:(Rat.make 1 40) ~output_actor:2
  in
  (* 4. The platform: two tiles around a unit-latency interconnect. *)
  let tile idx name proc_type =
    Tile.make ~idx ~name ~proc_type ~wheel:20 ~mem:65_536 ~max_conns:4
      ~in_bw:64 ~out_bw:64 ()
  in
  let arch =
    Archgraph.make
      [| tile 0 "risc0" "risc"; tile 1 "dsp0" "dsp" |]
      [
        { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 1 };
        { Archgraph.k_idx = 1; from_tile = 1; to_tile = 0; latency = 1 };
      ]
  in
  (* 5. Allocate: binding -> static-order schedules -> TDMA slices. *)
  match Core.Strategy.allocate app arch with
  | Error f ->
      Format.printf "allocation failed: %a@." Core.Strategy.pp_failure f;
      exit 1
  | Ok alloc ->
      Printf.printf "allocation found; guaranteed throughput %s (constraint %s)\n"
        (Rat.to_string alloc.Core.Strategy.throughput)
        (Rat.to_string app.Appgraph.lambda);
      Array.iteri
        (fun a t ->
          Printf.printf "  actor %-6s -> tile %s\n" (Sdfg.actor_name graph a)
            (Archgraph.tile arch t).Tile.t_name)
        alloc.Core.Strategy.binding;
      Array.iteri
        (fun t omega ->
          if omega > 0 then
            match alloc.Core.Strategy.schedules.(t) with
            | Some s ->
                Printf.printf "  tile %s: TDMA slice %d of %d, order %s\n"
                  (Archgraph.tile arch t).Tile.t_name omega
                  (Archgraph.tile arch t).Tile.wheel
                  (Format.asprintf "%a"
                     (Core.Schedule.pp (fun ppf a ->
                          Format.pp_print_string ppf (Sdfg.actor_name graph a)))
                     s)
            | None -> ())
        alloc.Core.Strategy.slices;
      Printf.printf "  throughput checks used: %d\n"
        alloc.Core.Strategy.stats.Core.Strategy.throughput_checks
