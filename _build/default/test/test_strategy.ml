(* The complete strategy (Section 9) and the multi-application driver. *)

module Rat = Sdf.Rat
module Strategy = Core.Strategy
module Multi_app = Core.Multi_app
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let test_example_allocation () =
  match Strategy.allocate (Models.example_app ()) (Models.example_platform ()) with
  | Ok alloc ->
      Alcotest.(check bool) "meets lambda" true
        (Rat.compare alloc.Strategy.throughput (Rat.make 1 30) >= 0);
      Alcotest.(check bool) "is_valid" true
        (Strategy.is_valid alloc (Models.example_platform ()));
      Alcotest.(check bool) "counted throughput checks" true
        (alloc.Strategy.stats.Strategy.throughput_checks > 0)
  | Error f -> Alcotest.failf "allocation failed: %a" Strategy.pp_failure f

let test_infeasible_reports_slice_failure () =
  let app = Appgraph.with_lambda (Models.example_app ()) (Rat.make 1 5) in
  match Strategy.allocate app (Models.example_platform ()) with
  | Error (Strategy.Slice_failed _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Strategy.pp_failure f
  | Ok _ -> Alcotest.fail "expected failure"

let test_bind_failure_propagates () =
  let app = Models.h263 () in
  (* The example platform has no "proc"/"acc" tiles. *)
  match Strategy.allocate app (Models.example_platform ()) with
  | Error (Strategy.Bind_failed _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Strategy.pp_failure f
  | Ok _ -> Alcotest.fail "expected failure"

let test_multimedia_system () =
  (* Paper Sec. 10.3: 3 x H.263 + MP3 on the 2x2 heterogeneous platform,
     cost function (2, 0, 1); everything must fit with guarantees. *)
  let arch = Models.multimedia_platform () in
  let apps =
    [
      Models.h263 ~name:"v0" (); Models.h263 ~name:"v1" ();
      Models.h263 ~name:"v2" (); Models.mp3 ();
    ]
  in
  let report =
    Multi_app.allocate_until_failure ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 apps arch
  in
  Alcotest.(check int) "all four bound" 4 (List.length report.Multi_app.allocations);
  List.iter
    (fun (a : Strategy.allocation) ->
      Alcotest.(check bool)
        (a.Strategy.app.Appgraph.app_name ^ " meets constraint")
        true
        (Rat.compare a.Strategy.throughput a.Strategy.app.Appgraph.lambda >= 0))
    report.Multi_app.allocations

let test_commit_reduces_resources () =
  let arch = Models.multimedia_platform () in
  let app = Models.h263 () in
  match Strategy.allocate ~weights:(Core.Cost.weights 2. 0. 1.) ~max_states:2_000_000 app arch with
  | Error f -> Alcotest.failf "allocation failed: %a" Strategy.pp_failure f
  | Ok alloc ->
      let after = Multi_app.commit arch alloc in
      let before_t = Archgraph.tiles arch and after_t = Archgraph.tiles after in
      Array.iteri
        (fun i t ->
          let b = before_t.(i) in
          Alcotest.(check int) "occupied grows by slice"
            (b.Tile.occupied + alloc.Strategy.slices.(i))
            t.Tile.occupied;
          Alcotest.(check bool) "memory shrinks" true (t.Tile.mem <= b.Tile.mem);
          Alcotest.(check bool) "conns shrink" true
            (t.Tile.max_conns <= b.Tile.max_conns))
        after_t

let test_allocate_until_failure_stops () =
  (* Pile identical H.263 decoders until the platform saturates; the
     report counts the prefix and carries the first failure. *)
  let arch = Models.multimedia_platform () in
  let apps = List.init 30 (fun i -> Models.h263 ~name:(Printf.sprintf "v%d" i) ()) in
  let report =
    Multi_app.allocate_until_failure ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 apps arch
  in
  let n = List.length report.Multi_app.allocations in
  Alcotest.(check bool) "some bound" true (n >= 3);
  Alcotest.(check bool) "not all bound" true (n < 30);
  Alcotest.(check bool) "failure reported" true
    (report.Multi_app.first_failure <> None);
  Alcotest.(check bool) "wheel accounted" true (report.Multi_app.wheel_used > 0)

let test_benchmark_allocations_are_valid () =
  (* Integration: every allocation produced on a generated workload must
     satisfy Section 7 and its throughput constraint. *)
  let arch = Gen.Benchsets.architecture 1 in
  let apps = Gen.Benchsets.sequence ~set:4 ~seq:1 ~count:6 in
  let report =
    Multi_app.allocate_until_failure ~weights:(Core.Cost.weights 0. 1. 2.)
      ~max_states:200_000 apps arch
  in
  (* Validity is checked against the architecture state the app was
     allocated on, which we replay by re-committing. *)
  let current = ref arch in
  List.iter
    (fun (a : Strategy.allocation) ->
      Alcotest.(check bool)
        (a.Strategy.app.Appgraph.app_name ^ " valid")
        true
        (Strategy.is_valid a !current);
      current := Multi_app.commit !current a)
    report.Multi_app.allocations

let suite =
  [
    Alcotest.test_case "example allocation" `Quick test_example_allocation;
    Alcotest.test_case "infeasible constraint" `Quick
      test_infeasible_reports_slice_failure;
    Alcotest.test_case "bind failure propagates" `Quick test_bind_failure_propagates;
    Alcotest.test_case "multimedia system (Sec 10.3)" `Slow test_multimedia_system;
    Alcotest.test_case "commit reduces resources" `Slow test_commit_reduces_resources;
    Alcotest.test_case "saturation stops allocation" `Slow
      test_allocate_until_failure_stops;
    Alcotest.test_case "benchmark allocations valid" `Slow
      test_benchmark_allocations_are_valid;
  ]
