(* Binding functions and the Section 7 resource accounting. *)

module Binding = Core.Binding
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models

let app () = Models.example_app ()
let arch () = Models.example_platform ()

let test_unbound () =
  let b = Binding.unbound (app ()) in
  Alcotest.(check (array int)) "all unbound" [| -1; -1; -1 |] b;
  Alcotest.(check bool) "not complete" false (Binding.is_complete b);
  Alcotest.(check bool) "complete" true (Binding.is_complete [| 0; 0; 1 |])

let test_classify () =
  let app = app () in
  Alcotest.(check bool) "internal" true
    (Binding.classify app [| 0; 0; 1 |] 0 = Binding.Internal 0);
  (match Binding.classify app [| 0; 0; 1 |] 1 with
  | Binding.Split { src_tile; dst_tile } ->
      Alcotest.(check (pair int int)) "split tiles" (0, 1) (src_tile, dst_tile)
  | _ -> Alcotest.fail "expected split");
  Alcotest.(check bool) "dangling" true
    (Binding.classify app [| 0; -1; 1 |] 0 = Binding.Dangling);
  Alcotest.(check bool) "self loop internal" true
    (Binding.classify app [| 0; 0; 1 |] 2 = Binding.Internal 0)

let test_usage_colocated () =
  let app = app () in
  let u = Binding.usage app (arch ()) [| 0; 0; 0 |] in
  (* t1: mu(a1)+mu(a2)+mu(a3 on p1) + d1 (1*7) + d2 (2*100) + d3 (1*1). *)
  Alcotest.(check int) "t1 memory" (10 + 7 + 13 + 7 + 200 + 1) u.(0).Binding.memory;
  Alcotest.(check int) "t1 conns" 0 u.(0).Binding.conns;
  Alcotest.(check int) "t2 empty" 0 u.(1).Binding.memory

let test_usage_split () =
  let app = app () in
  let u = Binding.usage app (arch ()) [| 0; 0; 1 |] in
  (* d2 split: alpha_src*sz on t1, alpha_dst*sz on t2, bandwidth 10. *)
  Alcotest.(check int) "t1 memory" (10 + 7 + 7 + 200 + 1) u.(0).Binding.memory;
  Alcotest.(check int) "t2 memory" (10 + 200) u.(1).Binding.memory;
  Alcotest.(check int) "t1 out bw" 10 u.(0).Binding.bw_out;
  Alcotest.(check int) "t2 in bw" 10 u.(1).Binding.bw_in;
  Alcotest.(check int) "t1 conns" 1 u.(0).Binding.conns;
  Alcotest.(check int) "t2 conns" 1 u.(1).Binding.conns

let test_check_valid () =
  Alcotest.(check bool) "paper binding valid" true
    (Binding.check (app ()) (arch ()) [| 0; 0; 1 |] = Ok ());
  Alcotest.(check bool) "partial binding valid" true
    (Binding.check (app ()) (arch ()) [| 0; -1; -1 |] = Ok ())

let test_check_memory () =
  (* Everything on t2 (500 bits) with d2's 200-bit buffer and actor state
     still fits; shrink the tile to force a violation. *)
  let app = app () in
  let arch = arch () in
  let tiles = Platform.Archgraph.tiles arch in
  let small =
    Platform.Archgraph.with_tiles arch
      [| tiles.(0); { tiles.(1) with Platform.Tile.mem = 100 } |]
  in
  match Binding.check app small [| 1; 1; 1 |] with
  | Error (Binding.Memory_exceeded { tile = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected memory violation on t2"

let test_check_unsupported () =
  (* An actor bound to a tile whose type it does not support. *)
  let graph = Helpers.example_graph () in
  let reqs =
    [|
      [ ("p1", Appgraph.{ exec_time = 1; memory = 0 }) ];
      [ ("p1", Appgraph.{ exec_time = 1; memory = 0 }) ];
      [ ("p1", Appgraph.{ exec_time = 1; memory = 0 }) ];
    |]
  in
  let creqs = (app ()).Appgraph.creqs in
  let app =
    Appgraph.make ~name:"t" ~graph ~reqs ~creqs ~lambda:Sdf.Rat.one
      ~output_actor:2
  in
  match Binding.check app (arch ()) [| 0; 0; 1 |] with
  | Error (Binding.Unsupported_processor { actor = 2; tile = 1 }) -> ()
  | _ -> Alcotest.fail "expected unsupported-processor violation"

let test_check_connections () =
  let app = app () in
  let arch = arch () in
  let tiles = Platform.Archgraph.tiles arch in
  let no_conns =
    Platform.Archgraph.with_tiles arch
      [| { tiles.(0) with Platform.Tile.max_conns = 0 }; tiles.(1) |]
  in
  match Binding.check app no_conns [| 0; 0; 1 |] with
  | Error (Binding.Connections_exceeded { tile = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected connections violation"

let test_check_bandwidth () =
  let app = app () in
  let arch = arch () in
  let tiles = Platform.Archgraph.tiles arch in
  let thin =
    Platform.Archgraph.with_tiles arch
      [| { tiles.(0) with Platform.Tile.out_bw = 5 }; tiles.(1) |]
  in
  match Binding.check app thin [| 0; 0; 1 |] with
  | Error (Binding.Bandwidth_exceeded { tile = 0; direction = `Out }) -> ()
  | _ -> Alcotest.fail "expected bandwidth violation"

let test_check_no_connection () =
  let app = app () in
  let arch =
    Platform.Archgraph.make
      (Platform.Archgraph.tiles (arch ()))
      [ { Platform.Archgraph.k_idx = 0; from_tile = 1; to_tile = 0; latency = 1 } ]
  in
  match Binding.check app arch [| 0; 0; 1 |] with
  | Error (Binding.No_connection { channel = 1; src_tile = 0; dst_tile = 1 }) -> ()
  | _ -> Alcotest.fail "expected no-connection violation"

let test_check_zero_bw_split () =
  (* Binding a1 and a1's self-loop... the zero-bandwidth channel d3 is a
     self-loop so it can never split; force a split on a fresh graph. *)
  let graph =
    Sdf.Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 2) ]
  in
  let reqs =
    Array.make 2
      [ ("p1", Appgraph.{ exec_time = 1; memory = 0 });
        ("p2", Appgraph.{ exec_time = 1; memory = 0 }) ]
  in
  let creqs =
    [|
      Appgraph.
        { token_size = 4; alpha_tile = 2; alpha_src = 2; alpha_dst = 2;
          bandwidth = 0 };
      Appgraph.
        { token_size = 4; alpha_tile = 3; alpha_src = 2; alpha_dst = 2;
          bandwidth = 5 };
    |]
  in
  let app =
    Appgraph.make ~name:"t" ~graph ~reqs ~creqs ~lambda:Sdf.Rat.one
      ~output_actor:1
  in
  match Binding.check app (arch ()) [| 0; 1 |] with
  | Error (Binding.Zero_bandwidth_split { channel = 0 }) -> ()
  | _ -> Alcotest.fail "expected zero-bandwidth violation"

let test_check_no_wheel_time () =
  let app = app () in
  let arch = arch () in
  let tiles = Platform.Archgraph.tiles arch in
  let full =
    Platform.Archgraph.with_tiles arch
      [| { tiles.(0) with Platform.Tile.occupied = 10 }; tiles.(1) |]
  in
  match Binding.check app full [| 0; 0; 1 |] with
  | Error (Binding.No_wheel_time { tile = 0 }) -> ()
  | _ -> Alcotest.fail "expected no-wheel-time violation"

let suite =
  [
    Alcotest.test_case "unbound" `Quick test_unbound;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "usage colocated" `Quick test_usage_colocated;
    Alcotest.test_case "usage split" `Quick test_usage_split;
    Alcotest.test_case "check valid" `Quick test_check_valid;
    Alcotest.test_case "memory violation" `Quick test_check_memory;
    Alcotest.test_case "unsupported processor" `Quick test_check_unsupported;
    Alcotest.test_case "connections violation" `Quick test_check_connections;
    Alcotest.test_case "bandwidth violation" `Quick test_check_bandwidth;
    Alcotest.test_case "no connection" `Quick test_check_no_connection;
    Alcotest.test_case "zero-bandwidth split" `Quick test_check_zero_bw_split;
    Alcotest.test_case "no wheel time" `Quick test_check_no_wheel_time;
  ]
