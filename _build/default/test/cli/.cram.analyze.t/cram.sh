  $ cat > example.sdf <<'SDF'
  > sdfg example
  > actor a1 1
  > actor a2 1
  > actor a3 2
  > channel d1 a1 -> a2 rates 1 1
  > channel d2 a2 -> a3 rates 1 2
  > channel d3 a1 -> a1 rates 1 1 tokens 1
  > SDF
  $ sdf3_analyze example.sdf --hsdf
  $ printf 'sdfg x\nactor a\nchannel d a -> b rates 1 1\n' > bad.sdf
  $ sdf3_analyze bad.sdf
  $ printf 'sdfg x\nactor a\nactor b\nchannel d1 a -> b rates 2 1\nchannel d2 b -> a rates 1 1 tokens 1\n' > inc.sdf
  $ sdf3_analyze inc.sdf
