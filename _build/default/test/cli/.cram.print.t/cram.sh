  $ sdf3_print example
  $ sdf3_print h263 -f info | tail -n 2
  $ sdf3_print nonsense
