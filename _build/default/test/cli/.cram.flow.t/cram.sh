  $ sdf3_flow --apps example --platform example --weights 1,1,1
  $ sdf3_generate --set 1 --seq 0 --count 1 | head -n 2
