The allocation flow on the running example meets the paper's 1/30
constraint:

  $ sdf3_flow --apps example --platform example --weights 1,1,1
  1 of 1 applications allocated
  
  == example (lambda 1/30) ==
  throughput 1/30 after 4 throughput checks
    a1 -> t1
    a2 -> t1
    a3 -> t2
    t1: slice 5/10
    t2: slice 4/10
  
  resources committed: wheel 9, memory 435 bits, 2 connections, bw in 10 out 10

The generator is deterministic:

  $ sdf3_generate --set 1 --seq 0 --count 1 | head -n 2
  sdfg s1q0g0
  actor s1q0g0_a0 30
