The model printer renders the paper's running example in the text format:

  $ sdf3_print example
  sdfg example
  actor a1 4
  actor a2 7
  actor a3 3
  channel d0 a1 -> a2 rates 1 1
  channel d1 a2 -> a3 rates 1 2
  channel d2 a1 -> a1 rates 1 1 tokens 1

Info mode reports the repetition vector and the HSDF size:

  $ sdf3_print h263 -f info | tail -n 2
  repetition vector: vld=1 iq=2376 idct=2376 mc=1
  HSDF size: 4754 actors

Unknown models are rejected:

  $ sdf3_print nonsense
  unknown model "nonsense" (try example, h263, mp3)
  [1]
