(* Multi-application policies and orderings (the Sec. 10.1 improvements). *)

module Multi_app = Core.Multi_app
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models

let weights = Core.Cost.weights 0. 1. 2.

let apps () = Gen.Benchsets.sequence ~set:1 ~seq:0 ~count:40
let arch () = Gen.Benchsets.architecture 0

let test_skip_never_worse () =
  let stop =
    Multi_app.allocate_until_failure ~weights ~max_states:200_000
      ~policy:Multi_app.Stop_at_first_failure (apps ()) (arch ())
  in
  let skip =
    Multi_app.allocate_until_failure ~weights ~max_states:200_000
      ~policy:Multi_app.Skip_failed (apps ()) (arch ())
  in
  let n_stop = List.length stop.Multi_app.allocations in
  let n_skip = List.length skip.Multi_app.allocations in
  Alcotest.(check bool)
    (Printf.sprintf "skip (%d) >= stop (%d)" n_skip n_stop)
    true (n_skip >= n_stop);
  (* The allocated prefix before the first failure is identical. *)
  let prefix_names r =
    List.map
      (fun (a : Core.Strategy.allocation) -> a.Core.Strategy.app.Appgraph.app_name)
      r.Multi_app.allocations
  in
  let stop_names = prefix_names stop in
  let skip_names = prefix_names skip in
  Alcotest.(check (list string)) "same prefix" stop_names
    (List.filteri (fun i _ -> i < List.length stop_names) skip_names)

let test_skip_records_rejections () =
  let skip =
    Multi_app.allocate_until_failure ~weights ~max_states:200_000
      ~policy:Multi_app.Skip_failed (apps ()) (arch ())
  in
  Alcotest.(check int) "allocated + rejected = offered" 40
    (List.length skip.Multi_app.allocations + List.length skip.Multi_app.rejected);
  Alcotest.(check bool) "failure reason kept" true
    (skip.Multi_app.rejected = [] || skip.Multi_app.first_failure <> None)

let test_stop_has_no_rejections () =
  let stop =
    Multi_app.allocate_until_failure ~weights ~max_states:200_000 (apps ())
      (arch ())
  in
  Alcotest.(check int) "no rejected list under stop" 0
    (List.length stop.Multi_app.rejected)

let test_ordering_is_stable_permutation () =
  let apps = apps () in
  let skip order =
    Multi_app.allocate_until_failure ~weights ~max_states:200_000
      ~policy:Multi_app.Skip_failed ~order apps (arch ())
  in
  let light = skip Multi_app.By_total_work_ascending in
  (* Light-first handles applications in non-decreasing work order. *)
  let works =
    List.map
      (fun (a : Core.Strategy.allocation) -> Appgraph.total_work a.Core.Strategy.app)
      light.Multi_app.allocations
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing work" true (non_decreasing works)

let test_multimedia_order_irrelevant_when_all_fit () =
  let apps =
    [
      Models.mp3 (); Models.h263 ~name:"v0" (); Models.h263 ~name:"v1" ();
      Models.h263 ~name:"v2" ();
    ]
  in
  let r =
    Multi_app.allocate_until_failure ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 ~order:Multi_app.By_total_work_descending apps
      (Models.multimedia_platform ())
  in
  Alcotest.(check int) "all four, heavy first" 4 (List.length r.Multi_app.allocations)

let suite =
  [
    Alcotest.test_case "skip never worse" `Slow test_skip_never_worse;
    Alcotest.test_case "skip records rejections" `Slow test_skip_records_rejections;
    Alcotest.test_case "stop has no rejections" `Quick test_stop_has_no_rejections;
    Alcotest.test_case "ordering stable" `Slow test_ordering_is_stable_permutation;
    Alcotest.test_case "multimedia reordered" `Slow
      test_multimedia_order_irrelevant_when_all_fit;
  ]
