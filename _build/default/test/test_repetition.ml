(* Repetition vectors (paper Definition 2), consistency and deadlock. *)

module Sdfg = Sdf.Sdfg
module Repetition = Sdf.Repetition
module Deadlock = Sdf.Deadlock
open Helpers

let test_example () =
  let gamma = Repetition.vector_exn (example_graph ()) in
  Alcotest.(check (array int)) "gamma" [| 2; 2; 1 |] gamma

let test_prodcons () =
  let gamma = Repetition.vector_exn (prodcons ()) in
  Alcotest.(check (array int)) "gamma" [| 3; 2 |] gamma

let test_h263 () =
  let app = Appmodel.Models.h263 () in
  Alcotest.(check (array int)) "gamma (paper Fig. 1)"
    [| 1; 2376; 2376; 1 |]
    (Appmodel.Appgraph.gamma app);
  Alcotest.(check int) "HSDF size (paper Sec. 1)" 4754
    (Repetition.iteration_firings (Appmodel.Appgraph.gamma app))

let test_minimality () =
  (* Rates with a common factor still yield the smallest vector. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 4, 6, 0); ("b", "a", 6, 4, 12) ]
  in
  Alcotest.(check (array int)) "gamma" [| 3; 2 |] (Repetition.vector_exn g)

let test_inconsistent () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 2, 1, 0); ("b", "a", 1, 1, 1) ]
  in
  (match Repetition.compute g with
  | Repetition.Inconsistent { channel } ->
      Alcotest.(check bool) "witness channel valid" true (channel >= 0 && channel < 2)
  | _ -> Alcotest.fail "expected inconsistency");
  Alcotest.(check bool) "is_consistent false" false (Repetition.is_consistent g);
  Alcotest.check_raises "vector_exn raises"
    (Invalid_argument "Repetition.vector_exn: inconsistent on channel d1")
    (fun () -> ignore (Repetition.vector_exn g))

let test_disconnected () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ] ~channels:[]
  in
  (match Repetition.compute g with
  | Repetition.Disconnected -> ()
  | _ -> Alcotest.fail "expected Disconnected")

let test_check () =
  let g = example_graph () in
  Alcotest.(check bool) "valid vector" true (Repetition.check g [| 2; 2; 1 |]);
  Alcotest.(check bool) "scaled vector also balances" true
    (Repetition.check g [| 4; 4; 2 |]);
  Alcotest.(check bool) "wrong vector" false (Repetition.check g [| 1; 2; 1 |]);
  Alcotest.(check bool) "zero entry" false (Repetition.check g [| 2; 2; 0 |]);
  Alcotest.(check bool) "wrong length" false (Repetition.check g [| 2; 2 |])

let test_deadlock_free () =
  let g = example_graph () in
  let gamma = Repetition.vector_exn g in
  Alcotest.(check bool) "example live" true
    (Deadlock.check g gamma = Deadlock.Deadlock_free);
  Alcotest.(check bool) "is_deadlock_free" true (Deadlock.is_deadlock_free g)

let test_deadlocked () =
  (* A token-free cycle can never fire. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
  in
  (match Deadlock.check g [| 1; 1 |] with
  | Deadlock.Deadlocked { blocked } ->
      Alcotest.(check (list int)) "both blocked" [ 0; 1 ] blocked
  | Deadlock.Deadlock_free -> Alcotest.fail "expected deadlock");
  Alcotest.(check bool) "is_deadlock_free false" false
    (Deadlock.is_deadlock_free g)

let test_partial_deadlock () =
  (* Multirate ring with too few tokens: consistent but dead. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 2, 3, 0); ("b", "a", 3, 2, 1) ]
  in
  Alcotest.(check bool) "consistent" true (Repetition.is_consistent g);
  Alcotest.(check bool) "but deadlocked" false (Deadlock.is_deadlock_free g)

let gen_chain =
  (* Random consistent chains with a token-bearing feedback edge. *)
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* gammas = list_repeat n (int_range 1 4) in
    return (n, gammas))

let prop_generated_consistent =
  qcheck "derived rates are consistent and gamma divides choice" gen_chain
    (fun (n, gammas) ->
      let gammas = Array.of_list gammas in
      let b = Sdfg.Builder.create () in
      for i = 0 to n - 1 do
        ignore (Sdfg.Builder.add_actor b (Printf.sprintf "a%d" i))
      done;
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      for i = 0 to n - 2 do
        let g = gcd gammas.(i) gammas.(i + 1) in
        ignore
          (Sdfg.Builder.add_channel b ~src:i ~dst:(i + 1)
             ~prod:(gammas.(i + 1) / g) ~cons:(gammas.(i) / g) ())
      done;
      let g0 = gcd gammas.(n - 1) gammas.(0) in
      ignore
        (Sdfg.Builder.add_channel b ~src:(n - 1) ~dst:0
           ~prod:(gammas.(0) / g0) ~cons:(gammas.(n - 1) / g0)
           ~tokens:(gammas.(n - 1) / g0 * gammas.(0)) ());
      let g = Sdfg.Builder.build b in
      match Repetition.compute g with
      | Repetition.Consistent gamma ->
          (* The chosen vector must be an integer multiple of the minimal
             one, and the minimal one must balance every channel. *)
          let k = gammas.(0) / gamma.(0) in
          k >= 1
          && Array.for_all2 (fun a b -> a = b * k) gammas gamma
          && Repetition.check g gamma
      | _ -> false)

let suite =
  [
    Alcotest.test_case "example gamma" `Quick test_example;
    Alcotest.test_case "prodcons gamma" `Quick test_prodcons;
    Alcotest.test_case "h263 gamma and HSDF size" `Quick test_h263;
    Alcotest.test_case "minimality" `Quick test_minimality;
    Alcotest.test_case "inconsistent" `Quick test_inconsistent;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "check" `Quick test_check;
    Alcotest.test_case "deadlock free" `Quick test_deadlock_free;
    Alcotest.test_case "deadlocked" `Quick test_deadlocked;
    Alcotest.test_case "partial deadlock" `Quick test_partial_deadlock;
    prop_generated_consistent;
  ]
