(* The resource binding step (Section 9.1) including Table 3. *)

module Binding = Core.Binding
module Binding_step = Core.Binding_step
module Cost = Core.Cost
module Models = Appmodel.Models

let bind_example (c1, c2, c3) =
  match
    Binding_step.bind ~weights:(Cost.weights c1 c2 c3) (Models.example_app ())
      (Models.example_platform ())
  with
  | Ok b -> b
  | Error _ -> Alcotest.fail "binding failed"

(* Paper Table 3. Row (0,1,0) is a documented deviation: the paper reports
   (t1, t2, t2); our reading of Eqn. 2 (memory fractions of each tile)
   yields (t1, t1, t2) — the a2 decision is a near-tie (11/700 vs 10/500)
   that flips on unpublished accounting details. See EXPERIMENTS.md. *)
let test_table3_row1 () =
  Alcotest.(check (array int)) "(1,0,0)" [| 0; 0; 1 |] (bind_example (1., 0., 0.))

let test_table3_row2 () =
  Alcotest.(check (array int)) "(0,1,0) [deviation documented]" [| 0; 0; 1 |]
    (bind_example (0., 1., 0.))

let test_table3_row3 () =
  Alcotest.(check (array int)) "(0,0,1)" [| 0; 0; 0 |] (bind_example (0., 0., 1.))

let test_table3_row4 () =
  Alcotest.(check (array int)) "(1,1,1)" [| 0; 0; 1 |] (bind_example (1., 1., 1.))

let test_bindings_are_valid () =
  List.iter
    (fun w ->
      let b = bind_example w in
      Alcotest.(check bool) "valid" true
        (Binding.check (Models.example_app ()) (Models.example_platform ()) b
         = Ok ()))
    [ (1., 0., 0.); (0., 1., 0.); (0., 0., 1.); (1., 1., 1.); (0., 1., 2.) ]

let test_optimise_keeps_validity () =
  let app = Models.example_app () and arch = Models.example_platform () in
  let weights = Cost.weights 1. 1. 1. in
  match Binding_step.bind_greedy ~weights app arch with
  | Error _ -> Alcotest.fail "greedy failed"
  | Ok greedy ->
      let optimised = Binding_step.optimise ~weights app arch greedy in
      Alcotest.(check bool) "still valid" true
        (Binding.check app arch optimised = Ok ());
      Alcotest.(check bool) "still complete" true (Binding.is_complete optimised)

let test_unbindable_actor_fails () =
  (* An actor supporting only a type the platform lacks. *)
  let graph = Helpers.example_graph () in
  let r = Appmodel.Appgraph.{ exec_time = 1; memory = 0 } in
  let reqs = [| [ ("p1", r) ]; [ ("weird", r) ]; [ ("p1", r) ] |] in
  let app =
    Appmodel.Appgraph.make ~name:"t" ~graph ~reqs
      ~creqs:(Models.example_app ()).Appmodel.Appgraph.creqs
      ~lambda:Sdf.Rat.one ~output_actor:2
  in
  match
    Binding_step.bind ~weights:(Cost.weights 1. 1. 1.) app
      (Models.example_platform ())
  with
  | Error f ->
      Alcotest.(check int) "failed actor" 1 f.Binding_step.failed_actor;
      Alcotest.(check bool) "no candidates at all" true
        (f.Binding_step.last_violation = None)
  | Ok _ -> Alcotest.fail "expected failure"

let test_resource_exhaustion_reports_violation () =
  (* Tiny memory everywhere: binding must fail with a memory violation. *)
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let tiles =
    Array.map
      (fun t -> { t with Platform.Tile.mem = 5 })
      (Platform.Archgraph.tiles arch)
  in
  let arch = Platform.Archgraph.with_tiles arch tiles in
  match Binding_step.bind ~weights:(Cost.weights 0. 1. 0.) app arch with
  | Error f ->
      Alcotest.(check bool) "memory violation reported" true
        (match f.Binding_step.last_violation with
        | Some (Binding.Memory_exceeded _) -> true
        | _ -> false)
  | Ok _ -> Alcotest.fail "expected failure"

let test_wheel_tie_break () =
  (* Under (0,0,1) all costs tie at 0 for a colocated application; the
     binder must then prefer the tile with the most available wheel. *)
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let tiles = Platform.Archgraph.tiles arch in
  (* Make t1 busy and give t2 a p1 processor so everything can go there. *)
  let arch =
    Platform.Archgraph.with_tiles arch
      [|
        { tiles.(0) with Platform.Tile.occupied = 8 };
        { tiles.(1) with Platform.Tile.proc_type = "p1" };
      |]
  in
  match Binding_step.bind ~weights:(Cost.weights 0. 0. 1.) app arch with
  | Ok b -> Alcotest.(check (array int)) "goes to idle t2" [| 1; 1; 1 |] b
  | Error _ -> Alcotest.fail "binding failed"

let suite =
  [
    Alcotest.test_case "Table 3 row (1,0,0)" `Quick test_table3_row1;
    Alcotest.test_case "Table 3 row (0,1,0)" `Quick test_table3_row2;
    Alcotest.test_case "Table 3 row (0,0,1)" `Quick test_table3_row3;
    Alcotest.test_case "Table 3 row (1,1,1)" `Quick test_table3_row4;
    Alcotest.test_case "bindings are valid" `Quick test_bindings_are_valid;
    Alcotest.test_case "optimise keeps validity" `Quick test_optimise_keeps_validity;
    Alcotest.test_case "unbindable actor" `Quick test_unbindable_actor_fails;
    Alcotest.test_case "exhaustion reports violation" `Quick
      test_resource_exhaustion_reports_violation;
    Alcotest.test_case "wheel tie-break" `Quick test_wheel_tie_break;
  ]
