(* Self-timed state-space throughput analysis (paper Section 8.2 / [10]). *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed
open Helpers

let test_example_fig5a () =
  (* Paper Fig. 5(a): a3 fires once every 2 time units. *)
  let r = Selftimed.analyze (example_graph ()) [| 1; 1; 2 |] in
  check_rat "thr(a3)" (Rat.make 1 2) r.Selftimed.throughput.(2);
  check_rat "thr(a1)" (Rat.make 1 1) r.Selftimed.throughput.(0);
  check_rat "thr(a2)" (Rat.make 1 1) r.Selftimed.throughput.(1)

let test_ring () =
  (* One token circulating a 3-ring: period = sum of execution times. *)
  let r = Selftimed.analyze (ring3 ()) [| 2; 3; 4 |] in
  check_rat "thr" (Rat.make 1 9) r.Selftimed.throughput.(0);
  Alcotest.(check int) "period" 9 r.Selftimed.period

let test_self_loop_rate () =
  let g =
    Sdfg.of_lists ~actors:[ "a" ] ~channels:[ ("a", "a", 1, 1, 1) ]
  in
  let r = Selftimed.analyze g [| 5 |] in
  check_rat "thr" (Rat.make 1 5) r.Selftimed.throughput.(0)

let test_two_tokens_pipeline () =
  (* Two tokens on the self-loop let two firings overlap. *)
  let g =
    Sdfg.of_lists ~actors:[ "a" ] ~channels:[ ("a", "a", 1, 1, 2) ]
  in
  let r = Selftimed.analyze g [| 5 |] in
  check_rat "thr doubles" (Rat.make 2 5) r.Selftimed.throughput.(0)

let test_multirate_throughput_ratio () =
  (* Throughputs are proportional to the repetition vector. *)
  let r = Selftimed.analyze (prodcons ()) [| 2; 5 |] in
  let thr_p = r.Selftimed.throughput.(0) and thr_c = r.Selftimed.throughput.(1) in
  check_rat "p : c = 3 : 2" (Rat.mul_int thr_c 3) (Rat.mul_int thr_p 2)

let test_zero_time_actor () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 1) ]
  in
  let r = Selftimed.analyze g [| 0; 4 |] in
  check_rat "zero-time a matches b" (Rat.make 1 4) r.Selftimed.throughput.(0)

let test_deadlock () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
  in
  Alcotest.check_raises "deadlocks" Selftimed.Deadlocked (fun () ->
      ignore (Selftimed.analyze g [| 1; 1 |]))

let test_state_cap () =
  Alcotest.check_raises "state cap" (Selftimed.State_space_exceeded 2)
    (fun () -> ignore (Selftimed.analyze ~max_states:2 (ring3 ()) [| 2; 3; 4 |]))

let test_validation () =
  (* An actor without inputs has unbounded auto-concurrency. *)
  let g =
    Sdfg.of_lists ~actors:[ "src"; "snk" ] ~channels:[ ("src", "snk", 1, 1, 0) ]
  in
  Alcotest.check_raises "no input"
    (Invalid_argument
       "Selftimed.analyze: actor src has no input channel (unbounded \
        auto-concurrency)")
    (fun () -> ignore (Selftimed.analyze g [| 1; 1 |]));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Selftimed.analyze: negative execution time")
    (fun () -> ignore (Selftimed.analyze (ring3 ()) [| 1; -1; 1 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Selftimed.analyze: exec_times length mismatch")
    (fun () -> ignore (Selftimed.analyze (ring3 ()) [| 1; 1 |]))

let test_iterations_per_period () =
  let r = Selftimed.analyze (example_graph ()) [| 1; 1; 2 |] in
  (* a3 fires once per iteration; 1/2 throughput with period 2 means one
     iteration per period. *)
  Alcotest.(check int) "iterations" 1 r.Selftimed.iterations_per_period

(* Cross-validation oracle: on strongly connected graphs, the self-timed
   throughput of an actor equals gamma(actor) / MCR(HSDF). *)
let prop_matches_hsdf_mcr =
  qcheck ~count:60 "selftimed = gamma/MCR on strongly connected graphs"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Gen.Rng.create ~seed in
      (* Random ring with random rates and enough tokens to be live. *)
      let n = 2 + Gen.Rng.int rng 4 in
      let gammas = Array.init n (fun _ -> 1 + Gen.Rng.int rng 3) in
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let b = Sdfg.Builder.create () in
      for i = 0 to n - 1 do
        ignore (Sdfg.Builder.add_actor b (Printf.sprintf "a%d" i))
      done;
      for i = 0 to n - 1 do
        let j = (i + 1) mod n in
        let g = gcd gammas.(i) gammas.(j) in
        let tokens =
          if j = 0 then gammas.(i) / g * gammas.(0) * (1 + Gen.Rng.int rng 2)
          else if Gen.Rng.bool rng 0.3 then gammas.(i) / g
          else 0
        in
        ignore
          (Sdfg.Builder.add_channel b ~src:i ~dst:j ~prod:(gammas.(j) / g)
             ~cons:(gammas.(i) / g) ~tokens ())
      done;
      let g = Sdfg.Builder.build b in
      let taus = Array.init n (fun _ -> 1 + Gen.Rng.int rng 9) in
      if not (Sdf.Deadlock.is_deadlock_free g) then true
      else begin
        let st = Selftimed.analyze g taus in
        let via_hsdf = Baseline.Hsdf_flow.throughput_via_hsdf g taus ~output:0 in
        Rat.equal st.Selftimed.throughput.(0) via_hsdf
      end)

let suite =
  [
    Alcotest.test_case "example (Fig 5a)" `Quick test_example_fig5a;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "self loop rate" `Quick test_self_loop_rate;
    Alcotest.test_case "pipelined self loop" `Quick test_two_tokens_pipeline;
    Alcotest.test_case "multirate ratios" `Quick test_multirate_throughput_ratio;
    Alcotest.test_case "zero-time actor" `Quick test_zero_time_actor;
    Alcotest.test_case "deadlock" `Quick test_deadlock;
    Alcotest.test_case "state cap" `Quick test_state_cap;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "iterations per period" `Quick test_iterations_per_period;
    prop_matches_hsdf_mcr;
  ]
