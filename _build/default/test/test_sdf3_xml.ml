(* SDF3-style XML serialisation of application and architecture graphs. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Sdf3_xml = Appmodel.Sdf3_xml
module Models = Appmodel.Models
open Helpers

let app_roundtrip app = Sdf3_xml.app_of_string (Sdf3_xml.app_to_string app)

let test_example_roundtrip () =
  let app = Models.example_app () in
  let back = app_roundtrip app in
  Alcotest.(check string) "name" app.Appgraph.app_name back.Appgraph.app_name;
  Alcotest.(check bool) "graph" true
    (graph_equal app.Appgraph.graph back.Appgraph.graph);
  check_rat "lambda exact" app.Appgraph.lambda back.Appgraph.lambda;
  Alcotest.(check int) "output actor" app.Appgraph.output_actor
    back.Appgraph.output_actor;
  Alcotest.(check bool) "gamma preserved" true
    (Appgraph.gamma app = Appgraph.gamma back)

let test_properties_roundtrip () =
  let app = Models.example_app () in
  let back = app_roundtrip app in
  for a = 0 to Sdfg.num_actors app.Appgraph.graph - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "Gamma of actor %d" a)
      true
      (List.sort compare app.Appgraph.reqs.(a)
      = List.sort compare back.Appgraph.reqs.(a))
  done;
  Alcotest.(check bool) "Theta preserved" true
    (app.Appgraph.creqs = back.Appgraph.creqs)

let test_h263_roundtrip () =
  let app = Models.h263 () in
  let back = app_roundtrip app in
  Alcotest.(check bool) "multirate graph" true
    (graph_equal app.Appgraph.graph back.Appgraph.graph);
  Alcotest.(check int) "HSDF size survives" 4754
    (Sdf.Repetition.iteration_firings (Appgraph.gamma back))

let test_generated_roundtrip () =
  List.iter
    (fun (app : Appgraph.t) ->
      let back = app_roundtrip app in
      Alcotest.(check bool)
        (app.Appgraph.app_name ^ " roundtrips")
        true
        (graph_equal app.Appgraph.graph back.Appgraph.graph
        && app.Appgraph.creqs = back.Appgraph.creqs
        && Rat.equal app.Appgraph.lambda back.Appgraph.lambda))
    (Gen.Benchsets.sequence ~set:2 ~seq:1 ~count:5)

let test_arch_roundtrip () =
  let arch = Models.multimedia_platform () in
  let name, back = Sdf3_xml.arch_of_string (Sdf3_xml.arch_to_string ~name:"mm" arch) in
  Alcotest.(check string) "name" "mm" name;
  Alcotest.(check int) "tiles" 4 (Platform.Archgraph.num_tiles back);
  Array.iter2
    (fun (a : Platform.Tile.t) (b : Platform.Tile.t) ->
      Alcotest.(check bool) "tile equal" true (a = b))
    (Platform.Archgraph.tiles arch)
    (Platform.Archgraph.tiles back);
  Alcotest.(check int) "connections" 12
    (Array.length (Platform.Archgraph.connections back));
  match Platform.Archgraph.connection_between back ~src:0 ~dst:3 with
  | Some c -> Alcotest.(check int) "latency" 2 c.Platform.Archgraph.latency
  | None -> Alcotest.fail "missing connection"

let test_file_io () =
  let path = Filename.temp_file "sdf3" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sdf3_xml.write_app_file path (Models.mp3 ());
      let back = Sdf3_xml.read_app_file path in
      Alcotest.(check int) "13 actors back" 13
        (Sdfg.num_actors back.Appgraph.graph))

let expect_schema_error s =
  match Sdf3_xml.app_of_string s with
  | (_ : Appgraph.t) -> Alcotest.fail "expected schema error"
  | exception Sdf3_xml.Error _ -> ()

let test_schema_errors () =
  expect_schema_error "<notSdf3/>";
  expect_schema_error "<sdf3 type=\"sdf\" version=\"1.0\"/>";
  (* missing application graph *)
  expect_schema_error
    "<sdf3><applicationGraph name=\"x\"><sdf name=\"x\"><actor \
     name=\"a\"/><channel name=\"d\" srcActor=\"a\" srcPort=\"nope\" \
     dstActor=\"a\" dstPort=\"nope\"/></sdf></applicationGraph></sdf3>"
(* port without a rate *)

let suite =
  [
    Alcotest.test_case "example roundtrip" `Quick test_example_roundtrip;
    Alcotest.test_case "properties roundtrip" `Quick test_properties_roundtrip;
    Alcotest.test_case "h263 roundtrip" `Quick test_h263_roundtrip;
    Alcotest.test_case "generated roundtrip" `Quick test_generated_roundtrip;
    Alcotest.test_case "architecture roundtrip" `Quick test_arch_roundtrip;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
  ]
