(* Static-order schedule construction via list scheduling (Section 9.2). *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Schedule = Core.Schedule
module List_scheduler = Core.List_scheduler
module Bind_aware = Core.Bind_aware
module Models = Appmodel.Models
open Helpers

let example_ba () =
  let app = Models.example_app () and arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  Bind_aware.build ~app ~arch ~binding
    ~slices:(Bind_aware.half_wheel_slices app arch binding) ()

let test_example_schedules () =
  let schedules = List_scheduler.schedules (example_ba ()) in
  (match schedules.(0) with
  | Some s ->
      Alcotest.(check bool) "t1 compacts to (a1 a2)* (paper)" true
        (Schedule.equal s (Schedule.make ~prefix:[] ~period:[ 0; 1 ]))
  | None -> Alcotest.fail "missing t1 schedule");
  match schedules.(1) with
  | Some s ->
      Alcotest.(check bool) "t2 is (a3)*" true
        (Schedule.equal s (Schedule.make ~prefix:[] ~period:[ 2 ]))
  | None -> Alcotest.fail "missing t2 schedule"

let test_raw_has_transient () =
  (* The paper's raw schedule for t1 has a transient before the periodic
     part; compaction removes it because it is a repetition of the same
     pair. Our engine finds a shorter transient than the paper's 17 states
     (start semantics differ slightly) but the same structure. *)
  let raw = List_scheduler.raw_schedules (example_ba ()) in
  match raw.(0) with
  | Some s ->
      Alcotest.(check bool) "periodic part is (a1 a2) repeated" true
        (Schedule.equal (Schedule.compact s) (Schedule.make ~prefix:[] ~period:[ 0; 1 ]))
  | None -> Alcotest.fail "missing raw schedule"

let test_unused_tile_has_no_schedule () =
  let app = Models.example_app () and arch = Models.example_platform () in
  let binding = [| 0; 0; 0 |] in
  let ba =
    Bind_aware.build ~app ~arch ~binding
      ~slices:(Bind_aware.half_wheel_slices app arch binding) ()
  in
  let schedules = List_scheduler.schedules ba in
  Alcotest.(check bool) "t1 scheduled" true (schedules.(0) <> None);
  Alcotest.(check bool) "t2 empty" true (schedules.(1) = None)

let test_schedules_feed_constrained_analysis () =
  (* End to end: the generated schedules must be accepted and give a
     positive throughput under the same 50% slices. *)
  let ba = example_ba () in
  let schedules = List_scheduler.schedules ba in
  let r = Core.Constrained.analyze ba ~schedules in
  Alcotest.(check bool) "positive throughput" true
    (Rat.compare r.Core.Constrained.throughput Rat.zero > 0)

let test_schedule_covers_all_bound_actors () =
  (* Every bound actor occurs in its tile's periodic part (otherwise it
     would starve forever). Checked on generated workloads. *)
  let check_app seed =
    let rng = Gen.Rng.create ~seed in
    let app =
      Gen.Sdfgen.generate rng (Gen.Benchsets.set_profile 1)
        ~proc_types:Gen.Benchsets.proc_types ~name:"ls"
    in
    let arch = Gen.Benchsets.architecture 0 in
    match Core.Binding_step.bind ~weights:(Core.Cost.weights 0. 1. 2.) app arch with
    | Error _ -> true
    | Ok binding -> (
        let slices = Bind_aware.half_wheel_slices app arch binding in
        let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
        match List_scheduler.schedules ba with
        | exception List_scheduler.Deadlocked -> true
        | schedules ->
            let ok = ref true in
            Array.iteri
              (fun a t ->
                if t >= 0 then
                  match schedules.(t) with
                  | None -> ok := false
                  | Some s ->
                      if
                        (Schedule.firing_counts s
                           ~n_actors:(Sdfg.num_actors ba.Bind_aware.graph)).(a)
                        = 0
                      then ok := false)
              ba.Bind_aware.tile_of;
            !ok)
  in
  for seed = 0 to 20 do
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (check_app seed)
  done

let test_periodic_counts_proportional_to_gamma () =
  (* In the periodic part, per-tile firing counts are proportional to the
     repetition vector (the steady state executes whole iterations). *)
  let ba = example_ba () in
  let schedules = List_scheduler.schedules ba in
  match schedules.(0) with
  | Some s ->
      let counts = Schedule.firing_counts s ~n_actors:5 in
      (* gamma(a1) = gamma(a2) = 2: equal counts in the period. *)
      Alcotest.(check int) "a1 = a2 firings" counts.(0) counts.(1)
  | None -> Alcotest.fail "missing schedule"

let suite =
  [
    Alcotest.test_case "example schedules (paper)" `Quick test_example_schedules;
    Alcotest.test_case "raw transient" `Quick test_raw_has_transient;
    Alcotest.test_case "unused tile" `Quick test_unused_tile_has_no_schedule;
    Alcotest.test_case "feeds constrained analysis" `Quick
      test_schedules_feed_constrained_analysis;
    Alcotest.test_case "covers all bound actors" `Slow
      test_schedule_covers_all_bound_actors;
    Alcotest.test_case "counts proportional to gamma" `Quick
      test_periodic_counts_proportional_to_gamma;
  ]
