(* SDF -> HSDF conversion. *)

module Sdfg = Sdf.Sdfg
module Hsdf = Sdf.Hsdf
module Repetition = Sdf.Repetition
open Helpers

let convert g =
  let gamma = Repetition.vector_exn g in
  (Hsdf.convert g gamma, gamma)

let test_sizes () =
  let h, gamma = convert (example_graph ()) in
  Alcotest.(check int) "example HSDF actors" 5 (Sdfg.num_actors h.Hsdf.graph);
  Alcotest.(check int) "matches iteration firings"
    (Repetition.iteration_firings gamma)
    (Sdfg.num_actors h.Hsdf.graph)

let test_h263_size () =
  let app = Appmodel.Models.h263 () in
  let h, _ = convert app.Appmodel.Appgraph.graph in
  Alcotest.(check int) "paper: 4754 actors" 4754 (Sdfg.num_actors h.Hsdf.graph)

let test_all_rates_one () =
  let h, _ = convert (prodcons ()) in
  Array.iter
    (fun c ->
      Alcotest.(check int) "prod 1" 1 c.Sdfg.prod;
      Alcotest.(check int) "cons 1" 1 c.Sdfg.cons)
    (Sdfg.channels h.Hsdf.graph)

let test_copy_bookkeeping () =
  let h, gamma = convert (example_graph ()) in
  Array.iteri
    (fun a copies ->
      Alcotest.(check int)
        (Printf.sprintf "copies of actor %d" a)
        gamma.(a) (Array.length copies);
      Array.iteri
        (fun k idx ->
          Alcotest.(check (pair int int)) "copy_of inverse" (a, k)
            h.Hsdf.copy_of.(idx))
        copies)
    h.Hsdf.copies

let test_naming () =
  let h, _ = convert (example_graph ()) in
  Alcotest.(check string) "first copy" "a1#0"
    (Sdfg.actor_name h.Hsdf.graph h.Hsdf.copies.(0).(0));
  Alcotest.(check string) "second copy" "a1#1"
    (Sdfg.actor_name h.Hsdf.graph h.Hsdf.copies.(0).(1))

let test_timing_lift () =
  let h, _ = convert (example_graph ()) in
  let taus = Hsdf.timing h [| 1; 5; 9 |] in
  Array.iteri
    (fun idx (a, _) ->
      Alcotest.(check int) "lifted tau" [| 1; 5; 9 |].(a) taus.(idx))
    h.Hsdf.copy_of

let test_token_preservation () =
  (* Total initial tokens are preserved by the expansion (with dedupe off:
     each original token appears exactly once as an inter-iteration edge
     token across the per-token precedence edges). *)
  let g = prodcons () in
  let gamma = Repetition.vector_exn g in
  let h = Hsdf.convert ~dedupe:false g gamma in
  let total =
    Array.fold_left (fun acc c -> acc + c.Sdfg.tokens) 0 (Sdfg.channels h.Hsdf.graph)
  in
  Alcotest.(check int) "token count preserved" 6 total

let test_single_rate_identity () =
  (* A single-rate graph expands to an isomorphic graph. *)
  let g = ring3 () in
  let h, _ = convert g in
  Alcotest.(check int) "same actor count" (Sdfg.num_actors g)
    (Sdfg.num_actors h.Hsdf.graph);
  Alcotest.(check int) "same channel count" (Sdfg.num_channels g)
    (Sdfg.num_channels h.Hsdf.graph);
  let tokens g =
    Array.to_list (Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "same token multiset" (tokens g)
    (tokens h.Hsdf.graph)

let test_self_loop_expansion () =
  (* A self-loop with one token on an actor firing twice per iteration
     becomes a 2-cycle between the copies with one token total. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 2, 0); ("b", "a", 2, 1, 2); ("a", "a", 1, 1, 1) ]
  in
  let h, gamma = convert g in
  Alcotest.(check (array int)) "gamma" [| 2; 1 |] gamma;
  Alcotest.(check int) "3 HSDF actors" 3 (Sdfg.num_actors h.Hsdf.graph);
  (* Copies of a: a#0, a#1. The self-loop yields a#0 -> a#1 (0 tokens)
     and a#1 -> a#0 (1 token, next iteration). *)
  let a0 = h.Hsdf.copies.(0).(0) and a1 = h.Hsdf.copies.(0).(1) in
  let edge src dst =
    Array.to_list (Sdfg.channels h.Hsdf.graph)
    |> List.find_opt (fun c -> c.Sdfg.src = src && c.Sdfg.dst = dst)
  in
  (match edge a0 a1 with
  | Some c -> Alcotest.(check int) "forward tokens" 0 c.Sdfg.tokens
  | None -> Alcotest.fail "missing a#0 -> a#1 edge");
  match edge a1 a0 with
  | Some c -> Alcotest.(check int) "wrap tokens" 1 c.Sdfg.tokens
  | None -> Alcotest.fail "missing a#1 -> a#0 edge"

(* Oracle: the HSDF expansion preserves one-iteration executability. *)
let prop_hsdf_live =
  qcheck ~count:50 "expansion preserves liveness"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let profile = Gen.Benchsets.set_profile 1 in
      let app =
        Gen.Sdfgen.generate rng profile ~proc_types:Gen.Benchsets.proc_types
          ~name:"h"
      in
      let g = app.Appmodel.Appgraph.graph in
      let gamma = Repetition.vector_exn g in
      let h = Hsdf.convert g gamma in
      let hg = h.Hsdf.graph in
      match Repetition.compute hg with
      | Repetition.Consistent hgamma ->
          Array.for_all (fun v -> v = 1) hgamma
          && Sdf.Deadlock.check hg hgamma = Sdf.Deadlock.Deadlock_free
      | _ -> false)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "h263 size" `Quick test_h263_size;
    Alcotest.test_case "all rates one" `Quick test_all_rates_one;
    Alcotest.test_case "copy bookkeeping" `Quick test_copy_bookkeeping;
    Alcotest.test_case "naming" `Quick test_naming;
    Alcotest.test_case "timing lift" `Quick test_timing_lift;
    Alcotest.test_case "token preservation" `Quick test_token_preservation;
    Alcotest.test_case "single-rate identity" `Quick test_single_rate_identity;
    Alcotest.test_case "self-loop expansion" `Quick test_self_loop_expansion;
    prop_hsdf_live;
  ]
