(* Binding-aware SDFG construction (paper Section 8.1 / Fig. 4). *)

module Sdfg = Sdf.Sdfg
module Bind_aware = Core.Bind_aware
module Models = Appmodel.Models

let build ?(slices = [| 5; 5 |]) ?(binding = [| 0; 0; 1 |]) () =
  Bind_aware.build ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
    ~binding ~slices ()

let test_structure_fig4 () =
  let ba = build () in
  let g = ba.Bind_aware.graph in
  (* a1 a2 a3 plus one connection and one sync actor for the split d2. *)
  Alcotest.(check int) "5 actors" 5 (Sdfg.num_actors g);
  Alcotest.(check int) "11 channels" 11 (Sdfg.num_channels g);
  (* a1 keeps its own self-loop (d3); a2 and a3 get new ones (paper). *)
  Alcotest.(check bool) "a1 self loop" true (Sdfg.has_unit_self_loop g 0);
  Alcotest.(check bool) "a2 self loop" true (Sdfg.has_unit_self_loop g 1);
  Alcotest.(check bool) "a3 self loop" true (Sdfg.has_unit_self_loop g 2);
  let self_loops =
    Array.to_list (Sdfg.channels g)
    |> List.filter (fun c -> c.Sdfg.src = c.Sdfg.dst)
  in
  (* d3 + added self_a2, self_a3, self on the connection actor. *)
  Alcotest.(check int) "4 self loops" 4 (List.length self_loops)

let test_exec_times_fig4 () =
  let ba = build () in
  let tau name = ba.Bind_aware.exec_times.(Sdfg.actor_index ba.Bind_aware.graph name) in
  Alcotest.(check int) "tau a1 on t1" 1 (tau "a1");
  Alcotest.(check int) "tau a2 on t1" 1 (tau "a2");
  Alcotest.(check int) "tau a3 on t2" 2 (tau "a3");
  (* Paper: Upsilon(c) = L(c1) + ceil(sz/beta) = 1 + 100/10 = 11. *)
  Alcotest.(check int) "tau c" 11 (tau "c_d1");
  (* Paper: Upsilon(s) = w_t2 - omega_t2 = 10 - 5 = 5. *)
  Alcotest.(check int) "tau s" 5 (tau "s_d1")

let test_roles_and_tiles () =
  let ba = build () in
  Alcotest.(check bool) "a1 role" true (ba.Bind_aware.roles.(0) = Bind_aware.App 0);
  Alcotest.(check bool) "c role" true (ba.Bind_aware.roles.(3) = Bind_aware.Conn 1);
  Alcotest.(check bool) "s role" true (ba.Bind_aware.roles.(4) = Bind_aware.Sync 1);
  Alcotest.(check (array int)) "tiles" [| 0; 0; 1; -1; -1 |] ba.Bind_aware.tile_of

let test_buffer_edge () =
  let ba = build () in
  let g = ba.Bind_aware.graph in
  (* Internal d1 gets a reverse edge a2 -> a1 with alpha_tile = 1 token. *)
  let buf =
    Array.to_list (Sdfg.channels g)
    |> List.find (fun c -> c.Sdfg.c_name = "buf_d0")
  in
  Alcotest.(check int) "from a2" 1 buf.Sdfg.src;
  Alcotest.(check int) "to a1" 0 buf.Sdfg.dst;
  Alcotest.(check int) "free slots" 1 buf.Sdfg.tokens

let test_sync_time_follows_slice () =
  let ba = build ~slices:[| 5; 8 |] () in
  let tau = ba.Bind_aware.exec_times.(Sdfg.actor_index ba.Bind_aware.graph "s_d1") in
  Alcotest.(check int) "w - omega" 2 tau

let test_all_on_one_tile () =
  (* No split channels: no connection or sync actors at all. *)
  let ba = build ~binding:[| 0; 0; 0 |] ~slices:[| 5; 0 |] () in
  Alcotest.(check int) "3 actors" 3 (Sdfg.num_actors ba.Bind_aware.graph);
  Alcotest.(check bool) "only app roles" true
    (Array.for_all
       (function Bind_aware.App _ -> true | _ -> false)
       ba.Bind_aware.roles)

let test_validation () =
  Alcotest.check_raises "incomplete binding"
    (Invalid_argument "Bind_aware.build: incomplete binding") (fun () ->
      ignore (build ~binding:[| 0; -1; 1 |] ()));
  Alcotest.check_raises "oversized slice"
    (Invalid_argument "Bind_aware.build: slice exceeds available wheel")
    (fun () -> ignore (build ~slices:[| 5; 11 |] ()))

let test_half_wheel_slices () =
  let app = Models.example_app () and arch = Models.example_platform () in
  Alcotest.(check (array int)) "both used" [| 5; 5 |]
    (Bind_aware.half_wheel_slices app arch [| 0; 0; 1 |]);
  Alcotest.(check (array int)) "t2 unused" [| 5; 0 |]
    (Bind_aware.half_wheel_slices app arch [| 0; 0; 0 |])

let test_initial_tokens_cross_tile () =
  (* Initial tokens of a split channel start at the destination and occupy
     destination buffer space. *)
  let graph =
    Sdf.Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 2); ("b", "a", 1, 1, 1) ]
  in
  let r = Appmodel.Appgraph.{ exec_time = 1; memory = 0 } in
  let reqs = [| [ ("p1", r) ]; [ ("p2", r) ] |] in
  let creq =
    Appmodel.Appgraph.
      { token_size = 10; alpha_tile = 4; alpha_src = 3; alpha_dst = 4;
        bandwidth = 5 }
  in
  let app =
    Appmodel.Appgraph.make ~name:"x" ~graph ~reqs ~creqs:[| creq; creq |]
      ~lambda:Sdf.Rat.one ~output_actor:1
  in
  let ba =
    Bind_aware.build ~app ~arch:(Models.example_platform ())
      ~binding:[| 0; 1 |] ~slices:[| 5; 5 |] ()
  in
  let g = ba.Bind_aware.graph in
  let channel name =
    Array.to_list (Sdfg.channels g) |> List.find (fun c -> c.Sdfg.c_name = name)
  in
  Alcotest.(check int) "tokens delivered at destination" 2
    (channel "rcv_d0").Sdfg.tokens;
  Alcotest.(check int) "destination buffer minus resident tokens" 2
    (channel "dstbuf_d0").Sdfg.tokens;
  Alcotest.(check int) "source buffer full" 3 (channel "srcbuf_d0").Sdfg.tokens;
  Alcotest.(check int) "nothing in flight" 0 (channel "snd_d0").Sdfg.tokens

let test_pipelined_connection () =
  let ba =
    Bind_aware.build
      ~connection_model:(Bind_aware.Pipelined_connection { stages = 3 })
      ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
      ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
  in
  let g = ba.Bind_aware.graph in
  (* a1 a2 a3 + inject + 3 hops + sync. *)
  Alcotest.(check int) "8 actors" 8 (Sdfg.num_actors g);
  let tau name = ba.Bind_aware.exec_times.(Sdfg.actor_index g name) in
  (* Injection runs at the bandwidth: ceil(100/10) = 10. *)
  Alcotest.(check int) "inject time" 10 (tau "i_d1");
  (* Hops split the latency 1 over 3 stages, at least 1 each. *)
  Alcotest.(check int) "hop time" 1 (tau "h1_d1");
  Alcotest.(check int) "sync unchanged" 5 (tau "s_d1");
  (* All transport stages carry the channel's Conn role. *)
  let conn_actors =
    Array.to_list ba.Bind_aware.roles
    |> List.filter (function Bind_aware.Conn _ -> true | _ -> false)
  in
  Alcotest.(check int) "4 transport stages" 4 (List.length conn_actors)

let test_pipelined_no_slower () =
  (* Same binding and slices: the pipelined model may only help. *)
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let thr model =
    let ba =
      Bind_aware.build ~connection_model:model ~app:(Models.example_app ())
        ~arch:(Models.example_platform ()) ~binding:[| 0; 0; 1 |]
        ~slices:[| 5; 5 |] ()
    in
    Core.Constrained.throughput_or_zero ba ~schedules
  in
  Alcotest.(check bool) "pipelined >= simple" true
    (Sdf.Rat.compare
       (thr (Bind_aware.Pipelined_connection { stages = 2 }))
       (thr Bind_aware.Simple_connection)
    >= 0)

let test_pipelined_validation () =
  match
    Bind_aware.build
      ~connection_model:(Bind_aware.Pipelined_connection { stages = 0 })
      ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
      ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
  with
  | (_ : Bind_aware.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "structure (Fig 4)" `Quick test_structure_fig4;
    Alcotest.test_case "execution times (Fig 4)" `Quick test_exec_times_fig4;
    Alcotest.test_case "roles and tiles" `Quick test_roles_and_tiles;
    Alcotest.test_case "buffer edge" `Quick test_buffer_edge;
    Alcotest.test_case "sync time follows slice" `Quick test_sync_time_follows_slice;
    Alcotest.test_case "all on one tile" `Quick test_all_on_one_tile;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "half-wheel slices" `Quick test_half_wheel_slices;
    Alcotest.test_case "cross-tile initial tokens" `Quick
      test_initial_tokens_cross_tile;
    Alcotest.test_case "pipelined connection" `Quick test_pipelined_connection;
    Alcotest.test_case "pipelined no slower" `Quick test_pipelined_no_slower;
    Alcotest.test_case "pipelined validation" `Quick test_pipelined_validation;
  ]
