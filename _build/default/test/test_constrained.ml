(* Schedule- and TDMA-constrained execution (paper Section 8.2). *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Constrained = Core.Constrained
module Schedule = Core.Schedule
module Bind_aware = Core.Bind_aware
module Models = Appmodel.Models
open Helpers

let example_ba ?(slices = [| 5; 5 |]) () =
  Bind_aware.build ~app:(Models.example_app ())
    ~arch:(Models.example_platform ()) ~binding:[| 0; 0; 1 |] ~slices ()

let example_schedules () =
  [|
    Some (Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
    Some (Schedule.make ~prefix:[] ~period:[ 2 ]);
  |]

(* --- tdma_finish: the closed-form gated completion time --- *)

let fin t tau omega = Constrained.tdma_finish ~t ~tau ~w:10 ~omega

let test_tdma_finish_inside_slice () =
  Alcotest.(check int) "fits in slice" 3 (fin 0 3 5);
  Alcotest.(check int) "fits exactly" 5 (fin 0 5 5);
  Alcotest.(check int) "mid-slice" 5 (fin 4 1 5)

let test_tdma_finish_spill () =
  (* 3 units starting at phase 4 with slice [0,5): 1 unit now, wait 5,
     2 more units -> ends at 12. *)
  Alcotest.(check int) "spills over" 12 (fin 4 3 5);
  (* Start outside the slice: wait for phase 0. *)
  Alcotest.(check int) "starts outside" 12 (fin 7 2 5);
  (* Full wheels of work. *)
  Alcotest.(check int) "two full slices" 15 (fin 0 10 5);
  Alcotest.(check int) "2.5 slices" 22 (fin 0 12 5)

let test_tdma_finish_ungated () =
  Alcotest.(check int) "full slice = no gating" 17 (fin 3 14 10);
  Alcotest.(check int) "zero work" 3 (fin 3 0 0)

let test_tdma_finish_zero_slice () =
  Alcotest.check_raises "never finishes" Constrained.Deadlocked (fun () ->
      ignore (fin 0 1 0))

let test_tdma_finish_paper_trace () =
  (* Points from the Fig. 5(c) walkthrough: a3's firing arriving at t=29
     (phase 9) is postponed to 30 and ends at 32. *)
  Alcotest.(check int) "a3 postponed firing" 32 (fin 29 2 5)

(* --- full analysis on the running example --- *)

let test_fig5c () =
  let r = Constrained.analyze (example_ba ()) ~schedules:(example_schedules ()) in
  check_rat "throughput 1/30 (paper Fig 5c)" (Rat.make 1 30)
    r.Constrained.throughput;
  Alcotest.(check int) "period" 30 r.Constrained.period

let test_full_wheel_matches_selftimed () =
  (* With the whole wheel allocated, the sync actor waits 0 time units and
     gating is off, so the constrained result must equal the self-timed
     throughput of the same binding-aware graph (the schedules agree with
     the self-timed order, and t1's firings never overlapped anyway). *)
  let ba = example_ba ~slices:[| 10; 10 |] () in
  let st =
    Analysis.Selftimed.analyze ba.Bind_aware.graph ba.Bind_aware.exec_times
  in
  let r = Constrained.analyze ba ~schedules:(example_schedules ()) in
  check_rat "matches self-timed of the full-wheel graph"
    st.Analysis.Selftimed.throughput.(2) r.Constrained.throughput;
  (* Removing the 5-unit sync wait shortens the 29-cycle to 24. *)
  check_rat "1/24" (Rat.make 1 24) r.Constrained.throughput

let test_monotone_in_slice () =
  let thr slices =
    Constrained.throughput_or_zero (example_ba ~slices ())
      ~schedules:(example_schedules ())
  in
  let prev = ref Rat.zero in
  for s = 1 to 10 do
    let t = thr [| s; s |] in
    Alcotest.(check bool)
      (Printf.sprintf "thr(%d) >= thr(%d)" s (s - 1))
      true
      (Rat.compare t !prev >= 0);
    prev := t
  done

let test_bad_schedule_rejected () =
  let ba = example_ba () in
  let schedules =
    [| Some (Schedule.make ~prefix:[] ~period:[ 2 ]) (* a3 is not on t1 *);
       Some (Schedule.make ~prefix:[] ~period:[ 2 ]) |]
  in
  match Constrained.analyze ba ~schedules with
  | (_ : Constrained.result) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_starving_schedule_deadlocks () =
  (* Order a2 before a1 on t1: a2 needs a token that only a1 can produce,
     and the schedule never lets a1 go first. *)
  let ba = example_ba () in
  let schedules =
    [| Some (Schedule.make ~prefix:[] ~period:[ 1; 0 ]);
       Some (Schedule.make ~prefix:[] ~period:[ 2 ]) |]
  in
  Alcotest.check_raises "deadlock" Constrained.Deadlocked (fun () ->
      ignore (Constrained.analyze ba ~schedules));
  check_rat "throughput_or_zero maps to 0" Rat.zero
    (Constrained.throughput_or_zero ba ~schedules)

let test_zero_slice_throughput_zero () =
  (* A used tile with slice 0 can never progress: throughput 0, not a
     crash (the state space recurs over the idle wheel). *)
  let ba = example_ba ~slices:[| 5; 0 |] () in
  check_rat "zero" Rat.zero
    (Constrained.throughput_or_zero ba ~schedules:(example_schedules ()))

let test_state_cap () =
  let ba = example_ba () in
  match Constrained.analyze ~max_states:2 ba ~schedules:(example_schedules ()) with
  | (_ : Constrained.result) -> Alcotest.fail "expected cap"
  | exception Constrained.State_space_exceeded 2 -> ()

let test_prefix_schedule () =
  (* A schedule with a transient prefix must execute correctly: prefix
     a1, then (a2 a1)*. Same infinite sequence as (a1 a2)*, so 1/30. *)
  let ba = example_ba () in
  let schedules =
    [| Some (Schedule.make ~prefix:[ 0 ] ~period:[ 1; 0 ]);
       Some (Schedule.make ~prefix:[] ~period:[ 2 ]) |]
  in
  let r = Constrained.analyze ba ~schedules in
  check_rat "same steady state" (Rat.make 1 30) r.Constrained.throughput

let test_inflation_is_conservative () =
  (* Paper Sec. 8.2: the [4]-style inflation model never reports a higher
     throughput than the constrained execution. *)
  let ba = example_ba () in
  let schedules = example_schedules () in
  let ours = (Constrained.analyze ba ~schedules).Constrained.throughput in
  let theirs = Core.Tdma_inflation.throughput ba ~schedules in
  Alcotest.(check bool) "inflated <= constrained" true
    (Rat.compare theirs ours <= 0);
  check_rat "inflated value" (Rat.make 1 34) theirs

let test_inflate_formula () =
  Alcotest.(check int) "tau <= omega: + (w - omega)" 7
    (Core.Tdma_inflation.inflate ~tau:2 ~w:10 ~omega:5);
  Alcotest.(check int) "two windows" 20
    (Core.Tdma_inflation.inflate ~tau:10 ~w:10 ~omega:5);
  Alcotest.(check int) "full wheel unchanged" 7
    (Core.Tdma_inflation.inflate ~tau:7 ~w:10 ~omega:10);
  Alcotest.(check int) "zero work" 0
    (Core.Tdma_inflation.inflate ~tau:0 ~w:10 ~omega:5)

let suite =
  [
    Alcotest.test_case "tdma_finish inside slice" `Quick test_tdma_finish_inside_slice;
    Alcotest.test_case "tdma_finish spill" `Quick test_tdma_finish_spill;
    Alcotest.test_case "tdma_finish ungated" `Quick test_tdma_finish_ungated;
    Alcotest.test_case "tdma_finish zero slice" `Quick test_tdma_finish_zero_slice;
    Alcotest.test_case "tdma_finish paper trace" `Quick test_tdma_finish_paper_trace;
    Alcotest.test_case "Fig 5(c): 1/30" `Quick test_fig5c;
    Alcotest.test_case "full wheel = 1/29" `Quick test_full_wheel_matches_selftimed;
    Alcotest.test_case "monotone in slice" `Quick test_monotone_in_slice;
    Alcotest.test_case "bad schedule rejected" `Quick test_bad_schedule_rejected;
    Alcotest.test_case "starving schedule deadlocks" `Quick
      test_starving_schedule_deadlocks;
    Alcotest.test_case "zero slice" `Quick test_zero_slice_throughput_zero;
    Alcotest.test_case "state cap" `Quick test_state_cap;
    Alcotest.test_case "prefix schedule" `Quick test_prefix_schedule;
    Alcotest.test_case "inflation is conservative" `Quick
      test_inflation_is_conservative;
    Alcotest.test_case "inflation formula" `Quick test_inflate_formula;
  ]
