(* The cost functions of Section 9.1 (Eqns. 1 and 2). *)

module Rat = Sdf.Rat
module Cost = Core.Cost
module Models = Appmodel.Models
open Helpers

let app () = Models.example_app ()
let arch () = Models.example_platform ()

let test_criticality_example () =
  let crit = Cost.actor_criticality (app ()) in
  Alcotest.(check bool) "not truncated" false crit.Cost.truncated;
  (* Only cycle: the self-loop d3. Eqn. 1: gamma(a1)*sup tau(a1) / (1/1). *)
  check_rat "cost(a1)" (Rat.make 8 1) crit.Cost.per_actor.(0);
  check_rat "cost(a2): no cycle" Rat.zero crit.Cost.per_actor.(1);
  check_rat "cost(a3): no cycle" Rat.zero crit.Cost.per_actor.(2)

let test_criticality_ring () =
  (* A multirate ring: one cycle through all actors. *)
  let graph =
    Sdf.Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 2, 3, 0); ("b", "a", 3, 2, 6) ]
  in
  let r t = Appmodel.Appgraph.{ exec_time = t; memory = 0 } in
  let reqs = [| [ ("p1", r 4) ]; [ ("p1", r 6) ] |] in
  let creq =
    Appmodel.Appgraph.
      { token_size = 1; alpha_tile = 9; alpha_src = 4; alpha_dst = 6;
        bandwidth = 1 }
  in
  let app =
    Appmodel.Appgraph.make ~name:"ring" ~graph ~reqs ~creqs:[| creq; creq |]
      ~lambda:Rat.one ~output_actor:1
  in
  let crit = Cost.actor_criticality app in
  (* gamma = (3,2); work = 3*4 + 2*6 = 24; tokens: 6/2 on the feedback
     channel = 3. Cost = 24 / 3 = 8 for both actors. *)
  check_rat "cost(a)" (Rat.make 8 1) crit.Cost.per_actor.(0);
  check_rat "cost(b)" (Rat.make 8 1) crit.Cost.per_actor.(1)

let test_zero_token_cycle_is_infinite () =
  (* Structurally dead cycles rank infinitely critical; Appgraph.make
     rejects them, so drive Cost through a raw graph + synthetic app is
     not possible — instead check cycle_value indirectly via a graph with
     a zero-token cycle plus enough tokens elsewhere to stay live. This
     cannot exist (zero-token cycle = deadlock), so we simply check that
     the criticality of a one-token two-cycle doubles when the token is
     halved... i.e. tokens in the denominator. *)
  let make tokens =
    let graph =
      Sdf.Sdfg.of_lists ~actors:[ "a"; "b" ]
        ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, tokens) ]
    in
    let r t = Appmodel.Appgraph.{ exec_time = t; memory = 0 } in
    let reqs = [| [ ("p1", r 3) ]; [ ("p1", r 5) ] |] in
    let creq =
      Appmodel.Appgraph.
        { token_size = 1; alpha_tile = tokens + 2; alpha_src = 2;
          alpha_dst = tokens + 1; bandwidth = 1 }
    in
    Appmodel.Appgraph.make ~name:"two" ~graph ~reqs ~creqs:[| creq; creq |]
      ~lambda:Rat.one ~output_actor:1
  in
  let c1 = (Cost.actor_criticality (make 1)).Cost.per_actor.(0) in
  let c2 = (Cost.actor_criticality (make 2)).Cost.per_actor.(0) in
  check_rat "tokens divide criticality" c1 (Rat.mul_int c2 2)

let test_binding_order () =
  (* a1 is the only cyclic actor; a2 outranks a3 on total work (14 vs 3). *)
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Cost.binding_order (app ()))

let test_processing_load () =
  let app = app () and arch = arch () in
  (* a1, a2 on t1: (2*1 + 2*1) / 25. *)
  Alcotest.(check (float 1e-9)) "lp t1" (4. /. 25.)
    (Cost.processing_load app arch [| 0; 0; -1 |] 0);
  Alcotest.(check (float 1e-9)) "lp t2 empty" 0.
    (Cost.processing_load app arch [| 0; 0; -1 |] 1);
  (* a3 on t2 runs at tau = 2 there. *)
  Alcotest.(check (float 1e-9)) "lp t2 with a3" (2. /. 25.)
    (Cost.processing_load app arch [| 0; 0; 1 |] 1)

let test_memory_load () =
  let app = app () and arch = arch () in
  (* t1 with a1 alone: mu 10 + self-loop buffer 1*1, over 700. *)
  Alcotest.(check (float 1e-9)) "lm t1" (11. /. 700.)
    (Cost.memory_load app arch [| 0; -1; -1 |] 0)

let test_communication_load () =
  let app = app () and arch = arch () in
  (* Binding of the paper: d2 split with beta 10; t2 has i = 100, c = 7. *)
  let lc = Cost.communication_load app arch [| 0; 0; 1 |] 1 in
  Alcotest.(check (float 1e-9)) "lc t2" ((0.1 +. 0. +. (1. /. 7.)) /. 3.) lc;
  Alcotest.(check (float 1e-9)) "lc colocated" 0.
    (Cost.communication_load app arch [| 0; 0; 0 |] 0)

let test_tile_cost_combines () =
  let app = app () and arch = arch () in
  let binding = [| 0; 0; 1 |] in
  let w = Cost.weights 2. 3. 5. in
  let expected =
    (2. *. Cost.processing_load app arch binding 1)
    +. (3. *. Cost.memory_load app arch binding 1)
    +. (5. *. Cost.communication_load app arch binding 1)
  in
  Alcotest.(check (float 1e-9)) "weighted sum" expected
    (Cost.tile_cost w app arch binding 1)

let suite =
  [
    Alcotest.test_case "criticality (example)" `Quick test_criticality_example;
    Alcotest.test_case "criticality (ring)" `Quick test_criticality_ring;
    Alcotest.test_case "tokens divide criticality" `Quick
      test_zero_token_cycle_is_infinite;
    Alcotest.test_case "binding order" `Quick test_binding_order;
    Alcotest.test_case "processing load" `Quick test_processing_load;
    Alcotest.test_case "memory load" `Quick test_memory_load;
    Alcotest.test_case "communication load" `Quick test_communication_load;
    Alcotest.test_case "tile cost combines" `Quick test_tile_cost_combines;
  ]
