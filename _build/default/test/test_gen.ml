(* The SDF3-like benchmark generator. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
open Helpers

let test_rng_determinism () =
  let draw seed =
    let g = Gen.Rng.create ~seed in
    List.init 20 (fun _ -> Gen.Rng.int g 1000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw 42) (draw 42);
  Alcotest.(check bool) "different seeds differ" true (draw 42 <> draw 43)

let test_rng_bounds () =
  let g = Gen.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Gen.Rng.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let r = Gen.Rng.range g 5 8 in
    Alcotest.(check bool) "range inclusive" true (r >= 5 && r <= 8)
  done

let test_rng_split_independence () =
  let g = Gen.Rng.create ~seed:1 in
  let a = Gen.Rng.split g in
  let b = Gen.Rng.split g in
  let stream x = List.init 10 (fun _ -> Gen.Rng.int x 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (stream a <> stream b)

let test_shuffle_is_permutation () =
  let g = Gen.Rng.create ~seed:3 in
  let a = Array.init 20 Fun.id in
  let b = Array.copy a in
  Gen.Rng.shuffle g b;
  Alcotest.(check (list int)) "same multiset" (Array.to_list a)
    (List.sort compare (Array.to_list b))

let test_sequence_determinism () =
  let names seq =
    List.map
      (fun (a : Appgraph.t) -> Sdfg.num_actors a.Appgraph.graph)
      (Gen.Benchsets.sequence ~set:1 ~seq ~count:5)
  in
  Alcotest.(check (list int)) "reproducible" (names 0) (names 0);
  Alcotest.(check bool) "sequences differ" true (names 0 <> names 1)

let test_generated_well_formed () =
  List.iter
    (fun set ->
      List.iter
        (fun (app : Appgraph.t) ->
          let g = app.Appgraph.graph in
          Alcotest.(check bool) "connected" true (Sdfg.is_weakly_connected g);
          Alcotest.(check bool) "consistent" true (Sdf.Repetition.is_consistent g);
          Alcotest.(check bool) "live" true (Sdf.Deadlock.is_deadlock_free g);
          Alcotest.(check bool) "positive lambda" true
            (Rat.compare app.Appgraph.lambda Rat.zero > 0);
          (* Every actor has an input (self-timed analysis needs it). *)
          for a = 0 to Sdfg.num_actors g - 1 do
            Alcotest.(check bool) "actor has input" true (Sdfg.in_channels g a <> [])
          done)
        (Gen.Benchsets.sequence ~set ~seq:0 ~count:8))
    [ 1; 2; 3; 4 ]

let test_profiles_stress_the_right_resource () =
  let avg f apps =
    List.fold_left (fun acc a -> acc +. f a) 0. apps
    /. float_of_int (List.length apps)
  in
  let mem_per_actor (app : Appgraph.t) =
    let n = Sdfg.num_actors app.Appgraph.graph in
    let total =
      List.init n (fun a -> Appgraph.max_exec_time app a) |> List.fold_left ( + ) 0
    in
    ignore total;
    let mem =
      List.init n (fun a ->
          match Appgraph.memory app a (fst (List.hd app.Appgraph.reqs.(a))) with
          | Some m -> m
          | None -> 0)
      |> List.fold_left ( + ) 0
    in
    float_of_int mem /. float_of_int n
  in
  let tau_per_actor (app : Appgraph.t) =
    let n = Sdfg.num_actors app.Appgraph.graph in
    let total =
      List.init n (fun a -> Appgraph.max_exec_time app a) |> List.fold_left ( + ) 0
    in
    float_of_int total /. float_of_int n
  in
  let set k = Gen.Benchsets.sequence ~set:k ~seq:0 ~count:10 in
  Alcotest.(check bool) "set1 has the largest execution times" true
    (avg tau_per_actor (set 1) > avg tau_per_actor (set 2));
  Alcotest.(check bool) "set2 has the largest actor state" true
    (avg mem_per_actor (set 2) > avg mem_per_actor (set 1)
    && avg mem_per_actor (set 2) > avg mem_per_actor (set 3))

let test_buffer_liveness_bound () =
  (* Generated Theta buffers hold one iteration: alpha_tile covers
     prod * gamma(src) plus resident tokens on every channel. *)
  List.iter
    (fun (app : Appgraph.t) ->
      let g = app.Appgraph.graph in
      let gamma = Appgraph.gamma app in
      Array.iteri
        (fun ci (cr : Appgraph.channel_req) ->
          let c = Sdfg.channel g ci in
          (* gamma is the minimal vector; the generator's choice may be a
             multiple, so check against the minimal one. *)
          Alcotest.(check bool) "alpha_tile covers an iteration" true
            (cr.Appgraph.alpha_tile >= (c.Sdfg.prod * gamma.(c.Sdfg.src)) + c.Sdfg.tokens))
        app.Appgraph.creqs)
    (Gen.Benchsets.sequence ~set:3 ~seq:2 ~count:10)

let test_architecture_variants () =
  let a0 = Gen.Benchsets.architecture 0 in
  let a2 = Gen.Benchsets.architecture 2 in
  Alcotest.(check int) "3x3" 9 (Platform.Archgraph.num_tiles a0);
  Alcotest.(check bool) "variant 2 has less memory" true
    ((Platform.Archgraph.tile a2 0).Platform.Tile.mem
    < (Platform.Archgraph.tile a0 0).Platform.Tile.mem);
  Alcotest.(check bool) "variant 2 has fewer connections" true
    ((Platform.Archgraph.tile a2 0).Platform.Tile.max_conns
    < (Platform.Archgraph.tile a0 0).Platform.Tile.max_conns);
  (* All three processor types are present. *)
  let types =
    Array.to_list (Platform.Archgraph.tiles a0)
    |> List.map (fun t -> t.Platform.Tile.proc_type)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "3 types" 3 (List.length types)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independence;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sequence determinism" `Quick test_sequence_determinism;
    Alcotest.test_case "generated graphs well formed" `Quick test_generated_well_formed;
    Alcotest.test_case "profiles stress the right resource" `Quick
      test_profiles_stress_the_right_resource;
    Alcotest.test_case "buffer liveness bound" `Quick test_buffer_liveness_bound;
    Alcotest.test_case "architecture variants" `Quick test_architecture_variants;
  ]
