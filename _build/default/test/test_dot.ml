(* Graphviz export: structural checks on the generated text. *)

module Dot = Sdf.Dot
open Helpers

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_basic () =
  let s = Dot.to_dot ~name:"demo" (example_graph ()) in
  Alcotest.(check bool) "digraph header" true (contains s "digraph \"demo\"");
  Alcotest.(check bool) "actor node" true (contains s "label=\"a1\"");
  Alcotest.(check bool) "edge" true (contains s "n0 -> n1");
  Alcotest.(check bool) "self loop" true (contains s "n0 -> n0");
  Alcotest.(check bool) "token annotation" true (contains s "[1]")

let test_exec_times () =
  let s = Dot.to_dot ~exec_times:[| 1; 5; 9 |] (example_graph ()) in
  Alcotest.(check bool) "timing label" true (contains s "a3\\n9")

let test_write_file () =
  let path = Filename.temp_file "sdfg" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.write_file path (example_graph ());
      let ic = open_in path in
      let content =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
      in
      Alcotest.(check bool) "file has content" true (contains content "digraph"))

let suite =
  [
    Alcotest.test_case "basic rendering" `Quick test_basic;
    Alcotest.test_case "execution times" `Quick test_exec_times;
    Alcotest.test_case "file output" `Quick test_write_file;
  ]
