(* The iterative allocation wrapper (weight-ladder retry). *)

module Rat = Sdf.Rat
module Flow = Core.Flow
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models

let test_first_setting_succeeds () =
  let r = Flow.allocate_with_retry (Models.example_app ()) (Models.example_platform ()) in
  (match r.Flow.allocation with
  | Some alloc ->
      Alcotest.(check bool) "meets constraint" true
        (Rat.compare alloc.Core.Strategy.throughput (Rat.make 1 30) >= 0)
  | None -> Alcotest.fail "expected an allocation");
  Alcotest.(check int) "stopped after the first success" 1
    (List.length r.Flow.attempts)

let test_ladder_advances_past_failures () =
  (* A ladder whose first setting cannot succeed: processing-only weights
     on a platform... all settings bind the example, so force failures by
     an infeasible constraint instead, then confirm every rung was tried. *)
  let app = Appgraph.with_lambda (Models.example_app ()) (Rat.make 1 5) in
  let r = Flow.allocate_with_retry app (Models.example_platform ()) in
  Alcotest.(check bool) "no allocation" true (r.Flow.allocation = None);
  Alcotest.(check int) "tried the whole ladder" 5 (List.length r.Flow.attempts);
  List.iter
    (fun a ->
      Alcotest.(check bool) "each attempt failed" true
        (match a.Flow.outcome with Error _ -> true | Ok _ -> false))
    r.Flow.attempts

let test_custom_ladder () =
  let app = Models.example_app () in
  let ladder = [ Core.Cost.weights 1. 0. 0. ] in
  let r =
    Flow.allocate_with_retry ~weight_ladder:ladder app
      (Models.example_platform ())
  in
  Alcotest.(check int) "one attempt" 1 (List.length r.Flow.attempts);
  Alcotest.(check bool) "succeeded" true (r.Flow.allocation <> None)

let test_retry_helps_on_benchmark () =
  (* On generated workloads the ladder never does worse than its own first
     rung (it only adds fallbacks). *)
  let arch = Gen.Benchsets.architecture 2 in
  let apps = Gen.Benchsets.sequence ~set:3 ~seq:2 ~count:10 in
  let first_rung_ok, ladder_ok =
    List.fold_left
      (fun (f, l) app ->
        let single =
          match
            Core.Strategy.allocate ~weights:(Core.Cost.weights 0. 1. 2.)
              ~max_states:150_000 app arch
          with
          | Ok _ -> 1
          | Error _ -> 0
        in
        let retried =
          match
            (Flow.allocate_with_retry ~max_states:150_000 app arch).Flow.allocation
          with
          | Some _ -> 1
          | None -> 0
        in
        (f + single, l + retried))
      (0, 0) apps
  in
  Alcotest.(check bool)
    (Printf.sprintf "ladder (%d) >= first rung (%d)" ladder_ok first_rung_ok)
    true (ladder_ok >= first_rung_ok)

let suite =
  [
    Alcotest.test_case "first setting succeeds" `Quick test_first_setting_succeeds;
    Alcotest.test_case "ladder advances" `Quick test_ladder_advances_past_failures;
    Alcotest.test_case "custom ladder" `Quick test_custom_ladder;
    Alcotest.test_case "retry helps on benchmark" `Slow test_retry_helps_on_benchmark;
  ]
