(* Application graphs (paper Definition 5) and the concrete models. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
open Helpers

let test_example_model () =
  let app = Models.example_app () in
  Alcotest.(check (array int)) "gamma" [| 2; 2; 1 |] (Appgraph.gamma app);
  Alcotest.(check (option int)) "tau(a1, p1)" (Some 1)
    (Appgraph.exec_time app 0 "p1");
  Alcotest.(check (option int)) "tau(a3, p2)" (Some 2)
    (Appgraph.exec_time app 2 "p2");
  Alcotest.(check (option int)) "mu(a2, p2)" (Some 19) (Appgraph.memory app 1 "p2");
  Alcotest.(check (option int)) "unknown type" None (Appgraph.exec_time app 0 "xx");
  Alcotest.(check int) "max tau a1" 4 (Appgraph.max_exec_time app 0);
  Alcotest.(check bool) "supports" true (Appgraph.supports app 1 "p1");
  (* Total work: 2*4 + 2*7 + 1*3 (worst-case processor types). *)
  Alcotest.(check int) "total work" 25 (Appgraph.total_work app);
  check_rat "lambda" (Rat.make 1 30) app.Appgraph.lambda

let test_with_lambda () =
  let app = Models.example_app () in
  let app2 = Appgraph.with_lambda app (Rat.make 1 50) in
  check_rat "changed" (Rat.make 1 50) app2.Appgraph.lambda;
  check_rat "original" (Rat.make 1 30) app.Appgraph.lambda

let bad_make f =
  match f () with
  | (_ : Appgraph.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_validation () =
  let graph = example_graph () in
  let ok_reqs =
    Array.make 3 [ ("p", Appgraph.{ exec_time = 1; memory = 0 }) ]
  in
  let ok_creqs =
    Array.make 3
      Appgraph.
        { token_size = 1; alpha_tile = 1; alpha_src = 1; alpha_dst = 1;
          bandwidth = 1 }
  in
  let make ?(graph = graph) ?(reqs = ok_reqs) ?(creqs = ok_creqs)
      ?(lambda = Rat.one) ?(output_actor = 0) () =
    Appgraph.make ~name:"t" ~graph ~reqs ~creqs ~lambda ~output_actor
  in
  (* The baseline configuration is accepted. *)
  ignore (make ());
  bad_make (fun () -> make ~reqs:(Array.make 2 ok_reqs.(0)) ());
  bad_make (fun () -> make ~creqs:(Array.make 2 ok_creqs.(0)) ());
  bad_make (fun () -> make ~output_actor:7 ());
  bad_make (fun () ->
      let reqs = Array.copy ok_reqs in
      reqs.(1) <- [];
      make ~reqs ());
  bad_make (fun () ->
      let reqs = Array.copy ok_reqs in
      reqs.(1) <- [ ("p", Appgraph.{ exec_time = 0; memory = 0 }) ];
      make ~reqs ());
  bad_make (fun () ->
      let creqs = Array.copy ok_creqs in
      creqs.(0) <- { creqs.(0) with Appgraph.token_size = -1 };
      make ~creqs ());
  (* Inconsistent graphs are rejected. *)
  bad_make (fun () ->
      let g =
        Sdfg.of_lists ~actors:[ "a"; "b" ]
          ~channels:[ ("a", "b", 2, 1, 0); ("b", "a", 1, 1, 1) ]
      in
      make ~graph:g
        ~reqs:(Array.make 2 ok_reqs.(0))
        ~creqs:(Array.make 2 ok_creqs.(0))
        ());
  (* Deadlocked graphs are rejected. *)
  bad_make (fun () ->
      let g =
        Sdfg.of_lists ~actors:[ "a"; "b" ]
          ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
      in
      make ~graph:g
        ~reqs:(Array.make 2 ok_reqs.(0))
        ~creqs:(Array.make 2 ok_creqs.(0))
        ())

let test_h263 () =
  let app = Models.h263 () in
  Alcotest.(check int) "4 actors" 4 (Sdfg.num_actors app.Appgraph.graph);
  Alcotest.(check int) "output is mc" 3 app.Appgraph.output_actor;
  (* vld only runs on the generic processor. *)
  Alcotest.(check bool) "vld not on acc" false (Appgraph.supports app 0 Models.acc);
  Alcotest.(check bool) "iq on acc" true (Appgraph.supports app 1 Models.acc)

let test_mp3 () =
  let app = Models.mp3 () in
  Alcotest.(check int) "13 actors (paper Sec 10.3)" 13
    (Sdfg.num_actors app.Appgraph.graph);
  Alcotest.(check bool) "single rate" true
    (Array.for_all (fun v -> v = 1) (Appgraph.gamma app))

let test_system_hsdf_size () =
  (* Paper Sec. 10.3: the whole system as an HSDFG has 14275 actors. *)
  let total =
    List.fold_left
      (fun acc (app : Appgraph.t) ->
        acc + Sdf.Repetition.iteration_firings (Appgraph.gamma app))
      0
      [ Models.h263 (); Models.h263 (); Models.h263 (); Models.mp3 () ]
  in
  Alcotest.(check int) "14275 actors" 14275 total

let test_platforms () =
  let ep = Models.example_platform () in
  Alcotest.(check int) "example tiles" 2 (Platform.Archgraph.num_tiles ep);
  let t1 = Platform.Archgraph.tile ep 0 in
  Alcotest.(check int) "t1 wheel (Tab 1)" 10 t1.Platform.Tile.wheel;
  Alcotest.(check int) "t1 mem (Tab 1)" 700 t1.Platform.Tile.mem;
  Alcotest.(check int) "t1 conns (Tab 1)" 5 t1.Platform.Tile.max_conns;
  let mm = Models.multimedia_platform () in
  Alcotest.(check int) "multimedia tiles" 4 (Platform.Archgraph.num_tiles mm);
  Alcotest.(check string) "two accelerators" Models.acc
    (Platform.Archgraph.tile mm 3).Platform.Tile.proc_type

let suite =
  [
    Alcotest.test_case "example model" `Quick test_example_model;
    Alcotest.test_case "with_lambda" `Quick test_with_lambda;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "h263" `Quick test_h263;
    Alcotest.test_case "mp3" `Quick test_mp3;
    Alcotest.test_case "system HSDF size" `Quick test_system_hsdf_size;
    Alcotest.test_case "platforms" `Quick test_platforms;
  ]
