(* Cyclo-static dataflow: structure, analysis and the lumping bridge. *)

module Graph = Csdf.Graph
module Cst = Csdf.Selftimed
module Rat = Sdf.Rat
open Helpers

(* A deinterleaver: src feeds deint, which forwards tokens alternately to
   outA and outB; a feedback channel bounds the pipeline. *)
let deinterleaver () =
  Graph.of_lists
    ~actors:[ ("src", 1); ("deint", 2); ("outA", 1); ("outB", 1) ]
    ~channels:
      [
        ("src", "deint", [ 1 ], [ 1; 1 ], 0);
        ("deint", "outA", [ 1; 0 ], [ 1 ], 0);
        ("deint", "outB", [ 0; 1 ], [ 1 ], 0);
        ("outA", "src", [ 2 ], [ 1 ], 4);
      ]

let deint_taus = [| [| 2 |]; [| 1; 3 |]; [| 2 |]; [| 2 |] |]

let test_structure () =
  let g = deinterleaver () in
  Alcotest.(check int) "actors" 4 (Graph.num_actors g);
  Alcotest.(check int) "channels" 4 (Graph.num_channels g);
  Alcotest.(check int) "deint phases" 2 (Graph.actor g 1).Graph.phases;
  Alcotest.(check int) "index" 1 (Graph.actor_index g "deint");
  let c = Graph.channel g 1 in
  Alcotest.(check int) "cycle production" 1 (Graph.cycle_production c);
  Alcotest.(check int) "cycle consumption" 1 (Graph.cycle_consumption c)

let test_validation () =
  let bad f = match f () with
    | (_ : Graph.t) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Graph.of_lists ~actors:[ ("a", 0) ] ~channels:[]);
  bad (fun () ->
      Graph.of_lists ~actors:[ ("a", 2) ]
        ~channels:[ ("a", "a", [ 1 ], [ 1; 0 ], 1) ]);
  (* sequence length mismatch *)
  bad (fun () ->
      Graph.of_lists ~actors:[ ("a", 1) ]
        ~channels:[ ("a", "a", [ -1 ], [ 1 ], 1) ]);
  bad (fun () ->
      Graph.of_lists ~actors:[ ("a", 2) ]
        ~channels:[ ("a", "a", [ 0; 0 ], [ 1; 0 ], 1) ])
(* never produced *)

let test_repetition () =
  match Graph.repetition (deinterleaver ()) with
  | Graph.Consistent gamma ->
      Alcotest.(check (array int)) "phase firings" [| 2; 2; 1; 1 |] gamma
  | _ -> Alcotest.fail "expected consistency"

let test_inconsistent () =
  let g =
    Graph.of_lists ~actors:[ ("a", 1); ("b", 1) ]
      ~channels:[ ("a", "b", [ 2 ], [ 1 ], 0); ("b", "a", [ 1 ], [ 1 ], 1) ]
  in
  match Graph.repetition g with
  | Graph.Inconsistent { channel } ->
      Alcotest.(check bool) "witness" true (channel >= 0 && channel < 2)
  | _ -> Alcotest.fail "expected inconsistency"

let test_liveness () =
  Alcotest.(check bool) "deinterleaver live" true
    (Graph.is_deadlock_free (deinterleaver ()));
  (* Token-free cycle: dead. *)
  let dead =
    Graph.of_lists ~actors:[ ("a", 1); ("b", 1) ]
      ~channels:[ ("a", "b", [ 1 ], [ 1 ], 0); ("b", "a", [ 1 ], [ 1 ], 0) ]
  in
  Alcotest.(check bool) "dead" false (Graph.is_deadlock_free dead)

let test_phase_order_matters () =
  (* The consumer waits for the phase that actually produces: with seq
     [0;1] the token appears only after the second phase. *)
  let early =
    Graph.of_lists ~actors:[ ("p", 2); ("c", 1) ]
      ~channels:
        [ ("p", "c", [ 1; 0 ], [ 1 ], 0); ("c", "p", [ 2 ], [ 1; 1 ], 2) ]
  in
  let late =
    Graph.of_lists ~actors:[ ("p", 2); ("c", 1) ]
      ~channels:
        [ ("p", "c", [ 0; 1 ], [ 1 ], 0); ("c", "p", [ 2 ], [ 1; 1 ], 2) ]
  in
  let taus = [| [| 4; 4 |]; [| 1 |] |] in
  let thr g = Cst.throughput g taus 1 in
  Alcotest.(check bool) "early production is at least as fast" true
    (Rat.compare (thr early) (thr late) >= 0)

let test_selftimed_deinterleaver () =
  let g = deinterleaver () in
  let r = Cst.analyze g deint_taus in
  (* outA fires once per iteration; measured by the smoke analysis: 1/4. *)
  check_rat "thr(outA)" (Rat.make 1 4) r.Cst.throughput.(2);
  check_rat "full-cycle helper" (Rat.make 1 4) (Cst.throughput g deint_taus 2);
  (* deint has 2 phase firings per iteration: phase rate double outA's. *)
  check_rat "deint phase rate" (Rat.make 2 4) r.Cst.throughput.(1)

let test_sdf_special_case_agrees () =
  (* A CSDF with all single-phase actors must agree with the SDF engine. *)
  let csdf =
    Graph.of_lists ~actors:[ ("x", 1); ("y", 1); ("z", 1) ]
      ~channels:
        [
          ("x", "y", [ 1 ], [ 1 ], 1); ("y", "z", [ 1 ], [ 1 ], 0);
          ("z", "x", [ 1 ], [ 1 ], 0);
        ]
  in
  let r = Cst.analyze csdf [| [| 2 |]; [| 3 |]; [| 4 |] |] in
  let sdf = Analysis.Selftimed.analyze (ring3 ()) [| 2; 3; 4 |] in
  check_rat "same ring, same throughput" sdf.Analysis.Selftimed.throughput.(0)
    r.Cst.throughput.(0)

let test_lump_structure () =
  let g = deinterleaver () in
  let l = Graph.lump g in
  Alcotest.(check int) "same actors" 4 (Sdf.Sdfg.num_actors l);
  Alcotest.(check int) "same channels" 4 (Sdf.Sdfg.num_channels l);
  let c = Sdf.Sdfg.channel l 0 in
  (* src -> deint: per-cycle rates 1 and 2. *)
  Alcotest.(check (pair int int)) "summed rates" (1, 2) (c.Sdf.Sdfg.prod, c.Sdf.Sdfg.cons);
  Alcotest.(check bool) "lumped graph consistent" true
    (Sdf.Repetition.is_consistent l);
  Alcotest.(check (array int)) "lumped exec times" [| 2; 4; 2; 2 |]
    (Graph.lump_exec_times g deint_taus)

let test_lump_is_conservative () =
  (* The lumped SDF consumes a whole cycle's tokens at its start and
     produces at its end, so its throughput never exceeds the CSDF's. *)
  let check_case name g taus outputs =
    let l = Graph.lump ~serialized:true g in
    let ltaus = Graph.lump_exec_times g taus in
    match Analysis.Selftimed.analyze l ltaus with
    | exception Analysis.Selftimed.Deadlocked -> () (* lumping may deadlock *)
    | lr ->
        List.iter
          (fun out ->
            let csdf_rate = Cst.throughput g taus out in
            Alcotest.(check bool)
              (Printf.sprintf "%s: lumped <= csdf at actor %d" name out)
              true
              (Rat.compare lr.Analysis.Selftimed.throughput.(out) csdf_rate <= 0))
          outputs
  in
  check_case "deinterleaver" (deinterleaver ()) deint_taus [ 0; 2; 3 ];
  (* A case where lumping strictly loses: a 2-phase producer whose first
     phase already feeds the consumer. *)
  let early =
    Graph.of_lists ~actors:[ ("p", 2); ("c", 1) ]
      ~channels:
        [ ("p", "c", [ 1; 1 ], [ 1 ], 0); ("c", "p", [ 1 ], [ 1; 1 ], 2) ]
  in
  let taus = [| [| 5; 5 |]; [| 5 |] |] in
  check_case "early-producer" early taus [ 1 ];
  let lumped_rate =
    (Analysis.Selftimed.analyze
       (Graph.lump ~serialized:true early)
       (Graph.lump_exec_times early taus)).Analysis.Selftimed.throughput.(1)
  in
  Alcotest.(check bool) "strict gap exists" true
    (Rat.compare (Cst.throughput early taus 1) lumped_rate > 0)

let test_deadlock_exception () =
  let g =
    Graph.of_lists ~actors:[ ("a", 1); ("b", 1) ]
      ~channels:[ ("a", "b", [ 1 ], [ 1 ], 0); ("b", "a", [ 1 ], [ 1 ], 0) ]
  in
  Alcotest.check_raises "deadlocks" Cst.Deadlocked (fun () ->
      ignore (Cst.analyze g [| [| 1 |]; [| 1 |] |]))

(* Random consistent CSDF chains from the generator library. *)
let gen_random_csdf seed =
  Gen.Csdfgen.generate (Gen.Rng.create ~seed) ()

let prop_random_consistent =
  qcheck ~count:60 "random CSDF chains are consistent and live"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, _ = gen_random_csdf seed in
      match Graph.repetition g with
      | Graph.Consistent gamma ->
          Array.to_list gamma
          |> List.mapi (fun a v -> v mod (Graph.actor g a).Graph.phases = 0)
          |> List.for_all Fun.id
      | _ -> false)

let prop_lump_conservative =
  qcheck ~count:40 "lumping never overstates throughput"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, taus = gen_random_csdf seed in
      if not (Graph.is_deadlock_free g) then true
      else begin
        match Cst.analyze ~max_states:100_000 g taus with
        | exception Cst.State_space_exceeded _ -> true
        | _ -> (
            let lumped = Graph.lump ~serialized:true g in
            let ltaus = Graph.lump_exec_times g taus in
            match Analysis.Selftimed.analyze ~max_states:100_000 lumped ltaus with
            | exception Analysis.Selftimed.Deadlocked -> true
            | exception Analysis.Selftimed.State_space_exceeded _ -> true
            | lr ->
                let ok = ref true in
                for a = 0 to Graph.num_actors g - 1 do
                  let exact = Cst.throughput ~max_states:100_000 g taus a in
                  let cycles_rate =
                    Sdf.Rat.div_int lr.Analysis.Selftimed.throughput.(a)
                      1
                  in
                  if Sdf.Rat.compare cycles_rate exact > 0 then ok := false
                done;
                !ok)
      end)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "repetition" `Quick test_repetition;
    Alcotest.test_case "inconsistent" `Quick test_inconsistent;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "phase order matters" `Quick test_phase_order_matters;
    Alcotest.test_case "deinterleaver throughput" `Quick
      test_selftimed_deinterleaver;
    Alcotest.test_case "SDF special case" `Quick test_sdf_special_case_agrees;
    Alcotest.test_case "lump structure" `Quick test_lump_structure;
    Alcotest.test_case "lump conservative" `Quick test_lump_is_conservative;
    Alcotest.test_case "deadlock" `Quick test_deadlock_exception;
    prop_random_consistent;
    prop_lump_conservative;
  ]
