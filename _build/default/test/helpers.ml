(* Shared helpers for the test suites. *)

module Rat = Sdf.Rat
module Sdfg = Sdf.Sdfg

let rat : Rat.t Alcotest.testable =
  Alcotest.testable Rat.pp Rat.equal

let check_rat msg expected actual = Alcotest.check rat msg expected actual

let r n d = Rat.make n d

(* The paper's running example (Fig. 3): a1 -> a2 -> a3 with a self-loop on
   a1; repetition vector (2, 2, 1). *)
let example_graph () =
  Sdfg.of_lists ~actors:[ "a1"; "a2"; "a3" ]
    ~channels:
      [ ("a1", "a2", 1, 1, 0); ("a2", "a3", 1, 2, 0); ("a1", "a1", 1, 1, 1) ]

(* A two-actor producer/consumer with rates (2, 3) and a feedback channel
   carrying six tokens; repetition vector (3, 2). *)
let prodcons () =
  Sdfg.of_lists ~actors:[ "p"; "c" ]
    ~channels:[ ("p", "c", 2, 3, 0); ("c", "p", 3, 2, 6) ]

(* Strongly-connected three-actor ring, all rates 1, one token per edge. *)
let ring3 () =
  Sdfg.of_lists ~actors:[ "x"; "y"; "z" ]
    ~channels:[ ("x", "y", 1, 1, 1); ("y", "z", 1, 1, 0); ("z", "x", 1, 1, 0) ]

let graph_equal g1 g2 =
  Sdfg.num_actors g1 = Sdfg.num_actors g2
  && Sdfg.num_channels g1 = Sdfg.num_channels g2
  && Array.for_all2
       (fun (a : Sdfg.actor) (b : Sdfg.actor) -> a.Sdfg.a_name = b.Sdfg.a_name)
       (Sdfg.actors g1) (Sdfg.actors g2)
  && Array.for_all2
       (fun (a : Sdfg.channel) (b : Sdfg.channel) ->
         a.Sdfg.src = b.Sdfg.src && a.Sdfg.dst = b.Sdfg.dst
         && a.Sdfg.prod = b.Sdfg.prod && a.Sdfg.cons = b.Sdfg.cons
         && a.Sdfg.tokens = b.Sdfg.tokens)
       (Sdfg.channels g1) (Sdfg.channels g2)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
