(* Text format parsing and printing. *)

module Sdfg = Sdf.Sdfg
module Textio = Sdf.Textio
open Helpers

let test_roundtrip () =
  let g = example_graph () in
  let doc = Textio.parse (Textio.print "example" g) in
  Alcotest.(check string) "name" "example" doc.Textio.doc_name;
  Alcotest.(check bool) "graph preserved" true (graph_equal g doc.Textio.graph);
  Alcotest.(check bool) "no exec times" true (doc.Textio.exec_times = None)

let test_roundtrip_with_times () =
  let g = prodcons () in
  let doc = Textio.parse (Textio.print ~exec_times:[| 4; 7 |] "pc" g) in
  Alcotest.(check bool) "graph preserved" true (graph_equal g doc.Textio.graph);
  Alcotest.(check bool) "times preserved" true
    (doc.Textio.exec_times = Some [| 4; 7 |])

let test_comments_and_whitespace () =
  let text =
    "# a comment\n\
     sdfg demo\n\
     \n\
     actor a 3   # trailing comment\n\
     actor\tb\t5\n\
     channel d a -> b rates 2 1 tokens 4\n"
  in
  let doc = Textio.parse text in
  Alcotest.(check int) "two actors" 2 (Sdfg.num_actors doc.Textio.graph);
  Alcotest.(check bool) "times" true (doc.Textio.exec_times = Some [| 3; 5 |]);
  let c = Sdfg.channel doc.Textio.graph 0 in
  Alcotest.(check int) "tokens" 4 c.Sdfg.tokens;
  Alcotest.(check string) "channel name" "d" c.Sdfg.c_name

let expect_error line text =
  match Textio.parse text with
  | exception Textio.Parse_error { line = l; _ } ->
      Alcotest.(check int) "error line" line l
  | _ -> Alcotest.fail "expected parse error"

let test_errors () =
  expect_error 1 "actor a\n";
  (* no header *)
  expect_error 2 "sdfg x\nsdfg y\n";
  (* duplicate header *)
  expect_error 3 "sdfg x\nactor a\nactor a\n";
  (* duplicate actor *)
  expect_error 3 "sdfg x\nactor a\nchannel d a -> b rates 1 1\n";
  (* unknown actor *)
  expect_error 3 "sdfg x\nactor a\nchannel d a -> a rates 0 1\n";
  (* zero rate *)
  expect_error 3 "sdfg x\nactor a\nchannel d a -> a rates 1 1 tokens -2\n";
  (* negative tokens *)
  expect_error 2 "sdfg x\nfrobnicate\n";
  (* unknown keyword *)
  expect_error 3 "sdfg x\nactor a\nchannel d a -> a rates 1 1 bogus 3\n";
  (* trailing junk *)
  expect_error 1 "sdfg x\nactor a 1\nactor b\n"
(* partial exec times *)

let test_parse_file () =
  let path = Filename.temp_file "sdfg" ".sdf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Textio.write_file ~exec_times:[| 1; 1; 2 |] path "example" (example_graph ());
      let doc = Textio.parse_file path in
      Alcotest.(check bool) "roundtrip via file" true
        (graph_equal (example_graph ()) doc.Textio.graph))

let prop_roundtrip =
  qcheck ~count:50 "print/parse roundtrips generated graphs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let profile = Gen.Benchsets.set_profile 1 in
      let app =
        Gen.Sdfgen.generate rng profile ~proc_types:Gen.Benchsets.proc_types
          ~name:"io"
      in
      let g = app.Appmodel.Appgraph.graph in
      let doc = Textio.parse (Textio.print "t" g) in
      graph_equal g doc.Textio.graph)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip with times" `Quick test_roundtrip_with_times;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file io" `Quick test_parse_file;
    prop_roundtrip;
  ]
