(* TDMA time-slice allocation (Section 9.3). *)

module Rat = Sdf.Rat
module Slice_alloc = Core.Slice_alloc
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
open Helpers

let setup ?(lambda = Rat.make 1 30) () =
  let app = Appgraph.with_lambda (Models.example_app ()) lambda in
  let arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding
      ~slices:(Core.Bind_aware.half_wheel_slices app arch binding) ()
  in
  let schedules = Core.List_scheduler.schedules ba in
  (app, arch, binding, schedules)

let test_example_succeeds () =
  let app, arch, binding, schedules = setup () in
  match Slice_alloc.allocate app arch binding schedules with
  | Ok o ->
      Alcotest.(check bool) "meets constraint" true
        (Rat.compare o.Slice_alloc.throughput (Rat.make 1 30) >= 0);
      Alcotest.(check bool) "uses both tiles" true
        (o.Slice_alloc.slices.(0) > 0 && o.Slice_alloc.slices.(1) > 0);
      Alcotest.(check bool) "counted checks" true (o.Slice_alloc.checks > 0)
  | Error _ -> Alcotest.fail "expected success"

let test_slices_within_wheel () =
  let app, arch, binding, schedules = setup () in
  match Slice_alloc.allocate app arch binding schedules with
  | Ok o ->
      Array.iteri
        (fun t omega ->
          Alcotest.(check bool) "within available wheel" true
            (omega
             <= Platform.Tile.available_wheel (Platform.Archgraph.tile arch t)))
        o.Slice_alloc.slices
  | Error _ -> Alcotest.fail "expected success"

let test_result_is_verifiable () =
  (* Re-measuring with the returned slices reproduces >= lambda. *)
  let app, arch, binding, schedules = setup () in
  match Slice_alloc.allocate app arch binding schedules with
  | Ok o ->
      let ba = Core.Bind_aware.build ~app ~arch ~binding ~slices:o.Slice_alloc.slices () in
      let thr = Core.Constrained.throughput_or_zero ba ~schedules in
      Alcotest.(check bool) "reproducible" true
        (Rat.compare thr app.Appgraph.lambda >= 0)
  | Error _ -> Alcotest.fail "expected success"

let test_infeasible_constraint_fails () =
  (* 1/10 is unreachable: the binding-aware critical cycle alone is 29. *)
  let app, arch, binding, schedules = setup ~lambda:(Rat.make 1 10) () in
  match Slice_alloc.allocate app arch binding schedules with
  | Error f ->
      Alcotest.(check bool) "reports best achievable" true
        (Rat.compare f.Slice_alloc.max_throughput (Rat.make 1 10) < 0);
      Alcotest.(check bool) "performed at least the feasibility check" true
        (f.Slice_alloc.checks >= 1)
  | Ok _ -> Alcotest.fail "expected failure"

let test_loose_constraint_small_slices () =
  (* A very loose constraint is met with smaller slices than a tight one
     (the binary searches shrink towards it). *)
  let alloc lambda =
    let app, arch, binding, schedules = setup ~lambda () in
    match Slice_alloc.allocate app arch binding schedules with
    | Ok o -> Array.fold_left ( + ) 0 o.Slice_alloc.slices
    | Error _ -> Alcotest.fail "expected success"
  in
  let tight = alloc (Rat.make 1 30) in
  let loose = alloc (Rat.make 1 120) in
  Alcotest.(check bool)
    (Printf.sprintf "loose (%d) <= tight (%d)" loose tight)
    true (loose <= tight)

let test_ten_percent_early_exit () =
  (* With the early-exit rule, the achieved throughput is at most 10% above
     the constraint unless the minimal slice overshoots it. *)
  let app, arch, binding, schedules = setup ~lambda:(Rat.make 1 40) () in
  match Slice_alloc.allocate app arch binding schedules with
  | Ok o ->
      let lambda = Rat.make 1 40 in
      let margin = Rat.mul lambda (Rat.make 11 10) in
      (* Either within the margin, or the slices are already minimal (1). *)
      let minimal = Array.for_all (fun s -> s <= 1) o.Slice_alloc.slices in
      Alcotest.(check bool) "within 10% or minimal" true
        (Rat.compare o.Slice_alloc.throughput margin <= 0 || minimal)
  | Error _ -> Alcotest.fail "expected success"

let test_occupied_wheel_respected () =
  (* Shrink t2's free wheel to 3 units: the allocation must still fit. *)
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let tiles = Platform.Archgraph.tiles arch in
  let arch =
    Platform.Archgraph.with_tiles arch
      [| tiles.(0); { tiles.(1) with Platform.Tile.occupied = 7 } |]
  in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding
      ~slices:(Core.Bind_aware.half_wheel_slices app arch binding) ()
  in
  let schedules = Core.List_scheduler.schedules ba in
  match Slice_alloc.allocate app arch binding schedules with
  | Ok o ->
      Alcotest.(check bool) "t2 slice fits free wheel" true
        (o.Slice_alloc.slices.(1) <= 3)
  | Error _ ->
      (* Failing is acceptable if 3 units cannot carry the constraint —
         but then the reported best must be below lambda. *)
      ()

let suite =
  [
    Alcotest.test_case "example succeeds" `Quick test_example_succeeds;
    Alcotest.test_case "slices within wheel" `Quick test_slices_within_wheel;
    Alcotest.test_case "result is verifiable" `Quick test_result_is_verifiable;
    Alcotest.test_case "infeasible fails" `Quick test_infeasible_constraint_fails;
    Alcotest.test_case "loose constraint, small slices" `Quick
      test_loose_constraint_small_slices;
    Alcotest.test_case "10% early exit" `Quick test_ten_percent_early_exit;
    Alcotest.test_case "occupied wheel respected" `Quick
      test_occupied_wheel_respected;
  ]
