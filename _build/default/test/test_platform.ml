(* Tiles and architecture graphs (paper Definitions 3-4). *)

module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let tile ?(occupied = 0) idx name pt =
  Tile.make ~occupied ~idx ~name ~proc_type:pt ~wheel:10 ~mem:1000 ~max_conns:4
    ~in_bw:100 ~out_bw:100 ()

let test_tile () =
  let t = tile ~occupied:3 0 "t0" "p" in
  Alcotest.(check int) "available wheel" 7 (Tile.available_wheel t);
  Alcotest.check_raises "occupied > wheel"
    (Invalid_argument "Tile.make: occupied wheel time out of range") (fun () ->
      ignore (tile ~occupied:11 0 "t" "p"));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Tile.make: negative resource size") (fun () ->
      ignore
        (Tile.make ~idx:0 ~name:"t" ~proc_type:"p" ~wheel:10 ~mem:(-1)
           ~max_conns:0 ~in_bw:0 ~out_bw:0 ()))

let test_archgraph () =
  let g =
    Archgraph.make
      [| tile 0 "t0" "p"; tile 1 "t1" "q" |]
      [
        { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 3 };
        { Archgraph.k_idx = 0; from_tile = 1; to_tile = 0; latency = 5 };
      ]
  in
  Alcotest.(check int) "tiles" 2 (Archgraph.num_tiles g);
  (match Archgraph.connection_between g ~src:0 ~dst:1 with
  | Some c -> Alcotest.(check int) "latency" 3 c.Archgraph.latency
  | None -> Alcotest.fail "missing connection");
  (match Archgraph.connection_between g ~src:1 ~dst:0 with
  | Some c -> Alcotest.(check int) "reverse latency" 5 c.Archgraph.latency
  | None -> Alcotest.fail "missing reverse connection");
  Alcotest.(check int) "tile index by name" 1 (Archgraph.tile_index g "t1")

let test_archgraph_validation () =
  Alcotest.check_raises "unordered tiles"
    (Invalid_argument "Archgraph.make: tile indices must be dense and ordered")
    (fun () -> ignore (Archgraph.make [| tile 1 "t" "p" |] []));
  Alcotest.check_raises "zero latency"
    (Invalid_argument "Archgraph.make: latency must be positive") (fun () ->
      ignore
        (Archgraph.make
           [| tile 0 "a" "p"; tile 1 "b" "p" |]
           [ { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 0 } ]));
  Alcotest.check_raises "duplicate connection"
    (Invalid_argument "Archgraph.make: duplicate connection") (fun () ->
      ignore
        (Archgraph.make
           [| tile 0 "a" "p"; tile 1 "b" "p" |]
           [
             { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 1 };
             { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 2 };
           ]))

let test_mesh () =
  let g = Archgraph.mesh ~rows:3 ~cols:3 ~proc_types:[| "a"; "b"; "c" |] () in
  Alcotest.(check int) "9 tiles" 9 (Archgraph.num_tiles g);
  Alcotest.(check int) "full connectivity" 72
    (Array.length (Archgraph.connections g));
  (* Latency scales with the Manhattan distance (hop latency 2 default). *)
  (match Archgraph.connection_between g ~src:0 ~dst:1 with
  | Some c -> Alcotest.(check int) "adjacent" 2 c.Archgraph.latency
  | None -> Alcotest.fail "missing");
  (match Archgraph.connection_between g ~src:0 ~dst:8 with
  | Some c -> Alcotest.(check int) "corner to corner" 8 c.Archgraph.latency
  | None -> Alcotest.fail "missing");
  (* Processor types are assigned round robin. *)
  Alcotest.(check string) "types cycle" "b" (Archgraph.tile g 4).Tile.proc_type

let test_with_tiles () =
  let g = Archgraph.mesh ~rows:1 ~cols:2 ~proc_types:[| "p" |] () in
  let tiles =
    Array.map (fun t -> { t with Tile.occupied = 7 }) (Archgraph.tiles g)
  in
  let g2 = Archgraph.with_tiles g tiles in
  Alcotest.(check int) "updated occupancy" 7 (Archgraph.tile g2 0).Tile.occupied;
  Alcotest.(check int) "original untouched" 0 (Archgraph.tile g 0).Tile.occupied

let suite =
  [
    Alcotest.test_case "tile" `Quick test_tile;
    Alcotest.test_case "archgraph" `Quick test_archgraph;
    Alcotest.test_case "archgraph validation" `Quick test_archgraph_validation;
    Alcotest.test_case "mesh" `Quick test_mesh;
    Alcotest.test_case "with_tiles" `Quick test_with_tiles;
  ]
