(* The HSDF-based analysis baseline and its agreement with the SDFG
   state-space analysis. *)

module Rat = Sdf.Rat
module Hsdf_flow = Baseline.Hsdf_flow
open Helpers

let test_agreement_on_example () =
  let c = Hsdf_flow.compare_analysis (example_graph ()) [| 1; 1; 2 |] ~output:2 in
  check_rat "both 1/2" (Rat.make 1 2) c.Hsdf_flow.throughput_sdfg;
  check_rat "hsdf agrees" c.Hsdf_flow.throughput_sdfg c.Hsdf_flow.throughput_hsdf;
  Alcotest.(check int) "sdfg size" 3 c.Hsdf_flow.sdfg_actors;
  Alcotest.(check int) "hsdf size" 5 c.Hsdf_flow.hsdf_actors

let test_agreement_on_ring () =
  let c = Hsdf_flow.compare_analysis (ring3 ()) [| 2; 3; 4 |] ~output:1 in
  check_rat "1/9" (Rat.make 1 9) c.Hsdf_flow.throughput_hsdf;
  check_rat "agree" c.Hsdf_flow.throughput_sdfg c.Hsdf_flow.throughput_hsdf

let test_agreement_on_prodcons () =
  let c = Hsdf_flow.compare_analysis (prodcons ()) [| 2; 5 |] ~output:0 in
  check_rat "agree" c.Hsdf_flow.throughput_sdfg c.Hsdf_flow.throughput_hsdf

let test_output_scaling () =
  (* The two output actors' rates differ by their repetition-vector
     entries: thr(p)/3 = thr(c)/2. *)
  let g = prodcons () in
  let p = Hsdf_flow.throughput_via_hsdf g [| 2; 5 |] ~output:0 in
  let c = Hsdf_flow.throughput_via_hsdf g [| 2; 5 |] ~output:1 in
  check_rat "3:2 ratio" (Rat.mul_int c 3) (Rat.mul_int p 2)

let test_h263_expansion_cost () =
  (* The paper's problem-size argument in numbers: the H.263 HSDF has 4754
     actors, three orders of magnitude more than the SDFG. *)
  let app = Appmodel.Models.h263 () in
  let g = app.Appmodel.Appgraph.graph in
  let taus =
    Array.init (Sdf.Sdfg.num_actors g) (fun a ->
        Appmodel.Appgraph.max_exec_time app a)
  in
  let c = Hsdf_flow.compare_analysis g taus ~output:3 in
  Alcotest.(check int) "4 SDFG actors" 4 c.Hsdf_flow.sdfg_actors;
  Alcotest.(check int) "4754 HSDF actors" 4754 c.Hsdf_flow.hsdf_actors;
  check_rat "analyses agree on H.263" c.Hsdf_flow.throughput_sdfg
    c.Hsdf_flow.throughput_hsdf

(* --- the full HSDF-route allocation --- *)

let test_expand_app () =
  let app = Appmodel.Models.example_app () in
  let e = Baseline.Hsdf_alloc.expand_app app in
  Alcotest.(check int) "5 copies" 5 (Sdf.Sdfg.num_actors e.Appmodel.Appgraph.graph);
  Alcotest.(check bool) "all single rate" true
    (Array.for_all (fun v -> v = 1) (Appmodel.Appgraph.gamma e));
  (* lambda rescaled by gamma(output) = 1 here, so unchanged. *)
  check_rat "lambda" app.Appmodel.Appgraph.lambda e.Appmodel.Appgraph.lambda;
  (* Copies inherit their original's processor options. *)
  Alcotest.(check bool) "copy inherits Gamma" true
    (e.Appmodel.Appgraph.reqs.(0) = app.Appmodel.Appgraph.reqs.(0))

let test_expand_lambda_rescaled () =
  let app = Appmodel.Models.h263 () in
  let e = Baseline.Hsdf_alloc.expand_app app in
  Alcotest.(check int) "4754 copies" 4754
    (Sdf.Sdfg.num_actors e.Appmodel.Appgraph.graph);
  (* gamma(mc) = 1: unchanged; but check a multirate output instead. *)
  let app' = { app with Appmodel.Appgraph.output_actor = 1 (* iq *) } in
  let e' = Baseline.Hsdf_alloc.expand_app app' in
  check_rat "divided by gamma(iq) = 2376"
    (Sdf.Rat.div_int app.Appmodel.Appgraph.lambda 2376)
    e'.Appmodel.Appgraph.lambda

let test_compare_allocation_routes () =
  (* Both routes must succeed on the running example's platform, and the
     expansion must not be free. *)
  let app = Appmodel.Models.example_app () in
  let arch = Appmodel.Models.example_platform () in
  let c = Baseline.Hsdf_alloc.compare_allocation app arch in
  Alcotest.(check bool) "direct ok" true c.Baseline.Hsdf_alloc.direct_ok;
  Alcotest.(check bool) "hsdf ok" true c.Baseline.Hsdf_alloc.hsdf_ok;
  Alcotest.(check int) "expanded size" 5 c.Baseline.Hsdf_alloc.hsdf_actors

let suite =
  [
    Alcotest.test_case "agreement (example)" `Quick test_agreement_on_example;
    Alcotest.test_case "agreement (ring)" `Quick test_agreement_on_ring;
    Alcotest.test_case "agreement (prodcons)" `Quick test_agreement_on_prodcons;
    Alcotest.test_case "output scaling" `Quick test_output_scaling;
    Alcotest.test_case "h263 expansion cost" `Slow test_h263_expansion_cost;
    Alcotest.test_case "expand_app" `Quick test_expand_app;
    Alcotest.test_case "expand lambda rescaled" `Quick test_expand_lambda_rescaled;
    Alcotest.test_case "allocation route comparison" `Quick
      test_compare_allocation_routes;
  ]
