(* SDFG construction and structural queries. *)

module Sdfg = Sdf.Sdfg
open Helpers

let test_builder () =
  let g = example_graph () in
  Alcotest.(check int) "actors" 3 (Sdfg.num_actors g);
  Alcotest.(check int) "channels" 3 (Sdfg.num_channels g);
  Alcotest.(check string) "actor name" "a2" (Sdfg.actor_name g 1);
  Alcotest.(check int) "actor index" 2 (Sdfg.actor_index g "a3");
  let c = Sdfg.channel g 1 in
  Alcotest.(check int) "src" 1 c.Sdfg.src;
  Alcotest.(check int) "dst" 2 c.Sdfg.dst;
  Alcotest.(check int) "prod" 1 c.Sdfg.prod;
  Alcotest.(check int) "cons" 2 c.Sdfg.cons;
  Alcotest.(check int) "tokens" 0 c.Sdfg.tokens

let test_adjacency () =
  let g = example_graph () in
  Alcotest.(check (list int)) "out a1" [ 0; 2 ] (Sdfg.out_channels g 0);
  Alcotest.(check (list int)) "in a1" [ 2 ] (Sdfg.in_channels g 0);
  Alcotest.(check (list int)) "out a2" [ 1 ] (Sdfg.out_channels g 1);
  Alcotest.(check (list int)) "in a3" [ 1 ] (Sdfg.in_channels g 2);
  Alcotest.(check (list int)) "out a3" [] (Sdfg.out_channels g 2)

let test_self_loops () =
  let g = example_graph () in
  Alcotest.(check bool) "d3 is self loop" true (Sdfg.is_self_loop g 2);
  Alcotest.(check bool) "d1 is not" false (Sdfg.is_self_loop g 0);
  Alcotest.(check bool) "a1 has unit self loop" true (Sdfg.has_unit_self_loop g 0);
  Alcotest.(check bool) "a2 has none" false (Sdfg.has_unit_self_loop g 1);
  (* A self-loop without tokens does not bound auto-concurrency. *)
  let g2 =
    Sdfg.of_lists ~actors:[ "x" ] ~channels:[ ("x", "x", 1, 1, 0) ]
  in
  Alcotest.(check bool) "tokenless self loop" false (Sdfg.has_unit_self_loop g2 0);
  (* Nor does a multirate one. *)
  let g3 =
    Sdfg.of_lists ~actors:[ "x" ] ~channels:[ ("x", "x", 2, 2, 2) ]
  in
  Alcotest.(check bool) "multirate self loop" false (Sdfg.has_unit_self_loop g3 0)

let test_validation () =
  let b = Sdfg.Builder.create () in
  let _ = Sdfg.Builder.add_actor b "a" in
  Alcotest.check_raises "duplicate actor"
    (Invalid_argument "Sdfg.Builder.add_actor: duplicate name \"a\"")
    (fun () -> ignore (Sdfg.Builder.add_actor b "a"));
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Sdfg.Builder.add_channel: rates must be positive")
    (fun () ->
      ignore (Sdfg.Builder.add_channel b ~src:0 ~dst:0 ~prod:0 ~cons:1 ()));
  Alcotest.check_raises "negative tokens"
    (Invalid_argument "Sdfg.Builder.add_channel: negative initial tokens")
    (fun () ->
      ignore
        (Sdfg.Builder.add_channel b ~tokens:(-1) ~src:0 ~dst:0 ~prod:1 ~cons:1 ()));
  Alcotest.check_raises "bad actor index"
    (Invalid_argument "Sdfg.Builder.add_channel: actor index out of range")
    (fun () ->
      ignore (Sdfg.Builder.add_channel b ~src:0 ~dst:7 ~prod:1 ~cons:1 ()))

let test_connectivity () =
  Alcotest.(check bool) "example connected" true
    (Sdfg.is_weakly_connected (example_graph ()));
  let disconnected =
    Sdfg.of_lists ~actors:[ "a"; "b"; "c" ]
      ~channels:[ ("a", "b", 1, 1, 0) ]
  in
  Alcotest.(check bool) "c is isolated" false
    (Sdfg.is_weakly_connected disconnected);
  let empty = Sdfg.of_lists ~actors:[] ~channels:[] in
  Alcotest.(check bool) "empty is connected" true
    (Sdfg.is_weakly_connected empty);
  let single = Sdfg.of_lists ~actors:[ "a" ] ~channels:[] in
  Alcotest.(check bool) "singleton is connected" true
    (Sdfg.is_weakly_connected single);
  (* Weak connectivity must follow channels backwards too. *)
  let v =
    Sdfg.of_lists ~actors:[ "a"; "b"; "c" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("c", "b", 1, 1, 0) ]
  in
  Alcotest.(check bool) "inverted V shape" true (Sdfg.is_weakly_connected v)

let test_map_tokens () =
  let g = example_graph () in
  let g2 = Sdfg.map_tokens g (fun c -> c.Sdfg.tokens + 5) in
  Alcotest.(check int) "updated" 5 (Sdfg.channel g2 0).Sdfg.tokens;
  Alcotest.(check int) "self loop updated" 6 (Sdfg.channel g2 2).Sdfg.tokens;
  Alcotest.(check int) "original untouched" 0 (Sdfg.channel g 0).Sdfg.tokens

let test_of_lists_unknown_actor () =
  Alcotest.check_raises "unknown actor"
    (Invalid_argument "Sdfg.of_lists: unknown actor \"nope\"")
    (fun () ->
      ignore
        (Sdfg.of_lists ~actors:[ "a" ] ~channels:[ ("a", "nope", 1, 1, 0) ]))

let suite =
  [
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "self loops" `Quick test_self_loops;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "map_tokens" `Quick test_map_tokens;
    Alcotest.test_case "of_lists unknown actor" `Quick test_of_lists_unknown_actor;
  ]
