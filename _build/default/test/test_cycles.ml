(* Strongly connected components and simple-cycle enumeration. *)

module Sdfg = Sdf.Sdfg
module Cycles = Sdf.Cycles
open Helpers

let test_scc_ring () =
  let comps = Cycles.sccs (ring3 ()) in
  Alcotest.(check int) "one component" 1 (List.length comps);
  Alcotest.(check int) "holds all actors" 3 (List.length (List.hd comps))

let test_scc_chain () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b"; "c" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "c", 1, 1, 0) ]
  in
  let comps = Cycles.sccs g in
  Alcotest.(check int) "three singletons" 3 (List.length comps);
  (* Reverse topological order: a's component must come after c's. *)
  let ids = Cycles.scc_of g in
  Alcotest.(check bool) "c before a in order" true (ids.(2) < ids.(0))

let test_scc_mixed () =
  (* Two 2-cycles joined by a one-way bridge. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b"; "c"; "d" ]
      ~channels:
        [
          ("a", "b", 1, 1, 1); ("b", "a", 1, 1, 0); ("b", "c", 1, 1, 0);
          ("c", "d", 1, 1, 1); ("d", "c", 1, 1, 0);
        ]
  in
  let ids = Cycles.scc_of g in
  Alcotest.(check bool) "a,b together" true (ids.(0) = ids.(1));
  Alcotest.(check bool) "c,d together" true (ids.(2) = ids.(3));
  Alcotest.(check bool) "separate components" true (ids.(0) <> ids.(2))

let test_cycles_example () =
  let g = example_graph () in
  let e = Cycles.simple_cycles g in
  Alcotest.(check bool) "not truncated" false e.Cycles.truncated;
  (* Only the self-loop d3 forms a cycle. *)
  Alcotest.(check (list (list int))) "one cycle" [ [ 2 ] ] e.Cycles.cycles

let test_cycles_ring () =
  let e = Cycles.simple_cycles (ring3 ()) in
  Alcotest.(check int) "one ring cycle" 1 (List.length e.Cycles.cycles);
  Alcotest.(check int) "length three" 3 (List.length (List.hd e.Cycles.cycles))

let test_cycles_parallel_channels () =
  (* Parallel channels yield distinct cycles (they can carry different
     token counts, which Eqn. 1 must distinguish). *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:
        [ ("a", "b", 1, 1, 0); ("a", "b", 1, 1, 3); ("b", "a", 1, 1, 1) ]
  in
  let e = Cycles.simple_cycles g in
  Alcotest.(check int) "two cycles through parallel channels" 2
    (List.length e.Cycles.cycles)

let test_cycles_complete_graph () =
  (* K4 has 20 simple cycles (6 of length 2, 8 of length 3, 6 of length 4). *)
  let names = [ "a"; "b"; "c"; "d" ] in
  let channels =
    List.concat_map
      (fun x -> List.filter_map (fun y -> if x <> y then Some (x, y, 1, 1, 1) else None) names)
      names
  in
  let g = Sdfg.of_lists ~actors:names ~channels in
  let e = Cycles.simple_cycles g in
  Alcotest.(check int) "K4 cycle count" 20 (List.length e.Cycles.cycles)

let test_truncation () =
  let names = [ "a"; "b"; "c"; "d" ] in
  let channels =
    List.concat_map
      (fun x -> List.filter_map (fun y -> if x <> y then Some (x, y, 1, 1, 1) else None) names)
      names
  in
  let g = Sdfg.of_lists ~actors:names ~channels in
  let e = Cycles.simple_cycles ~max_cycles:5 g in
  Alcotest.(check bool) "truncated" true e.Cycles.truncated;
  Alcotest.(check int) "capped" 5 (List.length e.Cycles.cycles)

let test_cycles_through () =
  let g = example_graph () in
  let e = Cycles.simple_cycles g in
  Alcotest.(check int) "through a1" 1 (List.length (Cycles.cycles_through e g 0));
  Alcotest.(check int) "through a2" 0 (List.length (Cycles.cycles_through e g 1))

let prop_cycles_are_closed =
  qcheck "every reported cycle is closed and simple"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let profile = Gen.Benchsets.set_profile 3 in
      let app =
        Gen.Sdfgen.generate rng profile ~proc_types:Gen.Benchsets.proc_types
          ~name:"cyc"
      in
      let g = app.Appmodel.Appgraph.graph in
      let e = Cycles.simple_cycles g in
      List.for_all
        (fun cyc ->
          match cyc with
          | [] -> false
          | first :: _ ->
              let closed =
                let rec walk expected = function
                  | [] -> expected = (Sdfg.channel g first).Sdfg.src
                  | ci :: rest ->
                      let c = Sdfg.channel g ci in
                      c.Sdfg.src = expected && walk c.Sdfg.dst rest
                in
                walk (Sdfg.channel g first).Sdfg.src cyc
              in
              let actors = List.map (fun ci -> (Sdfg.channel g ci).Sdfg.src) cyc in
              let distinct =
                List.length actors = List.length (List.sort_uniq compare actors)
              in
              closed && distinct)
        e.Cycles.cycles)

let suite =
  [
    Alcotest.test_case "scc ring" `Quick test_scc_ring;
    Alcotest.test_case "scc chain" `Quick test_scc_chain;
    Alcotest.test_case "scc mixed" `Quick test_scc_mixed;
    Alcotest.test_case "cycles in example" `Quick test_cycles_example;
    Alcotest.test_case "cycles in ring" `Quick test_cycles_ring;
    Alcotest.test_case "parallel channels" `Quick test_cycles_parallel_channels;
    Alcotest.test_case "complete graph K4" `Quick test_cycles_complete_graph;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "cycles_through" `Quick test_cycles_through;
    prop_cycles_are_closed;
  ]
