(* Storage-space / throughput trade-off analysis ([21] substrate). *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module B = Analysis.Buffer_sizing
open Helpers

let example = example_graph
let taus = [| 1; 1; 2 |]

let test_bounded_graph_structure () =
  let g = example () in
  let bg = B.bounded_graph g [| 2; 3; 1 |] in
  (* One capacity channel per non-self-loop channel. *)
  Alcotest.(check int) "channels" 5 (Sdfg.num_channels bg);
  let cap =
    Array.to_list (Sdfg.channels bg)
    |> List.find (fun c -> c.Sdfg.c_name = "cap_d0")
  in
  Alcotest.(check int) "reverse direction" 1 cap.Sdfg.src;
  Alcotest.(check int) "free slots" 2 cap.Sdfg.tokens

let test_bounded_graph_validation () =
  let g = example () in
  Alcotest.check_raises "capacity below tokens"
    (Invalid_argument "Buffer_sizing.bounded_graph: capacity below initial tokens")
    (fun () ->
      (* d2 is a self-loop (unsized); bound d0 below zero is impossible,
         instead bound a channel below its initial tokens. *)
      let g2 =
        Sdfg.of_lists ~actors:[ "a"; "b" ]
          ~channels:[ ("a", "b", 1, 1, 3); ("b", "a", 1, 1, 0) ]
      in
      ignore (B.bounded_graph g2 [| 2; 1 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Buffer_sizing.bounded_graph: distribution length mismatch")
    (fun () -> ignore (B.bounded_graph g [| 1 |]))

let test_iteration_bound_live () =
  let g = example () in
  let d = B.iteration_bound g in
  (* gamma = (2,2,1): d0 carries 2 tokens per iteration, d1 carries 2. *)
  Alcotest.(check (array int)) "bound" [| 2; 2; 1 |] d;
  Alcotest.(check bool) "live" true (B.is_live g d)

let test_minimal_live () =
  let g = example () in
  let d = B.minimal_live g in
  Alcotest.(check bool) "live" true (B.is_live g d);
  (* Any single decrement deadlocks. *)
  Array.iteri
    (fun ci v ->
      if not (Sdfg.is_self_loop g ci) && v > (Sdfg.channel g ci).Sdfg.tokens
      then begin
        let d' = Array.copy d in
        d'.(ci) <- d'.(ci) - 1;
        Alcotest.(check bool)
          (Printf.sprintf "decrementing channel %d deadlocks" ci)
          false (B.is_live g d')
      end)
    d

let test_throughput_monotone () =
  let g = example () in
  let d1 = B.minimal_live g in
  let d2 = B.iteration_bound g in
  let t1 = B.throughput g taus d1 ~output:2 in
  let t2 = B.throughput g taus d2 ~output:2 in
  Alcotest.(check bool) "more buffer, no less throughput" true
    (Rat.compare t2 t1 >= 0)

let test_deadlocked_distribution_zero () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 2, 3, 0); ("b", "a", 3, 2, 6) ]
  in
  (* Capacity 2 on the forward channel blocks the consumer forever. *)
  check_rat "deadlock maps to 0" Rat.zero
    (B.throughput g [| 1; 1 |] [| 2; 6 |] ~output:1)

let test_pareto_staircase () =
  let g = example () in
  let points = B.pareto g taus ~output:2 in
  Alcotest.(check bool) "at least two points" true (List.length points >= 2);
  (* Strictly increasing in both coordinates. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "size grows" true
          (b.B.total_tokens > a.B.total_tokens);
        Alcotest.(check bool) "rate grows" true (Rat.compare b.B.rate a.B.rate > 0);
        check rest
    | _ -> ()
  in
  check points;
  (* The staircase tops out at the unbounded structural rate 1/2. *)
  let last = List.nth points (List.length points - 1) in
  check_rat "reaches the structural bound" (Rat.make 1 2) last.B.rate

let test_pareto_first_point_is_minimal () =
  let g = example () in
  match B.pareto g taus ~output:2 with
  | first :: _ ->
      Alcotest.(check (array int)) "starts from the minimal distribution"
        (B.minimal_live g) first.B.distribution
  | [] -> Alcotest.fail "empty pareto"

let test_exact_minimum () =
  let g = example () in
  match B.minimum_total_live g with
  | None -> Alcotest.fail "node limit on a 3-channel graph"
  | Some d ->
      Alcotest.(check bool) "live" true (B.is_live g d);
      (* Greedy is an upper bound on the exact optimum. *)
      let total dist =
        Array.to_list dist
        |> List.mapi (fun ci v -> if Sdfg.is_self_loop g ci then 0 else v)
        |> List.fold_left ( + ) 0
      in
      Alcotest.(check bool) "exact <= greedy" true
        (total d <= total (B.minimal_live g))

let test_exact_matches_brute_force () =
  (* Oracle: enumerate every distribution inside the iteration-bound box
     and take the minimum live total. *)
  let check g =
    let ub = B.iteration_bound g in
    let nch = Sdfg.num_channels g in
    let lower =
      Array.init nch (fun ci -> (Sdfg.channel g ci).Sdfg.tokens)
    in
    let best = ref max_int in
    let current = Array.copy lower in
    let total d =
      let s = ref 0 in
      Array.iteri (fun ci v -> if not (Sdfg.is_self_loop g ci) then s := !s + v) d;
      !s
    in
    let rec go ci =
      if ci = nch then begin
        if B.is_live g current then best := min !best (total current)
      end
      else if Sdfg.is_self_loop g ci then (current.(ci) <- ub.(ci); go (ci + 1))
      else
        for v = lower.(ci) to ub.(ci) do
          current.(ci) <- v;
          go (ci + 1)
        done
    in
    go 0;
    match B.minimum_total_live g with
    | Some d -> Alcotest.(check int) "matches brute force" !best (total d)
    | None -> Alcotest.fail "node limit"
  in
  check (example ());
  check
    (Sdfg.of_lists ~actors:[ "a"; "b" ]
       ~channels:[ ("a", "b", 2, 3, 0); ("b", "a", 3, 2, 6) ]);
  check
    (Sdfg.of_lists ~actors:[ "x"; "y"; "z" ]
       ~channels:
         [ ("x", "y", 1, 2, 0); ("y", "z", 3, 1, 0); ("z", "x", 2, 3, 6);
           ("x", "x", 1, 1, 1) ])

let suite =
  [
    Alcotest.test_case "bounded graph structure" `Quick test_bounded_graph_structure;
    Alcotest.test_case "bounded graph validation" `Quick
      test_bounded_graph_validation;
    Alcotest.test_case "iteration bound live" `Quick test_iteration_bound_live;
    Alcotest.test_case "minimal live" `Quick test_minimal_live;
    Alcotest.test_case "throughput monotone" `Quick test_throughput_monotone;
    Alcotest.test_case "deadlocked distribution" `Quick
      test_deadlocked_distribution_zero;
    Alcotest.test_case "pareto staircase" `Quick test_pareto_staircase;
    Alcotest.test_case "pareto starts minimal" `Quick
      test_pareto_first_point_is_minimal;
    Alcotest.test_case "exact minimum" `Quick test_exact_minimum;
    Alcotest.test_case "exact matches brute force" `Quick
      test_exact_matches_brute_force;
  ]
