(* The minimal XML subset. *)

module Xml = Sdf.Xml

let roundtrip node = Xml.parse (Xml.to_string node)

let test_basic () =
  let doc = Xml.parse "<a x=\"1\"><b/><c y=\"z\">hello</c></a>" in
  Alcotest.(check string) "root tag" "a" (Xml.tag doc);
  Alcotest.(check string) "attr" "1" (Xml.attr doc "x");
  Alcotest.(check bool) "child b" true (Xml.child_opt doc "b" <> None);
  Alcotest.(check string) "text of c" "hello" (Xml.text (Xml.child doc "c"));
  Alcotest.(check string) "attr of c" "z" (Xml.attr (Xml.child doc "c") "y");
  Alcotest.(check (option string)) "missing attr" None (Xml.attr_opt doc "nope")

let test_declaration_and_comments () =
  let doc =
    Xml.parse
      "<?xml version=\"1.0\"?>\n<!-- top comment -->\n<root><!-- inner \
       --><x/></root>"
  in
  Alcotest.(check string) "root" "root" (Xml.tag doc);
  Alcotest.(check int) "one child" 1 (List.length (Xml.children doc "x"))

let test_escaping () =
  let node = Xml.Element ("t", [ ("a", "x<y&\"z\"") ], [ Xml.Text "1 < 2 & 3" ]) in
  let back = roundtrip node in
  Alcotest.(check string) "attr survives" "x<y&\"z\"" (Xml.attr back "a");
  Alcotest.(check string) "text survives" "1 < 2 & 3" (Xml.text back)

let test_self_closing_and_quotes () =
  let doc = Xml.parse "<a><b x='single'/><b x=\"double\"/></a>" in
  match Xml.children doc "b" with
  | [ b1; b2 ] ->
      Alcotest.(check string) "single quotes" "single" (Xml.attr b1 "x");
      Alcotest.(check string) "double quotes" "double" (Xml.attr b2 "x")
  | _ -> Alcotest.fail "expected two children"

let test_nesting_roundtrip () =
  let node =
    Xml.Element
      ( "top",
        [ ("k", "v") ],
        [
          Xml.Element ("mid", [], [ Xml.Element ("leaf", [ ("n", "1") ], []) ]);
          Xml.Element ("mid", [], [ Xml.Text "txt" ]);
        ] )
  in
  let back = roundtrip node in
  Alcotest.(check int) "two mids" 2 (List.length (Xml.children back "mid"));
  Alcotest.(check string) "deep attr" "1"
    (Xml.attr (Xml.child (Xml.child back "mid") "leaf") "n")

let expect_error input =
  match Xml.parse input with
  | (_ : Xml.t) -> Alcotest.failf "expected parse error on %S" input
  | exception Xml.Parse_error _ -> ()

let test_errors () =
  expect_error "<a>";
  (* unterminated *)
  expect_error "<a></b>";
  (* mismatched *)
  expect_error "<a x=1/>";
  (* unquoted attribute *)
  expect_error "<a/><b/>";
  (* two roots *)
  expect_error "<a><!-- unterminated ";
  expect_error ""

let test_whitespace_only_text_dropped () =
  let doc = Xml.parse "<a>\n  <b/>\n</a>" in
  match doc with
  | Xml.Element (_, _, kids) ->
      Alcotest.(check int) "only the element child" 1 (List.length kids)
  | Xml.Text _ -> Alcotest.fail "unexpected text root"

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "declaration and comments" `Quick
      test_declaration_and_comments;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "self closing and quotes" `Quick
      test_self_closing_and_quotes;
    Alcotest.test_case "nesting roundtrip" `Quick test_nesting_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "whitespace dropped" `Quick
      test_whitespace_only_text_dropped;
  ]
