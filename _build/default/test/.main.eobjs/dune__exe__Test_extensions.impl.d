test/test_extensions.ml: Alcotest Analysis Appmodel Array Core Helpers List Platform Sdf String
