test/test_slice_alloc.ml: Alcotest Appmodel Array Core Helpers Platform Printf Sdf
