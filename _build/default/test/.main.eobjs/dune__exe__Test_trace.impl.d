test/test_trace.ml: Alcotest Analysis Appmodel Array Core Format Helpers List Sdf String
