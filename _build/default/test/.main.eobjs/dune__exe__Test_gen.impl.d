test/test_gen.ml: Alcotest Appmodel Array Fun Gen Helpers List Platform Sdf
