test/test_selftimed.ml: Alcotest Analysis Array Baseline Gen Helpers Printf QCheck2 Sdf
