test/test_xml.ml: Alcotest List Sdf
