test/test_sdf3_xml.ml: Alcotest Appmodel Array Filename Fun Gen Helpers List Platform Printf Sdf Sys
