test/test_mcr.ml: Alcotest Analysis Helpers List Sdf
