test/test_constrained.ml: Alcotest Analysis Appmodel Array Core Helpers Printf Sdf
