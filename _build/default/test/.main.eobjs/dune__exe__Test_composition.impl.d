test/test_composition.ml: Alcotest Appmodel Array Core Helpers List Printf Sdf
