test/test_appmodel.ml: Alcotest Appmodel Array Helpers List Platform Sdf
