test/test_list_scheduler.ml: Alcotest Appmodel Array Core Gen Helpers Printf Sdf
