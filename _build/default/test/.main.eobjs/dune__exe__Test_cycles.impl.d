test/test_cycles.ml: Alcotest Appmodel Array Gen Helpers List QCheck2 Sdf
