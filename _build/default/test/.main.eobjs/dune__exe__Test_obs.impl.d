test/test_obs.ml: Alcotest Appmodel Buffer Char Core Fun List Obs Printf Sdf String
