test/test_multi_app.ml: Alcotest Appmodel Core Gen List Printf
