test/test_paper.ml: Alcotest Analysis Appmodel Array Core Helpers List Sdf
