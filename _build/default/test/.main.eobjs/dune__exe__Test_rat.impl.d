test/test_rat.ml: Alcotest Helpers QCheck2 Sdf
