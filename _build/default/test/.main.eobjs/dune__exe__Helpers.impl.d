test/helpers.ml: Alcotest Array QCheck2 QCheck_alcotest Sdf
