test/test_schedule.ml: Alcotest Core Format Helpers QCheck2
