test/test_sdfg.ml: Alcotest Helpers Sdf
