test/test_hsdf.ml: Alcotest Appmodel Array Gen Helpers List Printf QCheck2 Sdf
