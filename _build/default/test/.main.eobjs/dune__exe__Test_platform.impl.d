test/test_platform.ml: Alcotest Array Platform
