test/main.mli:
