test/test_csdf.ml: Alcotest Analysis Array Csdf Fun Gen Helpers List Printf QCheck2 Sdf
