test/test_cost.ml: Alcotest Appmodel Array Core Helpers Sdf
