test/test_flow.ml: Alcotest Appmodel Core Gen List Printf Sdf
