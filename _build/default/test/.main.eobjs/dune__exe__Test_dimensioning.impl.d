test/test_dimensioning.ml: Alcotest Analysis Appmodel Array Core Gen Helpers List Printf Sdf
