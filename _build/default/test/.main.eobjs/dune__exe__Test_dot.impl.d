test/test_dot.ml: Alcotest Filename Fun Helpers In_channel Sdf String Sys
