test/test_strategy.ml: Alcotest Appmodel Array Core Gen List Platform Printf Sdf
