test/test_binding_step.ml: Alcotest Appmodel Array Core Helpers List Platform Sdf
