test/test_binding.ml: Alcotest Appmodel Array Core Helpers Platform Sdf
