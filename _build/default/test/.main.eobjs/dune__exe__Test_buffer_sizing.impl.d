test/test_buffer_sizing.ml: Alcotest Analysis Array Helpers List Printf Sdf
