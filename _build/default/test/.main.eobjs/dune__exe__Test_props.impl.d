test/test_props.ml: Analysis Appmodel Array Core Fun Gen Helpers List Platform Printf QCheck2 Sdf
