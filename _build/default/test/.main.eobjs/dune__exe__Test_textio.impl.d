test/test_textio.ml: Alcotest Appmodel Filename Fun Gen Helpers QCheck2 Sdf Sys
