test/test_regressions.ml: Alcotest Analysis Appmodel Array Core Float Gen Helpers List Platform Sdf String
