test/test_bind_aware.ml: Alcotest Appmodel Array Core List Sdf
