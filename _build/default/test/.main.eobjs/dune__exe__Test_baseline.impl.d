test/test_baseline.ml: Alcotest Appmodel Array Baseline Helpers Sdf
