test/test_repetition.ml: Alcotest Appmodel Array Helpers Printf QCheck2 Sdf
