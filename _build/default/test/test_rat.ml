(* Rational arithmetic: exactness is what the throughput machinery rests
   on, so these tests pin normalisation, ordering and the corner cases
   (negatives, infinity, floor/ceil). *)

module Rat = Sdf.Rat
open Helpers

let test_normalisation () =
  check_rat "6/4 = 3/2" (r 3 2) (r 6 4);
  check_rat "-6/4 = -3/2" (r (-3) 2) (r 6 (-4));
  check_rat "0/5 = 0" Rat.zero (r 0 5);
  Alcotest.(check int) "num of 6/4" 3 (Rat.num (r 6 4));
  Alcotest.(check int) "den of 6/4" 2 (Rat.den (r 6 4));
  Alcotest.(check int) "den positive" 2 (Rat.den (r 3 (-2)));
  Alcotest.(check int) "num sign moves" (-3) (Rat.num (r 3 (-2)))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (r 5 6) (Rat.add (r 1 2) (r 1 3));
  check_rat "1/2 - 1/3" (r 1 6) (Rat.sub (r 1 2) (r 1 3));
  check_rat "2/3 * 3/4" (r 1 2) (Rat.mul (r 2 3) (r 3 4));
  check_rat "(1/2) / (1/4)" (r 2 1) (Rat.div (r 1 2) (r 1 4));
  check_rat "neg" (r (-1) 2) (Rat.neg (r 1 2));
  check_rat "inv" (r 2 1) (Rat.inv (r 1 2));
  check_rat "inv negative" (r (-2) 1) (Rat.inv (r (-1) 2));
  check_rat "mul_int" (r 3 2) (Rat.mul_int (r 1 2) 3);
  check_rat "div_int" (r 1 6) (Rat.div_int (r 1 2) 3)

let test_division_by_zero () =
  Alcotest.check_raises "make n 0" Division_by_zero (fun () ->
      ignore (r 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div (r 1 2) Rat.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Rat.(r 1 3 < r 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(r (-1) 2 < r 1 3);
  Alcotest.(check bool) "equal" true Rat.(r 2 4 = r 1 2);
  Alcotest.(check bool) "inf > everything" true
    (Rat.compare Rat.infinity (r 1000000 1) > 0);
  Alcotest.(check bool) "inf = inf" true (Rat.equal Rat.infinity Rat.infinity);
  check_rat "min" (r 1 3) (Rat.min (r 1 3) (r 1 2));
  check_rat "max" (r 1 2) (Rat.max (r 1 3) (r 1 2))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (r 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (r 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (r (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (r (-7) 2));
  Alcotest.(check int) "floor 4/2" 2 (Rat.floor (r 4 2));
  Alcotest.(check int) "ceil 4/2" 2 (Rat.ceil (r 4 2))

let test_gcd_lcm () =
  Alcotest.(check int) "gcd 12 18" 6 (Rat.gcd 12 18);
  Alcotest.(check int) "gcd 0 5" 5 (Rat.gcd 0 5);
  Alcotest.(check int) "gcd 0 0" 0 (Rat.gcd 0 0);
  Alcotest.(check int) "gcd negative" 6 (Rat.gcd (-12) 18);
  Alcotest.(check int) "lcm 4 6" 12 (Rat.lcm 4 6);
  Alcotest.(check int) "lcm 0 6" 0 (Rat.lcm 0 6)

let test_printing () =
  Alcotest.(check string) "3/2" "3/2" (Rat.to_string (r 3 2));
  Alcotest.(check string) "integer" "4" (Rat.to_string (r 8 2));
  Alcotest.(check string) "inf" "inf" (Rat.to_string Rat.infinity);
  Alcotest.(check string) "negative" "-1/2" (Rat.to_string (r 1 (-2)))

let gen_rat =
  QCheck2.Gen.(
    map2
      (fun n d -> r n d)
      (int_range (-1000) 1000)
      (int_range 1 1000))

let props =
  [
    qcheck "add commutes" QCheck2.Gen.(pair gen_rat gen_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    qcheck "mul distributes over add"
      QCheck2.Gen.(triple gen_rat gen_rat gen_rat) (fun (a, b, c) ->
        Rat.equal
          (Rat.mul a (Rat.add b c))
          (Rat.add (Rat.mul a b) (Rat.mul a c)));
    qcheck "sub then add roundtrips" QCheck2.Gen.(pair gen_rat gen_rat)
      (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b));
    qcheck "always normalised" gen_rat (fun a ->
        Rat.gcd (abs (Rat.num a)) (Rat.den a) <= 1 && Rat.den a > 0);
    qcheck "floor <= x < floor+1" gen_rat (fun a ->
        let f = Rat.floor a in
        Rat.(of_int f <= a) && Rat.(a < of_int (f + 1)));
    qcheck "compare antisymmetric" QCheck2.Gen.(pair gen_rat gen_rat)
      (fun (a, b) -> Rat.compare a b = -Rat.compare b a);
  ]

let suite =
  [
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "printing" `Quick test_printing;
  ]
  @ props
