(* Static-order schedules and their compaction (paper Sections 4, 9.2). *)

module Schedule = Core.Schedule
open Helpers

let sched prefix period = Schedule.make ~prefix ~period

let test_actor_at () =
  let s = sched [ 9 ] [ 1; 2 ] in
  Alcotest.(check int) "pos 0" 9 (Schedule.actor_at s 0);
  Alcotest.(check int) "pos 1" 1 (Schedule.actor_at s 1);
  Alcotest.(check int) "pos 2" 2 (Schedule.actor_at s 2);
  Alcotest.(check int) "pos 3 wraps" 1 (Schedule.actor_at s 3)

let test_advance_normalises () =
  let s = sched [ 9 ] [ 1; 2 ] in
  let rec go pos = function 0 -> pos | n -> go (Schedule.advance s pos) (n - 1) in
  (* After many advances the position stays within prefix + period bounds. *)
  let p = go 0 1000 in
  Alcotest.(check bool) "bounded" true (p < 3);
  Alcotest.(check int) "same actor as unnormalised" (Schedule.actor_at s 1000)
    (Schedule.actor_at s p)

let test_empty_period_rejected () =
  Alcotest.check_raises "empty period"
    (Invalid_argument "Schedule.make: empty period") (fun () ->
      ignore (sched [ 1 ] []))

let test_compact_primitive_root () =
  let s = Schedule.compact (sched [] [ 1; 2; 1; 2; 1; 2 ]) in
  Alcotest.(check bool) "reduced" true
    (Schedule.equal s (sched [] [ 1; 2 ]))

let test_compact_paper_example () =
  (* Paper Sec. 9.2: a1 a2 a1 a2 a1 a2 a1 a2 a1 (a2 a1 a2 a1 a2 a1 a2 a1)*
     compacts to (a1 a2)*. Actor 0 = a1, 1 = a2. *)
  let s =
    sched [ 0; 1; 0; 1; 0; 1; 0; 1; 0 ] [ 1; 0; 1; 0; 1; 0; 1; 0 ]
  in
  let c = Schedule.compact s in
  Alcotest.(check bool) "(a1 a2)*" true (Schedule.equal c (sched [] [ 0; 1 ]))

let test_compact_keeps_real_prefix () =
  (* A genuinely different transient must survive compaction. *)
  let s = sched [ 7 ] [ 1; 2 ] in
  let c = Schedule.compact s in
  Alcotest.(check bool) "unchanged" true (Schedule.equal c s)

let test_compact_preserves_sequence () =
  let check_preserved s =
    let c = Schedule.compact s in
    let ok = ref true in
    for pos = 0 to 50 do
      if Schedule.actor_at s pos <> Schedule.actor_at c pos then ok := false
    done;
    !ok
  in
  Alcotest.(check bool) "paper example" true
    (check_preserved (sched [ 0; 1; 0; 1; 0 ] [ 1; 0; 1; 0 ]));
  Alcotest.(check bool) "with real prefix" true
    (check_preserved (sched [ 5; 0; 1 ] [ 2; 2; 3 ]))

let test_firing_counts () =
  let s = sched [ 0 ] [ 1; 2; 1 ] in
  Alcotest.(check (array int)) "counts" [| 0; 2; 1 |]
    (Schedule.firing_counts s ~n_actors:3)

let test_pp () =
  let s = sched [ 0 ] [ 1; 2 ] in
  let str =
    Format.asprintf "%a" (Schedule.pp (fun ppf a -> Format.fprintf ppf "a%d" a)) s
  in
  Alcotest.(check string) "rendering" "a0 (a1 a2)*" str

let gen_sched =
  QCheck2.Gen.(
    let* prefix = list_size (int_range 0 6) (int_range 0 3) in
    let* period = list_size (int_range 1 6) (int_range 0 3) in
    return (prefix, period))

let prop_compact_preserves =
  qcheck "compaction never changes the infinite sequence" gen_sched
    (fun (prefix, period) ->
      let s = sched prefix period in
      let c = Schedule.compact s in
      let ok = ref true in
      for pos = 0 to 100 do
        if Schedule.actor_at s pos <> Schedule.actor_at c pos then ok := false
      done;
      !ok)

let prop_compact_idempotent =
  qcheck "compaction is idempotent" gen_sched (fun (prefix, period) ->
      let c = Schedule.compact (sched prefix period) in
      Schedule.equal c (Schedule.compact c))

let suite =
  [
    Alcotest.test_case "actor_at" `Quick test_actor_at;
    Alcotest.test_case "advance normalises" `Quick test_advance_normalises;
    Alcotest.test_case "empty period rejected" `Quick test_empty_period_rejected;
    Alcotest.test_case "primitive root" `Quick test_compact_primitive_root;
    Alcotest.test_case "paper 17-state example" `Quick test_compact_paper_example;
    Alcotest.test_case "keeps real prefix" `Quick test_compact_keeps_real_prefix;
    Alcotest.test_case "compaction preserves sequence" `Quick
      test_compact_preserves_sequence;
    Alcotest.test_case "firing counts" `Quick test_firing_counts;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    prop_compact_preserves;
    prop_compact_idempotent;
  ]
