(* Cross-module property tests on randomly generated workloads: the
   invariants that hold across the whole flow. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Binding = Core.Binding
module Bind_aware = Core.Bind_aware
open Helpers

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let random_app seed set =
  let rng = Gen.Rng.create ~seed in
  Gen.Sdfgen.generate rng
    (Gen.Benchsets.set_profile set)
    ~proc_types:Gen.Benchsets.proc_types
    ~name:(Printf.sprintf "p%d" seed)

let arch () = Gen.Benchsets.architecture 0

(* A valid binding for a random app, or None when binding fails. *)
let random_binding seed set =
  let app = random_app seed set in
  let arch = arch () in
  match Core.Binding_step.bind ~weights:(Core.Cost.weights 0. 1. 2.) app arch with
  | Ok binding -> Some (app, arch, binding)
  | Error _ -> None

let prop_binding_step_valid =
  qcheck ~count:60 "binding step output satisfies Section 7" gen_seed
    (fun seed ->
      match random_binding seed 1 with
      | None -> true
      | Some (app, arch, binding) ->
          Binding.is_complete binding && Binding.check app arch binding = Ok ())

let prop_bind_aware_is_consistent =
  qcheck ~count:40 "binding-aware graph stays consistent and connected"
    gen_seed (fun seed ->
      match random_binding seed 3 with
      | None -> true
      | Some (app, arch, binding) ->
          let slices = Bind_aware.half_wheel_slices app arch binding in
          let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
          Sdf.Repetition.is_consistent ba.Bind_aware.graph
          && Sdfg.is_weakly_connected ba.Bind_aware.graph)

let prop_bind_aware_app_actors_keep_indices =
  qcheck ~count:40 "application actors keep their indices" gen_seed
    (fun seed ->
      match random_binding seed 2 with
      | None -> true
      | Some (app, arch, binding) ->
          let slices = Bind_aware.half_wheel_slices app arch binding in
          let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
          let n = Sdfg.num_actors app.Appgraph.graph in
          let ok = ref true in
          for a = 0 to n - 1 do
            if
              Sdfg.actor_name ba.Bind_aware.graph a
              <> Sdfg.actor_name app.Appgraph.graph a
              || ba.Bind_aware.roles.(a) <> Bind_aware.App a
            then ok := false
          done;
          !ok)

let prop_colocated_binding_has_no_conn_actors =
  qcheck ~count:40 "single-tile bindings produce no c/s actors" gen_seed
    (fun seed ->
      let app = random_app seed 1 in
      let arch = arch () in
      (* Bind everything to the first tile that supports all actors. *)
      let n = Sdfg.num_actors app.Appgraph.graph in
      let tile_ok t =
        List.init n Fun.id
        |> List.for_all (fun a ->
               Appgraph.supports app a
                 (Platform.Archgraph.tile arch t).Platform.Tile.proc_type)
      in
      match List.find_opt tile_ok (List.init 9 Fun.id) with
      | None -> true
      | Some t ->
          let binding = Array.make n t in
          if Binding.check app arch binding <> Ok () then true
          else begin
            let slices = Bind_aware.half_wheel_slices app arch binding in
            let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
            Sdfg.num_actors ba.Bind_aware.graph = n
          end)

let prop_constrained_monotone_in_slices =
  qcheck ~count:20 "constrained throughput is monotone in the slice size"
    gen_seed (fun seed ->
      match random_binding seed 1 with
      | None -> true
      | Some (app, arch, binding) -> (
          let half = Bind_aware.half_wheel_slices app arch binding in
          let ba = Bind_aware.build ~app ~arch ~binding ~slices:half () in
          match Core.List_scheduler.schedules ~max_states:100_000 ba with
          | exception Core.List_scheduler.Deadlocked -> true
          | exception Core.List_scheduler.State_space_exceeded _ -> true
          | schedules ->
              let thr slices =
                let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
                Core.Constrained.throughput_or_zero ~max_states:100_000 ba
                  ~schedules
              in
              let quarter =
                Array.map (fun s -> if s > 0 then max 1 (s / 2) else 0) half
              in
              Rat.compare (thr half) (thr quarter) >= 0))

let prop_inflation_is_conservative =
  qcheck ~count:20 "inflation model never beats constrained execution"
    gen_seed (fun seed ->
      match random_binding seed 1 with
      | None -> true
      | Some (app, arch, binding) -> (
          let slices = Bind_aware.half_wheel_slices app arch binding in
          let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
          match Core.List_scheduler.schedules ~max_states:100_000 ba with
          | exception Core.List_scheduler.Deadlocked -> true
          | exception Core.List_scheduler.State_space_exceeded _ -> true
          | schedules ->
              let ours =
                Core.Constrained.throughput_or_zero ~max_states:100_000 ba
                  ~schedules
              in
              let theirs =
                Core.Tdma_inflation.throughput ~max_states:100_000 ba
                  ~schedules
              in
              Rat.compare theirs ours <= 0))

let prop_constrained_bounded_by_selftimed =
  qcheck ~count:20
    "schedules and gating never beat the binding-aware self-timed bound"
    gen_seed (fun seed ->
      match random_binding seed 1 with
      | None -> true
      | Some (app, arch, binding) -> (
          let full =
            Array.mapi
              (fun t _ ->
                Platform.Tile.available_wheel (Platform.Archgraph.tile arch t))
              (Platform.Archgraph.tiles arch)
          in
          let slices =
            Array.mapi
              (fun t avail ->
                if Array.exists (fun bt -> bt = t) binding then avail else 0)
              full
          in
          let ba = Bind_aware.build ~app ~arch ~binding ~slices () in
          match Core.List_scheduler.schedules ~max_states:100_000 ba with
          | exception Core.List_scheduler.Deadlocked -> true
          | exception Core.List_scheduler.State_space_exceeded _ -> true
          | schedules -> (
              match
                Analysis.Selftimed.analyze ~max_states:100_000
                  ba.Bind_aware.graph ba.Bind_aware.exec_times
              with
              | exception Analysis.Selftimed.State_space_exceeded _ -> true
              | st ->
                  let bound =
                    st.Analysis.Selftimed.throughput.(app.Appgraph.output_actor)
                  in
                  let constrained =
                    Core.Constrained.throughput_or_zero ~max_states:100_000 ba
                      ~schedules
                  in
                  Rat.compare constrained bound <= 0)))

let prop_strategy_allocations_valid =
  qcheck ~count:25 "strategy output is valid and meets lambda" gen_seed
    (fun seed ->
      let app = random_app seed ((seed mod 3) + 1) in
      let arch = arch () in
      match Core.Strategy.allocate ~max_states:150_000 app arch with
      | Error _ -> true
      | Ok alloc ->
          Core.Strategy.is_valid alloc arch
          && Rat.compare alloc.Core.Strategy.throughput app.Appgraph.lambda >= 0)

let prop_guarantee_holds_under_offsets =
  qcheck ~count:15 "guarantee lower-bounds implementation runs (any offsets)"
    gen_seed (fun seed ->
      let app = random_app seed ((seed mod 3) + 1) in
      let arch = arch () in
      match Core.Strategy.allocate ~max_states:150_000 app arch with
      | Error _ -> true
      | Ok a -> (
          let ba =
            Bind_aware.build ~sync_model:Bind_aware.Aligned_wheels ~app ~arch
              ~binding:a.Core.Strategy.binding ~slices:a.Core.Strategy.slices ()
          in
          let rng = Gen.Rng.create ~seed:(seed * 7 + 1) in
          let ok = ref true in
          for _ = 1 to 5 do
            let offsets = Array.init 9 (fun _ -> Gen.Rng.int rng 60) in
            match
              Core.Constrained.analyze ~offsets ~max_states:150_000 ba
                ~schedules:a.Core.Strategy.schedules
            with
            | exception Core.Constrained.State_space_exceeded _ -> ()
            | exception Core.Constrained.Deadlocked -> ok := false
            | r ->
                if
                  Rat.compare r.Core.Constrained.throughput
                    a.Core.Strategy.throughput
                  < 0
                then ok := false
          done;
          !ok))

let prop_commit_never_negative =
  qcheck ~count:15 "committing allocations never yields negative resources"
    gen_seed (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let apps =
        List.init 4 (fun i ->
            Gen.Sdfgen.generate (Gen.Rng.split rng)
              (Gen.Benchsets.set_profile ((i mod 3) + 1))
              ~proc_types:Gen.Benchsets.proc_types
              ~name:(Printf.sprintf "c%d_%d" seed i))
      in
      let report =
        Core.Multi_app.allocate_until_failure
          ~weights:(Core.Cost.weights 0. 1. 2.) ~max_states:150_000 apps
          (arch ())
      in
      Array.for_all
        (fun t ->
          t.Platform.Tile.mem >= 0
          && t.Platform.Tile.max_conns >= 0
          && t.Platform.Tile.in_bw >= 0
          && t.Platform.Tile.out_bw >= 0
          && t.Platform.Tile.occupied <= t.Platform.Tile.wheel)
        (Platform.Archgraph.tiles report.Core.Multi_app.remaining))

let suite =
  [
    prop_binding_step_valid;
    prop_bind_aware_is_consistent;
    prop_bind_aware_app_actors_keep_indices;
    prop_colocated_binding_has_no_conn_actors;
    prop_constrained_monotone_in_slices;
    prop_inflation_is_conservative;
    prop_constrained_bounded_by_selftimed;
    prop_guarantee_holds_under_offsets;
    prop_strategy_allocations_valid;
    prop_commit_never_negative;
  ]
