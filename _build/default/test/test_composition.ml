(* Joint execution of allocated applications (the isolation property). *)

module Rat = Sdf.Rat
module Composition = Core.Composition
module Multi_app = Core.Multi_app
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
open Helpers

let two_examples () =
  Multi_app.allocate_until_failure
    ~weights:(Core.Cost.weights 1. 1. 1.)
    [
      Models.example_app ();
      Appgraph.with_lambda (Models.example_app ()) (Rat.make 1 60);
    ]
    (Models.example_platform ())

let test_two_examples_exact () =
  let report = two_examples () in
  Alcotest.(check int) "both allocated" 2 (List.length report.Multi_app.allocations);
  let members = Composition.members_of_allocations report.Multi_app.allocations in
  let r = Composition.analyze members in
  List.iteri
    (fun i (a : Core.Strategy.allocation) ->
      Alcotest.(check bool)
        (Printf.sprintf "app %d keeps its guarantee" i)
        true
        (Rat.compare r.Composition.throughput.(i) a.Core.Strategy.throughput >= 0))
    report.Multi_app.allocations;
  (* Tight: both applications run exactly at their guaranteed rates. *)
  check_rat "app 0 exact" (Rat.make 1 30) r.Composition.throughput.(0);
  check_rat "app 1 exact" (Rat.make 1 50) r.Composition.throughput.(1)

let test_windows_are_stacked () =
  let report = two_examples () in
  match Composition.members_of_allocations report.Multi_app.allocations with
  | [ m0; m1 ] ->
      Array.iteri
        (fun t lo0 ->
          Alcotest.(check int) "first app starts at 0" 0 lo0;
          Alcotest.(check int) "second app after the first"
            m0.Composition.ba.Core.Bind_aware.slices.(t)
            m1.Composition.window_start.(t))
        m0.Composition.window_start
  | _ -> Alcotest.fail "expected two members"

let test_overlapping_windows_rejected () =
  let report = two_examples () in
  match Composition.members_of_allocations report.Multi_app.allocations with
  | [ m0; m1 ] -> (
      let clash = { m1 with Composition.window_start = Array.map (fun _ -> 0) m1.Composition.window_start } in
      match Composition.analyze [ m0; clash ] with
      | (_ : Composition.result) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
  | _ -> Alcotest.fail "expected two members"

let test_single_member_matches_constrained () =
  (* With one member starting at window 0, the composition degenerates to
     the constrained analysis. *)
  match Core.Strategy.allocate (Models.example_app ()) (Models.example_platform ()) with
  | Error _ -> Alcotest.fail "allocation failed"
  | Ok a ->
      let members = Composition.members_of_allocations [ a ] in
      let r = Composition.analyze members in
      check_rat "same throughput" a.Core.Strategy.throughput
        r.Composition.throughput.(0)

let test_measure_approximates () =
  (* The windowed estimate of the two-example composition lands within one
     output token of the exact rates. *)
  let report = two_examples () in
  let members = Composition.members_of_allocations report.Multi_app.allocations in
  let exact = (Composition.analyze members).Composition.throughput in
  let horizon = 60_000 in
  let measured = Composition.measure ~horizon members in
  Array.iteri
    (fun i m ->
      let slack = Rat.make 2 (horizon / 2) in
      Alcotest.(check bool)
        (Printf.sprintf "member %d within slack" i)
        true
        (Rat.compare (Rat.add m slack) exact.(i) >= 0
        && Rat.compare m exact.(i) <= 0))
    measured

let test_heterogeneous_mix_holds () =
  let arch = Models.multimedia_platform () in
  let report =
    Multi_app.allocate_until_failure
      ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000
      [ Models.jpeg (); Models.mp3 () ]
      arch
  in
  Alcotest.(check int) "both allocated" 2 (List.length report.Multi_app.allocations);
  let members = Composition.members_of_allocations report.Multi_app.allocations in
  let horizon = 20_000_000 in
  let rates = Composition.measure ~horizon members in
  List.iteri
    (fun i (a : Core.Strategy.allocation) ->
      let slack = Rat.make 2 (horizon / 2) in
      Alcotest.(check bool)
        (a.Core.Strategy.app.Appgraph.app_name ^ " holds with slack")
        true
        (Rat.compare (Rat.add rates.(i) slack) a.Core.Strategy.throughput >= 0))
    report.Multi_app.allocations

let suite =
  [
    Alcotest.test_case "two examples, exact" `Quick test_two_examples_exact;
    Alcotest.test_case "windows stacked" `Quick test_windows_are_stacked;
    Alcotest.test_case "overlap rejected" `Quick test_overlapping_windows_rejected;
    Alcotest.test_case "single member = constrained" `Quick
      test_single_member_matches_constrained;
    Alcotest.test_case "measure approximates" `Quick test_measure_approximates;
    Alcotest.test_case "heterogeneous mix" `Slow test_heterogeneous_mix_holds;
  ]
