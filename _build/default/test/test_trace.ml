(* Execution traces and latency metrics. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Trace = Analysis.Trace
module Latency = Analysis.Latency
open Helpers

let test_example_trace () =
  let t = Trace.selftimed (example_graph ()) [| 1; 1; 2 |] in
  Alcotest.(check int) "period" 2 t.Trace.period;
  check_rat "throughput carried" (Rat.make 1 2) t.Trace.throughput.(2);
  (* First transition: only a1 can start at time 0. *)
  (match t.Trace.transitions with
  | first :: _ ->
      Alcotest.(check int) "starts at 0" 0 first.Trace.at;
      Alcotest.(check (list int)) "only a1" [ 0 ] first.Trace.started
  | [] -> Alcotest.fail "empty trace");
  (* a3 fires exactly once per period in the periodic window. *)
  let in_period =
    List.filter
      (fun tr ->
        tr.Trace.at >= t.Trace.transient
        && tr.Trace.at < t.Trace.transient + t.Trace.period)
      t.Trace.transitions
  in
  let a3_starts =
    List.concat_map (fun tr -> List.filter (fun a -> a = 2) tr.Trace.started) in_period
  in
  Alcotest.(check int) "a3 once per period" 1 (List.length a3_starts)

let test_trace_dot () =
  let t = Trace.selftimed (ring3 ()) [| 2; 3; 4 |] in
  let dot = Trace.to_dot ~actor_name:(Sdfg.actor_name (ring3 ())) t in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* The ring has a 3-transition cycle and a closing back edge. *)
  let arrow_count =
    List.length
      (String.split_on_char '\n' dot
      |> List.filter (fun l ->
             String.length l > 4
             &&
             let has_arrow = ref false in
             String.iteri
               (fun i c ->
                 if c = '-' && i + 1 < String.length l && l.[i + 1] = '>' then
                   has_arrow := true)
               l;
             !has_arrow))
  in
  Alcotest.(check int) "three edges" 3 arrow_count

let test_trace_pp () =
  let g = example_graph () in
  let t = Trace.selftimed g [| 1; 1; 2 |] in
  let s =
    Format.asprintf "%a"
      (Trace.pp (fun ppf a -> Format.pp_print_string ppf (Sdfg.actor_name g a)))
      t
  in
  Alcotest.(check bool) "mentions the periodic phase" true
    (Helpers.graph_equal g g
    &&
    let rec contains i =
      i + 8 <= String.length s
      && (String.sub s i 8 = "periodic" || contains (i + 1))
    in
    contains 0)

let test_constrained_trace_via_observer () =
  (* The constrained engine exposes the same observer; the Fig.-5(c) chain
     has a3 starting at t = 30 (postponed from 29). *)
  let app = Appmodel.Models.example_app () in
  let arch = Appmodel.Models.example_platform () in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
  in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let events = ref [] in
  let observer time actor = events := (time, actor) :: !events in
  let r = Core.Constrained.analyze ~observer ba ~schedules in
  let t =
    Trace.of_events ~events:(List.rev !events)
      ~transient:r.Core.Constrained.transient ~period:r.Core.Constrained.period
      ~throughput:[||]
  in
  let a3_starts =
    List.filter_map
      (fun tr -> if List.mem 2 tr.Trace.started then Some tr.Trace.at else None)
      t.Trace.transitions
  in
  Alcotest.(check bool) "a3 first starts at t=30" true
    (List.mem 30 a3_starts && not (List.mem 29 a3_starts))

let test_latency_example () =
  let g = example_graph () in
  (* a3's first firing needs two a2 outputs: a2 completes at 2 and 3, so a3
     runs 3..5. *)
  Alcotest.(check int) "first output completion" 5
    (Latency.first_output_completion g [| 1; 1; 2 |] ~output:2)

let test_latency_ring () =
  let g = ring3 () in
  (* The ring's token sits on x -> y, so y fires first (0..3), then z
     (3..7), then x (7..9) closes the iteration. *)
  Alcotest.(check int) "makespan" 9 (Latency.iteration_makespan g [| 2; 3; 4 |]);
  Alcotest.(check int) "z completes at 7" 7
    (Latency.first_output_completion g [| 2; 3; 4 |] ~output:2)

let test_latency_pipelining_beats_makespan () =
  (* With two tokens in flight, output arrives before a full iteration of
     everything would sequentially. *)
  let g =
    Sdf.Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 2) ]
  in
  let first = Latency.first_output_completion g [| 3; 4 |] ~output:1 in
  Alcotest.(check int) "first b completion" 7 first

let suite =
  [
    Alcotest.test_case "example trace" `Quick test_example_trace;
    Alcotest.test_case "trace dot" `Quick test_trace_dot;
    Alcotest.test_case "trace pp" `Quick test_trace_pp;
    Alcotest.test_case "constrained trace (Fig 5c)" `Quick
      test_constrained_trace_via_observer;
    Alcotest.test_case "latency example" `Quick test_latency_example;
    Alcotest.test_case "latency ring" `Quick test_latency_ring;
    Alcotest.test_case "latency with pipelining" `Quick
      test_latency_pipelining_beats_makespan;
  ]
