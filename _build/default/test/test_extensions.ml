(* Sensitivity analysis, Gantt rendering, deployment descriptors and the
   extra decoder models. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
open Helpers

(* --- sensitivity --- *)

let test_sensitivity_example () =
  let r = Analysis.Sensitivity.measure (example_graph ()) [| 1; 1; 2 |] ~output:2 in
  check_rat "base" (Rat.make 1 2) r.Analysis.Sensitivity.base;
  (* a1's self-loop paces the graph: slowing a1 must hurt. *)
  Alcotest.(check bool) "a1 sensitive" true (r.Analysis.Sensitivity.sensitivity.(0) > 0.);
  (* a2 has slack at these times (it only forwards), and a3's own time is
     hidden by auto-concurrency (no self-loop in the plain graph). *)
  Alcotest.(check bool) "a2 slack" true
    (abs_float r.Analysis.Sensitivity.sensitivity.(1) < 1e-9);
  Alcotest.(check bool) "a3 hidden by auto-concurrency" true
    (abs_float r.Analysis.Sensitivity.sensitivity.(2) < 1e-9);
  Alcotest.(check (list int)) "critical list" [ 0 ]
    (Analysis.Sensitivity.critical_actors r)

let test_sensitivity_never_negative () =
  (* Slowing an actor can never raise the throughput (monotone graphs). *)
  let g = Helpers.prodcons () in
  let r = Analysis.Sensitivity.measure g [| 2; 5 |] ~output:1 in
  Array.iter
    (fun s -> Alcotest.(check bool) "non-negative" true (s >= -1e-12))
    r.Analysis.Sensitivity.sensitivity

let test_sensitivity_delta_validation () =
  match Analysis.Sensitivity.measure ~delta:0 (ring3 ()) [| 1; 1; 1 |] ~output:0 with
  | (_ : Analysis.Sensitivity.report) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- gantt --- *)

let example_setting () =
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
  in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  (ba, schedules)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_gantt () =
  let ba, schedules = example_setting () in
  let gantt = Core.Gantt.capture ~horizon:40 ba ~schedules in
  check_rat "throughput carried" (Rat.make 1 30) (Core.Gantt.throughput gantt);
  let s = Core.Gantt.render gantt in
  Alcotest.(check bool) "tile lanes" true (contains s "t1" && contains s "t2");
  Alcotest.(check bool) "transport lane" true (contains s "c_d1");
  Alcotest.(check bool) "legend" true (contains s "A=a1");
  (* a1 fires at time 0: first character of t1's lane is 'A'. *)
  let t1_line =
    List.find (fun l -> contains l "t1") (String.split_on_char '\n' s)
  in
  Alcotest.(check char) "a1 at t=0" 'A' t1_line.[11]

let test_gantt_lines_have_horizon_width () =
  let ba, schedules = example_setting () in
  let s = Core.Gantt.render (Core.Gantt.capture ~horizon:25 ba ~schedules) in
  List.iter
    (fun l ->
      if contains l "t1" || contains l "t2" then
        Alcotest.(check int) "width" (11 + 25) (String.length l))
    (String.split_on_char '\n' s)

(* --- deployment --- *)

let test_deployment_roundtrip () =
  match Core.Strategy.allocate (Models.example_app ()) (Models.example_platform ()) with
  | Error _ -> Alcotest.fail "allocation failed"
  | Ok alloc ->
      let xml = Core.Deployment.to_xml alloc in
      let summary = Core.Deployment.summary_of_xml xml in
      Alcotest.(check string) "application" "example"
        summary.Core.Deployment.application;
      check_rat "throughput" alloc.Core.Strategy.throughput
        summary.Core.Deployment.throughput;
      Alcotest.(check int) "three bindings" 3
        (List.length summary.Core.Deployment.bindings);
      Alcotest.(check (list (pair string string))) "bindings"
        [ ("a1", "t1"); ("a2", "t1"); ("a3", "t2") ]
        summary.Core.Deployment.bindings;
      (* Slices of used tiles match the allocation. *)
      List.iter
        (fun (tname, slice) ->
          let t = Platform.Archgraph.tile_index alloc.Core.Strategy.arch tname in
          Alcotest.(check int) ("slice of " ^ tname)
            alloc.Core.Strategy.slices.(t) slice)
        summary.Core.Deployment.slices

let test_deployment_parses_back () =
  match Core.Strategy.allocate (Models.example_app ()) (Models.example_platform ()) with
  | Error _ -> Alcotest.fail "allocation failed"
  | Ok alloc ->
      let s = Core.Deployment.to_string alloc in
      let summary = Core.Deployment.summary_of_xml (Sdf.Xml.parse s) in
      Alcotest.(check string) "via text" "example" summary.Core.Deployment.application

(* --- jpeg / wlan models --- *)

let test_jpeg_model () =
  let app = Models.jpeg () in
  Alcotest.(check (array int)) "gamma" [| 1; 1; 6; 6; 6; 1 |] (Appgraph.gamma app);
  Alcotest.(check bool) "live" true
    (Sdf.Deadlock.is_deadlock_free app.Appgraph.graph);
  (* parse and cc are cpu-only. *)
  Alcotest.(check bool) "parse cpu only" false (Appgraph.supports app 0 Models.acc);
  Alcotest.(check bool) "idct on acc" true (Appgraph.supports app 4 Models.acc)

let test_wlan_model () =
  let app = Models.wlan () in
  Alcotest.(check bool) "single-rate iteration" true
    (Array.for_all (fun v -> v = 1) (Appgraph.gamma app));
  Alcotest.(check int) "8 actors" 8 (Sdfg.num_actors app.Appgraph.graph)

let test_new_models_allocate () =
  let arch = Models.multimedia_platform () in
  List.iter
    (fun (app : Appgraph.t) ->
      match
        Core.Strategy.allocate ~weights:(Core.Cost.weights 2. 0. 1.)
          ~max_states:2_000_000 app arch
      with
      | Ok alloc ->
          Alcotest.(check bool)
            (app.Appgraph.app_name ^ " meets lambda")
            true
            (Rat.compare alloc.Core.Strategy.throughput app.Appgraph.lambda >= 0)
      | Error f ->
          Alcotest.failf "%s failed: %a" app.Appgraph.app_name
            Core.Strategy.pp_failure f)
    [ Models.jpeg (); Models.wlan () ]

let suite =
  [
    Alcotest.test_case "sensitivity (example)" `Quick test_sensitivity_example;
    Alcotest.test_case "sensitivity non-negative" `Quick
      test_sensitivity_never_negative;
    Alcotest.test_case "sensitivity validation" `Quick
      test_sensitivity_delta_validation;
    Alcotest.test_case "gantt rendering" `Quick test_gantt;
    Alcotest.test_case "gantt width" `Quick test_gantt_lines_have_horizon_width;
    Alcotest.test_case "deployment roundtrip" `Quick test_deployment_roundtrip;
    Alcotest.test_case "deployment via text" `Quick test_deployment_parses_back;
    Alcotest.test_case "jpeg model" `Quick test_jpeg_model;
    Alcotest.test_case "wlan model" `Quick test_wlan_model;
    Alcotest.test_case "jpeg/wlan allocate" `Slow test_new_models_allocate;
  ]
