(* Platform dimensioning and the sync-model/buffer-target extensions. *)

module Rat = Sdf.Rat
module Dimensioning = Core.Dimensioning
module Bind_aware = Core.Bind_aware
module Models = Appmodel.Models
open Helpers

let template =
  {
    Dimensioning.proc_types = Gen.Benchsets.proc_types;
    wheel = 60;
    mem = 600_000;
    max_conns = 32;
    in_bw = 3_000;
    out_bw = 3_000;
    hop_latency = 1;
  }

let test_single_app_fits_one_tile () =
  let apps = Gen.Benchsets.sequence ~set:4 ~seq:0 ~count:1 in
  match Dimensioning.smallest_mesh ~max_states:200_000 template apps with
  | Some r ->
      Alcotest.(check (pair int int)) "1x1" (1, 1)
        (r.Dimensioning.rows, r.Dimensioning.cols);
      Alcotest.(check int) "all allocated" 1
        (List.length r.Dimensioning.report.Core.Multi_app.allocations);
      Alcotest.(check (list (pair int int))) "nothing rejected" []
        r.Dimensioning.rejected_shapes
  | None -> Alcotest.fail "expected a fit"

let test_mesh_grows_with_workload () =
  let size n =
    let apps = Gen.Benchsets.sequence ~set:4 ~seq:0 ~count:n in
    match Dimensioning.smallest_mesh ~max_states:200_000 template apps with
    | Some r -> r.Dimensioning.rows * r.Dimensioning.cols
    | None -> max_int
  in
  let s2 = size 2 and s6 = size 6 in
  Alcotest.(check bool)
    (Printf.sprintf "6 apps (%d tiles) need at least as much as 2 (%d)" s6 s2)
    true (s6 >= s2)

let test_impossible_workload () =
  (* A tiny template cannot host the H.263 decoder (vld needs "proc"). *)
  let tpl = { template with Dimensioning.proc_types = [| "weird" |] } in
  Alcotest.(check bool) "no fit" true
    (Dimensioning.smallest_mesh ~max_tiles:4 tpl [ Models.h263 () ] = None)

let test_shapes_prefer_square () =
  (* At equal tile count, squarer shapes are tried first: the rejected list
     for a 4-app workload must not contain a shape with more tiles than the
     winner. *)
  let apps = Gen.Benchsets.sequence ~set:1 ~seq:0 ~count:4 in
  match Dimensioning.smallest_mesh ~max_states:200_000 template apps with
  | Some r ->
      let winner = r.Dimensioning.rows * r.Dimensioning.cols in
      List.iter
        (fun (rr, cc) ->
          Alcotest.(check bool) "rejected shapes are not larger" true
            (rr * cc <= winner))
        r.Dimensioning.rejected_shapes
  | None -> Alcotest.fail "expected a fit"

(* --- sync model --- *)

let test_aligned_sync_actor_is_instant () =
  let ba =
    Bind_aware.build ~sync_model:Bind_aware.Aligned_wheels
      ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
      ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()
  in
  let tau =
    ba.Bind_aware.exec_times.(Sdf.Sdfg.actor_index ba.Bind_aware.graph "s_d1")
  in
  Alcotest.(check int) "zero wait" 0 tau

let test_aligned_no_slower () =
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  List.iter
    (fun omega ->
      let thr sync_model =
        let ba =
          Bind_aware.build ~sync_model ~app:(Models.example_app ())
            ~arch:(Models.example_platform ()) ~binding:[| 0; 0; 1 |]
            ~slices:[| omega; omega |] ()
        in
        Core.Constrained.throughput_or_zero ba ~schedules
      in
      Alcotest.(check bool)
        (Printf.sprintf "aligned >= worst case at omega=%d" omega)
        true
        (Rat.compare
           (thr Bind_aware.Aligned_wheels)
           (thr Bind_aware.Worst_case_arrival)
        >= 0))
    [ 1; 3; 5; 7; 10 ]

(* --- buffer sizing for a target rate --- *)

let test_distribution_for_rate () =
  let g = example_graph () in
  let taus = [| 1; 1; 2 |] in
  (match
     Analysis.Buffer_sizing.distribution_for_rate g taus ~output:2
       ~target:(Rat.make 1 2)
   with
  | Some d ->
      check_rat "achieves the target" (Rat.make 1 2)
        (Analysis.Buffer_sizing.throughput g taus d ~output:2)
  | None -> Alcotest.fail "1/2 is achievable");
  Alcotest.(check bool) "unachievable target" true
    (Analysis.Buffer_sizing.distribution_for_rate g taus ~output:2
       ~target:(Rat.make 2 3)
    = None)

let suite =
  [
    Alcotest.test_case "single app, one tile" `Slow test_single_app_fits_one_tile;
    Alcotest.test_case "mesh grows with workload" `Slow test_mesh_grows_with_workload;
    Alcotest.test_case "impossible workload" `Quick test_impossible_workload;
    Alcotest.test_case "shapes prefer square" `Slow test_shapes_prefer_square;
    Alcotest.test_case "aligned sync actor" `Quick test_aligned_sync_actor_is_instant;
    Alcotest.test_case "aligned no slower" `Quick test_aligned_no_slower;
    Alcotest.test_case "distribution for rate" `Quick test_distribution_for_rate;
  ]
