(* Cross-cutting edge cases and regressions: each case pins a behaviour
   that was non-obvious during development or that guards a subtle
   semantic choice. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Models = Appmodel.Models
module Constrained = Core.Constrained
module Schedule = Core.Schedule
open Helpers

(* --- constrained execution with wheel offsets --- *)

let example_impl_ba () =
  (* Implementation model: aligned wheels, zero sync wait. *)
  Core.Bind_aware.build ~sync_model:Core.Bind_aware.Aligned_wheels
    ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
    ~binding:[| 0; 0; 1 |] ~slices:[| 5; 5 |] ()

let example_schedules () =
  [|
    Some (Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
    Some (Schedule.make ~prefix:[] ~period:[ 2 ]);
  |]

let test_offsets_guarantee_tight () =
  (* Allocate the example, then simulate the deployment under every wheel
     alignment: the guarantee must hold everywhere, and for the allocated
     slices the worst alignment reaches it exactly (the bound is tight). *)
  match
    Core.Strategy.allocate (Models.example_app ()) (Models.example_platform ())
  with
  | Error _ -> Alcotest.fail "allocation failed"
  | Ok a ->
      let ba =
        Core.Bind_aware.build ~sync_model:Core.Bind_aware.Aligned_wheels
          ~app:(Models.example_app ()) ~arch:(Models.example_platform ())
          ~binding:a.Core.Strategy.binding ~slices:a.Core.Strategy.slices ()
      in
      let worst = ref Rat.infinity in
      for o1 = 0 to 9 do
        for o2 = 0 to 9 do
          let r =
            Constrained.analyze ~offsets:[| o1; o2 |] ba
              ~schedules:a.Core.Strategy.schedules
          in
          if Rat.compare r.Constrained.throughput !worst < 0 then
            worst := r.Constrained.throughput
        done
      done;
      Alcotest.(check bool) "guarantee holds everywhere" true
        (Rat.compare !worst a.Core.Strategy.throughput >= 0);
      check_rat "worst alignment reaches the bound exactly"
        a.Core.Strategy.throughput !worst

let test_offsets_normalised () =
  (* Negative and oversized offsets are taken modulo the wheel. *)
  let ba = example_impl_ba () in
  let schedules = example_schedules () in
  let thr offsets =
    (Constrained.analyze ~offsets ba ~schedules).Constrained.throughput
  in
  check_rat "offset 13 = offset 3" (thr [| 13; 0 |]) (thr [| 3; 0 |]);
  check_rat "offset -7 = offset 3" (thr [| -7; 0 |]) (thr [| 3; 0 |])

let test_offsets_wrong_length () =
  let ba = example_impl_ba () in
  match Constrained.analyze ~offsets:[| 1 |] ba ~schedules:(example_schedules ()) with
  | (_ : Constrained.result) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_zero_offsets_default () =
  let ba = example_impl_ba () in
  let schedules = example_schedules () in
  check_rat "explicit zeros = default"
    (Constrained.analyze ba ~schedules).Constrained.throughput
    (Constrained.analyze ~offsets:[| 0; 0 |] ba ~schedules).Constrained.throughput

(* --- HSDF dedupe --- *)

let test_hsdf_dedupe_shrinks () =
  let g = prodcons () in
  let gamma = Sdf.Repetition.vector_exn g in
  let deduped = Sdf.Hsdf.convert ~dedupe:true g gamma in
  let full = Sdf.Hsdf.convert ~dedupe:false g gamma in
  Alcotest.(check bool) "dedupe never adds channels" true
    (Sdfg.num_channels deduped.Sdf.Hsdf.graph
    <= Sdfg.num_channels full.Sdf.Hsdf.graph);
  (* Both preserve the throughput (dedupe keeps the tightest edge). *)
  let taus = Sdf.Hsdf.timing deduped [| 2; 5 |] in
  let taus_full = Sdf.Hsdf.timing full [| 2; 5 |] in
  check_rat "same MCR"
    (Analysis.Mcr.hsdf_throughput deduped.Sdf.Hsdf.graph taus)
    (Analysis.Mcr.hsdf_throughput full.Sdf.Hsdf.graph taus_full)

let test_hsdf_channel_provenance () =
  let g = example_graph () in
  let h = Sdf.Hsdf.convert g (Sdf.Repetition.vector_exn g) in
  Alcotest.(check int) "one origin per channel"
    (Sdfg.num_channels h.Sdf.Hsdf.graph)
    (Array.length h.Sdf.Hsdf.channel_of);
  Array.iter
    (fun origin ->
      Alcotest.(check bool) "origin in range" true
        (origin >= 0 && origin < Sdfg.num_channels g))
    h.Sdf.Hsdf.channel_of

(* --- selftimed observer ordering --- *)

let test_observer_times_nondecreasing () =
  let times = ref [] in
  let observer time _ = times := time :: !times in
  ignore (Analysis.Selftimed.analyze ~observer (example_graph ()) [| 1; 1; 2 |]);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a >= b && nondecreasing rest
    | _ -> true
  in
  (* recorded in reverse order *)
  Alcotest.(check bool) "event times monotone" true (nondecreasing !times)

(* --- cost function degenerate resources --- *)

let test_tile_cost_with_zero_capacity () =
  (* A tile with zero connection capacity: communication load becomes
     infinite as soon as a split lands there, pushing it to the back of
     every candidate order instead of crashing. *)
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let tiles = Platform.Archgraph.tiles arch in
  let arch0 =
    Platform.Archgraph.with_tiles arch
      [| { tiles.(0) with Platform.Tile.max_conns = 0 }; tiles.(1) |]
  in
  let lc = Core.Cost.communication_load app arch0 [| 0; 0; 1 |] 0 in
  Alcotest.(check bool) "infinite" true (lc = Float.infinity)

(* --- schedules: position normalisation stays in range forever --- *)

let test_schedule_normalise_pos () =
  let s = Schedule.make ~prefix:[ 5; 6 ] ~period:[ 1; 2; 3 ] in
  Alcotest.(check int) "prefix pos unchanged" 1 (Schedule.normalise_pos s 1);
  Alcotest.(check int) "first wrap" 2 (Schedule.normalise_pos s 5);
  (* plen 2, period 3: pos 100 -> 2 + ((100 - 2) mod 3) = 4. *)
  Alcotest.(check int) "deep wrap" 4 (Schedule.normalise_pos s 100);
  Alcotest.(check int) "actor agrees" (Schedule.actor_at s 100)
    (Schedule.actor_at s (Schedule.normalise_pos s 100))

(* --- architecture validation --- *)

let test_with_tiles_length_check () =
  let arch = Models.example_platform () in
  match Platform.Archgraph.with_tiles arch [| Platform.Archgraph.tile arch 0 |] with
  | (_ : Platform.Archgraph.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- generator: set 3 really is denser --- *)

let test_set3_denser_than_set1 () =
  let avg_channels set =
    let apps = Gen.Benchsets.sequence ~set ~seq:0 ~count:10 in
    List.fold_left
      (fun acc (a : Appmodel.Appgraph.t) ->
        acc
        + Sdfg.num_channels a.Appmodel.Appgraph.graph
          * 100
          / Sdfg.num_actors a.Appmodel.Appgraph.graph)
      0 apps
    / List.length apps
  in
  Alcotest.(check bool) "set3 channel density higher" true
    (avg_channels 3 > avg_channels 1)

(* --- slice allocation: phase 2 never grows the phase-1 slices --- *)

let test_phase2_only_shrinks () =
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding
      ~slices:(Core.Bind_aware.half_wheel_slices app arch binding) ()
  in
  let schedules = Core.List_scheduler.schedules ba in
  match Core.Slice_alloc.allocate app arch binding schedules with
  | Error _ -> Alcotest.fail "expected success"
  | Ok o ->
      Array.iter
        (fun s ->
          Alcotest.(check bool) "within the wheel" true (s >= 0 && s <= 10))
        o.Core.Slice_alloc.slices

(* --- multimedia models under the iterative flow --- *)

let test_flow_retry_on_mp3 () =
  let r =
    Core.Flow.allocate_with_retry ~max_states:2_000_000 (Models.mp3 ())
      (Models.multimedia_platform ())
  in
  Alcotest.(check bool) "mp3 allocates within the ladder" true
    (r.Core.Flow.allocation <> None)

(* --- final batch of edge cases --- *)

let test_composition_empty () =
  Alcotest.(check int) "no members from no allocations" 0
    (List.length (Core.Composition.members_of_allocations []))

let test_flow_empty_ladder () =
  let r =
    Core.Flow.allocate_with_retry ~weight_ladder:[] (Models.example_app ())
      (Models.example_platform ())
  in
  Alcotest.(check bool) "no allocation" true (r.Core.Flow.allocation = None);
  Alcotest.(check int) "no attempts" 0 (List.length r.Core.Flow.attempts)

let test_textio_negative_exec_time () =
  match Sdf.Textio.parse "sdfg x\nactor a -3\n" with
  | (_ : Sdf.Textio.document) -> Alcotest.fail "expected parse error"
  | exception Sdf.Textio.Parse_error { line = 2; _ } -> ()
  | exception Sdf.Textio.Parse_error _ -> Alcotest.fail "wrong line"

let test_xml_apostrophe () =
  let node = Sdf.Xml.Element ("t", [ ("a", "it's") ], []) in
  let back = Sdf.Xml.parse (Sdf.Xml.to_string node) in
  Alcotest.(check string) "apostrophe survives" "it's" (Sdf.Xml.attr back "a")

let test_gantt_large_model () =
  (* The WLAN receiver spread over the multimedia platform: many transport
     actors; rendering must stay well formed (symbols wrap modulo 26). *)
  match
    Core.Strategy.allocate ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 (Models.wlan ()) (Models.multimedia_platform ())
  with
  | Error _ -> Alcotest.fail "wlan allocation failed"
  | Ok a ->
      let ba =
        Core.Bind_aware.build ~app:a.Core.Strategy.app ~arch:a.Core.Strategy.arch
          ~binding:a.Core.Strategy.binding ~slices:a.Core.Strategy.slices ()
      in
      let view =
        Core.Gantt.capture ~max_states:2_000_000 ~horizon:60 ba
          ~schedules:a.Core.Strategy.schedules
      in
      let s = Core.Gantt.render view in
      Alcotest.(check bool) "has a legend" true
        (String.length s > 0
        &&
        let rec contains i =
          i + 7 <= String.length s
          && (String.sub s i 7 = "legend:" || contains (i + 1))
        in
        contains 0)

let test_latency_on_jpeg () =
  let app = Models.jpeg () in
  let g = app.Appmodel.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a ->
        Appmodel.Appgraph.max_exec_time app a)
  in
  let first =
    Analysis.Latency.first_output_completion ~max_states:500_000 g taus
      ~output:5
  in
  let makespan = Analysis.Latency.iteration_makespan ~max_states:500_000 g taus in
  Alcotest.(check bool) "positive" true (first > 0);
  (* cc is the last actor of the pipeline, so its first completion is the
     makespan of the first iteration here. *)
  Alcotest.(check int) "cc closes the iteration" makespan first

let test_deployment_multirate_schedule () =
  match
    Core.Strategy.allocate ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000 (Models.jpeg ()) (Models.multimedia_platform ())
  with
  | Error _ -> Alcotest.fail "jpeg allocation failed"
  | Ok a ->
      let summary =
        Core.Deployment.summary_of_xml (Core.Deployment.to_xml a)
      in
      Alcotest.(check int) "six bindings" 6
        (List.length summary.Core.Deployment.bindings);
      Alcotest.(check bool) "throughput meets lambda" true
        (Rat.compare summary.Core.Deployment.throughput
           (Models.jpeg ()).Appmodel.Appgraph.lambda
        >= 0)

let test_sensitivity_lengths () =
  let g = Helpers.example_graph () in
  let r = Analysis.Sensitivity.measure g [| 1; 1; 2 |] ~output:2 in
  Alcotest.(check int) "per_actor length" 3 (Array.length r.Analysis.Sensitivity.per_actor);
  Alcotest.(check int) "sensitivity length" 3
    (Array.length r.Analysis.Sensitivity.sensitivity)

let suite =
  [
    Alcotest.test_case "offsets: guarantee tight on example" `Slow
      test_offsets_guarantee_tight;
    Alcotest.test_case "offsets normalised" `Quick test_offsets_normalised;
    Alcotest.test_case "offsets wrong length" `Quick test_offsets_wrong_length;
    Alcotest.test_case "zero offsets default" `Quick test_zero_offsets_default;
    Alcotest.test_case "hsdf dedupe" `Quick test_hsdf_dedupe_shrinks;
    Alcotest.test_case "hsdf provenance" `Quick test_hsdf_channel_provenance;
    Alcotest.test_case "observer ordering" `Quick test_observer_times_nondecreasing;
    Alcotest.test_case "zero-capacity tile cost" `Quick
      test_tile_cost_with_zero_capacity;
    Alcotest.test_case "schedule normalisation" `Quick test_schedule_normalise_pos;
    Alcotest.test_case "with_tiles length" `Quick test_with_tiles_length_check;
    Alcotest.test_case "set3 denser" `Quick test_set3_denser_than_set1;
    Alcotest.test_case "phase 2 bounded" `Quick test_phase2_only_shrinks;
    Alcotest.test_case "flow retry on mp3" `Slow test_flow_retry_on_mp3;
    Alcotest.test_case "composition empty" `Quick test_composition_empty;
    Alcotest.test_case "flow empty ladder" `Quick test_flow_empty_ladder;
    Alcotest.test_case "textio negative time" `Quick test_textio_negative_exec_time;
    Alcotest.test_case "xml apostrophe" `Quick test_xml_apostrophe;
    Alcotest.test_case "gantt large model" `Slow test_gantt_large_model;
    Alcotest.test_case "latency on jpeg" `Quick test_latency_on_jpeg;
    Alcotest.test_case "deployment multirate" `Slow test_deployment_multirate_schedule;
    Alcotest.test_case "sensitivity lengths" `Quick test_sensitivity_lengths;
  ]
