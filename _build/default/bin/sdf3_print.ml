(* Dump the built-in application models (the paper's running example, the
   H.263 decoder of Fig. 1 and the Sec. 10.3 MP3 decoder) as text or DOT. *)

module Appgraph = Appmodel.Appgraph

let model_of_name = function
  | "example" -> Appmodel.Models.example_app ()
  | "h263" -> Appmodel.Models.h263 ()
  | "mp3" -> Appmodel.Models.mp3 ()
  | s ->
      Printf.eprintf "unknown model %S (try example, h263, mp3)\n" s;
      exit 1

let print_model name fmt log_level =
  Cli_common.setup_logs log_level;
  let app = model_of_name name in
  let g = app.Appgraph.graph in
  (* Render with the worst-case execution times, which is what Eqn. 1 uses. *)
  let taus =
    Array.init (Sdf.Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  match fmt with
  | `Text -> print_string (Sdf.Textio.print ~exec_times:taus name g)
  | `Dot -> print_string (Sdf.Dot.to_dot ~name ~exec_times:taus g)
  | `Xml -> print_string (Appmodel.Sdf3_xml.app_to_string app)
  | `Info ->
      Format.printf "%a@." Appgraph.pp app;
      let gamma = Appgraph.gamma app in
      Format.printf "repetition vector:";
      Array.iteri
        (fun a v -> Format.printf " %s=%d" (Sdf.Sdfg.actor_name g a) v)
        gamma;
      Format.printf "@.HSDF size: %d actors@."
        (Sdf.Repetition.iteration_firings gamma)

open Cmdliner

let model =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL" ~doc:"Model name: example, h263 or mp3")

let format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("dot", `Dot); ("info", `Info); ("xml", `Xml) ]) `Text
    & info [ "format"; "f" ] ~docv:"FMT"
        ~doc:"Output format: text, dot, info or xml (SDF3 style)")

let cmd =
  Cmd.v
    (Cmd.info "sdf3_print" ~doc:"Print a built-in application model")
    Term.(const print_model $ model $ format $ Cli_common.log_level)

let () = exit (Cmd.eval cmd)
