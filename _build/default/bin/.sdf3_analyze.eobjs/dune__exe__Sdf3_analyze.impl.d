bin/sdf3_analyze.ml: Analysis Appmodel Arg Array Cli_common Cmd Cmdliner Filename Fun List Printf Sdf String Term
