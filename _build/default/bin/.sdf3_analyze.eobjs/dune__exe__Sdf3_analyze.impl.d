bin/sdf3_analyze.ml: Analysis Appmodel Arg Array Cmd Cmdliner Filename Fun List Printf Sdf String Term
