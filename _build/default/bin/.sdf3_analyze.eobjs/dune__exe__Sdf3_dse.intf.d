bin/sdf3_dse.mli:
