bin/sdf3_flow.ml: Appmodel Arg Array Bind_aware Cli_common Cmd Cmdliner Core Deployment Filename Format Gantt Gen List Multi_app Platform Printf Schedule Sdf Strategy String Term
