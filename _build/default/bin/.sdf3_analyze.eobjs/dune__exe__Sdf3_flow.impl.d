bin/sdf3_flow.ml: Appmodel Arg Array Bind_aware Cmd Cmdliner Core Deployment Filename Format Gantt Gen List Logs Multi_app Platform Printf Schedule Sdf Strategy String Term
