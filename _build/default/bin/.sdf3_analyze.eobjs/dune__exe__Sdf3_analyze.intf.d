bin/sdf3_analyze.mli:
