bin/sdf3_generate.mli:
