bin/sdf3_print.mli:
