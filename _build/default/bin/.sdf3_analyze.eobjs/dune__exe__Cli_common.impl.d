bin/cli_common.ml: Arg Cmdliner Fun Logs Obs
