bin/sdf3_generate.ml: Appmodel Arg Array Cmd Cmdliner Filename Gen List Printf Sdf Term
