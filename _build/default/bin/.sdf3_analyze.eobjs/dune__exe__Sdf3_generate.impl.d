bin/sdf3_generate.ml: Appmodel Arg Array Cli_common Cmd Cmdliner Filename Gen List Printf Sdf Term
