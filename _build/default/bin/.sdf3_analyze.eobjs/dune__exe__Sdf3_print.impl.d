bin/sdf3_print.ml: Appmodel Arg Array Cli_common Cmd Cmdliner Format Printf Sdf Term
