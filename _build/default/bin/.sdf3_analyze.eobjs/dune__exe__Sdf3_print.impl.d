bin/sdf3_print.ml: Appmodel Arg Array Cmd Cmdliner Format Printf Sdf Term
