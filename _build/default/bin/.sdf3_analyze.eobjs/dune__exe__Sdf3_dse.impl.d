bin/sdf3_dse.ml: Analysis Appmodel Arg Array Cli_common Cmd Cmdliner Core Format List Printf Sdf String Term
