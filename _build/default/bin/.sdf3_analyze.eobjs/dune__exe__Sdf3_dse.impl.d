bin/sdf3_dse.ml: Analysis Appmodel Arg Array Cmd Cmdliner Core Format List Printf Sdf String Term
