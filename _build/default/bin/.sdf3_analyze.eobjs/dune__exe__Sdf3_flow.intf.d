bin/sdf3_flow.mli:
