bench/main.mli:
