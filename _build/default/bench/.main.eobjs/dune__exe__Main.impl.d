bench/main.ml: Analysis Analyze Appmodel Array Bechamel Benchmark Core Float Fun Gen Hashtbl Instance List Measure Obs Printf Sdf Staged Sys Tables Test Time
