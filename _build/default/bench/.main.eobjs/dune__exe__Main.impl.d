bench/main.ml: Analysis Analyze Appmodel Array Bechamel Benchmark Core Float Gen Hashtbl Instance List Measure Printf Sdf Staged Sys Tables Test Time
