bench/tables.ml: Analysis Appmodel Array Baseline Core Csdf Float Format Fun Gen Hashtbl List Platform Printf Sdf String Unix
