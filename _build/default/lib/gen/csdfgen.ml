let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let generate rng ?(actors = (2, 5)) ?(phases = (1, 3)) ?(cycles = (1, 3)) () =
  let n = Rng.range rng (fst actors) (snd actors) in
  let cyc = Array.init n (fun _ -> Rng.range rng (fst cycles) (snd cycles)) in
  let ph = Array.init n (fun _ -> Rng.range rng (fst phases) (snd phases)) in
  (* Split a cycle total over k phases; zero phases allowed, all-zero not
     (a channel must be produced/consumed somewhere in the cycle). *)
  let split total k =
    let parts = Array.make k 0 in
    for _ = 1 to total do
      let i = Rng.int rng k in
      parts.(i) <- parts.(i) + 1
    done;
    Array.to_list parts
  in
  let channels = ref [] in
  for i = 0 to n - 2 do
    let g = gcd cyc.(i) cyc.(i + 1) in
    channels :=
      ( Printf.sprintf "a%d" i,
        Printf.sprintf "a%d" (i + 1),
        split (cyc.(i + 1) / g) ph.(i),
        split (cyc.(i) / g) ph.(i + 1),
        0 )
      :: !channels
  done;
  let g0 = gcd cyc.(n - 1) cyc.(0) in
  let cons_total = cyc.(n - 1) / g0 in
  channels :=
    ( Printf.sprintf "a%d" (n - 1),
      "a0",
      split (cyc.(0) / g0) ph.(n - 1),
      split cons_total ph.(0),
      cons_total * cyc.(0) * 2 )
    :: !channels;
  let graph =
    Csdf.Graph.of_lists
      ~actors:(List.init n (fun i -> (Printf.sprintf "a%d" i, ph.(i))))
      ~channels:(List.rev !channels)
  in
  let taus =
    Array.init n (fun a -> Array.init ph.(a) (fun _ -> 1 + Rng.int rng 5))
  in
  (graph, taus)
