module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

let proc_types = [| "risc"; "dsp"; "vliw" |]

let base_profile =
  Sdfgen.
    {
      p_name = "balanced";
      n_actors = (4, 7);
      max_rep = 4;
      multirate_prob = 0.3;
      extra_edge_prob = 0.15;
      self_loop_prob = 0.2;
      tau = (4, 12);
      tau_spread = 0.6;
      mu = (2_000, 6_000);
      sz = (200, 800);
      alpha = (1, 2);
      beta = (80, 200);
      lambda_divisor = 10;
    }

(* Set 1: "processing intensive graphs that have large execution times, do
   not communicate too often and have small token sizes and states". *)
let set1 =
  {
    base_profile with
    Sdfgen.p_name = "processing";
    tau = (10, 24);
    mu = (500, 1_500);
    sz = (50, 200);
    beta = (20, 60);
    lambda_divisor = 12;
    extra_edge_prob = 0.08;
  }

(* Set 2: memory intensive — big actor state and big tokens. *)
let set2 =
  {
    base_profile with
    Sdfgen.p_name = "memory";
    tau = (3, 8);
    mu = (20_000, 60_000);
    sz = (4_000, 12_000);
    alpha = (2, 3);
    beta = (200, 600);
    lambda_divisor = 12;
  }

(* Set 3: communication intensive — high bandwidth and denser graphs. *)
let set3 =
  {
    base_profile with
    Sdfgen.p_name = "communication";
    tau = (3, 8);
    mu = (500, 1_500);
    sz = (500, 1_500);
    beta = (200, 500);
    extra_edge_prob = 0.35;
    lambda_divisor = 10;
  }

let set_profile = function
  | 1 -> set1
  | 2 -> set2
  | 3 -> set3
  | k -> invalid_arg (Printf.sprintf "Benchsets.set_profile: set %d" k)

let sequence ~set ~seq ~count =
  if set < 1 || set > 4 then invalid_arg "Benchsets.sequence: set out of range";
  if seq < 0 || seq > 2 then invalid_arg "Benchsets.sequence: seq out of range";
  let rng = Rng.create ~seed:(1_000_003 + (set * 7919) + (seq * 104729)) in
  List.init count (fun i ->
      let profile =
        if set <= 3 then set_profile set
        else
          (* Set 4 mixes the three stressed profiles with balanced graphs. *)
          match i mod 4 with
          | 0 -> set1
          | 1 -> set2
          | 2 -> set3
          | _ -> base_profile
      in
      let grng = Rng.split rng in
      Sdfgen.generate grng profile ~proc_types
        ~name:(Printf.sprintf "s%dq%dg%d" set seq i))

let architecture v =
  let mem, max_conns =
    match v with
    | 0 -> (600_000, 32)
    | 1 -> (400_000, 24)
    | 2 -> (250_000, 16)
    | _ -> invalid_arg "Benchsets.architecture: variant out of range"
  in
  Archgraph.mesh ~rows:3 ~cols:3 ~proc_types ~wheel:60 ~mem ~max_conns
    ~in_bw:3_000 ~out_bw:3_000 ~hop_latency:1 ()
