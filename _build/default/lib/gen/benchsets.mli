module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** The benchmark of Section 10.1: four ordered sets of application graphs
    (processing-, memory-, communication-intensive, and mixed), three
    random sequences per set, and three 3x3 mesh architectures with three
    processor types that differ in memory size and NI connection count.

    The absolute parameter scales are dimensioned for this reproduction's
    platform (small TDMA wheels keep the constrained state spaces small);
    the {e relative} stress of each set follows the paper: set 1 has large
    execution times and cheap communication, set 2 large state and token
    sizes, set 3 high bandwidth demand and denser graphs, set 4 mixes all
    three plus balanced graphs. *)

val proc_types : string array
(** Three processor types: "risc", "dsp", "vliw". *)

val set_profile : int -> Sdfgen.profile
(** [set_profile k] for [k] in 1..3 (set 4 mixes these).
    @raise Invalid_argument otherwise. *)

val sequence : set:int -> seq:int -> count:int -> Appgraph.t list
(** [sequence ~set ~seq ~count] generates the [seq]-th (0..2) sequence of
    [count] application graphs of set [set] (1..4). Deterministic in
    [(set, seq)]. *)

val architecture : int -> Archgraph.t
(** [architecture v] for [v] in 0..2: 3x3 mesh, wheel 60, with memory and
    connection capacities shrinking across variants.
    @raise Invalid_argument otherwise. *)
