(** Random cyclo-static dataflow generation.

    Companion to {!Sdfgen} for the CSDF front-end: chains of actors with
    random phase counts whose rate sequences are split uniformly over the
    phases of cycle-sum-consistent totals, closed by a token-carrying
    feedback channel — consistent by construction and live (enough feedback
    tokens for two full iterations). Used by the CSDF property tests
    (lumping conservativity, SDF-agreement). *)

val generate :
  Rng.t ->
  ?actors:int * int ->
  ?phases:int * int ->
  ?cycles:int * int ->
  unit ->
  Csdf.Graph.t * int array array
(** [generate rng ()] returns a graph and matching per-phase execution
    times (1..5 per phase). Ranges: [actors] (default (2, 5)), [phases]
    per actor (default (1, 3)), [cycles] per iteration (default (1, 3)). *)
