lib/gen/sdfgen.ml: Appmodel Array List Printf Rng Sdf
