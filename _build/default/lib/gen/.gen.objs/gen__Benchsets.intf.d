lib/gen/benchsets.mli: Appmodel Platform Sdfgen
