lib/gen/rng.ml: Array Int64
