lib/gen/sdfgen.mli: Appmodel Rng Sdf
