lib/gen/csdfgen.mli: Csdf Rng
