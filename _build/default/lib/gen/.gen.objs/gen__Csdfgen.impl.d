lib/gen/csdfgen.ml: Array Csdf List Printf Rng
