lib/gen/rng.mli:
