lib/gen/benchsets.ml: Appmodel List Platform Printf Rng Sdfgen
