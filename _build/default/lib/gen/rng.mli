(** Deterministic pseudo-random number generation (SplitMix64).

    The benchmark generator must be reproducible across runs and platforms —
    the paper's experiment design ("3 different sequences of graphs ... to
    eliminate effects from the random generator") relies on re-runnable
    sequences. This PRNG is self-contained and seed-stable, unlike
    [Stdlib.Random] whose sequence may change between compiler releases. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent generator derived from the current state; used to give
    every graph of a sequence its own stream. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val range : t -> int -> int -> int
(** [range g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> float -> bool
(** [bool g p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
