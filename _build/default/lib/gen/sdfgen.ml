module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph

type profile = {
  p_name : string;
  n_actors : int * int;
  max_rep : int;
  multirate_prob : float;
  extra_edge_prob : float;
  self_loop_prob : float;
  tau : int * int;
  tau_spread : float;
  mu : int * int;
  sz : int * int;
  alpha : int * int;
  beta : int * int;
  lambda_divisor : int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let generate rng p ~proc_types ~name =
  let n = Rng.range rng (fst p.n_actors) (snd p.n_actors) in
  let gamma =
    Array.init n (fun _ ->
        if Rng.bool rng p.multirate_prob then Rng.range rng 2 p.max_rep else 1)
  in
  let b = Sdfg.Builder.create () in
  for i = 0 to n - 1 do
    ignore (Sdfg.Builder.add_actor b (Printf.sprintf "%s_a%d" name i))
  done;
  (* Consistent rates for a channel src -> dst follow from the repetition
     vector: prod * gamma src = cons * gamma dst. *)
  let rates src dst =
    let g = gcd gamma.(src) gamma.(dst) in
    (gamma.(dst) / g, gamma.(src) / g)
  in
  let add_channel ?(tokens = 0) src dst =
    let prod, cons = rates src dst in
    ignore (Sdfg.Builder.add_channel b ~tokens ~src ~dst ~prod ~cons ())
  in
  (* Random tree rooted at actor 0: connectivity plus a path 0 ~> i for all
     i, so the feedback below closes a cycle through the whole pipeline. *)
  for i = 1 to n - 1 do
    add_channel (Rng.int rng i) i
  done;
  (* Extra forward channels increase communication pressure. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      if Rng.bool rng p.extra_edge_prob then add_channel j i
    done
  done;
  (* Feedback sized for one full iteration of the head actor: bounds
     pipelining and makes the graph deadlock free but live. *)
  let prod, cons = rates (n - 1) 0 in
  let fb_tokens = cons * gamma.(0) in
  ignore
    (Sdfg.Builder.add_channel b ~tokens:fb_tokens ~src:(n - 1) ~dst:0 ~prod
       ~cons ());
  (* Occasional stateful actors. *)
  for i = 0 to n - 1 do
    if Rng.bool rng p.self_loop_prob then
      ignore
        (Sdfg.Builder.add_channel b ~tokens:1 ~src:i ~dst:i ~prod:1 ~cons:1 ())
  done;
  let graph = Sdfg.Builder.build b in
  (* Gamma: 1-3 supported processor types with spread execution times. *)
  let reqs =
    Array.init n (fun _ ->
        let types = Array.copy proc_types in
        Rng.shuffle rng types;
        let k =
          if Rng.bool rng 0.7 then Array.length types
          else min (Array.length types) 2
        in
        let tau_base = Rng.range rng (fst p.tau) (snd p.tau) in
        let mu = Rng.range rng (fst p.mu) (snd p.mu) in
        List.init k (fun i ->
            let spread =
              1. +. (p.tau_spread *. float_of_int (Rng.int rng 100) /. 100.)
            in
            let tau =
              max 1 (int_of_float (float_of_int tau_base *. spread))
            in
            (types.(i), Appgraph.{ exec_time = tau; memory = mu })))
  in
  let creqs =
    Array.map
      (fun c ->
        (* Buffers sized for one full iteration of production: per-channel
           occupancy within an iteration never exceeds the initial tokens
           plus prod * gamma(src), so a demand-driven iteration never blocks
           on space and the bound graph stays live for ANY binding. Tighter
           storage distributions exist (Stuijk et al., DAC'06) but can
           deadlock under parallel bounded paths; an iteration's worth is
           the simple sound choice, and it is what makes the memory-heavy
           benchmark sets genuinely memory-hungry. The profile's alpha range
           adds pipelining slack on top. *)
        let base = Rng.range rng (fst p.alpha) (snd p.alpha) in
        let iteration = c.Sdfg.prod * gamma.(c.Sdfg.src) in
        Appgraph.
          {
            token_size = Rng.range rng (fst p.sz) (snd p.sz);
            alpha_tile = iteration + c.Sdfg.tokens + base - 1;
            alpha_src = iteration + base - 1;
            alpha_dst = iteration + c.Sdfg.tokens + base - 1;
            bandwidth = Rng.range rng (fst p.beta) (snd p.beta);
          })
      (Sdfg.channels graph)
  in
  (* The constraint is a fraction of the sequential-iteration bound: one
     full iteration on a single ideal processor (fastest type per actor,
     full wheel, no communication) takes [sum gamma a * tau_min a] time
     units and produces gamma(output) output tokens. This is achievable up
     to scheduling overheads by a one-tile binding, so dividing it by
     [lambda_divisor] leaves room for TDMA sharing across applications. *)
  let optimistic =
    Array.init n (fun a ->
        List.fold_left (fun acc (_, r) -> min acc r.Appgraph.exec_time) max_int
          reqs.(a))
  in
  let output_actor = n - 1 in
  let sequential_iteration =
    Array.fold_left ( + ) 0 (Array.mapi (fun a g -> g * optimistic.(a)) gamma)
  in
  let lambda =
    Rat.div_int
      (Rat.make gamma.(output_actor) sequential_iteration)
      p.lambda_divisor
  in
  Appgraph.make ~name ~graph ~reqs ~creqs ~lambda ~output_actor
