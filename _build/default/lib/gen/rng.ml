type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014): one 64-bit mixing step per draw. *)
let next g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next g }

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is non-negative as a 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  v mod n

let range g lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int g (hi - lo + 1)

let bool g p =
  let v = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  v /. 9007199254740992. < p (* 2^53 *)

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
