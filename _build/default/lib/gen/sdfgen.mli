module Appgraph = Appmodel.Appgraph
module Rat = Sdf.Rat

(** Random application-graph generation in the spirit of SDF3's
    [sdf3generate] (paper Section 10.1).

    Generated graphs are consistent by construction (edge rates are derived
    from a chosen repetition vector), weakly connected (a random tree plus
    extra forward edges), deadlock free (cycles are closed through a
    token-carrying feedback edge sized for one full iteration), and every
    actor has an input (so self-timed analysis is well defined). Resource
    annotations (Gamma, Theta) and the throughput constraint are drawn from
    a {!profile}, which is how the four benchmark sets stress different
    resources. *)

type profile = {
  p_name : string;
  n_actors : int * int;  (** inclusive range *)
  max_rep : int;  (** repetition-vector entries are drawn from [1, max_rep] *)
  multirate_prob : float;  (** probability an actor gets a rate above 1 *)
  extra_edge_prob : float;  (** per candidate pair, extra forward channels *)
  self_loop_prob : float;  (** extra stateful actors (self-loop channels) *)
  tau : int * int;  (** execution-time range (time units) *)
  tau_spread : float;
      (** heterogeneity: per processor type, tau is scaled by a factor drawn
          from [1, 1 + tau_spread] *)
  mu : int * int;  (** actor state size range (bits) *)
  sz : int * int;  (** token size range (bits) *)
  alpha : int * int;  (** buffer size range (tokens) *)
  beta : int * int;  (** bandwidth requirement range (bits/time unit) *)
  lambda_divisor : int;
      (** the throughput constraint is the graph's unconstrained self-timed
          throughput (with fastest processor types) divided by this *)
}

val generate :
  Rng.t -> profile -> proc_types:string array -> name:string -> Appgraph.t
(** Generate one application graph. The output actor is the feedback
    source (the "sink" of the forward structure). *)
