lib/csdf/graph.ml: Array Format Fun Hashtbl List Printf Sdf String
