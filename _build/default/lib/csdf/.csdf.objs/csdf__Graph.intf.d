lib/csdf/graph.mli: Format Sdf
