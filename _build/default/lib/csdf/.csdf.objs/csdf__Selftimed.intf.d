lib/csdf/selftimed.mli: Graph Sdf
