lib/csdf/selftimed.ml: Array Graph Hashtbl List Marshal Sdf
