module Sdfg = Sdf.Sdfg

(** Cyclo-Static Dataflow graphs (Bilsen et al., 1996 — the model of the
    paper's [6] comparison, also supported by the SDF3 tool set).

    A CSDF actor cycles through a fixed sequence of {e phases}; each phase
    firing consumes and produces a phase-dependent number of tokens. SDF is
    the special case with one phase. CSDF expresses, e.g., deinterleavers
    (produce to two outputs alternately) and filters with periodically
    varying work, with far fewer tokens in flight than an SDF encoding.

    This library provides the graph structure, consistency/liveness checks,
    and a conservative {e lumping} into plain SDF ({!lump}) so cyclo-static
    applications can ride the paper's allocation flow: the lumped actor
    consumes a whole cycle's tokens at its start and produces them at its
    end, so every lumped execution maps to a valid phase-wise execution —
    guarantees derived on the lumped graph transfer to the CSDF
    ({!Csdf_selftimed} measures how much throughput that conservatism
    costs). *)

type actor = {
  a_idx : int;
  a_name : string;
  phases : int;  (** length of the actor's phase cycle, >= 1 *)
}

type channel = {
  c_idx : int;
  c_name : string;
  src : int;
  dst : int;
  prod_seq : int array;  (** per source phase; length = phases of [src] *)
  cons_seq : int array;  (** per destination phase *)
  tokens : int;
}

type t

val of_lists :
  actors:(string * int) list ->
  channels:(string * string * int list * int list * int) list ->
  t
(** [of_lists ~actors ~channels] with actors as [(name, phases)] and
    channels as [(src, dst, prod_seq, cons_seq, tokens)]. Rate sequences
    must match the endpoint's phase count and contain no negative entries
    (zeros are allowed — skipping a phase is the point of CSDF).
    @raise Invalid_argument on malformed input. *)

val num_actors : t -> int
val num_channels : t -> int
val actor : t -> int -> actor
val channel : t -> int -> channel
val actor_index : t -> string -> int
val actor_name : t -> int -> string
val out_channels : t -> int -> int list
val in_channels : t -> int -> int list

val cycle_production : channel -> int
(** Tokens produced over one full cycle of the source actor. *)

val cycle_consumption : channel -> int

(** {1 Analysis} *)

type repetition =
  | Consistent of int array
      (** per actor: {e phase} firings per iteration (always a multiple of
          the actor's phase count) *)
  | Inconsistent of { channel : int }
  | Disconnected

val repetition : t -> repetition

val is_deadlock_free : t -> bool
(** Simulates one iteration phase-by-phase (demand driven). Inconsistent
    or disconnected graphs report [false]. *)

(** {1 Lumping to SDF} *)

val lump : ?serialized:bool -> t -> Sdfg.t
(** The SDF graph with one actor per CSDF actor and rates summed over a
    cycle. Structure-preserving: actor and channel indices coincide.

    With [serialized] (default false), every actor additionally receives a
    unit self-loop with one token, matching the sequential-actor semantics
    of {!Selftimed} — required when comparing throughputs: without it the
    plain SDF analysis lets a lumped actor overlap its own firings, which
    the phase-wise execution never does, and the lumped rate could then
    exceed the cyclo-static one. The allocation flow needs no flag: the
    binding-aware construction serialises every actor anyway. *)

val lump_exec_times : t -> int array array -> int array
(** Sum per-phase execution times ([taus.(a).(p)]) into per-cycle times for
    the lumped graph. *)

val pp : Format.formatter -> t -> unit
