module Rat = Sdf.Rat

type result = {
  throughput : Rat.t array;
  period : int;
  transient : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

let idle = max_int

let analyze ?(max_states = 1_000_000) g taus =
  let n = Graph.num_actors g in
  if n = 0 then invalid_arg "Csdf_selftimed.analyze: empty graph";
  if Array.length taus <> n then
    invalid_arg "Csdf_selftimed.analyze: taus length mismatch";
  Array.iteri
    (fun a per_phase ->
      if Array.length per_phase <> (Graph.actor g a).Graph.phases then
        invalid_arg "Csdf_selftimed.analyze: phase count mismatch";
      Array.iter
        (fun t ->
          if t < 0 then invalid_arg "Csdf_selftimed.analyze: negative time")
        per_phase)
    taus;
  let gamma =
    match Graph.repetition g with
    | Graph.Consistent gamma -> gamma
    | Graph.Inconsistent _ -> invalid_arg "Csdf_selftimed.analyze: inconsistent"
    | Graph.Disconnected -> invalid_arg "Csdf_selftimed.analyze: not connected"
  in
  let tokens = Array.init (Graph.num_channels g) (fun ci -> (Graph.channel g ci).Graph.tokens) in
  let phase = Array.make n 0 in
  (* One firing at a time per actor: completion time or idle. *)
  let busy = Array.make n idle in
  let counts = Array.make n 0 in
  let time = ref 0 in
  let phases a = (Graph.actor g a).Graph.phases in
  let enabled a =
    busy.(a) = idle
    && List.for_all
         (fun ci ->
           let c = Graph.channel g ci in
           tokens.(ci) >= c.Graph.cons_seq.(phase.(a)))
         (Graph.in_channels g a)
  in
  let consume a =
    List.iter
      (fun ci ->
        let c = Graph.channel g ci in
        tokens.(ci) <- tokens.(ci) - c.Graph.cons_seq.(phase.(a)))
      (Graph.in_channels g a)
  in
  (* Production uses the phase the firing started in, recorded per actor. *)
  let firing_phase = Array.make n 0 in
  let produce a =
    List.iter
      (fun ci ->
        let c = Graph.channel g ci in
        tokens.(ci) <- tokens.(ci) + c.Graph.prod_seq.(firing_phase.(a)))
      (Graph.out_channels g a)
  in
  let start_fixpoint () =
    let guard = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      for a = 0 to n - 1 do
        while enabled a do
          changed := true;
          incr guard;
          if !guard > 10_000_000 then
            invalid_arg "Csdf_selftimed.analyze: zero-time livelock";
          consume a;
          counts.(a) <- counts.(a) + 1;
          firing_phase.(a) <- phase.(a);
          let tau = taus.(a).(phase.(a)) in
          phase.(a) <- (phase.(a) + 1) mod phases a;
          if tau = 0 then produce a else busy.(a) <- !time + tau
        done
      done
    done
  in
  let snapshot () =
    let rel = Array.map (fun c -> if c = idle then -1 else c - !time) busy in
    Marshal.to_string (tokens, phase, rel) [ Marshal.No_sharing ]
  in
  let seen : (string, int * int) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, c0) ->
        let period = !time - t0 in
        let iterations = (counts.(0) - c0) / gamma.(0) in
        let throughput =
          Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
        in
        {
          throughput;
          period;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, counts.(0));
        let next = Array.fold_left min idle busy in
        if next = idle then raise Deadlocked;
        time := next;
        Array.iteri
          (fun a c ->
            if c = !time then begin
              busy.(a) <- idle;
              produce a
            end)
          busy;
        explore ()
  in
  explore ()

let throughput ?max_states g taus a =
  let r = analyze ?max_states g taus in
  Rat.div_int r.throughput.(a) (Graph.actor g a).Graph.phases
