module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

type actor = { a_idx : int; a_name : string; phases : int }

type channel = {
  c_idx : int;
  c_name : string;
  src : int;
  dst : int;
  prod_seq : int array;
  cons_seq : int array;
  tokens : int;
}

type t = {
  g_actors : actor array;
  g_channels : channel array;
  g_out : int list array;
  g_in : int list array;
  g_by_name : (string, int) Hashtbl.t;
}

let of_lists ~actors ~channels =
  let by_name = Hashtbl.create 16 in
  let g_actors =
    Array.of_list
      (List.mapi
         (fun i (name, phases) ->
           if phases < 1 then
             invalid_arg "Csdf.of_lists: an actor needs at least one phase";
           if Hashtbl.mem by_name name then
             invalid_arg (Printf.sprintf "Csdf.of_lists: duplicate actor %S" name);
           Hashtbl.add by_name name i;
           { a_idx = i; a_name = name; phases })
         actors)
  in
  let idx name =
    match Hashtbl.find_opt by_name name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Csdf.of_lists: unknown actor %S" name)
  in
  let g_channels =
    Array.of_list
      (List.mapi
         (fun i (src, dst, prod_seq, cons_seq, tokens) ->
           let src = idx src and dst = idx dst in
           let prod_seq = Array.of_list prod_seq in
           let cons_seq = Array.of_list cons_seq in
           if Array.length prod_seq <> g_actors.(src).phases then
             invalid_arg "Csdf.of_lists: production sequence length mismatch";
           if Array.length cons_seq <> g_actors.(dst).phases then
             invalid_arg "Csdf.of_lists: consumption sequence length mismatch";
           if Array.exists (fun r -> r < 0) prod_seq
              || Array.exists (fun r -> r < 0) cons_seq
           then invalid_arg "Csdf.of_lists: negative rate";
           if Array.for_all (fun r -> r = 0) prod_seq then
             invalid_arg "Csdf.of_lists: channel never produced to";
           if Array.for_all (fun r -> r = 0) cons_seq then
             invalid_arg "Csdf.of_lists: channel never consumed from";
           if tokens < 0 then invalid_arg "Csdf.of_lists: negative tokens";
           {
             c_idx = i;
             c_name = Printf.sprintf "d%d" i;
             src;
             dst;
             prod_seq;
             cons_seq;
             tokens;
           })
         channels)
  in
  let n = Array.length g_actors in
  let g_out = Array.make n [] and g_in = Array.make n [] in
  for i = Array.length g_channels - 1 downto 0 do
    let c = g_channels.(i) in
    g_out.(c.src) <- c.c_idx :: g_out.(c.src);
    g_in.(c.dst) <- c.c_idx :: g_in.(c.dst)
  done;
  { g_actors; g_channels; g_out; g_in; g_by_name = by_name }

let num_actors g = Array.length g.g_actors
let num_channels g = Array.length g.g_channels
let actor g i = g.g_actors.(i)
let channel g i = g.g_channels.(i)

let actor_index g name =
  match Hashtbl.find_opt g.g_by_name name with
  | Some i -> i
  | None -> raise Not_found

let actor_name g i = g.g_actors.(i).a_name
let out_channels g a = g.g_out.(a)
let in_channels g a = g.g_in.(a)

let cycle_production c = Array.fold_left ( + ) 0 c.prod_seq
let cycle_consumption c = Array.fold_left ( + ) 0 c.cons_seq

type repetition =
  | Consistent of int array
  | Inconsistent of { channel : int }
  | Disconnected

exception Conflict of int

(* Propagate full-cycle rates (cycles per iteration) rationally, exactly as
   for SDF but over the cycle sums; phase firings = cycles * phases. *)
let repetition g =
  let n = num_actors g in
  if n = 0 then Consistent [||]
  else begin
    let rate = Array.make n Rat.zero in
    let seen = Array.make n false in
    let rec visit a =
      List.iter
        (fun ci ->
          let c = g.g_channels.(ci) in
          let r =
            Rat.mul_int
              (Rat.div_int rate.(a) (cycle_consumption c))
              (cycle_production c)
          in
          step c.dst r ci)
        g.g_out.(a);
      List.iter
        (fun ci ->
          let c = g.g_channels.(ci) in
          let r =
            Rat.mul_int
              (Rat.div_int rate.(a) (cycle_production c))
              (cycle_consumption c)
          in
          step c.src r ci)
        g.g_in.(a)
    and step b r ci =
      if seen.(b) then begin
        if not (Rat.equal rate.(b) r) then raise (Conflict ci)
      end
      else begin
        seen.(b) <- true;
        rate.(b) <- r;
        visit b
      end
    in
    seen.(0) <- true;
    rate.(0) <- Rat.one;
    match visit 0 with
    | () ->
        if not (Array.for_all Fun.id seen) then Disconnected
        else begin
          let l = Array.fold_left (fun acc r -> Rat.lcm acc (Rat.den r)) 1 rate in
          let cycles = Array.map (fun r -> Rat.num r * (l / Rat.den r)) rate in
          let gc = Array.fold_left Rat.gcd 0 cycles in
          Consistent
            (Array.mapi
               (fun a c -> c / gc * g.g_actors.(a).phases)
               cycles)
        end
    | exception Conflict ci -> Inconsistent { channel = ci }
  end

let is_deadlock_free g =
  match repetition g with
  | Inconsistent _ | Disconnected -> false
  | Consistent gamma ->
      let n = num_actors g in
      let remaining = Array.copy gamma in
      let phase = Array.make n 0 in
      let tokens = Array.map (fun c -> c.tokens) g.g_channels in
      let can_fire a =
        remaining.(a) > 0
        && List.for_all
             (fun ci ->
               let c = g.g_channels.(ci) in
               tokens.(ci) >= c.cons_seq.(phase.(a) mod g.g_actors.(a).phases))
             g.g_in.(a)
      in
      let fire a =
        let p = phase.(a) mod g.g_actors.(a).phases in
        remaining.(a) <- remaining.(a) - 1;
        List.iter
          (fun ci -> tokens.(ci) <- tokens.(ci) - (g.g_channels.(ci)).cons_seq.(p))
          g.g_in.(a);
        List.iter
          (fun ci -> tokens.(ci) <- tokens.(ci) + (g.g_channels.(ci)).prod_seq.(p))
          g.g_out.(a);
        phase.(a) <- phase.(a) + 1
      in
      let progress = ref true in
      while !progress do
        progress := false;
        for a = 0 to n - 1 do
          while can_fire a do
            fire a;
            progress := true
          done
        done
      done;
      Array.for_all (fun r -> r = 0) remaining

let lump ?(serialized = false) g =
  let b = Sdfg.Builder.create () in
  Array.iter (fun a -> ignore (Sdfg.Builder.add_actor b a.a_name)) g.g_actors;
  Array.iter
    (fun c ->
      ignore
        (Sdfg.Builder.add_channel b ~name:c.c_name ~tokens:c.tokens ~src:c.src
           ~dst:c.dst ~prod:(cycle_production c) ~cons:(cycle_consumption c)
           ()))
    g.g_channels;
  if serialized then
    Array.iter
      (fun a ->
        ignore
          (Sdfg.Builder.add_channel b
             ~name:(Printf.sprintf "self_%s" a.a_name)
             ~tokens:1 ~src:a.a_idx ~dst:a.a_idx ~prod:1 ~cons:1 ()))
      g.g_actors;
  Sdfg.Builder.build b

let lump_exec_times g taus =
  Array.mapi
    (fun a per_phase ->
      if Array.length per_phase <> g.g_actors.(a).phases then
        invalid_arg "Csdf.lump_exec_times: phase count mismatch";
      Array.fold_left ( + ) 0 per_phase)
    taus

let pp ppf g =
  Format.fprintf ppf "@[<v>CSDF: %d actors, %d channels@," (num_actors g)
    (num_channels g);
  Array.iter
    (fun a -> Format.fprintf ppf "  actor %s (%d phases)@," a.a_name a.phases)
    g.g_actors;
  Array.iter
    (fun c ->
      let seq s =
        String.concat "," (Array.to_list (Array.map string_of_int s))
      in
      Format.fprintf ppf "  %s: %s -(%s)-> (%s)- %s, tokens=%d@," c.c_name
        (actor_name g c.src) (seq c.prod_seq) (seq c.cons_seq)
        (actor_name g c.dst) c.tokens)
    g.g_channels;
  Format.fprintf ppf "@]"
