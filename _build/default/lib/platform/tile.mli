(** Processing tiles (paper Definition 3).

    A tile bundles one processor with a local memory and a network interface.
    The processor runs a TDMA wheel of [wheel] time units of which [occupied]
    are already reserved by other applications (the paper's Omega function);
    the remainder is available to the application(s) being mapped. The NI
    supports at most [max_conns] simultaneous connections and bounds the
    aggregate incoming/outgoing bandwidth. *)

type t = {
  t_idx : int;
  t_name : string;
  proc_type : string;  (** processor type, matched against Gamma *)
  wheel : int;  (** TDMA wheel size [w] (time units) *)
  mem : int;  (** memory size [m] (bits) *)
  max_conns : int;  (** NI connection count bound [c] *)
  in_bw : int;  (** max incoming bandwidth [i] (bits/time unit) *)
  out_bw : int;  (** max outgoing bandwidth [o] (bits/time unit) *)
  occupied : int;  (** already-occupied wheel time [Omega t] *)
}

val make :
  ?occupied:int ->
  idx:int ->
  name:string ->
  proc_type:string ->
  wheel:int ->
  mem:int ->
  max_conns:int ->
  in_bw:int ->
  out_bw:int ->
  unit ->
  t
(** @raise Invalid_argument on negative sizes or [occupied > wheel]. *)

val available_wheel : t -> int
(** [wheel - occupied]: the largest time slice an application can get. *)

val pp : Format.formatter -> t -> unit
