lib/platform/tile.ml: Format
