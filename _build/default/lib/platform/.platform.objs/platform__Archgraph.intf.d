lib/platform/archgraph.mli: Format Tile
