lib/platform/tile.mli: Format
