lib/platform/archgraph.ml: Array Format Hashtbl List Option Printf String Tile
