(** Architecture graphs (paper Definition 4).

    A set of tiles plus directed point-to-point connections, each with a
    fixed latency. The experiments of the paper use mesh-based platforms
    whose tiles communicate through a guaranteed-throughput NoC; a connection
    between any two tiles then exists logically, with a latency scaling with
    the hop distance — {!mesh} builds exactly that. *)

type connection = {
  k_idx : int;
  from_tile : int;
  to_tile : int;
  latency : int;  (** [L c >= 1], time units *)
}

type t

val make : Tile.t array -> connection list -> t
(** @raise Invalid_argument if tile indices are not dense/ordered, a
    connection references an unknown tile, a latency is not positive, or two
    connections share the same ordered tile pair. *)

val num_tiles : t -> int
val tile : t -> int -> Tile.t
val tiles : t -> Tile.t array
val connections : t -> connection array

val connection_between : t -> src:int -> dst:int -> connection option
(** The unique connection from one tile to another, if any. *)

val tile_index : t -> string -> int
(** @raise Not_found *)

val with_tiles : t -> Tile.t array -> t
(** Replace the tile array (same length/indices), keeping connections; used
    by the multi-application driver to account committed resources. *)

val mesh :
  ?wheel:int ->
  ?mem:int ->
  ?max_conns:int ->
  ?in_bw:int ->
  ?out_bw:int ->
  ?hop_latency:int ->
  rows:int ->
  cols:int ->
  proc_types:string array ->
  unit ->
  t
(** [mesh ~rows ~cols ~proc_types ()] builds a rows x cols platform with
    full logical connectivity; the connection latency between two tiles is
    [hop_latency * manhattan_distance]. Processor types are assigned round
    robin from [proc_types]. Defaults: [wheel = 100_000], [mem = 1_048_576],
    [max_conns = 8], [in_bw = out_bw = 96], [hop_latency = 2] — a platform in
    the spirit of the paper's 3x3 NoC-based MP-SoC, where connection latency
    is small compared to actor execution times. *)

val pp : Format.formatter -> t -> unit
