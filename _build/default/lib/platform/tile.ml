type t = {
  t_idx : int;
  t_name : string;
  proc_type : string;
  wheel : int;
  mem : int;
  max_conns : int;
  in_bw : int;
  out_bw : int;
  occupied : int;
}

let make ?(occupied = 0) ~idx ~name ~proc_type ~wheel ~mem ~max_conns ~in_bw
    ~out_bw () =
  if wheel < 0 || mem < 0 || max_conns < 0 || in_bw < 0 || out_bw < 0 then
    invalid_arg "Tile.make: negative resource size";
  if occupied < 0 || occupied > wheel then
    invalid_arg "Tile.make: occupied wheel time out of range";
  {
    t_idx = idx;
    t_name = name;
    proc_type;
    wheel;
    mem;
    max_conns;
    in_bw;
    out_bw;
    occupied;
  }

let available_wheel t = t.wheel - t.occupied

let pp ppf t =
  Format.fprintf ppf
    "tile %s: pt=%s wheel=%d(-%d) mem=%d conns=%d in=%d out=%d" t.t_name
    t.proc_type t.wheel t.occupied t.mem t.max_conns t.in_bw t.out_bw
