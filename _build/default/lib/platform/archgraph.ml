type connection = {
  k_idx : int;
  from_tile : int;
  to_tile : int;
  latency : int;
}

type t = {
  g_tiles : Tile.t array;
  g_conns : connection array;
  g_conn_idx : (int * int, int) Hashtbl.t;
}

let make tiles conns =
  Array.iteri
    (fun i t ->
      if t.Tile.t_idx <> i then
        invalid_arg "Archgraph.make: tile indices must be dense and ordered")
    tiles;
  let n = Array.length tiles in
  let g_conn_idx = Hashtbl.create 16 in
  let g_conns =
    Array.of_list
      (List.mapi
         (fun i c ->
           if c.from_tile < 0 || c.from_tile >= n || c.to_tile < 0
              || c.to_tile >= n
           then invalid_arg "Archgraph.make: connection tile out of range";
           if c.latency <= 0 then
             invalid_arg "Archgraph.make: latency must be positive";
           if Hashtbl.mem g_conn_idx (c.from_tile, c.to_tile) then
             invalid_arg "Archgraph.make: duplicate connection";
           Hashtbl.add g_conn_idx (c.from_tile, c.to_tile) i;
           { c with k_idx = i })
         conns)
  in
  { g_tiles = tiles; g_conns; g_conn_idx }

let num_tiles g = Array.length g.g_tiles
let tile g i = g.g_tiles.(i)
let tiles g = g.g_tiles
let connections g = g.g_conns

let connection_between g ~src ~dst =
  Option.map (fun i -> g.g_conns.(i)) (Hashtbl.find_opt g.g_conn_idx (src, dst))

let tile_index g name =
  match
    Array.find_opt (fun t -> String.equal t.Tile.t_name name) g.g_tiles
  with
  | Some t -> t.Tile.t_idx
  | None -> raise Not_found

let with_tiles g tiles =
  if Array.length tiles <> Array.length g.g_tiles then
    invalid_arg "Archgraph.with_tiles: tile count mismatch";
  { g with g_tiles = tiles }

let mesh ?(wheel = 100_000) ?(mem = 1_048_576) ?(max_conns = 8) ?(in_bw = 96)
    ?(out_bw = 96) ?(hop_latency = 2) ~rows ~cols ~proc_types () =
  if rows <= 0 || cols <= 0 then invalid_arg "Archgraph.mesh: empty mesh";
  if Array.length proc_types = 0 then
    invalid_arg "Archgraph.mesh: no processor types";
  let n = rows * cols in
  let tiles =
    Array.init n (fun i ->
        Tile.make ~idx:i
          ~name:(Printf.sprintf "t%d_%d" (i / cols) (i mod cols))
          ~proc_type:proc_types.(i mod Array.length proc_types)
          ~wheel ~mem ~max_conns ~in_bw ~out_bw ())
  in
  let conns = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let dist =
          abs ((u / cols) - (v / cols)) + abs ((u mod cols) - (v mod cols))
        in
        conns :=
          { k_idx = 0; from_tile = u; to_tile = v; latency = hop_latency * dist }
          :: !conns
      end
    done
  done;
  make tiles (List.rev !conns)

let pp ppf g =
  Format.fprintf ppf "@[<v>architecture: %d tiles, %d connections@,"
    (num_tiles g)
    (Array.length g.g_conns);
  Array.iter (fun t -> Format.fprintf ppf "  %a@," Tile.pp t) g.g_tiles;
  Format.fprintf ppf "@]"
