lib/baseline/hsdf_flow.mli: Sdf
