lib/baseline/hsdf_alloc.mli: Appmodel Core Platform
