lib/baseline/hsdf_alloc.ml: Appmodel Array Core Result Sdf Unix
