lib/baseline/hsdf_flow.ml: Analysis Array Obs Sdf Sys
