lib/baseline/hsdf_flow.ml: Analysis Array Sdf Sys
