module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Hsdf = Sdf.Hsdf
module Appgraph = Appmodel.Appgraph

let expand_app (app : Appgraph.t) =
  let g = app.Appgraph.graph in
  let gamma = Appgraph.gamma app in
  let h = Hsdf.convert g gamma in
  let hg = h.Hsdf.graph in
  let reqs =
    Array.map (fun (a, _) -> app.Appgraph.reqs.(a)) h.Hsdf.copy_of
  in
  let creqs =
    Array.mapi
      (fun hc origin ->
        let cr = app.Appgraph.creqs.(origin) in
        let tok = (Sdfg.channel hg hc).Sdfg.tokens in
        (* Per-precedence-edge buffers: the HSDF route cannot share one
           buffer across the expanded edges, so each edge needs room for
           its own token plus one in flight. *)
        Appgraph.
          {
            cr with
            alpha_tile = max cr.Appgraph.alpha_tile (tok + 1);
            alpha_src = max cr.Appgraph.alpha_src 1;
            alpha_dst = max cr.Appgraph.alpha_dst (max tok 1);
          })
      h.Hsdf.channel_of
  in
  let output_actor = h.Hsdf.copies.(app.Appgraph.output_actor).(0) in
  let lambda = Rat.div_int app.Appgraph.lambda gamma.(app.Appgraph.output_actor) in
  Appgraph.make
    ~name:(app.Appgraph.app_name ^ "_hsdf")
    ~graph:hg ~reqs ~creqs ~lambda ~output_actor

type comparison = {
  direct_seconds : float;
  direct_ok : bool;
  hsdf_actors : int;
  expand_seconds : float;
  hsdf_flow_seconds : float;
  hsdf_ok : bool;
}

let compare_allocation ?weights ?max_states ?(max_cycles = 10_000) app arch =
  let clock = Unix.gettimeofday in
  let t0 = clock () in
  let direct = Core.Strategy.allocate ?weights ?max_states ~max_cycles app arch in
  let t1 = clock () in
  let expanded = expand_app app in
  let t2 = clock () in
  let via_hsdf =
    Core.Strategy.allocate ?weights ?max_states ~max_cycles expanded arch
  in
  let t3 = clock () in
  {
    direct_seconds = t1 -. t0;
    direct_ok = Result.is_ok direct;
    hsdf_actors = Sdfg.num_actors expanded.Appgraph.graph;
    expand_seconds = t2 -. t1;
    hsdf_flow_seconds = t3 -. t2;
    hsdf_ok = Result.is_ok via_hsdf;
  }
