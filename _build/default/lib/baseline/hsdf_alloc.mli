module Appgraph = Appmodel.Appgraph

(** The full HSDF-route allocation baseline.

    Pre-existing strategies (paper Section 2) operate on homogeneous graphs:
    to allocate an SDFG they must first expand it. This module builds that
    pipeline so the paper's run-time argument can be measured end to end:
    the application graph is converted to its HSDF, every firing copy
    inherits the original actor's resource requirements, the per-token
    precedence channels inherit the original channel's Theta, and the
    throughput constraint is rescaled to the output copy's firing rate.
    The resulting application then runs through the very same
    binding/scheduling/slice-allocation machinery — which is exactly what
    makes the route expensive: every step now works on a graph that is
    [sum gamma] actors large.

    Caveats, faithful to what an HSDF-based tool would face: buffer
    requirements are attributed per precedence channel (an over-count the
    HSDF route cannot avoid without re-deriving channel groups), so memory
    pressure is higher than in the direct route. *)

val expand_app : Appgraph.t -> Appgraph.t
(** The HSDF application graph. Actor copies are named ["a#k"]; the output
    actor is the first copy of the original output actor, with the
    throughput constraint divided by [gamma output] (each copy fires once
    per iteration).
    @raise Invalid_argument on inconsistent graphs. *)

type comparison = {
  direct_seconds : float;  (** our flow on the SDFG *)
  direct_ok : bool;
  hsdf_actors : int;
  expand_seconds : float;  (** SDF -> HSDF application expansion *)
  hsdf_flow_seconds : float;  (** the same flow on the expansion *)
  hsdf_ok : bool;
}

val compare_allocation :
  ?weights:Core.Cost.weights ->
  ?max_states:int ->
  ?max_cycles:int ->
  Appgraph.t ->
  Platform.Archgraph.t ->
  comparison
(** Run both routes on the same platform and report wall-clock times.
    [max_cycles] (default 10_000) caps the Eqn.-1 cycle enumeration, which
    explodes on expanded graphs — precisely the cost the paper avoids. *)
