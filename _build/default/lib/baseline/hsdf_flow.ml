module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Hsdf = Sdf.Hsdf

type comparison = {
  sdfg_actors : int;
  hsdf_actors : int;
  throughput_sdfg : Rat.t;
  throughput_hsdf : Rat.t;
  sdfg_seconds : float;
  convert_seconds : float;
  mcr_seconds : float;
}

let throughput_via_hsdf g exec_times ~output =
  let gamma = Repetition.vector_exn g in
  let h = Hsdf.convert g gamma in
  let rate = Analysis.Mcr.hsdf_throughput h.Hsdf.graph (Hsdf.timing h exec_times) in
  if Rat.is_infinite rate then Rat.infinity else Rat.mul_int rate gamma.(output)

let compare_analysis ?max_states g exec_times ~output =
  let clock = Sys.time in
  let t0 = clock () in
  let st = Analysis.Selftimed.analyze ?max_states g exec_times in
  let t1 = clock () in
  let gamma = Repetition.vector_exn g in
  let h = Hsdf.convert g gamma in
  let t2 = clock () in
  let rate = Analysis.Mcr.hsdf_throughput h.Hsdf.graph (Hsdf.timing h exec_times) in
  let t3 = clock () in
  {
    sdfg_actors = Sdfg.num_actors g;
    hsdf_actors = Sdfg.num_actors h.Hsdf.graph;
    throughput_sdfg = st.Analysis.Selftimed.throughput.(output);
    throughput_hsdf =
      (if Rat.is_infinite rate then Rat.infinity else Rat.mul_int rate gamma.(output));
    sdfg_seconds = t1 -. t0;
    convert_seconds = t2 -. t1;
    mcr_seconds = t3 -. t2;
  }
