module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Hsdf = Sdf.Hsdf

type comparison = {
  sdfg_actors : int;
  hsdf_actors : int;
  throughput_sdfg : Rat.t;
  throughput_hsdf : Rat.t;
  sdfg_seconds : float;
  convert_seconds : float;
  mcr_seconds : float;
}

(* HSDF blow-up factor: the paper's run-time argument in one number
   (H.263: 4 actors expand to 4754). *)
let record_blowup g (h : Hsdf.t) =
  if Obs.enabled () then begin
    Obs.Counter.add "hsdf.conversions" 1;
    let sdfg_actors = Sdfg.num_actors g in
    let hsdf_actors = Sdfg.num_actors h.Hsdf.graph in
    Obs.Gauge.set_int "hsdf.actors" hsdf_actors;
    Obs.Gauge.set "hsdf.blowup"
      (float_of_int hsdf_actors /. float_of_int (max 1 sdfg_actors))
  end

let throughput_via_hsdf g exec_times ~output =
  let gamma = Repetition.vector_exn g in
  let h = Hsdf.convert g gamma in
  record_blowup g h;
  let rate = Analysis.Mcr.hsdf_throughput h.Hsdf.graph (Hsdf.timing h exec_times) in
  if Rat.is_infinite rate then Rat.infinity else Rat.mul_int rate gamma.(output)

let compare_analysis ?max_states g exec_times ~output =
  let clock = Sys.time in
  let t0 = clock () in
  let st = Analysis.Selftimed.analyze ?max_states g exec_times in
  let t1 = clock () in
  let gamma = Repetition.vector_exn g in
  let h = Hsdf.convert g gamma in
  let t2 = clock () in
  let rate = Analysis.Mcr.hsdf_throughput h.Hsdf.graph (Hsdf.timing h exec_times) in
  let t3 = clock () in
  record_blowup g h;
  Obs.Timer.record "hsdf.analysis.sdfg" (t1 -. t0);
  Obs.Timer.record "hsdf.analysis.convert" (t2 -. t1);
  Obs.Timer.record "hsdf.analysis.mcr" (t3 -. t2);
  {
    sdfg_actors = Sdfg.num_actors g;
    hsdf_actors = Sdfg.num_actors h.Hsdf.graph;
    throughput_sdfg = st.Analysis.Selftimed.throughput.(output);
    throughput_hsdf =
      (if Rat.is_infinite rate then Rat.infinity else Rat.mul_int rate gamma.(output));
    sdfg_seconds = t1 -. t0;
    convert_seconds = t2 -. t1;
    mcr_seconds = t3 -. t2;
  }
