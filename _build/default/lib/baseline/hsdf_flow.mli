module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(** The HSDF-based analysis baseline (paper Sections 1 and 10.3).

    Every pre-existing resource-allocation strategy for time-constrained
    dataflow works on the homogeneous expansion of the SDFG and computes
    throughput with a maximum-cycle-ratio algorithm on it. This module
    packages that pipeline — convert, lift the timing, run MCR — with
    wall-clock instrumentation, so the benches can reproduce the paper's
    run-time argument: the expansion blows the problem up by the repetition
    vector sum (H.263: 4 actors to 4754), making each throughput check
    orders of magnitude more expensive than the state-space check on the
    original SDFG. *)

type comparison = {
  sdfg_actors : int;
  hsdf_actors : int;
  throughput_sdfg : Rat.t;  (** of the output actor, by state-space analysis *)
  throughput_hsdf : Rat.t;
      (** of the output actor, via [gamma output / MCR] on the expansion *)
  sdfg_seconds : float;  (** state-space analysis time *)
  convert_seconds : float;  (** SDF -> HSDF conversion time *)
  mcr_seconds : float;  (** MCR on the expansion *)
}

val throughput_via_hsdf : Sdfg.t -> int array -> output:int -> Rat.t
(** Convert and run MCR; the output actor's rate is [gamma output / MCR].
    @raise Invalid_argument on inconsistent or deadlocked graphs. *)

val compare_analysis :
  ?max_states:int -> Sdfg.t -> int array -> output:int -> comparison
(** Run both analyses on the same graph and timing; the two throughput
    values must agree on strongly connected graphs (the test suite uses
    this as a cross-validation oracle). *)
