module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Xml = Sdf.Xml
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let int_attr node name =
  match Xml.attr_opt node name with
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> error "attribute %s=%S is not an integer" name v)
  | None -> error "missing attribute %s on <%s>" name (Xml.tag node)

let int_attr_default node name default =
  match Xml.attr_opt node name with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> error "attribute %s=%S is not an integer" name v)

let str_attr node name =
  match Xml.attr_opt node name with
  | Some v -> v
  | None -> error "missing attribute %s on <%s>" name (Xml.tag node)

let rat_attr node name =
  let v = str_attr node name in
  match String.split_on_char '/' v with
  | [ n ] -> (
      match int_of_string_opt n with
      | Some n -> Rat.of_int n
      | None -> error "attribute %s=%S is not a rational" name v)
  | [ n; d ] -> (
      match (int_of_string_opt n, int_of_string_opt d) with
      | Some n, Some d when d <> 0 -> Rat.make n d
      | _ -> error "attribute %s=%S is not a rational" name v)
  | _ -> error "attribute %s=%S is not a rational" name v

(* --------------------------- application --------------------------- *)

let app_to_xml (app : Appgraph.t) =
  let g = app.Appgraph.graph in
  let out_port ci = Printf.sprintf "out_%s" (Sdfg.channel_name g ci) in
  let in_port ci = Printf.sprintf "in_%s" (Sdfg.channel_name g ci) in
  let actor_elem a =
    let ports =
      List.map
        (fun ci ->
          let c = Sdfg.channel g ci in
          Xml.Element
            ( "port",
              [
                ("name", out_port ci); ("type", "out");
                ("rate", string_of_int c.Sdfg.prod);
              ],
              [] ))
        (Sdfg.out_channels g a)
      @ List.map
          (fun ci ->
            let c = Sdfg.channel g ci in
            Xml.Element
              ( "port",
                [
                  ("name", in_port ci); ("type", "in");
                  ("rate", string_of_int c.Sdfg.cons);
                ],
                [] ))
          (Sdfg.in_channels g a)
    in
    Xml.Element ("actor", [ ("name", Sdfg.actor_name g a) ], ports)
  in
  let channel_elem (c : Sdfg.channel) =
    let attrs =
      [
        ("name", c.Sdfg.c_name);
        ("srcActor", Sdfg.actor_name g c.Sdfg.src);
        ("srcPort", out_port c.Sdfg.c_idx);
        ("dstActor", Sdfg.actor_name g c.Sdfg.dst);
        ("dstPort", in_port c.Sdfg.c_idx);
      ]
      @ if c.Sdfg.tokens > 0 then [ ("initialTokens", string_of_int c.Sdfg.tokens) ] else []
    in
    Xml.Element ("channel", attrs, [])
  in
  let sdf =
    Xml.Element
      ( "sdf",
        [ ("name", app.Appgraph.app_name) ],
        List.init (Sdfg.num_actors g) actor_elem
        @ Array.to_list (Array.map channel_elem (Sdfg.channels g)) )
  in
  let actor_props a =
    let processors =
      List.map
        (fun (pt, r) ->
          Xml.Element
            ( "processor",
              [ ("type", pt) ],
              [
                Xml.Element
                  ("executionTime", [ ("time", string_of_int r.Appgraph.exec_time) ], []);
                Xml.Element ("memory", [ ("stateSize", string_of_int r.Appgraph.memory) ], []);
              ] ))
        app.Appgraph.reqs.(a)
    in
    Xml.Element ("actorProperties", [ ("actor", Sdfg.actor_name g a) ], processors)
  in
  let channel_props ci (cr : Appgraph.channel_req) =
    Xml.Element
      ( "channelProperties",
        [
          ("channel", Sdfg.channel_name g ci);
          ("tokenSize", string_of_int cr.Appgraph.token_size);
          ("bufferTile", string_of_int cr.Appgraph.alpha_tile);
          ("bufferSrc", string_of_int cr.Appgraph.alpha_src);
          ("bufferDst", string_of_int cr.Appgraph.alpha_dst);
          ("bandwidth", string_of_int cr.Appgraph.bandwidth);
        ],
        [] )
  in
  let graph_props =
    Xml.Element
      ( "graphProperties",
        [],
        [
          Xml.Element
            ( "timeConstraints",
              [
                ("throughput", Rat.to_string app.Appgraph.lambda);
                ("outputActor", Sdfg.actor_name g app.Appgraph.output_actor);
              ],
              [] );
        ] )
  in
  let properties =
    Xml.Element
      ( "sdfProperties",
        [],
        List.init (Sdfg.num_actors g) actor_props
        @ Array.to_list (Array.mapi channel_props app.Appgraph.creqs)
        @ [ graph_props ] )
  in
  Xml.Element
    ( "sdf3",
      [ ("type", "sdf"); ("version", "1.0") ],
      [
        Xml.Element
          ("applicationGraph", [ ("name", app.Appgraph.app_name) ], [ sdf; properties ]);
      ] )

let app_of_xml root =
  if Xml.tag root <> "sdf3" then error "expected <sdf3> root, got <%s>" (Xml.tag root);
  let ag =
    match Xml.child_opt root "applicationGraph" with
    | Some ag -> ag
    | None -> error "missing <applicationGraph>"
  in
  let sdf =
    match Xml.child_opt ag "sdf" with
    | Some s -> s
    | None -> error "missing <sdf>"
  in
  let b = Sdfg.Builder.create () in
  let actor_ids = Hashtbl.create 16 in
  (* Ports carry the rates; remember them per (actor, port name). *)
  let port_rate = Hashtbl.create 64 in
  List.iter
    (fun actor ->
      let name = str_attr actor "name" in
      if Hashtbl.mem actor_ids name then error "duplicate actor %S" name;
      Hashtbl.add actor_ids name (Sdfg.Builder.add_actor b name);
      List.iter
        (fun port ->
          Hashtbl.replace port_rate (name, str_attr port "name") (int_attr port "rate"))
        (Xml.children actor "port"))
    (Xml.children sdf "actor");
  let actor_id node attr_name =
    let name = str_attr node attr_name in
    match Hashtbl.find_opt actor_ids name with
    | Some i -> i
    | None -> error "unknown actor %S" name
  in
  let channel_ids = Hashtbl.create 16 in
  List.iter
    (fun ch ->
      let name = str_attr ch "name" in
      let src_name = str_attr ch "srcActor" and dst_name = str_attr ch "dstActor" in
      let rate who actor port =
        match Hashtbl.find_opt port_rate (actor, port) with
        | Some r -> r
        | None -> error "channel %S references unknown %s port %S" name who port
      in
      let prod = rate "source" src_name (str_attr ch "srcPort") in
      let cons = rate "destination" dst_name (str_attr ch "dstPort") in
      let idx =
        Sdfg.Builder.add_channel b ~name
          ~tokens:(int_attr_default ch "initialTokens" 0)
          ~src:(actor_id ch "srcActor") ~dst:(actor_id ch "dstActor") ~prod
          ~cons ()
      in
      Hashtbl.add channel_ids name idx)
    (Xml.children sdf "channel");
  let graph = Sdfg.Builder.build b in
  let props =
    match Xml.child_opt ag "sdfProperties" with
    | Some p -> p
    | None -> error "missing <sdfProperties>"
  in
  let reqs = Array.make (Sdfg.num_actors graph) [] in
  List.iter
    (fun ap ->
      let a = actor_id ap "actor" in
      let options =
        List.map
          (fun proc ->
            let tau = int_attr (Xml.child proc "executionTime") "time" in
            let mem =
              match Xml.child_opt proc "memory" with
              | Some m -> int_attr m "stateSize"
              | None -> 0
            in
            (str_attr proc "type", Appgraph.{ exec_time = tau; memory = mem }))
          (Xml.children ap "processor")
      in
      reqs.(a) <- options)
    (Xml.children props "actorProperties");
  let creqs =
    Array.make (Sdfg.num_channels graph)
      Appgraph.
        { token_size = 0; alpha_tile = 0; alpha_src = 0; alpha_dst = 0;
          bandwidth = 0 }
  in
  let creq_seen = Array.make (Sdfg.num_channels graph) false in
  List.iter
    (fun cp ->
      let name = str_attr cp "channel" in
      let ci =
        match Hashtbl.find_opt channel_ids name with
        | Some i -> i
        | None -> error "properties for unknown channel %S" name
      in
      creq_seen.(ci) <- true;
      creqs.(ci) <-
        Appgraph.
          {
            token_size = int_attr cp "tokenSize";
            alpha_tile = int_attr cp "bufferTile";
            alpha_src = int_attr cp "bufferSrc";
            alpha_dst = int_attr cp "bufferDst";
            bandwidth = int_attr cp "bandwidth";
          })
    (Xml.children props "channelProperties");
  Array.iteri
    (fun ci seen ->
      if not seen then
        error "missing <channelProperties> for channel %S"
          (Sdfg.channel_name graph ci))
    creq_seen;
  let tc =
    match Xml.child_opt props "graphProperties" with
    | Some gp -> (
        match Xml.child_opt gp "timeConstraints" with
        | Some tc -> tc
        | None -> error "missing <timeConstraints>")
    | None -> error "missing <graphProperties>"
  in
  let lambda = rat_attr tc "throughput" in
  let output_actor =
    match Hashtbl.find_opt actor_ids (str_attr tc "outputActor") with
    | Some i -> i
    | None -> error "unknown output actor"
  in
  Appgraph.make ~name:(str_attr ag "name") ~graph ~reqs ~creqs ~lambda
    ~output_actor

let app_to_string app = Xml.to_string (app_to_xml app)
let app_of_string s = app_of_xml (Xml.parse s)

let write_app_file path app =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (app_to_string app))

let read_app_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> app_of_string (In_channel.input_all ic))

(* --------------------------- architecture -------------------------- *)

let arch_to_xml ~name arch =
  let tile_elem (t : Tile.t) =
    Xml.Element
      ( "tile",
        [
          ("name", t.Tile.t_name);
          ("processorType", t.Tile.proc_type);
          ("timewheel", string_of_int t.Tile.wheel);
          ("memory", string_of_int t.Tile.mem);
          ("connections", string_of_int t.Tile.max_conns);
          ("inBandwidth", string_of_int t.Tile.in_bw);
          ("outBandwidth", string_of_int t.Tile.out_bw);
          ("occupied", string_of_int t.Tile.occupied);
        ],
        [] )
  in
  let conn_elem (c : Archgraph.connection) =
    Xml.Element
      ( "connection",
        [
          ("name", Printf.sprintf "cn-%d" c.Archgraph.k_idx);
          ("srcTile", (Archgraph.tile arch c.Archgraph.from_tile).Tile.t_name);
          ("dstTile", (Archgraph.tile arch c.Archgraph.to_tile).Tile.t_name);
          ("latency", string_of_int c.Archgraph.latency);
        ],
        [] )
  in
  Xml.Element
    ( "sdf3",
      [ ("type", "sdf"); ("version", "1.0") ],
      [
        Xml.Element
          ( "architectureGraph",
            [ ("name", name) ],
            Array.to_list (Array.map tile_elem (Archgraph.tiles arch))
            @ Array.to_list (Array.map conn_elem (Archgraph.connections arch)) );
      ] )

let arch_of_xml root =
  if Xml.tag root <> "sdf3" then error "expected <sdf3> root";
  let ag =
    match Xml.child_opt root "architectureGraph" with
    | Some ag -> ag
    | None -> error "missing <architectureGraph>"
  in
  let tiles =
    List.mapi
      (fun i t ->
        Tile.make ~idx:i ~name:(str_attr t "name")
          ~proc_type:(str_attr t "processorType")
          ~wheel:(int_attr t "timewheel") ~mem:(int_attr t "memory")
          ~max_conns:(int_attr t "connections")
          ~in_bw:(int_attr t "inBandwidth") ~out_bw:(int_attr t "outBandwidth")
          ~occupied:(int_attr_default t "occupied" 0) ())
      (Xml.children ag "tile")
    |> Array.of_list
  in
  let tile_index name =
    match Array.find_opt (fun t -> t.Tile.t_name = name) tiles with
    | Some t -> t.Tile.t_idx
    | None -> error "connection references unknown tile %S" name
  in
  let conns =
    List.map
      (fun c ->
        {
          Archgraph.k_idx = 0;
          from_tile = tile_index (str_attr c "srcTile");
          to_tile = tile_index (str_attr c "dstTile");
          latency = int_attr c "latency";
        })
      (Xml.children ag "connection")
  in
  (str_attr ag "name", Archgraph.make tiles conns)

let arch_to_string ~name arch = Xml.to_string (arch_to_xml ~name arch)
let arch_of_string s = arch_of_xml (Xml.parse s)

let write_arch_file path ~name arch =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (arch_to_string ~name arch))

let read_arch_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> arch_of_string (In_channel.input_all ic))
