lib/appmodel/appgraph.ml: Array Format List Option Printf Sdf
