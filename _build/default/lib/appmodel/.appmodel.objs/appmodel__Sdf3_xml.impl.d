lib/appmodel/sdf3_xml.ml: Appgraph Array Fun Hashtbl In_channel List Platform Printf Sdf String
