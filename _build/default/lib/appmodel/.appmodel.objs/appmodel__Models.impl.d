lib/appmodel/models.ml: Appgraph Array List Platform Sdf
