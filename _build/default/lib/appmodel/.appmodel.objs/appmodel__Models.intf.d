lib/appmodel/models.mli: Appgraph Platform Sdf
