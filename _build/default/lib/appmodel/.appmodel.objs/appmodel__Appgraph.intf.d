lib/appmodel/appgraph.mli: Format Sdf
