lib/appmodel/sdf3_xml.mli: Appgraph Platform Sdf
