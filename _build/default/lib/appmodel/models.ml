module Tile = Platform.Tile
module Archgraph = Platform.Archgraph
module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

let proc = "proc"
let acc = "acc"

(* ---------------------------------------------------------------- *)
(* Running example: Fig. 3 graph with Tab. 2 requirements.           *)
(* ---------------------------------------------------------------- *)

let example_app () =
  let graph =
    Sdfg.of_lists ~actors:[ "a1"; "a2"; "a3" ]
      ~channels:
        [
          ("a1", "a2", 1, 1, 0); (* d1 *)
          ("a2", "a3", 1, 2, 0); (* d2 *)
          ("a1", "a1", 1, 1, 1); (* d3 *)
        ]
  in
  let reqs =
    [|
      [ ("p1", Appgraph.{ exec_time = 1; memory = 10 });
        ("p2", Appgraph.{ exec_time = 4; memory = 15 }) ];
      [ ("p1", Appgraph.{ exec_time = 1; memory = 7 });
        ("p2", Appgraph.{ exec_time = 7; memory = 19 }) ];
      [ ("p1", Appgraph.{ exec_time = 3; memory = 13 });
        ("p2", Appgraph.{ exec_time = 2; memory = 10 }) ];
    |]
  in
  let creqs =
    [|
      Appgraph.
        { token_size = 7; alpha_tile = 1; alpha_src = 2; alpha_dst = 2;
          bandwidth = 100 };
      Appgraph.
        { token_size = 100; alpha_tile = 2; alpha_src = 2; alpha_dst = 2;
          bandwidth = 10 };
      Appgraph.
        { token_size = 1; alpha_tile = 1; alpha_src = 0; alpha_dst = 0;
          bandwidth = 0 };
    |]
  in
  Appgraph.make ~name:"example" ~graph ~reqs ~creqs ~lambda:(Rat.make 1 30)
    ~output_actor:2

let example_platform () =
  let t1 =
    Tile.make ~idx:0 ~name:"t1" ~proc_type:"p1" ~wheel:10 ~mem:700 ~max_conns:5
      ~in_bw:100 ~out_bw:100 ()
  in
  let t2 =
    Tile.make ~idx:1 ~name:"t2" ~proc_type:"p2" ~wheel:10 ~mem:500 ~max_conns:7
      ~in_bw:100 ~out_bw:100 ()
  in
  Archgraph.make [| t1; t2 |]
    [
      { Archgraph.k_idx = 0; from_tile = 0; to_tile = 1; latency = 1 };
      { Archgraph.k_idx = 1; from_tile = 1; to_tile = 0; latency = 1 };
    ]

(* ---------------------------------------------------------------- *)
(* H.263 decoder (QCIF): 4 actors, repetition vector (1,2376,2376,1). *)
(* ---------------------------------------------------------------- *)

let h263 ?(name = "h263") ?(lambda = Rat.make 1 15_000_000) () =
  let graph =
    Sdfg.of_lists ~actors:[ "vld"; "iq"; "idct"; "mc" ]
      ~channels:
        [
          ("vld", "iq", 2376, 1, 0);
          ("iq", "idct", 1, 1, 0);
          ("idct", "mc", 1, 2376, 0);
          ("mc", "vld", 1, 1, 1); (* frame feedback *)
        ]
  in
  (* Execution times are cycle budgets in the ballpark of published QCIF
     H.263 profiles; the accelerator speeds up the block-level kernels. *)
  let r t m = Appgraph.{ exec_time = t; memory = m } in
  let reqs =
    [|
      [ (proc, r 26018 4096) ];
      [ (proc, r 559 1024); (acc, r 280 1024) ];
      [ (proc, r 486 2048); (acc, r 250 2048) ];
      [ (proc, r 10958 38016); (acc, r 5479 38016) ];
    |]
  in
  let c ~sz ~t ~s ~d ~b =
    Appgraph.
      { token_size = sz; alpha_tile = t; alpha_src = s; alpha_dst = d;
        bandwidth = b }
  in
  let creqs =
    [|
      (* vld produces a frame's worth of coefficient blocks per firing, so
         the buffer must hold one iteration (2376 blocks of 1024 bits). *)
      c ~sz:1024 ~t:2376 ~s:2376 ~d:2 ~b:24; (* vld -> iq *)
      c ~sz:1024 ~t:2 ~s:2 ~d:2 ~b:24; (* iq -> idct: block at a time *)
      (* mc consumes a frame's worth of pixel blocks (512 bits each). *)
      c ~sz:512 ~t:2376 ~s:2 ~d:2376 ~b:24; (* idct -> mc *)
      c ~sz:304_128 ~t:2 ~s:1 ~d:1 ~b:32; (* mc -> vld: reference frame *)
    |]
  in
  Appgraph.make ~name ~graph ~reqs ~creqs ~lambda ~output_actor:3

(* ---------------------------------------------------------------- *)
(* MP3 decoder: 13 single-rate actors (HSDFG = 13 actors, so the      *)
(* Sec. 10.3 system totals 3*4754 + 13 = 14275 HSDF actors).          *)
(* ---------------------------------------------------------------- *)

let mp3 ?(name = "mp3") ?(lambda = Rat.make 1 400_000) () =
  let actors =
    [
      "huffman"; "req_l"; "req_r"; "reorder_l"; "reorder_r"; "stereo";
      "antialias_l"; "antialias_r"; "hybrid_l"; "hybrid_r"; "freqinv_l";
      "freqinv_r"; "subband";
    ]
  in
  let channels =
    [
      ("huffman", "req_l", 1, 1, 0);
      ("huffman", "req_r", 1, 1, 0);
      ("req_l", "reorder_l", 1, 1, 0);
      ("req_r", "reorder_r", 1, 1, 0);
      ("reorder_l", "stereo", 1, 1, 0);
      ("reorder_r", "stereo", 1, 1, 0);
      ("stereo", "antialias_l", 1, 1, 0);
      ("stereo", "antialias_r", 1, 1, 0);
      ("antialias_l", "hybrid_l", 1, 1, 0);
      ("antialias_r", "hybrid_r", 1, 1, 0);
      ("hybrid_l", "freqinv_l", 1, 1, 0);
      ("hybrid_r", "freqinv_r", 1, 1, 0);
      ("freqinv_l", "subband", 1, 1, 0);
      ("freqinv_r", "subband", 1, 1, 0);
      ("subband", "huffman", 1, 1, 2); (* pipeline-depth feedback *)
    ]
  in
  let graph = Sdfg.of_lists ~actors ~channels in
  let r t m = Appgraph.{ exec_time = t; memory = m } in
  let both t m ta = [ (proc, r t m); (acc, r ta m) ] in
  let reqs =
    [|
      [ (proc, r 25000 8192) ]; (* huffman: control heavy, cpu only *)
      both 1600 1024 800; both 1600 1024 800; (* req *)
      both 1100 1024 600; both 1100 1024 600; (* reorder *)
      [ (proc, r 1900 2048) ]; (* stereo *)
      both 900 1024 450; both 900 1024 450; (* antialias *)
      both 7700 4096 3850; both 7700 4096 3850; (* hybrid (imdct) *)
      both 500 512 250; both 500 512 250; (* freqinv *)
      both 11000 8192 5500; (* subband synthesis *)
    |]
  in
  let c ~sz =
    Appgraph.
      { token_size = sz; alpha_tile = 2; alpha_src = 2; alpha_dst = 2;
        bandwidth = 16 }
  in
  let creqs = Array.make (List.length channels) (c ~sz:4608) in
  creqs.(14) <- c ~sz:64;
  Appgraph.make ~name ~graph ~reqs ~creqs ~lambda ~output_actor:12

(* ---------------------------------------------------------------- *)
(* JPEG decoder: block pipeline with 4:2:0 MCUs (6 blocks per MCU).    *)
(* ---------------------------------------------------------------- *)

let jpeg ?(name = "jpeg") ?(lambda = Rat.make 1 600_000) () =
  let graph =
    Sdfg.of_lists
      ~actors:[ "parse"; "vld"; "izz"; "iq"; "idct"; "cc" ]
      ~channels:
        [
          ("parse", "vld", 1, 1, 0);
          ("vld", "izz", 6, 1, 0); (* one MCU = 6 blocks (4:2:0) *)
          ("izz", "iq", 1, 1, 0);
          ("iq", "idct", 1, 1, 0);
          ("idct", "cc", 1, 6, 0); (* cc assembles a whole MCU *)
          ("cc", "parse", 1, 1, 1); (* MCU feedback *)
        ]
  in
  let r t m = Appgraph.{ exec_time = t; memory = m } in
  let reqs =
    [|
      [ (proc, r 1200 4096) ]; (* header/stream parsing: cpu only *)
      [ (proc, r 900 2048); (acc, r 450 2048) ];
      [ (proc, r 120 256); (acc, r 60 256) ];
      [ (proc, r 150 512); (acc, r 75 512) ];
      [ (proc, r 620 2048); (acc, r 310 2048) ];
      [ (proc, r 800 4096) ];
    |]
  in
  let c ~sz ~t ~s ~d =
    Appgraph.
      { token_size = sz; alpha_tile = t; alpha_src = s; alpha_dst = d;
        bandwidth = 24 }
  in
  let creqs =
    [|
      c ~sz:512 ~t:2 ~s:2 ~d:2;
      c ~sz:1024 ~t:7 ~s:7 ~d:2; (* whole MCU buffered *)
      c ~sz:1024 ~t:2 ~s:2 ~d:2;
      c ~sz:1024 ~t:2 ~s:2 ~d:2;
      c ~sz:512 ~t:7 ~s:2 ~d:7;
      c ~sz:64 ~t:3 ~s:2 ~d:3;
    |]
  in
  Appgraph.make ~name ~graph ~reqs ~creqs ~lambda ~output_actor:5

(* ---------------------------------------------------------------- *)
(* WLAN 802.11a receiver chain: OFDM symbol pipeline.                  *)
(* ---------------------------------------------------------------- *)

let wlan ?(name = "wlan") ?(lambda = Rat.make 1 160_000) () =
  let graph =
    Sdfg.of_lists
      ~actors:
        [ "adc"; "sync"; "fft"; "demap"; "deint"; "viterbi"; "descr"; "mac" ]
      ~channels:
        [
          ("adc", "sync", 64, 64, 0); (* one OFDM symbol = 64 samples *)
          ("sync", "fft", 64, 64, 0);
          ("fft", "demap", 64, 64, 0);
          ("demap", "deint", 48, 48, 0); (* 48 data carriers *)
          ("deint", "viterbi", 48, 48, 0);
          ("viterbi", "descr", 24, 24, 0); (* rate-1/2 code *)
          ("descr", "mac", 24, 24, 0);
          ("mac", "adc", 1, 1, 2); (* symbol-pacing feedback *)
        ]
  in
  let r t m = Appgraph.{ exec_time = t; memory = m } in
  let reqs =
    [|
      [ (proc, r 600 1024) ];
      [ (proc, r 2200 2048); (acc, r 1100 2048) ];
      [ (proc, r 4200 4096); (acc, r 1400 4096) ]; (* fft loves the acc *)
      [ (proc, r 900 1024); (acc, r 450 1024) ];
      [ (proc, r 700 1024); (acc, r 350 1024) ];
      [ (proc, r 9800 8192); (acc, r 3266 8192) ]; (* viterbi dominates *)
      [ (proc, r 500 512) ];
      [ (proc, r 1500 4096) ];
    |]
  in
  let c ~sz ~cap =
    Appgraph.
      { token_size = sz; alpha_tile = cap; alpha_src = cap; alpha_dst = cap;
        bandwidth = 32 }
  in
  let creqs =
    [|
      c ~sz:32 ~cap:128; c ~sz:32 ~cap:128; c ~sz:32 ~cap:128;
      c ~sz:16 ~cap:96; c ~sz:16 ~cap:96; c ~sz:8 ~cap:48; c ~sz:8 ~cap:48;
      c ~sz:16 ~cap:4;
    |]
  in
  Appgraph.make ~name ~graph ~reqs ~creqs ~lambda ~output_actor:7

(* ---------------------------------------------------------------- *)
(* 2x2 multimedia platform of Sec. 10.3.                              *)
(* ---------------------------------------------------------------- *)

let multimedia_platform () =
  let tile idx name pt =
    Tile.make ~idx ~name ~proc_type:pt ~wheel:100 ~mem:8_388_608 ~max_conns:16
      ~in_bw:256 ~out_bw:256 ()
  in
  let tiles =
    [|
      tile 0 "proc0" proc; tile 1 "proc1" proc; tile 2 "acc0" acc;
      tile 3 "acc1" acc;
    |]
  in
  let conns = ref [] in
  for u = 0 to 3 do
    for v = 0 to 3 do
      if u <> v then
        conns :=
          { Archgraph.k_idx = 0; from_tile = u; to_tile = v; latency = 2 }
          :: !conns
    done
  done;
  Archgraph.make tiles (List.rev !conns)
