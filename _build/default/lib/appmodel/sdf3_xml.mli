module Archgraph = Platform.Archgraph

(** SDF3-style XML serialisation of application and architecture graphs.

    The SDF3 tool set (the paper's [22]) exchanges models as XML documents
    rooted at [<sdf3>]; this module reads and writes a faithful subset:

    {v
    <sdf3 type="sdf" version="1.0">
      <applicationGraph name="...">
        <sdf name="...">
          <actor name="a1"> <port name="p0" type="out" rate="2"/> ... </actor>
          <channel name="d0" srcActor="a1" srcPort="p0"
                   dstActor="a2" dstPort="p1" initialTokens="1"/>
        </sdf>
        <sdfProperties>
          <actorProperties actor="a1">
            <processor type="p1">
              <executionTime time="1"/> <memory stateSize="10"/>
            </processor>
          </actorProperties>
          <channelProperties channel="d0" tokenSize="7" bufferTile="1"
                             bufferSrc="2" bufferDst="2" bandwidth="100"/>
          <graphProperties>
            <timeConstraints throughput="1/30" outputActor="a3"/>
          </graphProperties>
        </sdfProperties>
      </applicationGraph>
    </sdf3>
    v}

    Deviation from SDF3: throughput constraints are written as exact
    rationals (["1/30"]) rather than decimal fractions, preserving the
    library's exact arithmetic across a round trip.

    Architecture graphs use [<architectureGraph>] with [<tile>] and
    [<connection>] elements carrying the Definition-3/4 attributes. *)

exception Error of string
(** Raised by the [of_*] functions on documents that parse as XML but do
    not match the schema. *)

(** {1 Application graphs} *)

val app_to_xml : Appgraph.t -> Sdf.Xml.t
val app_of_xml : Sdf.Xml.t -> Appgraph.t
val app_to_string : Appgraph.t -> string

val app_of_string : string -> Appgraph.t
(** @raise Error or {!Sdf.Xml.Parse_error}. *)

val write_app_file : string -> Appgraph.t -> unit
val read_app_file : string -> Appgraph.t

(** {1 Architecture graphs} *)

val arch_to_xml : name:string -> Archgraph.t -> Sdf.Xml.t
val arch_of_xml : Sdf.Xml.t -> string * Archgraph.t
val arch_to_string : name:string -> Archgraph.t -> string
val arch_of_string : string -> string * Archgraph.t
val write_arch_file : string -> name:string -> Archgraph.t -> unit
val read_arch_file : string -> string * Archgraph.t
