module Tile = Platform.Tile
module Archgraph = Platform.Archgraph
module Rat = Sdf.Rat

(** Concrete application and platform models used by the paper.

    - The running example: the SDFG of Fig. 3 with the requirements of
      Tab. 2, and the two-tile platform of Fig. 2 / Tab. 1. The graph is
      reconstructed from the constraints stated in the text (Sec. 8.2):
      the plain graph must reach throughput 1/2 for a3, the binding-aware
      graph 1/29 and the schedule/TDMA-constrained execution 1/30 — the
      reconstruction below reproduces all three exactly (validated in the
      test suite).
    - The H.263 decoder of Fig. 1: 4 actors, repetition vector
      (1, 2376, 2376, 1), so its HSDFG has the 4754 actors quoted in Sec. 1.
    - A 13-actor MP3 decoder (Sec. 10.3); single-rate, so the multimedia
      system of Sec. 10.3 (3 x H.263 + MP3) totals 14275 HSDF actors as the
      paper states.
    - The 2x2 multimedia platform of Sec. 10.3 (2 generic processors, 2
      accelerators). *)

(** {1 Running example (Figs. 2-5, Tabs. 1-3)} *)

val example_app : unit -> Appgraph.t
(** Actors a1, a2, a3; channels d1 = a1->a2 (1,1), d2 = a2->a3 (1,2),
    d3 = a1->a1 (1,1) with one initial token. Gamma/Theta as in Tab. 2;
    throughput constraint 1/30 on a3. *)

val example_platform : unit -> Archgraph.t
(** Tiles t1 (type p1) and t2 (type p2) with the resources of Tab. 1 and
    unit-latency connections both ways. *)

(** {1 H.263 decoder (Fig. 1, Sec. 10.3)} *)

val h263 : ?name:string -> ?lambda:Rat.t -> unit -> Appgraph.t
(** Actors vld -> iq -> idct -> mc with rates (2376,1), (1,1), (1,2376) and
    a one-token feedback channel mc -> vld. Output actor: mc.
    Default [lambda] suits the Sec. 10.3 platform. *)

(** {1 MP3 decoder (Sec. 10.3)} *)

val mp3 : ?name:string -> ?lambda:Rat.t -> unit -> Appgraph.t
(** 13 single-rate actors: Huffman decoding, then per audio channel
    requantisation, reordering, stereo processing, antialiasing, hybrid
    (IMDCT) synthesis, frequency inversion, and a merged subband synthesis,
    with a two-token feedback bounding the pipeline depth. *)

(** {1 Further decoder models (extensions)} *)

val jpeg : ?name:string -> ?lambda:Rat.t -> unit -> Appgraph.t
(** A six-actor JPEG decoder: parse -> vld -> izz -> iq -> idct -> colour
    conversion, with 6 blocks per MCU (4:2:0) and an MCU-pacing feedback;
    repetition vector (1, 1, 6, 6, 6, 1). *)

val wlan : ?name:string -> ?lambda:Rat.t -> unit -> Appgraph.t
(** An eight-actor 802.11a receiver chain (adc, sync, fft, demap,
    deinterleave, viterbi, descramble, mac) with OFDM-symbol-sized rates;
    single-rate at iteration level (repetition vector all ones), the
    Viterbi decoder dominating the work. *)

(** {1 Multimedia platform (Sec. 10.3)} *)

val multimedia_platform : unit -> Archgraph.t
(** 2x2 mesh: tiles 0,1 are generic processors ("proc"), tiles 2,3 are
    accelerators ("acc"). *)

val proc : string
(** Name of the generic processor type ("proc"). *)

val acc : string
(** Name of the accelerator processor type ("acc"). *)
