module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(** Application graphs (paper Definition 5).

    An application graph couples an SDFG with its resource requirements and
    a throughput constraint:
    - [Gamma] gives per actor and processor type the execution time [tau]
      and memory requirement [mu], or nothing when the actor cannot run on
      that processor type;
    - [Theta] gives per channel the token size [sz], the buffer space (in
      tokens) needed when mapped inside one tile ([alpha_tile]) or split
      over two tiles ([alpha_src], [alpha_dst]), and the bandwidth [beta]
      needed when split;
    - [lambda] is the minimum required throughput of the designated output
      actor (output tokens per time unit). *)

type actor_req = { exec_time : int;  (** tau, > 0 *) memory : int  (** mu, bits *) }

type channel_req = {
  token_size : int;  (** sz (bits) *)
  alpha_tile : int;  (** buffer (tokens) when src and dst share a tile *)
  alpha_src : int;  (** source-side buffer (tokens) when split *)
  alpha_dst : int;  (** destination-side buffer (tokens) when split *)
  bandwidth : int;  (** beta (bits/time unit) when split *)
}

type t = {
  app_name : string;
  graph : Sdfg.t;
  reqs : (string * actor_req) list array;
      (** Gamma: per actor, (processor type, requirements) *)
  creqs : channel_req array;  (** Theta: per channel *)
  lambda : Rat.t;  (** throughput constraint *)
  output_actor : int;  (** actor whose firing rate lambda constrains *)
  rep : int array;  (** cached repetition vector *)
}

val make :
  name:string ->
  graph:Sdfg.t ->
  reqs:(string * actor_req) list array ->
  creqs:channel_req array ->
  lambda:Rat.t ->
  output_actor:int ->
  t
(** Validates: the SDFG is consistent, weakly connected and deadlock free;
    every actor supports at least one processor type with positive execution
    time; array lengths match; all Theta entries are non-negative.
    @raise Invalid_argument when a check fails. *)

val exec_time : t -> int -> string -> int option
(** [exec_time app a pt] is [tau a pt], or [None] when [a] cannot run on
    processor type [pt] (the paper's infinite entry). *)

val memory : t -> int -> string -> int option

val max_exec_time : t -> int -> int
(** sup over the supported processor types of tau (used by Eqn. 1 and the
    normalisation of the processing load l_p). *)

val supports : t -> int -> string -> bool
val gamma : t -> int array
(** The repetition vector (cached at construction). *)

val with_lambda : t -> Rat.t -> t

val total_work : t -> int
(** The denominator of l_p: sum over actors of gamma(a) * max exec time. *)

val pp : Format.formatter -> t -> unit
