module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Deadlock = Sdf.Deadlock

type actor_req = { exec_time : int; memory : int }

type channel_req = {
  token_size : int;
  alpha_tile : int;
  alpha_src : int;
  alpha_dst : int;
  bandwidth : int;
}

type t = {
  app_name : string;
  graph : Sdfg.t;
  reqs : (string * actor_req) list array;
  creqs : channel_req array;
  lambda : Rat.t;
  output_actor : int;
  rep : int array;
}

let make ~name ~graph ~reqs ~creqs ~lambda ~output_actor =
  let n = Sdfg.num_actors graph in
  if Array.length reqs <> n then
    invalid_arg "Appgraph.make: reqs length mismatch";
  if Array.length creqs <> Sdfg.num_channels graph then
    invalid_arg "Appgraph.make: creqs length mismatch";
  if output_actor < 0 || output_actor >= n then
    invalid_arg "Appgraph.make: output actor out of range";
  if not (Sdfg.is_weakly_connected graph) then
    invalid_arg "Appgraph.make: graph is not connected";
  let rep =
    match Repetition.compute graph with
    | Repetition.Consistent gamma -> gamma
    | Repetition.Inconsistent _ -> invalid_arg "Appgraph.make: inconsistent SDFG"
    | Repetition.Disconnected -> invalid_arg "Appgraph.make: graph is not connected"
  in
  (match Deadlock.check graph rep with
  | Deadlock.Deadlock_free -> ()
  | Deadlock.Deadlocked _ -> invalid_arg "Appgraph.make: SDFG deadlocks");
  Array.iteri
    (fun a options ->
      if options = [] then
        invalid_arg
          (Printf.sprintf "Appgraph.make: actor %s supports no processor type"
             (Sdfg.actor_name graph a));
      List.iter
        (fun (_, r) ->
          if r.exec_time <= 0 then
            invalid_arg "Appgraph.make: execution times must be positive";
          if r.memory < 0 then invalid_arg "Appgraph.make: negative actor memory")
        options)
    reqs;
  Array.iter
    (fun c ->
      if c.token_size < 0 || c.alpha_tile < 0 || c.alpha_src < 0
         || c.alpha_dst < 0 || c.bandwidth < 0
      then invalid_arg "Appgraph.make: negative channel requirement")
    creqs;
  { app_name = name; graph; reqs; creqs; lambda; output_actor; rep }

let exec_time app a pt =
  Option.map (fun r -> r.exec_time) (List.assoc_opt pt app.reqs.(a))

let memory app a pt =
  Option.map (fun r -> r.memory) (List.assoc_opt pt app.reqs.(a))

let max_exec_time app a =
  List.fold_left (fun acc (_, r) -> max acc r.exec_time) 0 app.reqs.(a)

let supports app a pt = List.mem_assoc pt app.reqs.(a)

let gamma app = app.rep

let with_lambda app lambda = { app with lambda }

let total_work app =
  let acc = ref 0 in
  Array.iteri (fun a g -> acc := !acc + (g * max_exec_time app a)) app.rep;
  !acc

let pp ppf app =
  Format.fprintf ppf "@[<v>application %s (lambda=%a, output=%s)@,%a@]"
    app.app_name Rat.pp app.lambda
    (Sdfg.actor_name app.graph app.output_actor)
    Sdfg.pp app.graph
