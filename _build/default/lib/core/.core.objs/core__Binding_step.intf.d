lib/core/binding_step.mli: Appmodel Binding Cost Platform
