lib/core/tdma_inflation.mli: Bind_aware Schedule Sdf
