lib/core/schedule.mli: Format
