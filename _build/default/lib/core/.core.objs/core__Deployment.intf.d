lib/core/deployment.mli: Sdf Strategy
