lib/core/schedule.ml: Array Format List
