lib/core/composition.mli: Bind_aware Schedule Sdf Strategy
