lib/core/binding.mli: Appmodel Format Platform Sdf
