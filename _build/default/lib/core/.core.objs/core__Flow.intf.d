lib/core/flow.mli: Appmodel Bind_aware Cost Platform Strategy
