lib/core/gantt.mli: Bind_aware Schedule Sdf
