lib/core/deployment.ml: Appmodel Array Fun List Platform Printf Schedule Sdf Strategy String
