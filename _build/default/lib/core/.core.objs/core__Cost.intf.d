lib/core/cost.mli: Appmodel Binding Platform Sdf
