lib/core/binding.ml: Appmodel Array Format Platform Sdf
