lib/core/slice_alloc.ml: Appmodel Array Bind_aware Constrained Cost Float Fun List Logs Platform Sdf Stdlib String
