lib/core/multi_app.ml: Appmodel Array Binding Flow List Platform Strategy
