lib/core/multi_app.ml: Appmodel Array Binding Flow List Option Platform Strategy
