lib/core/multi_app.mli: Appmodel Cost Platform Strategy
