lib/core/strategy.mli: Appmodel Bind_aware Binding Binding_step Cost Format Platform Schedule Sdf Slice_alloc
