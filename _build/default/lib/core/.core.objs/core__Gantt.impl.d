lib/core/gantt.ml: Array Bind_aware Buffer Char Constrained List Platform Printf Sdf
