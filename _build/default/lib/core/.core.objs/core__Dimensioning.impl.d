lib/core/dimensioning.ml: Appmodel List Multi_app Platform
