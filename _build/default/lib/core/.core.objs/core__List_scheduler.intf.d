lib/core/list_scheduler.mli: Bind_aware Schedule
