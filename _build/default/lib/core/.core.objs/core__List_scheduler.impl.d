lib/core/list_scheduler.ml: Array Bind_aware Constrained Fun Hashtbl List Marshal Option Platform Schedule Sdf
