lib/core/composition.ml: Appmodel Array Bind_aware Constrained Hashtbl List Marshal Platform Schedule Sdf Strategy
