lib/core/constrained.mli: Bind_aware Schedule Sdf
