lib/core/dimensioning.mli: Appmodel Cost Multi_app Platform
