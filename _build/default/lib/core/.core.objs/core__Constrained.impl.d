lib/core/constrained.ml: Appmodel Array Bind_aware Fun Hashtbl List Marshal Platform Printf Schedule Sdf
