lib/core/constrained.ml: Appmodel Array Bind_aware Fun Hashtbl List Marshal Obs Platform Printf Schedule Sdf
