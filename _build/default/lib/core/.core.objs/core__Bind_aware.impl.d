lib/core/bind_aware.ml: Appmodel Array Binding Format Platform Printf Sdf
