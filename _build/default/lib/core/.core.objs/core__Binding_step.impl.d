lib/core/binding_step.ml: Appmodel Array Binding Cost Fun List Platform
