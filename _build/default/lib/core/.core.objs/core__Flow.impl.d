lib/core/flow.ml: Appmodel Cost List Obs Platform Sdf Slice_alloc Strategy
