lib/core/flow.ml: Appmodel Cost List Platform Strategy
