lib/core/slice_alloc.mli: Appmodel Bind_aware Binding Platform Schedule Sdf
