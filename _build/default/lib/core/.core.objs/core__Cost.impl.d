lib/core/cost.ml: Appmodel Array Binding Float Fun List Platform Sdf
