lib/core/tdma_inflation.ml: Array Bind_aware Constrained Platform Sdf
