lib/core/strategy.ml: Appmodel Array Bind_aware Binding Binding_step Constrained Cost Format Fun List_scheduler Logs Obs Platform Schedule Sdf Slice_alloc Sys
