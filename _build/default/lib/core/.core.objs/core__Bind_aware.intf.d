lib/core/bind_aware.mli: Appmodel Binding Platform Sdf
