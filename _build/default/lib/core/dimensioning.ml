module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type tile_template = {
  proc_types : string array;
  wheel : int;
  mem : int;
  max_conns : int;
  in_bw : int;
  out_bw : int;
  hop_latency : int;
}

let template_of_tile ~proc_types ~hop_latency (t : Tile.t) =
  {
    proc_types;
    wheel = t.Tile.wheel;
    mem = t.Tile.mem;
    max_conns = t.Tile.max_conns;
    in_bw = t.Tile.in_bw;
    out_bw = t.Tile.out_bw;
    hop_latency;
  }

type result = {
  rows : int;
  cols : int;
  arch : Archgraph.t;
  report : Multi_app.report;
  rejected_shapes : (int * int) list;
}

(* Candidate shapes ordered by tile count, then by squareness (so 2x2 is
   preferred over 1x4 at equal count). *)
let shapes max_tiles =
  let all = ref [] in
  for r = 1 to max_tiles do
    for c = r to max_tiles do
      if r * c <= max_tiles then all := (r, c) :: !all
    done
  done;
  List.sort
    (fun (r1, c1) (r2, c2) ->
      match compare (r1 * c1) (r2 * c2) with
      | 0 -> compare (c1 - r1) (c2 - r2)
      | n -> n)
    !all

let build_mesh tpl rows cols =
  Archgraph.mesh ~rows ~cols ~proc_types:tpl.proc_types ~wheel:tpl.wheel
    ~mem:tpl.mem ~max_conns:tpl.max_conns ~in_bw:tpl.in_bw ~out_bw:tpl.out_bw
    ~hop_latency:tpl.hop_latency ()

let smallest_mesh ?weights ?max_states ?(max_tiles = 16) tpl apps =
  let rec try_shapes rejected = function
    | [] -> None
    | (rows, cols) :: rest ->
        let arch = build_mesh tpl rows cols in
        let report =
          Multi_app.allocate_until_failure ?weights ?max_states apps arch
        in
        if List.length report.Multi_app.allocations = List.length apps then
          Some { rows; cols; arch; report; rejected_shapes = List.rev rejected }
        else try_shapes ((rows, cols) :: rejected) rest
  in
  try_shapes [] (shapes max_tiles)
