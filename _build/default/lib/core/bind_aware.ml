module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type actor_role = App of int | Conn of int | Sync of int

type sync_model = Worst_case_arrival | Aligned_wheels

type connection_model =
  | Simple_connection
  | Pipelined_connection of { stages : int }

type t = {
  graph : Sdfg.t;
  exec_times : int array;
  roles : actor_role array;
  tile_of : int array;
  app : Appgraph.t;
  arch : Archgraph.t;
  binding : Binding.t;
  slices : int array;
}

let ceil_div a b = (a + b - 1) / b

let build ?(sync_model = Worst_case_arrival) ?(connection_model = Simple_connection)
    ~app ~arch ~binding ~slices () =
  if not (Binding.is_complete binding) then
    invalid_arg "Bind_aware.build: incomplete binding";
  (match connection_model with
  | Pipelined_connection { stages } when stages < 1 ->
      invalid_arg "Bind_aware.build: pipelined connection needs >= 1 stage"
  | Pipelined_connection _ | Simple_connection -> ());
  (match Binding.check app arch binding with
  | Ok () -> ()
  | Error v ->
      invalid_arg
        (Format.asprintf "Bind_aware.build: invalid binding: %a"
           (Binding.pp_violation app arch) v));
  Array.iteri
    (fun t omega ->
      let tile = Archgraph.tile arch t in
      if omega < 0 || omega > Tile.available_wheel tile then
        invalid_arg "Bind_aware.build: slice exceeds available wheel")
    slices;
  let g = app.Appgraph.graph in
  let n = Sdfg.num_actors g in
  let b = Sdfg.Builder.create () in
  (* Application actors first, preserving indices. *)
  for a = 0 to n - 1 do
    ignore (Sdfg.Builder.add_actor b (Sdfg.actor_name g a))
  done;
  let exec_times = ref [] (* reversed *) in
  let roles = ref [] in
  let tile_of = ref [] in
  for a = n - 1 downto 0 do
    let tile = Archgraph.tile arch binding.(a) in
    let tau =
      match Appgraph.exec_time app a tile.Tile.proc_type with
      | Some tau -> tau
      | None -> assert false (* Binding.check rejects this *)
    in
    exec_times := tau :: !exec_times;
    roles := App a :: !roles;
    tile_of := binding.(a) :: !tile_of
  done;
  (* Self-loops bounding auto-concurrency (one per actor lacking one). *)
  for a = 0 to n - 1 do
    if not (Sdfg.has_unit_self_loop g a) then
      ignore
        (Sdfg.Builder.add_channel b
           ~name:(Printf.sprintf "self_%s" (Sdfg.actor_name g a))
           ~tokens:1 ~src:a ~dst:a ~prod:1 ~cons:1 ())
  done;
  let push_actor name tau role =
    let idx = Sdfg.Builder.add_actor b name in
    exec_times := !exec_times @ [ tau ];
    roles := !roles @ [ role ];
    tile_of := !tile_of @ [ -1 ];
    idx
  in
  Array.iteri
    (fun ci cr ->
      let ch = Sdfg.channel g ci in
      let cname = Sdfg.channel_name g ci in
      match Binding.classify app binding ci with
      | Binding.Dangling -> assert false
      | Binding.Internal _ ->
          (* The channel itself, with its bounded buffer modelled by a
             reverse channel holding the free slots. A self-loop needs no
             buffer edge: consistency forces equal rates on it, so its token
             population is invariant and bounded by its initial tokens
             (Fig. 4 adds no edge for d3). *)
          ignore
            (Sdfg.Builder.add_channel b ~name:cname ~tokens:ch.Sdfg.tokens
               ~src:ch.Sdfg.src ~dst:ch.Sdfg.dst ~prod:ch.Sdfg.prod
               ~cons:ch.Sdfg.cons ());
          if ch.Sdfg.src <> ch.Sdfg.dst then
            ignore
              (Sdfg.Builder.add_channel b
                 ~name:(Printf.sprintf "buf_%s" cname)
                 ~tokens:(cr.Appgraph.alpha_tile - ch.Sdfg.tokens)
                 ~src:ch.Sdfg.dst ~dst:ch.Sdfg.src ~prod:ch.Sdfg.cons
                 ~cons:ch.Sdfg.prod ())
      | Binding.Split { src_tile; dst_tile } ->
          let conn =
            match Archgraph.connection_between arch ~src:src_tile ~dst:dst_tile with
            | Some c -> c
            | None -> assert false (* Binding.check rejects this *)
          in
          let dst = Archgraph.tile arch dst_tile in
          let transfer = ceil_div cr.Appgraph.token_size cr.Appgraph.bandwidth in
          let tau_s =
            match sync_model with
            | Worst_case_arrival -> dst.Tile.wheel - slices.(dst_tile)
            | Aligned_wheels -> 0
          in
          let serialised name tau =
            (* A transport stage holding one token at a time. *)
            let act = push_actor name tau (Conn ci) in
            ignore
              (Sdfg.Builder.add_channel b
                 ~name:(Printf.sprintf "self_%s" name)
                 ~tokens:1 ~src:act ~dst:act ~prod:1 ~cons:1 ());
            act
          in
          (* The transport chain: either the paper's single actor c, or an
             injection stage followed by pipelined hop stages. [head] claims
             source buffer and destination buffer space, [tail] delivers to
             the sync actor. *)
          let head, tail =
            match connection_model with
            | Simple_connection ->
                let c_act =
                  serialised (Printf.sprintf "c_%s" cname)
                    (conn.Archgraph.latency + transfer)
                in
                (c_act, c_act)
            | Pipelined_connection { stages } ->
                let inject =
                  serialised (Printf.sprintf "i_%s" cname) transfer
                in
                let per_hop = ceil_div conn.Archgraph.latency stages in
                let rec hops prev k =
                  if k > stages then prev
                  else begin
                    let h =
                      serialised (Printf.sprintf "h%d_%s" k cname) per_hop
                    in
                    ignore
                      (Sdfg.Builder.add_channel b
                         ~name:(Printf.sprintf "hop%d_%s" k cname)
                         ~src:prev ~dst:h ~prod:1 ~cons:1 ());
                    hops h (k + 1)
                  end
                in
                (inject, hops inject 1)
          in
          let s_act = push_actor (Printf.sprintf "s_%s" cname) tau_s (Sync ci) in
          (* a -> head: tokens leave the source buffer one at a time. *)
          ignore
            (Sdfg.Builder.add_channel b
               ~name:(Printf.sprintf "snd_%s" cname)
               ~src:ch.Sdfg.src ~dst:head ~prod:ch.Sdfg.prod ~cons:1 ());
          (* Source buffer: alpha_src free slots, freed when transport picks
             the token up. *)
          ignore
            (Sdfg.Builder.add_channel b
               ~name:(Printf.sprintf "srcbuf_%s" cname)
               ~tokens:cr.Appgraph.alpha_src ~src:head ~dst:ch.Sdfg.src
               ~prod:1 ~cons:ch.Sdfg.prod ());
          (* tail -> s: arrived tokens wait for the destination slice. *)
          ignore
            (Sdfg.Builder.add_channel b
               ~name:(Printf.sprintf "arr_%s" cname)
               ~src:tail ~dst:s_act ~prod:1 ~cons:1 ());
          (* s -> b: the channel's initial tokens start here (already at the
             destination). *)
          ignore
            (Sdfg.Builder.add_channel b
               ~name:(Printf.sprintf "rcv_%s" cname)
               ~tokens:ch.Sdfg.tokens ~src:s_act ~dst:ch.Sdfg.dst ~prod:1
               ~cons:ch.Sdfg.cons ());
          (* Destination buffer: claimed when the token enters the network,
             freed when the consumer fires; initial tokens occupy slots. *)
          ignore
            (Sdfg.Builder.add_channel b
               ~name:(Printf.sprintf "dstbuf_%s" cname)
               ~tokens:(cr.Appgraph.alpha_dst - ch.Sdfg.tokens)
               ~src:ch.Sdfg.dst ~dst:head ~prod:ch.Sdfg.cons ~cons:1 ()))
    app.Appgraph.creqs;
  {
    graph = Sdfg.Builder.build b;
    exec_times = Array.of_list !exec_times;
    roles = Array.of_list !roles;
    tile_of = Array.of_list !tile_of;
    app;
    arch;
    binding;
    slices;
  }

let half_wheel_slices app arch binding =
  let used = Array.make (Archgraph.num_tiles arch) false in
  Array.iter (fun t -> if t >= 0 then used.(t) <- true) binding;
  ignore app;
  Array.mapi
    (fun t u ->
      if u then max 1 (Tile.available_wheel (Archgraph.tile arch t) / 2) else 0)
    used
