module Rat = Sdf.Rat

(** Composition: execute several allocated applications together.

    The paper's central promise is {e isolation}: every application keeps
    its throughput guarantee "independent of other applications running on
    the same system", because each one owns a disjoint TDMA window on every
    processor it uses. The analyses validate one application at a time;
    this module is the cross-check — a single event-driven execution of the
    union of the binding-aware graphs, each application's firings gated by
    its own window of the shared wheels, each tile multiplexing the
    applications' static orders. The measured per-application throughputs
    must dominate the individually-guaranteed ones (E23 bench and a test
    property).

    Windows are assigned back to back in allocation order (application k's
    window on tile t starts where k-1's ended), matching how the
    multi-application driver commits occupied wheel time. *)

type member = {
  ba : Bind_aware.t;  (** one application's binding-aware graph *)
  schedules : Schedule.t option array;
  window_start : int array;
      (** per tile: where this application's slice begins on the wheel *)
}

type result = {
  throughput : Rat.t array;  (** per member, its output actor's rate *)
  period : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

val members_of_allocations : Strategy.allocation list -> member list
(** Stack the allocations' slices back to back per tile (allocation order),
    building each member from its recorded binding, slices and schedules.
    The applications' sync actors retain their conservative waits.
    @raise Invalid_argument if the allocations refer to architectures with
    different tile counts or their slices overflow a wheel. *)

val analyze : ?max_states:int -> member list -> result
(** Execute the composition until its global state recurs. [max_states]
    defaults to [2_000_000].
    @raise Invalid_argument on members whose windows overlap on some
    tile. *)

val measure : ?horizon:int -> member list -> Rat.t array
(** Windowed measurement for compositions whose joint state space is
    impractical (members with incommensurate periods never jointly recur):
    run for [horizon] time units (default [1_000_000]) and report each
    member's output rate over the second half of the window — a steady
    state estimate that converges to the true rate from below as the
    horizon grows. Same validation use as {!analyze}, without exactness. *)
