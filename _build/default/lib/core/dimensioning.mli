module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** Platform dimensioning (an improvement the paper names in Section 10.2:
    "resource utilisation can be increased when doing system
    dimensioning").

    Given a set of applications and a tile template, find the smallest
    mesh — fewest tiles, breaking ties towards square shapes — on which the
    allocation strategy places every application with its throughput
    guarantee. This inverts the paper's experiment: instead of counting how
    many applications a fixed platform carries, size the platform for a
    fixed application set. *)

type tile_template = {
  proc_types : string array;  (** assigned round robin across the mesh *)
  wheel : int;
  mem : int;
  max_conns : int;
  in_bw : int;
  out_bw : int;
  hop_latency : int;
}

val template_of_tile : proc_types:string array -> hop_latency:int ->
  Platform.Tile.t -> tile_template
(** Use an existing tile's resources as the template. *)

type result = {
  rows : int;
  cols : int;
  arch : Archgraph.t;  (** the dimensioned platform, unoccupied *)
  report : Multi_app.report;  (** the successful allocation of all apps *)
  rejected_shapes : (int * int) list;
      (** shapes tried and found too small, in order *)
}

val smallest_mesh :
  ?weights:Cost.weights ->
  ?max_states:int ->
  ?max_tiles:int ->
  tile_template ->
  Appgraph.t list ->
  result option
(** Try meshes in increasing tile count (1x1, 1x2, 2x2, 2x3, ...) up to
    [max_tiles] (default 16) and return the first that fits all
    applications, or [None] if none does. *)
