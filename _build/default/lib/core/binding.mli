module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** Binding functions and the Section 7 resource accounting.

    A binding maps every application actor to a tile ([Definition 6]); a
    partial binding additionally allows "not yet bound". This module derives
    the channel classification D_tile / D_src / D_dst, the per-tile resource
    usage, and checks the Section 7 validity constraints 2-4 (constraint 1 —
    the time slice — is checked by the slice-allocation step, which is when
    slices exist). *)

type t = int array
(** Per actor: tile index, or [-1] when unbound (partial bindings). *)

val unbound : Appgraph.t -> t
val is_complete : t -> bool
val copy : t -> t

(** Channel classification with respect to a (partial) binding. *)
type channel_kind =
  | Internal of int  (** both endpoints on this tile (D_t_tile) *)
  | Split of { src_tile : int; dst_tile : int }  (** cross-tile *)
  | Dangling  (** at least one endpoint unbound *)

val classify : Appgraph.t -> t -> int -> channel_kind

type tile_usage = {
  memory : int;
      (** actor state plus channel buffers mapped to this tile (bits) *)
  conns : int;  (** NI connections in use, |D_src| + |D_dst| *)
  bw_in : int;  (** sum of beta over incoming split channels *)
  bw_out : int;  (** sum of beta over outgoing split channels *)
}

val usage : Appgraph.t -> Archgraph.t -> t -> tile_usage array
(** Resource usage per tile induced by the bound part of the binding.
    Actors bound to a tile whose processor type they do not support
    contribute no memory (such bindings are rejected by {!check} anyway). *)

type violation =
  | Unsupported_processor of { actor : int; tile : int }
  | No_wheel_time of { tile : int }
      (** an actor was bound to a tile whose TDMA wheel is fully occupied *)
  | Memory_exceeded of { tile : int; used : int; avail : int }
  | Connections_exceeded of { tile : int; used : int; avail : int }
  | Bandwidth_exceeded of { tile : int; direction : [ `In | `Out ] }
  | No_connection of { channel : int; src_tile : int; dst_tile : int }
  | Zero_bandwidth_split of { channel : int }
      (** a channel with beta = 0 was mapped across tiles: it can never be
          transported *)
  | Buffer_smaller_than_tokens of { channel : int }

val check : Appgraph.t -> Archgraph.t -> t -> (unit, violation) result
(** Validate constraints 2-4 of Section 7 plus structural requirements on
    the bound part of a (partial) binding. *)

val pp_violation :
  Appgraph.t -> Archgraph.t -> Format.formatter -> violation -> unit

val pp : Appgraph.t -> Archgraph.t -> Format.formatter -> t -> unit
