(** Static-order schedules (paper Section 4).

    A practical static-order schedule is a finite prefix seen once followed
    by a finite sequence repeated forever: [prefix (period)*]. Entries are
    actor indices (of whichever graph the schedule orders — the allocation
    flow uses binding-aware actor indices, which coincide with application
    actor indices for application actors). *)

type t = { prefix : int array; period : int array }

val make : prefix:int list -> period:int list -> t
(** @raise Invalid_argument if the period is empty. *)

val actor_at : t -> int -> int
(** [actor_at s pos] is the actor at (0-based) position [pos] of the
    infinite sequence. *)

val advance : t -> int -> int
(** Next position, normalised so that positions inside the periodic part
    stay within [length prefix + length period] (states of the constrained
    execution must recur). *)

val normalise_pos : t -> int -> int

val compact : t -> t
(** Remove recurrences (paper Section 9.2): reduce the periodic part to its
    primitive root (e.g. [(a b a b)* -> (a b)*]) and absorb the prefix into
    the period where possible by rotating (e.g.
    [a b a (b a)* -> (a b)*]). The infinite firing sequence is unchanged. *)

val firing_counts : t -> n_actors:int -> int array
(** How often each actor occurs in the periodic part. *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp pp_actor ppf s] prints e.g. ["a1 a2 (a3 a1)*"]. *)

val equal : t -> t -> bool
