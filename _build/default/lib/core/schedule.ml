type t = { prefix : int array; period : int array }

let make ~prefix ~period =
  if period = [] then invalid_arg "Schedule.make: empty period";
  { prefix = Array.of_list prefix; period = Array.of_list period }

let actor_at s pos =
  let plen = Array.length s.prefix in
  if pos < plen then s.prefix.(pos)
  else s.period.((pos - plen) mod Array.length s.period)

let normalise_pos s pos =
  let plen = Array.length s.prefix in
  if pos < plen then pos else plen + ((pos - plen) mod Array.length s.period)

let advance s pos = normalise_pos s (pos + 1)

(* Smallest u such that the array is u repeated; classic primitive-root
   reduction via divisor check. *)
let primitive_root a =
  let n = Array.length a in
  let divides d =
    n mod d = 0
    &&
    let ok = ref true in
    for i = d to n - 1 do
      if a.(i) <> a.(i mod d) then ok := false
    done;
    !ok
  in
  let rec find d = if divides d then Array.sub a 0 d else find (d + 1) in
  find 1

let compact s =
  let period = primitive_root s.period in
  (* Absorb the prefix: while the prefix's last firing equals the period's
     last firing, the boundary can be shifted one step left (rotating the
     period right) without changing the infinite sequence. *)
  let prefix = ref (Array.to_list s.prefix |> List.rev) in
  let period = ref period in
  let continue = ref true in
  while !continue do
    match !prefix with
    | last :: rest when Array.length !period > 0
                        && last = !period.(Array.length !period - 1) ->
        let m = Array.length !period in
        let rotated = Array.make m 0 in
        rotated.(0) <- !period.(m - 1);
        Array.blit !period 0 rotated 1 (m - 1);
        period := rotated;
        prefix := rest
    | _ -> continue := false
  done;
  let period = primitive_root !period in
  { prefix = Array.of_list (List.rev !prefix); period }

let firing_counts s ~n_actors =
  let counts = Array.make n_actors 0 in
  Array.iter (fun a -> counts.(a) <- counts.(a) + 1) s.period;
  counts

let pp pp_actor ppf s =
  Array.iter (fun a -> Format.fprintf ppf "%a " pp_actor a) s.prefix;
  Format.pp_print_string ppf "(";
  Array.iteri
    (fun i a ->
      if i > 0 then Format.pp_print_string ppf " ";
      pp_actor ppf a)
    s.period;
  Format.pp_print_string ppf ")*"

let equal a b = a.prefix = b.prefix && a.period = b.period
