module Rat = Sdf.Rat

(** The execution-time-inflation TDMA model of Bekooij et al. [4] — the
    paper's point of comparison in Section 8.2.

    Instead of gating the progress of a firing by the wheel position, [4]
    conservatively charges every firing the worst-case wheel interference
    up front: a firing of [tau] time units on a tile with wheel [w] and
    slice [omega] is modelled as an ungated firing of
    [tau + ceil (tau / omega) * (w - omega)] time units (each slice window
    the firing occupies may be preceded by the full foreign part of the
    wheel; for [tau <= omega] this is the paper's "+ (w - omega)", e.g.
    +5 for actor a3 in the running example).

    Because the constrained execution postpones a firing by at most
    [w - omega] and usually less (Fig. 5(c)), its throughput dominates the
    inflation model's. The E13 ablation bench measures the gap. *)

val inflate : tau:int -> w:int -> omega:int -> int
(** The inflated execution time. [omega = 0] yields [max_int / 2] (never
    completes within any horizon). *)

val throughput :
  ?max_states:int ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  Rat.t
(** Throughput of the binding-aware graph under the same static-order
    schedules but with inflated, ungated execution times (slices are set to
    the full wheel so the engine never gates). Deadlock and state-space
    overflow map to 0, as in {!Constrained.throughput_or_zero}. *)
