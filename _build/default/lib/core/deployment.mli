(** Deployment descriptors: the allocation result as a document.

    What a runtime or code generator needs to set the platform up: per
    actor its tile, per tile the TDMA slice and the static-order schedule,
    plus the guaranteed throughput. Written in the same SDF3-style XML
    dialect as the model files, so a flow can archive
    (application, architecture, deployment) triples together. *)

val to_xml : Strategy.allocation -> Sdf.Xml.t
(** {v
    <deployment application="..." throughput="13/220">
      <binding actor="a1" tile="t1"/>
      ...
      <tile name="t1" slice="5" wheel="10">
        <schedule prefix="" period="a1 a2"/>
      </tile>
      ...
    </deployment>
    v} *)

val to_string : Strategy.allocation -> string

val write_file : string -> Strategy.allocation -> unit

type summary = {
  application : string;
  throughput : Sdf.Rat.t;
  bindings : (string * string) list;  (** actor name, tile name *)
  slices : (string * int) list;  (** tile name, slice (used tiles only) *)
}

val summary_of_xml : Sdf.Xml.t -> summary
(** Read back the descriptor's summary (for tooling round trips).
    @raise Failure on documents that do not match the schema. *)
