module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** Binding-aware SDFG construction (paper Section 8.1).

    Given a complete, valid binding and a time-slice allocation, the
    application SDFG is rewritten so that a plain self-timed execution of
    the result reflects the binding decisions:

    - every actor gets the execution time of the processor it is bound to;
    - actors without a unit self-loop get one (with one initial token): on a
      tile only one instance of an actor executes at a time;
    - a channel mapped inside a tile gets a reverse channel with
      [alpha_tile - tokens] initial tokens, modelling its bounded buffer;
    - a channel [d = (a, b, p, q)] mapped across tiles is replaced by the
      chain [a -> c_d -> s_d -> b] where [c_d] models the connection
      (execution time [L + ceil (sz / beta)], serialised by a self-loop)
      and [s_d] models the conservative wait for the destination's TDMA
      slice (execution time [w_dst - omega_dst], no self-loop: waiting
      tokens do not exclude each other). Reverse channels [c_d -> a] and
      [b -> c_d] bound the source and destination buffers
      ([alpha_src], [alpha_dst] tokens); the channel's initial tokens start
      on [s_d -> b] and occupy destination buffer space.

    Application actors keep their indices; [c]/[s] actors are appended. *)

type actor_role =
  | App of int  (** original application actor (same index) *)
  | Conn of int  (** connection actor for this application channel *)
  | Sync of int  (** TDMA-synchronisation actor for this channel *)

(** How a token's arrival at the destination tile relates to that tile's
    TDMA wheel. The paper makes "no assumption on the position of two TDMA
    time wheels wrt each other" and therefore charges every token the full
    foreign part of the destination wheel (actor [s], tau = w - omega). If
    the platform starts all wheels in phase (a single global TDMA clock,
    as in e.g. AEthereal-based designs), that pessimism is unnecessary: the
    constrained execution already gates the consumer's firings by its
    slice, so the sync actor can collapse to zero time. *)
type sync_model =
  | Worst_case_arrival  (** the paper's conservative model (default) *)
  | Aligned_wheels
      (** wheels share one global phase; sync actors take zero time *)

(** How a cross-tile channel's transport is modelled (Section 8.1 notes
    that the single actor [c] "can be replaced with a more detailed model
    if available, such as the network-on-chip connection model of [14]"). *)
type connection_model =
  | Simple_connection
      (** the paper's actor [c]: latency plus serialised transfer,
          [tau = L + ceil (sz / beta)] per token *)
  | Pipelined_connection of { stages : int }
      (** a [14]-style pipelined NoC path: an injection actor serialising
          at the bandwidth ([ceil (sz / beta)] per token) followed by
          [stages] hop actors of [ceil (L / stages)] each, every stage
          holding one token at a time — successive tokens overlap across
          stages, so long paths no longer serialise the whole transfer *)

type t = {
  graph : Sdfg.t;
  exec_times : int array;
  roles : actor_role array;
  tile_of : int array;
      (** per binding-aware actor: tile index for processor-bound (App)
          actors, [-1] for [Conn]/[Sync] actors *)
  app : Appgraph.t;
  arch : Archgraph.t;
  binding : Binding.t;
  slices : int array;  (** omega per tile, as used for the sync actors *)
}

val build :
  ?sync_model:sync_model ->
  ?connection_model:connection_model ->
  app:Appgraph.t ->
  arch:Archgraph.t ->
  binding:Binding.t ->
  slices:int array ->
  unit ->
  t
(** [connection_model] defaults to {!Simple_connection}; [sync_model] to
    {!Worst_case_arrival}.
    @raise Invalid_argument if the binding is incomplete or invalid
    ({!Binding.check}), if a slice exceeds the available wheel of its
    tile, or if a pipelined model has fewer than one stage. Tiles that
    host no actor may have slice 0. *)

val half_wheel_slices : Appgraph.t -> Archgraph.t -> Binding.t -> int array
(** The 50%-of-remaining-wheel slice assumption used by the list scheduler
    (paper Section 9.2), for tiles that host at least one actor. *)
