module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** The resource-binding step (paper Section 9.1).

    Actors are placed in decreasing criticality order; each actor goes to
    the cheapest tile (Eqn. 2, evaluated with the actor provisionally on
    that tile) whose resources admit it. A load-balancing optimisation then
    revisits the actors in reverse order, re-placing each against the cost
    of the binding with the actor removed; it can only keep or improve the
    binding because the original tile remains a candidate. *)

type failure = {
  failed_actor : int;
  last_violation : Binding.violation option;
      (** why the final candidate tile rejected the actor (diagnostics) *)
}

val bind :
  ?max_cycles:int ->
  weights:Cost.weights ->
  Appgraph.t ->
  Archgraph.t ->
  (Binding.t, failure) result
(** Run placement plus the reverse-order optimisation. *)

val bind_greedy :
  ?max_cycles:int ->
  weights:Cost.weights ->
  Appgraph.t ->
  Archgraph.t ->
  (Binding.t, failure) result
(** Placement only, without the optimisation pass (exposed for the
    ablation benchmarks). *)

val optimise :
  weights:Cost.weights -> Appgraph.t -> Archgraph.t -> Binding.t -> Binding.t
(** The reverse-order re-placement pass on an existing complete binding. *)
