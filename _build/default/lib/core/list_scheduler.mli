(** Static-order schedule construction (paper Section 9.2).

    A list scheduler builds the static-order schedules of all tiles at once
    by executing the binding-aware SDFG under the assumption that every used
    tile has 50% of its available time wheel. Enabled processor-bound
    firings queue in their tile's FIFO ready list; an idle tile starts the
    head of its list and the started actor is appended to the tile's
    schedule. The execution ends at the first recurrent state, which splits
    each tile's recorded trace into a prefix and a periodic part; the
    schedules are then compacted ({!Schedule.compact}), reproducing e.g.
    the paper's reduction of a 17-state schedule to [(a1 a2)*]. *)

exception Deadlocked
(** The binding-aware execution got stuck — the binding cannot meet any
    throughput constraint. *)

exception State_space_exceeded of int

val schedules :
  ?max_states:int ->
  Bind_aware.t ->
  Schedule.t option array
(** [schedules ba] builds one compacted schedule per tile hosting at least
    one actor ([None] elsewhere). [ba] should be built with
    {!Bind_aware.half_wheel_slices}. [max_states] defaults to [500_000]. *)

val raw_schedules :
  ?max_states:int ->
  Bind_aware.t ->
  Schedule.t option array
(** Like {!schedules} but without the compaction step (exposed so tests
    and benches can observe the paper's 17-state example schedule). *)
