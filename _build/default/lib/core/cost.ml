module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Cycles = Sdf.Cycles
module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type weights = { c1 : float; c2 : float; c3 : float }

let weights c1 c2 c3 = { c1; c2; c3 }

type criticality = { per_actor : Rat.t array; truncated : bool }

let cycle_value app cyc =
  let g = app.Appgraph.graph in
  let gamma = Appgraph.gamma app in
  let work =
    List.fold_left
      (fun acc ci ->
        let a = (Sdfg.channel g ci).Sdfg.src in
        acc + (gamma.(a) * Appgraph.max_exec_time app a))
      0 cyc
  in
  let tokens =
    List.fold_left
      (fun acc ci ->
        let c = Sdfg.channel g ci in
        Rat.add acc (Rat.make c.Sdfg.tokens c.Sdfg.cons))
      Rat.zero cyc
  in
  if Rat.equal tokens Rat.zero then Rat.infinity
  else Rat.div (Rat.of_int work) tokens

let actor_criticality ?max_cycles app =
  let g = app.Appgraph.graph in
  let n = Sdfg.num_actors g in
  let enumeration = Cycles.simple_cycles ?max_cycles g in
  let per_actor = Array.make n Rat.zero in
  List.iter
    (fun cyc ->
      let v = cycle_value app cyc in
      List.iter
        (fun ci ->
          let a = (Sdfg.channel g ci).Sdfg.src in
          if Rat.compare v per_actor.(a) > 0 then per_actor.(a) <- v)
        cyc)
    enumeration.Cycles.cycles;
  { per_actor; truncated = enumeration.Cycles.truncated }

let binding_order ?max_cycles app =
  let crit = (actor_criticality ?max_cycles app).per_actor in
  let gamma = Appgraph.gamma app in
  let work a = gamma.(a) * Appgraph.max_exec_time app a in
  let cmp a b =
    match Rat.compare crit.(b) crit.(a) with
    | 0 -> ( match compare (work b) (work a) with 0 -> compare a b | c -> c)
    | c -> c
  in
  List.sort cmp (List.init (Array.length crit) Fun.id)

let processing_load app arch binding t =
  let tile = Archgraph.tile arch t in
  let gamma = Appgraph.gamma app in
  let bound_work = ref 0 in
  Array.iteri
    (fun a bt ->
      if bt = t then
        match Appgraph.exec_time app a tile.Tile.proc_type with
        | Some tau -> bound_work := !bound_work + (gamma.(a) * tau)
        | None -> ())
    binding;
  let total = Appgraph.total_work app in
  if total = 0 then 0. else float_of_int !bound_work /. float_of_int total

let memory_load app arch binding t =
  let tile = Archgraph.tile arch t in
  let u = (Binding.usage app arch binding).(t) in
  if tile.Tile.mem = 0 then if u.Binding.memory > 0 then Float.infinity else 0.
  else float_of_int u.Binding.memory /. float_of_int tile.Tile.mem

let communication_load app arch binding t =
  let tile = Archgraph.tile arch t in
  let u = (Binding.usage app arch binding).(t) in
  let frac used avail =
    if avail = 0 then if used > 0 then Float.infinity else 0.
    else float_of_int used /. float_of_int avail
  in
  (frac u.Binding.bw_out tile.Tile.out_bw
  +. frac u.Binding.bw_in tile.Tile.in_bw
  +. frac u.Binding.conns tile.Tile.max_conns)
  /. 3.

let tile_cost w app arch binding t =
  (* Compute the per-tile usage once; the three load functions above are the
     public fine-grained API, this is the hot path. *)
  let tile = Archgraph.tile arch t in
  let u = (Binding.usage app arch binding).(t) in
  let frac used avail =
    if avail = 0 then if used > 0 then Float.infinity else 0.
    else float_of_int used /. float_of_int avail
  in
  let lp = processing_load app arch binding t in
  let lm = frac u.Binding.memory tile.Tile.mem in
  let lc =
    (frac u.Binding.bw_out tile.Tile.out_bw
    +. frac u.Binding.bw_in tile.Tile.in_bw
    +. frac u.Binding.conns tile.Tile.max_conns)
    /. 3.
  in
  (w.c1 *. lp) +. (w.c2 *. lm) +. (w.c3 *. lc)
