module Rat = Sdf.Rat
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

let inflate ~tau ~w ~omega =
  if tau = 0 then 0
  else if omega <= 0 then max_int / 2
  else if omega >= w then tau
  else tau + (((tau + omega - 1) / omega) * (w - omega))

let throughput ?max_states (ba : Bind_aware.t) ~schedules =
  let arch = ba.Bind_aware.arch in
  let exec_times =
    Array.mapi
      (fun a tau ->
        let t = ba.Bind_aware.tile_of.(a) in
        if t < 0 then tau
        else
          inflate ~tau ~w:(Archgraph.tile arch t).Tile.wheel
            ~omega:ba.Bind_aware.slices.(t))
      ba.Bind_aware.exec_times
  in
  (* Full-wheel slices disable gating; the sync actors keep their original
     waiting times (they model the cross-tile wheel offset in both models). *)
  let slices =
    Array.mapi
      (fun t omega ->
        if omega > 0 then (Archgraph.tile arch t).Tile.wheel else 0)
      ba.Bind_aware.slices
  in
  let ba' = { ba with Bind_aware.exec_times; slices } in
  Constrained.throughput_or_zero ?max_states ba' ~schedules
