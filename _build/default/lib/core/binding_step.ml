module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type failure = {
  failed_actor : int;
  last_violation : Binding.violation option;
}

(* Candidate tiles for an actor: those whose processor type it supports. *)
let candidates app arch a =
  List.filter
    (fun t -> Appgraph.supports app a (Archgraph.tile arch t).Tile.proc_type)
    (List.init (Archgraph.num_tiles arch) Fun.id)

(* Sort candidate tiles by Eqn. 2; [score t] must evaluate the cost of
   candidate [t]. Exact cost ties — common under single-objective weights,
   e.g. (0,0,1) when no channel is split — are broken towards the tile with
   the most available wheel time, so applications do not pile onto one tile
   whose wheel then starves the slice allocator; the final tie-break is the
   tile index, keeping results deterministic. *)
let by_cost arch score tiles =
  let avail t = Tile.available_wheel (Archgraph.tile arch t) in
  let scored = List.map (fun t -> (score t, avail t, t)) tiles in
  List.map
    (fun (_, _, t) -> t)
    (List.stable_sort
       (fun (c1, a1, t1) (c2, a2, t2) ->
         match compare (c1 : float) c2 with
         | 0 -> ( match compare a2 a1 with 0 -> compare t1 t2 | c -> c)
         | c -> c)
       scored)

let try_bind app arch binding a tiles =
  let last = ref None in
  let rec go = function
    | [] -> Error { failed_actor = a; last_violation = !last }
    | t :: rest -> (
        binding.(a) <- t;
        match Binding.check app arch binding with
        | Ok () -> Ok ()
        | Error v ->
            last := Some v;
            binding.(a) <- -1;
            go rest)
  in
  go tiles

let bind_greedy ?max_cycles ~weights app arch =
  let order = Cost.binding_order ?max_cycles app in
  let binding = Binding.unbound app in
  let rec place = function
    | [] -> Ok binding
    | a :: rest -> (
        (* Cost of tile t with a provisionally bound to it. *)
        let score t =
          binding.(a) <- t;
          let c = Cost.tile_cost weights app arch binding t in
          binding.(a) <- -1;
          c
        in
        let tiles = by_cost arch score (candidates app arch a) in
        match try_bind app arch binding a tiles with
        | Ok () -> place rest
        | Error e -> Error e)
  in
  place order

let optimise ~weights app arch binding =
  let order = List.rev (Cost.binding_order app) in
  let binding = Binding.copy binding in
  List.iter
    (fun a ->
      let original = binding.(a) in
      binding.(a) <- -1;
      (* Cost against the binding without a (paper Section 9.1, last par.). *)
      let score t = Cost.tile_cost weights app arch binding t in
      let tiles = by_cost arch score (candidates app arch a) in
      match try_bind app arch binding a tiles with
      | Ok () -> ()
      | Error _ ->
          (* The original tile is among the candidates, so this is
             unreachable for a valid input binding; restore defensively. *)
          binding.(a) <- original)
    order;
  binding

let bind ?max_cycles ~weights app arch =
  match bind_greedy ?max_cycles ~weights app arch with
  | Error e -> Error e
  | Ok binding -> Ok (optimise ~weights app arch binding)
