(** ASCII Gantt rendering of a constrained execution.

    A designer-facing view of what the allocation actually does: one lane
    per tile showing which actor occupies the processor at each time unit
    (TDMA stalls visible as gaps), plus lanes for the connection/sync
    actors. Rendered from the same deterministic execution the throughput
    analysis explores. *)

type t

val capture :
  ?max_states:int ->
  ?horizon:int ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  t
(** Execute and record the first [horizon] (default 80) time units.
    Exceptions as in {!Constrained.analyze}. *)

val render : t -> string
(** Lines like

    {v
    t1     |a1|a2|a1|a2|a1|.....|a2|...
    t2     |.....a3 a3|......
    c_d1   |ccccccccccc|
    v}

    one character per time unit: the actor's short id while its firing is
    in progress (TDMA-gated waits shown as ['.']), ['|'] at slice
    boundaries omitted for clarity — see the header row for the scale. *)

val throughput : t -> Sdf.Rat.t
(** The throughput of the underlying run (same as
    {!Constrained.analyze}). *)
