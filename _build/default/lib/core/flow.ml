module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

type attempt = {
  weights : Cost.weights;
  outcome : (Strategy.allocation, Strategy.failure) result;
}

type result = {
  allocation : Strategy.allocation option;
  attempts : attempt list;
}

let default_weight_ladder =
  [
    Cost.weights 0. 1. 2.;
    Cost.weights 0. 0. 1.;
    Cost.weights 0. 1. 0.;
    Cost.weights 1. 1. 1.;
    Cost.weights 1. 0. 0.;
  ]

let allocate_with_retry ?(weight_ladder = default_weight_ladder)
    ?connection_model ?max_states app arch =
  let rec go attempts = function
    | [] -> { allocation = None; attempts = List.rev attempts }
    | weights :: rest -> (
        let outcome =
          Strategy.allocate ~weights ?connection_model ?max_states app arch
        in
        let attempts = { weights; outcome } :: attempts in
        match outcome with
        | Ok alloc -> { allocation = Some alloc; attempts = List.rev attempts }
        | Error _ -> go attempts rest)
  in
  go [] weight_ladder
