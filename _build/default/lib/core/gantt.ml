module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type firing = { actor : int; start : int; finish : int }

type t = {
  ba : Bind_aware.t;
  horizon : int;
  firings : firing list;
  thr : Rat.t;
}

let capture ?max_states ?(horizon = 80) (ba : Bind_aware.t) ~schedules =
  let arch = ba.Bind_aware.arch in
  let firings = ref [] in
  let observer start actor =
    let tau = ba.Bind_aware.exec_times.(actor) in
    let finish =
      let t = ba.Bind_aware.tile_of.(actor) in
      if t < 0 then start + tau
      else
        Constrained.tdma_finish ~t:start ~tau
          ~w:(Archgraph.tile arch t).Tile.wheel
          ~omega:ba.Bind_aware.slices.(t)
    in
    firings := { actor; start; finish } :: !firings
  in
  let r = Constrained.analyze ~observer ?max_states ba ~schedules in
  {
    ba;
    horizon;
    firings = List.rev !firings;
    thr = r.Constrained.throughput;
  }

let symbol idx = Char.chr (Char.code 'A' + (idx mod 26))

let render t =
  let ba = t.ba in
  let g = ba.Bind_aware.graph in
  let arch = ba.Bind_aware.arch in
  let n = Sdfg.num_actors g in
  let buf = Buffer.create 1024 in
  (* Header: a time ruler marking every tenth unit. *)
  Buffer.add_string buf (Printf.sprintf "%-10s " "time");
  for u = 0 to t.horizon - 1 do
    Buffer.add_char buf (if u mod 10 = 0 then '|' else if u mod 5 = 0 then '+' else ' ')
  done;
  Buffer.add_char buf '\n';
  let lane name fill =
    Buffer.add_string buf (Printf.sprintf "%-10s " name);
    for u = 0 to t.horizon - 1 do
      Buffer.add_char buf (fill u)
    done;
    Buffer.add_char buf '\n'
  in
  (* One lane per tile hosting actors. *)
  Array.iter
    (fun (tile : Tile.t) ->
      let ti = tile.Tile.t_idx in
      let hosts = Array.exists (fun bt -> bt = ti) ba.Bind_aware.tile_of in
      if hosts then begin
        let w = tile.Tile.wheel and omega = ba.Bind_aware.slices.(ti) in
        lane tile.Tile.t_name (fun u ->
            match
              List.find_opt
                (fun f ->
                  ba.Bind_aware.tile_of.(f.actor) = ti
                  && u >= f.start && u < f.finish)
                t.firings
            with
            | Some f ->
                if omega >= w || u mod w < omega then symbol f.actor else '.'
            | None -> ' ')
      end)
    (Archgraph.tiles arch);
  (* One lane per transport/sync actor. *)
  for a = 0 to n - 1 do
    if ba.Bind_aware.tile_of.(a) < 0 then
      lane (Sdfg.actor_name g a) (fun u ->
          if
            List.exists (fun f -> f.actor = a && u >= f.start && u < f.finish)
              t.firings
          then symbol a
          else ' ')
  done;
  (* Legend. *)
  Buffer.add_string buf "legend: ";
  for a = 0 to n - 1 do
    if a > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "%c=%s" (symbol a) (Sdfg.actor_name g a))
  done;
  Buffer.add_string buf "  ('.' = firing stalled outside the TDMA slice)\n";
  Buffer.contents buf

let throughput t = t.thr
