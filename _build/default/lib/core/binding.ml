module Sdfg = Sdf.Sdfg
module Appgraph = Appmodel.Appgraph
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type t = int array

let unbound app = Array.make (Sdfg.num_actors app.Appgraph.graph) (-1)
let is_complete b = Array.for_all (fun t -> t >= 0) b
let copy = Array.copy

type channel_kind =
  | Internal of int
  | Split of { src_tile : int; dst_tile : int }
  | Dangling

let classify app binding ci =
  let c = Sdfg.channel app.Appgraph.graph ci in
  let ts = binding.(c.Sdfg.src) and td = binding.(c.Sdfg.dst) in
  if ts < 0 || td < 0 then Dangling
  else if ts = td then Internal ts
  else Split { src_tile = ts; dst_tile = td }

type tile_usage = { memory : int; conns : int; bw_in : int; bw_out : int }

let usage app arch binding =
  let nt = Platform.Archgraph.num_tiles arch in
  let mem = Array.make nt 0
  and conns = Array.make nt 0
  and bw_in = Array.make nt 0
  and bw_out = Array.make nt 0 in
  Array.iteri
    (fun a t ->
      if t >= 0 then
        match Appgraph.memory app a (Archgraph.tile arch t).Tile.proc_type with
        | Some m -> mem.(t) <- mem.(t) + m
        | None -> ())
    binding;
  Array.iteri
    (fun ci cr ->
      match classify app binding ci with
      | Dangling -> ()
      | Internal t ->
          mem.(t) <- mem.(t) + (cr.Appgraph.alpha_tile * cr.Appgraph.token_size)
      | Split { src_tile; dst_tile } ->
          mem.(src_tile) <-
            mem.(src_tile) + (cr.Appgraph.alpha_src * cr.Appgraph.token_size);
          mem.(dst_tile) <-
            mem.(dst_tile) + (cr.Appgraph.alpha_dst * cr.Appgraph.token_size);
          conns.(src_tile) <- conns.(src_tile) + 1;
          conns.(dst_tile) <- conns.(dst_tile) + 1;
          bw_out.(src_tile) <- bw_out.(src_tile) + cr.Appgraph.bandwidth;
          bw_in.(dst_tile) <- bw_in.(dst_tile) + cr.Appgraph.bandwidth)
    app.Appgraph.creqs;
  Array.init nt (fun t ->
      { memory = mem.(t); conns = conns.(t); bw_in = bw_in.(t); bw_out = bw_out.(t) })

type violation =
  | Unsupported_processor of { actor : int; tile : int }
  | No_wheel_time of { tile : int }
  | Memory_exceeded of { tile : int; used : int; avail : int }
  | Connections_exceeded of { tile : int; used : int; avail : int }
  | Bandwidth_exceeded of { tile : int; direction : [ `In | `Out ] }
  | No_connection of { channel : int; src_tile : int; dst_tile : int }
  | Zero_bandwidth_split of { channel : int }
  | Buffer_smaller_than_tokens of { channel : int }

exception Bad of violation

let check app arch binding =
  try
    Array.iteri
      (fun a t ->
        if t >= 0 then begin
          if not (Appgraph.supports app a (Archgraph.tile arch t).Tile.proc_type)
          then raise (Bad (Unsupported_processor { actor = a; tile = t }));
          if Tile.available_wheel (Archgraph.tile arch t) < 1 then
            raise (Bad (No_wheel_time { tile = t }))
        end)
      binding;
    Array.iteri
      (fun ci cr ->
        let ch = Sdfg.channel app.Appgraph.graph ci in
        match classify app binding ci with
        | Dangling -> ()
        | Internal _ ->
            (* Per-channel liveness: a bounded buffer smaller than
               prod + cons - gcd(prod, cons) (plus the resident initial
               tokens) blocks the channel forever [Ade et al.]. Self-loops
               hold their own tokens and need no slack. *)
            let live_bound =
              max
                (ch.Sdfg.prod + ch.Sdfg.cons
                - Sdf.Rat.gcd ch.Sdfg.prod ch.Sdfg.cons)
                ch.Sdfg.tokens
            in
            if ch.Sdfg.src <> ch.Sdfg.dst && cr.Appgraph.alpha_tile < live_bound
            then raise (Bad (Buffer_smaller_than_tokens { channel = ci }));
            if cr.Appgraph.alpha_tile < ch.Sdfg.tokens then
              raise (Bad (Buffer_smaller_than_tokens { channel = ci }))
        | Split { src_tile; dst_tile } ->
            if cr.Appgraph.bandwidth = 0 then
              raise (Bad (Zero_bandwidth_split { channel = ci }));
            if
              cr.Appgraph.alpha_src < ch.Sdfg.prod
              || cr.Appgraph.alpha_dst < max ch.Sdfg.cons ch.Sdfg.tokens
            then raise (Bad (Buffer_smaller_than_tokens { channel = ci }));
            if
              Archgraph.connection_between arch ~src:src_tile ~dst:dst_tile
              = None
            then
              raise
                (Bad (No_connection { channel = ci; src_tile; dst_tile })))
      app.Appgraph.creqs;
    let per_tile = usage app arch binding in
    Array.iteri
      (fun t u ->
        let tile = Archgraph.tile arch t in
        if u.memory > tile.Tile.mem then
          raise
            (Bad (Memory_exceeded { tile = t; used = u.memory; avail = tile.Tile.mem }));
        if u.conns > tile.Tile.max_conns then
          raise
            (Bad
               (Connections_exceeded
                  { tile = t; used = u.conns; avail = tile.Tile.max_conns }));
        if u.bw_in > tile.Tile.in_bw then
          raise (Bad (Bandwidth_exceeded { tile = t; direction = `In }));
        if u.bw_out > tile.Tile.out_bw then
          raise (Bad (Bandwidth_exceeded { tile = t; direction = `Out })))
      per_tile;
    Ok ()
  with Bad v -> Error v

let pp_violation app arch ppf v =
  let tname t = (Archgraph.tile arch t).Tile.t_name in
  match v with
  | Unsupported_processor { actor; tile } ->
      Format.fprintf ppf "actor %s cannot run on tile %s"
        (Sdfg.actor_name app.Appgraph.graph actor)
        (tname tile)
  | No_wheel_time { tile } ->
      Format.fprintf ppf "tile %s has no TDMA wheel time left" (tname tile)
  | Memory_exceeded { tile; used; avail } ->
      Format.fprintf ppf "memory exceeded on %s (%d > %d bits)" (tname tile)
        used avail
  | Connections_exceeded { tile; used; avail } ->
      Format.fprintf ppf "connections exceeded on %s (%d > %d)" (tname tile)
        used avail
  | Bandwidth_exceeded { tile; direction } ->
      Format.fprintf ppf "%s bandwidth exceeded on %s"
        (match direction with `In -> "incoming" | `Out -> "outgoing")
        (tname tile)
  | No_connection { channel; src_tile; dst_tile } ->
      Format.fprintf ppf "no connection %s -> %s for channel %s"
        (tname src_tile) (tname dst_tile)
        (Sdfg.channel_name app.Appgraph.graph channel)
  | Zero_bandwidth_split { channel } ->
      Format.fprintf ppf "channel %s has no bandwidth budget but was split"
        (Sdfg.channel_name app.Appgraph.graph channel)
  | Buffer_smaller_than_tokens { channel } ->
      Format.fprintf ppf
        "channel %s has fewer buffer slots than initial tokens"
        (Sdfg.channel_name app.Appgraph.graph channel)

let pp app arch ppf binding =
  Array.iteri
    (fun a t ->
      Format.fprintf ppf "%s -> %s@ "
        (Sdfg.actor_name app.Appgraph.graph a)
        (if t < 0 then "?" else (Archgraph.tile arch t).Tile.t_name))
    binding
