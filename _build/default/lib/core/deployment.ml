module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Xml = Sdf.Xml
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph
module Appgraph = Appmodel.Appgraph

let to_xml (alloc : Strategy.allocation) =
  let app = alloc.Strategy.app in
  let g = app.Appgraph.graph in
  let arch = alloc.Strategy.arch in
  let tile_name t = (Archgraph.tile arch t).Tile.t_name in
  let bindings =
    Array.to_list
      (Array.mapi
         (fun a t ->
           Xml.Element
             ( "binding",
               [ ("actor", Sdfg.actor_name g a); ("tile", tile_name t) ],
               [] ))
         alloc.Strategy.binding)
  in
  let order s =
    String.concat " "
      (Array.to_list (Array.map (Sdfg.actor_name g) s))
  in
  let tiles =
    Array.to_list alloc.Strategy.slices
    |> List.mapi (fun t omega -> (t, omega))
    |> List.filter_map (fun (t, omega) ->
           if omega = 0 then None
           else
             let sched_elem =
               match alloc.Strategy.schedules.(t) with
               | Some s ->
                   [
                     Xml.Element
                       ( "schedule",
                         [
                           ("prefix", order s.Schedule.prefix);
                           ("period", order s.Schedule.period);
                         ],
                         [] );
                   ]
               | None -> []
             in
             Some
               (Xml.Element
                  ( "tile",
                    [
                      ("name", tile_name t);
                      ("slice", string_of_int omega);
                      ( "wheel",
                        string_of_int (Archgraph.tile arch t).Tile.wheel );
                    ],
                    sched_elem )))
  in
  Xml.Element
    ( "deployment",
      [
        ("application", app.Appgraph.app_name);
        ("throughput", Rat.to_string alloc.Strategy.throughput);
      ],
      bindings @ tiles )

let to_string alloc = Xml.to_string (to_xml alloc)

let write_file path alloc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string alloc))

type summary = {
  application : string;
  throughput : Rat.t;
  bindings : (string * string) list;
  slices : (string * int) list;
}

let summary_of_xml root =
  let fail m = failwith ("Deployment.summary_of_xml: " ^ m) in
  if Xml.tag root <> "deployment" then fail "expected <deployment>";
  let attr node name =
    match Xml.attr_opt node name with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing attribute %s" name)
  in
  let throughput =
    match String.split_on_char '/' (attr root "throughput") with
    | [ n ] -> Rat.of_int (int_of_string n)
    | [ n; d ] -> Rat.make (int_of_string n) (int_of_string d)
    | _ -> fail "bad throughput"
  in
  {
    application = attr root "application";
    throughput;
    bindings =
      List.map
        (fun b -> (attr b "actor", attr b "tile"))
        (Xml.children root "binding");
    slices =
      List.map
        (fun t -> (attr t "name", int_of_string (attr t "slice")))
        (Xml.children root "tile");
  }
