module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** The two cost functions steering the binding step (paper Section 9.1).

    {b Actor criticality} (Eqn. 1) estimates how strongly an actor's
    execution time limits throughput, directly on the SDFG: the maximum over
    all simple cycles through the actor of

    [sum_{b in c} gamma b * sup_pt tau(b, pt)  /  sum_{d=(u,v,p,q) in c} Tok d / q]

    {b Tile cost} (Eqn. 2) scores a candidate tile under a (partial)
    binding as [c1 * l_p + c2 * l_m + c3 * l_c], where [l_p] is the tile's
    share of the application's total work, [l_m] its memory fill fraction
    and [l_c] the average of its bandwidth and connection fill fractions. *)

type weights = { c1 : float; c2 : float; c3 : float }

val weights : float -> float -> float -> weights

type criticality = {
  per_actor : Rat.t array;
  truncated : bool;
      (** cycle enumeration hit its cap; the values are lower bounds *)
}

val actor_criticality : ?max_cycles:int -> Appgraph.t -> criticality
(** Actors on no cycle get criticality 0 (they never limit throughput
    structurally); the binding order breaks such ties by total work
    [gamma a * sup tau]. *)

val binding_order : ?max_cycles:int -> Appgraph.t -> int list
(** Actor indices in decreasing criticality (Eqn.-1 value, then total work,
    then index) — the order in which the binding step places actors. *)

val processing_load : Appgraph.t -> Archgraph.t -> Binding.t -> int -> float
(** [l_p t]: work bound to [t] (with [t]'s processor type) over the
    application's total work (with worst-case processor types). *)

val memory_load : Appgraph.t -> Archgraph.t -> Binding.t -> int -> float
(** [l_m t]. *)

val communication_load : Appgraph.t -> Archgraph.t -> Binding.t -> int -> float
(** [l_c t]: mean of output-bandwidth, input-bandwidth and connection fill
    fractions. *)

val tile_cost :
  weights -> Appgraph.t -> Archgraph.t -> Binding.t -> int -> float
(** Eqn. 2 for one tile under the given (partial) binding. *)
