(** Strongly connected components and simple-cycle enumeration.

    The actor-criticality estimate of the allocation strategy (paper Eqn. 1)
    maximises a ratio over all simple cycles through an actor, directly on
    the SDFG. Application graphs are small (a handful to a few tens of
    actors), so explicit enumeration is the intended implementation; a cap
    protects against pathological inputs, in which case the caller falls
    back to a per-SCC approximation. *)

val sccs : Sdfg.t -> int list list
(** Tarjan's strongly connected components, as lists of actor indices, in
    reverse topological order of the component DAG. Singleton components
    without a self-loop are included. *)

val scc_of : Sdfg.t -> int array
(** Per-actor component id (dense, [0 ..]), consistent with {!sccs}. *)

type enumeration = {
  cycles : int list list;
      (** Each cycle is the list of channel indices traversed, in order;
          a self-loop channel forms a 1-element cycle. Every simple cycle
          of the multigraph appears exactly once (up to rotation). *)
  truncated : bool;
      (** True when enumeration stopped at [max_cycles]; the list then holds
          only the first [max_cycles] cycles found. *)
}

val simple_cycles : ?max_cycles:int -> Sdfg.t -> enumeration
(** Enumerate simple cycles (distinct actors, arbitrary channels between
    them). [max_cycles] defaults to [100_000]. *)

val cycles_through : enumeration -> Sdfg.t -> int -> int list list
(** Cycles of the enumeration that pass through the given actor. *)
