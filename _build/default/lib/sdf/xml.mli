(** A minimal XML subset: elements, attributes and text.

    Enough to read and write the SDF3-style XML documents used by
    {!Appmodel.Sdf3_xml}, without external dependencies. Supports
    comments and an XML declaration on input; no namespaces, CDATA or
    entities beyond [&amp; &lt; &gt; &quot; &apos;]. *)

type t =
  | Element of string * (string * string) list * t list
      (** tag, attributes (in document order), children *)
  | Text of string

exception Parse_error of { position : int; message : string }

val parse : string -> t
(** Parse a document and return its root element (the XML declaration,
    comments and inter-element whitespace are dropped).
    @raise Parse_error on malformed input. *)

val to_string : ?declaration:bool -> t -> string
(** Render with two-space indentation. [declaration] (default true) emits
    the [<?xml ...?>] header. *)

(** {1 Navigation helpers} *)

val tag : t -> string
(** @raise Invalid_argument on [Text]. *)

val attr : t -> string -> string
(** @raise Not_found when the attribute is absent (or on [Text]). *)

val attr_opt : t -> string -> string option

val child : t -> string -> t
(** First child element with the given tag. @raise Not_found. *)

val child_opt : t -> string -> t option
val children : t -> string -> t list

val text : t -> string
(** Concatenated text content of the element's immediate children. *)
