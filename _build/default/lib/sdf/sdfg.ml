type actor = { a_idx : int; a_name : string }

type channel = {
  c_idx : int;
  c_name : string;
  src : int;
  dst : int;
  prod : int;
  cons : int;
  tokens : int;
}

type t = {
  g_actors : actor array;
  g_channels : channel array;
  g_out : int list array; (* per actor: outgoing channel indices, in order *)
  g_in : int list array;
  g_by_name : (string, int) Hashtbl.t;
}

module Builder = struct
  type t = {
    mutable b_actors : actor list; (* reversed *)
    mutable b_channels : channel list; (* reversed *)
    mutable b_nactors : int;
    mutable b_nchannels : int;
    b_names : (string, int) Hashtbl.t;
  }

  let create () =
    {
      b_actors = [];
      b_channels = [];
      b_nactors = 0;
      b_nchannels = 0;
      b_names = Hashtbl.create 16;
    }

  let add_actor b name =
    if Hashtbl.mem b.b_names name then
      invalid_arg (Printf.sprintf "Sdfg.Builder.add_actor: duplicate name %S" name);
    let idx = b.b_nactors in
    Hashtbl.add b.b_names name idx;
    b.b_actors <- { a_idx = idx; a_name = name } :: b.b_actors;
    b.b_nactors <- idx + 1;
    idx

  let add_channel b ?name ?(tokens = 0) ~src ~dst ~prod ~cons () =
    if prod <= 0 || cons <= 0 then
      invalid_arg "Sdfg.Builder.add_channel: rates must be positive";
    if tokens < 0 then
      invalid_arg "Sdfg.Builder.add_channel: negative initial tokens";
    if src < 0 || src >= b.b_nactors || dst < 0 || dst >= b.b_nactors then
      invalid_arg "Sdfg.Builder.add_channel: actor index out of range";
    let idx = b.b_nchannels in
    let c_name = match name with Some n -> n | None -> Printf.sprintf "d%d" idx in
    b.b_channels <-
      { c_idx = idx; c_name; src; dst; prod; cons; tokens } :: b.b_channels;
    b.b_nchannels <- idx + 1;
    idx

  let build b =
    let g_actors = Array.of_list (List.rev b.b_actors) in
    let g_channels = Array.of_list (List.rev b.b_channels) in
    let n = Array.length g_actors in
    let g_out = Array.make n [] and g_in = Array.make n [] in
    (* Iterate right-to-left so that adjacency lists end up in channel order. *)
    for i = Array.length g_channels - 1 downto 0 do
      let c = g_channels.(i) in
      g_out.(c.src) <- c.c_idx :: g_out.(c.src);
      g_in.(c.dst) <- c.c_idx :: g_in.(c.dst)
    done;
    { g_actors; g_channels; g_out; g_in; g_by_name = Hashtbl.copy b.b_names }
end

let of_lists ~actors ~channels =
  let b = Builder.create () in
  List.iter (fun name -> ignore (Builder.add_actor b name)) actors;
  let idx name =
    match Hashtbl.find_opt b.Builder.b_names name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Sdfg.of_lists: unknown actor %S" name)
  in
  let add (src, dst, prod, cons, tokens) =
    ignore
      (Builder.add_channel b ~tokens ~src:(idx src) ~dst:(idx dst) ~prod ~cons ())
  in
  List.iter add channels;
  Builder.build b

let num_actors g = Array.length g.g_actors
let num_channels g = Array.length g.g_channels
let actor g i = g.g_actors.(i)
let channel g i = g.g_channels.(i)
let actors g = g.g_actors
let channels g = g.g_channels

let actor_index g name =
  match Hashtbl.find_opt g.g_by_name name with
  | Some i -> i
  | None -> raise Not_found

let actor_name g i = g.g_actors.(i).a_name
let channel_name g i = g.g_channels.(i).c_name
let out_channels g a = g.g_out.(a)
let in_channels g a = g.g_in.(a)
let is_self_loop g c = g.g_channels.(c).src = g.g_channels.(c).dst

let has_unit_self_loop g a =
  List.exists
    (fun ci ->
      let c = g.g_channels.(ci) in
      c.dst = a && c.prod = 1 && c.cons = 1 && c.tokens >= 1)
    g.g_out.(a)

let is_weakly_connected g =
  let n = num_actors g in
  if n <= 1 then true
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visit j = if not seen.(j) then (seen.(j) <- true; stack := j :: !stack) in
    let rec loop () =
      match !stack with
      | [] -> ()
      | a :: rest ->
          stack := rest;
          List.iter (fun ci -> visit g.g_channels.(ci).dst) g.g_out.(a);
          List.iter (fun ci -> visit g.g_channels.(ci).src) g.g_in.(a);
          loop ()
    in
    loop ();
    Array.for_all Fun.id seen
  end

let map_tokens g f =
  let g_channels = Array.map (fun c -> { c with tokens = f c }) g.g_channels in
  { g with g_channels }

let pp ppf g =
  Format.fprintf ppf "@[<v>SDFG: %d actors, %d channels@," (num_actors g)
    (num_channels g);
  Array.iter (fun a -> Format.fprintf ppf "  actor %s@," a.a_name) g.g_actors;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  %s: %s -(%d)-> (%d)- %s, tokens=%d@," c.c_name
        (actor_name g c.src) c.prod c.cons (actor_name g c.dst) c.tokens)
    g.g_channels;
  Format.fprintf ppf "@]"
