type t = { num : int; den : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let make n d =
  if d = 0 then raise Division_by_zero
  else begin
    let sign = if d < 0 then -1 else 1 in
    let n = sign * n and d = sign * d in
    let g = gcd n d in
    if g = 0 then { num = 0; den = 1 } else { num = n / g; den = d / g }
  end

let of_int n = { num = n; den = 1 }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let infinity = { num = 1; den = 0 }

let is_infinite r = r.den = 0

let num r = r.num
let den r = r.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }
let inv a = make a.den a.num
let mul_int a k = make (a.num * k) a.den
let div_int a k = make a.num (a.den * k)

let compare a b =
  match (a.den, b.den) with
  | 0, 0 -> 0
  | 0, _ -> 1
  | _, 0 -> -1
  | _ -> Stdlib.compare (a.num * b.den) (b.num * a.den)

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) a b = compare a b = 0

let to_float r =
  if Stdlib.( = ) r.den 0 then Float.infinity
  else float_of_int r.num /. float_of_int r.den

let floor r =
  if Stdlib.( = ) r.den 0 then invalid_arg "Rat.floor: infinite"
  else if Stdlib.( >= ) r.num 0 then r.num / r.den
  else -((-r.num + r.den - 1) / r.den)

let ceil r =
  if Stdlib.( = ) r.den 0 then invalid_arg "Rat.ceil: infinite"
  else if Stdlib.( >= ) r.num 0 then (r.num + r.den - 1) / r.den
  else -(-r.num / r.den)

let pp ppf r =
  if Stdlib.( = ) r.den 0 then Format.pp_print_string ppf "inf"
  else if Stdlib.( = ) r.den 1 then Format.fprintf ppf "%d" r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let to_string r = Format.asprintf "%a" pp r
