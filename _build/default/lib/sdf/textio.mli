(** Plain-text SDFG serialisation.

    A small line-based format used by the CLI tools (the SDF3 tool set uses
    XML; a dependency-free text format plays the same role here):

    {v
    sdfg <name>
    actor <name> [<exec-time>]
    channel <name> <src> -> <dst> rates <prod> <cons> [tokens <n>]
    # comment
    v}

    Blank lines and [#] comments are ignored. Actor declarations must precede
    the channels that use them. Execution times are optional but must be
    given either for all actors or for none. *)

exception Parse_error of { line : int; message : string }

type document = {
  doc_name : string;
  graph : Sdfg.t;
  exec_times : int array option;
      (** per-actor execution times, when every actor declared one *)
}

val parse : string -> document
(** @raise Parse_error on malformed input. *)

val parse_file : string -> document
(** @raise Parse_error or [Sys_error]. *)

val print : ?exec_times:int array -> string -> Sdfg.t -> string
(** [print name g] renders the graph in the format accepted by {!parse};
    parsing the result reproduces the graph (and timing) exactly. *)

val write_file : ?exec_times:int array -> string -> string -> Sdfg.t -> unit
(** [write_file path name g]. *)
