(** SDF to homogeneous-SDF (HSDF) conversion.

    The classic transformation [Sriram & Bhattacharyya 2000]: each actor [a]
    is replaced by [gamma a] copies (one per firing in an iteration) and each
    channel is expanded into per-token precedence edges between the producing
    and consuming firings, with initial tokens becoming inter-iteration edges
    carrying one token per iteration boundary crossed.

    The paper uses this conversion only as the thing to {e avoid}: the H.263
    decoder SDFG of Fig. 1 has 4 actors but its HSDFG has 4754 (which this
    module reproduces exactly), and every HSDF-based allocation pays that
    blow-up in analysis time. We implement it faithfully to serve as the
    baseline comparator and as a cross-validation oracle for the SDFG
    state-space throughput analysis. *)

type t = {
  graph : Sdfg.t;  (** the HSDFG; all rates are 1 *)
  copy_of : (int * int) array;
      (** for each HSDF actor index, the originating [(actor, firing)] pair
          with [firing] in [0 .. gamma actor - 1] *)
  copies : int array array;
      (** for each original actor, its HSDF copy indices in firing order *)
  channel_of : int array;
      (** for each HSDF channel, the originating channel of the source
          graph (under [dedupe], a merged edge keeps the origin of its
          tightest token count) *)
}

val convert : ?dedupe:bool -> Sdfg.t -> int array -> t
(** [convert g gamma] expands [g]. With [dedupe] (default [true]), parallel
    precedence edges between the same pair of firings are merged keeping the
    smallest token count; this preserves the precedence semantics (and hence
    the maximum cycle ratio) and substantially shrinks the result.

    HSDF actor naming: copy [k] of actor ["a"] is named ["a#k"]. *)

val timing : t -> int array -> int array
(** Lift a per-actor execution-time vector of the original graph to the
    HSDF copies. *)
