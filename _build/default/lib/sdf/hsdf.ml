type t = {
  graph : Sdfg.t;
  copy_of : (int * int) array;
  copies : int array array;
  channel_of : int array;
}

let ceil_div a b =
  (* ceil(a / b) for b > 0, correct for negative a. *)
  if a >= 0 then (a + b - 1) / b else -(-a / b)

let convert ?(dedupe = true) g gamma =
  let n = Sdfg.num_actors g in
  let b = Sdfg.Builder.create () in
  let copies =
    Array.init n (fun a ->
        Array.init gamma.(a) (fun k ->
            Sdfg.Builder.add_actor b
              (Printf.sprintf "%s#%d" (Sdfg.actor_name g a) k)))
  in
  let total = Array.fold_left ( + ) 0 gamma in
  let copy_of = Array.make total (0, 0) in
  Array.iteri
    (fun a per_firing ->
      Array.iteri (fun k idx -> copy_of.(idx) <- (a, k)) per_firing)
    copies;
  let edges : (int * int, int * int) Hashtbl.t = Hashtbl.create 1024 in
  let origins = ref [] in
  let add_edge src dst tokens origin =
    if dedupe then begin
      match Hashtbl.find_opt edges (src, dst) with
      | Some (t, _) when t <= tokens -> ()
      | _ -> Hashtbl.replace edges (src, dst) (tokens, origin)
    end
    else begin
      ignore (Sdfg.Builder.add_channel b ~tokens ~src ~dst ~prod:1 ~cons:1 ());
      origins := origin :: !origins
    end
  in
  Array.iter
    (fun c ->
      let a = c.Sdfg.src and b_act = c.Sdfg.dst in
      let p = c.Sdfg.prod and q = c.Sdfg.cons and tok = c.Sdfg.tokens in
      let ga = gamma.(a) in
      for l = 1 to gamma.(b_act) do
        for k = 1 to q do
          let token_index = ((l - 1) * q) + k in
          (* Producing firing in the infinite firing sequence of [a];
             non-positive j means the token existed initially, i.e. it is
             produced by a firing of a previous iteration. *)
          let j = ceil_div (token_index - tok) p in
          let wraps = if j >= 1 then 0 else ceil_div (1 - j) ga in
          let j' = j + (wraps * ga) in
          add_edge copies.(a).(j' - 1) copies.(b_act).(l - 1) wraps c.Sdfg.c_idx
        done
      done)
    (Sdfg.channels g);
  if dedupe then
    Hashtbl.iter
      (fun (src, dst) (tokens, origin) ->
        ignore (Sdfg.Builder.add_channel b ~tokens ~src ~dst ~prod:1 ~cons:1 ());
        origins := origin :: !origins)
      edges;
  {
    graph = Sdfg.Builder.build b;
    copy_of;
    copies;
    channel_of = Array.of_list (List.rev !origins);
  }

let timing h taus =
  Array.map (fun (a, _) -> taus.(a)) h.copy_of
