let to_dot ?(name = "sdfg") ?exec_times g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  Array.iter
    (fun a ->
      let label =
        match exec_times with
        | Some taus -> Printf.sprintf "%s\\n%d" a.Sdfg.a_name taus.(a.Sdfg.a_idx)
        | None -> a.Sdfg.a_name
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" a.Sdfg.a_idx label))
    (Sdfg.actors g);
  Array.iter
    (fun c ->
      let tok = if c.Sdfg.tokens > 0 then Printf.sprintf " [%d]" c.Sdfg.tokens else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d,%d%s\", taillabel=\"%d\", headlabel=\"%d\"];\n"
           c.Sdfg.src c.Sdfg.dst c.Sdfg.prod c.Sdfg.cons tok c.Sdfg.prod c.Sdfg.cons))
    (Sdfg.channels g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?exec_times path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?exec_times g))
