(* Tarjan's algorithm, iterative to be safe on deep graphs. *)
let sccs g =
  let n = Sdfg.num_actors g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  (* Explicit DFS stack: (actor, remaining successor channels). *)
  let strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    let work = ref [ (v, Sdfg.out_channels g v) ] in
    let rec loop () =
      match !work with
      | [] -> ()
      | (u, []) :: rest ->
          work := rest;
          (match rest with
          | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
          | [] -> ());
          if lowlink.(u) = index.(u) then begin
            let rec pop acc =
              match !stack with
              | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  if w = u then w :: acc else pop (w :: acc)
              | [] -> assert false
            in
            components := pop [] :: !components
          end;
          loop ()
      | (u, ci :: cis) :: rest ->
          work := (u, cis) :: rest;
          let w = (Sdfg.channel g ci).Sdfg.dst in
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, Sdfg.out_channels g w) :: !work
          end
          else if on_stack.(w) then lowlink.(u) <- min lowlink.(u) index.(w);
          loop ()
    in
    loop ()
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

let scc_of g =
  let comps = sccs g in
  let ids = Array.make (Sdfg.num_actors g) (-1) in
  List.iteri (fun i comp -> List.iter (fun a -> ids.(a) <- i) comp) comps;
  ids

type enumeration = { cycles : int list list; truncated : bool }

exception Capped

(* Enumerate simple cycles by DFS: a cycle is reported from its smallest
   actor index, and the search from start [s] only visits actors >= s, so
   each cycle is found exactly once. Channels are part of the cycle identity
   (parallel channels yield distinct cycles), which Eqn. 1 needs because
   parallel channels may carry different token counts. *)
let simple_cycles ?(max_cycles = 100_000) g =
  let n = Sdfg.num_actors g in
  let comp = scc_of g in
  let found = ref [] in
  let count = ref 0 in
  let emit path = (* path is reversed channel list *)
    if !count >= max_cycles then raise Capped;
    incr count;
    found := List.rev path :: !found
  in
  let on_path = Array.make n false in
  let rec dfs s v path =
    List.iter
      (fun ci ->
        let c = Sdfg.channel g ci in
        let w = c.Sdfg.dst in
        if w = s then emit (ci :: path)
        else if w > s && (not on_path.(w)) && comp.(w) = comp.(s) then begin
          on_path.(w) <- true;
          dfs s w (ci :: path);
          on_path.(w) <- false
        end)
      (Sdfg.out_channels g v)
  in
  let truncated =
    try
      for s = 0 to n - 1 do
        on_path.(s) <- true;
        dfs s s [];
        on_path.(s) <- false
      done;
      false
    with Capped -> true
  in
  { cycles = List.rev !found; truncated }

let cycles_through enumeration g a =
  let touches cyc =
    List.exists
      (fun ci ->
        let c = Sdfg.channel g ci in
        c.Sdfg.src = a || c.Sdfg.dst = a)
      cyc
  in
  List.filter touches enumeration.cycles
