(** Synchronous Dataflow Graphs (paper, Definition 1).

    An SDFG is a finite set of actors connected by dependency channels
    ("edges" in the paper; we say channel to avoid clashing with graph-theory
    edges). A channel [d = (a, b, p, q)] carries [p] tokens produced per
    firing of [a] and [q] tokens consumed per firing of [b], plus a number of
    initial tokens [Tok d].

    The graph structure here is purely structural: execution times, resource
    requirements and bindings are layered on top by the [appmodel] and [core]
    libraries, because the same structure is reused with different timings
    (e.g. the binding-aware graph of paper Section 8.1).

    Actors and channels are referred to by dense integer indices, which every
    analysis in this library uses for array-based state. *)

type actor = { a_idx : int; a_name : string }

type channel = {
  c_idx : int;
  c_name : string;
  src : int;  (** producing actor index *)
  dst : int;  (** consuming actor index *)
  prod : int;  (** production rate [p >= 1] *)
  cons : int;  (** consumption rate [q >= 1] *)
  tokens : int;  (** initial tokens [>= 0] *)
}

type t
(** An immutable SDFG. *)

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_actor : t -> string -> int
  (** [add_actor b name] registers an actor and returns its index. Names
      must be unique within a graph.
      @raise Invalid_argument on duplicate names. *)

  val add_channel :
    t -> ?name:string -> ?tokens:int -> src:int -> dst:int -> prod:int ->
    cons:int -> unit -> int
  (** Registers a channel and returns its index. The default [name] is
      ["dN"] for the [N]-th channel; [tokens] defaults to [0].
      @raise Invalid_argument on non-positive rates, negative token counts
      or out-of-range actor indices. *)

  val build : t -> graph
end

val of_lists :
  actors:string list ->
  channels:(string * string * int * int * int) list ->
  t
(** [of_lists ~actors ~channels] builds a graph from actor names and
    channels given as [(src_name, dst_name, prod, cons, tokens)]. Channel
    names are generated. Convenience wrapper over {!Builder} for tests and
    examples. *)

(** {1 Accessors} *)

val num_actors : t -> int
val num_channels : t -> int
val actor : t -> int -> actor
val channel : t -> int -> channel
val actors : t -> actor array
val channels : t -> channel array

val actor_index : t -> string -> int
(** @raise Not_found if no actor has that name. *)

val actor_name : t -> int -> string
val channel_name : t -> int -> string

val out_channels : t -> int -> int list
(** Channel indices produced by the given actor (self-loops included). *)

val in_channels : t -> int -> int list
(** Channel indices consumed by the given actor (self-loops included). *)

val is_self_loop : t -> int -> bool
(** Whether the channel's producer and consumer are the same actor. *)

val has_unit_self_loop : t -> int -> bool
(** Whether the actor has a self-loop channel with [prod = cons = 1] and at
    least one initial token, i.e. its auto-concurrency is already bounded
    (paper Section 8.1: such actors do not receive an extra self-edge in the
    binding-aware graph). *)

(** {1 Structure queries} *)

val is_weakly_connected : t -> bool
(** Whether the undirected version of the graph is connected (trivially true
    for the empty graph and singletons). *)

val map_tokens : t -> (channel -> int) -> t
(** Functionally update the initial-token count of every channel. *)

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump of the actors and channels. *)
