exception Parse_error of { line : int; message : string }

type document = {
  doc_name : string;
  graph : Sdfg.t;
  exec_times : int array option;
}

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let int_of ln what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail ln "expected integer for %s, got %S" what s

let parse text =
  let lines = String.split_on_char '\n' text in
  let b = Sdfg.Builder.create () in
  let name = ref None in
  let actor_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let taus = ref [] (* (actor idx, tau), reversed *) in
  let add_actor ln n tau =
    if Hashtbl.mem actor_ids n then fail ln "duplicate actor %S" n
    else begin
      let idx = Sdfg.Builder.add_actor b n in
      Hashtbl.add actor_ids n idx;
      match tau with
      | None -> ()
      | Some t ->
          if t < 0 then fail ln "negative execution time"
          else taus := (idx, t) :: !taus
    end
  in
  let actor_id ln s =
    match Hashtbl.find_opt actor_ids s with
    | Some i -> i
    | None -> fail ln "unknown actor %S" s
  in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      match tokens_of_line (strip_comment raw) with
      | [] -> ()
      | [ "sdfg"; n ] ->
          if !name <> None then fail ln "duplicate sdfg header" else name := Some n
      | "sdfg" :: _ -> fail ln "sdfg header takes exactly one name"
      | [ "actor"; n ] -> add_actor ln n None
      | [ "actor"; n; tau ] -> add_actor ln n (Some (int_of ln "execution time" tau))
      | "actor" :: _ -> fail ln "actor declaration: actor <name> [<exec-time>]"
      | "channel" :: cname :: src :: "->" :: dst :: "rates" :: prod :: cons :: rest ->
          let tokens =
            match rest with
            | [] -> 0
            | [ "tokens"; t ] -> int_of ln "tokens" t
            | _ -> fail ln "trailing junk after channel declaration"
          in
          let prod = int_of ln "prod rate" prod in
          let cons = int_of ln "cons rate" cons in
          if prod <= 0 || cons <= 0 then fail ln "rates must be positive";
          if tokens < 0 then fail ln "tokens must be non-negative";
          ignore
            (Sdfg.Builder.add_channel b ~name:cname ~tokens ~src:(actor_id ln src)
               ~dst:(actor_id ln dst) ~prod ~cons ())
      | "channel" :: _ ->
          fail ln "expected: channel <name> <src> -> <dst> rates <p> <q> [tokens <n>]"
      | kw :: _ -> fail ln "unknown keyword %S" kw)
    lines;
  match !name with
  | None -> fail 1 "missing sdfg header"
  | Some doc_name ->
      let graph = Sdfg.Builder.build b in
      let n = Sdfg.num_actors graph in
      let taus = !taus in
      let exec_times =
        if taus = [] then None
        else if List.length taus <> n then
          fail 1 "execution times must be given for all actors or none"
        else begin
          let arr = Array.make n 0 in
          List.iter (fun (idx, t) -> arr.(idx) <- t) taus;
          Some arr
        end
      in
      { doc_name; graph; exec_times }

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))

let print ?exec_times name g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "sdfg %s\n" name);
  Array.iter
    (fun a ->
      match exec_times with
      | Some taus ->
          Buffer.add_string buf
            (Printf.sprintf "actor %s %d\n" a.Sdfg.a_name taus.(a.Sdfg.a_idx))
      | None -> Buffer.add_string buf (Printf.sprintf "actor %s\n" a.Sdfg.a_name))
    (Sdfg.actors g);
  Array.iter
    (fun c ->
      let tok = if c.Sdfg.tokens > 0 then Printf.sprintf " tokens %d" c.Sdfg.tokens else "" in
      Buffer.add_string buf
        (Printf.sprintf "channel %s %s -> %s rates %d %d%s\n" c.Sdfg.c_name
           (Sdfg.actor_name g c.Sdfg.src) (Sdfg.actor_name g c.Sdfg.dst)
           c.Sdfg.prod c.Sdfg.cons tok))
    (Sdfg.channels g);
  Buffer.contents buf

let write_file ?exec_times path name g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print ?exec_times name g))
