lib/sdf/hsdf.mli: Sdfg
