lib/sdf/deadlock.mli: Sdfg
