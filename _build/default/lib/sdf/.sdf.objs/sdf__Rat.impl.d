lib/sdf/rat.ml: Float Format Stdlib
