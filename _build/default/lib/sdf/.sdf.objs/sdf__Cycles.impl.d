lib/sdf/cycles.ml: Array List Sdfg
