lib/sdf/deadlock.ml: Array Fun List Repetition Sdfg
