lib/sdf/textio.mli: Sdfg
