lib/sdf/repetition.ml: Array Fun List Printf Rat Sdfg
