lib/sdf/xml.mli:
