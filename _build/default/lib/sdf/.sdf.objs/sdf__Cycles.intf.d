lib/sdf/cycles.mli: Sdfg
