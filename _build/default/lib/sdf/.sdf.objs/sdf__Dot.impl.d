lib/sdf/dot.ml: Array Buffer Fun Printf Sdfg
