lib/sdf/rat.mli: Format
