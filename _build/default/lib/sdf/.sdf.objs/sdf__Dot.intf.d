lib/sdf/dot.mli: Sdfg
