lib/sdf/sdfg.mli: Format
