lib/sdf/repetition.mli: Sdfg
