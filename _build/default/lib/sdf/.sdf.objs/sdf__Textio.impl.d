lib/sdf/textio.ml: Array Buffer Fun Hashtbl In_channel List Printf Sdfg String
