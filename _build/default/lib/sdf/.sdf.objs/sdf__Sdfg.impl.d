lib/sdf/sdfg.ml: Array Format Fun Hashtbl List Printf
