lib/sdf/hsdf.ml: Array Hashtbl List Printf Sdfg
