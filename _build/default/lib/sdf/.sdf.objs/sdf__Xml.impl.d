lib/sdf/xml.ml: Buffer List Printf String
