(** Exact rational arithmetic over native integers.

    Repetition vectors, cycle ratios and throughput values in SDFG analysis
    are rationals. Floating point is not acceptable here: the resource
    allocation flow compares throughput values against constraints and the
    paper's running example is validated exactly (1/2, 1/29, 1/30). All
    values are kept normalised (gcd 1, positive denominator), which keeps the
    magnitudes produced by the algorithms in this library far away from the
    63-bit overflow boundary. *)

type t = private { num : int; den : int }
(** A normalised rational [num/den] with [den > 0] and [gcd |num| den = 1]. *)

val make : int -> int -> t
(** [make n d] is the normalised rational [n/d].
    @raise Division_by_zero if [d = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val infinity : t
(** Conventional value for "unbounded"; represented as [1/0] and only
    produced or consumed by {!is_infinite}, comparisons and printing.
    Arithmetic on infinity raises [Division_by_zero]. *)

val is_infinite : t -> bool

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by {!zero}. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val compare : t -> t -> int
(** Total order; {!infinity} is greater than every finite value. *)

val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool

val to_float : t -> float
val floor : t -> int
val ceil : t -> int

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int

val pp : Format.formatter -> t -> unit
(** Prints ["n/d"], or ["n"] when the denominator is 1, or ["inf"]. *)

val to_string : t -> string
