(** Repetition vectors and consistency (paper, Definition 2).

    A repetition vector assigns to every actor a firing count such that the
    token distribution is unchanged after each actor [a] fires [gamma a]
    times: [p * gamma a = q * gamma b] for every channel [(a, b, p, q)].
    An SDFG is consistent iff a non-trivial (everywhere positive) repetition
    vector exists; the smallest one is {e the} repetition vector. *)

type result =
  | Consistent of int array
      (** The smallest non-trivial repetition vector, indexed by actor. *)
  | Inconsistent of { channel : int }
      (** Rate equations conflict on this channel (witness). *)
  | Disconnected
      (** The graph is not weakly connected; a single smallest repetition
          vector is not well defined across components, and such graphs are
          rejected by the allocation flow. *)

val compute : Sdfg.t -> result

val vector_exn : Sdfg.t -> int array
(** Like {!compute} but raising.
    @raise Invalid_argument if the graph is inconsistent or disconnected. *)

val is_consistent : Sdfg.t -> bool

val check : Sdfg.t -> int array -> bool
(** [check g gamma] verifies the balance equation on every channel and that
    all entries are positive. *)

val iteration_firings : int array -> int
(** Total number of firings in one graph iteration (sum of the vector); the
    actor count of the corresponding HSDFG. *)
