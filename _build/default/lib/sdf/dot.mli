(** Graphviz DOT export for SDFGs.

    Visualisation aid for the examples and CLI tools. Channels are drawn with
    their production/consumption rates; initial tokens are shown as a bullet
    count on the edge label, matching the usual SDFG drawing style. *)

val to_dot :
  ?name:string ->
  ?exec_times:int array ->
  Sdfg.t ->
  string
(** [to_dot g] renders the graph. When [exec_times] is given, each actor
    label includes its execution time. *)

val write_file :
  ?name:string -> ?exec_times:int array -> string -> Sdfg.t -> unit
(** [write_file path g] writes the DOT rendering to [path]. *)
