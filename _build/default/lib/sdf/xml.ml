type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of { position : int; message : string }

let fail pos fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { position = pos; message })) fmt

(* ------------------------------- parsing --------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let looking_at c prefix =
  let n = String.length prefix in
  c.pos + n <= String.length c.s && String.sub c.s c.pos n = prefix

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c prefix =
  if looking_at c prefix then c.pos <- c.pos + String.length prefix
  else fail c.pos "expected %S" prefix

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = ':' || ch = '.'

let parse_name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c.pos "expected a name";
  String.sub c.s start (c.pos - start)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '&' then begin
      let entity code skip =
        Buffer.add_string buf code;
        go (i + skip)
      in
      if i + 4 <= n && String.sub s i 4 = "&lt;" then entity "<" 4
      else if i + 4 <= n && String.sub s i 4 = "&gt;" then entity ">" 4
      else if i + 5 <= n && String.sub s i 5 = "&amp;" then entity "&" 5
      else if i + 6 <= n && String.sub s i 6 = "&quot;" then entity "\"" 6
      else if i + 6 <= n && String.sub s i 6 = "&apos;" then entity "'" 6
      else begin
        Buffer.add_char buf '&';
        go (i + 1)
      end
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let parse_attr_value c =
  let quote =
    match peek c with
    | Some (('"' | '\'') as q) -> advance c; q
    | _ -> fail c.pos "expected a quoted attribute value"
  in
  let start = c.pos in
  while (match peek c with Some ch -> ch <> quote | None -> false) do
    advance c
  done;
  if peek c = None then fail c.pos "unterminated attribute value";
  let v = String.sub c.s start (c.pos - start) in
  advance c;
  unescape v

let skip_comment c =
  expect c "<!--";
  let rec go () =
    if looking_at c "-->" then c.pos <- c.pos + 3
    else if c.pos >= String.length c.s then fail c.pos "unterminated comment"
    else (advance c; go ())
  in
  go ()

let skip_declaration c =
  expect c "<?";
  let rec go () =
    if looking_at c "?>" then c.pos <- c.pos + 2
    else if c.pos >= String.length c.s then fail c.pos "unterminated declaration"
    else (advance c; go ())
  in
  go ()

let rec parse_element c =
  expect c "<";
  let name = parse_name c in
  let rec attrs acc =
    skip_ws c;
    if looking_at c "/>" then begin
      c.pos <- c.pos + 2;
      Element (name, List.rev acc, [])
    end
    else if looking_at c ">" then begin
      advance c;
      let children = parse_children c name in
      Element (name, List.rev acc, children)
    end
    else begin
      let attr_name = parse_name c in
      skip_ws c;
      expect c "=";
      skip_ws c;
      let value = parse_attr_value c in
      attrs ((attr_name, value) :: acc)
    end
  in
  attrs []

and parse_children c parent =
  let items = ref [] in
  let rec go () =
    if looking_at c "</" then begin
      c.pos <- c.pos + 2;
      let closing = parse_name c in
      skip_ws c;
      expect c ">";
      if closing <> parent then
        fail c.pos "mismatched closing tag %S for %S" closing parent;
      List.rev !items
    end
    else if looking_at c "<!--" then (skip_comment c; go ())
    else if looking_at c "<" then begin
      items := parse_element c :: !items;
      go ()
    end
    else if c.pos >= String.length c.s then
      fail c.pos "unterminated element %S" parent
    else begin
      let start = c.pos in
      while
        (match peek c with Some '<' -> false | Some _ -> true | None -> false)
      do
        advance c
      done;
      let txt = unescape (String.sub c.s start (c.pos - start)) in
      if String.trim txt <> "" then items := Text txt :: !items;
      go ()
    end
  in
  go ()

let parse s =
  let c = { s; pos = 0 } in
  skip_ws c;
  while looking_at c "<?" || looking_at c "<!--" do
    if looking_at c "<?" then skip_declaration c else skip_comment c;
    skip_ws c
  done;
  let root = parse_element c in
  skip_ws c;
  if c.pos <> String.length c.s then fail c.pos "trailing content after root";
  root

(* ------------------------------ printing --------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let to_string ?(declaration = true) root =
  let buf = Buffer.create 1024 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  let rec go indent = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element (name, attrs, children) ->
        Buffer.add_string buf indent;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if children = [] then Buffer.add_string buf "/>\n"
        else begin
          let only_text = List.for_all (function Text _ -> true | _ -> false) children in
          if only_text then begin
            Buffer.add_char buf '>';
            List.iter (go "") children;
            Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
          end
          else begin
            Buffer.add_string buf ">\n";
            List.iter (go (indent ^ "  ")) children;
            Buffer.add_string buf indent;
            Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
          end
        end
  in
  go "" root;
  Buffer.contents buf

(* ----------------------------- navigation -------------------------- *)

let tag = function
  | Element (name, _, _) -> name
  | Text _ -> invalid_arg "Xml.tag: text node"

let attr_opt node name =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let attr node name =
  match attr_opt node name with Some v -> v | None -> raise Not_found

let children node name =
  match node with
  | Element (_, _, kids) ->
      List.filter
        (function Element (n, _, _) -> n = name | Text _ -> false)
        kids
  | Text _ -> []

let child_opt node name =
  match children node name with [] -> None | c :: _ -> Some c

let child node name =
  match child_opt node name with Some c -> c | None -> raise Not_found

let text = function
  | Element (_, _, kids) ->
      String.concat ""
        (List.filter_map (function Text s -> Some s | Element _ -> None) kids)
  | Text s -> s
