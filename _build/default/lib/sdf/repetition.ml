type result =
  | Consistent of int array
  | Inconsistent of { channel : int }
  | Disconnected

exception Conflict of int

(* Propagate rational firing rates over the undirected graph: crossing a
   channel (a, b, p, q) forward imposes rate(b) = rate(a) * p / q. A
   back-channel to an already-rated actor must agree, otherwise the balance
   equations have no non-trivial solution. *)
let compute g =
  let n = Sdfg.num_actors g in
  if n = 0 then Consistent [||]
  else begin
    let rate = Array.make n Rat.zero in
    let seen = Array.make n false in
    let rec visit a =
      List.iter
        (fun ci ->
          let c = Sdfg.channel g ci in
          let r = Rat.mul_int (Rat.div_int rate.(a) c.Sdfg.cons) c.Sdfg.prod in
          step c.Sdfg.dst r ci)
        (Sdfg.out_channels g a);
      List.iter
        (fun ci ->
          let c = Sdfg.channel g ci in
          let r = Rat.mul_int (Rat.div_int rate.(a) c.Sdfg.prod) c.Sdfg.cons in
          step c.Sdfg.src r ci)
        (Sdfg.in_channels g a)
    and step b r ci =
      if seen.(b) then begin
        if not (Rat.equal rate.(b) r) then raise (Conflict ci)
      end
      else begin
        seen.(b) <- true;
        rate.(b) <- r;
        visit b
      end
    in
    seen.(0) <- true;
    rate.(0) <- Rat.one;
    match visit 0 with
    | () ->
        if not (Array.for_all Fun.id seen) then Disconnected
        else begin
          (* Scale the rational rates to the smallest positive integers. *)
          let l = Array.fold_left (fun acc r -> Rat.lcm acc (Rat.den r)) 1 rate in
          let ints = Array.map (fun r -> Rat.num r * (l / Rat.den r)) rate in
          let gc = Array.fold_left Rat.gcd 0 ints in
          Consistent (Array.map (fun v -> v / gc) ints)
        end
    | exception Conflict ci -> Inconsistent { channel = ci }
  end

let vector_exn g =
  match compute g with
  | Consistent gamma -> gamma
  | Inconsistent { channel } ->
      invalid_arg
        (Printf.sprintf "Repetition.vector_exn: inconsistent on channel %s"
           (Sdfg.channel_name g channel))
  | Disconnected -> invalid_arg "Repetition.vector_exn: graph not connected"

let is_consistent g =
  match compute g with Consistent _ -> true | Inconsistent _ | Disconnected -> false

let check g gamma =
  Array.length gamma = Sdfg.num_actors g
  && Array.for_all (fun v -> v > 0) gamma
  && Array.for_all
       (fun c ->
         c.Sdfg.prod * gamma.(c.Sdfg.src) = c.Sdfg.cons * gamma.(c.Sdfg.dst))
       (Sdfg.channels g)

let iteration_firings gamma = Array.fold_left ( + ) 0 gamma
