(** Deadlock detection for consistent SDFGs.

    A consistent SDFG deadlocks iff one complete iteration (every actor [a]
    firing [gamma a] times) cannot be executed from the initial token
    distribution [Lee & Messerschmitt 1987]. This check simulates one
    iteration abstractly — untimed, demand-driven — which is sufficient and
    runs in O(total firings * channels). *)

type result =
  | Deadlock_free
  | Deadlocked of { blocked : int list }
      (** Actor indices that still had pending firings when execution got
          stuck. A zero-token cycle always shows up here. *)

val check : Sdfg.t -> int array -> result
(** [check g gamma] with [gamma] the repetition vector of [g]. *)

val is_deadlock_free : Sdfg.t -> bool
(** Convenience: computes the repetition vector and checks; inconsistent or
    disconnected graphs are reported as not deadlock free. *)
