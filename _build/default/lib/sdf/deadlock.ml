type result = Deadlock_free | Deadlocked of { blocked : int list }

let check g gamma =
  let n = Sdfg.num_actors g in
  let remaining = Array.copy gamma in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let can_fire a =
    remaining.(a) > 0
    && List.for_all
         (fun ci -> tokens.(ci) >= (Sdfg.channel g ci).Sdfg.cons)
         (Sdfg.in_channels g a)
  in
  let fire a =
    remaining.(a) <- remaining.(a) - 1;
    List.iter
      (fun ci -> tokens.(ci) <- tokens.(ci) - (Sdfg.channel g ci).Sdfg.cons)
      (Sdfg.in_channels g a);
    List.iter
      (fun ci -> tokens.(ci) <- tokens.(ci) + (Sdfg.channel g ci).Sdfg.prod)
      (Sdfg.out_channels g a)
  in
  (* Round-robin sweeps: each sweep fires every enabled actor as often as it
     can; if a full sweep makes no progress, the remaining actors are stuck. *)
  let progress = ref true in
  while !progress do
    progress := false;
    for a = 0 to n - 1 do
      while can_fire a do
        fire a;
        progress := true
      done
    done
  done;
  let blocked =
    List.filter (fun a -> remaining.(a) > 0) (List.init n Fun.id)
  in
  if blocked = [] then Deadlock_free else Deadlocked { blocked }

let is_deadlock_free g =
  match Repetition.compute g with
  | Repetition.Consistent gamma -> check g gamma = Deadlock_free
  | Repetition.Inconsistent _ | Repetition.Disconnected -> false
