module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(** Execution-time sensitivity of throughput.

    The binding step of the paper orders actors by the Eqn.-1 criticality
    estimate — a per-cycle ratio computed structurally, without any state
    space. This module measures the ground truth the estimate approximates:
    how much the self-timed throughput degrades when an actor's execution
    time grows. Actors on the critical cycle have positive sensitivity;
    actors with slack have none. The E20 bench correlates estimate and
    measurement, validating (and probing the limits of) the heuristic. *)

type report = {
  base : Rat.t;  (** throughput of the reference actor, unperturbed *)
  per_actor : Rat.t array;
      (** [per_actor.(a)] = throughput of the reference actor when [a]'s
          execution time is increased by [delta] *)
  sensitivity : float array;
      (** normalised degradation per time unit:
          [(base - perturbed) / (base * delta)]; 0 for actors with slack *)
}

val measure :
  ?max_states:int -> ?delta:int -> Sdfg.t -> int array -> output:int -> report
(** [measure g taus ~output] perturbs each actor in turn ([delta] defaults
    to 1). Exceptions as in {!Selftimed.analyze}. *)

val critical_actors : report -> int list
(** Actors whose perturbation strictly lowered the throughput, most
    sensitive first. *)
