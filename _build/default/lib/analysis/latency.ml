module Sdfg = Sdf.Sdfg
module Repetition = Sdf.Repetition

let first_output_completion ?max_states g exec_times ~output =
  let first_start = ref None in
  let observer time actor =
    if actor = output && !first_start = None then first_start := Some time
  in
  ignore (Selftimed.analyze ~observer ?max_states g exec_times);
  match !first_start with
  | Some t -> t + exec_times.(output)
  | None -> raise Not_found

let iteration_makespan ?max_states g exec_times =
  let gamma = Repetition.vector_exn g in
  let remaining = Array.copy gamma in
  let makespan = ref 0 in
  let observer time actor =
    if remaining.(actor) > 0 then begin
      remaining.(actor) <- remaining.(actor) - 1;
      makespan := max !makespan (time + exec_times.(actor))
    end
  in
  ignore (Selftimed.analyze ~observer ?max_states g exec_times);
  (* The exploration runs at least one full iteration past the transient,
     so every counter reached zero. *)
  assert (Array.for_all (fun r -> r = 0) remaining);
  !makespan
