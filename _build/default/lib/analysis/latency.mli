module Sdfg = Sdf.Sdfg

(** Latency metrics derived from the self-timed execution.

    Besides throughput, multimedia pipelines care about start-up latency
    (how long until the first output token) and the iteration makespan
    (how long one complete graph iteration occupies the pipeline). Both
    fall out of the same deterministic execution that the throughput
    analysis explores, observed via firing-start events. *)

val first_output_completion :
  ?max_states:int -> Sdfg.t -> int array -> output:int -> int
(** Completion time of the output actor's first firing in the self-timed
    execution — the start-up latency of the pipeline.
    @raise Not_found if the output actor never fires before the state
    space recurs (a starved output). Other exceptions as in
    {!Selftimed.analyze}. *)

val iteration_makespan : ?max_states:int -> Sdfg.t -> int array -> int
(** The time by which every actor [a] has completed its first [gamma a]
    firings — the makespan of the first graph iteration, a lower bound on
    any schedule of one iteration on infinite resources. *)
