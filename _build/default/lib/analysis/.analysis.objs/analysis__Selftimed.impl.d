lib/analysis/selftimed.ml: Array Hashtbl List Marshal Obs Printf Sdf
