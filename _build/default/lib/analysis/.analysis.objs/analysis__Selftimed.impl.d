lib/analysis/selftimed.ml: Array Hashtbl List Marshal Printf Sdf
