lib/analysis/buffer_sizing.mli: Sdf
