lib/analysis/latency.mli: Sdf
