lib/analysis/sensitivity.ml: Array Fun List Sdf Selftimed
