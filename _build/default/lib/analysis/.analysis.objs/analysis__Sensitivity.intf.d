lib/analysis/sensitivity.mli: Sdf
