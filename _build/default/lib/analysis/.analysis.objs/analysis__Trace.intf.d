lib/analysis/trace.mli: Format Sdf
