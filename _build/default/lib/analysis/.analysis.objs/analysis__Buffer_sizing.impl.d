lib/analysis/buffer_sizing.ml: Array List Printf Sdf Selftimed
