lib/analysis/mcr.mli: Sdf
