lib/analysis/selftimed.mli: Sdf
