lib/analysis/latency.ml: Array Sdf Selftimed
