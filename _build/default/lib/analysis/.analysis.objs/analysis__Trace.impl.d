lib/analysis/trace.ml: Buffer Format List Printf Sdf Selftimed String
