lib/analysis/mcr.ml: Array Fun Hashtbl List Queue Sdf
