module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(** Storage-space / throughput trade-off analysis (Stuijk, Geilen, Basten,
    DAC'06 — the paper's reference [21] and the source of its Theta buffer
    annotations).

    Bounding a channel to [b] token slots is modelled by a reverse channel
    carrying the free slots, exactly as in the binding-aware construction
    (Section 8.1). Smaller buffers mean less memory but may throttle or
    even deadlock the graph; this module computes live distributions and
    explores the trade-off curve between total buffer space and self-timed
    throughput.

    A {e distribution} assigns a capacity (in tokens) to every channel.
    Self-loop channels are not sized: consistency fixes their token
    population, so their entry is pinned to their initial tokens. *)

type distribution = int array
(** Per channel, in tokens. *)

val bounded_graph : Sdfg.t -> distribution -> Sdfg.t
(** The graph with every non-self-loop channel [d] bounded to
    [distribution.(d)] slots (reverse channel with [capacity - tokens]
    initial tokens).
    @raise Invalid_argument if a capacity is below the channel's initial
    tokens or the array length mismatches. *)

val is_live : Sdfg.t -> distribution -> bool
(** Whether one iteration can execute under the bounded buffers. *)

val iteration_bound : Sdfg.t -> distribution
(** The distribution holding one full iteration of production per channel
    ([prod * gamma src + tokens]): always live, and the starting point of
    the searches below.
    @raise Invalid_argument on inconsistent graphs. *)

val minimal_live : Sdfg.t -> distribution
(** A minimal live distribution: decreasing any single channel's capacity
    deadlocks the graph. Computed by per-channel descent from
    {!iteration_bound}; a minimal element, not necessarily the minimum
    total (finding that is NP-hard, [21] explores it exactly with a
    branch-and-bound search). *)

val throughput :
  ?max_states:int -> Sdfg.t -> int array -> distribution -> output:int -> Rat.t
(** Self-timed throughput of the output actor under the bounded buffers;
    0 when the distribution deadlocks. *)

type tradeoff_point = {
  total_tokens : int;  (** total capacity, in tokens, over sized channels *)
  distribution : distribution;
  rate : Rat.t;  (** throughput of the output actor *)
}

val pareto :
  ?max_states:int -> ?max_steps:int -> Sdfg.t -> int array -> output:int ->
  tradeoff_point list
(** The buffer-space / throughput staircase: starting from
    {!minimal_live}, greedily grow the single channel whose extra slot
    helps throughput most, until no single increment improves it (or
    [max_steps], default 64, increments were spent). Returns the visited
    Pareto-improving points in increasing size; the greedy search matches
    the shape (not necessarily every point) of the exact exploration in
    [21]. *)

val minimum_total_live : ?node_limit:int -> Sdfg.t -> distribution option
(** The exact minimum-total live distribution, by branch and bound over
    per-channel capacities between the single-channel liveness bound and
    {!minimal_live}'s value (the greedy result is an upper bound, so the
    optimum lies in that box). This is the reference computation behind
    the heuristics — exponential in the channel count, usable for small
    graphs; [None] when the search exceeds [node_limit] (default
    [200_000]) nodes. *)

val distribution_for_rate :
  ?max_states:int -> ?max_steps:int -> Sdfg.t -> int array -> output:int ->
  target:Rat.t -> distribution option
(** The first point of {!pareto} whose rate reaches [target], or [None]
    when even the explored staircase tops out below it — a cheap way to
    derive Theta buffer sizes that support a given throughput constraint
    before handing the application to the allocator. *)
