module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

(** Execution traces: the Fig.-5-style view of a state space.

    Self-timed (and constrained) executions are deterministic, so the
    explored state space is a lasso: a transient chain of states followed
    by a cycle. The paper draws these chains with each transition labelled
    by the actors that start firing and the elapsed time (Fig. 5). This
    module reconstructs that chain from the firing-start events of
    {!Selftimed.analyze} and renders it as text or Graphviz. *)

type transition = {
  at : int;  (** absolute time of the transition *)
  started : int list;  (** actors starting their firing, in engine order *)
}

type t = {
  transitions : transition list;  (** in time order; same-time starts merged *)
  transient : int;  (** time at which the periodic phase begins *)
  period : int;
  throughput : Rat.t array;
}

val selftimed : ?max_states:int -> Sdfg.t -> int array -> t
(** Trace the self-timed execution of a graph; arguments as in
    {!Selftimed.analyze}. *)

val of_events :
  events:(int * int) list -> transient:int -> period:int ->
  throughput:Rat.t array -> t
(** Build a trace from raw [(time, actor)] firing-start events collected by
    any engine's [observer] (e.g. the constrained execution); used to
    render Fig. 5(c). *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** One line per transition: ["t=13  start a2, c_d1"], with the loop point
    of the periodic phase marked. *)

val to_dot : actor_name:(int -> string) -> t -> string
(** A Fig.-5-style chain: circle nodes, edges labelled with the started
    actors and the time elapsed to the next transition, and a back edge
    closing the periodic phase. *)
