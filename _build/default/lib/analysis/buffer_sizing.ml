module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition
module Deadlock = Sdf.Deadlock

type distribution = int array

let sized g ci = not (Sdfg.is_self_loop g ci)

let bounded_graph g dist =
  if Array.length dist <> Sdfg.num_channels g then
    invalid_arg "Buffer_sizing.bounded_graph: distribution length mismatch";
  let b = Sdfg.Builder.create () in
  for a = 0 to Sdfg.num_actors g - 1 do
    ignore (Sdfg.Builder.add_actor b (Sdfg.actor_name g a))
  done;
  Array.iter
    (fun c ->
      ignore
        (Sdfg.Builder.add_channel b ~name:c.Sdfg.c_name ~tokens:c.Sdfg.tokens
           ~src:c.Sdfg.src ~dst:c.Sdfg.dst ~prod:c.Sdfg.prod ~cons:c.Sdfg.cons
           ());
      if sized g c.Sdfg.c_idx then begin
        if dist.(c.Sdfg.c_idx) < c.Sdfg.tokens then
          invalid_arg
            "Buffer_sizing.bounded_graph: capacity below initial tokens";
        ignore
          (Sdfg.Builder.add_channel b
             ~name:(Printf.sprintf "cap_%s" c.Sdfg.c_name)
             ~tokens:(dist.(c.Sdfg.c_idx) - c.Sdfg.tokens)
             ~src:c.Sdfg.dst ~dst:c.Sdfg.src ~prod:c.Sdfg.cons
             ~cons:c.Sdfg.prod ())
      end)
    (Sdfg.channels g);
  Sdfg.Builder.build b

let is_live g dist =
  let bg = bounded_graph g dist in
  match Repetition.compute bg with
  | Repetition.Consistent gamma -> Deadlock.check bg gamma = Deadlock.Deadlock_free
  | Repetition.Inconsistent _ | Repetition.Disconnected -> false

let iteration_bound g =
  let gamma = Repetition.vector_exn g in
  Array.map
    (fun c ->
      if sized g c.Sdfg.c_idx then (c.Sdfg.prod * gamma.(c.Sdfg.src)) + c.Sdfg.tokens
      else c.Sdfg.tokens)
    (Sdfg.channels g)

let minimal_live g =
  let dist = iteration_bound g in
  (* Per-channel descent: shrink each channel as far as liveness allows.
     Rescanning after any shrink keeps the result minimal (shrinking one
     buffer can unlock shrinking another was already tried, but only in the
     other direction: capacities only decrease, so one extra sweep without
     progress certifies minimality). *)
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun c ->
        let ci = c.Sdfg.c_idx in
        if sized g ci then
          while
            dist.(ci) > c.Sdfg.tokens
            &&
            (dist.(ci) <- dist.(ci) - 1;
             if is_live g dist then true
             else begin
               dist.(ci) <- dist.(ci) + 1;
               false
             end)
          do
            progress := true
          done)
      (Sdfg.channels g)
  done;
  dist

let throughput ?max_states g exec_times dist ~output =
  let bg = bounded_graph g dist in
  match Selftimed.analyze ?max_states bg exec_times with
  | r -> r.Selftimed.throughput.(output)
  | exception Selftimed.Deadlocked -> Rat.zero
  | exception Selftimed.State_space_exceeded _ -> Rat.zero

type tradeoff_point = {
  total_tokens : int;
  distribution : distribution;
  rate : Rat.t;
}

let total g dist =
  let acc = ref 0 in
  Array.iteri (fun ci v -> if sized g ci then acc := !acc + v) dist;
  !acc

let pareto ?max_states ?(max_steps = 64) g exec_times ~output =
  let dist = minimal_live g in
  let point d =
    {
      total_tokens = total g d;
      distribution = Array.copy d;
      rate = throughput ?max_states g exec_times d ~output;
    }
  in
  let current = ref (point dist) in
  let points = ref [ !current ] in
  let steps = ref 0 in
  let improving = ref true in
  let nch = Sdfg.num_channels g in
  while !improving && !steps < max_steps do
    incr steps;
    (* Try one extra slot on each channel; keep the best improvement.
       Scanning from a rotating start index makes ties pick a different
       channel every step, so plateau walks spread the extra slots instead
       of growing one buffer forever (a throughput step may need slots on
       several channels). *)
    let best = ref None in
    for k = 0 to nch - 1 do
      let ci = (k + !steps) mod nch in
      if sized g ci then begin
        let d = Array.copy !current.distribution in
        d.(ci) <- d.(ci) + 1;
        let r = throughput ?max_states g exec_times d ~output in
        match !best with
        | Some (_, br) when Rat.compare br r >= 0 -> ()
        | _ -> best := Some (d, r)
      end
    done;
    match !best with
    | Some (d, r) when Rat.compare r !current.rate > 0 ->
        current := { total_tokens = total g d; distribution = d; rate = r };
        points := !current :: !points
    | Some (d, r) when Rat.compare r !current.rate = 0 ->
        (* Plateau: a throughput step may need slots on several channels at
           once. Walk along the best tie (without recording a point) so the
           next sweep can find the joint improvement; max_steps bounds the
           walk. *)
        current := { total_tokens = total g d; distribution = d; rate = r }
    | _ -> improving := false
  done;
  List.rev !points

exception Node_limit

let minimum_total_live ?(node_limit = 200_000) g =
  let nch = Sdfg.num_channels g in
  let greedy = minimal_live g in
  (* Per-channel lower bounds: initial tokens and the single-channel
     liveness requirement (prod + cons - gcd, tokens included). *)
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let lower =
    Array.map
      (fun c ->
        if sized g c.Sdfg.c_idx then
          max
            (c.Sdfg.prod + c.Sdfg.cons - gcd c.Sdfg.prod c.Sdfg.cons)
            c.Sdfg.tokens
        else c.Sdfg.tokens)
      (Sdfg.channels g)
  in
  (* The greedy result is live, so the optimum's total is at most its
     total, and no channel ever needs more capacity than the greedy value
     (capacities only relax constraints): the search box is finite. *)
  let best_total = ref (total g greedy) in
  let best = ref (Array.copy greedy) in
  let nodes = ref 0 in
  let current = Array.copy lower in
  let remaining_lower =
    (* remaining_lower.(ci) = sum of lower bounds of sized channels >= ci *)
    let arr = Array.make (nch + 1) 0 in
    for ci = nch - 1 downto 0 do
      arr.(ci) <- arr.(ci + 1) + (if sized g ci then lower.(ci) else 0)
    done;
    arr
  in
  let rec assign ci acc =
    incr nodes;
    if !nodes > node_limit then raise Node_limit;
    if ci = nch then begin
      if acc < !best_total && is_live g current then begin
        best_total := acc;
        best := Array.copy current
      end
    end
    else if not (sized g ci) then begin
      current.(ci) <- lower.(ci);
      assign (ci + 1) acc
    end
    else begin
      let hi = max greedy.(ci) lower.(ci) in
      for v = lower.(ci) to hi do
        if acc + v + remaining_lower.(ci + 1) < !best_total then begin
          current.(ci) <- v;
          assign (ci + 1) (acc + v)
        end
      done;
      current.(ci) <- lower.(ci)
    end
  in
  match assign 0 0 with
  | () -> Some !best
  | exception Node_limit -> None

let distribution_for_rate ?max_states ?max_steps g exec_times ~output ~target =
  let points = pareto ?max_states ?max_steps g exec_times ~output in
  List.find_map
    (fun p -> if Rat.compare p.rate target >= 0 then Some p.distribution else None)
    points
