module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Repetition = Sdf.Repetition

(** Maximum cycle ratio (MCR) analysis.

    The throughput of a homogeneous SDFG is limited by its critical cycle:
    the cycle maximising (sum of actor execution times) / (number of tokens)
    [Sriram & Bhattacharyya 2000]. The paper's Section 1 argument — that any
    HSDF-based allocation strategy pays at least one expensive MCR run on the
    expanded graph — is reproduced by running this analysis on the converted
    graphs in the benchmarks; it also serves as an independent oracle for the
    state-space analysis ([1 / MCR] equals the self-timed iteration
    throughput on strongly connected graphs).

    The implementation reduces the graph to its {e token graph} (one node
    per initial token; arc weights are longest actor-time paths through the
    token-free subgraph, which is acyclic for deadlock-free graphs) and runs
    Karp's maximum cycle mean algorithm per strongly connected component.

    MCR is defined on any SDFG structure, but its throughput interpretation
    ([1/MCR] = firings per time unit of every actor) is only meaningful for
    graphs whose actors all fire once per iteration (HSDFGs). *)

type outcome =
  | Acyclic  (** no cycle at all: no structural throughput bound *)
  | Zero_token_cycle of int list
      (** a cycle of channels without any initial token: the graph
          deadlocks; the payload is the cycle's channel list *)
  | Ratio of Rat.t  (** the maximum cycle ratio (time units per token) *)

val max_cycle_ratio : Sdfg.t -> int array -> outcome
(** [max_cycle_ratio g exec_times]. *)

val hsdf_throughput : Sdfg.t -> int array -> Rat.t
(** [hsdf_throughput h exec_times] is the steady-state firing rate of every
    actor of the strongly-connected HSDFG [h]: [1 / MCR], or
    {!Rat.infinity} for acyclic graphs.
    @raise Invalid_argument on a zero-token cycle (deadlock). *)
