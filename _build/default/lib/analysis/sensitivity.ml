module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

type report = {
  base : Rat.t;
  per_actor : Rat.t array;
  sensitivity : float array;
}

let measure ?max_states ?(delta = 1) g taus ~output =
  if delta <= 0 then invalid_arg "Sensitivity.measure: delta must be positive";
  let base = (Selftimed.analyze ?max_states g taus).Selftimed.throughput.(output) in
  let n = Sdfg.num_actors g in
  let per_actor =
    Array.init n (fun a ->
        let taus' = Array.copy taus in
        taus'.(a) <- taus'.(a) + delta;
        (Selftimed.analyze ?max_states g taus').Selftimed.throughput.(output))
  in
  let base_f = Rat.to_float base in
  let sensitivity =
    Array.map
      (fun p ->
        if base_f <= 0. then 0.
        else (base_f -. Rat.to_float p) /. (base_f *. float_of_int delta))
      per_actor
  in
  { base; per_actor; sensitivity }

let critical_actors r =
  List.init (Array.length r.sensitivity) Fun.id
  |> List.filter (fun a -> r.sensitivity.(a) > 1e-12)
  |> List.sort (fun a b -> compare r.sensitivity.(b) r.sensitivity.(a))
