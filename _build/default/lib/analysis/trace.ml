module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat

type transition = { at : int; started : int list }

type t = {
  transitions : transition list;
  transient : int;
  period : int;
  throughput : Rat.t array;
}

let group_events events =
  (* events arrive in time order; merge equal times keeping firing order. *)
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | (t, a) :: rest -> (
        match current with
        | Some c when c.at = t -> go acc (Some { c with started = a :: c.started }) rest
        | Some c -> go (c :: acc) (Some { at = t; started = [ a ] }) rest
        | None -> go acc (Some { at = t; started = [ a ] }) rest)
  in
  List.map
    (fun tr -> { tr with started = List.rev tr.started })
    (go [] None events)

let of_events ~events ~transient ~period ~throughput =
  { transitions = group_events events; transient; period; throughput }

let selftimed ?max_states g exec_times =
  let events = ref [] in
  let observer time actor = events := (time, actor) :: !events in
  let r = Selftimed.analyze ~observer ?max_states g exec_times in
  of_events ~events:(List.rev !events)
    ~transient:r.Selftimed.transient ~period:r.Selftimed.period
    ~throughput:r.Selftimed.throughput

(* The trace records firings up to (and into) the recurrent state; only the
   transitions inside [transient, transient + period) form the cycle. *)
let periodic_window t = (t.transient, t.transient + t.period)

let pp pp_actor ppf t =
  let lo, hi = periodic_window t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun tr ->
      if tr.at < hi then begin
        if tr.at = lo then
          Format.fprintf ppf "--- periodic phase (period %d) ---@," t.period;
        Format.fprintf ppf "t=%-5d start " tr.at;
        List.iteri
          (fun i a ->
            if i > 0 then Format.fprintf ppf ", ";
            pp_actor ppf a)
          tr.started;
        Format.fprintf ppf "@,"
      end)
    t.transitions;
  Format.fprintf ppf "@]"

let to_dot ~actor_name t =
  let lo, hi = periodic_window t in
  let visible = List.filter (fun tr -> tr.at < hi) t.transitions in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph statespace {\n  rankdir=LR;\n";
  Buffer.add_string buf "  node [shape=circle, label=\"\", width=0.15];\n";
  let n = List.length visible in
  let loop_start = ref 0 in
  List.iteri
    (fun i tr ->
      if tr.at = lo then loop_start := i;
      let label =
        String.concat "," (List.map actor_name tr.started)
        ^
        match List.nth_opt visible (i + 1) with
        | Some next -> Printf.sprintf " / %d" (next.at - tr.at)
        | None -> Printf.sprintf " / %d" (hi - tr.at)
      in
      let dst = if i + 1 < n then i + 1 else !loop_start in
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" i dst label))
    visible;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
