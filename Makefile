# Developer / CI entry points. `make ci` is what the workflow runs.

.PHONY: all build test fmt-check bench-quick bench-smoke explore-bench \
  fuzz fuzz-mutant scenario-fuzz soak serve-smoke load-smoke ci

all: build

build:
	dune build

test:
	dune runtest

# Format check; skipped (with a notice) when ocamlformat is not
# installed, so environments that only carry the OCaml toolchain still
# pass `make ci`.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

bench-quick:
	dune exec bench/main.exe -- --quick --no-bechamel

# The CI bench job: parallel table run with telemetry and tracing,
# asserting the memo cache, the work-pool and the packed state-space
# engine all saw real traffic, that the emitted Chrome trace passes the
# in-repo validator, and that the fanned-out tables match a sequential
# run line for line (wall-clock readings excepted).
bench-smoke:
	dune exec bench/main.exe -- --quick --no-bechamel --jobs 2 \
	  --metrics bench-metrics.json --trace trace.json > bench-par.out
	grep -Eq '"cache\.hits": [1-9]' bench-metrics.json
	grep -Eq '"pool\.tasks": [1-9]' bench-metrics.json
	grep -Eq '"engine\.arena_bytes": [1-9]' bench-metrics.json
	grep -Eq '"scenario\.runs": [1-9]' bench-metrics.json
	grep -Eq '"scenario\.product_states": [1-9]' bench-metrics.json
	grep -q '"engine.bytes_per_state"' bench-metrics.json
	grep -q '"engine.occupancy"' bench-metrics.json
	grep -q '"engine.max_probe"' bench-metrics.json
	dune exec bin/sdf3_report.exe -- --check-trace trace.json
	dune exec bench/main.exe -- --quick --no-bechamel --jobs 1 > bench-seq.out
	grep -vE 'time|[0-9] s$$|[0-9]x$$|telemetry registry|timeline trace|^$$' \
	  bench-seq.out > bench-seq.flt
	grep -vE 'time|[0-9] s$$|[0-9]x$$|telemetry registry|timeline trace|^$$' \
	  bench-par.out > bench-par.flt
	diff bench-seq.flt bench-par.flt

# Seed-vs-new state-space engine comparison (states/sec, bytes/state) on
# the E8-E10 workload grid; the curated run is committed as BENCH_4.json.
explore-bench:
	dune exec bench/main.exe -- --explore-bench explore-bench.json

# The CI serve-smoke job, locally: boot the daemon, drive mixed-tier
# traffic through the client mode, assert journal byte-identity against
# the one-shot batch driver and cache hits across requests, then drain.
serve-smoke: build
	bash scripts/serve_smoke.sh

# The CI load-smoke job, locally: fork the daemon under sdf3_loadtest,
# swarm it with 300 seeded clients, drain mid-flight, and assert every
# invariant oracle plus nonzero priority-admission counters.
load-smoke: build
	bash scripts/load_smoke.sh

ci: build test fmt-check

# Bounded fuzz run against the differential/metamorphic oracle catalogue;
# shrunk counterexamples land in test/corpus/ for dune runtest to replay.
fuzz:
	dune exec bin/sdf3_fuzz.exe -- --count 500 --seed $$(date +%s)

fuzz-mutant:
	dune exec bin/sdf3_fuzz.exe -- --count 200 --seed 9 --inject-mutant \
	  --no-corpus; test $$? -eq 1

# Self-check of the scenario-vs-enumeration oracle: the injected mutant
# drops every mode-transition delay on the engine side only, which the
# brute-force product enumeration must catch (exit 1 = detected).
scenario-fuzz:
	dune exec bin/sdf3_fuzz.exe -- --count 200 --seed 9 \
	  --inject-scenario-mutant --no-corpus; test $$? -eq 1

# 60-second soak of the full oracle catalogue — including the
# budget.partial-soundness anytime-bound oracle — under a hard 90-second
# bound. SOAK_SEED pins the run (CI seeds it with the run id); shrunk
# counterexamples land in test/corpus/ like any fuzz run's.
SOAK_SEED ?= $(shell date +%s)
soak:
	timeout 90 dune exec bin/sdf3_fuzz.exe -- \
	  --count 1000000 --time 60 --seed $(SOAK_SEED)
