# Developer / CI entry points. `make ci` is what the workflow runs.

.PHONY: all build test fmt-check bench-quick bench-smoke fuzz fuzz-mutant ci

all: build

build:
	dune build

test:
	dune runtest

# Format check; skipped (with a notice) when ocamlformat is not
# installed, so environments that only carry the OCaml toolchain still
# pass `make ci`.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

bench-quick:
	dune exec bench/main.exe -- --quick --no-bechamel

# The CI bench job: parallel table run with telemetry, asserting the memo
# cache and the work-pool both saw real traffic.
bench-smoke:
	dune exec bench/main.exe -- --quick --no-bechamel --jobs 2 \
	  --metrics bench-metrics.json
	grep -Eq '"cache\.hits": [1-9]' bench-metrics.json
	grep -Eq '"pool\.tasks": [1-9]' bench-metrics.json

ci: build test fmt-check

# Bounded fuzz run against the differential/metamorphic oracle catalogue;
# shrunk counterexamples land in test/corpus/ for dune runtest to replay.
fuzz:
	dune exec bin/sdf3_fuzz.exe -- --count 500 --seed $$(date +%s)

fuzz-mutant:
	dune exec bin/sdf3_fuzz.exe -- --count 200 --seed 9 --inject-mutant \
	  --no-corpus; test $$? -eq 1
