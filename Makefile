# Developer / CI entry points. `make ci` is what the workflow runs.

.PHONY: all build test fmt-check bench-quick ci

all: build

build:
	dune build

test:
	dune runtest

# Format check; skipped (with a notice) when ocamlformat is not
# installed, so environments that only carry the OCaml toolchain still
# pass `make ci`.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

bench-quick:
	dune exec bench/main.exe -- --quick --no-bechamel

ci: build test fmt-check
