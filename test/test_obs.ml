(* The telemetry registry: counter/timer accumulation, span nesting, JSON
   serialization (validated with a miniature JSON reader) and the
   flow-level regression that every weight-ladder rung tried leaves one
   attempt record. *)

module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
module Flow = Core.Flow

(* Run [f] with a clean, enabled registry and cold analysis caches (other
   suites in this process may have warmed them, and several assertions
   below count analysis runs); always restore the disabled default so the
   other suites are unaffected. *)
let with_obs f =
  Obs.reset ();
  Analysis.Memo.clear_all ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------- a miniature JSON reader ------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then failwith "json: unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = next () in
    if got <> c then failwith (Printf.sprintf "json: expected %c, got %c" c got)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          match next () with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ hex) in
              (* ASCII escapes only: enough for the serializer under test. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | c -> failwith (Printf.sprintf "json: bad escape %c" c))
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then (expect '}'; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> failwith (Printf.sprintf "json: bad object sep %c" c)
          in
          members []
        end
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then (expect ']'; Arr [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> failwith (Printf.sprintf "json: bad array sep %c" c)
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> failwith "json: empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then failwith "json: trailing garbage";
  v

let obj_field j k =
  match j with
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* ----------------------------- tests ------------------------------- *)

let test_counter_accumulation () =
  with_obs (fun () ->
      Obs.Counter.add "t.counter" 2;
      Obs.Counter.add "t.counter" 3;
      Alcotest.(check int) "accumulates" 5 (Obs.Counter.value "t.counter");
      let h = Obs.Counter.make "t.handle" in
      Obs.Counter.incr h;
      Obs.Counter.incr ~by:9 h;
      Alcotest.(check int) "handle accumulates" 10 (Obs.Counter.value "t.handle");
      Alcotest.(check int) "untouched counter reads 0" 0
        (Obs.Counter.value "t.never"));
  (* Disabled: nothing records, handles survive a reset. *)
  Obs.reset ();
  Obs.Counter.add "t.counter" 7;
  Alcotest.(check int) "disabled adds are dropped" 0
    (Obs.Counter.value "t.counter")

let test_timer_accumulation () =
  with_obs (fun () ->
      Obs.Timer.record "t.timer" 1.0;
      Obs.Timer.record "t.timer" 2.0;
      Obs.Timer.record "t.timer" 0.5;
      match Obs.Timer.snapshot "t.timer" with
      | None -> Alcotest.fail "timer missing"
      | Some s ->
          Alcotest.(check int) "count" 3 s.Obs.Timer.count;
          Alcotest.(check (float 1e-9)) "total" 3.5 s.Obs.Timer.total_s;
          Alcotest.(check (float 1e-9)) "min" 0.5 s.Obs.Timer.min_s;
          Alcotest.(check (float 1e-9)) "max" 2.0 s.Obs.Timer.max_s)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          Alcotest.(check (list string)) "inside outer" [ "outer" ]
            (Obs.Span.current ());
          Obs.Span.with_ "inner.step" (fun () ->
              Alcotest.(check (list string))
                "inside both" [ "outer"; "inner.step" ] (Obs.Span.current ())));
      Alcotest.(check (list string)) "unwound" [] (Obs.Span.current ());
      Alcotest.(check bool) "outer recorded" true
        (Obs.Timer.snapshot "outer" <> None);
      Alcotest.(check bool) "nested path recorded" true
        (Obs.Timer.snapshot "outer/inner.step" <> None))

let test_span_unwinds_on_exception () =
  with_obs (fun () ->
      (try Obs.Span.with_ "boom" (fun () -> failwith "boom") with
      | Failure _ -> ());
      Alcotest.(check (list string)) "stack unwound" [] (Obs.Span.current ());
      Alcotest.(check bool) "duration still recorded" true
        (Obs.Timer.snapshot "boom" <> None))

let test_json_schema () =
  with_obs (fun () ->
      Obs.Counter.add "b.counter" 1;
      Obs.Counter.add "a.counter" 2;
      Obs.Gauge.set "g.gauge" 0.25;
      Obs.Timer.record "t.timer" 0.125;
      Obs.Event.emit "e.kind" [ ("n", Obs.Event.Int 3) ];
      let j = parse_json (Obs.json_string ()) in
      Alcotest.(check bool) "schema_version 2" true
        (obj_field j "schema_version" = Some (Num 2.));
      (match obj_field j "counters" with
      | Some (Obj kvs) ->
          (* [reset] keeps previously registered counters alive (zeroed),
             so check order and content, not the exact key set. *)
          let keys = List.map fst kvs in
          Alcotest.(check (list string)) "counter keys sorted"
            (List.sort compare keys) keys;
          Alcotest.(check bool) "counter values serialized" true
            (List.assoc_opt "a.counter" kvs = Some (Num 2.)
            && List.assoc_opt "b.counter" kvs = Some (Num 1.))
      | _ -> Alcotest.fail "counters object missing");
      (match obj_field j "timers" with
      | Some (Obj [ ("t.timer", Obj fields) ]) ->
          Alcotest.(check (list string)) "timer fields"
            [ "count"; "total_s"; "mean_s"; "stddev_s"; "min_s"; "max_s" ]
            (List.map fst fields)
      | _ -> Alcotest.fail "timers object missing");
      (match obj_field j "histograms" with
      | Some (Obj _) -> ()
      | _ -> Alcotest.fail "histograms object missing");
      (match obj_field j "events" with
      | Some (Arr [ ev ]) ->
          Alcotest.(check bool) "event kind" true
            (obj_field ev "kind" = Some (Str "e.kind"));
          Alcotest.(check bool) "event field" true
            (obj_field ev "n" = Some (Num 3.))
      | _ -> Alcotest.fail "events array missing");
      Alcotest.(check bool) "events_dropped is a per-kind object" true
        (match obj_field j "events_dropped" with
        | Some (Obj kvs) ->
            List.for_all (function _, Num _ -> true | _ -> false) kvs
        | _ -> false))

let test_json_string_escaping () =
  with_obs (fun () ->
      let tricky = "a\"b\\c\nd\te\x01f" in
      Obs.Event.emit "esc" [ ("s", Obs.Event.String tricky) ];
      let j = parse_json (Obs.json_string ()) in
      match obj_field j "events" with
      | Some (Arr [ ev ]) ->
          Alcotest.(check bool) "string round-trips" true
            (obj_field ev "s" = Some (Str tricky))
      | _ -> Alcotest.fail "events array missing")

let test_flow_attempt_records () =
  with_obs (fun () ->
      (* Infeasible constraint: every rung of the default ladder is tried
         and fails (same fixture as the flow suite). *)
      let app =
        Appgraph.with_lambda (Models.example_app ()) (Rat.make 1 5)
      in
      let r = Flow.allocate_with_retry app (Models.example_platform ()) in
      let rungs = List.length r.Flow.attempts in
      Alcotest.(check int) "whole ladder tried" 5 rungs;
      Alcotest.(check int) "one event per rung tried" rungs
        (Obs.Event.count "flow.attempt");
      Alcotest.(check int) "attempt counter matches" rungs
        (Obs.Counter.value "flow.attempts");
      Alcotest.(check int) "exhaustion recorded" 1
        (Obs.Counter.value "flow.exhausted");
      (* Rung indices are 0..n-1 in order; every outcome is a failure. *)
      List.iteri
        (fun i (kind, fields) ->
          Alcotest.(check string) "kind" "flow.attempt" kind;
          Alcotest.(check bool) "rung index" true
            (List.assoc_opt "rung" fields = Some (Obs.Event.Int i));
          Alcotest.(check bool) "failed outcome" true
            (match List.assoc_opt "outcome" fields with
            | Some (Obs.Event.String ("allocated" | "")) | None -> false
            | Some _ -> true))
        (Obs.Event.all ());
      (* A feasible run stops at the first rung and records it. *)
      Obs.reset ();
      let ok =
        Flow.allocate_with_retry (Models.example_app ())
          (Models.example_platform ())
      in
      Alcotest.(check int) "one attempt" 1 (List.length ok.Flow.attempts);
      Alcotest.(check int) "one record" 1 (Obs.Event.count "flow.attempt");
      Alcotest.(check int) "success recorded" 1
        (Obs.Counter.value "flow.allocated"))

let test_strategy_spans_and_statespace_counters () =
  with_obs (fun () ->
      (match
         Core.Strategy.allocate (Models.example_app ())
           (Models.example_platform ())
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "example should allocate");
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span recorded") true
            (Obs.Timer.snapshot phase <> None))
        [ "strategy.bind"; "strategy.static_order"; "strategy.slice_alloc" ];
      Alcotest.(check bool) "states counted" true
        (Obs.Counter.value "constrained.states" > 0);
      Alcotest.(check bool) "period counted" true
        (Obs.Counter.value "constrained.period" > 0);
      Alcotest.(check int) "checks match runs" (Obs.Counter.value "constrained.runs")
        (Obs.Counter.value "strategy.throughput_checks"))

let test_constrained_abort_event () =
  with_obs (fun () ->
      let ba =
        Core.Bind_aware.build ~app:(Models.example_app ())
          ~arch:(Models.example_platform ()) ~binding:[| 0; 0; 1 |]
          ~slices:[| 5; 5 |] ()
      in
      let schedules =
        [|
          Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
          Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
        |]
      in
      let cap = 3 in
      (match Core.Constrained.analyze ~max_states:cap ba ~schedules with
      | _ -> Alcotest.fail "expected the cap to abort the example"
      | exception Core.Constrained.State_space_exceeded c ->
          Alcotest.(check int) "exception carries the cap" cap c);
      Alcotest.(check int) "counter incremented" 1
        (Obs.Counter.value "constrained.cap_aborts");
      Alcotest.(check int) "one abort event" 1
        (Obs.Event.count "constrained.abort");
      match Obs.Event.all () with
      | [ ("constrained.abort", fields) ] ->
          Alcotest.(check bool) "cap field reports the cap value" true
            (List.assoc_opt "cap" fields = Some (Obs.Event.Int cap));
          Alcotest.(check bool) "states field reports states explored" true
            (match List.assoc_opt "states" fields with
            | Some (Obs.Event.Int states) -> states > cap
            | _ -> false)
      | evs ->
          Alcotest.failf "expected exactly the abort event, got %d events"
            (List.length evs))

let test_timer_stddev () =
  with_obs (fun () ->
      Obs.Timer.record "t.sd" 1.0;
      Obs.Timer.record "t.sd" 2.0;
      Obs.Timer.record "t.sd" 3.0;
      (match Obs.Timer.snapshot "t.sd" with
      | None -> Alcotest.fail "timer missing"
      | Some s ->
          (* Population stddev of {1,2,3} = sqrt(2/3). *)
          Alcotest.(check (float 1e-9)) "population stddev"
            (sqrt (2. /. 3.))
            s.Obs.Timer.stddev_s);
      Obs.Timer.record "t.one" 0.25;
      match Obs.Timer.snapshot "t.one" with
      | None -> Alcotest.fail "timer missing"
      | Some s ->
          Alcotest.(check (float 1e-9)) "single sample has zero stddev" 0.
            s.Obs.Timer.stddev_s)

let test_histogram_quantiles () =
  with_obs (fun () ->
      (* A single repeated value is exact: the quantile walk clamps to the
         observed [min,max]. *)
      Obs.Histogram.add "h.single" 3.0;
      (match Obs.Histogram.snapshot "h.single" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
          Alcotest.(check int) "count" 1 s.Obs.Histogram.count;
          Alcotest.(check (float 1e-9)) "p50 exact" 3.0 s.Obs.Histogram.p50;
          Alcotest.(check (float 1e-9)) "p99 exact" 3.0 s.Obs.Histogram.p99;
          Alcotest.(check (float 1e-9)) "max exact" 3.0 s.Obs.Histogram.max);
      let h = Obs.Histogram.make "h.range" in
      for i = 1 to 100 do
        Obs.Histogram.record h (float_of_int i)
      done;
      match Obs.Histogram.snapshot "h.range" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
          Alcotest.(check int) "count" 100 s.Obs.Histogram.count;
          Alcotest.(check (float 1e-9)) "max exact" 100. s.Obs.Histogram.max;
          Alcotest.(check bool) "quantiles ordered" true
            (s.Obs.Histogram.p50 <= s.Obs.Histogram.p90
            && s.Obs.Histogram.p90 <= s.Obs.Histogram.p99
            && s.Obs.Histogram.p99 <= s.Obs.Histogram.max);
          (* Power-of-two buckets: p50 within a factor of two of 50. *)
          Alcotest.(check bool) "p50 in bucket range" true
            (s.Obs.Histogram.p50 >= 25. && s.Obs.Histogram.p50 <= 100.))

let test_event_cap_per_kind () =
  with_obs (fun () ->
      Obs.set_event_cap 3;
      Fun.protect
        ~finally:(fun () -> Obs.set_event_cap 10_000)
        (fun () ->
          for i = 1 to 5 do
            Obs.Event.emit "cap.a" [ ("i", Obs.Event.Int i) ]
          done;
          Obs.Event.emit "cap.b" [];
          Alcotest.(check int) "stored up to the cap" 3
            (Obs.Event.count "cap.a");
          Alcotest.(check int) "overflow counted per kind" 2
            (Obs.Event.dropped "cap.a");
          Alcotest.(check int) "other kinds unaffected" 1
            (Obs.Event.dropped "cap.b" + Obs.Event.count "cap.b");
          Alcotest.(check int) "no spurious drops" 0
            (Obs.Event.dropped "cap.c");
          let j = parse_json (Obs.json_string ()) in
          match obj_field j "events_dropped" with
          | Some (Obj kvs) ->
              Alcotest.(check bool) "dropped kinds serialized" true
                (List.assoc_opt "cap.a" kvs = Some (Num 2.))
          | _ -> Alcotest.fail "events_dropped object missing"))

let suite =
  [
    Alcotest.test_case "counter accumulation" `Quick test_counter_accumulation;
    Alcotest.test_case "timer accumulation" `Quick test_timer_accumulation;
    Alcotest.test_case "timer stddev (Welford)" `Quick test_timer_stddev;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "event cap and per-kind drops" `Quick
      test_event_cap_per_kind;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span unwinds on exception" `Quick
      test_span_unwinds_on_exception;
    Alcotest.test_case "json schema and key order" `Quick test_json_schema;
    Alcotest.test_case "json string escaping" `Quick test_json_string_escaping;
    Alcotest.test_case "one flow.attempt record per rung" `Quick
      test_flow_attempt_records;
    Alcotest.test_case "strategy spans and state-space counters" `Quick
      test_strategy_spans_and_statespace_counters;
    Alcotest.test_case "constrained.abort reports cap and states" `Quick
      test_constrained_abort_event;
  ]
