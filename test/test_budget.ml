(* The budget subsystem: budget bookkeeping itself, the anytime contract
   of the budgeted analyses (infinite budget changes nothing; any finite
   budget yields either the unbudgeted result or a sound partial), memo
   non-poisoning, pool cancellation accounting, and the flow-level
   degradation of budget-exhausted rungs. *)

module Rat = Sdf.Rat
module Sdfg = Sdf.Sdfg
module Selftimed = Analysis.Selftimed
module Appgraph = Appmodel.Appgraph
open Helpers

(* ------------------------------- Budget.t ------------------------------ *)

let test_make_infinite () =
  Alcotest.(check bool) "make () is infinite" true (Budget.is_infinite (Budget.make ()));
  Alcotest.(check bool)
    "infinite never exhausted" true
    (Budget.check Budget.infinite ~states:max_int ~arena_bytes:max_int = None);
  Alcotest.(check bool)
    "finite is not infinite" false
    (Budget.is_infinite (Budget.make ~max_states:5 ()))

let reason = Alcotest.testable Budget.pp_reason ( = )

let test_state_cap () =
  let b = Budget.make ~max_states:5 () in
  Alcotest.(check bool) "states limited" true (Budget.states_limited b);
  Alcotest.(check (option reason))
    "under the cap" None
    (Budget.check b ~states:5 ~arena_bytes:0);
  Alcotest.(check (option reason))
    "over the cap" (Some Budget.States)
    (Budget.check b ~states:6 ~arena_bytes:0)

let test_arena_cap () =
  let b = Budget.make ~max_arena_bytes:100 () in
  Alcotest.(check bool) "arena limited" true (Budget.arena_limited b);
  Alcotest.(check bool)
    "states not limited" false (Budget.states_limited b);
  Alcotest.(check (option reason))
    "over the byte cap" (Some Budget.Memory)
    (Budget.check b ~states:0 ~arena_bytes:101)

let test_deadline_and_cancel () =
  let past = Budget.make ~wall_s:(-1.) () in
  (* The first check always probes the clock. *)
  Alcotest.(check (option reason))
    "expired deadline" (Some Budget.Deadline)
    (Budget.check past ~states:0 ~arena_bytes:0);
  Alcotest.(check (option reason))
    "exceeded agrees" (Some Budget.Deadline) (Budget.exceeded past);
  let c = Budget.Cancel.create () in
  let b = Budget.make ~cancel:c () in
  Alcotest.(check (option reason))
    "token untriggered" None
    (Budget.check b ~states:1000 ~arena_bytes:0);
  Budget.Cancel.trigger c;
  Alcotest.(check (option reason))
    "token observed by exceeded" (Some Budget.Cancelled) (Budget.exceeded b)

let test_reason_labels () =
  Alcotest.(check (list string))
    "stable labels"
    [ "deadline"; "states"; "memory"; "cancelled" ]
    (List.map Budget.reason_label
       [ Budget.Deadline; Budget.States; Budget.Memory; Budget.Cancelled ])

(* --------------------- random consistent workloads --------------------- *)

let random_case seed set =
  let rng = Gen.Rng.create ~seed in
  let app =
    Gen.Sdfgen.generate rng
      (Gen.Benchsets.set_profile set)
      ~proc_types:Gen.Benchsets.proc_types
      ~name:(Printf.sprintf "b%d" seed)
  in
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  (g, taus)

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

(* Everything observable about a completed analysis. *)
let result_key (r : Selftimed.result) =
  ( r.Selftimed.states,
    r.Selftimed.transient,
    r.Selftimed.period,
    r.Selftimed.iterations_per_period,
    Array.to_list (Array.map Rat.to_string r.Selftimed.throughput) )

type outcome =
  | Complete of (int * int * int * int * string list)
  | Partial of Budget.reason
  | Dead
  | Exceeded

let run_budgeted ~budget (g, taus) =
  match Selftimed.analyze_budgeted ~max_states:20_000 ~budget g taus with
  | Ok r -> Complete (result_key r)
  | Error p -> Partial p.Selftimed.reason
  | exception Selftimed.Deadlocked -> Dead
  | exception Selftimed.State_space_exceeded _ -> Exceeded

let run_unbudgeted (g, taus) =
  match Selftimed.analyze ~max_states:20_000 g taus with
  | r -> Complete (result_key r)
  | exception Selftimed.Deadlocked -> Dead
  | exception Selftimed.State_space_exceeded _ -> Exceeded

(* (a) An infinite budget is a no-op: same result, same negative
   outcomes, on a large sample of random consistent graphs. *)
let prop_infinite_budget_is_identity =
  qcheck ~count:220 "infinite budget == analyze (220 random graphs)" gen_seed
    (fun seed ->
      let case = random_case seed (1 + (seed mod 3)) in
      run_budgeted ~budget:Budget.infinite case = run_unbudgeted case)

(* (b) Any finite state/arena budget yields either the unbudgeted outcome
   or a partial whose upper bound dominates the true throughput of the
   independent reference engine. *)
let prop_finite_budget_sound =
  qcheck ~count:120 "finite budget: unbudgeted result or sound partial"
    QCheck2.Gen.(pair gen_seed (int_range 1 64))
    (fun (seed, cap) ->
      let ((g, taus) as case) = random_case seed (1 + (seed mod 3)) in
      let budget =
        if seed mod 3 = 0 then Budget.make ~max_arena_bytes:(cap * 8) ()
        else Budget.make ~max_states:cap ()
      in
      match
        Selftimed.analyze_budgeted ~max_states:20_000 ~budget g taus
      with
      | Ok _ as ok -> (
          match run_unbudgeted case with
          | Complete k -> Ok k = Result.map result_key ok
          | _ -> false)
      | exception Selftimed.Deadlocked -> run_unbudgeted case = Dead
      | exception Selftimed.State_space_exceeded _ ->
          run_unbudgeted case = Exceeded
      | Error p -> (
          p.Selftimed.explored > 0
          &&
          match
            Selftimed.analyze_reference ~max_states:20_000 g taus
          with
          | exception Selftimed.Deadlocked ->
              (* A deadlocking graph must not have deadlock ruled out;
                 any upper bound dominates its zero throughput. *)
              not p.Selftimed.dead_ruled_out
          | exception Selftimed.State_space_exceeded _ -> true
          | r ->
              (not p.Selftimed.provably_dead)
              && Array.for_all2
                   (fun ub thr ->
                     Rat.is_infinite ub || Rat.compare ub thr >= 0)
                   p.Selftimed.upper_bound r.Selftimed.throughput))

(* A partial outcome must never poison the memo: after a budget-cut run,
   an unbudgeted replay of the same key still completes correctly. *)
let test_partial_not_cached () =
  let was_enabled = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was_enabled)
    (fun () ->
      Analysis.Memo.set_enabled true;
      (* A seed whose graph completes (no deadlock, modest state space)
         yet blows a 2-state budget. *)
      let case = random_case 3 1 in
      let full = run_unbudgeted case in
      (match full with
      | Complete _ -> ()
      | _ -> Alcotest.fail "seed 3 was expected to complete unbudgeted");
      Analysis.Memo.clear_all ();
      (match run_budgeted ~budget:(Budget.make ~max_states:2 ()) case with
      | Partial Budget.States -> ()
      | _ -> Alcotest.fail "2-state budget was expected to cut seed 3");
      Alcotest.(check bool)
        "unbudgeted replay after a partial still completes" true
        (run_budgeted ~budget:Budget.infinite case = full);
      (* Now the memo holds the complete result: even a tiny budget is
         served the cached answer for free. *)
      Alcotest.(check bool)
        "warm cache answers under any budget" true
        (run_budgeted ~budget:(Budget.make ~max_states:2 ()) case = full))

(* ------------------- (c) pool cancellation accounting ------------------ *)

let with_jobs n f =
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let check_accounting ~jobs ~n ~trigger_at () =
  with_jobs jobs (fun () ->
      let executed = Atomic.make 0 in
      let skipped0 = Par.tasks_skipped () in
      let results =
        Par.cancel_scope (fun token ->
            Par.map_cancellable ~cancel:token
              (fun i ->
                let k = Atomic.fetch_and_add executed 1 in
                if k = trigger_at then Budget.Cancel.trigger token;
                2 * i)
              (List.init n Fun.id))
      in
      let ran = Atomic.get executed in
      let some = List.filter Option.is_some results in
      Alcotest.(check int) "no task lost: one slot per input" n
        (List.length results);
      Alcotest.(check int) "no task duplicated: Some count = executions" ran
        (List.length some);
      Alcotest.(check int)
        "skipped counter accounts for the rest" (n - ran)
        (Par.tasks_skipped () - skipped0);
      Alcotest.(check bool) "cancellation actually cut the batch" true
        (ran < n);
      (* Results stay in input order with correct values. *)
      List.iteri
        (fun i r ->
          match r with
          | Some v -> Alcotest.(check int) "value in order" (2 * i) v
          | None -> ())
        results)

let test_cancel_accounting_parallel () =
  check_accounting ~jobs:4 ~n:200 ~trigger_at:10 ()

let test_cancel_accounting_sequential () =
  check_accounting ~jobs:1 ~n:50 ~trigger_at:5 ()

let test_cancel_scope_on_exception () =
  let leaked = ref None in
  (try
     Par.cancel_scope (fun token ->
         leaked := Some token;
         raise Exit)
   with Exit -> ());
  match !leaked with
  | Some token ->
      Alcotest.(check bool)
        "abandoned scope triggers its token" true
        (Budget.Cancel.triggered token)
  | None -> Alcotest.fail "scope body did not run"

(* ------------------- flow-level budget degradation --------------------- *)

let random_app seed set =
  let rng = Gen.Rng.create ~seed in
  Gen.Sdfgen.generate rng
    (Gen.Benchsets.set_profile set)
    ~proc_types:Gen.Benchsets.proc_types
    ~name:(Printf.sprintf "f%d" seed)

let test_flow_budget_degrades () =
  let app = random_app 0 1 in
  let arch = Gen.Benchsets.architecture 0 in
  let unbudgeted = Core.Flow.allocate_with_retry app arch in
  Alcotest.(check bool)
    "app allocates without a budget" true
    (unbudgeted.Core.Flow.allocation <> None);
  (* The unbudgeted run warmed the memo, which would serve complete
     results to any budget for free; clear it so the budget bites. *)
  Analysis.Memo.clear_all ();
  let r =
    Core.Flow.allocate_with_retry ~budget:(Budget.make ~max_states:2 ()) app
      arch
  in
  Alcotest.(check bool)
    "2-state budget starves every rung" true
    (r.Core.Flow.allocation = None);
  Alcotest.(check bool)
    "the cut surfaces as Budget_exhausted, not a phase failure" true
    (List.exists
       (fun (at : Core.Flow.attempt) ->
         match at.Core.Flow.outcome with
         | Error (Core.Strategy.Budget_exhausted Budget.States) -> true
         | _ -> false)
       r.Core.Flow.attempts);
  (* An already-exhausted budget fails fast on every rung. *)
  let r' =
    Core.Flow.allocate_with_retry ~budget:(Budget.make ~wall_s:(-1.) ()) app
      arch
  in
  Alcotest.(check bool)
    "expired deadline yields no allocation" true
    (r'.Core.Flow.allocation = None);
  Alcotest.(check bool)
    "every rung reports the deadline" true
    (List.for_all
       (fun (at : Core.Flow.attempt) ->
         match at.Core.Flow.outcome with
         | Error (Core.Strategy.Budget_exhausted Budget.Deadline) -> true
         | _ -> false)
       r'.Core.Flow.attempts)

let suite =
  [
    Alcotest.test_case "make () is infinite" `Quick test_make_infinite;
    Alcotest.test_case "state cap" `Quick test_state_cap;
    Alcotest.test_case "arena cap" `Quick test_arena_cap;
    Alcotest.test_case "deadline and cancel" `Quick test_deadline_and_cancel;
    Alcotest.test_case "reason labels" `Quick test_reason_labels;
    prop_infinite_budget_is_identity;
    prop_finite_budget_sound;
    Alcotest.test_case "partials never poison the memo" `Quick
      test_partial_not_cached;
    Alcotest.test_case "cancel accounting (parallel)" `Quick
      test_cancel_accounting_parallel;
    Alcotest.test_case "cancel accounting (sequential)" `Quick
      test_cancel_accounting_sequential;
    Alcotest.test_case "cancel_scope triggers on exception" `Quick
      test_cancel_scope_on_exception;
    Alcotest.test_case "flow degrades budget-exhausted rungs" `Quick
      test_flow_budget_degrades;
  ]
