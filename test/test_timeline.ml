(* Timeline tracing: Chrome trace-event export validated with the in-repo
   reader ([Obs.Trace.validate]) plus hand-walked structural checks —
   balanced B/E pairs and non-decreasing timestamps per track — under a
   real [Par] fan-out, and the deterministic pieces of the HTML report
   generator. *)

(* Run [f] with telemetry and tracing on, always restoring the defaults
   (tracing off, telemetry off, one-domain pool). *)
let with_trace f =
  Obs.reset ();
  Obs.Trace.reset ();
  Obs.set_enabled true;
  Obs.Trace.set_thread_name "main";
  Obs.Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      Par.set_jobs 1;
      Obs.Trace.reset ();
      Obs.set_enabled false;
      Obs.reset ())
    f

let events_of json =
  match json with
  | Obs.Json.List evs -> evs
  | _ -> Alcotest.fail "trace is not a JSON array"

let str_field ev k =
  match Obs.Json.member k ev with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let int_field ev k =
  match Obs.Json.member k ev with Some (Obs.Json.Int i) -> Some i | _ -> None

let ts_field ev =
  match Obs.Json.member "ts" ev with
  | Some (Obs.Json.Int i) -> float_of_int i
  | Some (Obs.Json.Float f) -> f
  | _ -> Alcotest.fail "event without ts"

(* The structural walk the validator also performs, done by hand so the
   test does not only trust the code under test: per track, timestamps
   never decrease and B/E nest like parentheses with matching names. *)
let check_tracks evs =
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match (str_field ev "ph", int_field ev "tid") with
      | Some "M", _ | None, _ | _, None -> ()
      | Some ph, Some tid ->
          let last_ts, stack =
            Option.value ~default:(neg_infinity, [])
              (Hashtbl.find_opt tracks tid)
          in
          let ts = ts_field ev in
          Alcotest.(check bool) "ts non-decreasing per tid" true
            (ts >= last_ts);
          let stack =
            match ph with
            | "B" -> Option.value ~default:"?" (str_field ev "name") :: stack
            | "E" -> (
                match stack with
                | top :: rest ->
                    Alcotest.(check string) "E matches innermost B" top
                      (Option.value ~default:"?" (str_field ev "name"));
                    rest
                | [] -> Alcotest.fail "E without matching B")
            | _ -> stack
          in
          Hashtbl.replace tracks tid (ts, stack))
    evs;
  Hashtbl.iter
    (fun tid (_, stack) ->
      if stack <> [] then
        Alcotest.failf "tid %d ends with %d unclosed spans" tid
          (List.length stack))
    tracks;
  Hashtbl.length tracks

let test_trace_export_under_par () =
  with_trace (fun () ->
      Par.set_jobs 2;
      Obs.Span.with_ "timeline.outer" (fun () ->
          let squares =
            Par.map
              (fun i ->
                Obs.Span.with_ "timeline.task" (fun () -> i * i))
              [ 1; 2; 3; 4; 5; 6; 7; 8 ]
          in
          Alcotest.(check (list int)) "par result intact"
            [ 1; 4; 9; 16; 25; 36; 49; 64 ] squares);
      Obs.Trace.instant "timeline.done";
      let text = Obs.Trace.to_string () in
      let json =
        match Obs.Json.parse text with
        | Ok j -> j
        | Error e -> Alcotest.failf "trace JSON rejected: %s" e
      in
      (match Obs.Trace.validate json with
      | Ok s ->
          Alcotest.(check bool) "events present" true (s.Obs.Trace.events > 0)
      | Error e -> Alcotest.failf "validator rejected the trace: %s" e);
      let evs = events_of json in
      let n_tracks = check_tracks evs in
      Alcotest.(check bool) "at least the main track" true (n_tracks >= 1);
      (* Every non-metadata event carries pid 1 and a name. *)
      List.iter
        (fun ev ->
          Alcotest.(check bool) "pid 1" true (int_field ev "pid" = Some 1);
          Alcotest.(check bool) "named" true (str_field ev "name" <> None))
        evs)

let test_trace_distinct_tids () =
  with_trace (fun () ->
      (* Two explicit domains guarantee two distinct tids in the trace,
         independent of how the pool schedules its batches. *)
      let spin name =
        Domain.spawn (fun () ->
            Obs.Span.with_ name (fun () -> Obs.Trace.instant (name ^ ".tick")))
      in
      let d1 = spin "timeline.d1" in
      let d2 = spin "timeline.d2" in
      Domain.join d1;
      Domain.join d2;
      Obs.Span.with_ "timeline.main" ignore;
      let json =
        match Obs.Json.parse (Obs.Trace.to_string ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "trace JSON rejected: %s" e
      in
      match Obs.Trace.validate json with
      | Ok s ->
          Alcotest.(check bool) "separate domains get separate tracks" true
            (s.Obs.Trace.tracks >= 2)
      | Error e -> Alcotest.failf "validator rejected the trace: %s" e)

let test_trace_speculative_spans () =
  with_trace (fun () ->
      (* A suppressed domain (the pool's speculative work) still traces,
         tagged with cat "speculative" so the timeline shows the work the
         registry deliberately ignores. *)
      Obs.unrecorded (fun () ->
          Obs.Span.with_ "timeline.spec" ignore);
      Alcotest.(check bool) "suppressed span not in the registry" true
        (Obs.Timer.snapshot "timeline.spec" = None);
      let json =
        match Obs.Json.parse (Obs.Trace.to_string ()) with
        | Ok j -> j
        | Error e -> Alcotest.failf "trace JSON rejected: %s" e
      in
      let spec =
        List.filter
          (fun ev -> str_field ev "name" = Some "timeline.spec")
          (events_of json)
      in
      Alcotest.(check int) "B and E both traced" 2 (List.length spec);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "tagged speculative" true
            (str_field ev "cat" = Some "speculative"))
        spec)

let test_trace_async_arcs_and_validation_errors () =
  with_trace (fun () ->
      Obs.Trace.async_begin ~cat:"batch" ~id:7 "case-x";
      Obs.Trace.async_end ~cat:"batch" ~id:7 "case-x";
      (match Obs.Json.parse (Obs.Trace.to_string ()) with
      | Error e -> Alcotest.failf "trace JSON rejected: %s" e
      | Ok json -> (
          match Obs.Trace.validate json with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "async arcs rejected: %s" e));
      (* The validator rejects structurally broken traces. *)
      let bad ph_list =
        Obs.Json.List
          (List.map
             (fun (name, ph, ts) ->
               Obs.Json.Assoc
                 [
                   ("name", Obs.Json.String name);
                   ("ph", Obs.Json.String ph);
                   ("ts", Obs.Json.Float ts);
                   ("pid", Obs.Json.Int 1);
                   ("tid", Obs.Json.Int 0);
                 ])
             ph_list)
      in
      (match Obs.Trace.validate (bad [ ("a", "B", 1.); ("b", "E", 2.) ]) with
      | Ok _ -> Alcotest.fail "mismatched B/E accepted"
      | Error _ -> ());
      (match Obs.Trace.validate (bad [ ("a", "B", 5.); ("a", "E", 2.) ]) with
      | Ok _ -> Alcotest.fail "decreasing ts accepted"
      | Error _ -> ());
      match Obs.Trace.validate (bad [ ("a", "B", 1.) ]) with
      | Ok _ -> Alcotest.fail "unclosed span accepted"
      | Error _ -> ())

let test_report_html () =
  let registry_json =
    {|{"schema_version": 2,
       "counters": {"budget.trips.states": 2, "flow.attempts": 3},
       "gauges": {"engine.arena_bytes": 4096},
       "timers": {"strategy.bind":
         {"count": 4, "total_s": 2.0, "mean_s": 0.5,
          "stddev_s": 0.1, "min_s": 0.4, "max_s": 0.7}},
       "histograms": {"engine.probe_len":
         {"count": 10, "p50": 2.0, "p90": 4.0, "p99": 8.0, "max": 9.0}},
       "events": [], "events_dropped": {}}|}
  in
  let journal_text =
    String.concat "\n"
      [
        {|{"case": "a.xml", "status": "allocated", "throughput": "1/3"}|};
        {|{"case": "b.xml", "status": "partial", "reason": "budget.states"}|};
        {|{"case": "c.xml", "status": "failed", "reason": "infeasible"}|};
      ]
  in
  let registry =
    match Obs.Json.parse registry_json with
    | Error e -> Alcotest.failf "fixture JSON: %s" e
    | Ok j -> (
        match Report.registry_of_json ~label:"metrics.json" j with
        | Error e -> Alcotest.failf "registry parse: %s" e
        | Ok r -> r)
  in
  let journal =
    match Report.journal_of_string ~label:"journal.jsonl" journal_text with
    | Error e -> Alcotest.failf "journal parse: %s" e
    | Ok j -> j
  in
  let html =
    Report.html ~registries:[ registry ] ~journals:[ journal ]
      ~traces:[ "trace.json" ] ()
  in
  let contains needle =
    let nl = String.length needle and hl = String.length html in
    let rec go i =
      i + nl <= hl && (String.sub html i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [
      "<table id=\"phase-table\">";
      "class=\"sparkline\"";
      "strategy.bind";
      "budget.trips.states";
      "engine.probe_len";
      "trace.json";
      "infeasible";
    ];
  (* Deterministic: same inputs, same bytes. *)
  let html2 =
    Report.html ~registries:[ registry ] ~journals:[ journal ]
      ~traces:[ "trace.json" ] ()
  in
  Alcotest.(check string) "byte-for-byte deterministic" html html2;
  (* Malformed journal lines fail with a located error. *)
  match Report.journal_of_string ~label:"j" "{\"case\": \"x\"}" with
  | Ok _ -> Alcotest.fail "journal line without status accepted"
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e >= 3 && String.sub e 0 3 = "j:1")

let suite =
  [
    Alcotest.test_case "trace export under Par fan-out" `Quick
      test_trace_export_under_par;
    Alcotest.test_case "distinct domains make distinct tracks" `Quick
      test_trace_distinct_tids;
    Alcotest.test_case "suppressed spans trace as speculative" `Quick
      test_trace_speculative_spans;
    Alcotest.test_case "async arcs and validator rejections" `Quick
      test_trace_async_arcs_and_validation_errors;
    Alcotest.test_case "report html" `Quick test_report_html;
  ]
