(* The load-test harness's own moving parts: the seeded workload
   generator and the invariant-oracle accounting. The full harness
   (forked daemon, thread clients) is exercised end-to-end by
   test/cli/loadtest.t and the CI load-smoke job; these tests pin the
   pieces a failing load run's diagnosis depends on. *)

module W = Loadtest.Workload
module O = Loadtest.Oracle
module Json = Obs.Json

let cases = [| "a.xml"; "b.xml"; "c.xml" |]

let test_workload_deterministic () =
  for client = 0 to 5 do
    for k = 0 to 20 do
      let r1 = W.request ~seed:42 ~cases ~mix:W.default_mix ~client ~k in
      let r2 = W.request ~seed:42 ~cases ~mix:W.default_mix ~client ~k in
      Alcotest.(check string) "same id" r1.W.id r2.W.id;
      Alcotest.(check string) "same line" r1.W.line r2.W.line
    done
  done;
  let r = W.request ~seed:42 ~cases ~mix:W.default_mix ~client:3 ~k:7 in
  let r' = W.request ~seed:43 ~cases ~mix:W.default_mix ~client:3 ~k:7 in
  Alcotest.(check string) "id ignores seed" r.W.id r'.W.id;
  Alcotest.(check string) "id scheme" "c3-7" r.W.id

let test_workload_ids_unique () =
  let seen = Hashtbl.create 512 in
  for client = 0 to 9 do
    for k = 0 to 49 do
      let r = W.request ~seed:1 ~cases ~mix:W.default_mix ~client ~k in
      Alcotest.(check bool)
        ("fresh id " ^ r.W.id)
        false
        (Hashtbl.mem seen r.W.id);
      Hashtbl.replace seen r.W.id ()
    done
  done

let test_workload_lines_wellformed () =
  for k = 0 to 99 do
    let r = W.request ~seed:7 ~cases ~mix:W.default_mix ~client:0 ~k in
    match Json.parse r.W.line with
    | Error e -> Alcotest.failf "unparsable line %s: %s" r.W.line e
    | Ok j ->
        Alcotest.(check (option string))
          "id echoed"
          (Some r.W.id)
          (match Json.member "id" j with
          | Some (Json.String s) -> Some s
          | _ -> None);
        Alcotest.(check (option string))
          "verb field"
          (Some r.W.verb)
          (match Json.member "verb" j with
          | Some (Json.String s) -> Some s
          | _ -> None);
        Alcotest.(check (option string))
          "tier field"
          (Some (Server.Tier.label r.W.tier))
          (match Json.member "tier" j with
          | Some (Json.String s) -> Some s
          | _ -> None);
        (match r.W.case with
        | Some c ->
            Alcotest.(check (option string))
              "file field" (Some c)
              (match Json.member "file" j with
              | Some (Json.String s) -> Some s
              | _ -> None)
        | None -> ())
  done

let test_workload_mix_extremes () =
  let all_tier mix tier =
    for k = 0 to 49 do
      let r = W.request ~seed:3 ~cases ~mix ~client:1 ~k in
      Alcotest.(check string)
        "tier forced" (Server.Tier.label tier)
        (Server.Tier.label r.W.tier)
    done
  in
  all_tier
    { W.interactive = 1.; standard = 0.; batch = 0. }
    Server.Tier.Interactive;
  all_tier { W.interactive = 0.; standard = 1.; batch = 0. } Server.Tier.Standard;
  all_tier { W.interactive = 0.; standard = 0.; batch = 1. } Server.Tier.Batch

let test_workload_mix_proportions () =
  let n = 2000 in
  let count = Hashtbl.create 3 in
  for k = 0 to n - 1 do
    let r = W.request ~seed:11 ~cases ~mix:W.default_mix ~client:0 ~k in
    let key = Server.Tier.label r.W.tier in
    Hashtbl.replace count key
      (1 + Option.value ~default:0 (Hashtbl.find_opt count key))
  done;
  let frac key = float_of_int (Hashtbl.find count key) /. float_of_int n in
  (* Default mix is 0.3/0.3/0.4; allow generous sampling slack. *)
  Alcotest.(check bool) "interactive ~0.3" true (abs_float (frac "interactive" -. 0.3) < 0.05);
  Alcotest.(check bool) "standard ~0.3" true (abs_float (frac "standard" -. 0.3) < 0.05);
  Alcotest.(check bool) "batch ~0.4" true (abs_float (frac "batch" -. 0.4) < 0.05)

(* Handcrafted requests with known tiers, so the oracle arithmetic is
   pinned without workload randomness. *)
let req ?(tier = Server.Tier.Standard) ?(verb = "sleep") ?case id =
  { W.id; tier; verb; case; line = "{}" }

let empty_reference () : (string, string) Hashtbl.t = Hashtbl.create 4

let test_oracle_exactly_once () =
  let o = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  O.register_send o (req "r1");
  Alcotest.(check (option string))
    "ok attributed" (Some "r1")
    (O.record_response o {|{"id":"r1","status":"ok","verb":"sleep"}|});
  Alcotest.(check (option string))
    "duplicate still attributed" (Some "r1")
    (O.record_response o {|{"id":"r1","status":"ok","verb":"sleep"}|});
  Alcotest.(check (option string))
    "unknown id unattributed" None
    (O.record_response o {|{"id":"ghost","status":"ok"}|});
  Alcotest.(check (option string))
    "garbage unattributed" None
    (O.record_response o "not json");
  let tt = O.totals o in
  Alcotest.(check int) "sent" 1 tt.O.t_sent;
  Alcotest.(check int) "ok" 1 tt.O.t_ok;
  Alcotest.(check int) "duplicates" 1 tt.O.t_duplicates;
  Alcotest.(check int) "unknown" 2 tt.O.t_unknown;
  Alcotest.(check bool) "no-loss fails on dup/unknown" false (O.no_loss_pass tt)

let test_oracle_lost_vs_aborted () =
  let o = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  O.register_send o (req "r1");
  O.register_send o (req "r2");
  (* Unanswered before the drain: a lost response, the hard violation. *)
  O.mark_unanswered o "r1";
  O.initiate_drain o;
  (* Unanswered after: the shutdown legitimately cut it off. *)
  O.mark_unanswered o "r2";
  let tt = O.totals o in
  Alcotest.(check int) "lost" 1 tt.O.t_lost;
  Alcotest.(check int) "aborted" 1 tt.O.t_aborted;
  Alcotest.(check bool) "no-loss fails on lost" false (O.no_loss_pass tt)

let test_oracle_spurious_draining () =
  let o = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  O.register_send o (req "r1");
  ignore (O.record_response o {|{"id":"r1","status":"draining"}|});
  let tt = O.totals o in
  Alcotest.(check int) "spurious draining" 1 tt.O.t_spurious_draining;
  Alcotest.(check bool) "no-loss fails" false (O.no_loss_pass tt);
  (* After the harness initiates the drain, "draining" is expected. *)
  let o2 = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  O.register_send o2 (req "r1");
  O.initiate_drain o2;
  ignore (O.record_response o2 {|{"id":"r1","status":"draining"}|});
  let tt2 = O.totals o2 in
  Alcotest.(check int) "no spurious after drain" 0 tt2.O.t_spurious_draining;
  Alcotest.(check bool) "no-loss passes" true (O.no_loss_pass tt2)

let test_oracle_overload_witness () =
  (* capacity 4, reserved 1: normal threshold 3, interactive 4. *)
  let overloaded id = Printf.sprintf {|{"id":"%s","status":"overloaded"}|} id in
  (* Window provably full: 3 other requests outstanding when the normal
     rejection arrives — a correct rejection. *)
  let o = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  List.iter (fun id -> O.register_send o (req id)) [ "a"; "b"; "c"; "r" ];
  ignore (O.record_response o (overloaded "r"));
  Alcotest.(check int)
    "full window: no violation" 0 (O.totals o).O.t_overload_violations;
  (* Only 1 other request outstanding: the window had room — violation. *)
  let o2 = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  List.iter (fun id -> O.register_send o2 (req id)) [ "a"; "r" ];
  ignore (O.record_response o2 (overloaded "r"));
  Alcotest.(check int)
    "empty window: violation" 1 (O.totals o2).O.t_overload_violations;
  Alcotest.(check bool)
    "overload oracle fails" false
    (O.overload_pass (O.totals o2));
  (* Completions since send count toward the witness: 3 requests answered
     after r was sent cover the window r was rejected against. *)
  let o3 = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  List.iter (fun id -> O.register_send o3 (req id)) [ "a"; "b"; "c"; "r" ];
  List.iter
    (fun id ->
      ignore
        (O.record_response o3
           (Printf.sprintf {|{"id":"%s","status":"ok","verb":"sleep"}|} id)))
    [ "a"; "b"; "c" ];
  ignore (O.record_response o3 (overloaded "r"));
  Alcotest.(check int)
    "completions cover window" 0 (O.totals o3).O.t_overload_violations;
  (* An interactive rejection needs the full capacity occupied: 3 others
     is below 4 — a reserved-slot violation the normal tier would pass. *)
  let o4 = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  List.iter
    (fun id ->
      O.register_send o4 (req ~tier:Server.Tier.Interactive id))
    [ "a"; "b"; "c"; "r" ];
  ignore (O.record_response o4 (overloaded "r"));
  Alcotest.(check int)
    "interactive threshold is capacity" 1
    (O.totals o4).O.t_overload_violations;
  (* Post-drain rejections are exempt: aborts void the witness. *)
  let o5 = O.create ~capacity:4 ~reserved:1 ~reference:(empty_reference ()) in
  List.iter (fun id -> O.register_send o5 (req id)) [ "a"; "r" ];
  O.initiate_drain o5;
  ignore (O.record_response o5 (overloaded "r"));
  Alcotest.(check int)
    "post-drain exempt" 0 (O.totals o5).O.t_overload_violations

let flow_reference () =
  let reference = empty_reference () in
  Hashtbl.replace reference "a.xml"
    {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|};
  Hashtbl.replace reference "b.xml"
    {|{"case":"b.xml","status":"allocated","throughput":"1/7"}|};
  reference

let flow_ok id result =
  Printf.sprintf {|{"id":"%s","status":"ok","verb":"flow","result":%s}|} id
    result

let test_oracle_journal_checks () =
  (* Matching journal: one line per ok flow, byte-equal to the
     reference. *)
  let o = O.create ~capacity:4 ~reserved:0 ~reference:(flow_reference ()) in
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f1");
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f2");
  ignore
    (O.record_response o
       (flow_ok "f1"
          {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|}));
  ignore
    (O.record_response o
       (flow_ok "f2"
          {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|}));
  O.check_journal o
    [
      {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|};
      {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|};
    ];
  let tt = O.totals o in
  Alcotest.(check int) "journal lines" 2 tt.O.t_journal_lines;
  Alcotest.(check bool) "journal passes" true (O.journal_pass tt)

let test_oracle_journal_missing () =
  (* Two ok flow responses but only one journal line: prefix broken. *)
  let o = O.create ~capacity:4 ~reserved:0 ~reference:(flow_reference ()) in
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f1");
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f2");
  ignore
    (O.record_response o
       (flow_ok "f1"
          {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|}));
  ignore
    (O.record_response o
       (flow_ok "f2"
          {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|}));
  O.check_journal o
    [ {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|} ];
  let tt = O.totals o in
  Alcotest.(check int) "one missing" 1 tt.O.t_journal_missing;
  Alcotest.(check bool) "journal fails" false (O.journal_pass tt)

let test_oracle_journal_corruption () =
  let o = O.create ~capacity:4 ~reserved:0 ~reference:(flow_reference ()) in
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f1");
  ignore
    (O.record_response o
       (flow_ok "f1"
          {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|}));
  (* A journal line that differs from the sequential reference by one
     byte is a mismatch, not a match. *)
  O.check_journal o
    [
      {|{"case":"a.xml","status":"allocated","throughput":"1/6"}|};
      {|{"case":"a.xml","status":"allocated","throughput":"1/5"}|};
    ];
  let tt = O.totals o in
  Alcotest.(check int) "one mismatch" 1 tt.O.t_journal_mismatches;
  (* More journal lines for a case than flow requests sent is also a
     mismatch (the daemon invented work). *)
  let o2 = O.create ~capacity:4 ~reserved:0 ~reference:(flow_reference ()) in
  O.register_send o2 (req ~verb:"flow" ~case:"b.xml" "f1");
  ignore
    (O.record_response o2
       (flow_ok "f1"
          {|{"case":"b.xml","status":"allocated","throughput":"1/7"}|}));
  O.check_journal o2
    [
      {|{"case":"b.xml","status":"allocated","throughput":"1/7"}|};
      {|{"case":"b.xml","status":"allocated","throughput":"1/7"}|};
    ];
  Alcotest.(check bool)
    "overcounted journal fails" false
    (O.journal_pass (O.totals o2))

let test_oracle_result_mismatch () =
  let o = O.create ~capacity:4 ~reserved:0 ~reference:(flow_reference ()) in
  O.register_send o (req ~verb:"flow" ~case:"a.xml" "f1");
  (* Served result disagrees with the sequential reference. *)
  ignore
    (O.record_response o
       (flow_ok "f1"
          {|{"case":"a.xml","status":"allocated","throughput":"1/9"}|}));
  let tt = O.totals o in
  Alcotest.(check int) "result mismatch" 1 tt.O.t_result_mismatches;
  Alcotest.(check bool) "journal oracle fails" false (O.journal_pass tt)

let suite =
  [
    Alcotest.test_case "workload deterministic in (seed,client,k)" `Quick
      test_workload_deterministic;
    Alcotest.test_case "workload ids unique" `Quick test_workload_ids_unique;
    Alcotest.test_case "workload lines well-formed" `Quick
      test_workload_lines_wellformed;
    Alcotest.test_case "workload mix extremes" `Quick
      test_workload_mix_extremes;
    Alcotest.test_case "workload mix proportions" `Quick
      test_workload_mix_proportions;
    Alcotest.test_case "oracle: exactly-one response accounting" `Quick
      test_oracle_exactly_once;
    Alcotest.test_case "oracle: lost vs aborted" `Quick
      test_oracle_lost_vs_aborted;
    Alcotest.test_case "oracle: spurious draining" `Quick
      test_oracle_spurious_draining;
    Alcotest.test_case "oracle: overload window witness" `Quick
      test_oracle_overload_witness;
    Alcotest.test_case "oracle: journal byte-check" `Quick
      test_oracle_journal_checks;
    Alcotest.test_case "oracle: journal missing line" `Quick
      test_oracle_journal_missing;
    Alcotest.test_case "oracle: journal corruption" `Quick
      test_oracle_journal_corruption;
    Alcotest.test_case "oracle: served result mismatch" `Quick
      test_oracle_result_mismatch;
  ]
