(* Throughput sensitivity (lib/analysis/sensitivity.mli): measured
   degradation on the shared examples, the delta parameter, and the
   critical-actor ordering. *)

module Sensitivity = Analysis.Sensitivity
module Rat = Sdf.Rat

let check_rat = Helpers.check_rat
let r = Helpers.r

let example_report () =
  (* Only a1 is critical: its self-loop serialises the two firings per
     iteration. a2 and a3 have unbounded auto-concurrency, so growing
     their execution time only deepens the pipeline. *)
  let g = Gen.Examples.example_graph () in
  let rep = Sensitivity.measure g Gen.Examples.example_taus ~output:2 in
  check_rat "base" (r 1 2) rep.Sensitivity.base;
  check_rat "perturbing a1 halves throughput" (r 1 4)
    rep.Sensitivity.per_actor.(0);
  check_rat "a2 has slack" (r 1 2) rep.Sensitivity.per_actor.(1);
  check_rat "a3 has slack" (r 1 2) rep.Sensitivity.per_actor.(2);
  Alcotest.(check (float 1e-9)) "sensitivity of a1" 0.5
    rep.Sensitivity.sensitivity.(0);
  Alcotest.(check (list int)) "critical actors" [ 0 ]
    (Sensitivity.critical_actors rep)

let delta_parameter () =
  (* delta = 2: tau(a1) becomes 3, the period 6; the default delta = 1 is
     the ?delta-less call above. *)
  let g = Gen.Examples.example_graph () in
  let rep =
    Sensitivity.measure ~delta:2 g Gen.Examples.example_taus ~output:2
  in
  check_rat "delta=2 on a1" (r 1 6) rep.Sensitivity.per_actor.(0)

let ring_all_critical () =
  (* Every ring actor sits on the single critical cycle: 1/6 -> 1/7 for
     each, so sensitivities tie and the ordering falls back to actor
     index. *)
  let g = Gen.Examples.ring3 () in
  let rep = Sensitivity.measure g Gen.Examples.ring3_taus ~output:0 in
  check_rat "base" (r 1 6) rep.Sensitivity.base;
  Array.iteri
    (fun a thr -> check_rat (Printf.sprintf "perturbed %d" a) (r 1 7) thr)
    rep.Sensitivity.per_actor;
  Alcotest.(check (list int)) "all critical, index order" [ 0; 1; 2 ]
    (Sensitivity.critical_actors rep)

let state_cap_propagates () =
  let g = Gen.Examples.ring3 () in
  match Sensitivity.measure ~max_states:1 g Gen.Examples.ring3_taus ~output:0 with
  | _ -> Alcotest.fail "expected State_space_exceeded"
  | exception Analysis.Selftimed.State_space_exceeded _ -> ()

let suite =
  [
    Alcotest.test_case "example report" `Quick example_report;
    Alcotest.test_case "delta parameter" `Quick delta_parameter;
    Alcotest.test_case "ring all critical" `Quick ring_all_critical;
    Alcotest.test_case "state cap propagates" `Quick state_cap_propagates;
  ]
