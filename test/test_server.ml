(* The allocation service: QoS tier -> budget mapping, the bounded
   admission window, wire-protocol parsing, the shared journal format and
   the socket-free request handler (error isolation, drain rejection,
   overload under a real concurrent sleeper). *)

module Tier = Server.Tier
module Admission = Server.Admission
module Request = Server.Request
module Journal = Server.Journal
module Handler = Server.Handler

let fresh f =
  Analysis.Memo.clear_all ();
  Fun.protect
    ~finally:(fun () ->
      Analysis.Memo.clear_all ();
      Obs.set_enabled false;
      Obs.reset ())
    f

(* -- tiers -- *)

let test_tier_names () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        "label roundtrips" true
        (Tier.of_string (Tier.label t) = Ok t))
    Tier.all;
  Alcotest.(check bool)
    "unknown tier rejected" true
    (Result.is_error (Tier.of_string "gold"))

let test_tier_budgets () =
  (* Interactive and standard carry a state cap; the caps order as the
     tiers do. Batch without a token is the infinite budget; with the
     shared token it still probes cancellation. *)
  let interactive = Tier.budget Tier.Interactive in
  let standard = Tier.budget Tier.Standard in
  Alcotest.(check bool)
    "interactive states-limited" true
    (Budget.states_limited interactive);
  Alcotest.(check bool)
    "standard states-limited" true
    (Budget.states_limited standard);
  Alcotest.(check bool)
    "interactive cap below standard cap" true
    (Budget.check interactive ~states:300_000 ~arena_bytes:0 = Some Budget.States);
  Alcotest.(check bool)
    "standard tolerates 300k states" true
    (Budget.check standard ~states:300_000 ~arena_bytes:0 = None);
  Alcotest.(check bool)
    "batch unbudgeted is infinite" true
    (Budget.is_infinite (Tier.budget Tier.Batch));
  let cancel = Budget.Cancel.create () in
  let batch = Tier.budget ~cancel Tier.Batch in
  Alcotest.(check bool)
    "batch with token is not infinite" false
    (Budget.is_infinite batch);
  Budget.Cancel.trigger cancel;
  Alcotest.(check bool)
    "batch observes the shared token" true
    (Budget.check batch ~states:0 ~arena_bytes:0 = Some Budget.Cancelled)

(* -- admission -- *)

let test_admission_window () =
  let a = Admission.create ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Admission.capacity a);
  Alcotest.(check bool) "first admitted" true
    (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "second admitted" true
    (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "third overloaded" true
    (Admission.try_admit a = Admission.Overloaded);
  Alcotest.(check int) "two in flight" 2 (Admission.in_flight a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true
    (Admission.try_admit a = Admission.Admitted);
  Admission.release a;
  Admission.release a;
  Alcotest.(check int) "idle" 0 (Admission.in_flight a)

let test_admission_drain () =
  let a = Admission.create ~capacity:4 () in
  Alcotest.(check bool) "not draining" false (Admission.draining a);
  Admission.begin_drain a;
  Admission.begin_drain a;
  Alcotest.(check bool) "draining" true (Admission.draining a);
  Alcotest.(check bool) "work rejected while draining" true
    (Admission.try_admit a = Admission.Draining);
  (* Control sections stay available (status/drain replies during
     drain) and wait_idle returns once everything released. *)
  Admission.enter_control a;
  Alcotest.(check int) "control is not work" 0 (Admission.in_flight a);
  Admission.exit_control a;
  Admission.wait_idle a

let test_admission_capacity_clamp () =
  let a = Admission.create ~capacity:0 () in
  Alcotest.(check int) "clamped to 1" 1 (Admission.capacity a);
  (* The reserve always leaves at least one general slot. *)
  let b = Admission.create ~reserved:9 ~capacity:3 () in
  Alcotest.(check int) "reserved clamped" 2 (Admission.reserved b);
  let c = Admission.create ~reserved:(-2) ~capacity:1 () in
  Alcotest.(check int) "negative reserved clamped" 0 (Admission.reserved c)

let test_admission_reserved () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
  @@ fun () ->
  let a = Admission.create ~reserved:2 ~capacity:4 () in
  let value = Obs.Counter.value in
  (* Normal work fills the general pool (capacity - reserved = 2). *)
  Alcotest.(check bool) "normal 1" true (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "normal 2" true (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "normal blocked by reserve" true
    (Admission.try_admit a = Admission.Overloaded);
  Alcotest.(check int) "blocked while slots were free" 1
    (value "server.preempt.normal_blocked");
  (* Interactive rides the reserve all the way to capacity. *)
  Alcotest.(check bool) "privileged 1" true
    (Admission.try_admit ~privileged:true a = Admission.Admitted);
  Alcotest.(check bool) "privileged 2" true
    (Admission.try_admit ~privileged:true a = Admission.Admitted);
  Alcotest.(check int) "both admissions used the reserve" 2
    (value "server.preempt.reserved_admits");
  (* The window is genuinely full now: even privileged bounces, and a
     normal rejection no longer counts as "blocked by the reserve". *)
  Alcotest.(check bool) "privileged overloaded at capacity" true
    (Admission.try_admit ~privileged:true a = Admission.Overloaded);
  Alcotest.(check bool) "normal overloaded at capacity" true
    (Admission.try_admit a = Admission.Overloaded);
  Alcotest.(check int) "full-window rejection not counted" 1
    (value "server.preempt.normal_blocked");
  Alcotest.(check int) "normal occupancy" 2 (Admission.normal_in_flight a);
  Alcotest.(check int) "privileged occupancy" 2
    (Admission.privileged_in_flight a);
  (* Releasing a privileged slot reopens the reserve for privileged
     work only. *)
  Admission.release ~privileged:true a;
  Alcotest.(check bool) "reserve reopens for privileged" true
    (Admission.try_admit ~privileged:true a = Admission.Admitted);
  Admission.release ~privileged:true a;
  Admission.release ~privileged:true a;
  Admission.release a;
  Admission.release a;
  Alcotest.(check int) "idle" 0 (Admission.in_flight a);
  Admission.wait_idle a

(* Model-based property: replay an arbitrary admit/release sequence
   against pen-and-paper occupancy counts. The invariants under test:
   a privileged (interactive) request is admitted whenever the window
   is not completely full — in particular it is NEVER rejected while a
   normal (batch) request occupies a slot the reserve should have held
   back — and a normal request is admitted exactly while the general
   pool (capacity - reserved) has room. *)
let admission_model_prop (capacity, reserved, ops) =
  let a = Admission.create ~reserved ~capacity () in
  let capacity = Admission.capacity a in
  let reserved = Admission.reserved a in
  let norm = ref 0 and priv = ref 0 in
  List.for_all
    (fun op ->
      match op land 3 with
      | 0 | 1 ->
          let privileged = op land 1 = 1 in
          let d = Admission.try_admit ~privileged a in
          let expect =
            if privileged then
              if !norm + !priv < capacity then Admission.Admitted
              else Admission.Overloaded
            else if !norm < capacity - reserved && !norm + !priv < capacity
            then Admission.Admitted
            else Admission.Overloaded
          in
          if d = Admission.Admitted then
            if privileged then incr priv else incr norm;
          d = expect
          && Admission.normal_in_flight a = !norm
          && Admission.privileged_in_flight a = !priv
      | 2 ->
          if !norm > 0 then begin
            Admission.release a;
            decr norm
          end;
          true
      | _ ->
          if !priv > 0 then begin
            Admission.release ~privileged:true a;
            decr priv
          end;
          true)
    ops

(* -- workqueue -- *)

let test_workqueue_priority_fifo () =
  let q = Server.Workqueue.create () in
  let order = ref [] in
  let job tag () = order := tag :: !order in
  Server.Workqueue.submit q ~privileged:false (job "n1");
  Server.Workqueue.submit q ~privileged:false (job "n2");
  Server.Workqueue.submit q ~privileged:true (job "p1");
  Server.Workqueue.submit q ~privileged:false (job "n3");
  Server.Workqueue.submit q ~privileged:true (job "p2");
  Alcotest.(check int) "queued" 5 (Server.Workqueue.length q);
  let rec drain () =
    match Server.Workqueue.try_take q with
    | Some j ->
        j ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "privileged first, FIFO within class"
    [ "p1"; "p2"; "n1"; "n2"; "n3" ]
    (List.rev !order)

let test_workqueue_close () =
  let q = Server.Workqueue.create () in
  let hit = ref false in
  Server.Workqueue.submit q ~privileged:false (fun () -> hit := true);
  Server.Workqueue.close q;
  (* Queued-before-close jobs still drain... *)
  (match Server.Workqueue.take q with
  | Some j -> j ()
  | None -> Alcotest.fail "expected the queued job");
  Alcotest.(check bool) "queued job ran" true !hit;
  (* ...then take signals worker exit... *)
  Alcotest.(check bool) "take after close" true
    (Server.Workqueue.take q = None);
  (* ...and a post-close submit runs inline rather than vanishing. *)
  let inline = ref false in
  Server.Workqueue.submit q ~privileged:true (fun () -> inline := true);
  Alcotest.(check bool) "post-close submit ran inline" true !inline

(* FIFO-within-class under an arbitrary submit sequence: draining the
   queue yields every privileged job (in submit order) before every
   normal job (in submit order). *)
let workqueue_fifo_prop classes =
  let q = Server.Workqueue.create () in
  let order = ref [] in
  List.iteri
    (fun i privileged ->
      Server.Workqueue.submit q ~privileged (fun () ->
          order := (privileged, i) :: !order))
    classes;
  let rec drain () =
    match Server.Workqueue.try_take q with
    | Some j ->
        j ();
        drain ()
    | None -> ()
  in
  drain ();
  let indexed = List.mapi (fun i c -> (c, i)) classes in
  let expect =
    List.filter (fun (c, _) -> c) indexed
    @ List.filter (fun (c, _) -> not c) indexed
  in
  List.rev !order = expect

(* -- protocol parsing -- *)

let ok_req line =
  match Request.of_line line with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let err_req line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected a parse error for %s" line
  | Error e -> e

let test_request_parsing () =
  let r =
    ok_req
      {|{"id":"r1","verb":"flow","file":"a.xml","platform":"mesh3x3","tier":"interactive"}|}
  in
  Alcotest.(check bool) "id echoed" true (r.Request.id = Some "r1");
  Alcotest.(check bool) "tier parsed" true (r.Request.tier = Tier.Interactive);
  (match r.Request.verb with
  | Request.Flow { file; platform } ->
      Alcotest.(check string) "file" "a.xml" file;
      Alcotest.(check string) "platform" "mesh3x3" platform
  | _ -> Alcotest.fail "expected flow verb");
  let d = ok_req {|{"verb":"flow","file":"a.xml"}|} in
  Alcotest.(check bool) "tier defaults to standard" true
    (d.Request.tier = Tier.Standard);
  (match d.Request.verb with
  | Request.Flow { platform; _ } ->
      Alcotest.(check string) "platform defaults" "multimedia" platform
  | _ -> Alcotest.fail "expected flow verb");
  (match (ok_req {|{"verb":"sleep","ms":50}|}).Request.verb with
  | Request.Sleep { ms } -> Alcotest.(check int) "sleep ms" 50 ms
  | _ -> Alcotest.fail "expected sleep verb");
  ignore (err_req "not json");
  ignore (err_req {|["an","array"]|});
  ignore (err_req {|{"id":"x"}|});
  ignore (err_req {|{"verb":"warp"}|});
  ignore (err_req {|{"verb":"flow"}|});
  ignore (err_req {|{"verb":"sleep"}|});
  ignore (err_req {|{"verb":"flow","file":"a.xml","tier":"gold"}|})

(* -- journal format -- *)

let test_journal_lines () =
  Alcotest.(check string)
    "allocated line"
    {|{"case":"a.xml","status":"allocated","throughput":"1/30"}|}
    (Journal.to_line (Journal.allocated ~case:"a.xml" (Sdf.Rat.make 1 30)));
  Alcotest.(check string)
    "partial line"
    {|{"case":"a.xml","status":"partial","reason":"states"}|}
    (Journal.to_line (Journal.partial ~case:"a.xml" Budget.States));
  Alcotest.(check string)
    "failed line"
    {|{"case":"a.xml","status":"failed","reason":"bind_failed"}|}
    (Journal.to_line (Journal.failed ~case:"a.xml" "bind_failed"));
  (* The escapes matter: case ids are file names, messages are exception
     strings. *)
  Alcotest.(check string)
    "error line escapes"
    {|{"case":"a\"b.xml","status":"error","message":"tab\there"}|}
    (Journal.to_line (Journal.error ~case:"a\"b.xml" "tab\there"))

(* -- handler -- *)

let with_handler ?(capacity = 4) ?(sweep_domains = 1) f =
  fresh @@ fun () ->
  let root = Filename.temp_file "serve_root" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let app = Appmodel.Models.example_app () in
  Appmodel.Sdf3_xml.write_app_file (Filename.concat root "app.xml") app;
  let journal_path = Filename.concat root "journal.jsonl" in
  let journal = open_out journal_path in
  let admission = Admission.create ~capacity () in
  let cancel = Budget.Cancel.create () in
  let h =
    Handler.create ~root ~journal ~cancel ~sweep_domains ~admission ()
  in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr journal;
      Array.iter
        (fun f -> Sys.remove (Filename.concat root f))
        (Sys.readdir root);
      Unix.rmdir root)
    (fun () -> f h ~journal_path ~cancel)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_handler_flow_and_journal () =
  with_handler @@ fun h ~journal_path ~cancel:_ ->
  let resp =
    Handler.handle h
      {|{"id":"1","verb":"flow","file":"app.xml","platform":"example"}|}
  in
  let prefix = {|{"id":"1","status":"ok","verb":"flow","result":{"case":"app.xml","status":"allocated"|} in
  Alcotest.(check bool)
    "allocated response" true
    (String.starts_with ~prefix resp);
  (* The journal line is exactly the response's result object. *)
  (match read_lines journal_path with
  | [ line ] ->
      Alcotest.(check bool)
        "journal line embedded in response" true
        (String.ends_with ~suffix:({|"result":|} ^ line ^ "}") resp)
  | lines -> Alcotest.failf "expected 1 journal line, got %d" (List.length lines));
  Alcotest.(check int) "served" 1 (Handler.requests_served h)

let test_handler_isolation () =
  with_handler @@ fun h ~journal_path ~cancel:_ ->
  (* A missing file, an unknown platform and malformed JSON are all this
     request's problem, never the handler's. *)
  let missing =
    Handler.handle h {|{"id":"m","verb":"flow","file":"nope.xml"}|}
  in
  Alcotest.(check bool) "missing file is an error reply" true
    (String.starts_with ~prefix:{|{"id":"m","status":"error"|} missing);
  let badplat =
    Handler.handle h
      {|{"id":"p","verb":"flow","file":"app.xml","platform":"hypercube"}|}
  in
  Alcotest.(check bool) "unknown platform answered" true
    (String.length badplat > 0);
  let malformed = Handler.handle h "{{{" in
  Alcotest.(check bool)
    "malformed echoes null id" true
    (String.starts_with ~prefix:{|{"id":null,"status":"error"|} malformed);
  (* Journal: one error line for the missing file, one for the platform. *)
  Alcotest.(check int) "journal isolates failures" 2
    (List.length (read_lines journal_path))

let test_handler_drain_rejection () =
  with_handler @@ fun h ~journal_path:_ ~cancel:_ ->
  let d = Handler.handle h {|{"id":"d","verb":"drain"}|} in
  Alcotest.(check string)
    "drain acknowledged"
    {|{"id":"d","status":"ok","verb":"drain"}|}
    d;
  Alcotest.(check bool) "admission draining" true
    (Admission.draining (Handler.admission h));
  let rejected =
    Handler.handle h {|{"id":"r","verb":"flow","file":"app.xml"}|}
  in
  Alcotest.(check string)
    "work rejected while draining"
    {|{"id":"r","status":"draining","error":"server is draining"}|}
    rejected;
  let status = Handler.handle h {|{"id":"s","verb":"status"}|} in
  Alcotest.(check bool) "status still served" true
    (String.starts_with ~prefix:{|{"id":"s","status":"ok","verb":"status"|}
       status)

let test_handler_overload () =
  with_handler ~capacity:1 @@ fun h ~journal_path:_ ~cancel:_ ->
  (* Pin the single slot with a real concurrent sleeper, then watch a
     flow request bounce. *)
  let sleeper =
    Thread.create
      (fun () -> Handler.handle h {|{"id":"z","verb":"sleep","ms":400}|})
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Admission.in_flight (Handler.admission h) = 0
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let resp = Handler.handle h {|{"id":"o","verb":"flow","file":"app.xml"}|} in
  Alcotest.(check string)
    "overloaded"
    {|{"id":"o","status":"overloaded","error":"server at capacity"}|}
    resp;
  Thread.join sleeper;
  Alcotest.(check bool) "slot released after sleep" true
    (Admission.in_flight (Handler.admission h) = 0)

let test_handler_sleep_cancel () =
  with_handler @@ fun h ~journal_path:_ ~cancel ->
  let sleeper =
    Thread.create
      (fun () -> Handler.handle h {|{"id":"c","verb":"sleep","ms":60000}|})
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Admission.in_flight (Handler.admission h) = 0
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  (* SIGTERM path: the shared token interrupts even a long sleep. *)
  Budget.Cancel.trigger cancel;
  let t0 = Unix.gettimeofday () in
  Thread.join sleeper;
  Alcotest.(check bool) "cancelled promptly" true
    (Unix.gettimeofday () -. t0 < 5.)

(* -- daemon pipelining over a real socket -- *)

let write_all_fd fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    match Unix.write fd b !off (Bytes.length b - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* An analyze request through the sharded sweep must answer byte-identically
   to the sequential engine, and clamping back to one domain (the
   multi-worker hazard path) must not change the answer either. *)
let test_handler_parallel_analyze () =
  with_handler ~sweep_domains:4 @@ fun h ~journal_path:_ ~cancel:_ ->
  let req id = Printf.sprintf {|{"id":"%s","verb":"analyze","file":"app.xml"}|} id in
  let strip_id id resp =
    let prefix = Printf.sprintf {|{"id":"%s",|} id in
    Alcotest.(check bool) "response shape" true
      (String.starts_with ~prefix resp);
    String.sub resp (String.length prefix)
      (String.length resp - String.length prefix)
  in
  let parallel = strip_id "p" (Handler.handle h (req "p")) in
  Alcotest.(check bool) "analyzed via sweep" true
    (String.starts_with
       ~prefix:{|"status":"ok","verb":"analyze","result":{"case":"app.xml","status":"analyzed"|}
       parallel);
  Alcotest.(check int) "no leaked sweep domains" 0
    (Analysis.Selftimed.live_sweep_domains ());
  (* A 2-worker pool clamps the handler back to the sequential engine. *)
  Handler.clamp_sweep_for_pool h ~workers:2;
  Alcotest.(check int) "clamped to sequential" 1 (Handler.sweep_domains h);
  Analysis.Memo.clear_all ();
  let sequential = strip_id "s" (Handler.handle h (req "s")) in
  Alcotest.(check string) "sweep answer = sequential answer" sequential
    parallel

(* Nested-pool regression: a daemon with a real worker pool serving a
   handler configured for parallel sweeps must degrade the sweeps to
   sequential (never deadlock or fight over the shard-domain allowance)
   and still answer analyze requests correctly. *)
let test_daemon_sweep_clamp () =
  fresh @@ fun () ->
  let root = Filename.temp_file "serve_clamp" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let app = Appmodel.Models.example_app () in
  Appmodel.Sdf3_xml.write_app_file (Filename.concat root "app.xml") app;
  let sock = Filename.concat root "d.sock" in
  let admission = Admission.create ~capacity:8 () in
  let cancel = Budget.Cancel.create () in
  let h = Handler.create ~root ~cancel ~sweep_domains:8 ~admission () in
  let cfg =
    {
      (Server.Daemon.default_config ~socket_path:sock) with
      Server.Daemon.idle_timeout_s = 30.;
      read_timeout_s = 30.;
      workers = 4;
    }
  in
  let ready_m = Mutex.create () in
  let ready_c = Condition.create () in
  let ready = ref false in
  let daemon =
    Thread.create
      (fun () ->
        ignore
          (Server.Daemon.run
             ~on_ready:(fun () ->
               Mutex.lock ready_m;
               ready := true;
               Condition.signal ready_c;
               Mutex.unlock ready_m)
             cfg h ~cancel))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  Alcotest.(check int) "pool clamped the sweep" 1 (Handler.sweep_domains h);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ())
  in
  let reqs =
    List.init 4 (fun i ->
        Printf.sprintf {|{"id":"a%d","verb":"analyze","file":"app.xml"}|} i)
  in
  write_all_fd fd (String.concat "\n" reqs ^ "\n");
  for _ = 1 to 4 do
    match read_line () with
    | None -> Alcotest.fail "connection closed before analyze responses"
    | Some line ->
        Alcotest.(check bool)
          "pipelined analyze answered" true
          (match Obs.Json.parse line with
          | Ok j -> (
              match Obs.Json.member "status" j with
              | Some (Obs.Json.String "ok") -> true
              | _ -> false)
          | Error _ -> false)
  done;
  write_all_fd fd ({|{"id":"d","verb":"drain"}|} ^ "\n");
  (match read_line () with
  | Some _ -> ()
  | None -> Alcotest.fail "no drain ack");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Thread.join daemon;
  Alcotest.(check int) "no leaked sweep domains" 0
    (Analysis.Selftimed.live_sweep_domains ());
  Array.iter
    (fun f -> try Sys.remove (Filename.concat root f) with Sys_error _ -> ())
    (Sys.readdir root);
  Unix.rmdir root

(* Regression for concurrent completions on one connection: hammer a
   single socket with pipelined work requests (they run concurrently on
   the worker pool and complete in arbitrary order) and assert every
   response line parses cleanly with the right id exactly once — the
   per-connection write mutex is what keeps response bytes from
   interleaving. *)
let test_daemon_pipelined_socket () =
  fresh @@ fun () ->
  let sock = Filename.temp_file "serve_pipe" ".sock" in
  Sys.remove sock;
  let admission = Admission.create ~reserved:2 ~capacity:32 () in
  let cancel = Budget.Cancel.create () in
  let h = Handler.create ~admission ~cancel () in
  let cfg =
    {
      (Server.Daemon.default_config ~socket_path:sock) with
      Server.Daemon.idle_timeout_s = 30.;
      read_timeout_s = 30.;
    }
  in
  let ready_m = Mutex.create () in
  let ready_c = Condition.create () in
  let ready = ref false in
  let daemon =
    Thread.create
      (fun () ->
        ignore
          (Server.Daemon.run
             ~on_ready:(fun () ->
               Mutex.lock ready_m;
               ready := true;
               Condition.signal ready_c;
               Mutex.unlock ready_m)
             cfg h ~cancel))
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ())
  in
  let n = 24 in
  let reqs =
    List.init n (fun i ->
        let tier =
          match i mod 3 with
          | 0 -> "interactive"
          | 1 -> "standard"
          | _ -> "batch"
        in
        Printf.sprintf {|{"id":"h%d","verb":"sleep","ms":%d,"tier":"%s"}|} i
          (5 + (i mod 7))
          tier)
  in
  write_all_fd fd (String.concat "\n" reqs ^ "\n");
  let ids = Hashtbl.create 32 in
  for _ = 1 to n do
    match read_line () with
    | None -> Alcotest.fail "connection closed before all responses"
    | Some line -> (
        match Obs.Json.parse line with
        | Error e -> Alcotest.failf "unparseable response %S: %s" line e
        | Ok j ->
            (match Obs.Json.member "status" j with
            | Some (Obs.Json.String "ok") -> ()
            | _ -> Alcotest.failf "unexpected status in %s" line);
            (match Obs.Json.member "id" j with
            | Some (Obs.Json.String id) ->
                if Hashtbl.mem ids id then
                  Alcotest.failf "duplicate response id %s" id;
                Hashtbl.add ids id ()
            | _ -> Alcotest.failf "missing id in %s" line))
  done;
  for i = 0 to n - 1 do
    if not (Hashtbl.mem ids (Printf.sprintf "h%d" i)) then
      Alcotest.failf "no response for id h%d" i
  done;
  write_all_fd fd ({|{"id":"d","verb":"drain"}|} ^ "\n");
  (match read_line () with
  | Some line ->
      Alcotest.(check bool)
        "drain acknowledged" true
        (String.starts_with ~prefix:{|{"id":"d","status":"ok"|} line)
  | None -> Alcotest.fail "no drain ack");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Thread.join daemon;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let suite =
  [
    Alcotest.test_case "tier names" `Quick test_tier_names;
    Alcotest.test_case "tier budgets" `Quick test_tier_budgets;
    Alcotest.test_case "admission window" `Quick test_admission_window;
    Alcotest.test_case "admission drain" `Quick test_admission_drain;
    Alcotest.test_case "admission capacity clamp" `Quick
      test_admission_capacity_clamp;
    Alcotest.test_case "admission reserved slots" `Quick
      test_admission_reserved;
    Helpers.qcheck ~count:300
      "admission model: interactive never starved by batch"
      QCheck2.Gen.(
        triple (int_range 1 6) (int_range 0 6)
          (list_size (int_range 0 60) (int_range 0 1000)))
      admission_model_prop;
    Alcotest.test_case "workqueue priority + FIFO" `Quick
      test_workqueue_priority_fifo;
    Alcotest.test_case "workqueue close" `Quick test_workqueue_close;
    Helpers.qcheck ~count:200 "workqueue FIFO within class"
      QCheck2.Gen.(list_size (int_range 0 40) bool)
      workqueue_fifo_prop;
    Alcotest.test_case "request parsing" `Quick test_request_parsing;
    Alcotest.test_case "journal lines" `Quick test_journal_lines;
    Alcotest.test_case "handler flow + journal" `Quick
      test_handler_flow_and_journal;
    Alcotest.test_case "handler failure isolation" `Quick
      test_handler_isolation;
    Alcotest.test_case "handler drain rejection" `Quick
      test_handler_drain_rejection;
    Alcotest.test_case "handler overload" `Quick test_handler_overload;
    Alcotest.test_case "handler sleep cancel" `Quick test_handler_sleep_cancel;
    Alcotest.test_case "handler parallel analyze = sequential" `Quick
      test_handler_parallel_analyze;
    Alcotest.test_case "daemon worker pool clamps the sweep" `Quick
      test_daemon_sweep_clamp;
    Alcotest.test_case "daemon pipelined socket" `Quick
      test_daemon_pipelined_socket;
  ]
