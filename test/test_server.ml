(* The allocation service: QoS tier -> budget mapping, the bounded
   admission window, wire-protocol parsing, the shared journal format and
   the socket-free request handler (error isolation, drain rejection,
   overload under a real concurrent sleeper). *)

module Tier = Server.Tier
module Admission = Server.Admission
module Request = Server.Request
module Journal = Server.Journal
module Handler = Server.Handler

let fresh f =
  Analysis.Memo.clear_all ();
  Fun.protect
    ~finally:(fun () ->
      Analysis.Memo.clear_all ();
      Obs.set_enabled false;
      Obs.reset ())
    f

(* -- tiers -- *)

let test_tier_names () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        "label roundtrips" true
        (Tier.of_string (Tier.label t) = Ok t))
    Tier.all;
  Alcotest.(check bool)
    "unknown tier rejected" true
    (Result.is_error (Tier.of_string "gold"))

let test_tier_budgets () =
  (* Interactive and standard carry a state cap; the caps order as the
     tiers do. Batch without a token is the infinite budget; with the
     shared token it still probes cancellation. *)
  let interactive = Tier.budget Tier.Interactive in
  let standard = Tier.budget Tier.Standard in
  Alcotest.(check bool)
    "interactive states-limited" true
    (Budget.states_limited interactive);
  Alcotest.(check bool)
    "standard states-limited" true
    (Budget.states_limited standard);
  Alcotest.(check bool)
    "interactive cap below standard cap" true
    (Budget.check interactive ~states:300_000 ~arena_bytes:0 = Some Budget.States);
  Alcotest.(check bool)
    "standard tolerates 300k states" true
    (Budget.check standard ~states:300_000 ~arena_bytes:0 = None);
  Alcotest.(check bool)
    "batch unbudgeted is infinite" true
    (Budget.is_infinite (Tier.budget Tier.Batch));
  let cancel = Budget.Cancel.create () in
  let batch = Tier.budget ~cancel Tier.Batch in
  Alcotest.(check bool)
    "batch with token is not infinite" false
    (Budget.is_infinite batch);
  Budget.Cancel.trigger cancel;
  Alcotest.(check bool)
    "batch observes the shared token" true
    (Budget.check batch ~states:0 ~arena_bytes:0 = Some Budget.Cancelled)

(* -- admission -- *)

let test_admission_window () =
  let a = Admission.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Admission.capacity a);
  Alcotest.(check bool) "first admitted" true
    (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "second admitted" true
    (Admission.try_admit a = Admission.Admitted);
  Alcotest.(check bool) "third overloaded" true
    (Admission.try_admit a = Admission.Overloaded);
  Alcotest.(check int) "two in flight" 2 (Admission.in_flight a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true
    (Admission.try_admit a = Admission.Admitted);
  Admission.release a;
  Admission.release a;
  Alcotest.(check int) "idle" 0 (Admission.in_flight a)

let test_admission_drain () =
  let a = Admission.create ~capacity:4 in
  Alcotest.(check bool) "not draining" false (Admission.draining a);
  Admission.begin_drain a;
  Admission.begin_drain a;
  Alcotest.(check bool) "draining" true (Admission.draining a);
  Alcotest.(check bool) "work rejected while draining" true
    (Admission.try_admit a = Admission.Draining);
  (* Control sections stay available (status/drain replies during
     drain) and wait_idle returns once everything released. *)
  Admission.enter_control a;
  Alcotest.(check int) "control is not work" 0 (Admission.in_flight a);
  Admission.exit_control a;
  Admission.wait_idle a

let test_admission_capacity_clamp () =
  let a = Admission.create ~capacity:0 in
  Alcotest.(check int) "clamped to 1" 1 (Admission.capacity a)

(* -- protocol parsing -- *)

let ok_req line =
  match Request.of_line line with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let err_req line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected a parse error for %s" line
  | Error e -> e

let test_request_parsing () =
  let r =
    ok_req
      {|{"id":"r1","verb":"flow","file":"a.xml","platform":"mesh3x3","tier":"interactive"}|}
  in
  Alcotest.(check bool) "id echoed" true (r.Request.id = Some "r1");
  Alcotest.(check bool) "tier parsed" true (r.Request.tier = Tier.Interactive);
  (match r.Request.verb with
  | Request.Flow { file; platform } ->
      Alcotest.(check string) "file" "a.xml" file;
      Alcotest.(check string) "platform" "mesh3x3" platform
  | _ -> Alcotest.fail "expected flow verb");
  let d = ok_req {|{"verb":"flow","file":"a.xml"}|} in
  Alcotest.(check bool) "tier defaults to standard" true
    (d.Request.tier = Tier.Standard);
  (match d.Request.verb with
  | Request.Flow { platform; _ } ->
      Alcotest.(check string) "platform defaults" "multimedia" platform
  | _ -> Alcotest.fail "expected flow verb");
  (match (ok_req {|{"verb":"sleep","ms":50}|}).Request.verb with
  | Request.Sleep { ms } -> Alcotest.(check int) "sleep ms" 50 ms
  | _ -> Alcotest.fail "expected sleep verb");
  ignore (err_req "not json");
  ignore (err_req {|["an","array"]|});
  ignore (err_req {|{"id":"x"}|});
  ignore (err_req {|{"verb":"warp"}|});
  ignore (err_req {|{"verb":"flow"}|});
  ignore (err_req {|{"verb":"sleep"}|});
  ignore (err_req {|{"verb":"flow","file":"a.xml","tier":"gold"}|})

(* -- journal format -- *)

let test_journal_lines () =
  Alcotest.(check string)
    "allocated line"
    {|{"case":"a.xml","status":"allocated","throughput":"1/30"}|}
    (Journal.to_line (Journal.allocated ~case:"a.xml" (Sdf.Rat.make 1 30)));
  Alcotest.(check string)
    "partial line"
    {|{"case":"a.xml","status":"partial","reason":"states"}|}
    (Journal.to_line (Journal.partial ~case:"a.xml" Budget.States));
  Alcotest.(check string)
    "failed line"
    {|{"case":"a.xml","status":"failed","reason":"bind_failed"}|}
    (Journal.to_line (Journal.failed ~case:"a.xml" "bind_failed"));
  (* The escapes matter: case ids are file names, messages are exception
     strings. *)
  Alcotest.(check string)
    "error line escapes"
    {|{"case":"a\"b.xml","status":"error","message":"tab\there"}|}
    (Journal.to_line (Journal.error ~case:"a\"b.xml" "tab\there"))

(* -- handler -- *)

let with_handler ?(capacity = 4) f =
  fresh @@ fun () ->
  let root = Filename.temp_file "serve_root" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let app = Appmodel.Models.example_app () in
  Appmodel.Sdf3_xml.write_app_file (Filename.concat root "app.xml") app;
  let journal_path = Filename.concat root "journal.jsonl" in
  let journal = open_out journal_path in
  let admission = Admission.create ~capacity in
  let cancel = Budget.Cancel.create () in
  let h = Handler.create ~root ~journal ~cancel ~admission () in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr journal;
      Array.iter
        (fun f -> Sys.remove (Filename.concat root f))
        (Sys.readdir root);
      Unix.rmdir root)
    (fun () -> f h ~journal_path ~cancel)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_handler_flow_and_journal () =
  with_handler @@ fun h ~journal_path ~cancel:_ ->
  let resp =
    Handler.handle h
      {|{"id":"1","verb":"flow","file":"app.xml","platform":"example"}|}
  in
  let prefix = {|{"id":"1","status":"ok","verb":"flow","result":{"case":"app.xml","status":"allocated"|} in
  Alcotest.(check bool)
    "allocated response" true
    (String.starts_with ~prefix resp);
  (* The journal line is exactly the response's result object. *)
  (match read_lines journal_path with
  | [ line ] ->
      Alcotest.(check bool)
        "journal line embedded in response" true
        (String.ends_with ~suffix:({|"result":|} ^ line ^ "}") resp)
  | lines -> Alcotest.failf "expected 1 journal line, got %d" (List.length lines));
  Alcotest.(check int) "served" 1 (Handler.requests_served h)

let test_handler_isolation () =
  with_handler @@ fun h ~journal_path ~cancel:_ ->
  (* A missing file, an unknown platform and malformed JSON are all this
     request's problem, never the handler's. *)
  let missing =
    Handler.handle h {|{"id":"m","verb":"flow","file":"nope.xml"}|}
  in
  Alcotest.(check bool) "missing file is an error reply" true
    (String.starts_with ~prefix:{|{"id":"m","status":"error"|} missing);
  let badplat =
    Handler.handle h
      {|{"id":"p","verb":"flow","file":"app.xml","platform":"hypercube"}|}
  in
  Alcotest.(check bool) "unknown platform answered" true
    (String.length badplat > 0);
  let malformed = Handler.handle h "{{{" in
  Alcotest.(check bool)
    "malformed echoes null id" true
    (String.starts_with ~prefix:{|{"id":null,"status":"error"|} malformed);
  (* Journal: one error line for the missing file, one for the platform. *)
  Alcotest.(check int) "journal isolates failures" 2
    (List.length (read_lines journal_path))

let test_handler_drain_rejection () =
  with_handler @@ fun h ~journal_path:_ ~cancel:_ ->
  let d = Handler.handle h {|{"id":"d","verb":"drain"}|} in
  Alcotest.(check string)
    "drain acknowledged"
    {|{"id":"d","status":"ok","verb":"drain"}|}
    d;
  Alcotest.(check bool) "admission draining" true
    (Admission.draining (Handler.admission h));
  let rejected =
    Handler.handle h {|{"id":"r","verb":"flow","file":"app.xml"}|}
  in
  Alcotest.(check string)
    "work rejected while draining"
    {|{"id":"r","status":"draining","error":"server is draining"}|}
    rejected;
  let status = Handler.handle h {|{"id":"s","verb":"status"}|} in
  Alcotest.(check bool) "status still served" true
    (String.starts_with ~prefix:{|{"id":"s","status":"ok","verb":"status"|}
       status)

let test_handler_overload () =
  with_handler ~capacity:1 @@ fun h ~journal_path:_ ~cancel:_ ->
  (* Pin the single slot with a real concurrent sleeper, then watch a
     flow request bounce. *)
  let sleeper =
    Thread.create
      (fun () -> Handler.handle h {|{"id":"z","verb":"sleep","ms":400}|})
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Admission.in_flight (Handler.admission h) = 0
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  let resp = Handler.handle h {|{"id":"o","verb":"flow","file":"app.xml"}|} in
  Alcotest.(check string)
    "overloaded"
    {|{"id":"o","status":"overloaded","error":"server at capacity"}|}
    resp;
  Thread.join sleeper;
  Alcotest.(check bool) "slot released after sleep" true
    (Admission.in_flight (Handler.admission h) = 0)

let test_handler_sleep_cancel () =
  with_handler @@ fun h ~journal_path:_ ~cancel ->
  let sleeper =
    Thread.create
      (fun () -> Handler.handle h {|{"id":"c","verb":"sleep","ms":60000}|})
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Admission.in_flight (Handler.admission h) = 0
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  (* SIGTERM path: the shared token interrupts even a long sleep. *)
  Budget.Cancel.trigger cancel;
  let t0 = Unix.gettimeofday () in
  Thread.join sleeper;
  Alcotest.(check bool) "cancelled promptly" true
    (Unix.gettimeofday () -. t0 < 5.)

let suite =
  [
    Alcotest.test_case "tier names" `Quick test_tier_names;
    Alcotest.test_case "tier budgets" `Quick test_tier_budgets;
    Alcotest.test_case "admission window" `Quick test_admission_window;
    Alcotest.test_case "admission drain" `Quick test_admission_drain;
    Alcotest.test_case "admission capacity clamp" `Quick
      test_admission_capacity_clamp;
    Alcotest.test_case "request parsing" `Quick test_request_parsing;
    Alcotest.test_case "journal lines" `Quick test_journal_lines;
    Alcotest.test_case "handler flow + journal" `Quick
      test_handler_flow_and_journal;
    Alcotest.test_case "handler failure isolation" `Quick
      test_handler_isolation;
    Alcotest.test_case "handler drain rejection" `Quick
      test_handler_drain_rejection;
    Alcotest.test_case "handler overload" `Quick test_handler_overload;
    Alcotest.test_case "handler sleep cancel" `Quick test_handler_sleep_cancel;
  ]
