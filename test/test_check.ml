(* The verification harness itself (lib/check): oracles pass on known-good
   graphs, the injected mutant is caught and shrunk small, the shrinker
   behaves, and the independent validator rejects corrupted allocations. *)

module Rat = Sdf.Rat
module Sdfg = Sdf.Sdfg
module Case = Check.Case
module Oracle = Check.Oracle
module Models = Appmodel.Models

let case name graph taus = { Case.name; graph; taus }

let known_good_cases () =
  [
    case "example" (Gen.Examples.example_graph ()) Gen.Examples.example_taus;
    case "prodcons" (Gen.Examples.prodcons ()) Gen.Examples.prodcons_taus;
    case "ring3" (Gen.Examples.ring3 ()) Gen.Examples.ring3_taus;
  ]

let all_oracles = Check.Differential.oracles @ Check.Metamorphic.oracles

let oracles_pass_on_examples () =
  List.iter
    (fun c ->
      List.iter
        (fun (o : Oracle.t) ->
          let rng = Gen.Rng.create ~seed:11 in
          match o.Oracle.run ~max_states:50_000 ~rng c with
          | Oracle.Fail msg ->
              Alcotest.failf "%s on %s: %s" o.Oracle.name c.Case.name msg
          | Oracle.Pass | Oracle.Skip _ -> ())
        all_oracles)
    (known_good_cases ())

let clean_fuzz_run () =
  let s =
    Check.Harness.run { Check.Harness.default with seed = 3; count = 60 }
  in
  Alcotest.(check int) "all cases generated" 60 s.Check.Harness.cases;
  Alcotest.(check bool) "no counterexample" true
    (s.Check.Harness.counterexample = None);
  Alcotest.(check bool) "oracles actually ran" true
    (s.Check.Harness.checks > s.Check.Harness.cases)

let mutant_is_caught_and_shrunk () =
  (* The ISSUE acceptance bar: an off-by-one token in the MCR replay must
     be detected and shrink to at most 4 actors. *)
  let s =
    Check.Harness.run
      { Check.Harness.default with seed = 9; count = 200; mutant = true }
  in
  match s.Check.Harness.counterexample with
  | None -> Alcotest.fail "injected mutant not detected"
  | Some cex ->
      Alcotest.(check string) "caught by the differential oracle"
        "diff.selftimed-vs-mcr" cex.Check.Harness.oracle;
      let n = Sdfg.num_actors cex.Check.Harness.shrunk.Case.graph in
      if n > 4 then Alcotest.failf "shrunk to %d actors, want <= 4" n;
      Alcotest.(check bool) "shrinking made progress" true
        (cex.Check.Harness.shrink_steps > 0)

let shrinker_reaches_minimum () =
  (* "At least two actors" as the failing predicate: the example chain
     must shrink to exactly two. *)
  let c =
    {
      Gen.Shrink.graph = Gen.Examples.example_graph ();
      taus = Gen.Examples.example_taus;
    }
  in
  let fails (sc : Gen.Shrink.case) = Sdfg.num_actors sc.Gen.Shrink.graph >= 2 in
  let r = Check.Shrink.minimize ~fails c in
  Alcotest.(check bool) "still failing" true r.Check.Shrink.still_failing;
  Alcotest.(check int) "two actors" 2
    (Sdfg.num_actors r.Check.Shrink.case.Gen.Shrink.graph)

let shrinker_rejects_passing_case () =
  let c =
    {
      Gen.Shrink.graph = Gen.Examples.ring3 ();
      taus = Gen.Examples.ring3_taus;
    }
  in
  let r = Check.Shrink.minimize ~fails:(fun _ -> false) c in
  Alcotest.(check bool) "nothing to shrink" false r.Check.Shrink.still_failing;
  Alcotest.(check int) "no steps" 0 r.Check.Shrink.steps

let validator_accepts_real_allocation () =
  let app = Models.example_app () and arch = Models.example_platform () in
  let r = Core.Flow.allocate_with_retry app arch in
  match r.Core.Flow.allocation with
  | None -> Alcotest.fail "expected an allocation"
  | Some alloc -> (
      match Check.Validator.validate arch alloc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "validator rejected a real allocation: %s" e)

let validator_rejects_corruption () =
  let app = Models.example_app () and arch = Models.example_platform () in
  let r = Core.Flow.allocate_with_retry app arch in
  match r.Core.Flow.allocation with
  | None -> Alcotest.fail "expected an allocation"
  | Some alloc ->
      let reject what bad =
        match Check.Validator.validate arch bad with
        | Ok () -> Alcotest.failf "validator accepted %s" what
        | Error _ -> ()
      in
      (* Slice beyond the TDMA wheel on the first tile that hosts work. *)
      let slices = Array.copy alloc.Core.Strategy.slices in
      let t = ref 0 in
      Array.iteri (fun i s -> if s > 0 && !t = 0 then t := i) slices;
      slices.(!t) <- 1_000_000;
      reject "an oversized slice" { alloc with Core.Strategy.slices };
      (* Claimed throughput below the application's constraint. *)
      reject "a throughput shortfall"
        { alloc with Core.Strategy.throughput = Rat.zero }

let flow_invariance_on_example () =
  let app = Models.example_app () and arch = Models.example_platform () in
  match Check.Validator.flow_invariance ~max_states:50_000 app arch with
  | Oracle.Fail msg -> Alcotest.failf "flow invariance: %s" msg
  | Oracle.Pass | Oracle.Skip _ -> ()

let suite =
  [
    Alcotest.test_case "oracles pass on examples" `Quick
      oracles_pass_on_examples;
    Alcotest.test_case "clean fuzz run" `Quick clean_fuzz_run;
    Alcotest.test_case "mutant caught and shrunk" `Quick
      mutant_is_caught_and_shrunk;
    Alcotest.test_case "shrinker reaches minimum" `Quick
      shrinker_reaches_minimum;
    Alcotest.test_case "shrinker rejects passing case" `Quick
      shrinker_rejects_passing_case;
    Alcotest.test_case "validator accepts real allocation" `Quick
      validator_accepts_real_allocation;
    Alcotest.test_case "validator rejects corruption" `Quick
      validator_rejects_corruption;
    Alcotest.test_case "flow invariance on example" `Quick
      flow_invariance_on_example;
  ]
