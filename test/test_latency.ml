(* Latency metrics (lib/analysis/latency.mli): start-up latency and
   iteration makespan on the shared example graphs, plus the documented
   edge cases (zero-time outputs, starved outputs, state-space cap). *)

module Latency = Analysis.Latency
module Sdfg = Sdf.Sdfg

let example_first_output () =
  let g = Gen.Examples.example_graph () in
  (* a1 starts at 0 and takes 1; a3 needs two a2 firings, so it starts at
     3 and completes at 5. *)
  Alcotest.(check int) "a3 completes at 5" 5
    (Latency.first_output_completion g Gen.Examples.example_taus ~output:2);
  Alcotest.(check int) "a1 completes at 1" 1
    (Latency.first_output_completion g Gen.Examples.example_taus ~output:0)

let zero_time_output () =
  (* A zero-time output completes the moment it starts: a3 now starts and
     completes at 3. *)
  let g = Gen.Examples.example_graph () in
  Alcotest.(check int) "tau(a3)=0" 3
    (Latency.first_output_completion g [| 1; 1; 0 |] ~output:2)

let ring_first_output () =
  (* The single ring token sits on x -> y, so y fires first: y completes
     at 2, z at 5, and only then x at 6. *)
  let r = Gen.Examples.ring3 () in
  Alcotest.(check int) "z completes at 5" 5
    (Latency.first_output_completion r Gen.Examples.ring3_taus ~output:2);
  Alcotest.(check int) "x completes at 6" 6
    (Latency.first_output_completion r Gen.Examples.ring3_taus ~output:0)

let makespan_by_hand () =
  let g = Gen.Examples.example_graph () in
  Alcotest.(check int) "example makespan" 5
    (Latency.iteration_makespan g Gen.Examples.example_taus);
  let r = Gen.Examples.ring3 () in
  Alcotest.(check int) "ring makespan" 6
    (Latency.iteration_makespan r Gen.Examples.ring3_taus)

let makespan_bounds_first_output () =
  (* The makespan covers every actor's first iteration, so it dominates
     any single actor's start-up latency. *)
  let g = Gen.Examples.prodcons () in
  let taus = Gen.Examples.prodcons_taus in
  let ms = Latency.iteration_makespan g taus in
  for a = 0 to Sdfg.num_actors g - 1 do
    let f = Latency.first_output_completion g taus ~output:a in
    if f > ms then
      Alcotest.failf "actor %d: first output %d > makespan %d" a f ms
  done

let deadlock_propagates () =
  (* A tokenless ring cannot fire at all; the latency query surfaces the
     analysis outcome instead of inventing a number. *)
  let g =
    Sdfg.of_lists ~actors:[ "x"; "y" ]
      ~channels:[ ("x", "y", 1, 1, 0); ("y", "x", 1, 1, 0) ]
  in
  Alcotest.check_raises "deadlock" Analysis.Selftimed.Deadlocked (fun () ->
      ignore (Latency.first_output_completion g [| 1; 1 |] ~output:1))

let state_cap_propagates () =
  let g = Gen.Examples.example_graph () in
  match
    Latency.first_output_completion ~max_states:1 g
      Gen.Examples.example_taus ~output:2
  with
  | _ -> Alcotest.fail "expected State_space_exceeded"
  | exception Analysis.Selftimed.State_space_exceeded _ -> ()

let suite =
  [
    Alcotest.test_case "example first output" `Quick example_first_output;
    Alcotest.test_case "zero-time output" `Quick zero_time_output;
    Alcotest.test_case "ring first output" `Quick ring_first_output;
    Alcotest.test_case "makespan by hand" `Quick makespan_by_hand;
    Alcotest.test_case "makespan bounds first output" `Quick
      makespan_bounds_first_output;
    Alcotest.test_case "deadlock propagates" `Quick deadlock_propagates;
    Alcotest.test_case "state cap propagates" `Quick state_cap_propagates;
  ]
