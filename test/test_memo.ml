(* The throughput memoization layer: the generic table, the structural
   cache keys of the two analyses (no collisions for distinct structures,
   deliberate sharing for isomorphic ones), negative-outcome replay, and
   the hit/miss telemetry. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed
module Memo = Analysis.Memo
open Helpers

(* Each test starts cold and leaves the process-global state as found:
   caches cleared, memoization on, telemetry off. *)
let fresh f =
  Memo.clear_all ();
  Memo.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Memo.clear_all ();
      Memo.set_enabled true;
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_find_or_compute () =
  fresh (fun () ->
      let t = Memo.create ~name:"t0" () in
      let computes = ref 0 in
      let get k =
        Memo.find_or_compute t ~key:k (fun () ->
            incr computes;
            String.length k)
      in
      Alcotest.(check int) "computes" 3 (get "abc");
      Alcotest.(check int) "cached" 3 (get "abc");
      Alcotest.(check int) "distinct key computes" 5 (get "abcde");
      Alcotest.(check int) "computed twice overall" 2 !computes;
      Memo.clear t;
      Alcotest.(check int) "recomputes after clear" 3 (get "abc");
      Alcotest.(check int) "three computations total" 3 !computes)

let test_disabled_bypasses () =
  fresh (fun () ->
      let t = Memo.create ~name:"t1" () in
      let computes = ref 0 in
      let get () =
        Memo.find_or_compute t ~key:"k" (fun () ->
            incr computes;
            ())
      in
      Memo.set_enabled false;
      get ();
      get ();
      Alcotest.(check int) "disabled: every call computes" 2 !computes;
      Memo.set_enabled true;
      get ();
      get ();
      Alcotest.(check int) "re-enabled: one more compute, then hits" 3 !computes)

let test_eviction () =
  fresh (fun () ->
      let t = Memo.create ~name:"t2" ~max_entries:4 () in
      let computes = ref 0 in
      let get k =
        Memo.find_or_compute t ~key:(string_of_int k) (fun () ->
            incr computes;
            k)
      in
      for k = 0 to 3 do
        ignore (get k)
      done;
      Alcotest.(check int) "table filled" 4 !computes;
      (* The fifth insert crosses the cap: the oldest entries are evicted,
         so the earliest key recomputes. *)
      ignore (get 4);
      ignore (get 0);
      Alcotest.(check int) "evicted entries recompute" 6 !computes)

(* Eviction is recency-aware: touching a key refreshes it, so the hot key
   survives the eviction that claims the cold one inserted after it. *)
let test_lru_retention () =
  fresh (fun () ->
      let t = Memo.create ~name:"t_lru" ~max_entries:4 () in
      let computes = ref 0 in
      let get k =
        Memo.find_or_compute t ~key:k (fun () ->
            incr computes;
            k)
      in
      ignore (get "hot");
      ignore (get "cold");
      ignore (get "b");
      ignore (get "hot");
      (* refresh: "cold" is now the oldest *)
      ignore (get "c");
      Alcotest.(check int) "four inserts" 4 !computes;
      ignore (get "d");
      (* crossed the cap: "cold" went, "hot" stayed *)
      ignore (get "hot");
      Alcotest.(check int) "hot key survived" 5 !computes;
      ignore (get "cold");
      Alcotest.(check int) "cold key recomputes" 6 !computes)

(* The daemon regression: a long stream of distinct keys (one per unique
   request) must not grow the table without bound, and the evictions are
   accounted. *)
let test_bounded_stream () =
  fresh (fun () ->
      Obs.reset ();
      Obs.set_enabled true;
      let t = Memo.create ~name:"t_stream" ~max_entries:256 () in
      for k = 0 to 9_999 do
        ignore (Memo.find_or_compute t ~key:(string_of_int k) (fun () -> k))
      done;
      Alcotest.(check bool) "table stayed bounded" true
        (Memo.length t <= Memo.capacity t);
      let evicted = Obs.Counter.value "cache.t_stream.evictions" in
      Alcotest.(check bool) "evictions accounted" true (evicted > 0);
      Alcotest.(check int) "nothing lost" 10_000 (Memo.length t + evicted);
      Alcotest.(check int) "aggregate counter agrees" evicted
        (Obs.Counter.value "cache.evictions"))

let test_set_capacity () =
  fresh (fun () ->
      let t = Memo.create ~name:"t_cap" ~max_entries:64 () in
      for k = 0 to 63 do
        ignore (Memo.find_or_compute t ~key:(string_of_int k) (fun () -> k))
      done;
      Alcotest.(check int) "filled to 64" 64 (Memo.length t);
      (* Shrinking evicts immediately, keeping the most recent keys. *)
      Memo.set_capacity t 8;
      Alcotest.(check int) "capacity updated" 8 (Memo.capacity t);
      Alcotest.(check int) "shrunk to the new cap" 8 (Memo.length t);
      let computes = ref 0 in
      ignore
        (Memo.find_or_compute t ~key:"63" (fun () ->
             incr computes;
             63));
      Alcotest.(check int) "a recent key survived the shrink" 0 !computes;
      (* set_capacity_all reaches every registered table — the daemon's
         --cache-capacity flag — and clamps to at least one entry. *)
      Memo.set_capacity_all 0;
      Alcotest.(check int) "set_capacity_all reaches and clamps" 1
        (Memo.capacity t);
      Alcotest.(check int) "evicted down to one entry" 1 (Memo.length t))

(* Same structure, different names: one cache entry by design. *)
let test_isomorphic_graphs_share () =
  fresh (fun () ->
      let g1 = ring3 () in
      let g2 =
        Sdfg.of_lists ~actors:[ "alpha"; "beta"; "gamma" ]
          ~channels:
            [ ("alpha", "beta", 1, 1, 1); ("beta", "gamma", 1, 1, 0);
              ("gamma", "alpha", 1, 1, 0) ]
      in
      Alcotest.(check string)
        "renamed graph has the same key"
        (Selftimed.cache_key g1 [| 2; 3; 1 |])
        (Selftimed.cache_key g2 [| 2; 3; 1 |]))

(* Structurally distinct graphs must never collide, however similar: the
   key is an injective encoding, not a hash. *)
let test_distinct_structures_distinct_keys () =
  fresh (fun () ->
      let base = ring3 () in
      let tweaked_tokens =
        Sdfg.of_lists ~actors:[ "x"; "y"; "z" ]
          ~channels:
            [ ("x", "y", 1, 1, 2); ("y", "z", 1, 1, 0); ("z", "x", 1, 1, 0) ]
      in
      let tweaked_rates =
        Sdfg.of_lists ~actors:[ "x"; "y"; "z" ]
          ~channels:
            [ ("x", "y", 2, 2, 1); ("y", "z", 1, 1, 0); ("z", "x", 1, 1, 0) ]
      in
      let taus = [| 1; 1; 1 |] in
      let k g = Selftimed.cache_key g taus in
      Alcotest.(check bool) "token count distinguishes" false
        (k base = k tweaked_tokens);
      Alcotest.(check bool) "rates distinguish" false (k base = k tweaked_rates);
      Alcotest.(check bool) "exec times distinguish" false
        (Selftimed.cache_key base taus = Selftimed.cache_key base [| 1; 2; 1 |]);
      Alcotest.(check bool) "max_states distinguishes" false
        (Selftimed.cache_key ~max_states:10 base taus
        = Selftimed.cache_key ~max_states:20 base taus);
      (* And the cached results stay separate: the two-token ring turns
         over twice as fast. *)
      let thr g = (Selftimed.analyze g taus).Selftimed.throughput.(0) in
      check_rat "base ring" (r 1 3) (thr base);
      check_rat "two-token ring" (r 2 3) (thr tweaked_tokens);
      check_rat "base ring again (cached)" (r 1 3) (thr base))

let test_hit_miss_counters () =
  fresh (fun () ->
      Obs.reset ();
      Obs.set_enabled true;
      let g = prodcons () in
      let taus = [| 2; 3 |] in
      ignore (Selftimed.analyze g taus);
      Alcotest.(check int) "first run misses" 0 (Obs.Counter.value "cache.hits");
      let misses0 = Obs.Counter.value "cache.misses" in
      Alcotest.(check bool) "miss recorded" true (misses0 >= 1);
      let runs0 = Obs.Counter.value "selftimed.runs" in
      ignore (Selftimed.analyze g taus);
      ignore (Selftimed.analyze g taus);
      Alcotest.(check int) "two hits recorded" 2 (Obs.Counter.value "cache.hits");
      Alcotest.(check int) "per-cache hits" 2
        (Obs.Counter.value "cache.selftimed.hits");
      Alcotest.(check int) "no new misses" misses0
        (Obs.Counter.value "cache.misses");
      Alcotest.(check int) "the analysis itself did not rerun" runs0
        (Obs.Counter.value "selftimed.runs"))

let test_negative_outcome_replay () =
  fresh (fun () ->
      Obs.reset ();
      Obs.set_enabled true;
      (* A tokenless ring deadlocks immediately. *)
      let dead =
        Sdfg.of_lists ~actors:[ "x"; "y" ]
          ~channels:[ ("x", "y", 1, 1, 0); ("y", "x", 1, 1, 0) ]
      in
      let taus = [| 1; 1 |] in
      let raises () =
        match Selftimed.analyze dead taus with
        | _ -> false
        | exception Selftimed.Deadlocked -> true
      in
      Alcotest.(check bool) "first run deadlocks" true (raises ());
      Alcotest.(check bool) "replayed from cache" true (raises ());
      (* The replay is a lookup: the deadlock counter moved only once. *)
      Alcotest.(check int) "deadlock explored once" 1
        (Obs.Counter.value "selftimed.deadlocks");
      Alcotest.(check int) "second raise was a hit" 1
        (Obs.Counter.value "cache.hits");
      (* A state-space cap abort is replayed the same way. *)
      let g = prodcons () in
      let exceeded () =
        match Selftimed.analyze ~max_states:1 g [| 2; 3 |] with
        | _ -> false
        | exception Selftimed.State_space_exceeded 1 -> true
        | exception _ -> false
      in
      Alcotest.(check bool) "cap abort" true (exceeded ());
      Alcotest.(check bool) "cap abort replayed" true (exceeded ());
      Alcotest.(check int) "cap abort explored once" 1
        (Obs.Counter.value "selftimed.cap_aborts"))

let test_observer_bypasses_cache () =
  fresh (fun () ->
      Obs.reset ();
      Obs.set_enabled true;
      let g = ring3 () in
      let taus = [| 1; 1; 1 |] in
      ignore (Selftimed.analyze g taus);
      let firings = ref 0 in
      ignore (Selftimed.analyze ~observer:(fun _ _ -> incr firings) g taus);
      Alcotest.(check bool) "observer saw the firings" true (!firings > 0);
      Alcotest.(check int) "observer run bypassed the cache" 0
        (Obs.Counter.value "cache.hits"))

(* The constrained key separates configurations that the graph alone does
   not: same binding-aware graph, different schedules or offsets. *)
let test_constrained_key_configuration () =
  fresh (fun () ->
      let app = Appmodel.Models.example_app () in
      let arch = Appmodel.Models.example_platform () in
      let ba =
        Core.Bind_aware.build ~app ~arch ~binding:[| 0; 0; 1 |]
          ~slices:[| 5; 5 |] ()
      in
      let s12 =
        [|
          Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
          Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
        |]
      in
      let s21 =
        [|
          Some (Core.Schedule.make ~prefix:[] ~period:[ 1; 0 ]);
          Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
        |]
      in
      let k = Core.Constrained.cache_key ba in
      Alcotest.(check bool) "schedule order distinguishes" false
        (k ~schedules:s12 = k ~schedules:s21);
      Alcotest.(check bool) "offsets distinguish" false
        (Core.Constrained.cache_key ~offsets:[| 0; 0 |] ba ~schedules:s12
        = Core.Constrained.cache_key ~offsets:[| 0; 3 |] ba ~schedules:s12);
      Alcotest.(check bool) "same configuration agrees" true
        (k ~schedules:s12 = k ~schedules:s12);
      (* And the Fig. 5(c) number still comes out after caching. *)
      let r1 = Core.Constrained.analyze ba ~schedules:s12 in
      let r2 = Core.Constrained.analyze ba ~schedules:s12 in
      check_rat "1/30 measured" (r 1 30) r1.Core.Constrained.throughput;
      check_rat "1/30 from cache" (r 1 30) r2.Core.Constrained.throughput)

let suite =
  [
    Alcotest.test_case "find_or_compute" `Quick test_find_or_compute;
    Alcotest.test_case "disabled bypasses" `Quick test_disabled_bypasses;
    Alcotest.test_case "eviction" `Quick test_eviction;
    Alcotest.test_case "lru retention" `Quick test_lru_retention;
    Alcotest.test_case "bounded under a key stream" `Quick test_bounded_stream;
    Alcotest.test_case "set_capacity" `Quick test_set_capacity;
    Alcotest.test_case "isomorphic graphs share" `Quick
      test_isomorphic_graphs_share;
    Alcotest.test_case "distinct structures, distinct keys" `Quick
      test_distinct_structures_distinct_keys;
    Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
    Alcotest.test_case "negative outcomes replay" `Quick
      test_negative_outcome_replay;
    Alcotest.test_case "observer bypasses cache" `Quick
      test_observer_bypasses_cache;
    Alcotest.test_case "constrained key covers configuration" `Quick
      test_constrained_key_configuration;
  ]
