(* The packed state-space engine: unit tests for the Pack / Stateset /
   Rings primitives, plus the behavioral-identity properties the port
   rests on — [Selftimed.analyze] against [Selftimed.analyze_reference]
   and [Constrained.analyze] against [Constrained.analyze_reference] on
   generated workloads and every corpus graph. *)

module Sdfg = Sdf.Sdfg
module Pack = Engine.Pack
module Stateset = Engine.Stateset
module Rings = Engine.Rings
module Case = Check.Case
open Helpers

(* --- Pack ------------------------------------------------------------ *)

let pack_of_ints f xs =
  let p = Pack.create ~initial:8 () in
  List.iter (f p) xs;
  (Pack.contents p, Pack.hash p)

let test_pack_uint_injective () =
  (* Distinct field sequences of equal arity encode to distinct bytes. *)
  let seqs =
    [
      [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 127; 128 ]; [ 128; 127 ];
      [ 16384; 3 ]; [ 3; 16384 ]; [ 300; 300 ]; [ 0; 1_000_000 ];
    ]
  in
  let encs = List.map (pack_of_ints Pack.add_uint) seqs in
  let rec pairs = function
    | [] -> ()
    | (s, _) :: rest ->
        List.iter
          (fun (s', _) ->
            if s = s' then Alcotest.fail "distinct uint sequences collide")
          rest;
        pairs rest
  in
  pairs encs

let test_pack_hash_matches_contents () =
  (* Equal byte contents always carry equal rolling hashes, including
     across a reset that reuses the grown buffer. *)
  let p = Pack.create ~initial:2 () in
  List.iter (Pack.add_uint p) [ 5; 500; 50_000; 5_000_000 ];
  let c1 = Pack.contents p and h1 = Pack.hash p in
  Pack.reset p;
  List.iter (Pack.add_uint p) [ 5; 500; 50_000; 5_000_000 ];
  Alcotest.(check string) "contents stable across reset" c1 (Pack.contents p);
  Alcotest.(check int) "hash stable across reset" h1 (Pack.hash p);
  Alcotest.(check bool) "hash non-negative" true (h1 >= 0)

let test_pack_zigzag () =
  (* add_int must separate negatives from positives and keep small
     magnitudes short. *)
  let enc v = fst (pack_of_ints Pack.add_int [ v ]) in
  Alcotest.(check bool) "-1 <> 1" true (enc (-1) <> enc 1);
  Alcotest.(check bool) "-1 <> 0" true (enc (-1) <> enc 0);
  Alcotest.(check bool) "min_int encodes" true
    (String.length (enc min_int) <= 10);
  Alcotest.(check int) "small magnitude is one byte" 1
    (String.length (enc (-3)))

let test_pack_fixed_width () =
  Alcotest.(check int) "width_for 0" 1 (Pack.width_for 0);
  Alcotest.(check int) "width_for 255" 1 (Pack.width_for 255);
  Alcotest.(check int) "width_for 256" 2 (Pack.width_for 256);
  Alcotest.(check int) "width_for 65535" 2 (Pack.width_for 65535);
  Alcotest.(check int) "width_for 65536" 3 (Pack.width_for 65536);
  let p = Pack.create () in
  Pack.add_fixed p ~width:3 0x01_02_03;
  Alcotest.(check int) "3 bytes written" 3 (Pack.len p);
  Alcotest.(check string) "little-endian layout" "\x03\x02\x01"
    (Pack.contents p)

(* --- Stateset -------------------------------------------------------- *)

let test_stateset_find_or_add () =
  let set = Stateset.create ~initial_slots:4 () in
  let p = Pack.create () in
  (* First visit of 1000 distinct states: all misses, payload echoed. *)
  for i = 0 to 999 do
    Pack.reset p;
    Pack.add_uint p i;
    Pack.add_uint p (i * 7);
    let seen, q0, q1 = Stateset.find_or_add set p ~p0:(i * 2) ~p1:(i * 3) in
    if seen then Alcotest.failf "state %d reported seen on first visit" i;
    Alcotest.(check int) "p0 echoed" (i * 2) q0;
    Alcotest.(check int) "p1 echoed" (i * 3) q1
  done;
  Alcotest.(check int) "all inserted" 1000 (Stateset.length set);
  (* Revisits return the payload recorded at insertion, not the new one. *)
  for i = 0 to 999 do
    Pack.reset p;
    Pack.add_uint p i;
    Pack.add_uint p (i * 7);
    let seen, q0, q1 = Stateset.find_or_add set p ~p0:(-1) ~p1:(-1) in
    if not seen then Alcotest.failf "state %d lost after resize" i;
    Alcotest.(check int) "original p0" (i * 2) q0;
    Alcotest.(check int) "original p1" (i * 3) q1
  done;
  Alcotest.(check int) "revisits add nothing" 1000 (Stateset.length set);
  let st = Stateset.stats set in
  Alcotest.(check int) "stats count" 1000 st.Stateset.states;
  Alcotest.(check bool) "table kept below 7/10 load" true
    (st.Stateset.states * 10 <= st.Stateset.slots * 7);
  Alcotest.(check bool) "arena holds every packed byte" true
    (st.Stateset.arena_bytes > 0)

let test_stateset_prefix_states_distinct () =
  (* "1 ring entry of value 2" vs "2 entries of 1 token" style prefixes:
     states of different lengths never alias. *)
  let set = Stateset.create ~initial_slots:4 () in
  let p = Pack.create () in
  Pack.add_uint p 1;
  Pack.add_uint p 2;
  let seen, _, _ = Stateset.find_or_add set p ~p0:0 ~p1:0 in
  Alcotest.(check bool) "first" false seen;
  Pack.reset p;
  Pack.add_uint p 1;
  Pack.add_uint p 2;
  Pack.add_uint p 0;
  let seen, _, _ = Stateset.find_or_add set p ~p0:0 ~p1:0 in
  Alcotest.(check bool) "longer state is distinct" false seen

(* --- Rings ----------------------------------------------------------- *)

let test_rings_fifo_and_min () =
  let r = Rings.create 3 in
  Alcotest.(check int) "empty min" max_int (Rings.min_head r);
  Rings.push r 0 10;
  Rings.push r 0 10;
  Rings.push r 0 12;
  Rings.push r 2 8;
  Rings.push r 2 15;
  Alcotest.(check int) "min tracks pushes" 8 (Rings.min_head r);
  Alcotest.(check int) "total" 5 (Rings.total r);
  Alcotest.(check int) "per-actor length" 3 (Rings.length r 0);
  let order = ref [] in
  Rings.iter r 0 (fun c -> order := c :: !order);
  Alcotest.(check (list int)) "FIFO iteration" [ 10; 10; 12 ]
    (List.rev !order);
  let popped = ref [] in
  Rings.pop_due r ~now:8 (fun a -> popped := a :: !popped);
  Alcotest.(check (list int)) "only due completions pop" [ 2 ] !popped;
  Alcotest.(check int) "min recomputed after pop" 10 (Rings.min_head r);
  popped := [];
  Rings.pop_due r ~now:10 (fun a -> popped := a :: !popped);
  Alcotest.(check (list int)) "both equal heads pop" [ 0; 0 ] !popped;
  Alcotest.(check int) "remaining min" 12 (Rings.min_head r)

let test_rings_growth () =
  (* Push far past the initial ring capacity with interleaved pops; the
     unrolled copies must preserve FIFO order. *)
  let r = Rings.create 1 in
  let next_pop = ref 0 in
  for c = 0 to 499 do
    Rings.push r 0 c;
    if c mod 3 = 2 then
      Rings.pop_due r ~now:!next_pop (fun _ -> incr next_pop)
  done;
  let rest = ref [] in
  Rings.pop_due r ~now:max_int (fun _ -> ());
  Rings.iter r 0 (fun c -> rest := c :: !rest);
  let expect = List.init (500 - !next_pop) (fun i -> !next_pop + i) in
  Alcotest.(check (list int)) "order survives growth" expect (List.rev !rest)

let test_rings_pop_front_and_snapshot () =
  let r = Rings.create 2 in
  Rings.push r 0 10;
  Rings.push r 0 12;
  Rings.push r 1 11;
  let buf = Array.make 16 (-1) in
  let pos = Rings.snapshot_into r ~now:9 buf 1 in
  Alcotest.(check int) "words written" 6 pos;
  Alcotest.(check (list int)) "len-prefixed relative times"
    [ 2; 1; 3; 1; 2 ]
    (Array.to_list (Array.sub buf 1 5));
  Alcotest.(check int) "pop_front is FIFO" 10 (Rings.pop_front r 0);
  Alcotest.(check int) "pop_front advances" 12 (Rings.pop_front r 0);
  Alcotest.(check int) "per-actor drained" 0 (Rings.length r 0);
  Alcotest.(check int) "outstanding tracked" 1 (Rings.total r)

(* --- Eventq ----------------------------------------------------------- *)

let test_eventq_heap_order () =
  let q = Engine.Eventq.create () in
  Alcotest.(check int) "empty min" max_int (Engine.Eventq.min_time q);
  (* Push a deliberately adversarial order with duplicates, far past the
     initial capacity. *)
  let times = List.init 300 (fun i -> (i * 7919) mod 97) in
  List.iteri (fun i t -> Engine.Eventq.push q t i) times;
  Alcotest.(check int) "length" 300 (Engine.Eventq.length q);
  let last = ref (-1) in
  let popped = ref [] in
  while not (Engine.Eventq.is_empty q) do
    let t = Engine.Eventq.min_time q in
    let a = Engine.Eventq.pop_min q in
    if t < !last then Alcotest.fail "pop times went backwards";
    last := t;
    popped := (t, a) :: !popped
  done;
  (* Every (time, actor) pair must come out exactly once. *)
  let expect = List.sort compare (List.mapi (fun i t -> (t, i)) times) in
  Alcotest.(check (list (pair int int)))
    "multiset preserved" expect
    (List.sort compare !popped)

(* --- Sharded_stateset -------------------------------------------------- *)

let test_sharded_routing_and_membership () =
  let module Ss = Engine.Sharded_stateset in
  let ss = Ss.create ~shards:4 () in
  let route words =
    let h = ref Ss.word_hash_seed in
    List.iter (fun w -> h := Ss.word_hash_mix !h w) words;
    Ss.owner_of_hash ss !h
  in
  (* Routing is a function of the words alone, and lands in range. *)
  for i = 0 to 199 do
    let words = [ i; i * 31; 7 ] in
    let o = route words in
    Alcotest.(check bool) "owner in range" true (o >= 0 && o < 4);
    Alcotest.(check int) "routing deterministic" o (route words)
  done;
  (* Per-shard membership behaves like the flat stateset. *)
  let p = Pack.create () in
  for i = 0 to 99 do
    let words = [ i; i lxor 255 ] in
    let o = route words in
    Pack.reset p;
    List.iter (Pack.add_uint p) words;
    let seen, _, _ = Ss.find_or_add ss ~shard:o p ~p0:i ~p1:(2 * i) in
    Alcotest.(check bool) "first insert is a miss" false seen
  done;
  for i = 0 to 99 do
    let words = [ i; i lxor 255 ] in
    let o = route words in
    Pack.reset p;
    List.iter (Pack.add_uint p) words;
    let seen, q0, q1 = Ss.find_or_add ss ~shard:o p ~p0:(-1) ~p1:(-1) in
    Alcotest.(check bool) "revisit confirmed by owner" true seen;
    Alcotest.(check int) "payload p0 preserved" i q0;
    Alcotest.(check int) "payload p1 preserved" (2 * i) q1
  done;
  for i = 0 to 3 do
    Ss.publish ss i
  done;
  Alcotest.(check int) "published totals" 100 (Ss.published_states ss);
  let agg = Ss.stats ss in
  Alcotest.(check int) "aggregate states" 100 agg.Stateset.states

(* --- engine vs reference: self-timed --------------------------------- *)

let case_of_graph name g taus = { Case.name; graph = g; taus }

let assert_oracle name outcome =
  match outcome with
  | Check.Oracle.Pass | Check.Oracle.Skip _ -> ()
  | Check.Oracle.Fail msg -> Alcotest.failf "%s: %s" name msg

let rng0 = Gen.Rng.create ~seed:0

let test_examples_agree () =
  let deadlocked =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
  in
  List.iter
    (fun (name, g, taus) ->
      assert_oracle name
        (Check.Differential.engine_vs_reference ~max_states:100_000 ~rng:rng0
           (case_of_graph name g taus)))
    [
      ("example", example_graph (), Gen.Examples.example_taus);
      ("prodcons", prodcons (), Gen.Examples.prodcons_taus);
      ("ring3", ring3 (), Gen.Examples.ring3_taus);
      ("deadlock", deadlocked, [| 1; 1 |]);
    ];
  (* Cap aborts must agree too (post-insert [>] vs pre-insert [>=]). *)
  for cap = 1 to 6 do
    assert_oracle
      (Printf.sprintf "cap-%d" cap)
      (Check.Differential.engine_vs_reference ~max_states:cap ~rng:rng0
         (case_of_graph "capped" (ring3 ()) [| 2; 3; 4 |]))
  done

let test_corpus_agrees () =
  let cases = Check.Corpus.load_dir "corpus" in
  if List.length cases < 5 then Alcotest.fail "corpus missing";
  List.iter
    (fun (c : Case.t) ->
      assert_oracle c.Case.name
        (Check.Differential.engine_vs_reference ~max_states:100_000 ~rng:rng0
           c))
    cases

let test_observer_sequences_identical () =
  (* The engines must walk the fixpoint in the same order, not merely end
     at the same answer: the observer callback streams must be equal. *)
  let trace analyze =
    let log = ref [] in
    let observer fired time = log := (fired, time) :: !log in
    ignore (analyze ~observer (example_graph ()) [| 1; 2; 3 |]);
    List.rev !log
  in
  let engine =
    trace (fun ~observer g taus -> Analysis.Selftimed.analyze ~observer g taus)
  in
  let reference =
    trace (fun ~observer g taus ->
        Analysis.Selftimed.analyze_reference ~observer g taus)
  in
  Alcotest.(check (list (pair int int)))
    "observer call sequences" reference engine

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let random_case seed =
  let rng = Gen.Rng.create ~seed in
  let app =
    Gen.Sdfgen.generate rng
      (Gen.Benchsets.set_profile 1)
      ~proc_types:Gen.Benchsets.proc_types
      ~name:(Printf.sprintf "eng%d" seed)
  in
  let g = app.Appmodel.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a ->
        Appmodel.Appgraph.max_exec_time app a)
  in
  (app, case_of_graph app.Appmodel.Appgraph.app_name g taus)

let prop_engine_equals_reference =
  qcheck ~count:120 "analyze = analyze_reference on generated graphs"
    gen_seed (fun seed ->
      let _, case = random_case seed in
      match
        Check.Differential.engine_vs_reference ~max_states:20_000
          ~rng:(Gen.Rng.create ~seed) case
      with
      | Check.Oracle.Pass | Check.Oracle.Skip _ -> true
      | Check.Oracle.Fail msg -> QCheck2.Test.fail_report msg)

(* --- parallel sweep vs sequential engine ------------------------------ *)

module Selftimed = Analysis.Selftimed

let no_leaked_domains () =
  Alcotest.(check int)
    "no leaked sweep domains" 0
    (Selftimed.live_sweep_domains ())

let with_memo_off f =
  let was = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was)
    (fun () ->
      Analysis.Memo.set_enabled false;
      f ())

let result_eq (a : Selftimed.result) (b : Selftimed.result) =
  a.Selftimed.period = b.Selftimed.period
  && a.Selftimed.iterations_per_period = b.Selftimed.iterations_per_period
  && a.Selftimed.transient = b.Selftimed.transient
  && a.Selftimed.states = b.Selftimed.states
  && Array.for_all2 Sdf.Rat.equal a.Selftimed.throughput b.Selftimed.throughput

(* [analyze_parallel ~domains:k] must be result-identical to [analyze]
   for every k, including the deadlock and cap outcomes. k = 1 is the
   sequential path itself; 2 and 4 run one- and three-shard sweeps. *)
let prop_parallel_equals_sequential =
  qcheck ~count:60 "analyze_parallel ~domains:k = analyze (k in 1,2,4)"
    gen_seed (fun seed ->
      let _, case = random_case seed in
      let ok =
        with_memo_off (fun () ->
            let outcome k =
              match
                Selftimed.analyze_parallel ~domains:k ~max_states:10_000
                  case.Case.graph case.Case.taus
              with
              | r -> `Res r
              | exception Selftimed.Deadlocked -> `Dead
              | exception Selftimed.State_space_exceeded _ -> `Exceeded
            in
            let seq = outcome 1 in
            List.for_all
              (fun k ->
                match (seq, outcome k) with
                | `Res a, `Res b -> result_eq a b
                | `Dead, `Dead | `Exceeded, `Exceeded -> true
                | _ -> false)
              [ 2; 4 ])
      in
      if Selftimed.live_sweep_domains () <> 0 then
        QCheck2.Test.fail_report "sweep leaked shard domains";
      ok || QCheck2.Test.fail_report "parallel sweep diverges from sequential")

(* A shared deterministic budget (state cap) tripping mid-sweep must
   yield the same outcome as the sequential engine — completed results
   identical, partials with the same reason and anytime numbers. *)
let prop_parallel_budget_partial =
  qcheck ~count:40 "parallel budget partials match sequential" gen_seed
    (fun seed ->
      let _, case = random_case seed in
      let cap = 1 + (seed mod 64) in
      let run f =
        match f () with
        | Ok r -> `Ok r
        | Error p -> `Partial p
        | exception Selftimed.Deadlocked -> `Dead
        | exception Selftimed.State_space_exceeded _ -> `Exceeded
      in
      let ok =
        with_memo_off (fun () ->
            let seq =
              run (fun () ->
                  Selftimed.analyze_budgeted ~max_states:10_000
                    ~budget:(Budget.make ~max_states:cap ())
                    case.Case.graph case.Case.taus)
            in
            let par =
              run (fun () ->
                  Selftimed.analyze_parallel_budgeted ~domains:4
                    ~max_states:10_000
                    ~budget:(Budget.make ~max_states:cap ())
                    case.Case.graph case.Case.taus)
            in
            match (seq, par) with
            | `Ok a, `Ok b -> result_eq a b
            | `Partial a, `Partial b ->
                a.Selftimed.reason = b.Selftimed.reason
                && a.Selftimed.explored = b.Selftimed.explored
                && a.Selftimed.time_reached = b.Selftimed.time_reached
                && a.Selftimed.firings = b.Selftimed.firings
                && a.Selftimed.provably_dead = b.Selftimed.provably_dead
                && a.Selftimed.dead_ruled_out = b.Selftimed.dead_ruled_out
            | `Dead, `Dead | `Exceeded, `Exceeded -> true
            | _ -> false)
      in
      if Selftimed.live_sweep_domains () <> 0 then
        QCheck2.Test.fail_report "sweep leaked shard domains";
      ok
      || QCheck2.Test.fail_report
           "budgeted parallel outcome diverges from sequential")

(* Cancellation mid-sweep: every shard domain is joined and the outcome
   is a sound [Cancelled] partial. *)
let test_parallel_cancel_no_leak () =
  with_memo_off (fun () ->
      let cancel = Budget.Cancel.create () in
      Budget.Cancel.trigger cancel;
      let g = ring3 () in
      match
        Selftimed.analyze_parallel_budgeted ~domains:4
          ~budget:(Budget.make ~cancel ())
          g [| 2; 3; 4 |]
      with
      | Ok _ -> Alcotest.fail "cancelled sweep reported a completed result"
      | Error p ->
          Alcotest.(check bool)
            "reason is cancelled" true
            (p.Selftimed.reason = Budget.Cancelled));
  no_leaked_domains ()

(* --- engine vs reference: constrained -------------------------------- *)

let prop_constrained_engine_equals_reference =
  qcheck ~count:30 "constrained analyze = analyze_reference" gen_seed
    (fun seed ->
      let app, _ = random_case seed in
      let arch = Gen.Benchsets.architecture 0 in
      match
        Check.Validator.constrained_engine_agreement ~max_states:20_000 app
          arch
      with
      | Check.Oracle.Pass | Check.Oracle.Skip _ -> true
      | Check.Oracle.Fail msg -> QCheck2.Test.fail_report msg)

let test_paper_example_constrained_agreement () =
  let app = Appmodel.Models.example_app () in
  let arch = Appmodel.Models.example_platform () in
  match
    Check.Validator.constrained_engine_agreement ~max_states:100_000 app arch
  with
  | Check.Oracle.Pass -> ()
  | Check.Oracle.Skip msg -> Alcotest.failf "paper example skipped: %s" msg
  | Check.Oracle.Fail msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "pack: uint injective" `Quick test_pack_uint_injective;
    Alcotest.test_case "pack: hash/contents stable" `Quick
      test_pack_hash_matches_contents;
    Alcotest.test_case "pack: zigzag ints" `Quick test_pack_zigzag;
    Alcotest.test_case "pack: fixed widths" `Quick test_pack_fixed_width;
    Alcotest.test_case "stateset: find_or_add and resize" `Quick
      test_stateset_find_or_add;
    Alcotest.test_case "stateset: length-distinct states" `Quick
      test_stateset_prefix_states_distinct;
    Alcotest.test_case "rings: FIFO, min, pop_due" `Quick
      test_rings_fifo_and_min;
    Alcotest.test_case "rings: growth preserves order" `Quick
      test_rings_growth;
    Alcotest.test_case "engine = reference on examples" `Quick
      test_examples_agree;
    Alcotest.test_case "engine = reference on the corpus" `Quick
      test_corpus_agrees;
    Alcotest.test_case "observer sequences identical" `Quick
      test_observer_sequences_identical;
    prop_engine_equals_reference;
    Alcotest.test_case "rings: pop_front and snapshot_into" `Quick
      test_rings_pop_front_and_snapshot;
    Alcotest.test_case "eventq: heap order" `Quick test_eventq_heap_order;
    Alcotest.test_case "sharded stateset: routing and membership" `Quick
      test_sharded_routing_and_membership;
    prop_parallel_equals_sequential;
    prop_parallel_budget_partial;
    Alcotest.test_case "parallel sweep: cancel leaks no domains" `Quick
      test_parallel_cancel_no_leak;
    prop_constrained_engine_equals_reference;
    Alcotest.test_case "paper example: constrained engines agree" `Quick
      test_paper_example_constrained_agreement;
  ]
