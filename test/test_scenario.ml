(* Scenario FSM dataflow (lib/scenario): FSM validation and text format,
   product-space worst-case throughput, and the regression that a
   single-mode zero-delay FSM is exactly the plain self-timed analysis. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Fsm = Scenario.Fsm
module Product = Scenario.Product
module Selftimed = Analysis.Selftimed
open Helpers

let selfloop () =
  Sdfg.of_lists ~actors:[ "a" ] ~channels:[ ("a", "a", 1, 1, 1) ]

let two_modes ~d_ab ~d_ba =
  (* One self-looped actor; mode A runs it in 2, mode B in 5. The only
     product cycle is A -> B -> A, whose duration is 2 + 5 + both delays
     (a delay pushes the token past the occurrence's completion). *)
  let g = selfloop () in
  Fsm.make ~name:"two" ~graph:g
    ~modes:
      [|
        { Fsm.m_name = "A"; rates = [| (1, 1) |]; taus = [| 2 |] };
        { Fsm.m_name = "B"; rates = [| (1, 1) |]; taus = [| 5 |] };
      |]
    ~transitions:
      [|
        { Fsm.t_src = 0; t_dst = 1; delay = d_ab };
        { Fsm.t_src = 1; t_dst = 0; delay = d_ba };
      |]
    ~initial:0

let test_two_mode_hand_computed () =
  let r = Product.analyze (two_modes ~d_ab:0 ~d_ba:3) in
  (* cycle weight 2 + (5 + 3), length 2 occurrences *)
  check_rat "worst rate" (Rat.make 2 10) r.Product.worst_rate;
  Alcotest.(check int) "product states" 2 r.Product.product_states;
  Alcotest.(check int) "product edges" 2 r.Product.product_edges

let test_delay_matters () =
  (* Dropping the delays must change the verdict — the property the
     scenario mutant self-check relies on. *)
  let with_d = Product.analyze (two_modes ~d_ab:0 ~d_ba:3) in
  let without = Product.analyze (two_modes ~d_ab:0 ~d_ba:0) in
  check_rat "no delay" (Rat.make 2 7) without.Product.worst_rate;
  Alcotest.(check bool) "delay slows the worst case" true
    (Rat.compare with_d.Product.worst_rate without.Product.worst_rate < 0)

let test_deadlocking_mode () =
  (* Mode B needs 2 tokens per firing but the loop holds only 1. *)
  let g = selfloop () in
  let fsm =
    Fsm.make ~name:"dead" ~graph:g
      ~modes:
        [|
          { Fsm.m_name = "A"; rates = [| (1, 1) |]; taus = [| 1 |] };
          { Fsm.m_name = "B"; rates = [| (2, 2) |]; taus = [| 1 |] };
        |]
      ~transitions:
        [|
          { Fsm.t_src = 0; t_dst = 1; delay = 0 };
          { Fsm.t_src = 1; t_dst = 0; delay = 0 };
        |]
      ~initial:0
  in
  Alcotest.check_raises "deadlocks" Product.Deadlocked (fun () ->
      ignore (Product.analyze fsm))

let test_state_cap () =
  Alcotest.check_raises "state cap" (Product.State_space_exceeded 1)
    (fun () -> ignore (Product.analyze ~max_states:1 (two_modes ~d_ab:0 ~d_ba:3)))

let test_make_validation () =
  let g = selfloop () in
  let mode = { Fsm.m_name = "A"; rates = [| (1, 1) |]; taus = [| 1 |] } in
  let self = { Fsm.t_src = 0; t_dst = 0; delay = 0 } in
  let expect_invalid name f =
    match f () with
    | (_ : Fsm.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "no modes" (fun () ->
      Fsm.make ~name:"x" ~graph:g ~modes:[||] ~transitions:[||] ~initial:0);
  expect_invalid "no outgoing" (fun () ->
      Fsm.make ~name:"x" ~graph:g ~modes:[| mode |] ~transitions:[||]
        ~initial:0);
  expect_invalid "negative delay" (fun () ->
      Fsm.make ~name:"x" ~graph:g ~modes:[| mode |]
        ~transitions:[| { self with Fsm.delay = -1 } |]
        ~initial:0);
  expect_invalid "duplicate mode names" (fun () ->
      Fsm.make ~name:"x" ~graph:g ~modes:[| mode; mode |]
        ~transitions:[| self |] ~initial:0);
  expect_invalid "initial out of range" (fun () ->
      Fsm.make ~name:"x" ~graph:g ~modes:[| mode |] ~transitions:[| self |]
        ~initial:1);
  expect_invalid "actor without input" (fun () ->
      let g2 =
        Sdfg.of_lists ~actors:[ "a"; "b" ] ~channels:[ ("a", "b", 1, 1, 0) ]
      in
      Fsm.single g2 [| 1; 1 |])

let test_parse_roundtrip () =
  let g = example_graph () in
  let text =
    "scenario demo\n\
     mode fast\n\
    \  actor a3 1\n\
     mode slow\n\
    \  actor a3 9\n\
    \  channel d1 rates 2 2\n\
     initial fast\n\
     edge fast -> slow delay 4\n\
     edge slow -> fast\n"
  in
  let fsm = Fsm.parse ~graph:g ~taus:Gen.Examples.example_taus text in
  Alcotest.(check string) "name" "demo" fsm.Fsm.name;
  Alcotest.(check int) "modes" 2 (Array.length fsm.Fsm.modes);
  Alcotest.(check int) "delay" 4 fsm.Fsm.transitions.(0).Fsm.delay;
  Alcotest.(check int) "default delay" 0 fsm.Fsm.transitions.(1).Fsm.delay;
  (* Canonical text parses back to an FSM with the same analysis. *)
  let fsm2 = Fsm.parse ~graph:g ~taus:Gen.Examples.example_taus (Fsm.to_text fsm) in
  Alcotest.(check string) "canonical text is stable" (Fsm.to_text fsm)
    (Fsm.to_text fsm2);
  let r1 = Product.analyze fsm and r2 = Product.analyze fsm2 in
  check_rat "same worst rate" r1.Product.worst_rate r2.Product.worst_rate

let test_parse_errors () =
  let g = selfloop () in
  let expect_err text =
    match Fsm.parse ~graph:g ~taus:[| 1 |] text with
    | (_ : Fsm.t) -> Alcotest.fail "expected Parse_error"
    | exception Fsm.Parse_error _ -> ()
  in
  expect_err "mode m\n  actor nosuch 3\n";
  expect_err "mode m\n  channel nosuch rates 1 1\n";
  expect_err "actor a 3\n";
  expect_err "mode m\nedge m -> other\n";
  expect_err "frobnicate\n"

(* The satellite regression: a single-state zero-delay scenario FSM is
   the self-timed execution, bit for bit — same rational rate and same
   per-actor throughputs, on examples and on random graphs. *)

let single_agrees g taus =
  let st = Selftimed.analyze g taus in
  let r = Product.analyze (Fsm.single g taus) in
  let expected =
    Rat.make st.Selftimed.iterations_per_period st.Selftimed.period
  in
  Rat.equal r.Product.worst_rate expected
  && Array.for_all2
       (fun thr gamma_a ->
         Rat.equal thr (Rat.mul_int r.Product.worst_rate gamma_a))
       st.Selftimed.throughput
       (Sdf.Repetition.vector_exn g)

let test_single_mode_examples () =
  Alcotest.(check bool) "fig5a" true
    (single_agrees (example_graph ()) Gen.Examples.example_taus);
  Alcotest.(check bool) "ring3" true
    (single_agrees (ring3 ()) Gen.Examples.ring3_taus);
  Alcotest.(check bool) "prodcons" true
    (single_agrees (prodcons ()) Gen.Examples.prodcons_taus)

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let random_case seed =
  let rng = Gen.Rng.create ~seed in
  let app =
    Gen.Sdfgen.generate rng Check.Harness.fuzz_profile
      ~proc_types:Gen.Benchsets.proc_types
      ~name:(Printf.sprintf "sc%d" seed)
  in
  let g = app.Appmodel.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a ->
        Appmodel.Appgraph.max_exec_time app a)
  in
  (g, taus)

let prop_single_mode_is_selftimed =
  qcheck ~count:60 "single-mode zero-delay FSM == Selftimed.analyze" gen_seed
    (fun seed ->
      let g, taus = random_case seed in
      match Selftimed.analyze ~max_states:50_000 g taus with
      | exception Selftimed.State_space_exceeded _ -> true
      | exception Selftimed.Deadlocked -> (
          match Product.analyze (Fsm.single g taus) with
          | (_ : Product.result) -> false
          | exception Product.Deadlocked -> true)
      | _ -> single_agrees g taus)

let prop_budget_partial_sound =
  qcheck ~count:40 "scenario budget partial is a sound upper bound" gen_seed
    (fun seed ->
      let g, taus = random_case seed in
      let rng = Gen.Rng.create ~seed:(seed + 17) in
      match Gen.Scenariogen.derive rng g taus with
      | exception Invalid_argument _ -> true
      | fsm -> (
          let full =
            match Product.analyze ~max_states:2_000 fsm with
            | r -> Some r
            | exception Product.Deadlocked -> None
            | exception Product.State_space_exceeded _ -> None
          in
          let budget = Budget.make ~max_states:(1 + (seed mod 16)) () in
          match Product.analyze_budgeted ~max_states:2_000 ~budget fsm with
          | Ok r -> (
              match full with
              | Some f -> Rat.equal r.Product.worst_rate f.Product.worst_rate
              | None -> false)
          | Error p -> (
              p.Product.explored > 0
              &&
              match full with
              | None -> true
              | Some f ->
                  Rat.is_infinite p.Product.upper_bound
                  || Rat.compare p.Product.upper_bound f.Product.worst_rate
                     >= 0)
          | exception Product.Deadlocked -> full = None
          | exception Product.State_space_exceeded _ -> full = None))

let prop_memo_agreement =
  qcheck ~count:30 "scenario memo replay agrees" gen_seed (fun seed ->
      let g, taus = random_case seed in
      let rng = Gen.Rng.create ~seed:(seed + 23) in
      match Gen.Scenariogen.derive rng g taus with
      | exception Invalid_argument _ -> true
      | fsm ->
          let was = Analysis.Memo.enabled () in
          Fun.protect
            ~finally:(fun () -> Analysis.Memo.set_enabled was)
            (fun () ->
              Analysis.Memo.set_enabled true;
              Analysis.Memo.clear_all ();
              let run () =
                match Product.analyze ~max_states:2_000 fsm with
                | r -> `Res r.Product.worst_rate
                | exception Product.Deadlocked -> `Dead
                | exception Product.State_space_exceeded _ -> `Exceeded
              in
              let cold = run () in
              let warm = run () in
              Analysis.Memo.set_enabled false;
              let off = run () in
              let agree a b =
                match (a, b) with
                | `Res x, `Res y -> Rat.equal x y
                | `Dead, `Dead | `Exceeded, `Exceeded -> true
                | _ -> false
              in
              agree cold warm && agree cold off))

let suite =
  [
    Alcotest.test_case "two-mode hand-computed rate" `Quick
      test_two_mode_hand_computed;
    Alcotest.test_case "transition delay slows the worst case" `Quick
      test_delay_matters;
    Alcotest.test_case "reachable deadlocking mode" `Quick
      test_deadlocking_mode;
    Alcotest.test_case "state cap" `Quick test_state_cap;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "single mode on the examples" `Quick
      test_single_mode_examples;
    prop_single_mode_is_selftimed;
    prop_budget_partial_sound;
    prop_memo_agreement;
  ]
