(* Equivalence suite for the generic packed engine (lib/engine/explore):
   the three analyses that now run as engine instances — self-timed SDF,
   binding-constrained, and phase-wise CSDF — must be observationally
   identical to their retained pre-engine references on random graphs:
   same results, same reified exceptions, same observer call sequences,
   and the same budget partial behavior, across memo and jobs
   configurations. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Selftimed = Analysis.Selftimed
module Appgraph = Appmodel.Appgraph
open Helpers

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let random_case seed =
  let rng = Gen.Rng.create ~seed in
  let app =
    Gen.Sdfgen.generate rng Check.Harness.fuzz_profile
      ~proc_types:Gen.Benchsets.proc_types
      ~name:(Printf.sprintf "ge%d" seed)
  in
  let g = app.Appgraph.graph in
  let taus =
    Array.init (Sdfg.num_actors g) (fun a -> Appgraph.max_exec_time app a)
  in
  (g, taus)

let result_equal (a : Selftimed.result) (b : Selftimed.result) =
  a.Selftimed.period = b.Selftimed.period
  && a.Selftimed.iterations_per_period = b.Selftimed.iterations_per_period
  && a.Selftimed.transient = b.Selftimed.transient
  && a.Selftimed.states = b.Selftimed.states
  && Array.for_all2 Rat.equal a.Selftimed.throughput b.Selftimed.throughput

type outcome = Res of Selftimed.result | Dead | Exceeded

let outcome_of f =
  match f () with
  | r -> Res r
  | exception Selftimed.Deadlocked -> Dead
  | exception Selftimed.State_space_exceeded _ -> Exceeded

let outcome_equal a b =
  match (a, b) with
  | Res ra, Res rb -> result_equal ra rb
  | Dead, Dead | Exceeded, Exceeded -> true
  | _ -> false

let without_memo f =
  let was = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was)
    (fun () ->
      Analysis.Memo.set_enabled false;
      f ())

let with_memo f =
  let was = Analysis.Memo.enabled () in
  Fun.protect
    ~finally:(fun () -> Analysis.Memo.set_enabled was)
    (fun () ->
      Analysis.Memo.set_enabled true;
      Analysis.Memo.clear_all ();
      f ())

(* Results AND the exact observer firing sequence: the engine instance
   must replay the reference's (time, actor) calls verbatim. *)
let prop_selftimed_matches_reference =
  qcheck ~count:80 "selftimed instance == reference (results, observers)"
    gen_seed (fun seed ->
      without_memo @@ fun () ->
      let g, taus = random_case seed in
      let record trace t a = trace := (t, a) :: !trace in
      let etrace = ref [] and rtrace = ref [] in
      let e =
        outcome_of (fun () ->
            Selftimed.analyze ~observer:(record etrace) ~max_states:50_000 g
              taus)
      in
      let r =
        outcome_of (fun () ->
            Selftimed.analyze_reference ~observer:(record rtrace)
              ~max_states:50_000 g taus)
      in
      outcome_equal e r && !etrace = !rtrace)

(* Exception agreement where negative outcomes are common: a tiny state
   cap, and initial tokens halved so a fair share of graphs deadlock. *)
let prop_selftimed_outcomes_agree =
  qcheck ~count:80 "selftimed instance == reference (deadlock, cap)" gen_seed
    (fun seed ->
      without_memo @@ fun () ->
      let g, taus = random_case seed in
      let g = Sdfg.map_tokens g (fun c -> c.Sdfg.tokens / 2) in
      let e =
        outcome_of (fun () -> Selftimed.analyze ~max_states:60 g taus)
      in
      let r =
        outcome_of (fun () ->
            Selftimed.analyze_reference ~max_states:60 g taus)
      in
      outcome_equal e r)

(* Memo (cold, warm, disabled) x jobs (1, 2, 4): every configuration of
   the engine instance returns the reference's result. *)
let prop_selftimed_memo_jobs_configs =
  qcheck ~count:40 "selftimed instance == reference under memo x jobs"
    gen_seed (fun seed ->
      let g, taus = random_case seed in
      let cap = 50_000 in
      let reference =
        outcome_of (fun () -> Selftimed.analyze_reference ~max_states:cap g taus)
      in
      let analyze () = Selftimed.analyze ~max_states:cap g taus in
      let runs =
        [
          (fun () -> with_memo analyze);
          (fun () ->
            with_memo (fun () ->
                ignore (outcome_of analyze);
                analyze ()));
          (fun () -> without_memo analyze);
          (fun () ->
            without_memo (fun () ->
                Selftimed.analyze_parallel ~domains:2 ~max_states:cap g taus));
          (fun () ->
            without_memo (fun () ->
                Selftimed.analyze_parallel ~domains:4 ~max_states:cap g taus));
        ]
      in
      List.for_all
        (fun run -> outcome_equal reference (outcome_of run))
        runs)

(* Budget partials: a budgeted engine run that completes equals the
   reference; one that stops early reports a sound anytime bound. *)
let prop_selftimed_budget_partials =
  qcheck ~count:60 "selftimed budget partials sound against reference"
    gen_seed (fun seed ->
      without_memo @@ fun () ->
      let g, taus = random_case seed in
      let cap = 1 + (seed mod 64) in
      let budget = Budget.make ~max_states:cap () in
      let budgeted =
        match Selftimed.analyze_budgeted ~budget ~max_states:50_000 g taus with
        | r -> `Run r
        | exception Selftimed.Deadlocked -> `Dead
        | exception Selftimed.State_space_exceeded _ -> `Exceeded
      in
      match
        ( budgeted,
          outcome_of (fun () ->
              Selftimed.analyze_reference ~max_states:50_000 g taus) )
      with
      | _, Exceeded -> true (* reference overflowed the cap: undecidable *)
      | `Exceeded, _ -> false
      | `Dead, Dead -> true
      | `Dead, _ | `Run (Ok _), Dead -> false
      | `Run (Ok r), Res ref_r -> result_equal r ref_r
      | `Run (Error p), Dead -> not p.Selftimed.dead_ruled_out
      | `Run (Error p), Res ref_r ->
          (not p.Selftimed.provably_dead)
          && p.Selftimed.explored > 0
          && Array.for_all2
               (fun ub thr ->
                 Rat.is_infinite ub || Rat.compare ub thr >= 0)
               p.Selftimed.upper_bound ref_r.Selftimed.throughput)

(* The constrained analysis is validated end to end (binding, slices,
   schedule) by the existing validator oracle; it must never Fail. *)
let prop_constrained_matches_reference =
  qcheck ~count:25 "constrained instance == reference (via validator)"
    gen_seed (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let app =
        Gen.Sdfgen.generate rng Check.Harness.fuzz_profile
          ~proc_types:Gen.Benchsets.proc_types
          ~name:(Printf.sprintf "gc%d" seed)
      in
      let arch = Gen.Benchsets.architecture 0 in
      match
        Check.Validator.constrained_engine_agreement ~max_states:50_000 app
          arch
      with
      | Check.Oracle.Fail _ -> false
      | Check.Oracle.Pass | Check.Oracle.Skip _ -> true)

let csdf_result_equal (a : Csdf.Selftimed.result) (b : Csdf.Selftimed.result)
    =
  a.Csdf.Selftimed.period = b.Csdf.Selftimed.period
  && a.Csdf.Selftimed.transient = b.Csdf.Selftimed.transient
  && a.Csdf.Selftimed.states = b.Csdf.Selftimed.states
  && Array.for_all2 Rat.equal a.Csdf.Selftimed.throughput
       b.Csdf.Selftimed.throughput

let prop_csdf_matches_reference =
  qcheck ~count:60 "csdf instance == reference (results, deadlock, cap)"
    gen_seed (fun seed ->
      let rng = Gen.Rng.create ~seed in
      let g, taus = Gen.Csdfgen.generate rng () in
      let agree_at max_states =
        let run f =
          match f ?max_states:(Some max_states) g taus with
          | r -> `Res r
          | exception Csdf.Selftimed.Deadlocked -> `Dead
          | exception Csdf.Selftimed.State_space_exceeded _ -> `Exceeded
        in
        match (run Csdf.Selftimed.analyze, run Csdf.Selftimed.analyze_reference)
        with
        | `Res a, `Res b -> csdf_result_equal a b
        | `Dead, `Dead | `Exceeded, `Exceeded -> true
        | _ -> false
      in
      agree_at 1_000_000 && agree_at 40)

let suite =
  [
    prop_selftimed_matches_reference;
    prop_selftimed_outcomes_agree;
    prop_selftimed_memo_jobs_configs;
    prop_selftimed_budget_partials;
    prop_constrained_matches_reference;
    prop_csdf_matches_reference;
  ]
