(* Test entry point: one alcotest run over all suites. *)

let () =
  Alcotest.run "sdfalloc"
    [
      ("rat", Test_rat.suite);
      ("sdfg", Test_sdfg.suite);
      ("repetition", Test_repetition.suite);
      ("cycles", Test_cycles.suite);
      ("hsdf", Test_hsdf.suite);
      ("textio", Test_textio.suite);
      ("xml", Test_xml.suite);
      ("sdf3_xml", Test_sdf3_xml.suite);
      ("dot", Test_dot.suite);
      ("selftimed", Test_selftimed.suite);
      ("engine", Test_engine.suite);
      ("generic_engine", Test_generic_engine.suite);
      ("trace", Test_trace.suite);
      ("buffer_sizing", Test_buffer_sizing.suite);
      ("mcr", Test_mcr.suite);
      ("platform", Test_platform.suite);
      ("appmodel", Test_appmodel.suite);
      ("schedule", Test_schedule.suite);
      ("binding", Test_binding.suite);
      ("bind_aware", Test_bind_aware.suite);
      ("constrained", Test_constrained.suite);
      ("list_scheduler", Test_list_scheduler.suite);
      ("cost", Test_cost.suite);
      ("binding_step", Test_binding_step.suite);
      ("slice_alloc", Test_slice_alloc.suite);
      ("strategy", Test_strategy.suite);
      ("multi_app", Test_multi_app.suite);
      ("flow", Test_flow.suite);
      ("dimensioning", Test_dimensioning.suite);
      ("gen", Test_gen.suite);
      ("baseline", Test_baseline.suite);
      ("csdf", Test_csdf.suite);
      ("scenario", Test_scenario.suite);
      ("extensions", Test_extensions.suite);
      ("regressions", Test_regressions.suite);
      ("composition", Test_composition.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("memo", Test_memo.suite);
      ("par", Test_par.suite);
      ("budget", Test_budget.suite);
      ("server", Test_server.suite);
      ("loadtest", Test_loadtest.suite);
      ("props", Test_props.suite);
      ("latency", Test_latency.suite);
      ("sensitivity", Test_sensitivity.suite);
      ("check", Test_check.suite);
      ("corpus", Test_corpus.suite);
      ("paper", Test_paper.suite);
    ]
