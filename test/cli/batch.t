The batch driver runs a directory of SDF3 application files and journals
one deterministic JSON line per case.

  $ mkdir cases
  $ sdf3_generate --set 1 -n 3 -o cases --xml >/dev/null
  $ ls cases
  s1q0g0.xml
  s1q0g1.xml
  s1q0g2.xml

A full run journals every case in sorted order and exits 0:

  $ sdf3_batch cases --platform mesh3x3 --journal full.jsonl
  3 cases done (0 skipped via resume), journal full.jsonl
  $ cat full.jsonl
  {"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}
  {"case":"s1q0g1.xml","status":"allocated","throughput":"1/1160"}
  {"case":"s1q0g2.xml","status":"allocated","throughput":"1/1080"}

An interrupted run (simulated deterministically with --limit) followed by
--resume produces a byte-identical journal, processing only the missing
cases:

  $ sdf3_batch cases --platform mesh3x3 --journal part.jsonl --limit 1
  1 cases done (0 skipped via resume), journal part.jsonl
  $ sdf3_batch cases --platform mesh3x3 --journal part.jsonl --resume
  2 cases done (1 skipped via resume), journal part.jsonl
  $ cmp full.jsonl part.jsonl

A line torn mid-write by a kill is discarded and its case re-run:

  $ head -c 130 full.jsonl > torn.jsonl
  $ sdf3_batch cases --platform mesh3x3 --journal torn.jsonl --resume
  1 cases done (2 skipped via resume), journal torn.jsonl
  $ cmp full.jsonl torn.jsonl

A per-case budget degrades cases to a partial status (anytime outcome,
not a batch failure — exit stays 0):

  $ sdf3_batch cases --platform mesh3x3 --journal tiny.jsonl --max-states-per-case 2
  3 cases done (0 skipped via resume), journal tiny.jsonl
  $ cat tiny.jsonl
  {"case":"s1q0g0.xml","status":"partial","reason":"states"}
  {"case":"s1q0g1.xml","status":"partial","reason":"states"}
  {"case":"s1q0g2.xml","status":"partial","reason":"states"}

A malformed input is isolated as that case's error line, the other cases
still run, and the batch exits 1:

  $ echo '<broken' > cases/broken.xml
  $ sdf3_batch cases --platform mesh3x3 --journal err.jsonl
  4 cases done (0 skipped via resume), journal err.jsonl
  [1]
  $ cat err.jsonl
  {"case":"broken.xml","status":"error","message":"offset 8: expected a name"}
  {"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}
  {"case":"s1q0g1.xml","status":"allocated","throughput":"1/1160"}
  {"case":"s1q0g2.xml","status":"allocated","throughput":"1/1080"}
