The allocation daemon serves newline-delimited JSON requests over a Unix
socket; the same binary in --request mode is the client (it retries while
the daemon boots, so no sleep is needed between the two).

  $ mkdir cases
  $ sdf3_generate --set 1 -n 2 -o cases --xml >/dev/null
  $ sdf3_serve --socket serve.sock --root cases --journal serve.jsonl \
  >   --max-inflight 1 > daemon.log 2>&1 &
  $ DAEMON=$!

Control and work verbs echo the request id; a flow result object is the
sdf3_batch journal line for that case (compare batch.t):

  $ sdf3_serve --socket serve.sock --request '{"id":"r1","verb":"ping"}'
  {"id":"r1","status":"ok","verb":"ping"}
  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"r2","verb":"flow","file":"s1q0g0.xml","platform":"mesh3x3"}'
  {"id":"r2","status":"ok","verb":"flow","result":{"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}}

The repeated request is answered from the shared memo cache — same bytes,
no re-exploration:

  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"r3","verb":"flow","file":"s1q0g0.xml","platform":"mesh3x3"}'
  {"id":"r3","status":"ok","verb":"flow","result":{"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}}

An interactive-tier analyze runs under a bounded budget and reports
deterministic fields only:

  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"a1","verb":"analyze","file":"s1q0g1.xml","tier":"interactive"}'
  {"id":"a1","status":"ok","verb":"analyze","result":{"case":"s1q0g1.xml","status":"analyzed","graph":"s1q0g1","actors":5,"channels":8,"states":7,"throughput":"3/92"}}

Malformed input is a structured error (id null), never a crash:

  $ sdf3_serve --socket serve.sock --request 'not json'
  {"id":null,"status":"error","error":"parse error: expected null at offset 0"}

Admission control: a sleep diagnostic pins the single in-flight slot
(status polling is a control verb, so it still answers), and the next
work request bounces with "overloaded":

  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"z","verb":"sleep","ms":3000}' > sleeper.out &
  $ SLEEPER=$!
  $ until sdf3_serve --socket serve.sock --request '{"id":"q","verb":"status"}' \
  >   | grep -q '"in_flight":1'; do sleep 0.05; done
  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"r4","verb":"flow","file":"s1q0g0.xml"}'
  {"id":"r4","status":"overloaded","error":"server at capacity"}
  [3]

A rejection exits 3 ("busy"), distinct from a transport failure's 1.
--retry N resends with capped exponential backoff; one retry (50 ms)
still lands inside the sleeper's 3-second window, so the final reply is
the rejection and the exit code is still 3:

  $ sdf3_serve --socket serve.sock --retry 1 \
  >   --request '{"id":"r6","verb":"flow","file":"s1q0g0.xml"}'
  {"id":"r6","status":"overloaded","error":"server at capacity"}
  [3]

Graceful drain: new work is rejected with "draining", but the in-flight
sleeper finishes and gets its reply before the daemon exits 0 and removes
its socket:

  $ sdf3_serve --socket serve.sock --request '{"id":"d","verb":"drain"}'
  {"id":"d","status":"ok","verb":"drain"}
  $ sdf3_serve --socket serve.sock \
  >   --request '{"id":"r5","verb":"flow","file":"s1q0g0.xml"}'
  {"id":"r5","status":"draining","error":"server is draining"}
  [3]
  $ wait $SLEEPER
  $ cat sleeper.out
  {"id":"z","status":"ok","verb":"sleep","result":{"slept_ms":3000}}
  $ wait $DAEMON
  $ cat daemon.log
  sdf3_serve: listening on serve.sock
  sdf3_serve: drained after 4 request(s), 4 rejected
  $ test -e serve.sock || echo "socket removed"
  socket removed

The journal holds one line per executed flow request, in sdf3_batch's
format:

  $ cat serve.jsonl
  {"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}
  {"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}

--retry also rides out a transient overload: against a fresh daemon whose
single slot is pinned by a 600 ms sleeper, the backoff schedule outlives
the sleeper and the retrying client eventually gets the slot (exit 0):

  $ sdf3_serve --socket retry.sock --root cases --max-inflight 1 \
  >   > retry-daemon.log 2>&1 &
  $ DAEMON=$!
  $ sdf3_serve --socket retry.sock \
  >   --request '{"id":"s","verb":"sleep","ms":600}' > sleeper2.out &
  $ SLEEPER=$!
  $ until sdf3_serve --socket retry.sock --request '{"id":"q2","verb":"status"}' \
  >   | grep -q '"in_flight":1'; do sleep 0.05; done
  $ sdf3_serve --socket retry.sock --retry 8 \
  >   --request '{"id":"r7","verb":"flow","file":"s1q0g0.xml","platform":"mesh3x3"}'
  {"id":"r7","status":"ok","verb":"flow","result":{"case":"s1q0g0.xml","status":"allocated","throughput":"1/4020"}}
  $ wait $SLEEPER
  $ sdf3_serve --socket retry.sock --request '{"id":"d2","verb":"drain"}'
  {"id":"d2","status":"ok","verb":"drain"}
  $ wait $DAEMON
