The load-test harness forks the daemon itself, swarms it with seeded
deterministic clients, initiates the drain mid-flight, and checks its
invariant oracles. A passing run exits 0.

  $ mkdir cases
  $ sdf3_generate --set 1 -n 3 -o cases --xml >/dev/null

A seeded closed-loop burst with the drain landing while requests are
still in flight. The absolute counts vary with machine speed; the
invariants do not. (The latency oracle is exercised by the CI load-smoke
job instead — this cram test races the rest of the suite, which would
make a latency assertion flaky.)

  $ sdf3_loadtest --root cases --socket load.sock --journal load.jsonl \
  >   --clients 25 --requests 40 --seed 42 --think-ms 20 \
  >   --drain-after-s 0.5 --no-latency-check \
  >   --report load-report.json > load.out 2>&1
  $ grep "lost=" load.out
  loadtest: lost=0 duplicates=0 unknown=0 errors=0 connect_failures=0
  $ grep "FAIL" load.out
  [1]
  $ grep -c "oracle .*: PASS" load.out
  5
  $ grep "^loadtest: PASS" load.out
  loadtest: PASS

The daemon exited on its own and unlinked its socket (the drain oracle
already asserted this; the file system agrees):

  $ test -e load.sock || echo "socket removed"
  socket removed

The harness wrote its JSON report with the oracle verdicts and per-tier
latency histograms:

  $ grep -o '"no-loss": true' load-report.json
  "no-loss": true
  $ grep -c 'load.latency_s.interactive' load-report.json
  1

Every line the daemon journaled under load is byte-identical to what a
sequential sdf3_batch re-run over the same corpus produces — the journal
is a multiset over the batch journal's lines, nothing more:

  $ sort -u load.jsonl > load.sorted
  $ sdf3_batch cases --platform mesh3x3 --journal batch.jsonl
  3 cases done (0 skipped via resume), journal batch.jsonl
  $ sort -u batch.jsonl > batch.sorted
  $ comm -23 load.sorted batch.sorted
