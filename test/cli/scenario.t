Scenario-FSM worst-case throughput from the command line: a base graph
with execution times plus a scenario file (modes with their own rates and
times, transitions with rebinding delays).

  $ cat > base.sdf <<'SDF'
  > sdfg twoloop
  > actor a 2
  > actor b 3
  > channel d1 a -> b rates 1 1 tokens 1
  > channel d2 b -> a rates 1 1 tokens 1
  > SDF
  $ cat > modes.scn <<'SCN'
  > scenario demo
  > mode fast
  > mode slow
  >   actor a 4
  >   actor b 6
  > initial fast
  > edge fast -> slow delay 3
  > edge slow -> fast
  > SCN
  $ sdf3_analyze base.sdf --scenario modes.scn
  graph twoloop: 2 actors, 2 channels
  repetition vector: a=1 b=1
  deadlock free
  throughput a = 2/5
  throughput b = 2/5
  state space: 3 states, transient 0, period 5
  periodic phase: 2 iteration(s) per period
  hsdf max cycle ratio = 5/2
  scenario demo: 2 modes, 2 transitions (initial fast)
  scenario worst-case rate = 2/11 iteration(s)/time unit
  scenario product: 3 states, 3 edges

A single-mode scenario with no transitions is the plain self-timed
execution: its worst-case rate must be exactly the self-timed iteration
rate (2 iterations per period 5 above).

  $ cat > single.scn <<'SCN'
  > scenario plain
  > mode only
  > SCN
  $ sdf3_analyze base.sdf --scenario single.scn | tail -n 3
  scenario plain: 1 modes, 1 transitions (initial only)
  scenario worst-case rate = 2/5 iteration(s)/time unit
  scenario product: 2 states, 2 edges

The run is deterministic and independent of the sweep's domain count:
byte-identical output under --jobs 1 and --jobs 4.

  $ sdf3_analyze base.sdf --scenario modes.scn --jobs 1 > out1.txt
  $ sdf3_analyze base.sdf --scenario modes.scn --jobs 4 > out4.txt
  $ cmp out1.txt out4.txt

The telemetry registry carries the scenario counters, and the timeline
trace (with its analyze.scenario span) passes the report checker.

  $ sdf3_analyze base.sdf --scenario modes.scn --metrics m.json --trace t.json > /dev/null
  $ grep -o '"scenario.runs": 1' m.json
  "scenario.runs": 1
  $ grep -o '"scenario.modes": 2' m.json
  "scenario.modes": 2
  $ grep -o '"scenario.product_states": 3' m.json
  "scenario.product_states": 3
  $ grep -o '"scenario.product_edges": 3' m.json
  "scenario.product_edges": 3
  $ sdf3_report --check-trace t.json | grep -o ': ok'
  : ok
  $ grep -c '"analyze.scenario"' t.json
  2

Malformed scenario files are rejected with the offending line:

  $ cat > bad.scn <<'SCN'
  > scenario bad
  > mode m
  >   actor nosuch 3
  > SCN
  $ sdf3_analyze base.sdf --scenario bad.scn > /dev/null
  bad.scn:3: unknown actor nosuch
  [1]

A mode that cannot complete an iteration is a scenario deadlock:

  $ cat > dead.scn <<'SCN'
  > scenario dead
  > mode starve
  >   channel d1 rates 2 2
  >   channel d2 rates 2 2
  > SCN
  $ sdf3_analyze base.sdf --scenario dead.scn > dead.out
  [3]
  $ tail -n 1 dead.out
  scenario DEADLOCKS (some mode sequence jams)

The flow uses the scenario as an admission gate (a necessary condition no
allocation can repair); a single-mode scenario over the example app passes
it unchanged.

  $ printf 'scenario gate\nmode only\n' > gate.scn
  $ sdf3_flow --apps example --platform example --scenario gate.scn | head -n 1
  1 of 1 applications allocated
