Analysing the running example (written by the printer) reproduces the
Fig. 5(a) throughput of 1/2 for a3 with the binding's execution times:

  $ cat > example.sdf <<'SDF'
  > sdfg example
  > actor a1 1
  > actor a2 1
  > actor a3 2
  > channel d1 a1 -> a2 rates 1 1
  > channel d2 a2 -> a3 rates 1 2
  > channel d3 a1 -> a1 rates 1 1 tokens 1
  > SDF
  $ sdf3_analyze example.sdf --hsdf
  graph example: 3 actors, 3 channels
  repetition vector: a1=2 a2=2 a3=1
  deadlock free
  hsdf: 5 actors, 6 channels
  throughput a1 = 1
  throughput a2 = 1
  throughput a3 = 1/2
  state space: 5 states, transient 3, period 2
  periodic phase: 1 iteration(s) per period
  hsdf max cycle ratio = 2

Parse errors carry the file and line:

  $ printf 'sdfg x\nactor a\nchannel d a -> b rates 1 1\n' > bad.sdf
  $ sdf3_analyze bad.sdf
  bad.sdf:3: unknown actor "b"
  [1]

Inconsistent graphs are detected:

  $ printf 'sdfg x\nactor a\nactor b\nchannel d1 a -> b rates 2 1\nchannel d2 b -> a rates 1 1 tokens 1\n' > inc.sdf
  $ sdf3_analyze inc.sdf
  graph x: 2 actors, 2 channels
  INCONSISTENT (witness channel d2)
  [2]

A parallel sweep (--jobs 4) is byte-identical to the sequential engine
(--jobs 1) — the sharded exploration resolves the same recurrence point:

  $ sdf3_analyze example.sdf --jobs 1 > seq.out
  $ sdf3_analyze example.sdf --jobs 4 > par.out
  $ cmp seq.out par.out

The same holds on a generated graph with a deeper state space:

  $ mkdir gen
  $ sdf3_generate --set 3 --seq 1 --count 1 --out gen > /dev/null
  $ sdf3_analyze gen/*.sdf --jobs 1 > gseq.out
  $ sdf3_analyze gen/*.sdf --jobs 4 > gpar.out
  $ cmp gseq.out gpar.out
