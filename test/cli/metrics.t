The telemetry registry (--metrics) of a flow run is valid JSON with the
documented key names: per-phase span timers, state-space counters and the
per-rung flow attempt records.

  $ sdf3_flow --apps example --platform example --metrics out.json > /dev/null
  $ head -n 2 out.json
  {
    "schema_version": 2,
  $ tail -c 2 out.json
  }
  $ for key in '"constrained.states"' '"constrained.transient"' \
  >            '"constrained.period"' '"constrained.firings"' \
  >            '"constrained.runs"' '"strategy.throughput_checks"' \
  >            'strategy.bind' 'strategy.static_order' 'strategy.slice_alloc' \
  >            '"flow.attempts"' '"kind": "flow.attempt"' '"rung": 0' \
  >            '"outcome": "allocated"' '"counters"' '"gauges"' '"timers"' \
  >            '"events"'; do
  >   grep -q "$key" out.json || echo "MISSING $key"
  > done

--metrics-stderr dumps the same document to stderr, leaving stdout intact:

  $ sdf3_flow --apps example --platform example --metrics-stderr > stdout.txt 2> err.json
  $ head -n 1 stdout.txt
  1 of 1 applications allocated
  $ head -n 1 err.json
  {

The analyzer records the self-timed state-space effort:

  $ cat > example.sdf <<'SDF'
  > sdfg example
  > actor a1 1
  > actor a2 1
  > actor a3 2
  > channel d1 a1 -> a2 rates 1 1
  > channel d2 a2 -> a3 rates 1 2
  > channel d3 a1 -> a1 rates 1 1 tokens 1
  > SDF
  $ sdf3_analyze example.sdf --metrics m.json > /dev/null
  $ grep -o '"selftimed.states": 5' m.json
  "selftimed.states": 5
  $ grep -o '"selftimed.period": 2' m.json
  "selftimed.period": 2
  $ grep -o '"selftimed.transient": 3' m.json
  "selftimed.transient": 3
