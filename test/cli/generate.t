A seeded generator run is byte-for-byte deterministic: the same set,
sequence and count produce identical output on every invocation.

  $ sdf3_generate --set 2 --seq 1 --count 3 > first.out
  $ sdf3_generate --set 2 --seq 1 --count 3 > second.out
  $ cmp first.out second.out

The same holds when writing files:

  $ mkdir out1 out2
  $ sdf3_generate --set 1 --seq 0 --count 2 --out out1 > /dev/null
  $ sdf3_generate --set 1 --seq 0 --count 2 --out out2 > /dev/null
  $ diff -r out1 out2

Different sequences differ (the seed actually steers generation):

  $ sdf3_generate --set 2 --seq 2 --count 3 > third.out
  $ cmp -s first.out third.out
  [1]
