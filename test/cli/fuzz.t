A clean differential/metamorphic fuzz run over 100 random graphs: every
oracle agrees, nothing is written.

  $ sdf3_fuzz --count 100 --seed 5 --no-corpus
  fuzz: seed 5, 100 cases, 1022 oracle checks, 23 skips, 0 failures

Fuzzing is deterministic for a fixed seed:

  $ sdf3_fuzz --count 100 --seed 5 --no-corpus
  fuzz: seed 5, 100 cases, 1022 oracle checks, 23 skips, 0 failures

The self-test mutant (an off-by-one initial token in the MCR replay of the
differential oracle) is detected, shrunk to a minimal ring, and persisted:

  $ sdf3_fuzz --count 200 --seed 9 --inject-mutant --corpus cex
  fuzz: counterexample after 5 cases (seed 9)
    oracle:  diff.selftimed-vs-mcr
    reason:  actor fz9-4_a0: self-timed throughput 1/25 but gamma/MCR predicts 1/21
    shrunk:  4 actors, 4 channels (18 shrink steps)
    saved:   cex/cex-diff-selftimed-vs-mcr-s9-4.sdfg
  sdfg cex-diff-selftimed-vs-mcr-s9-4
  actor fz9-4_a0 1
  actor fz9-4_a1 1
  actor fz9-4_a2 1
  actor fz9-4_a5 1
  channel d0 fz9-4_a0 -> fz9-4_a1 rates 1 1
  channel d1 fz9-4_a1 -> fz9-4_a2 rates 1 1
  channel d4 fz9-4_a2 -> fz9-4_a5 rates 1 1
  channel d9 fz9-4_a5 -> fz9-4_a0 rates 1 1
  [1]

The persisted counterexample replays through the corpus loader:

  $ ls cex
  cex-diff-selftimed-vs-mcr-s9-4.sdfg
