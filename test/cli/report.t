The run-report pipeline: a traced batch run, the in-repo Chrome-trace
validator, and the HTML dashboard.

  $ mkdir cases
  $ sdf3_generate --set 1 -n 3 -o cases --xml >/dev/null
  $ sdf3_batch cases --platform mesh3x3 --journal run.jsonl \
  >   --metrics metrics.json --trace trace.json
  3 cases done (0 skipped via resume), journal run.jsonl

The trace is well-formed Chrome trace-event JSON (monotone per-track
timestamps, balanced begin/end pairs, one async arc per case):

  $ sdf3_report --check-trace trace.json | grep -o ': ok'
  : ok
  $ grep -o '"ph": "b"' trace.json | head -n 1
  "ph": "b"
  $ grep -c '"name": "batch.case"' trace.json
  6

A corrupted trace is rejected with a non-zero exit:

  $ head -c 50 trace.json > broken.json
  $ sdf3_report --check-trace broken.json 2>/dev/null
  [1]

The report aggregates the registry and the journal into one static HTML
page with the per-phase timing table and quantile sparklines:

  $ sdf3_report --metrics metrics.json --journal run.jsonl \
  >   --trace trace.json -o report.html
  wrote report.html
  $ grep -c '<table id="phase-table">' report.html
  1
  $ grep -o 'class="sparkline"' report.html | head -n 1
  class="sparkline"
  $ grep -o 'batch.case' report.html | head -n 1
  batch.case
  $ grep -o 'Batch journal: run.jsonl' report.html
  Batch journal: run.jsonl
  $ grep -o '>trace.json</a>' report.html
  >trace.json</a>

The report is deterministic for fixed inputs:

  $ sdf3_report --metrics metrics.json --journal run.jsonl \
  >   --trace trace.json -o report2.html
  wrote report2.html
  $ cmp report.html report2.html

A parallel-sweep analysis run contributes per-shard gauges; the report
renders them as a dedicated shard-balance table with the imbalance
summary:

  $ cat > ring.sdf <<'SDF'
  > sdfg ring
  > actor a1 2
  > actor a2 3
  > actor a3 4
  > channel c1 a1 -> a2 rates 1 1
  > channel c2 a2 -> a3 rates 1 1
  > channel c3 a3 -> a1 rates 1 1 tokens 2
  > SDF
  $ sdf3_analyze ring.sdf --jobs 4 --metrics par_metrics.json >/dev/null
  $ sdf3_report --metrics par_metrics.json -o par_report.html
  wrote par_report.html
  $ grep -o 'Shard balance' par_report.html
  Shard balance
  $ grep -c '<table id="shards">' par_report.html
  1
  $ grep -o 'imbalance (max/mean)' par_report.html
  imbalance (max/mean)

A sequential run has no shard gauges and no shard-balance section:

  $ sdf3_analyze ring.sdf --jobs 1 --metrics seq_metrics.json >/dev/null
  $ sdf3_report --metrics seq_metrics.json -o seq_report.html
  wrote seq_report.html
  $ grep -c 'Shard balance' seq_report.html
  0
  [1]
