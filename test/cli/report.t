The run-report pipeline: a traced batch run, the in-repo Chrome-trace
validator, and the HTML dashboard.

  $ mkdir cases
  $ sdf3_generate --set 1 -n 3 -o cases --xml >/dev/null
  $ sdf3_batch cases --platform mesh3x3 --journal run.jsonl \
  >   --metrics metrics.json --trace trace.json
  3 cases done (0 skipped via resume), journal run.jsonl

The trace is well-formed Chrome trace-event JSON (monotone per-track
timestamps, balanced begin/end pairs, one async arc per case):

  $ sdf3_report --check-trace trace.json | grep -o ': ok'
  : ok
  $ grep -o '"ph": "b"' trace.json | head -n 1
  "ph": "b"
  $ grep -c '"name": "batch.case"' trace.json
  6

A corrupted trace is rejected with a non-zero exit:

  $ head -c 50 trace.json > broken.json
  $ sdf3_report --check-trace broken.json 2>/dev/null
  [1]

The report aggregates the registry and the journal into one static HTML
page with the per-phase timing table and quantile sparklines:

  $ sdf3_report --metrics metrics.json --journal run.jsonl \
  >   --trace trace.json -o report.html
  wrote report.html
  $ grep -c '<table id="phase-table">' report.html
  1
  $ grep -o 'class="sparkline"' report.html | head -n 1
  class="sparkline"
  $ grep -o 'batch.case' report.html | head -n 1
  batch.case
  $ grep -o 'Batch journal: run.jsonl' report.html
  Batch journal: run.jsonl
  $ grep -o '>trace.json</a>' report.html
  >trace.json</a>

The report is deterministic for fixed inputs:

  $ sdf3_report --metrics metrics.json --journal run.jsonl \
  >   --trace trace.json -o report2.html
  wrote report2.html
  $ cmp report.html report2.html
