(* The paper's headline numbers, gathered in one suite: if these pass, the
   reproduction reproduces. Each case names the figure/table it checks. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Models = Appmodel.Models
open Helpers

let test_sec1_h263_hsdf_size () =
  let app = Models.h263 () in
  Alcotest.(check int) "Sec 1: H.263 HSDFG has 4754 actors" 4754
    (Sdf.Repetition.iteration_firings (Appgraph.gamma app))

let test_sec103_system_size () =
  let total =
    List.fold_left
      (fun acc (a : Appgraph.t) ->
        acc + Sdf.Repetition.iteration_firings (Appgraph.gamma a))
      0
      [ Models.h263 (); Models.h263 (); Models.h263 (); Models.mp3 () ]
  in
  Alcotest.(check int) "Sec 10.3: system HSDFG has 14275 actors" 14275 total

let example_setting () =
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba = Core.Bind_aware.build ~app ~arch ~binding ~slices:[| 5; 5 |] () in
  (app, ba)

let test_fig5a () =
  let app, _ = example_setting () in
  let r = Analysis.Selftimed.analyze app.Appgraph.graph [| 1; 1; 2 |] in
  check_rat "Fig 5(a): throughput(a3) = 1/2" (Rat.make 1 2)
    r.Analysis.Selftimed.throughput.(2)

let test_fig5b () =
  let _, ba = example_setting () in
  let r =
    Analysis.Selftimed.analyze ba.Core.Bind_aware.graph
      ba.Core.Bind_aware.exec_times
  in
  check_rat "Fig 5(b): throughput(a3) = 1/29" (Rat.make 1 29)
    r.Analysis.Selftimed.throughput.(2)

let test_fig5c () =
  let _, ba = example_setting () in
  let schedules =
    [|
      Some (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]);
      Some (Core.Schedule.make ~prefix:[] ~period:[ 2 ]);
    |]
  in
  let r = Core.Constrained.analyze ba ~schedules in
  check_rat "Fig 5(c): throughput(a3) = 1/30" (Rat.make 1 30)
    r.Core.Constrained.throughput

let test_fig4_connection_time () =
  let _, ba = example_setting () in
  let tau name =
    ba.Core.Bind_aware.exec_times.(Sdfg.actor_index ba.Core.Bind_aware.graph name)
  in
  Alcotest.(check int) "Sec 8.1: Upsilon(c) = L + ceil(sz/beta) = 11" 11
    (tau "c_d1");
  Alcotest.(check int) "Sec 8.1: Upsilon(s) = w - omega = 5" 5 (tau "s_d1")

let test_sec92_schedule () =
  let app = Models.example_app () in
  let arch = Models.example_platform () in
  let binding = [| 0; 0; 1 |] in
  let ba =
    Core.Bind_aware.build ~app ~arch ~binding
      ~slices:(Core.Bind_aware.half_wheel_slices app arch binding) ()
  in
  let schedules = Core.List_scheduler.schedules ba in
  match schedules.(0) with
  | Some s ->
      Alcotest.(check bool) "Sec 9.2: t1 schedule compacts to (a1 a2)*" true
        (Core.Schedule.equal s (Core.Schedule.make ~prefix:[] ~period:[ 0; 1 ]))
  | None -> Alcotest.fail "missing schedule"

let test_table3 () =
  let bind (c1, c2, c3) =
    match
      Core.Binding_step.bind
        ~weights:(Core.Cost.weights c1 c2 c3)
        (Models.example_app ()) (Models.example_platform ())
    with
    | Ok b -> b
    | Error _ -> Alcotest.fail "binding failed"
  in
  Alcotest.(check (array int)) "Table 3 (1,0,0)" [| 0; 0; 1 |] (bind (1., 0., 0.));
  Alcotest.(check (array int)) "Table 3 (0,0,1)" [| 0; 0; 0 |] (bind (0., 0., 1.));
  Alcotest.(check (array int)) "Table 3 (1,1,1)" [| 0; 0; 1 |] (bind (1., 1., 1.))

let test_example_strategy_end_to_end () =
  (* The full strategy on the running example meets the 1/30 constraint. *)
  match Core.Strategy.allocate (Models.example_app ()) (Models.example_platform ()) with
  | Ok alloc ->
      Alcotest.(check bool) "meets 1/30" true
        (Rat.compare alloc.Core.Strategy.throughput (Rat.make 1 30) >= 0)
  | Error _ -> Alcotest.fail "strategy failed on the running example"

let test_sec103_multimedia () =
  (* 3 x H.263 + MP3 all receive guarantees on the 2x2 platform with cost
     function (2,0,1); slice allocation dominates the run-time. The claim
     is about where the (uncached) analysis time goes, so memoization is
     switched off: with it on, the identical H.263 copies resolve their
     slice probes from the cache and the ratio loses its meaning. *)
  Analysis.Memo.set_enabled false;
  Fun.protect ~finally:(fun () -> Analysis.Memo.set_enabled true)
  @@ fun () ->
  let report =
    Core.Multi_app.allocate_until_failure
      ~weights:(Core.Cost.weights 2. 0. 1.)
      ~max_states:2_000_000
      [
        Models.h263 ~name:"v0" (); Models.h263 ~name:"v1" ();
        Models.h263 ~name:"v2" (); Models.mp3 ();
      ]
      (Models.multimedia_platform ())
  in
  Alcotest.(check int) "all 4 bound" 4 (List.length report.Core.Multi_app.allocations);
  let slice_t, total_t =
    List.fold_left
      (fun (s, t) (a : Core.Strategy.allocation) ->
        let st = a.Core.Strategy.stats in
        ( s +. st.Core.Strategy.slice_seconds,
          t +. st.Core.Strategy.bind_seconds
          +. st.Core.Strategy.schedule_seconds +. st.Core.Strategy.slice_seconds ))
      (0., 0.) report.Core.Multi_app.allocations
  in
  Alcotest.(check bool) "slice allocation dominates (paper: ~90%)" true
    (slice_t /. total_t > 0.5)

let suite =
  [
    Alcotest.test_case "Sec 1: H.263 HSDF size" `Quick test_sec1_h263_hsdf_size;
    Alcotest.test_case "Sec 10.3: system HSDF size" `Quick test_sec103_system_size;
    Alcotest.test_case "Fig 5(a): 1/2" `Quick test_fig5a;
    Alcotest.test_case "Fig 5(b): 1/29" `Quick test_fig5b;
    Alcotest.test_case "Fig 5(c): 1/30" `Quick test_fig5c;
    Alcotest.test_case "Fig 4: c and s times" `Quick test_fig4_connection_time;
    Alcotest.test_case "Sec 9.2: schedule compaction" `Quick test_sec92_schedule;
    Alcotest.test_case "Table 3 bindings" `Quick test_table3;
    Alcotest.test_case "example end to end" `Quick test_example_strategy_end_to_end;
    Alcotest.test_case "Sec 10.3: multimedia system" `Slow test_sec103_multimedia;
  ]
