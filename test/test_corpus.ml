(* Regression-corpus replay: every test/corpus/*.sdfg (seeded minimal
   graphs plus shrunk fuzzer counterexamples) goes through the full
   differential + metamorphic catalogue on every [dune runtest]. *)

module Case = Check.Case

let corpus_dir = "corpus"

let replay_all () =
  let cases = Check.Corpus.load_dir corpus_dir in
  if List.length cases < 5 then
    Alcotest.failf "corpus has %d cases, expected at least 5"
      (List.length cases);
  List.iter
    (fun (c : Case.t) ->
      let failures =
        Check.Corpus.failures (Check.Corpus.replay ~max_states:100_000 c)
      in
      match failures with
      | [] -> ()
      | (oracle, msg) :: _ ->
          Alcotest.failf "corpus case %s: %s: %s" c.Case.name oracle msg)
    cases

let round_trip () =
  let dir = Filename.temp_file "corpus" "" in
  Sys.remove dir;
  let c =
    {
      Case.name = "rt";
      graph = Gen.Examples.prodcons ();
      taus = Gen.Examples.prodcons_taus;
    }
  in
  let path = Check.Corpus.save ~dir c in
  let c' = Check.Corpus.load_file path in
  Alcotest.(check string) "name" c.Case.name c'.Case.name;
  Alcotest.(check bool) "graph" true
    (Gen.Examples.equal c.Case.graph c'.Case.graph);
  Alcotest.(check (array int)) "taus" c.Case.taus c'.Case.taus;
  Sys.remove path;
  Sys.rmdir dir

let well_formed_corpus () =
  (* Every persisted case must be replayable by construction. *)
  List.iter
    (fun (c : Case.t) ->
      if not (Case.well_formed c) then
        Alcotest.failf "corpus case %s is not well formed" c.Case.name)
    (Check.Corpus.load_dir corpus_dir)

let suite =
  [
    Alcotest.test_case "well-formed corpus" `Quick well_formed_corpus;
    Alcotest.test_case "replay all" `Quick replay_all;
    Alcotest.test_case "round trip" `Quick round_trip;
  ]
