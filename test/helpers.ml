(* Shared helpers for the test suites. The example graphs used to live
   here; they moved to Gen.Examples so the fuzz/check harness can use them
   too, and these aliases keep the suites' call sites stable. *)

module Rat = Sdf.Rat
module Sdfg = Sdf.Sdfg

let rat : Rat.t Alcotest.testable =
  Alcotest.testable Rat.pp Rat.equal

let check_rat msg expected actual = Alcotest.check rat msg expected actual

let r n d = Rat.make n d

let example_graph = Gen.Examples.example_graph
let prodcons = Gen.Examples.prodcons
let ring3 = Gen.Examples.ring3
let graph_equal = Gen.Examples.equal

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
