(* Maximum cycle ratio analysis. *)

module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Mcr = Analysis.Mcr
open Helpers

let ratio = function
  | Mcr.Ratio r -> r
  | Mcr.Acyclic -> Alcotest.fail "unexpectedly acyclic"
  | Mcr.Zero_token_cycle _ -> Alcotest.fail "unexpected zero-token cycle"

let test_ring () =
  let v = ratio (Mcr.max_cycle_ratio (ring3 ()) [| 2; 3; 4 |]) in
  check_rat "mcr = sum tau / 1 token" (Rat.make 9 1) v

let test_two_cycles () =
  (* Two cycles sharing no actors: 7/1 and 10/2; the max is 7. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b"; "c"; "d" ]
      ~channels:
        [
          ("a", "b", 1, 1, 1); ("b", "a", 1, 1, 0);
          ("c", "d", 1, 1, 1); ("d", "c", 1, 1, 1);
        ]
  in
  let v = ratio (Mcr.max_cycle_ratio g [| 3; 4; 5; 5 |]) in
  check_rat "max of 7/1 and 10/2" (Rat.make 7 1) v

let test_multi_token_edge () =
  (* k tokens on the loop divide the ratio by k. *)
  let g =
    Sdfg.of_lists ~actors:[ "a" ] ~channels:[ ("a", "a", 1, 1, 3) ]
  in
  check_rat "tau/3" (Rat.make 5 3) (ratio (Mcr.max_cycle_ratio g [| 5 |]))

let test_acyclic () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ] ~channels:[ ("a", "b", 1, 1, 0) ]
  in
  Alcotest.(check bool) "acyclic" true (Mcr.max_cycle_ratio g [| 1; 1 |] = Mcr.Acyclic);
  (* Tokens on a non-cycle edge still do not create a cycle. *)
  let g2 =
    Sdfg.of_lists ~actors:[ "a"; "b" ] ~channels:[ ("a", "b", 1, 1, 5) ]
  in
  Alcotest.(check bool) "still acyclic" true
    (Mcr.max_cycle_ratio g2 [| 1; 1 |] = Mcr.Acyclic)

let test_zero_token_cycle () =
  let g =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
  in
  match Mcr.max_cycle_ratio g [| 1; 1 |] with
  | Mcr.Zero_token_cycle cyc ->
      Alcotest.(check int) "cycle length" 2 (List.length cyc)
  | _ -> Alcotest.fail "expected zero-token cycle"

let test_longest_path_weighting () =
  (* Two token-free paths between the cycle's token edges; the longer one
     (through the slow actor) determines the ratio. *)
  let g =
    Sdfg.of_lists ~actors:[ "a"; "slow"; "fast"; "b" ]
      ~channels:
        [
          ("a", "slow", 1, 1, 0); ("slow", "b", 1, 1, 0);
          ("a", "fast", 1, 1, 0); ("fast", "b", 1, 1, 0);
          ("b", "a", 1, 1, 1);
        ]
  in
  let v = ratio (Mcr.max_cycle_ratio g [| 1; 10; 2; 1 |]) in
  check_rat "takes the slow branch" (Rat.make 12 1) v

let test_hsdf_throughput () =
  check_rat "1/mcr" (Rat.make 1 9)
    (Mcr.hsdf_throughput (ring3 ()) [| 2; 3; 4 |]);
  let acyclic =
    Sdfg.of_lists ~actors:[ "a"; "b" ] ~channels:[ ("a", "b", 1, 1, 0) ]
  in
  Alcotest.(check bool) "acyclic is unbounded" true
    (Rat.is_infinite (Mcr.hsdf_throughput acyclic [| 1; 1 |]));
  let dead =
    Sdfg.of_lists ~actors:[ "a"; "b" ]
      ~channels:[ ("a", "b", 1, 1, 0); ("b", "a", 1, 1, 0) ]
  in
  Alcotest.check_raises "deadlock rejected"
    (Invalid_argument "Mcr.hsdf_throughput: graph deadlocks") (fun () ->
      ignore (Mcr.hsdf_throughput dead [| 1; 1 |]))

let test_many_sccs () =
  (* 60 disjoint 2-rings, one token per arc: the token graph splits into 60
     strongly connected components, each with cycle ratio (tau_x + tau_y)/2.
     Exercises the single-pass bucket renumbering (the max sits in the
     first component, the runner-up in the last, so every component must
     actually be analyzed with its own arcs and sizes). *)
  let k = 60 in
  let actors =
    List.concat_map
      (fun i -> [ Printf.sprintf "x%d" i; Printf.sprintf "y%d" i ])
      (List.init k Fun.id)
  in
  let channels =
    List.concat_map
      (fun i ->
        let x = Printf.sprintf "x%d" i and y = Printf.sprintf "y%d" i in
        [ (x, y, 1, 1, 1); (y, x, 1, 1, 1) ])
      (List.init k Fun.id)
  in
  let g = Sdfg.of_lists ~actors ~channels in
  (* Ring 0 is the critical one: taus (k, k) give ratio k; ring i > 0 has
     taus (k - 1 - i mod 2, i mod 2 + 1), all strictly below ratio k. *)
  let taus =
    Array.init (2 * k) (fun a ->
        let i = a / 2 in
        if i = 0 then k else if a mod 2 = 0 then (k - 1) - (i mod 2) else (i mod 2) + 1)
  in
  check_rat "max over 60 components" (Rat.make k 1)
    (ratio (Mcr.max_cycle_ratio g taus))

let test_zero_exec_times () =
  let v = ratio (Mcr.max_cycle_ratio (ring3 ()) [| 0; 0; 0 |]) in
  check_rat "zero work" Rat.zero v;
  Alcotest.(check bool) "throughput infinite" true
    (Rat.is_infinite (Mcr.hsdf_throughput (ring3 ()) [| 0; 0; 0 |]))

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "two cycles" `Quick test_two_cycles;
    Alcotest.test_case "multi-token edge" `Quick test_multi_token_edge;
    Alcotest.test_case "acyclic" `Quick test_acyclic;
    Alcotest.test_case "zero-token cycle" `Quick test_zero_token_cycle;
    Alcotest.test_case "many SCCs" `Quick test_many_sccs;
    Alcotest.test_case "longest path weighting" `Quick test_longest_path_weighting;
    Alcotest.test_case "hsdf throughput" `Quick test_hsdf_throughput;
    Alcotest.test_case "zero execution times" `Quick test_zero_exec_times;
  ]
