(* The domain work-pool: ordering, exception propagation, nesting, and the
   property the whole parallel layer rests on — [--jobs N] produces results
   identical to a sequential run, for the pool primitives themselves and
   for the allocation entry points built on them. *)

module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
open Helpers

(* Every test restores the sequential default so suite order never
   matters. *)
let with_jobs n f =
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let test_sequential_map () =
  Alcotest.(check (list int))
    "jobs=1 map is List.map" [ 2; 4; 6 ]
    (Par.map (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty list" [] (Par.map (fun x -> x) []);
  Alcotest.(check int) "jobs () is 1" 1 (Par.jobs ())

let test_parallel_map_order () =
  with_jobs 4 (fun () ->
      Alcotest.(check int) "jobs () is 4" 4 (Par.jobs ());
      let xs = List.init 100 Fun.id in
      (* Uneven work so completion order differs from input order. *)
      let f x =
        let acc = ref 0 in
        for i = 0 to (x mod 7) * 1000 do
          acc := !acc + i
        done;
        ignore !acc;
        x * x
      in
      Alcotest.(check (list int))
        "results in input order" (List.map f xs) (Par.map f xs))

let test_mapi () =
  with_jobs 3 (fun () ->
      Alcotest.(check (list int))
        "mapi passes indices" [ 10; 21; 32; 43 ]
        (Par.mapi (fun i x -> (10 * x) + i) [ 1; 2; 3; 4 ]))

let test_map_reduce () =
  with_jobs 4 (fun () ->
      (* A non-associative, non-commutative combine: the fold must happen
         left-to-right in input order to produce this exact string. *)
      let s =
        Par.map_reduce
          ~map:string_of_int
          ~combine:(fun acc x -> acc ^ "," ^ x)
          ~init:"" (List.init 20 Fun.id)
      in
      Alcotest.(check string)
        "deterministic fold order"
        (List.fold_left
           (fun acc x -> acc ^ "," ^ string_of_int x)
           ""
           (List.init 20 Fun.id))
        s)

exception Boom of int

let test_exception_propagation () =
  with_jobs 4 (fun () ->
      let executed = Atomic.make 0 in
      let f x =
        Atomic.incr executed;
        if x mod 3 = 1 then raise (Boom x) else x
      in
      (match Par.map f (List.init 12 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          Alcotest.(check int) "smallest failing index wins" 1 x);
      Alcotest.(check int)
        "every task ran despite the failures" 12 (Atomic.get executed))

let test_nested_map () =
  with_jobs 3 (fun () ->
      Alcotest.(check bool) "not inside a task at top level" false
        (Par.inside_task ());
      let grid =
        Par.map
          (fun row ->
            Alcotest.(check bool) "inside a task" true (Par.inside_task ());
            Par.map (fun col -> (10 * row) + col) [ 0; 1; 2 ])
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Alcotest.(check (list (list int)))
        "nested batches complete correctly"
        [
          [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ];
          [ 50; 51; 52 ]; [ 60; 61; 62 ];
        ]
        grid;
      Alcotest.(check bool) "flag restored after the batch" false
        (Par.inside_task ()))

let test_resize () =
  with_jobs 2 (fun () ->
      Alcotest.(check int) "2 jobs" 2 (Par.jobs ());
      Par.set_jobs 5;
      Alcotest.(check int) "resized to 5" 5 (Par.jobs ());
      Alcotest.(check (list int))
        "map still correct after resize" [ 1; 4; 9 ]
        (Par.map (fun x -> x * x) [ 1; 2; 3 ]);
      Par.set_jobs 1;
      Alcotest.(check int) "back to sequential" 1 (Par.jobs ()))

let prop_map_equals_list_map =
  qcheck ~count:50 "parallel map == List.map on random lists"
    QCheck2.Gen.(list (int_range (-1000) 1000))
    (fun xs ->
      with_jobs 3 (fun () ->
          Par.map (fun x -> (x * 7) - 13) xs = List.map (fun x -> (x * 7) - 13) xs))

(* ----- results of the allocation entry points are job-count-invariant --- *)

let random_app seed set =
  let rng = Gen.Rng.create ~seed in
  Gen.Sdfgen.generate rng
    (Gen.Benchsets.set_profile set)
    ~proc_types:Gen.Benchsets.proc_types
    ~name:(Printf.sprintf "j%d" seed)

(* Everything observable about an allocation except the wall-clock stats. *)
let alloc_key (a : Core.Strategy.allocation) =
  ( Array.to_list a.Core.Strategy.binding,
    Array.to_list a.Core.Strategy.slices,
    Rat.to_string a.Core.Strategy.throughput,
    a.Core.Strategy.stats.Core.Strategy.throughput_checks,
    Array.to_list
      (Array.map
         (Option.map (fun (s : Core.Schedule.t) ->
              ( Array.to_list s.Core.Schedule.prefix,
                Array.to_list s.Core.Schedule.period )))
         a.Core.Strategy.schedules) )

let flow_key (r : Core.Flow.result) =
  ( Option.map alloc_key r.Core.Flow.allocation,
    List.map
      (fun (at : Core.Flow.attempt) ->
        match at.Core.Flow.outcome with
        | Ok a -> "ok:" ^ Rat.to_string a.Core.Strategy.throughput
        | Error (Core.Strategy.Bind_failed f) ->
            Printf.sprintf "bind:%d" f.Core.Binding_step.failed_actor
        | Error Core.Strategy.Schedule_failed -> "schedule"
        | Error (Core.Strategy.Slice_failed f) ->
            Printf.sprintf "slice:%d" f.Core.Slice_alloc.checks
        | Error (Core.Strategy.Budget_exhausted r) ->
            "budget:" ^ Budget.reason_label r)
      r.Core.Flow.attempts )

let prop_flow_jobs_invariant =
  qcheck ~count:6 "Flow.allocate_with_retry: jobs=2 == jobs=1"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let app = random_app seed (1 + (seed mod 3)) in
      let arch = Gen.Benchsets.architecture (seed mod 3) in
      let run () =
        Analysis.Memo.clear_all ();
        flow_key (Core.Flow.allocate_with_retry ~max_states:50_000 app arch)
      in
      let seq = run () in
      let par = with_jobs 2 run in
      seq = par)

let report_key (r : Core.Multi_app.report) =
  ( List.map alloc_key r.Core.Multi_app.allocations,
    List.map
      (fun (a : Appgraph.t) -> a.Appgraph.app_name)
      r.Core.Multi_app.rejected,
    r.Core.Multi_app.wheel_used,
    r.Core.Multi_app.memory_used,
    r.Core.Multi_app.connections_used )

let prop_multi_app_jobs_invariant =
  qcheck ~count:4 "Multi_app.allocate_until_failure: jobs=2 == jobs=1"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let apps = List.init 4 (fun i -> random_app (seed + i) (1 + (i mod 3))) in
      let arch = Gen.Benchsets.architecture (seed mod 3) in
      let run () =
        Analysis.Memo.clear_all ();
        report_key
          (Core.Multi_app.allocate_until_failure
             ~weights:(Core.Cost.weights 0. 1. 2.)
             ~policy:Core.Multi_app.Skip_failed ~max_states:50_000 apps arch)
      in
      let seq = run () in
      let par = with_jobs 2 run in
      seq = par)

let suite =
  [
    Alcotest.test_case "sequential map" `Quick test_sequential_map;
    Alcotest.test_case "parallel map order" `Quick test_parallel_map_order;
    Alcotest.test_case "mapi" `Quick test_mapi;
    Alcotest.test_case "map_reduce fold order" `Quick test_map_reduce;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "pool resize" `Quick test_resize;
    prop_map_equals_list_map;
    prop_flow_jobs_invariant;
    prop_multi_app_jobs_invariant;
  ]
