#!/usr/bin/env bash
# Smoke-test the allocation daemon end to end: boot it, drive mixed-tier
# flow traffic through the client mode, assert the served journal is
# byte-identical to the one-shot sdf3_batch driver over the same cases
# (for the uncapped batch-tier sweeps), assert the repeated sweep hit the
# shared cross-request memo cache, then drain and expect a clean exit.
#
# `make serve-smoke` runs this; CI's serve-smoke job is the same scenario.
set -euo pipefail

BIN=${BIN:-_build/install/default/bin}
WORK=$(mktemp -d serve-smoke.XXXXXX)
trap 'rm -rf "$WORK"' EXIT

mkdir "$WORK/cases"
"$BIN/sdf3_generate" --set 1 -n 4 -o "$WORK/cases" --xml >/dev/null

# The one-shot batch driver is the byte-identity oracle.
"$BIN/sdf3_batch" "$WORK/cases" --platform mesh3x3 \
  --journal "$WORK/reference.jsonl" >/dev/null

timeout 300 "$BIN/sdf3_serve" --socket "$WORK/serve.sock" \
  --root "$WORK/cases" --journal "$WORK/served.jsonl" \
  --metrics "$WORK/serve-metrics.json" --max-inflight 2 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON=$!

# Every case once per tier; the final batch sweep repeats the first, so
# it must be answered from the shared cache (asserted on the metrics).
for tier in batch standard interactive batch; do
  for case in s1q0g0 s1q0g1 s1q0g2 s1q0g3; do
    "$BIN/sdf3_serve" --socket "$WORK/serve.sock" --request \
      "{\"id\":\"$tier-$case\",\"verb\":\"flow\",\"file\":\"$case.xml\",\"platform\":\"mesh3x3\",\"tier\":\"$tier\"}" \
      >> "$WORK/replies.out"
  done
done
test "$(grep -c '"status":"ok"' "$WORK/replies.out")" -eq 16

"$BIN/sdf3_serve" --socket "$WORK/serve.sock" --request 'garbage' \
  | grep -q '"status":"error"'
"$BIN/sdf3_serve" --socket "$WORK/serve.sock" \
  --request '{"id":"d","verb":"drain"}' | grep -q '"status":"ok"'

rc=0; wait "$DAEMON" || rc=$?
cat "$WORK/daemon.log"
if [ "$rc" -eq 124 ]; then
  echo "serve-smoke: daemon did not drain within its 300 s guard" >&2
  exit 124
elif [ "$rc" -ne 0 ]; then
  echo "serve-smoke: daemon exited $rc instead of draining cleanly" >&2
  exit "$rc"
fi
test ! -e "$WORK/serve.sock"

# Byte-identity of the batch-tier sweeps (lines 1-4 and 13-16) against
# the one-shot driver.
cmp "$WORK/reference.jsonl" <(head -4 "$WORK/served.jsonl")
cmp "$WORK/reference.jsonl" <(tail -4 "$WORK/served.jsonl")

# The repeated sweep must have warmed and then hit the shared cache.
grep -Eq '"cache\.hits": [1-9]' "$WORK/serve-metrics.json"
grep -Eq '"cache\.constrained\.hits": [1-9]' "$WORK/serve-metrics.json"
grep -Eq '"server\.verb\.flow": 16(,|$)' "$WORK/serve-metrics.json"

echo "serve-smoke: ok"
