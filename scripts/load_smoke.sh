#!/usr/bin/env bash
# ~30 s load smoke: a few hundred concurrent clients against a freshly
# forked daemon, seeded, with the drain landing while requests are still
# in flight. Asserts every invariant oracle passed (no lost or duplicated
# responses, honest overload rejections, byte-checked journal, tiered
# latency, clean exit-0 drain), that the priority-admission counters
# actually fired under the load, and — belt and braces on top of the
# harness's own byte-check — that the journal is a sub-multiset of a
# sequential sdf3_batch re-run over the same corpus.
#
# `make load-smoke` runs this; CI's load-smoke job is the same scenario
# plus the latency-report artifact upload.
set -euo pipefail

BIN=${BIN:-_build/install/default/bin}
OUT=${OUT:-load-smoke-out}
rm -rf "$OUT"
mkdir -p "$OUT/cases"

"$BIN/sdf3_generate" --set 1 -n 4 -o "$OUT/cases" --xml >/dev/null

timeout 240 "$BIN/sdf3_loadtest" --serve-bin "$BIN/sdf3_serve" \
  --root "$OUT/cases" --socket "$OUT/load.sock" \
  --journal "$OUT/load.jsonl" --daemon-log "$OUT/daemon.log" \
  --report "$OUT/load-report.json" \
  --clients 300 --requests 30 --seed 42 --think-ms 20 \
  --drain-after-s 0.5 | tee "$OUT/load.out"

# Every oracle green (the harness exits nonzero otherwise; assert the
# verdict lines anyway so a reporting regression cannot slip through).
test "$(grep -c "oracle .*: PASS" "$OUT/load.out")" -eq 5
! grep -q "FAIL" "$OUT/load.out"

# The reserved-slot admission must actually have fired: privileged
# admissions into the reserve, and normal work blocked while reserved
# slots were free.
grep -Eq 'reserved_admits=[1-9][0-9]* normal_blocked=[1-9][0-9]*' \
  "$OUT/load.out"

# Journal sub-multiset check against the one-shot batch driver.
"$BIN/sdf3_batch" "$OUT/cases" --platform mesh3x3 \
  --journal "$OUT/reference.jsonl" >/dev/null
sort -u "$OUT/load.jsonl" > "$OUT/load.sorted"
sort -u "$OUT/reference.jsonl" > "$OUT/reference.sorted"
test -z "$(comm -23 "$OUT/load.sorted" "$OUT/reference.sorted")"

echo "load-smoke: ok"
