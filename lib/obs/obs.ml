(* Telemetry core: named counters, gauges, timers with online stddev,
   log-bucketed histograms, hierarchical spans, structured events and a
   Chrome-trace-event timeline, backed by an in-memory registry with a
   JSON serializer/reader and an optional Logs-based live sink.

   Everything is disabled by default: every recording entry point checks a
   single flag, so instrumented hot paths cost one branch while telemetry
   is off. The registry is process-global and thread-safe: mutations take
   one mutex (contended only while telemetry is enabled), the span stack is
   domain-local, and [unrecorded] suppresses recording on the calling
   domain so speculative parallel work does not pollute the registry. *)

let enabled_flag = ref false

(* Per-domain suppression, so [unrecorded] on one worker domain does not
   silence its siblings. The indirection through a ref keeps [DLS.get]
   cheap on the hot path. *)
let suppressed_key = Domain.DLS.new_key (fun () -> ref false)
let enabled () = !enabled_flag && not !(Domain.DLS.get suppressed_key)
let set_enabled b = enabled_flag := b

let unrecorded f =
  let s = Domain.DLS.get suppressed_key in
  let saved = !s in
  s := true;
  Fun.protect ~finally:(fun () -> s := saved) f

(* One lock for the whole registry: recording is rare (telemetry off) or
   cheap (an int/float update) relative to the analyses being measured. *)
let reg_mutex = Mutex.create ()

let locked f =
  Mutex.lock reg_mutex;
  match f () with
  | v ->
      Mutex.unlock reg_mutex;
      v
  | exception e ->
      Mutex.unlock reg_mutex;
      raise e

let log_src = Logs.Src.create "sdfalloc.obs" ~doc:"Telemetry"

module Log = (val Logs.src_log log_src)

type field = String of string | Int of int | Float of float | Bool of bool

type timer_state = {
  mutable t_count : int;
  mutable t_total : float;
  mutable t_min : float;
  mutable t_max : float;
  (* Welford's online mean/M2, so stddev costs two float updates in place
     and no allocation on the record path. *)
  mutable t_mean : float;
  mutable t_m2 : float;
}

(* Power-of-two value buckets: index 64 holds [0.5, 1), one [Float.frexp]
   per record. 128 buckets cover 2^-64 .. 2^63, far beyond any duration or
   rate this flow measures; everything outside clamps to the edge
   buckets. *)
let hist_buckets = 128

let hist_zero = 64

type histogram_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_counts : int array;
}

type event = { ev_kind : string; ev_fields : (string * field) list }

type output =
  | Span_end of { path : string; seconds : float }
  | Event_record of { kind : string; fields : (string * field) list }

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
let gauges : (string, float) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer_state) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram_state) Hashtbl.t = Hashtbl.create 16

(* Newest first; serialized oldest first. Capped so that a long benchmark
   run cannot grow the registry without bound; the overflow is counted per
   event kind. *)
let events : event list ref = ref []
let events_stored = ref 0
let events_dropped : (string, int) Hashtbl.t = Hashtbl.create 8
let max_events = ref 10_000
let set_event_cap n = locked (fun () -> max_events := max 0 n)
let sinks : (output -> unit) list ref = ref []
let notify o = List.iter (fun f -> f o) !sinks

let reset () =
  locked (fun () ->
      (* Zero counters and histograms in place so handles from
         {!Counter.make} / {!Histogram.make} stay live. *)
      Hashtbl.iter (fun _ r -> r := 0) counters;
      Hashtbl.iter
        (fun _ h ->
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- 0.;
          h.h_max <- 0.;
          Array.fill h.h_counts 0 hist_buckets 0)
        histograms;
      Hashtbl.reset gauges;
      Hashtbl.reset timers;
      events := [];
      events_stored := 0;
      Hashtbl.reset events_dropped)

let sorted_tbl tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

module Counter = struct
  type t = int ref

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add counters name r;
            r)

  let incr ?(by = 1) t =
    if enabled () then locked (fun () -> t := !t + by)

  let add name by =
    if enabled () then begin
      let r = make name in
      locked (fun () -> r := !r + by)
    end

  let value name =
    locked (fun () ->
        match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)
end

module Gauge = struct
  let set name v =
    if enabled () then locked (fun () -> Hashtbl.replace gauges name v)

  let set_int name v = set name (float_of_int v)
  let value name = locked (fun () -> Hashtbl.find_opt gauges name)
end

module Timer = struct
  type snapshot = {
    count : int;
    total_s : float;
    min_s : float;
    max_s : float;
    stddev_s : float;
  }

  let record_always name dt =
    locked (fun () ->
        match Hashtbl.find_opt timers name with
        | Some t ->
            t.t_count <- t.t_count + 1;
            t.t_total <- t.t_total +. dt;
            if dt < t.t_min then t.t_min <- dt;
            if dt > t.t_max then t.t_max <- dt;
            let d = dt -. t.t_mean in
            t.t_mean <- t.t_mean +. (d /. float_of_int t.t_count);
            t.t_m2 <- t.t_m2 +. (d *. (dt -. t.t_mean))
        | None ->
            Hashtbl.add timers name
              {
                t_count = 1;
                t_total = dt;
                t_min = dt;
                t_max = dt;
                t_mean = dt;
                t_m2 = 0.;
              })

  let record name dt = if enabled () then record_always name dt

  (* Population stddev; for n = 1 the M2 term is 0 by construction. *)
  let stddev t =
    if t.t_count = 0 then 0. else sqrt (t.t_m2 /. float_of_int t.t_count)

  (* Wall-clock, not [Sys.time]: process CPU time sums over every running
     domain, so it is meaningless for a span measured on one domain of a
     parallel run. *)
  let now () = Unix.gettimeofday ()

  let time name f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now () in
      Fun.protect ~finally:(fun () -> record_always name (now () -. t0)) f
    end

  let snapshot name =
    locked (fun () ->
        Option.map
          (fun t ->
            {
              count = t.t_count;
              total_s = t.t_total;
              min_s = t.t_min;
              max_s = t.t_max;
              stddev_s = stddev t;
            })
          (Hashtbl.find_opt timers name))
end

module Histogram = struct
  type t = histogram_state

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt histograms name with
        | Some h -> h
        | None ->
            let h =
              {
                h_count = 0;
                h_sum = 0.;
                h_min = 0.;
                h_max = 0.;
                h_counts = Array.make hist_buckets 0;
              }
            in
            Hashtbl.add histograms name h;
            h)

  let bucket_of v =
    if v <= 0. then 0
    else begin
      let _, e = Float.frexp v in
      let i = e + hist_zero in
      if i < 1 then 1 else if i >= hist_buckets then hist_buckets - 1 else i
    end

  (* Geometric midpoint of bucket [i] = [2^(i-65), 2^(i-64)). *)
  let bucket_rep i = Float.ldexp (sqrt 0.5) (i - hist_zero)

  let record h v =
    if enabled () then
      locked (fun () ->
          if h.h_count = 0 then begin
            h.h_min <- v;
            h.h_max <- v
          end
          else begin
            if v < h.h_min then h.h_min <- v;
            if v > h.h_max then h.h_max <- v
          end;
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          let i = bucket_of v in
          h.h_counts.(i) <- h.h_counts.(i) + 1)

  let add name v = if enabled () then record (make name) v

  let time h f =
    if not (enabled ()) then f ()
    else begin
      let t0 = Timer.now () in
      Fun.protect ~finally:(fun () -> record h (Timer.now () -. t0)) f
    end

  (* Quantile from the bucket cumulative; exact within one bucket (a
     factor of 2), clamped to the observed range so degenerate histograms
     report exact values. Caller holds the registry lock. *)
  let quantile_locked h q =
    if h.h_count = 0 then 0.
    else begin
      let target =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let rec walk i cum =
        if i >= hist_buckets then h.h_max
        else begin
          let cum = cum + h.h_counts.(i) in
          if cum >= target then
            if i = 0 then h.h_min else bucket_rep i
          else walk (i + 1) cum
        end
      in
      let v = walk 0 0 in
      if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
    end

  type snapshot = {
    count : int;
    p50 : float;
    p90 : float;
    p99 : float;
    min : float;
    max : float;
  }

  let snap_locked h =
    {
      count = h.h_count;
      p50 = quantile_locked h 0.50;
      p90 = quantile_locked h 0.90;
      p99 = quantile_locked h 0.99;
      min = h.h_min;
      max = h.h_max;
    }

  let snapshot name =
    locked (fun () ->
        Option.map snap_locked (Hashtbl.find_opt histograms name))

  let all () =
    locked (fun () ->
        Hashtbl.fold (fun k h acc -> (k, snap_locked h) :: acc) histograms []
        |> List.sort (fun (a, _) (b, _) -> compare (a : string) b))
end

let counters_snapshot () = locked (fun () -> sorted_tbl counters (fun r -> !r))

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Assoc of (string * t) list

  let escape buf s =
    Stdlib.String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* JSON has no inf/nan literal; clamp to 0 rather than emit an invalid
     document. *)
  let number f =
    if not (Float.is_finite f) then "0"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec emit buf ind = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (number f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Stdlib.String.make (ind + 2) ' ');
            emit buf (ind + 2) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Stdlib.String.make ind ' ');
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Stdlib.String.make (ind + 2) ' ');
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            emit buf (ind + 2) v)
          kvs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Stdlib.String.make ind ' ');
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 1024 in
    emit buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  (* Single-line form for newline-delimited protocols (the sdf3_serve wire
     format and the batch/server journals): no spaces, no trailing
     newline, same escaping as [to_string]. *)
  let rec emit_compact buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (number f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit_compact buf item)
          items;
        Buffer.add_char buf ']'
    | Assoc kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            emit_compact buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_compact_string v =
    let buf = Buffer.create 256 in
    emit_compact buf v;
    Buffer.contents buf

  exception Parse_error of string

  (* Recursive-descent reader for the documents this library writes (and
     ordinary machine-generated JSON). Non-ASCII \uXXXX escapes are kept
     verbatim: the serializer never emits them and the consumers
     (validator, report tables) only compare or re-escape strings. *)
  let parse s =
    let n = Stdlib.String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = Stdlib.String.length lit in
      if !pos + l <= n && Stdlib.String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let h = Stdlib.String.sub s !pos 4 in
      pos := !pos + 4;
      match int_of_string_opt ("0x" ^ h) with
      | Some c -> (c, h)
      | None -> fail "invalid \\u escape"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            let c = s.[!pos] in
            incr pos;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let code, raw = hex4 () in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf ("\\u" ^ raw)
            | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
            loop ()
        | c ->
            incr pos;
            Buffer.add_char buf c;
            loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        incr pos
      done;
      let lex = Stdlib.String.sub s start (!pos - start) in
      let floaty =
        Stdlib.String.exists
          (fun c -> c = '.' || c = 'e' || c = 'E')
          lex
      in
      if floaty then
        match float_of_string_opt lex with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "invalid number %S" lex)
      else
        match int_of_string_opt lex with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt lex with
            | Some f -> Float f
            | None -> fail (Printf.sprintf "invalid number %S" lex))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Assoc []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Assoc (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
      | None -> fail "unexpected end of input"
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then
          Error (Printf.sprintf "trailing garbage at offset %d" !pos)
        else Ok v
    | exception Parse_error msg -> Error msg

  let member k = function Assoc kvs -> List.assoc_opt k kvs | _ -> None
end

let field_to_json = function
  | String s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

module Trace = struct
  type ev = {
    e_name : string;
    e_ph : char;
    e_ts : float; (* microseconds since the trace origin *)
    e_tid : int;
    e_cat : string; (* "" = none *)
    e_id : int; (* async arc id; -1 = none *)
    e_args : (string * field) list;
  }

  let started_flag = ref false
  let origin = ref 0.
  let buf : ev list ref = ref [] (* newest first *)
  let stored = ref 0
  let dropped_count = ref 0
  let cap = ref 1_000_000
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 16
  let thread_names : (int, string) Hashtbl.t = Hashtbl.create 16

  let start () =
    locked (fun () ->
        started_flag := true;
        if !origin = 0. then origin := Unix.gettimeofday ())

  let active () = !started_flag
  let set_cap n = locked (fun () -> cap := max 0 n)
  let dropped () = locked (fun () -> !dropped_count)

  let reset () =
    locked (fun () ->
        started_flag := false;
        origin := 0.;
        buf := [];
        stored := 0;
        dropped_count := 0;
        Hashtbl.reset last_ts;
        Hashtbl.reset thread_names)

  let self_tid () = (Domain.self () :> int)

  let set_thread_name name =
    let tid = self_tid () in
    locked (fun () -> Hashtbl.replace thread_names tid name)

  (* The global flag only, not the domain-local suppression: a started
     trace records [unrecorded] (speculative) domains too — the timeline
     exists to show where the pool spent its time. *)
  let recording () = !started_flag && !enabled_flag

  let emit_ev ?(cat = "") ?(id = -1) ~ph ~args name =
    if recording () then begin
      let tid = self_tid () in
      locked (fun () ->
          if !stored >= !cap then incr dropped_count
          else begin
            (* Timestamp under the lock: array order is emission order,
               and clamping makes each track non-decreasing even if the
               wall clock steps backwards. *)
            let ts = (Unix.gettimeofday () -. !origin) *. 1e6 in
            let ts =
              match Hashtbl.find_opt last_ts tid with
              | Some prev when ts < prev -> prev
              | _ -> ts
            in
            Hashtbl.replace last_ts tid ts;
            buf :=
              {
                e_name = name;
                e_ph = ph;
                e_ts = ts;
                e_tid = tid;
                e_cat = cat;
                e_id = id;
                e_args = args;
              }
              :: !buf;
            incr stored
          end)
    end

  let span_begin ?cat name = emit_ev ?cat ~ph:'B' ~args:[] name
  let span_end ?cat name = emit_ev ?cat ~ph:'E' ~args:[] name
  let instant ?(args = []) name = emit_ev ~ph:'i' ~args name
  let counter name v = emit_ev ~ph:'C' ~args:[ ("value", Float v) ] name

  let async_begin ?(cat = "async") ~id name =
    emit_ev ~cat ~id ~ph:'b' ~args:[] name

  let async_end ?(cat = "async") ~id name =
    emit_ev ~cat ~id ~ph:'e' ~args:[] name

  let meta_json ~tid ~name ~value =
    Json.Assoc
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("ts", Json.Float 0.);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Assoc [ ("name", Json.String value) ]);
      ]

  let ev_json e =
    let fields =
      [
        ("name", Json.String e.e_name);
        ("ph", Json.String (Stdlib.String.make 1 e.e_ph));
        ("ts", Json.Float e.e_ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int e.e_tid);
      ]
    in
    let fields =
      if e.e_cat = "" then fields
      else fields @ [ ("cat", Json.String e.e_cat) ]
    in
    let fields =
      if e.e_id < 0 then fields else fields @ [ ("id", Json.Int e.e_id) ]
    in
    let fields =
      if e.e_ph = 'i' then fields @ [ ("s", Json.String "t") ] else fields
    in
    match e.e_args with
    | [] -> Json.Assoc fields
    | args ->
        Json.Assoc
          (fields
          @ [
              ( "args",
                Json.Assoc
                  (List.map (fun (k, v) -> (k, field_to_json v)) args) );
            ])

  let json () =
    locked (fun () ->
        let tids = Hashtbl.create 16 in
        Hashtbl.iter (fun tid _ -> Hashtbl.replace tids tid ()) last_ts;
        Hashtbl.iter (fun tid _ -> Hashtbl.replace tids tid ()) thread_names;
        let tid_list =
          Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
          |> List.sort compare
        in
        let metas =
          meta_json ~tid:0 ~name:"process_name" ~value:"sdfalloc"
          :: List.map
               (fun tid ->
                 let value =
                   match Hashtbl.find_opt thread_names tid with
                   | Some n -> n
                   | None -> Printf.sprintf "domain %d" tid
                 in
                 meta_json ~tid ~name:"thread_name" ~value)
               tid_list
        in
        Json.List (metas @ List.rev_map ev_json !buf))

  let to_string () = Json.to_string (json ())
  let write_channel oc = output_string oc (to_string ())

  type summary = { events : int; tracks : int }

  let validate (j : Json.t) =
    match j with
    | Json.List items -> (
        let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
        let seen_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
        let tracks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        let count = ref 0 in
        let fail i msg = failwith (Printf.sprintf "record %d: %s" i msg) in
        try
          List.iteri
            (fun i item ->
              match item with
              | Json.Assoc kvs ->
                  let str k =
                    match List.assoc_opt k kvs with
                    | Some (Json.String s) -> Some s
                    | _ -> None
                  in
                  let int_ k =
                    match List.assoc_opt k kvs with
                    | Some (Json.Int v) -> Some v
                    | _ -> None
                  in
                  let num k =
                    match List.assoc_opt k kvs with
                    | Some (Json.Int v) -> Some (float_of_int v)
                    | Some (Json.Float f) -> Some f
                    | _ -> None
                  in
                  let ph =
                    match str "ph" with
                    | Some s when Stdlib.String.length s = 1 -> s.[0]
                    | Some s -> fail i (Printf.sprintf "bad ph %S" s)
                    | None -> fail i "missing ph"
                  in
                  if not (Stdlib.String.contains "BEXibeCM" ph) then
                    fail i (Printf.sprintf "unknown ph '%c'" ph);
                  let name =
                    match str "name" with
                    | Some s -> s
                    | None -> fail i "missing name"
                  in
                  if int_ "pid" = None then fail i "missing pid";
                  let tid =
                    match int_ "tid" with
                    | Some t -> t
                    | None -> fail i "missing tid"
                  in
                  let ts =
                    match num "ts" with
                    | Some t when Float.is_finite t && t >= 0. -> t
                    | Some _ -> fail i "ts not a finite non-negative number"
                    | None -> fail i "missing ts"
                  in
                  if ph <> 'M' then begin
                    incr count;
                    Hashtbl.replace tracks tid ();
                    (match Hashtbl.find_opt seen_ts tid with
                    | Some prev when ts < prev ->
                        fail i (Printf.sprintf "ts goes backwards on tid %d" tid)
                    | _ -> ());
                    Hashtbl.replace seen_ts tid ts;
                    match ph with
                    | 'B' ->
                        let st =
                          Option.value ~default:[]
                            (Hashtbl.find_opt stacks tid)
                        in
                        Hashtbl.replace stacks tid (name :: st)
                    | 'E' -> (
                        match Hashtbl.find_opt stacks tid with
                        | Some (top :: rest) ->
                            if top <> name then
                              fail i
                                (Printf.sprintf
                                   "E %S closes open span %S on tid %d" name
                                   top tid);
                            Hashtbl.replace stacks tid rest
                        | _ ->
                            fail i
                              (Printf.sprintf "E %S with no open span on tid %d"
                                 name tid))
                    | _ -> ()
                  end
              | _ -> fail i "not an object")
            items;
          Hashtbl.iter
            (fun tid st ->
              match st with
              | [] -> ()
              | top :: _ ->
                  failwith
                    (Printf.sprintf "unclosed span %S on tid %d" top tid))
            stacks;
          Ok { events = !count; tracks = Hashtbl.length tracks }
        with Failure msg -> Error msg)
    | _ -> Error "trace is not a JSON array"
end

module Span = struct
  (* One stack per domain: spans opened on a worker nest under that
     worker's own enclosing spans, never under a sibling's. *)
  let stack_key = Domain.DLS.new_key (fun () -> ref [])
  let stack () = Domain.DLS.get stack_key
  let current () = List.rev !(stack ())

  let with_ name f =
    let tele = enabled () in
    let tracing = Trace.recording () in
    if not (tele || tracing) then f ()
    else if not tele then begin
      (* Suppressed domain with a live trace: timeline-only, tagged so the
         viewer can tell speculative work from authoritative work. *)
      Trace.span_begin ~cat:"speculative" name;
      Fun.protect
        ~finally:(fun () -> Trace.span_end ~cat:"speculative" name)
        f
    end
    else begin
      let stack = stack () in
      stack := name :: !stack;
      let path = String.concat "/" (List.rev !stack) in
      if tracing then Trace.span_begin name;
      let t0 = Timer.now () in
      Fun.protect
        ~finally:(fun () ->
          (match !stack with _ :: tl -> stack := tl | [] -> ());
          let dt = Timer.now () -. t0 in
          Timer.record_always path dt;
          if tracing then Trace.span_end name;
          notify (Span_end { path; seconds = dt }))
        f
    end
end

module Event = struct
  type nonrec field = field =
    | String of string
    | Int of int
    | Float of float
    | Bool of bool

  let emit kind fields =
    if enabled () then begin
      locked (fun () ->
          if !events_stored >= !max_events then
            Hashtbl.replace events_dropped kind
              (1
              + Option.value ~default:0 (Hashtbl.find_opt events_dropped kind)
              )
          else begin
            events := { ev_kind = kind; ev_fields = fields } :: !events;
            incr events_stored
          end);
      Trace.instant ~args:fields kind;
      notify (Event_record { kind; fields })
    end

  let count kind =
    locked (fun () ->
        List.fold_left
          (fun n e -> if e.ev_kind = kind then n + 1 else n)
          0 !events)

  let dropped kind =
    locked (fun () ->
        Option.value ~default:0 (Hashtbl.find_opt events_dropped kind))

  let all () =
    locked (fun () -> List.rev_map (fun e -> (e.ev_kind, e.ev_fields)) !events)
end

module Heartbeat = struct
  type st = {
    mutable hb_valid : bool;
    mutable hb_time : float;
    mutable hb_states : int;
  }

  let key =
    Domain.DLS.new_key (fun () ->
        { hb_valid = false; hb_time = 0.; hb_states = 0 })

  let hist = Histogram.make "engine.states_per_sec"

  let probe ~states =
    if enabled () then begin
      let st = Domain.DLS.get key in
      let now = Unix.gettimeofday () in
      if st.hb_valid && states >= st.hb_states then begin
        if now > st.hb_time then begin
          let rate =
            float_of_int (states - st.hb_states) /. (now -. st.hb_time)
          in
          Histogram.record hist rate;
          Trace.counter "engine.states_per_sec" rate;
          st.hb_time <- now;
          st.hb_states <- states
        end
        (* else: the clock has not advanced measurably; keep accumulating
           against the same reference point. *)
      end
      else begin
        (* First probe on this domain, or the state count restarted: a new
           exploration began — re-base without recording a sample. *)
        st.hb_valid <- true;
        st.hb_time <- now;
        st.hb_states <- states
      end
    end
end

let snapshot_json () =
  locked @@ fun () ->
  let timer_json t =
    Json.Assoc
      [
        ("count", Json.Int t.t_count);
        ("total_s", Json.Float t.t_total);
        ( "mean_s",
          Json.Float
            (if t.t_count = 0 then 0. else t.t_total /. float_of_int t.t_count)
        );
        ("stddev_s", Json.Float (Timer.stddev t));
        ("min_s", Json.Float t.t_min);
        ("max_s", Json.Float t.t_max);
      ]
  in
  let histogram_json h =
    Json.Assoc
      [
        ("count", Json.Int h.h_count);
        ("p50", Json.Float (Histogram.quantile_locked h 0.50));
        ("p90", Json.Float (Histogram.quantile_locked h 0.90));
        ("p99", Json.Float (Histogram.quantile_locked h 0.99));
        ("max", Json.Float h.h_max);
      ]
  in
  let event_json e =
    Json.Assoc
      (("kind", Json.String e.ev_kind)
      :: List.map (fun (k, v) -> (k, field_to_json v)) e.ev_fields)
  in
  Json.Assoc
    [
      ("schema_version", Json.Int 2);
      ("counters", Json.Assoc (sorted_tbl counters (fun r -> Json.Int !r)));
      ("gauges", Json.Assoc (sorted_tbl gauges (fun v -> Json.Float v)));
      ("timers", Json.Assoc (sorted_tbl timers timer_json));
      ("histograms", Json.Assoc (sorted_tbl histograms histogram_json));
      ("events", Json.List (List.rev_map event_json !events));
      ( "events_dropped",
        Json.Assoc (sorted_tbl events_dropped (fun n -> Json.Int n)) );
    ]

let json_string () = Json.to_string (snapshot_json ())
let write_channel oc = output_string oc (json_string ())

module Sink = struct
  type nonrec output = output =
    | Span_end of { path : string; seconds : float }
    | Event_record of { kind : string; fields : (string * field) list }

  let register f = sinks := f :: !sinks
  let clear () = sinks := []

  let pp_field ppf (k, v) =
    match v with
    | String s -> Format.fprintf ppf "%s=%s" k s
    | Int i -> Format.fprintf ppf "%s=%d" k i
    | Float f -> Format.fprintf ppf "%s=%g" k f
    | Bool b -> Format.fprintf ppf "%s=%b" k b

  let logs () =
    register (function
      | Span_end { path; seconds } ->
          Log.debug (fun m -> m "span %s %.6fs" path seconds)
      | Event_record { kind; fields } ->
          Log.debug (fun m ->
              m "event %s [%a]" kind
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
                   pp_field)
                fields))
end

module Report = struct
  let pp ppf () =
    locked @@ fun () ->
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "counter %-42s %d@," k v)
      (sorted_tbl counters (fun r -> !r));
    List.iter
      (fun (k, v) -> Format.fprintf ppf "gauge   %-42s %g@," k v)
      (sorted_tbl gauges Fun.id);
    List.iter
      (fun (k, t) ->
        Format.fprintf ppf "timer   %-42s n=%d total=%.6fs@," k t.t_count
          t.t_total)
      (sorted_tbl timers Fun.id);
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "hist    %-42s n=%d p50=%g p99=%g max=%g@," k
          h.h_count
          (Histogram.quantile_locked h 0.50)
          (Histogram.quantile_locked h 0.99)
          h.h_max)
      (sorted_tbl histograms Fun.id);
    Format.fprintf ppf "@]"

  let log () = Log.info (fun m -> m "@[<v>telemetry:@,%a@]" pp ())
end
