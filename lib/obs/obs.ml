(* Telemetry core: named counters, gauges, histogram-style timers,
   hierarchical spans and structured events, backed by an in-memory
   registry with a JSON serializer and an optional Logs-based live sink.

   Everything is disabled by default: every recording entry point checks a
   single flag, so instrumented hot paths cost one branch while telemetry
   is off. The registry is process-global and thread-safe: mutations take
   one mutex (contended only while telemetry is enabled), the span stack is
   domain-local, and [unrecorded] suppresses recording on the calling
   domain so speculative parallel work does not pollute the registry. *)

let enabled_flag = ref false

(* Per-domain suppression, so [unrecorded] on one worker domain does not
   silence its siblings. The indirection through a ref keeps [DLS.get]
   cheap on the hot path. *)
let suppressed_key = Domain.DLS.new_key (fun () -> ref false)
let enabled () = !enabled_flag && not !(Domain.DLS.get suppressed_key)
let set_enabled b = enabled_flag := b

let unrecorded f =
  let s = Domain.DLS.get suppressed_key in
  let saved = !s in
  s := true;
  Fun.protect ~finally:(fun () -> s := saved) f

(* One lock for the whole registry: recording is rare (telemetry off) or
   cheap (an int/float update) relative to the analyses being measured. *)
let reg_mutex = Mutex.create ()

let locked f =
  Mutex.lock reg_mutex;
  match f () with
  | v ->
      Mutex.unlock reg_mutex;
      v
  | exception e ->
      Mutex.unlock reg_mutex;
      raise e

let log_src = Logs.Src.create "sdfalloc.obs" ~doc:"Telemetry"

module Log = (val Logs.src_log log_src)

type field = String of string | Int of int | Float of float | Bool of bool

type timer_state = {
  mutable t_count : int;
  mutable t_total : float;
  mutable t_min : float;
  mutable t_max : float;
}

type event = { ev_kind : string; ev_fields : (string * field) list }

type output =
  | Span_end of { path : string; seconds : float }
  | Event_record of { kind : string; fields : (string * field) list }

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
let gauges : (string, float) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer_state) Hashtbl.t = Hashtbl.create 64

(* Newest first; serialized oldest first. Capped so that a long benchmark
   run cannot grow the registry without bound. *)
let events : event list ref = ref []
let events_stored = ref 0
let events_dropped = ref 0
let max_events = 10_000
let sinks : (output -> unit) list ref = ref []
let notify o = List.iter (fun f -> f o) !sinks

let reset () =
  locked (fun () ->
      (* Zero counters in place so handles from {!Counter.make} stay
         live. *)
      Hashtbl.iter (fun _ r -> r := 0) counters;
      Hashtbl.reset gauges;
      Hashtbl.reset timers;
      events := [];
      events_stored := 0;
      events_dropped := 0)

let sorted_tbl tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

module Counter = struct
  type t = int ref

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add counters name r;
            r)

  let incr ?(by = 1) t =
    if enabled () then locked (fun () -> t := !t + by)

  let add name by =
    if enabled () then begin
      let r = make name in
      locked (fun () -> r := !r + by)
    end

  let value name =
    locked (fun () ->
        match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)
end

module Gauge = struct
  let set name v =
    if enabled () then locked (fun () -> Hashtbl.replace gauges name v)

  let set_int name v = set name (float_of_int v)
  let value name = locked (fun () -> Hashtbl.find_opt gauges name)
end

module Timer = struct
  type snapshot = { count : int; total_s : float; min_s : float; max_s : float }

  let record_always name dt =
    locked (fun () ->
        match Hashtbl.find_opt timers name with
        | Some t ->
            t.t_count <- t.t_count + 1;
            t.t_total <- t.t_total +. dt;
            if dt < t.t_min then t.t_min <- dt;
            if dt > t.t_max then t.t_max <- dt
        | None ->
            Hashtbl.add timers name
              { t_count = 1; t_total = dt; t_min = dt; t_max = dt })

  let record name dt = if enabled () then record_always name dt

  (* Wall-clock, not [Sys.time]: process CPU time sums over every running
     domain, so it is meaningless for a span measured on one domain of a
     parallel run. *)
  let now () = Unix.gettimeofday ()

  let time name f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now () in
      Fun.protect ~finally:(fun () -> record_always name (now () -. t0)) f
    end

  let snapshot name =
    locked (fun () ->
        Option.map
          (fun t ->
            {
              count = t.t_count;
              total_s = t.t_total;
              min_s = t.t_min;
              max_s = t.t_max;
            })
          (Hashtbl.find_opt timers name))
end

module Span = struct
  (* One stack per domain: spans opened on a worker nest under that
     worker's own enclosing spans, never under a sibling's. *)
  let stack_key = Domain.DLS.new_key (fun () -> ref [])
  let stack () = Domain.DLS.get stack_key
  let current () = List.rev !(stack ())

  let with_ name f =
    if not (enabled ()) then f ()
    else begin
      let stack = stack () in
      stack := name :: !stack;
      let path = String.concat "/" (List.rev !stack) in
      let t0 = Timer.now () in
      Fun.protect
        ~finally:(fun () ->
          (match !stack with _ :: tl -> stack := tl | [] -> ());
          let dt = Timer.now () -. t0 in
          Timer.record_always path dt;
          notify (Span_end { path; seconds = dt }))
        f
    end
end

module Event = struct
  type nonrec field = field =
    | String of string
    | Int of int
    | Float of float
    | Bool of bool

  let emit kind fields =
    if enabled () then begin
      locked (fun () ->
          if !events_stored >= max_events then incr events_dropped
          else begin
            events := { ev_kind = kind; ev_fields = fields } :: !events;
            incr events_stored
          end);
      notify (Event_record { kind; fields })
    end

  let count kind =
    locked (fun () ->
        List.fold_left
          (fun n e -> if e.ev_kind = kind then n + 1 else n)
          0 !events)

  let all () =
    locked (fun () -> List.rev_map (fun e -> (e.ev_kind, e.ev_fields)) !events)
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Assoc of (string * t) list

  let escape buf s =
    Stdlib.String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* JSON has no inf/nan literal; clamp to 0 rather than emit an invalid
     document. *)
  let number f =
    if not (Float.is_finite f) then "0"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec emit buf ind = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (number f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Stdlib.String.make (ind + 2) ' ');
            emit buf (ind + 2) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Stdlib.String.make ind ' ');
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Stdlib.String.make (ind + 2) ' ');
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            emit buf (ind + 2) v)
          kvs;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Stdlib.String.make ind ' ');
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 1024 in
    emit buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

let field_to_json = function
  | String s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let snapshot_json () =
  locked @@ fun () ->
  let timer_json t =
    Json.Assoc
      [
        ("count", Json.Int t.t_count);
        ("total_s", Json.Float t.t_total);
        ( "mean_s",
          Json.Float
            (if t.t_count = 0 then 0. else t.t_total /. float_of_int t.t_count)
        );
        ("min_s", Json.Float t.t_min);
        ("max_s", Json.Float t.t_max);
      ]
  in
  let event_json e =
    Json.Assoc
      (("kind", Json.String e.ev_kind)
      :: List.map (fun (k, v) -> (k, field_to_json v)) e.ev_fields)
  in
  Json.Assoc
    [
      ("schema_version", Json.Int 1);
      ("counters", Json.Assoc (sorted_tbl counters (fun r -> Json.Int !r)));
      ("gauges", Json.Assoc (sorted_tbl gauges (fun v -> Json.Float v)));
      ("timers", Json.Assoc (sorted_tbl timers timer_json));
      ("events", Json.List (List.rev_map event_json !events));
      ("events_dropped", Json.Int !events_dropped);
    ]

let json_string () = Json.to_string (snapshot_json ())
let write_channel oc = output_string oc (json_string ())

module Sink = struct
  type nonrec output = output =
    | Span_end of { path : string; seconds : float }
    | Event_record of { kind : string; fields : (string * field) list }

  let register f = sinks := f :: !sinks
  let clear () = sinks := []

  let pp_field ppf (k, v) =
    match v with
    | String s -> Format.fprintf ppf "%s=%s" k s
    | Int i -> Format.fprintf ppf "%s=%d" k i
    | Float f -> Format.fprintf ppf "%s=%g" k f
    | Bool b -> Format.fprintf ppf "%s=%b" k b

  let logs () =
    register (function
      | Span_end { path; seconds } ->
          Log.debug (fun m -> m "span %s %.6fs" path seconds)
      | Event_record { kind; fields } ->
          Log.debug (fun m ->
              m "event %s [%a]" kind
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
                   pp_field)
                fields))
end

module Report = struct
  let pp ppf () =
    locked @@ fun () ->
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "counter %-42s %d@," k v)
      (sorted_tbl counters (fun r -> !r));
    List.iter
      (fun (k, v) -> Format.fprintf ppf "gauge   %-42s %g@," k v)
      (sorted_tbl gauges Fun.id);
    List.iter
      (fun (k, t) ->
        Format.fprintf ppf "timer   %-42s n=%d total=%.6fs@," k t.t_count
          t.t_total)
      (sorted_tbl timers Fun.id);
    Format.fprintf ppf "@]"

  let log () = Log.info (fun m -> m "@[<v>telemetry:@,%a@]" pp ())
end
