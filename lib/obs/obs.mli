(** Telemetry for the allocation flow: counters, gauges, timers,
    hierarchical spans and structured events, collected in a process-global
    in-memory registry with a JSON serializer and a Logs-backed live sink.

    Telemetry is {e disabled by default}. Every recording entry point
    checks one flag and returns immediately while disabled, so
    instrumenting a hot path costs a single branch. Enable with
    {!set_enabled} (the CLIs do this when [--metrics] is given), run the
    workload, then serialize with {!json_string} / {!write_channel}.

    The registry is thread-safe: recording from concurrent domains (the
    {!Par}-driven fan-outs) is serialised on one internal mutex, the span
    stack is domain-local, and {!unrecorded} suppresses recording on the
    calling domain only — speculative parallel work uses it so discarded
    attempts do not pollute the registry.

    {b JSON schema} (stable key names, [schema_version] 1):
    {v
    { "schema_version": 1,
      "counters": { "<name>": <int>, ... },
      "gauges":   { "<name>": <number>, ... },
      "timers":   { "<name>": { "count": <int>, "total_s": <number>,
                                "mean_s": <number>, "min_s": <number>,
                                "max_s": <number> }, ... },
      "events":   [ { "kind": "<kind>", "<field>": <value>, ... }, ... ],
      "events_dropped": <int> }
    v}
    Counter/gauge/timer keys are sorted; events appear in emission order
    (capped at 10_000, the overflow counted in [events_dropped]). Timer
    keys recorded through {!Span.with_} are full span paths, e.g.
    ["flow.attempt/strategy.bind"]. The metric-name catalogue of the
    instrumented flow is documented in README.md ("Observability"). *)

val enabled : unit -> bool
(** True when telemetry is globally enabled and the calling domain is not
    inside {!unrecorded}. *)

val set_enabled : bool -> unit

val unrecorded : (unit -> 'a) -> 'a
(** [unrecorded f] runs [f] with recording suppressed on this domain (and
    on this domain only): every counter/gauge/timer/span/event entry point
    becomes a no-op. Used for speculative work — parallel cache warm-ups,
    discarded ladder rungs — whose telemetry would distort the registry.
    Nesting is fine; exception-safe. *)

val reset : unit -> unit
(** Zero all counters (handles from {!Counter.make} stay valid), drop all
    gauges, timers and events. Registered sinks are kept. *)

(** Monotonic integer counters. *)
module Counter : sig
  type t
  (** A pre-registered handle; cheaper than by-name access on hot paths. *)

  val make : string -> t
  (** Register (or look up) the counter [name]. The counter appears in the
      serialized registry even at value 0. *)

  val incr : ?by:int -> t -> unit
  val add : string -> int -> unit
  val value : string -> int
  (** 0 for a counter that was never touched. *)
end

(** Last-value-wins measurements (hash-table load factors, blow-up
    ratios). *)
module Gauge : sig
  val set : string -> float -> unit
  val set_int : string -> int -> unit
  val value : string -> float option
end

(** Histogram-style duration accumulators: count / total / min / max. *)
module Timer : sig
  type snapshot = { count : int; total_s : float; min_s : float; max_s : float }

  val record : string -> float -> unit
  (** [record name seconds] folds one measured duration into [name]. *)

  val time : string -> (unit -> 'a) -> 'a
  (** Run the thunk, recording its wall-clock duration under [name]
      (wall, not CPU: process CPU time sums over all running domains). *)

  val snapshot : string -> snapshot option
end

(** Hierarchical timing scopes. [Span.with_ "strategy.bind" f] runs [f]
    and records its duration in a {!Timer} keyed by the ["/"]-joined path
    of enclosing spans (["flow.attempt/strategy.bind"] when nested under a
    ["flow.attempt"] span). *)
module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** Exception-safe: the span is closed and recorded on raise. *)

  val current : unit -> string list
  (** Enclosing span names, outermost first; [[]] outside any span. *)
end

(** Structured one-off records ("one attempt per weight-ladder rung"). *)
module Event : sig
  type field = String of string | Int of int | Float of float | Bool of bool

  val emit : string -> (string * field) list -> unit
  (** [emit kind fields] appends an event. The field name ["kind"] is
      reserved for the event kind in the JSON encoding. *)

  val count : string -> int
  (** Number of stored events of the given kind. *)

  val all : unit -> (string * (string * field) list) list
  (** All stored events, oldest first. *)
end

(** Minimal JSON document model used by the serializer. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Assoc of (string * t) list

  val to_string : t -> string
  (** Pretty-printed (2-space indent), newline-terminated. Non-finite
      floats are clamped to 0 to keep the document valid. *)
end

val snapshot_json : unit -> Json.t
(** The registry as a JSON document (see the schema above). *)

val json_string : unit -> string
val write_channel : out_channel -> unit

(** Pluggable live sinks, called synchronously at span end and event
    emission (only while telemetry is enabled). *)
module Sink : sig
  type output =
    | Span_end of { path : string; seconds : float }
    | Event_record of { kind : string; fields : (string * Event.field) list }

  val register : (output -> unit) -> unit
  val clear : unit -> unit

  val logs : unit -> unit
  (** Register a live reporter logging every span end and event at debug
      level on the ["sdfalloc.obs"] source. *)
end

(** Human-readable registry dumps. *)
module Report : sig
  val pp : Format.formatter -> unit -> unit
  val log : unit -> unit
  (** Log the {!pp} dump at info level on ["sdfalloc.obs"]. *)
end
