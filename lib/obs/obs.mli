(** Telemetry for the allocation flow: counters, gauges, timers, log-bucketed
    histograms, hierarchical spans, structured events and a Chrome-trace-event
    timeline, collected in a process-global in-memory registry with a JSON
    serializer and a Logs-backed live sink.

    Telemetry is {e disabled by default}. Every recording entry point
    checks one flag and returns immediately while disabled, so
    instrumenting a hot path costs a single branch. Enable with
    {!set_enabled} (the CLIs do this when [--metrics] or [--trace] is
    given), run the workload, then serialize with {!json_string} /
    {!write_channel} and {!Trace.write_channel}.

    The registry is thread-safe: recording from concurrent domains (the
    {!Par}-driven fan-outs) is serialised on one internal mutex, the span
    stack is domain-local, and {!unrecorded} suppresses recording on the
    calling domain only — speculative parallel work uses it so discarded
    attempts do not pollute the registry. The {!Trace} timeline is the one
    deliberate exception: a started trace records spans of suppressed
    domains too (tagged with the ["speculative"] category), because seeing
    where the pool spent its time is exactly what a timeline is for.

    {b JSON schema} (stable key names, [schema_version] 2):
    {v
    { "schema_version": 2,
      "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <number>, ... },
      "timers":     { "<name>": { "count": <int>, "total_s": <number>,
                                  "mean_s": <number>, "stddev_s": <number>,
                                  "min_s": <number>, "max_s": <number> }, ... },
      "histograms": { "<name>": { "count": <int>, "p50": <number>,
                                  "p90": <number>, "p99": <number>,
                                  "max": <number> }, ... },
      "events":     [ { "kind": "<kind>", "<field>": <value>, ... }, ... ],
      "events_dropped": { "<kind>": <int>, ... } }
    v}
    Counter/gauge/timer/histogram keys are sorted; events appear in
    emission order (capped at 10_000 by default, see {!set_event_cap}; the
    overflow is counted per event kind in [events_dropped]). Timer keys
    recorded through {!Span.with_} are full span paths, e.g.
    ["flow.attempt/strategy.bind"]. The metric-name catalogue of the
    instrumented flow is documented in README.md ("Observability"). *)

val enabled : unit -> bool
(** True when telemetry is globally enabled and the calling domain is not
    inside {!unrecorded}. *)

val set_enabled : bool -> unit

val unrecorded : (unit -> 'a) -> 'a
(** [unrecorded f] runs [f] with recording suppressed on this domain (and
    on this domain only): every counter/gauge/timer/span/event entry point
    becomes a no-op. Used for speculative work — parallel cache warm-ups,
    discarded ladder rungs — whose telemetry would distort the registry.
    Nesting is fine; exception-safe. A started {!Trace} still records the
    suppressed spans, tagged ["speculative"]. *)

val reset : unit -> unit
(** Zero all counters and histograms (handles from {!Counter.make} /
    {!Histogram.make} stay valid), drop all gauges, timers and events.
    Registered sinks, the event cap and the {!Trace} buffer are kept. *)

val set_event_cap : int -> unit
(** Cap on stored events (default 10_000). Events emitted beyond the cap
    are dropped and counted per kind in [events_dropped]. Raising the cap
    does not resurrect dropped events; the cap survives {!reset}. *)

(** Monotonic integer counters. *)
module Counter : sig
  type t
  (** A pre-registered handle; cheaper than by-name access on hot paths. *)

  val make : string -> t
  (** Register (or look up) the counter [name]. The counter appears in the
      serialized registry even at value 0. *)

  val incr : ?by:int -> t -> unit
  val add : string -> int -> unit
  val value : string -> int
  (** 0 for a counter that was never touched. *)
end

(** Last-value-wins measurements (hash-table load factors, blow-up
    ratios). *)
module Gauge : sig
  val set : string -> float -> unit
  val set_int : string -> int -> unit
  val value : string -> float option
end

(** Duration accumulators: count / total / mean / stddev / min / max. The
    standard deviation is maintained with Welford's online update — two
    extra float fields mutated in place, no allocation on the record
    path. *)
module Timer : sig
  type snapshot = {
    count : int;
    total_s : float;
    min_s : float;
    max_s : float;
    stddev_s : float;
  }

  val record : string -> float -> unit
  (** [record name seconds] folds one measured duration into [name]. *)

  val time : string -> (unit -> 'a) -> 'a
  (** Run the thunk, recording its wall-clock duration under [name]
      (wall, not CPU: process CPU time sums over all running domains). *)

  val snapshot : string -> snapshot option
end

(** Log-bucketed value distributions for hot-path measurements where a
    {!Timer}'s four aggregates are too coarse: slice-probe latencies, memo
    lookup times, states/s heartbeats, engine probe lengths.

    Values land in power-of-two buckets (one [frexp] plus one array
    increment per record), so recording is O(1) and allocation-free;
    quantiles are estimated from the buckets (exact within a factor of 2,
    clamped to the observed min/max — a single-valued histogram reports
    that value exactly). Serialized as count/p50/p90/p99/max. *)
module Histogram : sig
  type t
  (** A pre-registered handle; cheap enough for per-probe recording. *)

  val make : string -> t
  (** Register (or look up) the histogram [name]. *)

  val record : t -> float -> unit
  val add : string -> float -> unit

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk, recording its wall-clock duration in seconds. The
      thunk runs unmeasured while telemetry is disabled. *)

  type snapshot = {
    count : int;
    p50 : float;
    p90 : float;
    p99 : float;
    min : float;
    max : float;
  }

  val snapshot : string -> snapshot option

  val all : unit -> (string * snapshot) list
  (** Every registered histogram with its current snapshot, sorted by
      name — the histogram section of {!snapshot_json} as an association
      list (what the daemon's [stats] verb serves over the wire). *)
end

val counters_snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name —
    the counter section of {!snapshot_json} as an association list. *)

(** Hierarchical timing scopes. [Span.with_ "strategy.bind" f] runs [f]
    and records its duration in a {!Timer} keyed by the ["/"]-joined path
    of enclosing spans (["flow.attempt/strategy.bind"] when nested under a
    ["flow.attempt"] span). When a {!Trace} is started, every span also
    emits a Chrome-trace ["B"]/["E"] pair on the calling domain's
    track. *)
module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** Exception-safe: the span is closed and recorded on raise. *)

  val current : unit -> string list
  (** Enclosing span names, outermost first; [[]] outside any span. *)
end

(** Structured one-off records ("one attempt per weight-ladder rung").
    While a {!Trace} is started, every emitted event is mirrored as an
    instant event on the timeline. *)
module Event : sig
  type field = String of string | Int of int | Float of float | Bool of bool

  val emit : string -> (string * field) list -> unit
  (** [emit kind fields] appends an event. The field name ["kind"] is
      reserved for the event kind in the JSON encoding. *)

  val count : string -> int
  (** Number of stored events of the given kind. *)

  val dropped : string -> int
  (** Number of events of the given kind dropped at the cap. *)

  val all : unit -> (string * (string * field) list) list
  (** All stored events, oldest first. *)
end

(** Minimal JSON document model used by the serializer, with a matching
    reader used by the trace validator and the report generator. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Assoc of (string * t) list

  val to_string : t -> string
  (** Pretty-printed (2-space indent), newline-terminated. Non-finite
      floats are clamped to 0 to keep the document valid. *)

  val to_compact_string : t -> string
  (** One-line form (no spaces, no trailing newline, same escaping) for
      newline-delimited protocols: the [sdf3_serve] wire format and the
      batch/server JSONL journals. *)

  val parse : string -> (t, string) result
  (** Strict parser for the documents this library writes (and ordinary
      machine-generated JSON): no trailing garbage, ASCII escapes decoded,
      [\uXXXX] beyond ASCII kept verbatim. Numbers without [.]/[e] that
      fit an [int] parse as [Int]. *)

  val member : string -> t -> t option
  (** [member k (Assoc kvs)] is the value bound to [k], [None] otherwise. *)
end

(** Timeline tracing in the Chrome trace-event JSON array format — load
    the written file in Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing].

    A trace is {e started} once per process ({!start}; the CLIs do this
    for [--trace FILE]) and records, while telemetry is enabled:
    {!Span.with_} scopes as ["B"]/["E"] duration pairs, {!Event.emit}
    records and explicit {!instant} calls as instant events, {!counter}
    samples as counter tracks, and {!async_begin}/{!async_end} pairs as
    async arcs. Every record carries the calling domain's id as its [tid],
    so work fanned out through the {!Par} pool renders as parallel tracks
    ({!set_thread_name} labels them). Timestamps are microseconds since
    {!start}, clamped per track so each track is non-decreasing. *)
module Trace : sig
  val start : unit -> unit
  (** Begin collecting (idempotent; the timestamp origin is set on the
      first call). Recording additionally requires {!set_enabled}[ true]. *)

  val active : unit -> bool

  val reset : unit -> unit
  (** Drop all collected records, track names and the started flag. *)

  val set_cap : int -> unit
  (** Cap on stored trace records (default 1_000_000); overflow is
      dropped and counted in {!dropped}. *)

  val dropped : unit -> int

  val set_thread_name : string -> unit
  (** Label the calling domain's track in the rendered timeline. Recorded
      even before {!start} so pool workers can self-label at spawn. *)

  val instant : ?args:(string * Event.field) list -> string -> unit
  (** A point-in-time marker (phase ["i"]) on the calling domain's
      track. *)

  val counter : string -> float -> unit
  (** A sample on a counter track (phase ["C"]), rendered by trace viewers
      as a value-over-time graph. *)

  val async_begin : ?cat:string -> id:int -> string -> unit
  (** Open an async arc (phase ["b"]). Arcs are matched by
      [(cat, id, name)] and may cross domains. *)

  val async_end : ?cat:string -> id:int -> string -> unit

  val json : unit -> Json.t
  (** The collected timeline as a Chrome-trace JSON array: metadata
      records first (process name, one [thread_name] per track), then all
      events oldest-first. *)

  val to_string : unit -> string
  val write_channel : out_channel -> unit

  type summary = { events : int; tracks : int }

  val validate : Json.t -> (summary, string) result
  (** Structural validator for traces in the format {!json} writes: the
      document is an array of objects, every record carries a known
      single-letter [ph], a [name], integer [pid]/[tid] and a finite
      [ts >= 0]; per [tid], timestamps are non-decreasing and ["B"]/["E"]
      pairs are balanced and well-nested. Used by the trace unit tests and
      [sdf3_report --check-trace] (CI runs it on every uploaded trace). *)
end

(** States-per-second heartbeats, designed to be driven by
    [Budget.set_probe_hook]: the budget's amortized slow probe (every
    [Budget.probe_interval] checks) calls {!probe} with the exploration's
    current state count; the delta against the calling domain's previous
    probe becomes one ["engine.states_per_sec"] {!Histogram} sample and
    one {!Trace.counter} sample. A state count smaller than the previous
    probe's means a new exploration started on this domain and only
    re-bases the reference point. *)
module Heartbeat : sig
  val probe : states:int -> unit
end

val snapshot_json : unit -> Json.t
(** The registry as a JSON document (see the schema above). *)

val json_string : unit -> string
val write_channel : out_channel -> unit

(** Pluggable live sinks, called synchronously at span end and event
    emission (only while telemetry is enabled). *)
module Sink : sig
  type output =
    | Span_end of { path : string; seconds : float }
    | Event_record of { kind : string; fields : (string * Event.field) list }

  val register : (output -> unit) -> unit
  val clear : unit -> unit

  val logs : unit -> unit
  (** Register a live reporter logging every span end and event at debug
      level on the ["sdfalloc.obs"] source. *)
end

(** Human-readable registry dumps. *)
module Report : sig
  val pp : Format.formatter -> unit -> unit
  val log : unit -> unit
  (** Log the {!pp} dump at info level on ["sdfalloc.obs"]. *)
end
