module Sdfg = Sdf.Sdfg

let example_graph () =
  Sdfg.of_lists ~actors:[ "a1"; "a2"; "a3" ]
    ~channels:
      [ ("a1", "a2", 1, 1, 0); ("a2", "a3", 1, 2, 0); ("a1", "a1", 1, 1, 1) ]

let example_taus = [| 1; 1; 2 |]

let prodcons () =
  Sdfg.of_lists ~actors:[ "p"; "c" ]
    ~channels:[ ("p", "c", 2, 3, 0); ("c", "p", 3, 2, 6) ]

let prodcons_taus = [| 2; 5 |]

let ring3 () =
  Sdfg.of_lists ~actors:[ "x"; "y"; "z" ]
    ~channels:[ ("x", "y", 1, 1, 1); ("y", "z", 1, 1, 0); ("z", "x", 1, 1, 0) ]

let ring3_taus = [| 1; 2; 3 |]

let equal_structure g1 g2 =
  Sdfg.num_actors g1 = Sdfg.num_actors g2
  && Sdfg.num_channels g1 = Sdfg.num_channels g2
  && Array.for_all2
       (fun (a : Sdfg.channel) (b : Sdfg.channel) ->
         a.Sdfg.src = b.Sdfg.src && a.Sdfg.dst = b.Sdfg.dst
         && a.Sdfg.prod = b.Sdfg.prod && a.Sdfg.cons = b.Sdfg.cons
         && a.Sdfg.tokens = b.Sdfg.tokens)
       (Sdfg.channels g1) (Sdfg.channels g2)

let equal g1 g2 =
  equal_structure g1 g2
  && Array.for_all2
       (fun (a : Sdfg.actor) (b : Sdfg.actor) -> a.Sdfg.a_name = b.Sdfg.a_name)
       (Sdfg.actors g1) (Sdfg.actors g2)
