module Sdfg = Sdf.Sdfg
module Repetition = Sdf.Repetition

type case = { graph : Sdfg.t; taus : int array }

let size c =
  let rates_and_tokens =
    Array.fold_left
      (fun acc (ch : Sdfg.channel) -> acc + ch.prod + ch.cons + ch.tokens)
      0 (Sdfg.channels c.graph)
  in
  (1000 * Sdfg.num_actors c.graph)
  + (50 * Sdfg.num_channels c.graph)
  + rates_and_tokens
  + Array.fold_left ( + ) 0 c.taus

let well_formed c =
  let g = c.graph in
  let n = Sdfg.num_actors g in
  n >= 1
  && Array.length c.taus = n
  && Array.for_all (fun t -> t >= 0) c.taus
  && (let ok = ref true in
      for a = 0 to n - 1 do
        if Sdfg.in_channels g a = [] then ok := false
      done;
      !ok)
  && Sdfg.is_weakly_connected g
  && Repetition.is_consistent g

(* Rebuild a graph keeping only the actors for which [keep] holds (and the
   channels between them), compacting indices. *)
let filter_actors g taus keep =
  let n = Sdfg.num_actors g in
  let remap = Array.make n (-1) in
  let b = Sdfg.Builder.create () in
  for a = 0 to n - 1 do
    if keep a then remap.(a) <- Sdfg.Builder.add_actor b (Sdfg.actor_name g a)
  done;
  Array.iter
    (fun (c : Sdfg.channel) ->
      if remap.(c.src) >= 0 && remap.(c.dst) >= 0 then
        ignore
          (Sdfg.Builder.add_channel b ~name:c.c_name ~tokens:c.tokens
             ~src:remap.(c.src) ~dst:remap.(c.dst) ~prod:c.prod ~cons:c.cons
             ()))
    (Sdfg.channels g);
  let taus' =
    Array.of_list (List.filteri (fun a _ -> keep a) (Array.to_list taus))
  in
  { graph = Sdfg.Builder.build b; taus = taus' }

(* Rebuild with a per-channel transform; [None] drops the channel. *)
let map_channels g taus f =
  let b = Sdfg.Builder.create () in
  for a = 0 to Sdfg.num_actors g - 1 do
    ignore (Sdfg.Builder.add_actor b (Sdfg.actor_name g a))
  done;
  Array.iter
    (fun (c : Sdfg.channel) ->
      match f c with
      | None -> ()
      | Some (prod, cons, tokens) ->
          ignore
            (Sdfg.Builder.add_channel b ~name:c.c_name ~tokens ~src:c.src
               ~dst:c.dst ~prod ~cons ()))
    (Sdfg.channels g);
  { graph = Sdfg.Builder.build b; taus = Array.copy taus }

let drop_actor c a =
  filter_actors c.graph c.taus (fun x -> x <> a)

let drop_channel c ci =
  map_channels c.graph c.taus (fun ch ->
      if ch.Sdfg.c_idx = ci then None
      else Some (ch.Sdfg.prod, ch.Sdfg.cons, ch.Sdfg.tokens))

let homogenize c =
  map_channels c.graph c.taus (fun ch ->
      Some (1, 1, ch.Sdfg.tokens))

let with_tokens c ci t =
  map_channels c.graph c.taus (fun ch ->
      if ch.Sdfg.c_idx = ci then Some (ch.Sdfg.prod, ch.Sdfg.cons, t)
      else Some (ch.Sdfg.prod, ch.Sdfg.cons, ch.Sdfg.tokens))

let with_tau c a t =
  let taus = Array.copy c.taus in
  taus.(a) <- t;
  { graph = c.graph; taus }

let candidates c =
  let g = c.graph in
  let n = Sdfg.num_actors g in
  let m = Sdfg.num_channels g in
  let acc = ref [] in
  let push x = acc := x :: !acc in
  (* Cheapest reductions last in the list we build, so after the final
     List.rev the aggressive ones (actor removal) come first. *)
  (* taus: straight to 1, then halve. *)
  for a = n - 1 downto 0 do
    if c.taus.(a) > 1 then begin
      push (with_tau c a (c.taus.(a) / 2));
      push (with_tau c a 1)
    end
  done;
  (* tokens: decrement, then halve. *)
  for ci = m - 1 downto 0 do
    let t = (Sdfg.channel g ci).Sdfg.tokens in
    if t > 0 then begin
      push (with_tokens c ci (t - 1));
      if t > 1 then push (with_tokens c ci (t / 2))
    end
  done;
  (* rates: collapse the whole graph to single-rate (per-channel rate edits
     break consistency; the global collapse preserves it trivially). *)
  if
    Array.exists
      (fun (ch : Sdfg.channel) -> ch.prod > 1 || ch.cons > 1)
      (Sdfg.channels g)
  then push (homogenize c);
  (* structure: drop one channel, drop one actor. *)
  if m > 1 then
    for ci = m - 1 downto 0 do
      push (drop_channel c ci)
    done;
  if n > 1 then
    for a = n - 1 downto 0 do
      push (drop_actor c a)
    done;
  List.rev !acc |> List.filter well_formed
