module Sdfg = Sdf.Sdfg
module Fsm = Scenario.Fsm

let base_rates g =
  Array.map
    (fun (c : Sdfg.channel) -> (c.Sdfg.prod, c.Sdfg.cons))
    (Sdfg.channels g)

let derive rng g taus =
  let nm = 1 + Rng.int rng 3 in
  let nc = Sdfg.num_channels g in
  let mode i =
    if i = 0 then
      { Fsm.m_name = "m0"; rates = base_rates g; taus = Array.copy taus }
    else begin
      let rates = base_rates g in
      (* Scaling both ends of one channel by a common factor keeps the
         balance equations (and hence gamma) intact, but changes the
         timing structure — and can introduce a mode that deadlocks on
         the initial tokens, which the product exploration must report
         identically on both routes. *)
      if nc > 0 && Rng.bool rng 0.3 then begin
        let ci = Rng.int rng nc in
        let k = Rng.range rng 2 3 in
        let p, c = rates.(ci) in
        rates.(ci) <- (p * k, c * k)
      end;
      let taus =
        Array.map
          (fun tau -> if Rng.bool rng 0.5 then Rng.range rng 1 6 else tau)
          taus
      in
      { Fsm.m_name = Printf.sprintf "m%d" i; rates; taus }
    end
  in
  let modes = Array.init nm mode in
  let delay () = if Rng.bool rng 0.5 then 0 else Rng.range rng 1 6 in
  let cycle =
    List.init nm (fun i ->
        { Fsm.t_src = i; t_dst = (i + 1) mod nm; delay = delay () })
  in
  let extras =
    List.concat_map
      (fun i ->
        if Rng.bool rng 0.4 then
          [ { Fsm.t_src = i; t_dst = Rng.int rng nm; delay = delay () } ]
        else [])
      (List.init nm Fun.id)
  in
  Fsm.make ~name:"derived" ~graph:g
    ~modes
    ~transitions:(Array.of_list (cycle @ extras))
    ~initial:0
