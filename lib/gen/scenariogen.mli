(** Random scenario FSMs over a generated case, for the fuzz harness.

    [derive rng g taus] wraps a (consistent, connected, every-actor-fed)
    graph in a 1–3 mode scenario FSM: mode 0 is the base graph with the
    given execution times; extra modes redraw execution times and may
    scale one channel's (prod, cons) pair by a common factor — which
    preserves the repetition vector, so every mode stays consistent by
    construction. Transitions form the cycle [m0 -> m1 -> ... -> m0] plus
    occasional extra edges; delays are biased towards positive values so
    the delay-dropping mutant ([sdf3_fuzz --inject-scenario-mutant]) has
    something to corrupt.
    @raise Invalid_argument when the base graph violates a {!Scenario.Fsm.make}
    precondition (not the case for {!Sdfgen} output). *)

val derive : Rng.t -> Sdf.Sdfg.t -> int array -> Scenario.Fsm.t
