module Sdfg = Sdf.Sdfg

(** Shrink-candidate generation for throughput-analysis cases.

    A case is an SDFG plus a per-actor execution-time vector — the input
    shared by every throughput analysis in this library. Given a failing
    case, the fuzzing harness ({!Check.Shrink}) repeatedly replaces it by
    the first {e smaller} candidate that still fails, converging on a
    minimal counterexample. This module only proposes candidates; deciding
    whether a candidate still fails is the caller's business.

    Candidate order is most-aggressive-first: drop an actor (with its
    incident channels), drop a channel, collapse all rates to 1, reduce
    initial tokens, reduce execution times toward 1. Candidates that are
    not {!well_formed} (disconnected, inconsistent, an actor without an
    input) are filtered out; candidates that deadlock are not — the
    oracles treat agreeing deadlocks as a pass, which rejects them during
    shrinking. *)

type case = { graph : Sdfg.t; taus : int array }

val well_formed : case -> bool
(** Non-empty, matching tau vector with non-negative entries, every actor
    has an input channel, weakly connected, consistent — the preconditions
    of {!Analysis.Selftimed.analyze}. *)

val size : case -> int
(** A measure that strictly decreases along every shrink step (actors
    dominate, then channels, then rates, tokens and execution times);
    shrinking terminates because every candidate is smaller than its
    parent. *)

val candidates : case -> case list
(** Well-formed one-step reductions of the case, most aggressive first.
    Empty when the case is already minimal under the step catalogue. *)
