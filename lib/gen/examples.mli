module Sdfg = Sdf.Sdfg

(** Small fixed graphs shared by the test suites, the QCheck properties and
    the fuzzing harness — one home instead of per-suite copies.

    Each graph comes with a canonical execution-time vector so throughput
    cases can be replayed without re-deriving timings. *)

val example_graph : unit -> Sdfg.t
(** The paper's running example (Fig. 3): a1 -> a2 -> a3 with a self-loop
    on a1; repetition vector (2, 2, 1). *)

val example_taus : int array
(** The Tab.-2 fastest execution times (1, 1, 2): plain self-timed
    throughput of a3 is 1/2. *)

val prodcons : unit -> Sdfg.t
(** Two-actor producer/consumer with rates (2, 3) and a feedback channel
    carrying six tokens; repetition vector (3, 2). *)

val prodcons_taus : int array

val ring3 : unit -> Sdfg.t
(** Strongly-connected three-actor ring, all rates 1, one token total. *)

val ring3_taus : int array

val equal_structure : Sdfg.t -> Sdfg.t -> bool
(** Channel-level equality (endpoints, rates, tokens) ignoring actor and
    channel names — the equivalence the analysis memo keys rely on. *)

val equal : Sdfg.t -> Sdfg.t -> bool
(** {!equal_structure} plus actor-name equality. *)
