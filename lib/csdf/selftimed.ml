module Rat = Sdf.Rat

type result = {
  throughput : Rat.t array;
  period : int;
  transient : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

let idle = max_int

let validate g taus =
  let n = Graph.num_actors g in
  if n = 0 then invalid_arg "Csdf_selftimed.analyze: empty graph";
  if Array.length taus <> n then
    invalid_arg "Csdf_selftimed.analyze: taus length mismatch";
  Array.iteri
    (fun a per_phase ->
      if Array.length per_phase <> (Graph.actor g a).Graph.phases then
        invalid_arg "Csdf_selftimed.analyze: phase count mismatch";
      Array.iter
        (fun t ->
          if t < 0 then invalid_arg "Csdf_selftimed.analyze: negative time")
        per_phase)
    taus;
  match Graph.repetition g with
  | Graph.Consistent gamma -> gamma
  | Graph.Inconsistent _ -> invalid_arg "Csdf_selftimed.analyze: inconsistent"
  | Graph.Disconnected -> invalid_arg "Csdf_selftimed.analyze: not connected"

(* The phase-wise simulator shared by the packed engine and the retained
   reference: phase-indexed rates, one firing at a time per actor (no
   self-overlap), production using the phase the firing started in. *)
type sim = {
  tokens : int array;
  phase : int array;
  busy : int array;  (* completion time of the in-flight firing, or idle *)
  counts : int array;
  firing_phase : int array;
  mutable time : int;
}

let sim_create g =
  let n = Graph.num_actors g in
  {
    tokens =
      Array.init (Graph.num_channels g) (fun ci ->
          (Graph.channel g ci).Graph.tokens);
    phase = Array.make n 0;
    busy = Array.make n idle;
    counts = Array.make n 0;
    firing_phase = Array.make n 0;
    time = 0;
  }

let sim_enabled g s a =
  s.busy.(a) = idle
  && List.for_all
       (fun ci ->
         let c = Graph.channel g ci in
         s.tokens.(ci) >= c.Graph.cons_seq.(s.phase.(a)))
       (Graph.in_channels g a)

let sim_consume g s a =
  List.iter
    (fun ci ->
      let c = Graph.channel g ci in
      s.tokens.(ci) <- s.tokens.(ci) - c.Graph.cons_seq.(s.phase.(a)))
    (Graph.in_channels g a)

let sim_produce g s a =
  List.iter
    (fun ci ->
      let c = Graph.channel g ci in
      s.tokens.(ci) <- s.tokens.(ci) + c.Graph.prod_seq.(s.firing_phase.(a)))
    (Graph.out_channels g a)

let sim_fixpoint g taus s =
  let n = Graph.num_actors g in
  let guard = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      while sim_enabled g s a do
        changed := true;
        incr guard;
        if !guard > 10_000_000 then
          invalid_arg "Csdf_selftimed.analyze: zero-time livelock";
        sim_consume g s a;
        s.counts.(a) <- s.counts.(a) + 1;
        s.firing_phase.(a) <- s.phase.(a);
        let tau = taus.(a).(s.phase.(a)) in
        s.phase.(a) <- (s.phase.(a) + 1) mod (Graph.actor g a).Graph.phases;
        if tau = 0 then sim_produce g s a else s.busy.(a) <- s.time + tau
      done
    done
  done

(* Advance to the earliest completion and apply everything due then;
   [false] when nothing is outstanding. *)
let sim_advance g s =
  let next = Array.fold_left min idle s.busy in
  if next = idle then false
  else begin
    s.time <- next;
    Array.iteri
      (fun a c ->
        if c = next then begin
          s.busy.(a) <- idle;
          sim_produce g s a
        end)
      s.busy;
    true
  end

let build_result g gamma s ~t0 ~c0 ~states =
  let n = Graph.num_actors g in
  let period = s.time - t0 in
  let iterations = (s.counts.(0) - c0) / gamma.(0) in
  let throughput =
    Array.init n (fun a -> Rat.make (iterations * gamma.(a)) period)
  in
  { throughput; period; transient = t0; states }

(* The pre-engine exploration (Marshal snapshots into a string-keyed
   Hashtbl), retained as the independent half of the
   [diff.csdf-engine-vs-reference] oracle; the packed instance below must
   agree with it exactly. *)
let analyze_reference ?(max_states = 1_000_000) g taus =
  let gamma = validate g taus in
  let s = sim_create g in
  let snapshot () =
    let rel =
      Array.map (fun c -> if c = idle then -1 else c - s.time) s.busy
    in
    Marshal.to_string (s.tokens, s.phase, rel) [ Marshal.No_sharing ]
  in
  let seen : (string, int * int) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore () =
    sim_fixpoint g taus s;
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, c0) ->
        build_result g gamma s ~t0 ~c0 ~states:(Hashtbl.length seen)
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (s.time, s.counts.(0));
        if not (sim_advance g s) then raise Deadlocked;
        explore ()
  in
  explore ()

(* The packed engine, as an instance of the generic driver: channel token
   counts and per-actor (phase, relative-completion) pairs stream through
   {!Engine.Explore}'s packer. Completions are strictly in the future, so
   0 is free as the idle sentinel of the relative encoding; the phase a
   busy firing started in is derived (the previous phase), never keyed —
   exactly the reference snapshot's information content. *)
let analyze ?(max_states = 1_000_000) g taus =
  let gamma = validate g taus in
  let n = Graph.num_actors g in
  let nc = Graph.num_channels g in
  let s = sim_create g in
  let ex = Engine.Explore.create () in
  let pack = Engine.Explore.pack ex in
  let encode () =
    for ci = 0 to nc - 1 do
      Engine.Pack.add_uint pack s.tokens.(ci)
    done;
    for a = 0 to n - 1 do
      Engine.Pack.add_uint pack s.phase.(a);
      Engine.Pack.add_uint pack
        (if s.busy.(a) = idle then 0 else s.busy.(a) - s.time)
    done
  in
  let rel =
    Engine.Explore.
      {
        fire = (fun () -> sim_fixpoint g taus s);
        encode;
        payload0 = (fun () -> s.time);
        payload1 = (fun () -> s.counts.(0));
        advance = (fun () -> sim_advance g s);
      }
  in
  match Engine.Explore.run ex ~max_states ~budget:Budget.infinite rel with
  | Engine.Explore.Recurred { p0 = t0; p1 = c0 } ->
      build_result g gamma s ~t0 ~c0 ~states:(Engine.Explore.length ex)
  | Engine.Explore.Deadlocked -> raise Deadlocked
  | Engine.Explore.Cap_exceeded -> raise (State_space_exceeded max_states)
  | Engine.Explore.Budget_stop _ -> assert false (* infinite budget *)

let throughput ?max_states g taus a =
  let r = analyze ?max_states g taus in
  Rat.div_int r.throughput.(a) (Graph.actor g a).Graph.phases
