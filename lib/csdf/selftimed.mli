module Rat = Sdf.Rat

(** Self-timed state-space throughput analysis for CSDF graphs.

    The same exploration as {!Analysis.Selftimed}, with phase-wise rates
    and per-phase execution times. Phases of one actor execute strictly in
    order and without self-overlap (the sequential-actor semantics the
    allocation flow assumes anyway), which also keeps the state space
    finite for connected, consistent graphs with bounded feedback.

    Together with {!Graph.lump} this quantifies the price of lumping: the
    lumped SDF's throughput never exceeds the phase-accurate result
    (tested as a property; see the E19 bench). *)

type result = {
  throughput : Rat.t array;
      (** per actor: {e phase} firings per time unit in the steady state;
          divide by the phase count for full-cycle rates *)
  period : int;
  transient : int;
  states : int;
}

exception Deadlocked
exception State_space_exceeded of int

val analyze : ?max_states:int -> Graph.t -> int array array -> result
(** [analyze g taus] with [taus.(a).(p)] the execution time of actor [a]'s
    phase [p]. [max_states] defaults to [1_000_000]. Runs on the generic
    packed engine ({!Engine.Explore}).
    @raise Invalid_argument on inconsistent graphs, phase-count mismatches
    or negative times. *)

val analyze_reference :
  ?max_states:int -> Graph.t -> int array array -> result
(** The pre-engine exploration (Marshal snapshots into a string-keyed
    [Hashtbl]), retained as the independent half of the
    [diff.csdf-engine-vs-reference] oracle. Same exceptions, validation
    and results as {!analyze}; the two must agree exactly — result
    fields, visited-state count, deadlock and cap outcomes. *)

val throughput : ?max_states:int -> Graph.t -> int array array -> int -> Rat.t
(** Full-cycle rate of one actor (phase rate / phase count). *)
