module Sdfg = Sdf.Sdfg

type t = {
  in_ch : int array array;
  in_q : int array array;  (* consumption rate, aligned with in_ch *)
  out_ch : int array array;
  out_p : int array array;  (* production rate, aligned with out_ch *)
  succ : int array array;  (* sorted unique consumers of each actor's output *)
}

let of_graph g =
  let n = Sdfg.num_actors g in
  let in_ch =
    Array.init n (fun a -> Array.of_list (Sdfg.in_channels g a))
  in
  let out_ch =
    Array.init n (fun a -> Array.of_list (Sdfg.out_channels g a))
  in
  let succ =
    Array.map
      (fun chs ->
        Array.of_list
          (List.sort_uniq compare
             (Array.to_list
                (Array.map (fun ci -> (Sdfg.channel g ci).Sdfg.dst) chs))))
      out_ch
  in
  {
    in_ch;
    in_q =
      Array.map (Array.map (fun ci -> (Sdfg.channel g ci).Sdfg.cons)) in_ch;
    out_ch;
    out_p =
      Array.map (Array.map (fun ci -> (Sdfg.channel g ci).Sdfg.prod)) out_ch;
    succ;
  }

let successors t a = t.succ.(a)

let enabled t tokens a =
  let ch = t.in_ch.(a) and q = t.in_q.(a) in
  let rec go i =
    i >= Array.length ch
    || tokens.(Array.unsafe_get ch i) >= Array.unsafe_get q i && go (i + 1)
  in
  go 0

let consume t tokens a =
  let ch = t.in_ch.(a) and q = t.in_q.(a) in
  for i = 0 to Array.length ch - 1 do
    let ci = Array.unsafe_get ch i in
    tokens.(ci) <- tokens.(ci) - Array.unsafe_get q i
  done

let produce t tokens a =
  let ch = t.out_ch.(a) and p = t.out_p.(a) in
  for i = 0 to Array.length ch - 1 do
    let ci = Array.unsafe_get ch i in
    tokens.(ci) <- tokens.(ci) + Array.unsafe_get p i
  done

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x <= y -> x :: l
  | y :: rest -> y :: insert_sorted x rest
