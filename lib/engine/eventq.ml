type t = {
  mutable ts : int array;  (* heap-ordered completion times *)
  mutable ac : int array;  (* actor of each entry, aligned with ts *)
  mutable len : int;
}

let create () = { ts = Array.make 64 0; ac = Array.make 64 0; len = 0 }

let is_empty t = t.len = 0
let length t = t.len

let min_time t = if t.len = 0 then max_int else t.ts.(0)

let grow t =
  let cap = Array.length t.ts in
  let nts = Array.make (cap * 2) 0 and nac = Array.make (cap * 2) 0 in
  Array.blit t.ts 0 nts 0 cap;
  Array.blit t.ac 0 nac 0 cap;
  t.ts <- nts;
  t.ac <- nac

let push t time a =
  if t.len = Array.length t.ts then grow t;
  let ts = t.ts and ac = t.ac in
  (* Sift up. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if ts.(parent) > time then begin
      ts.(!i) <- ts.(parent);
      ac.(!i) <- ac.(parent);
      i := parent
    end
    else continue_ := false
  done;
  ts.(!i) <- time;
  ac.(!i) <- a

let pop_min t =
  let ts = t.ts and ac = t.ac in
  let actor = ac.(0) in
  t.len <- t.len - 1;
  let n = t.len in
  if n > 0 then begin
    let time = ts.(n) and a = ac.(n) in
    (* Sift the former last entry down from the root. *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        let c = if l + 1 < n && ts.(l + 1) < ts.(l) then l + 1 else l in
        if ts.(c) < time then begin
          ts.(!i) <- ts.(c);
          ac.(!i) <- ac.(c);
          i := c
        end
        else continue_ := false
      end
    done;
    ts.(!i) <- time;
    ac.(!i) <- a
  end;
  actor

let clear t = t.len <- 0
