module Sdfg = Sdf.Sdfg

(** Shared firing-rule primitives of the state-space engines.

    One precomputed table per analyzed graph replaces the
    [enabled]/[consume]/[produce] closures both explorers used to build
    over [Sdfg.in_channels]/[out_channels] int lists: channel indices and
    rates live in flat arrays, so the hot loop walks contiguous ints
    instead of chasing list cells. *)

type t

val of_graph : Sdfg.t -> t

val enabled : t -> int array -> int -> bool
(** [enabled ops tokens a]: every input channel of [a] holds at least its
    consumption rate. *)

val consume : t -> int array -> int -> unit
val produce : t -> int array -> int -> unit

val successors : t -> int -> int array
(** [successors ops a]: the sorted, duplicate-free consumers of [a]'s
    output channels — the only actors a firing of [a] can newly enable.
    Worklist-style fixpoints push these instead of rescanning every
    actor. *)

val insert_sorted : int -> int list -> int list
(** Insert into an ascending sorted list. Used by the retained reference
    engines ([analyze_reference]) and the schedulers/simulators that keep
    list-shaped pending sets; the packed engines keep completions in
    {!Rings}. *)
