type t = {
  sets : Stateset.t array;
  pub_states : int Atomic.t array;
  pub_arena : int Atomic.t array;
}

let create ?initial_slots ~shards () =
  if shards < 1 then invalid_arg "Sharded_stateset.create: shards < 1";
  {
    sets = Array.init shards (fun _ -> Stateset.create ?initial_slots ());
    pub_states = Array.init shards (fun _ -> Atomic.make 0);
    pub_arena = Array.init shards (fun _ -> Atomic.make 0);
  }

let shards t = Array.length t.sets

(* FNV-1a over native int words. The route hash feeds only shard
   selection, so it trades avalanche quality for one xor and one multiply
   per word; identical word sequences (hence identical states) always
   land on the same shard, which is the property ownership routing
   needs. *)
let word_hash_seed = 0x4bf29ce484222325
let word_hash_mix h w = (h lxor w) * 0x100000001b3

(* Hash-prefix routing: the top bits of the (sign-cleared) hash pick the
   owner, so the shard index is a contiguous prefix range — independent
   of the low bits the per-shard open-addressing tables probe with. *)
let owner_of_hash t h =
  let h = h land max_int in
  ((h lsr 41) * Array.length t.sets) lsr 21

let find_or_add t ~shard pack ~p0 ~p1 =
  Stateset.find_or_add t.sets.(shard) pack ~p0 ~p1

let publish t shard =
  Atomic.set t.pub_states.(shard) (Stateset.length t.sets.(shard));
  Atomic.set t.pub_arena.(shard) (Stateset.arena_bytes t.sets.(shard))

let published_states t =
  let s = ref 0 in
  Array.iter (fun a -> s := !s + Atomic.get a) t.pub_states;
  !s

let published_arena_bytes t =
  let s = ref 0 in
  Array.iter (fun a -> s := !s + Atomic.get a) t.pub_arena;
  !s

let shard_stats t i = Stateset.stats t.sets.(i)

let stats t =
  Array.fold_left
    (fun acc set ->
      let s = Stateset.stats set in
      {
        Stateset.states = acc.Stateset.states + s.Stateset.states;
        slots = acc.Stateset.slots + s.Stateset.slots;
        arena_bytes = acc.Stateset.arena_bytes + s.Stateset.arena_bytes;
        max_probe = max acc.Stateset.max_probe s.Stateset.max_probe;
      })
    { Stateset.states = 0; slots = 0; arena_bytes = 0; max_probe = 0 }
    t.sets
