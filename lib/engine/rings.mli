(** Per-actor monotone completion-time rings.

    Every firing of a given actor has the same execution time, so the
    firing started earlier completes no later: the multiset of outstanding
    completion times of one actor is FIFO, and a ring buffer of absolute
    completion times replaces the sorted list the explorers used to
    maintain (see DESIGN, "State encoding", for the ordering argument —
    it also covers the TDMA-gated completions of the constrained engine,
    which are monotone per tile by the same reasoning).

    [min_head] tracks the global earliest completion across all rings: it
    is maintained incrementally on pushes (a push can only lower it) and
    recomputed by one O(actors) head scan after a batch of pops — the
    per-event cost the old [Array.fold_left] over whole lists paid per
    element. *)

type t

val create : int -> t
(** [create n] makes [n] empty rings. *)

val push : t -> int -> int -> unit
(** [push t a c] appends completion time [c] to actor [a]'s ring. [c] must
    be no smaller than the ring's current tail (FIFO order — holds by
    construction for fixed-exec-time completions pushed in start order). *)

val length : t -> int -> int
val total : t -> int
(** Outstanding completions across all rings. *)

val min_head : t -> int
(** Earliest outstanding completion time, [max_int] when all rings are
    empty. Amortised O(1) between pops. *)

val pop_due : t -> now:int -> (int -> unit) -> unit
(** [pop_due t ~now f] pops every completion equal to [now] from every
    ring, calling [f actor] once per popped completion, actors in index
    order. *)

val pop_front : t -> int -> int
(** [pop_front t a] removes and returns actor [a]'s oldest outstanding
    completion time. Actor [a]'s ring must be non-empty. Used by the
    {!Eventq}-driven explorers, which learn the due actor from the heap
    and only need the matching FIFO entry dropped. *)

val snapshot_into : t -> now:int -> int array -> int -> int
(** [snapshot_into t ~now buf pos] writes, for every actor in index
    order, its outstanding-completion count followed by its completion
    times relative to [now] (FIFO order), starting at [buf.(pos)];
    returns the position one past the last word written. The caller must
    have reserved [total t + actors] words. The word sequence is exactly
    the field sequence the packed-state encoding varint-encodes, so two
    equal snapshots pack to equal bytes and vice versa. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter t a f] applies [f] to actor [a]'s outstanding completion times
    in FIFO (ascending) order. *)
