type t = {
  mutable mask : int;  (* slots - 1, slots a power of two *)
  mutable off : int array;  (* arena offset, -1 = empty slot *)
  mutable slen : int array;
  mutable hash : int array;
  mutable pay0 : int array;
  mutable pay1 : int array;
  mutable count : int;
  mutable arena : Bytes.t;
  mutable arena_len : int;
  mutable max_probe : int;
}

type stats = { states : int; slots : int; arena_bytes : int; max_probe : int }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

(* Most explorations (throughput checks inside the allocation flow) store
   a handful of states before recurring, so the empty table starts tiny:
   the doubling growth path amortizes to O(1) per insert either way, and a
   small start keeps short runs from paying for the long ones. *)
let create ?(initial_slots = 16) () =
  let slots = pow2 (max 16 initial_slots) 16 in
  {
    mask = slots - 1;
    off = Array.make slots (-1);
    slen = Array.make slots 0;
    hash = Array.make slots 0;
    pay0 = Array.make slots 0;
    pay1 = Array.make slots 0;
    count = 0;
    arena = Bytes.create 512;
    arena_len = 0;
    max_probe = 0;
  }

let length t = t.count
let arena_bytes t = t.arena_len

let grow t =
  let old_off = t.off
  and old_slen = t.slen
  and old_hash = t.hash
  and old_p0 = t.pay0
  and old_p1 = t.pay1 in
  let slots = (t.mask + 1) * 2 in
  t.mask <- slots - 1;
  t.off <- Array.make slots (-1);
  t.slen <- Array.make slots 0;
  t.hash <- Array.make slots 0;
  t.pay0 <- Array.make slots 0;
  t.pay1 <- Array.make slots 0;
  Array.iteri
    (fun i o ->
      if o >= 0 then begin
        let j = ref (old_hash.(i) land t.mask) in
        while t.off.(!j) >= 0 do
          j := (!j + 1) land t.mask
        done;
        t.off.(!j) <- o;
        t.slen.(!j) <- old_slen.(i);
        t.hash.(!j) <- old_hash.(i);
        t.pay0.(!j) <- old_p0.(i);
        t.pay1.(!j) <- old_p1.(i)
      end)
    old_off

let arena_append t src len =
  let need = t.arena_len + len in
  if need > Bytes.length t.arena then begin
    let cap = ref (Bytes.length t.arena * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.arena 0 b 0 t.arena_len;
    t.arena <- b
  end;
  Bytes.blit src 0 t.arena t.arena_len len;
  let off = t.arena_len in
  t.arena_len <- need;
  off

let equal_at t off len src =
  let rec go i =
    i >= len
    || Bytes.unsafe_get t.arena (off + i) = Bytes.unsafe_get src i
       && go (i + 1)
  in
  go 0

let find_or_add t pack ~p0 ~p1 =
  let h = Pack.hash pack in
  let len = Pack.len pack in
  let src = Pack.unsafe_bytes pack in
  let rec go i probe =
    if t.off.(i) < 0 then begin
      (* Empty slot: the state is new. *)
      let off = arena_append t src len in
      t.off.(i) <- off;
      t.slen.(i) <- len;
      t.hash.(i) <- h;
      t.pay0.(i) <- p0;
      t.pay1.(i) <- p1;
      t.count <- t.count + 1;
      if t.max_probe < probe then t.max_probe <- probe;
      if t.count * 10 > (t.mask + 1) * 7 then grow t;
      (false, p0, p1)
    end
    else if t.hash.(i) = h && t.slen.(i) = len && equal_at t t.off.(i) len src
    then begin
      if t.max_probe < probe then t.max_probe <- probe;
      (true, t.pay0.(i), t.pay1.(i))
    end
    else go ((i + 1) land t.mask) (probe + 1)
  in
  go (h land t.mask) 1

let stats t =
  {
    states = t.count;
    slots = t.mask + 1;
    arena_bytes = t.arena_len;
    max_probe = t.max_probe;
  }
