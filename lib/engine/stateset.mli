(** Open-addressing seen-set over an arena of packed states.

    The exploration's recurrence detection needs exactly one operation:
    "have I seen this state before — and if so, what did I record when I
    first saw it; if not, remember it with this record". [find_or_add]
    does that in one probe sequence. States are stored back to back in a
    single byte arena; the table itself is five flat int arrays (offset,
    length, hash, two payload words), so a lookup allocates nothing and a
    miss allocates only by bumping the arena cursor. Linear probing over a
    power-of-two table, resized at 7/10 occupancy. *)

type t

type stats = {
  states : int;
  slots : int;
  arena_bytes : int;  (** total packed-state bytes stored *)
  max_probe : int;  (** longest probe sequence seen *)
}

val create : ?initial_slots:int -> unit -> t
(** [initial_slots] is rounded up to a power of two (default 16: most
    explorations recur within a few states, and growth is amortized). *)

val length : t -> int

val arena_bytes : t -> int
(** Packed-state bytes stored so far; O(1), for per-state budget checks
    (memory budgets) without building a {!stats} record. *)

val find_or_add : t -> Pack.t -> p0:int -> p1:int -> bool * int * int
(** [find_or_add t pack ~p0 ~p1] looks up the packed state currently held
    by [pack]. If present, returns [(true, q0, q1)] with the payload
    recorded at insertion; otherwise inserts it with payload [(p0, p1)]
    and returns [(false, p0, p1)]. The tuple is the only allocation. *)

val stats : t -> stats
