(** A {!Stateset} sharded across domains by ownership hashing.

    Each shard is a private open-addressing {!Stateset} arena written by
    exactly one domain — lock-free by ownership rather than by striped
    locks: a state is routed to the shard named by the top bits of a
    cheap word-level hash of its raw snapshot (hash-prefix → shard, see
    {!owner_of_hash}), and only that shard ever probes or inserts it.
    Identical states hash identically and therefore always meet in the
    same shard, so a per-shard [find_or_add] detects revisits exactly as
    the single-domain table does.

    Cross-domain visibility is limited to the published counters
    ({!publish} / {!published_arena_bytes}): the coordinating domain
    reads them for budget accounting while shards are live, and reads
    the full tables ({!stats}) only after joining the shard domains. *)

type t

val create : ?initial_slots:int -> shards:int -> unit -> t
val shards : t -> int

val word_hash_seed : int

val word_hash_mix : int -> int -> int
(** Fold one snapshot word into the route hash (FNV-1a over native
    words). The fold must cover every word of the snapshot so that
    word-sequence equality implies route equality. *)

val owner_of_hash : t -> int -> int
(** Owning shard of a route hash: the top hash bits scaled into
    [0, shards) — states are partitioned by hash prefix. *)

val find_or_add : t -> shard:int -> Pack.t -> p0:int -> p1:int -> bool * int * int
(** As {!Stateset.find_or_add} on the given shard's table. Must only be
    called by the domain owning [shard]. *)

val publish : t -> int -> unit
(** Publish shard [i]'s current size counters for cross-domain readers.
    Called by the owning domain between batches. *)

val published_states : t -> int
val published_arena_bytes : t -> int
(** Sums of the last published per-shard counters; safe from any domain,
    may lag the owning domains' tables. *)

val shard_stats : t -> int -> Stateset.stats
val stats : t -> Stateset.stats
(** Aggregate stats (states/slots/arena summed, [max_probe] maxed). Only
    meaningful after the shard domains have been joined. *)
