type t = {
  buf : int array array;  (* circular, per actor; grown by doubling *)
  head : int array;
  len : int array;
  mutable outstanding : int;
  mutable min_cache : int;
  mutable min_valid : bool;
}

let create n =
  {
    buf = Array.init n (fun _ -> Array.make 4 0);
    head = Array.make n 0;
    len = Array.make n 0;
    outstanding = 0;
    min_cache = max_int;
    min_valid = true;
  }

let length t a = t.len.(a)
let total t = t.outstanding

let push t a c =
  let b = t.buf.(a) in
  let cap = Array.length b in
  if t.len.(a) = cap then begin
    (* Unroll the ring into a doubled buffer, oldest first. *)
    let nb = Array.make (cap * 2) 0 in
    for i = 0 to cap - 1 do
      nb.(i) <- b.((t.head.(a) + i) mod cap)
    done;
    t.buf.(a) <- nb;
    t.head.(a) <- 0
  end;
  let b = t.buf.(a) in
  b.((t.head.(a) + t.len.(a)) mod Array.length b) <- c;
  t.len.(a) <- t.len.(a) + 1;
  t.outstanding <- t.outstanding + 1;
  if t.min_valid && c < t.min_cache then t.min_cache <- c

let min_head t =
  if t.min_valid then t.min_cache
  else begin
    let m = ref max_int in
    for a = 0 to Array.length t.len - 1 do
      if t.len.(a) > 0 && t.buf.(a).(t.head.(a)) < !m then
        m := t.buf.(a).(t.head.(a))
    done;
    t.min_cache <- !m;
    t.min_valid <- true;
    !m
  end

let pop_due t ~now f =
  for a = 0 to Array.length t.len - 1 do
    let b = t.buf.(a) in
    let cap = Array.length b in
    while t.len.(a) > 0 && b.(t.head.(a)) = now do
      t.head.(a) <- (t.head.(a) + 1) mod cap;
      t.len.(a) <- t.len.(a) - 1;
      t.outstanding <- t.outstanding - 1;
      f a
    done
  done;
  t.min_valid <- false

let pop_front t a =
  let b = t.buf.(a) in
  let c = b.(t.head.(a)) in
  t.head.(a) <- (t.head.(a) + 1) mod Array.length b;
  t.len.(a) <- t.len.(a) - 1;
  t.outstanding <- t.outstanding - 1;
  t.min_valid <- false;
  c

let snapshot_into t ~now buf pos0 =
  let pos = ref pos0 in
  for a = 0 to Array.length t.len - 1 do
    let la = t.len.(a) in
    buf.(!pos) <- la;
    incr pos;
    let b = t.buf.(a) in
    let cap = Array.length b in
    let h = t.head.(a) in
    for i = 0 to la - 1 do
      buf.(!pos) <- b.((h + i) mod cap) - now;
      incr pos
    done
  done;
  !pos

let iter t a f =
  let b = t.buf.(a) in
  let cap = Array.length b in
  for i = 0 to t.len.(a) - 1 do
    f b.((t.head.(a) + i) mod cap)
  done
