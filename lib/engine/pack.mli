(** Reusable packed-state writer.

    A [Pack.t] is a growable byte buffer with a rolling FNV-1a hash folded
    in as the bytes are written. The state-space explorers reset one writer
    per state, stream the state fields through it, and hand it to
    {!Stateset.find_or_add} — no intermediate string, tuple or list is
    allocated per state, and the hash is ready the moment packing ends.

    Encodings:
    - {!add_uint}: LEB128 varint (7 bits per byte, high bit = continue) —
      used for the fields with no useful static bound (token counts,
      relative completion times, ring lengths). Small values, the common
      case by far, cost one byte.
    - {!add_int}: zigzag-mapped varint for fields that may be negative
      (sentinels such as "no current actor").
    - {!add_fixed}: little-endian fixed width for fields with a static
      per-graph bound (schedule positions, wheel phases), with the width
      chosen once per graph via {!width_for}.

    A byte sequence written as a fixed field layout followed by
    length-prefixed varint groups is uniquely decodable, so byte equality
    of two packs implies field-by-field equality — the property both the
    seen-set and the memo cache keys rely on. *)

type t

val create : ?initial:int -> unit -> t
(** A writer with an [initial]-byte buffer (default 256); the buffer grows
    by doubling and is reused across {!reset}s. *)

val reset : t -> unit
(** Forget the contents and restart the rolling hash. O(1). *)

val add_byte : t -> int -> unit
(** [add_byte t v] appends the low 8 bits of [v]. *)

val add_uint : t -> int -> unit
(** LEB128 varint. [v] must be non-negative. *)

val add_int : t -> int -> unit
(** Zigzag varint; any native int. *)

val add_fixed : t -> width:int -> int -> unit
(** [width] little-endian bytes of [v]; [v] must fit (callers derive
    [width] from a static bound with {!width_for}). *)

val width_for : int -> int
(** Bytes needed to represent every value in [\[0, bound\]]. *)

val len : t -> int
val hash : t -> int
(** FNV-1a over the bytes written since the last {!reset}, folded to a
    non-negative int. *)

val unsafe_bytes : t -> Bytes.t
(** The underlying buffer; only the first {!len} bytes are meaningful, and
    the reference is invalidated by the next write (growth reallocates). *)

val contents : t -> string
(** A fresh string copy of the packed bytes (memo cache keys). *)
