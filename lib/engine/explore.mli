(** Generic packed state-space exploration driver.

    Every throughput analysis in this library — plain self-timed
    ({!Analysis.Selftimed}), resource-constrained ({!Core.Constrained}),
    cyclo-static ({!Csdf.Selftimed}) and the scenario product space
    ({!Scenario.Product}) — explores the same shape of state space: a
    deterministic chain (or a branching graph, for the product) in which
    each step fires everything that can fire, snapshots the state, asks
    the seen-set whether the state recurred, and otherwise advances time.
    What differs between analyses is only the {e transition relation}:
    how a step fires, how the state is laid out in bytes, what payload
    words recurrence needs, and how the clock advances.

    [Explore] owns the shared machinery — the reusable {!Pack} writer,
    the open-addressing {!Stateset}, the state-cap check and the
    per-state {!Budget} probe — and takes the relation as a record of
    hooks. The instances stay bit-identical to their pre-unification
    behaviour: the driver stores a state first and then checks the cap
    ([length > max_states] after the store is the reference engines'
    [>= max_states] before it), and the budget probe is one load and one
    branch per state when the budget is infinite. *)

type t
(** A seen-set plus a reusable packed-state writer. *)

type relation = {
  fire : unit -> unit;
      (** Run the instant's firing fixpoint (start every enabled firing,
          completing zero-time ones on the spot). *)
  encode : unit -> unit;
      (** Write the recurrence state into {!pack} (already reset). The
          byte layout must be uniquely decodable — fixed field counts or
          length-prefixed groups — so byte equality is state equality. *)
  payload0 : unit -> int;
  payload1 : unit -> int;
      (** The two payload words stored with a first visit and returned on
          the revisit (visit clock and a firing count, for every current
          instance). *)
  advance : unit -> bool;
      (** Advance the clock to the next completion instant and apply the
          completions; [false] when nothing is outstanding (deadlock). *)
}
(** A pluggable transition relation; see the instances for examples. *)

type verdict =
  | Recurred of { p0 : int; p1 : int }
      (** A state was revisited; the payload words are the ones stored at
          its first visit. *)
  | Deadlocked  (** [advance] found nothing outstanding. *)
  | Cap_exceeded  (** More than [max_states] states were stored. *)
  | Budget_stop of Budget.reason  (** The per-state budget probe tripped. *)

val create : unit -> t

val pack : t -> Pack.t
(** The writer [encode] must fill; reset by the driver before each call.
    Instances capture it once so their hooks allocate nothing per state. *)

val length : t -> int
(** States stored so far. *)

val stats : t -> Stateset.stats

val run : t -> max_states:int -> budget:Budget.t -> relation -> verdict
(** Drive [relation] until a verdict: fire, encode, probe the seen-set,
    and on a fresh state check the cap, probe the budget and advance.
    May be called on a fresh [t] only — the seen-set keeps the visited
    states afterwards for [length]/[stats]. *)

val record_gauges : Stateset.stats -> unit
(** Set the shared [engine.*] gauges (arena bytes, bytes per state,
    occupancy, max probe) and record the probe-length histogram sample —
    the one telemetry block every engine instance reports after a run.
    Call under [Obs.enabled ()]. *)
