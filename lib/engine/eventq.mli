(** Binary min-heap of pending completion events.

    The explorers used to find the next instant by scanning every actor's
    ring head ({!Rings.min_head}) and then scanning again to pop the due
    completions ({!Rings.pop_due}) — O(actors) per state, which dominates
    on wide graphs (H.263's HSDF expansion has thousands of actors). The
    event queue keeps one (time, actor) entry per outstanding firing in a
    heap over two flat int arrays: the next instant is O(1) and each pop
    is O(log outstanding), independent of the actor count. The per-actor
    FIFO content of {!Rings} is still maintained alongside for state
    packing; equal-keyed pops may come out in any actor order, which is
    sound because completions within one instant commute (each channel has
    a single consumer — see DESIGN §12). *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

val min_time : t -> int
(** Earliest pending completion time, [max_int] when empty. O(1). *)

val push : t -> int -> int -> unit
(** [push t time a] records that a firing of actor [a] completes at
    [time]. *)

val pop_min : t -> int
(** Remove a minimum-time entry and return its actor. The queue must be
    non-empty ([min_time t <> max_int]). *)

val clear : t -> unit
