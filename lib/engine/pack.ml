type t = { mutable buf : Bytes.t; mutable len : int; mutable h : int }

(* FNV-1a, truncated to OCaml's native int width. The offset basis has its
   top bit dropped to stay a literal; any odd non-zero basis preserves the
   mixing properties. *)
let fnv_basis = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let create ?(initial = 256) () =
  { buf = Bytes.create (max 16 initial); len = 0; h = fnv_basis }

let reset t =
  t.len <- 0;
  t.h <- fnv_basis

let ensure t extra =
  let need = t.len + extra in
  if need > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.buf 0 b 0 t.len;
    t.buf <- b
  end

let add_byte t v =
  let v = v land 0xff in
  ensure t 1;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr v);
  t.len <- t.len + 1;
  t.h <- (t.h lxor v) * fnv_prime

let rec add_uint t v =
  if v < 0x80 && v >= 0 then add_byte t v
  else begin
    add_byte t (v land 0x7f lor 0x80);
    add_uint t (v lsr 7)
  end

let add_int t v = add_uint t ((v lsl 1) lxor (v asr 62))

let add_fixed t ~width v =
  ensure t width;
  let v = ref v in
  for _ = 1 to width do
    add_byte t (!v land 0xff);
    v := !v lsr 8
  done

let width_for bound =
  let rec go w b = if b < 256 then w else go (w + 1) (b lsr 8) in
  go 1 (max 0 bound)

let len t = t.len
let hash t = t.h land max_int
let unsafe_bytes t = t.buf
let contents t = Bytes.sub_string t.buf 0 t.len
