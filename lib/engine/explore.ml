type t = { seen : Stateset.t; pk : Pack.t }

type relation = {
  fire : unit -> unit;
  encode : unit -> unit;
  payload0 : unit -> int;
  payload1 : unit -> int;
  advance : unit -> bool;
}

type verdict =
  | Recurred of { p0 : int; p1 : int }
  | Deadlocked
  | Cap_exceeded
  | Budget_stop of Budget.reason

let create () = { seen = Stateset.create (); pk = Pack.create () }
let pack t = t.pk
let length t = Stateset.length t.seen
let stats t = Stateset.stats t.seen

let run t ~max_states ~budget rel =
  let seen = t.seen and pk = t.pk in
  let rec step () =
    rel.fire ();
    Pack.reset pk;
    rel.encode ();
    let revisit, q0, q1 =
      Stateset.find_or_add seen pk ~p0:(rel.payload0 ()) ~p1:(rel.payload1 ())
    in
    if revisit then Recurred { p0 = q0; p1 = q1 }
      (* The pre-unification reference engines check the cap before
         storing; the stateset stores first, so "stored one too many" is
         the same condition. *)
    else if Stateset.length seen > max_states then Cap_exceeded
    else begin
      (* Budget probe: one load and one branch per state when infinite;
         state/arena caps are exact, clock and token amortised inside
         [Budget.check]. *)
      let stop =
        if Budget.is_infinite budget then None
        else
          let arena_bytes =
            if Budget.arena_limited budget then Stateset.arena_bytes seen
            else 0
          in
          Budget.check budget ~states:(Stateset.length seen) ~arena_bytes
      in
      match stop with
      | Some reason -> Budget_stop reason
      | None -> if rel.advance () then step () else Deadlocked
    end
  in
  step ()

(* One sample per run: the seen-set's longest probe sequence. The gauge of
   the same name only keeps the last run; the histogram shows whether long
   probe chains are an outlier or the norm across a batch. *)
let probe_len_hist = Obs.Histogram.make "engine.probe_len"

let record_gauges (s : Stateset.stats) =
  Obs.Gauge.set_int "engine.arena_bytes" s.arena_bytes;
  Obs.Gauge.set "engine.bytes_per_state"
    (float_of_int s.arena_bytes /. float_of_int (max 1 s.states));
  Obs.Gauge.set "engine.occupancy"
    (float_of_int s.states /. float_of_int (max 1 s.slots));
  Obs.Gauge.set_int "engine.max_probe" s.max_probe;
  Obs.Histogram.record probe_len_hist (float_of_int s.max_probe)
