module Rat = Sdf.Rat
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** The complete resource-allocation strategy (paper Section 9): binding,
    static-order scheduling, then time-slice allocation, each executed
    once. *)

type stats = {
  throughput_checks : int;
      (** state-space throughput computations performed (the paper reports
          16.1 on average per application, 8 for the H.263 run) *)
  bind_seconds : float;
  schedule_seconds : float;
  slice_seconds : float;
}

type allocation = {
  app : Appgraph.t;
  arch : Archgraph.t;  (** the architecture state the app was allocated on *)
  binding : Binding.t;
  schedules : Schedule.t option array;
  slices : int array;
  throughput : Rat.t;  (** achieved by the allocation; [>= app.lambda] *)
  stats : stats;
}

type failure =
  | Bind_failed of Binding_step.failure
  | Schedule_failed  (** the binding-aware execution deadlocks *)
  | Slice_failed of Slice_alloc.failure
      (** even the entire remaining wheels miss the constraint *)
  | Budget_exhausted of Budget.reason
      (** the run's resource budget ran out before the strategy could
          decide — inconclusive, unlike the other failures *)

val pp_failure : Format.formatter -> failure -> unit

val default_weights : Cost.weights
(** The paper's balanced tile-cost setting (1, 1, 1). *)

val allocate :
  ?weights:Cost.weights ->
  ?connection_model:Bind_aware.connection_model ->
  ?max_states:int ->
  ?max_cycles:int ->
  ?budget:Budget.t ->
  Appgraph.t ->
  Archgraph.t ->
  (allocation, failure) result
(** [allocate app arch] runs the three steps. [weights] defaults to the
    paper's balanced setting (1, 1, 1); [connection_model] to the paper's
    single-actor model. Under a finite [budget] (default infinite) the
    throughput probes of the slice phase run budgeted and the budget is
    re-checked at phase boundaries; exhaustion yields
    [Error (Budget_exhausted _)] rather than a misattributed phase
    failure. A returned [Ok] allocation is always fully verified — budgets
    never weaken the throughput guarantee. *)

val is_valid : allocation -> Archgraph.t -> bool
(** Re-verify an allocation against Section 7: resource constraints 1-4
    hold and the measured throughput meets the constraint. Used by tests
    and the property suite. *)
