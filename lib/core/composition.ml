module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type member = {
  ba : Bind_aware.t;
  schedules : Schedule.t option array;
  window_start : int array;
}

type result = { throughput : Rat.t array; period : int; states : int }

exception Deadlocked
exception State_space_exceeded of int

let idle = max_int

let members_of_allocations allocs =
  match allocs with
  | [] -> []
  | first :: _ ->
      let arch = first.Strategy.arch in
      let nt = Archgraph.num_tiles arch in
      let next_start = Array.make nt 0 in
      List.map
        (fun (a : Strategy.allocation) ->
          if Archgraph.num_tiles a.Strategy.arch <> nt then
            invalid_arg "Composition.members_of_allocations: tile mismatch";
          let window_start = Array.copy next_start in
          Array.iteri
            (fun t omega ->
              next_start.(t) <- next_start.(t) + omega;
              if next_start.(t) > (Archgraph.tile a.Strategy.arch t).Tile.wheel
              then
                invalid_arg
                  "Composition.members_of_allocations: slices overflow a wheel")
            a.Strategy.slices;
          let ba =
            Bind_aware.build ~app:a.Strategy.app ~arch:a.Strategy.arch
              ~binding:a.Strategy.binding ~slices:a.Strategy.slices ()
          in
          { ba; schedules = a.Strategy.schedules; window_start })
        allocs

(* Completion of [tau] work started at [t], gated by the window
   [lo, lo + omega) of a [w]-unit wheel (window contained in the wheel).
   Shift the frame so the window starts at phase 0 and reuse the
   single-window closed form. *)
let window_finish ~t ~tau ~w ~lo ~omega =
  let shift = ((w - (lo mod w)) mod w + w) mod w in
  Constrained.tdma_finish ~t:(t + shift) ~tau ~w ~omega - shift

(* The engine is shared between the exact exploration ([analyze], mode
   [`Exact]) and the windowed measurement ([measure], mode [`Horizon]). *)
let run mode members =
  let members = Array.of_list members in
  let nm = Array.length members in
  if nm = 0 then invalid_arg "Composition.analyze: no members";
  let arch = members.(0).ba.Bind_aware.arch in
  let nt = Archgraph.num_tiles arch in
  (* Windows of distinct members must not overlap on any tile. *)
  for t = 0 to nt - 1 do
    let w = (Archgraph.tile arch t).Tile.wheel in
    let windows =
      Array.to_list members
      |> List.filter_map (fun m ->
             let omega = m.ba.Bind_aware.slices.(t) in
             if omega = 0 then None else Some (m.window_start.(t), omega))
      |> List.sort compare
    in
    let rec check = function
      | (lo, omega) :: rest ->
          if lo + omega > w then
            invalid_arg "Composition.analyze: window exceeds the wheel";
          (match rest with
          | (lo', _) :: _ when lo' < lo + omega ->
              invalid_arg "Composition.analyze: overlapping windows"
          | _ -> ());
          check rest
      | [] -> ()
    in
    check windows
  done;
  (* Per-member mutable state. *)
  let tokens =
    Array.map
      (fun m ->
        Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels m.ba.Bind_aware.graph))
      members
  in
  let pending =
    Array.map (fun m -> Array.make (Sdfg.num_actors m.ba.Bind_aware.graph) []) members
  in
  let busy = Array.map (fun _ -> Array.make nt idle) members in
  let cur = Array.map (fun _ -> Array.make nt (-1)) members in
  let wake = Array.map (fun _ -> Array.make nt idle) members in
  let sched_pos = Array.map (fun _ -> Array.make nt 0) members in
  let out_count = Array.make nm 0 in
  let time = ref 0 in
  let ops =
    Array.map (fun m -> Engine.Ops.of_graph m.ba.Bind_aware.graph) members
  in
  let member_ops mi =
    let tks = tokens.(mi) in
    let o = ops.(mi) in
    ( (fun a -> Engine.Ops.enabled o tks a),
      (fun a -> Engine.Ops.consume o tks a),
      fun a -> Engine.Ops.produce o tks a )
  in
  let insert_sorted = Engine.Ops.insert_sorted in
  let start_fixpoint () =
    let guard = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      for mi = 0 to nm - 1 do
        let m = members.(mi) in
        let g = m.ba.Bind_aware.graph in
        let enabled, consume, produce = member_ops mi in
        let output = m.ba.Bind_aware.app.Appmodel.Appgraph.output_actor in
        (* Unbound (transport/sync) actors fire self-timed. *)
        for a = 0 to Sdfg.num_actors g - 1 do
          if m.ba.Bind_aware.tile_of.(a) < 0 then
            while enabled a do
              changed := true;
              incr guard;
              if !guard > 10_000_000 then
                invalid_arg "Composition.analyze: zero-time livelock";
              consume a;
              if a = output then out_count.(mi) <- out_count.(mi) + 1;
              let tau = m.ba.Bind_aware.exec_times.(a) in
              if tau = 0 then produce a
              else pending.(mi).(a) <- insert_sorted (!time + tau) pending.(mi).(a)
            done
        done;
        (* Scheduled actors, gated by this member's window. *)
        Array.iteri
          (fun t sched ->
            match sched with
            | None -> ()
            | Some s ->
                if busy.(mi).(t) = idle then begin
                  wake.(mi).(t) <- idle;
                  let a = Schedule.actor_at s sched_pos.(mi).(t) in
                  if enabled a then begin
                    let tile = Archgraph.tile arch t in
                    let w = tile.Tile.wheel in
                    let omega = m.ba.Bind_aware.slices.(t) in
                    let lo = m.window_start.(t) in
                    let rel = ((!time mod w) - lo + w) mod w in
                    if omega < w && rel >= omega then
                      wake.(mi).(t) <- !time + (w - rel)
                    else begin
                      changed := true;
                      consume a;
                      if a = output then out_count.(mi) <- out_count.(mi) + 1;
                      let fin =
                        window_finish ~t:!time
                          ~tau:m.ba.Bind_aware.exec_times.(a) ~w ~lo ~omega
                      in
                      if fin = !time then produce a
                      else begin
                        busy.(mi).(t) <- fin;
                        cur.(mi).(t) <- a
                      end;
                      sched_pos.(mi).(t) <- Schedule.advance s sched_pos.(mi).(t)
                    end
                  end
                end)
          m.schedules
      done
    done
  in
  let snapshot () =
    let rel l = List.map (fun c -> c - !time) l in
    let per_member =
      Array.mapi
        (fun mi _ ->
          ( Array.copy tokens.(mi),
            Array.map rel pending.(mi),
            Array.map (fun c -> if c = idle then -1 else c - !time) busy.(mi),
            Array.copy cur.(mi),
            Array.copy sched_pos.(mi) ))
        members
    in
    let phases =
      Array.init nt (fun t ->
          let w = (Archgraph.tile arch t).Tile.wheel in
          if w = 0 then 0 else !time mod w)
    in
    Marshal.to_string (per_member, phases) [ Marshal.No_sharing ]
  in
  let seen : (string, int * int array) Hashtbl.t = Hashtbl.create 4096 in
  (* Windowed mode: counts at the half-way mark. *)
  let half_mark : (int * int array) option ref = ref None in
  let advance_and_continue explore =
        let next = ref idle in
        for mi = 0 to nm - 1 do
          Array.iter (fun l -> match l with c :: _ -> if c < !next then next := c | [] -> ()) pending.(mi);
          Array.iter (fun c -> if c < !next then next := c) busy.(mi);
          Array.iter (fun c -> if c < !next then next := c) wake.(mi)
        done;
        if !next = idle then raise Deadlocked;
        time := !next;
        for mi = 0 to nm - 1 do
          let _, _, produce = member_ops mi in
          Array.iteri
            (fun t c ->
              if c = !time then begin
                produce cur.(mi).(t);
                busy.(mi).(t) <- idle;
                cur.(mi).(t) <- -1
              end)
            busy.(mi);
          Array.iteri
            (fun a l ->
              let rec settle = function
                | c :: rest when c = !time ->
                    produce a;
                    settle rest
                | l -> l
              in
              pending.(mi).(a) <- settle l)
            pending.(mi)
        done;
        explore ()
  in
  let rec explore_exact max_states () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, counts0) ->
        let period = !time - t0 in
        {
          throughput =
            Array.init nm (fun mi ->
                Rat.make (out_count.(mi) - counts0.(mi)) period);
          period;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, Array.copy out_count);
        advance_and_continue (explore_exact max_states)
  in
  let rec explore_horizon horizon () =
    start_fixpoint ();
    if !time >= horizon / 2 && !half_mark = None then
      half_mark := Some (!time, Array.copy out_count);
    if !time >= horizon then begin
      match !half_mark with
      | Some (t0, counts0) when !time > t0 ->
          let span = !time - t0 in
          {
            throughput =
              Array.init nm (fun mi ->
                  Rat.make (out_count.(mi) - counts0.(mi)) span);
            period = span;
            states = 0;
          }
      | _ ->
          {
            throughput = Array.init nm (fun mi -> Rat.make out_count.(mi) (max 1 !time));
            period = !time;
            states = 0;
          }
    end
    else advance_and_continue (explore_horizon horizon)
  in
  match mode with
  | `Exact max_states -> explore_exact max_states ()
  | `Horizon horizon -> explore_horizon horizon ()

let analyze ?(max_states = 2_000_000) members = run (`Exact max_states) members

let measure ?(horizon = 1_000_000) members =
  (run (`Horizon horizon) members).throughput
