module Rat = Sdf.Rat

(** Schedule- and TDMA-constrained execution of a binding-aware SDFG
    (paper Section 8.2).

    Rather than encoding static-order schedules and TDMA wheels into the
    graph (which would force the HSDF conversion), they constrain the
    state-space exploration:

    - a processor-bound actor may only start firing when it is at the
      current position of its tile's static-order schedule and the tile's
      processor is idle (static order implies sequential execution);
    - the remaining execution time of a bound firing only decreases while
      the TDMA wheel of its tile is inside the slice reserved for this
      application. Wheels all start at phase 0; the phase relation between
      tiles is irrelevant because the sync actors of the binding-aware
      graph already assume worst-case arrival (Section 8.1).
    - connection and sync actors are not processor-bound: they fire
      self-timed, as in {!Analysis.Selftimed}.

    The execution is event driven: the completion time of a gated firing is
    computed in closed form from the wheel phase, so large execution times
    (H.263-scale) do not enlarge the state space. The state — token
    distribution, remaining execution times, schedule positions and wheel
    phases — eventually recurs; throughput is read off the periodic phase. *)

val tdma_finish : t:int -> tau:int -> w:int -> omega:int -> int
(** Completion time of [tau] units of work started at absolute time [t] on
    a wheel of [w] time units whose slice occupies phases [0, omega): work
    only progresses inside the slice. Closed form; shared with the list
    scheduler.
    @raise Deadlocked when [omega <= 0 < tau] (the work can never finish). *)

type result = {
  throughput : Rat.t;  (** of the application's output actor *)
  period : int;
  transient : int;
  states : int;
}

type partial = {
  reason : Budget.reason;  (** what ran out *)
  explored : int;  (** states stored before the stop *)
  time_reached : int;  (** how far into the transient the exploration got *)
  upper_bound : Rat.t;
      (** sound upper bound on the output actor's throughput: the
          {!Analysis.Selftimed.cycle_upper_bound} of the binding-aware
          graph under TDMA-inflated minimum firing durations (a phase-0
          start is the fastest any slice can serve a firing, and the
          static-order serialization the bound ignores can only slow the
          execution further); {!Rat.infinity} when no cycle constrains it *)
  provably_dead : bool;
      (** the throughput is exactly 0: a cycle holds no tokens, or work
          gated behind an empty slice can never finish *)
}
(** What a budget-exhausted constrained exploration still knows; the lower
    bound is always 0. A throughput constraint above [upper_bound] is
    refuted for sure; one below it remains undecided. *)

exception Deadlocked
exception State_space_exceeded of int

val analyze :
  ?observer:(int -> int -> unit) ->
  ?offsets:int array ->
  ?max_states:int ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  result
(** [analyze ba ~schedules] explores the constrained execution. When
    given, [observer time actor] is called at every firing start, in order
    (the execution is deterministic), which reconstructs the Fig.-5(c)
    transition chain.
    [schedules.(t)] orders the actors bound to tile [t] (it must mention
    exactly those actors); [None] for tiles hosting no actor. The slice
    sizes are taken from the binding-aware graph ([ba.slices]); a used tile
    with slice 0 can make no progress and yields {!Deadlocked}.

    [offsets] gives each tile's TDMA wheel a start phase (default all 0);
    the paper's conservative model makes no offset assumption, so this knob
    exists to {e simulate implementations}: build the binding-aware graph
    with {!Bind_aware.Aligned_wheels} (zero sync wait, real arrivals) and
    sweep offsets — the guaranteed throughput must lower-bound every such
    run (tested as a property; see the E22 bench).

    [max_states] defaults to [500_000].

    Observer-free analyses are memoized on {!cache_key} (see
    {!Analysis.Memo}): repeating the analysis of a structurally identical
    configuration returns the stored result, with stored [Deadlocked] /
    [State_space_exceeded] outcomes re-raised. An observer bypasses the
    cache.
    @raise Invalid_argument if a schedule mentions an actor not bound to
    its tile, or if [offsets] has the wrong length. *)

val analyze_reference :
  ?observer:(int -> int -> unit) ->
  ?offsets:int array ->
  ?max_states:int ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  result
(** The pre-engine exploration (sorted completion lists, [Marshal]
    snapshots into a string-keyed [Hashtbl]), kept as the independent half
    of the engine-vs-reference differential checks and as the baseline of
    the exploration microbenchmark. Never memoized, never recorded in
    telemetry; same exceptions and validation as {!analyze}, and the two
    must agree exactly (result fields, visited-state count, deadlock and
    cap outcomes, observer call sequence). *)

val analyze_budgeted :
  ?observer:(int -> int -> unit) ->
  ?offsets:int array ->
  ?max_states:int ->
  budget:Budget.t ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  (result, partial) Stdlib.result
(** {!analyze} under a resource budget: [Ok result] on completion within
    it, [Error partial] when it runs out. With [Budget.infinite] the
    outcome is always [Ok] and identical to {!analyze}; [Deadlocked] and
    [State_space_exceeded] still raise (analysis outcomes, not budget
    outcomes). Observer-free runs probe the memo cache first and store
    only completed outcomes — a partial never poisons the cache. *)

val cache_key :
  ?offsets:int array ->
  ?max_states:int ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  string
(** Canonical structural serialization of a constrained-analysis input:
    binding-aware graph structure (channel endpoints, rates, tokens),
    execution times, tile assignment, per-tile TDMA wheels and slices,
    wheel offsets, static-order schedules, output actor and state cap.
    Actor/application names are deliberately excluded — throughput does
    not depend on them, so identical applications (e.g. copies in a
    multi-application workload) share cache entries. *)

val throughput_or_zero :
  ?max_states:int ->
  ?budget:Budget.t ->
  ?on_budget_stop:(Budget.reason -> unit) ->
  Bind_aware.t ->
  schedules:Schedule.t option array ->
  Rat.t
(** Like {!analyze} but mapping {!Deadlocked} and {!State_space_exceeded}
    to throughput 0 — the shape the slice-allocation binary search wants
    ("this allocation does not meet any constraint"). Under a finite
    [budget] (default infinite), a budget-exhausted probe also maps to 0:
    the search may only accept allocations whose throughput is proven.
    [on_budget_stop] is called with the reason whenever that happens, so
    the caller can tell a budget-cut 0 from a proven 0. *)
