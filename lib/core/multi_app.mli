module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

(** Multi-application allocation (paper Section 10.1 protocol, plus the
    improvements the paper names).

    Applications are handled one by one; after each successful allocation
    the consumed resources are removed from the architecture (slice time
    becomes occupied wheel; memory, NI connections and bandwidth shrink), so
    the next application only sees what is left — the paper's "resources
    that are not available should not be specified".

    The paper's experimental protocol stops at the first application that
    cannot be placed, "a conservative estimate on the number of
    applications for which resources can be allocated", and suggests two
    improvements: a design-time preprocessing step ordering the
    applications, and a run-time mechanism that rejects an application and
    continues with the next one. Both are provided here ({!order} and
    {!failure_policy}) and quantified by the E14 bench. *)

type failure_policy =
  | Stop_at_first_failure  (** the paper's protocol (default) *)
  | Skip_failed  (** reject the application, keep going *)

type order =
  | As_given  (** the paper's protocol (default) *)
  | By_total_work_descending
      (** heaviest applications first, while resources are plentiful *)
  | By_total_work_ascending  (** lightest first, maximising the count *)

type report = {
  allocations : Strategy.allocation list;  (** in allocation order *)
  rejected : Appgraph.t list;
      (** applications skipped under {!Skip_failed}, in order *)
  remaining : Archgraph.t;  (** the architecture after the last success *)
  first_failure : Strategy.failure option;
      (** why the first rejected application failed ([None] when all
          fitted) *)
  wheel_used : int;  (** total slice time committed, all tiles *)
  memory_used : int;
  connections_used : int;
  bw_in_used : int;
  bw_out_used : int;
}

val commit : Archgraph.t -> Strategy.allocation -> Archgraph.t
(** The architecture with the allocation's resources removed. *)

val allocate_until_failure :
  ?weights:Cost.weights ->
  ?retry_ladder:Cost.weights list ->
  ?max_states:int ->
  ?budget:Budget.t ->
  ?policy:failure_policy ->
  ?order:order ->
  Appgraph.t list ->
  Archgraph.t ->
  report
(** Allocate the applications under the given policy and order. Defaults
    reproduce the paper's protocol: in the given order, stopping at the
    first failure, one cost-function setting.

    [retry_ladder] switches each application to {!Flow.allocate_with_retry}
    over the given settings ([weights] is then ignored) — the SDF3-style
    revision loop applied per application. [budget] (default infinite) is
    shared by every per-application ladder: an exhausted budget surfaces
    as a [Budget_exhausted] failure for the application that hit it, which
    the policy then treats like any other failure (stop or skip).

    When a {!Par} worker pool is active and memoization is enabled, every
    application is first tried against the initial architecture
    concurrently (telemetry suppressed, outcomes discarded) to warm the
    analysis memo tables; the committing pass itself stays sequential —
    resource commitment is a dependency chain — and is bit-identical to a
    sequential run. *)
