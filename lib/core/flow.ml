module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph
module Rat = Sdf.Rat

type attempt = {
  weights : Cost.weights;
  outcome : (Strategy.allocation, Strategy.failure) result;
}

type result = {
  allocation : Strategy.allocation option;
  attempts : attempt list;
}

let default_weight_ladder =
  [
    Cost.weights 0. 1. 2.;
    Cost.weights 0. 0. 1.;
    Cost.weights 0. 1. 0.;
    Cost.weights 1. 1. 1.;
    Cost.weights 1. 0. 0.;
  ]

let outcome_label = function
  | Ok _ -> "allocated"
  | Error (Strategy.Bind_failed _) -> "bind_failed"
  | Error Strategy.Schedule_failed -> "schedule_failed"
  | Error (Strategy.Slice_failed _) -> "slice_failed"
  | Error (Strategy.Budget_exhausted _) -> "budget_exhausted"

(* One telemetry record per ladder rung tried (kind "flow.attempt"). *)
let record_attempt app rung (weights : Cost.weights) outcome =
  Obs.Counter.add "flow.attempts" 1;
  Obs.Event.emit "flow.attempt"
    ([
       ("app", Obs.Event.String app.Appgraph.app_name);
       ("rung", Obs.Event.Int rung);
       ("c1", Obs.Event.Float weights.Cost.c1);
       ("c2", Obs.Event.Float weights.Cost.c2);
       ("c3", Obs.Event.Float weights.Cost.c3);
       ("outcome", Obs.Event.String (outcome_label outcome));
     ]
    @
    match outcome with
    | Ok (alloc : Strategy.allocation) ->
        [
          ( "throughput",
            Obs.Event.String (Rat.to_string alloc.Strategy.throughput) );
          ( "checks",
            Obs.Event.Int alloc.Strategy.stats.Strategy.throughput_checks );
        ]
    | Error (Strategy.Slice_failed f) ->
        [ ("checks", Obs.Event.Int f.Slice_alloc.checks) ]
    | Error _ -> [])

let allocate_with_retry ?(weight_ladder = default_weight_ladder)
    ?connection_model ?max_states ?(budget = Budget.infinite) app arch =
  (* With a worker pool available, evaluate every ladder rung speculatively
     in parallel first. The speculative pass is invisible: its telemetry is
     suppressed ({!Obs.unrecorded}) and its outcomes are discarded — its
     only effect is warming the {!Constrained} / {!Analysis.Selftimed}
     memo tables. The sequential loop below then remains the single
     authoritative evaluation order, so results (and the attempt list) are
     bit-identical to a [--jobs 1] run, while the expensive state-space
     explorations have already happened concurrently. *)
  if
    Par.jobs () > 1
    && (not (Par.inside_task ()))
    && List.length weight_ladder > 1
    && Analysis.Memo.enabled ()
  then
    ignore
      (Par.map
         (fun weights ->
           Obs.unrecorded (fun () ->
               try
                 (* The warm-up shares the run's budget: a deadline or a
                    cancellation also stops speculative exploration, and
                    budget-partial outcomes are never cached, so the
                    authoritative pass cannot be poisoned by them. *)
                 ignore
                   (Strategy.allocate ~weights ?connection_model ?max_states
                      ~budget app arch)
               with _ -> ()))
         weight_ladder);
  let rec go rung attempts = function
    | [] ->
        Obs.Counter.add "flow.exhausted" 1;
        { allocation = None; attempts = List.rev attempts }
    | weights :: rest -> (
        let outcome =
          Obs.Span.with_ "flow.attempt" (fun () ->
              Strategy.allocate ~weights ?connection_model ?max_states ~budget
                app arch)
        in
        record_attempt app rung weights outcome;
        let attempts = { weights; outcome } :: attempts in
        match outcome with
        | Ok alloc ->
            Obs.Counter.add "flow.allocated" 1;
            { allocation = Some alloc; attempts = List.rev attempts }
        | Error (Strategy.Budget_exhausted _) ->
            (* Degrade to the next rung: with an absolute deadline the
               remaining rungs fail fast, so an exploding rung cannot kill
               the whole ladder. *)
            Obs.Counter.add "budget.rung_aborts" 1;
            go (rung + 1) attempts rest
        | Error _ -> go (rung + 1) attempts rest)
  in
  go 0 [] weight_ladder
