module Sdfg = Sdf.Sdfg
module Rat = Sdf.Rat
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph

type result = { throughput : Rat.t; period : int; transient : int; states : int }

type partial = {
  reason : Budget.reason;
  explored : int;
  time_reached : int;
  upper_bound : Rat.t;
  provably_dead : bool;
}

exception Deadlocked
exception State_space_exceeded of int

let idle = max_int

(* Completion time of a firing of [tau] work started at absolute time [t] on
   a wheel of size [w] whose slice occupies phases [0, omega): work advances
   only inside the slice. Closed form — no per-time-unit stepping. *)
let tdma_finish ~t ~tau ~w ~omega =
  if tau = 0 then t
  else if omega >= w then t + tau
  else if omega <= 0 then raise Deadlocked
  else begin
    let phase = t mod w in
    if phase < omega && tau <= omega - phase then t + tau
    else begin
      (* Work remaining at the start of the next slice. *)
      let slice_start, remaining =
        if phase < omega then (t + (omega - phase) + (w - omega), tau - (omega - phase))
        else (t + (w - phase), tau)
      in
      slice_start + (((remaining - 1) / omega) * w) + ((remaining - 1) mod omega) + 1
    end
  end

let validate (ba : Bind_aware.t) ~schedules =
  let g = ba.Bind_aware.graph in
  let arch = ba.Bind_aware.arch in
  let nt = Archgraph.num_tiles arch in
  let n = Sdfg.num_actors g in
  if Array.length schedules <> nt then
    invalid_arg "Constrained.analyze: schedules length mismatch";
  Array.iteri
    (fun t sched ->
      match sched with
      | None -> ()
      | Some s ->
          let check a =
            if a < 0 || a >= n || ba.Bind_aware.tile_of.(a) <> t then
              invalid_arg
                (Printf.sprintf
                   "Constrained.analyze: schedule of tile %d lists actor %d \
                    not bound to it"
                   t a)
          in
          Array.iter check s.Schedule.prefix;
          Array.iter check s.Schedule.period;
          if (Archgraph.tile arch t).Tile.wheel <= 0 then
            invalid_arg "Constrained.analyze: scheduled tile has no wheel")
    schedules

let norm_offsets (arch : Archgraph.t) nt offsets =
  match offsets with
  | None -> Array.make nt 0
  | Some o ->
      if Array.length o <> nt then
        invalid_arg "Constrained.analyze: offsets length mismatch";
      Array.map2
        (fun off (tile : Tile.t) ->
          if tile.Tile.wheel = 0 then 0
          else ((off mod tile.Tile.wheel) + tile.Tile.wheel) mod tile.Tile.wheel)
        o (Archgraph.tiles arch)

(* The pre-engine exploration (sorted completion lists, Marshal snapshots
   into a string-keyed Hashtbl), retained for the differential oracle and
   the exploration microbenchmark; the packed engine below must agree with
   it exactly. *)
let analyze_reference ?observer ?offsets ?(max_states = 500_000)
    (ba : Bind_aware.t) ~schedules =
  validate ba ~schedules;
  let g = ba.Bind_aware.graph in
  let arch = ba.Bind_aware.arch in
  let nt = Archgraph.num_tiles arch in
  let n = Sdfg.num_actors g in
  let offsets = norm_offsets arch nt offsets in
  let output_actor = ba.Bind_aware.app.Appmodel.Appgraph.output_actor in
  let ops = Engine.Ops.of_graph g in
  let unbound =
    Array.to_list (Array.init n Fun.id)
    |> List.filter (fun a -> ba.Bind_aware.tile_of.(a) < 0)
  in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let pending = Array.make n [] in
  (* absolute completion times, ascending *)
  let tile_busy = Array.make nt idle in
  let tile_cur = Array.make nt (-1) in
  (* Wake-up time for a tile whose scheduled actor is enabled but whose
     wheel phase is outside the slice: the firing starts (and consumes its
     tokens) only when the slice begins. Derived from the rest of the state,
     so it is not part of the recurrence key. *)
  let tile_wake = Array.make nt idle in
  let sched_pos = Array.make nt 0 in
  let time = ref 0 in
  let out_count = ref 0 in
  let count_start a =
    (match observer with Some f -> f !time a | None -> ());
    if a = output_actor then incr out_count
  in
  let start_fixpoint () =
    let guard = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun a ->
          while Engine.Ops.enabled ops tokens a do
            changed := true;
            incr guard;
            if !guard > 10_000_000 then
              invalid_arg "Constrained.analyze: zero-time livelock";
            Engine.Ops.consume ops tokens a;
            count_start a;
            let tau = ba.Bind_aware.exec_times.(a) in
            if tau = 0 then Engine.Ops.produce ops tokens a
            else pending.(a) <- Engine.Ops.insert_sorted (!time + tau) pending.(a)
          done)
        unbound;
      Array.iteri
        (fun t sched ->
          match sched with
          | None -> ()
          | Some s ->
              if tile_busy.(t) = idle then begin
                tile_wake.(t) <- idle;
                let a = Schedule.actor_at s sched_pos.(t) in
                if Engine.Ops.enabled ops tokens a then begin
                  let tile = Archgraph.tile arch t in
                  let w = tile.Tile.wheel and omega = ba.Bind_aware.slices.(t) in
                  let phase = (!time + offsets.(t)) mod w in
                  if omega < w && phase >= omega then
                    (* Outside the slice: postpone the start (paper: the
                       firing is postponed; Fig. 5(c) boxes). *)
                    tile_wake.(t) <- !time + (w - phase)
                  else begin
                    changed := true;
                    Engine.Ops.consume ops tokens a;
                    count_start a;
                    let fin =
                      (* Gate in the tile's shifted time frame. *)
                      tdma_finish
                        ~t:(!time + offsets.(t))
                        ~tau:ba.Bind_aware.exec_times.(a) ~w ~omega
                      - offsets.(t)
                    in
                    if fin = !time then Engine.Ops.produce ops tokens a
                    else begin
                      tile_busy.(t) <- fin;
                      tile_cur.(t) <- a
                    end;
                    sched_pos.(t) <- Schedule.advance s sched_pos.(t)
                  end
                end
              end)
        schedules
    done
  in
  let snapshot () =
    let rel = Array.map (List.map (fun c -> c - !time)) pending in
    let busy_rel =
      Array.map (fun c -> if c = idle then -1 else c - !time) tile_busy
    in
    (* The wheel phase matters only where gating can stall work: a tile
       whose slice covers the whole wheel (or hosting nothing) evolves
       phase-independently, and keying on its phase would only delay the
       recurrence (by up to a factor w). *)
    let phases =
      Array.mapi
        (fun t sched ->
          match sched with
          | None -> 0
          | Some _ ->
              let w = (Archgraph.tile arch t).Tile.wheel in
              if ba.Bind_aware.slices.(t) >= w then 0
              else (!time + offsets.(t)) mod w)
        schedules
    in
    Marshal.to_string
      ( Array.copy tokens,
        rel,
        busy_rel,
        Array.copy tile_cur,
        Array.copy sched_pos,
        phases )
      [ Marshal.No_sharing ]
  in
  let seen : (string, int * int) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore () =
    start_fixpoint ();
    let key = snapshot () in
    match Hashtbl.find_opt seen key with
    | Some (t0, out0) ->
        let period = !time - t0 in
        let fired = !out_count - out0 in
        {
          throughput = Rat.make fired period;
          period;
          transient = t0;
          states = Hashtbl.length seen;
        }
    | None ->
        if Hashtbl.length seen >= max_states then
          raise (State_space_exceeded max_states);
        Hashtbl.add seen key (!time, !out_count);
        let next =
          Array.fold_left
            (fun acc l -> match l with [] -> acc | c :: _ -> min acc c)
            (min
               (Array.fold_left min idle tile_busy)
               (Array.fold_left min idle tile_wake))
            pending
        in
        if next = idle then raise Deadlocked;
        time := next;
        Array.iteri
          (fun t c ->
            if c = !time then begin
              Engine.Ops.produce ops tokens tile_cur.(t);
              tile_busy.(t) <- idle;
              tile_cur.(t) <- -1
            end)
          tile_busy;
        Array.iteri
          (fun a l ->
            let rec settle = function
              | c :: rest when c = !time ->
                  Engine.Ops.produce ops tokens a;
                  settle rest
              | l -> l
            in
            pending.(a) <- settle l)
          pending;
        explore ()
  in
  explore ()

(* The packed engine: the recurrence state (token counts, per-actor rings
   of time-relative completions, per-tile busy/current/schedule-position/
   wheel-phase words) streams through one reusable {!Engine.Pack} writer
   into an open-addressing {!Engine.Stateset} whose two payload words hold
   the visit time and the output-firing count. Fields with a static
   per-graph bound (schedule positions, wheel phases) are packed at a
   fixed per-tile byte width; the unbounded ones are varints. Unbound
   (connection/sync) actor completions live in {!Engine.Rings}: they are
   FIFO per actor (fixed execution time), and a bound actor's TDMA
   completions are monotone per tile (one firing at a time), tracked in
   [tile_busy]. *)
(* Minimum time a firing of actor [a] can occupy it: the raw execution
   time for unbound (connection/sync) actors, the TDMA-gated completion
   time of a phase-0 start for bound ones (starting at the top of the
   slice maximises first-slice progress, so any other start phase only
   takes longer). An actor whose slice can never finish its work gets a
   huge-but-finite sentinel: the cycle bound then degrades towards 0
   instead of needing an "infinite duration" representation. *)
let min_duration (ba : Bind_aware.t) a =
  let tau = ba.Bind_aware.exec_times.(a) in
  let t = ba.Bind_aware.tile_of.(a) in
  if t < 0 || tau = 0 then tau
  else begin
    let w = (Archgraph.tile ba.Bind_aware.arch t).Tile.wheel in
    let omega = ba.Bind_aware.slices.(t) in
    if omega >= w then tau
    else if omega <= 0 then 1 lsl 40
    else tdma_finish ~t:0 ~tau ~w ~omega
  end

let analyze_raw ?observer ?offsets ?(max_states = 500_000) ~budget
    (ba : Bind_aware.t) ~schedules =
  validate ba ~schedules;
  let g = ba.Bind_aware.graph in
  let arch = ba.Bind_aware.arch in
  let nt = Archgraph.num_tiles arch in
  let n = Sdfg.num_actors g in
  let nc = Sdfg.num_channels g in
  let offsets = norm_offsets arch nt offsets in
  let output_actor = ba.Bind_aware.app.Appmodel.Appgraph.output_actor in
  let ops = Engine.Ops.of_graph g in
  let unbound =
    Array.of_list
      (List.filter
         (fun a -> ba.Bind_aware.tile_of.(a) < 0)
         (List.init n Fun.id))
  in
  let tokens = Array.map (fun c -> c.Sdfg.tokens) (Sdfg.channels g) in
  let pending = Engine.Rings.create n in
  let tile_busy = Array.make nt idle in
  let tile_cur = Array.make nt (-1) in
  (* Wake-up times are derived from the rest of the state, so they are not
     part of the recurrence key (see the reference engine). *)
  let tile_wake = Array.make nt idle in
  let sched_pos = Array.make nt 0 in
  (* Static per-tile bounds for the fixed-width fields. *)
  let pos_width =
    Array.map
      (function
        | None -> 1
        | Some s ->
            Engine.Pack.width_for
              (Array.length s.Schedule.prefix + Array.length s.Schedule.period))
      schedules
  in
  let phase_width =
    Array.init nt (fun t ->
        Engine.Pack.width_for (Archgraph.tile arch t).Tile.wheel)
  in
  let cur_width = Engine.Pack.width_for n in
  let time = ref 0 in
  let out_count = ref 0 in
  let fired = ref 0 in
  let count_start a =
    (match observer with Some f -> f !time a | None -> ());
    incr fired;
    if a = output_actor then incr out_count
  in
  let start_fixpoint () =
    let guard = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun a ->
          while Engine.Ops.enabled ops tokens a do
            changed := true;
            incr guard;
            if !guard > 10_000_000 then
              invalid_arg "Constrained.analyze: zero-time livelock";
            Engine.Ops.consume ops tokens a;
            count_start a;
            let tau = ba.Bind_aware.exec_times.(a) in
            if tau = 0 then Engine.Ops.produce ops tokens a
            else Engine.Rings.push pending a (!time + tau)
          done)
        unbound;
      Array.iteri
        (fun t sched ->
          match sched with
          | None -> ()
          | Some s ->
              if tile_busy.(t) = idle then begin
                tile_wake.(t) <- idle;
                let a = Schedule.actor_at s sched_pos.(t) in
                if Engine.Ops.enabled ops tokens a then begin
                  let tile = Archgraph.tile arch t in
                  let w = tile.Tile.wheel and omega = ba.Bind_aware.slices.(t) in
                  let phase = (!time + offsets.(t)) mod w in
                  if omega < w && phase >= omega then
                    tile_wake.(t) <- !time + (w - phase)
                  else begin
                    changed := true;
                    Engine.Ops.consume ops tokens a;
                    count_start a;
                    let fin =
                      tdma_finish
                        ~t:(!time + offsets.(t))
                        ~tau:ba.Bind_aware.exec_times.(a) ~w ~omega
                      - offsets.(t)
                    in
                    if fin = !time then Engine.Ops.produce ops tokens a
                    else begin
                      tile_busy.(t) <- fin;
                      tile_cur.(t) <- a
                    end;
                    sched_pos.(t) <- Schedule.advance s sched_pos.(t)
                  end
                end
              end)
        schedules
    done
  in
  let ex = Engine.Explore.create () in
  let pack = Engine.Explore.pack ex in
  let pack_rel c = Engine.Pack.add_uint pack (c - !time) in
  let pack_state () =
    for ci = 0 to nc - 1 do
      Engine.Pack.add_uint pack tokens.(ci)
    done;
    for a = 0 to n - 1 do
      Engine.Pack.add_uint pack (Engine.Rings.length pending a);
      Engine.Rings.iter pending a pack_rel
    done;
    for t = 0 to nt - 1 do
      (* Busy completions are strictly in the future, so 0 is free as the
         idle sentinel of this relative encoding. *)
      Engine.Pack.add_uint pack
        (if tile_busy.(t) = idle then 0 else tile_busy.(t) - !time);
      Engine.Pack.add_fixed pack ~width:cur_width (tile_cur.(t) + 1);
      Engine.Pack.add_fixed pack ~width:pos_width.(t) sched_pos.(t);
      let phase =
        match schedules.(t) with
        | None -> 0
        | Some _ ->
            let w = (Archgraph.tile arch t).Tile.wheel in
            if ba.Bind_aware.slices.(t) >= w then 0
            else (!time + offsets.(t)) mod w
      in
      Engine.Pack.add_fixed pack ~width:phase_width.(t) phase
    done
  in
  (* Telemetry: recorded once per run (never inside the exploration loop),
     so disabled telemetry costs one branch per analysis. *)
  let record_metrics r =
    if Obs.enabled () then begin
      Obs.Counter.add "constrained.runs" 1;
      Obs.Counter.add "constrained.states" r.states;
      Obs.Counter.add "constrained.transient" r.transient;
      Obs.Counter.add "constrained.period" r.period;
      Obs.Counter.add "constrained.firings" !fired;
      Engine.Explore.record_gauges (Engine.Explore.stats ex)
    end;
    r
  in
  let produce_completed a = Engine.Ops.produce ops tokens a in
  let advance () =
    let next = ref (Engine.Rings.min_head pending) in
    for t = 0 to nt - 1 do
      if tile_busy.(t) < !next then next := tile_busy.(t);
      if tile_wake.(t) < !next then next := tile_wake.(t)
    done;
    let next = !next in
    if next = idle then false
    else begin
      time := next;
      for t = 0 to nt - 1 do
        if tile_busy.(t) = next then begin
          Engine.Ops.produce ops tokens tile_cur.(t);
          tile_busy.(t) <- idle;
          tile_cur.(t) <- -1
        end
      done;
      Engine.Rings.pop_due pending ~now:next produce_completed;
      true
    end
  in
  let rel =
    Engine.Explore.
      {
        fire = start_fixpoint;
        encode = pack_state;
        payload0 = (fun () -> !time);
        payload1 = (fun () -> !out_count);
        advance;
      }
  in
  match Engine.Explore.run ex ~max_states ~budget rel with
  | Engine.Explore.Recurred { p0 = t0; p1 = out0 } ->
      let period = !time - t0 in
      let fired = !out_count - out0 in
      Ok
        (record_metrics
           {
             throughput = Rat.make fired period;
             period;
             transient = t0;
             states = Engine.Explore.length ex;
           })
  | Engine.Explore.Deadlocked ->
      Obs.Counter.add "constrained.deadlocks" 1;
      raise Deadlocked
  | Engine.Explore.Cap_exceeded ->
      Obs.Counter.add "constrained.cap_aborts" 1;
      (* Both the configured cap and the states actually stored: tooling
         sizing a retry needs the real exploration depth, not just the
         limit it was given. *)
      if Obs.enabled () then
        Obs.Event.emit "constrained.abort"
          [
            ("cap", Obs.Event.Int max_states);
            ("states", Obs.Event.Int (Engine.Explore.length ex));
          ];
      raise (State_space_exceeded max_states)
  | Engine.Explore.Budget_stop reason ->
      if Obs.enabled () then begin
        Obs.Counter.add "budget.partials" 1;
        Obs.Counter.add ("budget." ^ Budget.reason_label reason) 1
      end;
      Obs.Trace.instant "budget.trip"
        ~args:
          [
            ("reason", Obs.Event.String (Budget.reason_label reason));
            ("states", Obs.Event.Int (Engine.Explore.length ex));
          ];
      (* Anytime bound: every firing occupies its actor for at least its
         TDMA-inflated minimum duration, and static-order serialization can
         only slow things further, so the self-timed cycle bound over these
         durations dominates the constrained throughput. *)
      let gamma = Sdf.Repetition.vector_exn g in
      let iter_ub =
        Analysis.Selftimed.cycle_upper_bound ~durations:(min_duration ba) g
      in
      let out_dead = min_duration ba output_actor >= 1 lsl 40 in
      let provably_dead = Rat.equal iter_ub Rat.zero || out_dead in
      let upper_bound =
        if provably_dead then Rat.zero
        else if Rat.is_infinite iter_ub then Rat.infinity
        else Rat.mul_int iter_ub gamma.(output_actor)
      in
      Error
        {
          reason;
          explored = Engine.Explore.length ex;
          time_reached = !time;
          upper_bound;
          provably_dead;
        }

let analyze_uncached ?observer ?offsets ?max_states ba ~schedules =
  match
    analyze_raw ?observer ?offsets ?max_states ~budget:Budget.infinite ba
      ~schedules
  with
  | Ok r -> r
  | Error _ -> assert false (* an infinite budget is never exhausted *)

(* Everything the constrained execution depends on, by structure rather
   than by name: the binding-aware graph (endpoints, rates, tokens), the
   execution times, the binding (tile_of), the TDMA configuration (wheel
   and slice per tile, offsets), the static-order schedules, the output
   actor and the state cap. Names are excluded on purpose so identical
   applications bound identically (multi-app workloads with copies) share
   entries. Encoded with the engine's packer: counts up front and one
   varint per field, so equal keys decode to equal inputs. *)
let cache_key ?offsets ?(max_states = 500_000) (ba : Bind_aware.t) ~schedules =
  let g = ba.Bind_aware.graph in
  let p = Engine.Pack.create ~initial:256 () in
  Engine.Pack.add_uint p (Sdfg.num_actors g);
  Engine.Pack.add_uint p (Sdfg.num_channels g);
  Array.iter
    (fun c ->
      Engine.Pack.add_uint p c.Sdfg.src;
      Engine.Pack.add_uint p c.Sdfg.dst;
      Engine.Pack.add_uint p c.Sdfg.prod;
      Engine.Pack.add_uint p c.Sdfg.cons;
      Engine.Pack.add_uint p c.Sdfg.tokens)
    (Sdfg.channels g);
  Array.iter (fun tau -> Engine.Pack.add_int p tau) ba.Bind_aware.exec_times;
  Array.iter (fun t -> Engine.Pack.add_int p t) ba.Bind_aware.tile_of;
  Array.iter
    (fun (t : Tile.t) -> Engine.Pack.add_uint p t.Tile.wheel)
    (Archgraph.tiles ba.Bind_aware.arch);
  Array.iter (fun s -> Engine.Pack.add_int p s) ba.Bind_aware.slices;
  Engine.Pack.add_uint p ba.Bind_aware.app.Appmodel.Appgraph.output_actor;
  Engine.Pack.add_uint p (Array.length schedules);
  Array.iter
    (fun sched ->
      match sched with
      | None -> Engine.Pack.add_byte p 0
      | Some s ->
          Engine.Pack.add_byte p 1;
          Engine.Pack.add_uint p (Array.length s.Schedule.prefix);
          Array.iter (fun a -> Engine.Pack.add_uint p a) s.Schedule.prefix;
          Engine.Pack.add_uint p (Array.length s.Schedule.period);
          Array.iter (fun a -> Engine.Pack.add_uint p a) s.Schedule.period)
    schedules;
  (match offsets with
  | None -> Engine.Pack.add_byte p 0
  | Some o ->
      Engine.Pack.add_byte p 1;
      Engine.Pack.add_uint p (Array.length o);
      Array.iter (fun v -> Engine.Pack.add_int p v) o);
  Engine.Pack.add_uint p max_states;
  Engine.Pack.contents p

type outcome = Res of result | Dead | Exceeded of int

let cache : outcome Analysis.Memo.t = Analysis.Memo.create ~name:"constrained" ()

let analyze ?observer ?offsets ?max_states (ba : Bind_aware.t) ~schedules =
  match observer with
  | Some _ ->
      (* Observers replay the firing sequence; a cached result cannot. *)
      analyze_uncached ?observer ?offsets ?max_states ba ~schedules
  | None -> (
      let key = cache_key ?offsets ?max_states ba ~schedules in
      let outcome =
        Analysis.Memo.find_or_compute cache ~key (fun () ->
            (* Invalid_argument (caller bugs) propagates uncached; the
               analysis outcomes — including the negative ones — are
               cached and replayed. *)
            match analyze_uncached ?offsets ?max_states ba ~schedules with
            | r -> Res r
            | exception Deadlocked -> Dead
            | exception State_space_exceeded n -> Exceeded n)
      in
      match outcome with
      | Res r -> r
      | Dead -> raise Deadlocked
      | Exceeded n -> raise (State_space_exceeded n))

let analyze_budgeted ?observer ?offsets ?max_states ~budget (ba : Bind_aware.t)
    ~schedules =
  match observer with
  | Some _ -> analyze_raw ?observer ?offsets ?max_states ~budget ba ~schedules
  | None -> (
      validate ba ~schedules;
      let key = cache_key ?offsets ?max_states ba ~schedules in
      (* Completed outcomes answer from the cache without spending budget;
         only completed outcomes are stored — a partial result reflects
         this run's budget, not the configuration, and must never poison
         the cache. *)
      match Analysis.Memo.find cache ~key with
      | Some (Res r) -> Ok r
      | Some Dead -> raise Deadlocked
      | Some (Exceeded n) -> raise (State_space_exceeded n)
      | None -> (
          match analyze_raw ?offsets ?max_states ~budget ba ~schedules with
          | Ok r as ok ->
              Analysis.Memo.add cache ~key (Res r);
              ok
          | Error _ as partial -> partial
          | exception Deadlocked ->
              Analysis.Memo.add cache ~key Dead;
              raise Deadlocked
          | exception State_space_exceeded n ->
              Analysis.Memo.add cache ~key (Exceeded n);
              raise (State_space_exceeded n)))

let throughput_or_zero ?max_states ?(budget = Budget.infinite) ?on_budget_stop
    ba ~schedules =
  if Budget.is_infinite budget then
    match analyze ?max_states ba ~schedules with
    | r -> r.throughput
    | exception Deadlocked -> Rat.zero
    | exception State_space_exceeded _ -> Rat.zero
  else
    (* A partial outcome proves nothing about the configuration, and the
       slice search must only accept allocations whose throughput is
       certain: treat it as 0, like the other negative outcomes — but
       report it through [on_budget_stop] so the caller can attribute a
       subsequent failure to the budget rather than to infeasibility. *)
    match analyze_budgeted ?max_states ~budget ba ~schedules with
    | Ok r -> r.throughput
    | Error p ->
        (match on_budget_stop with Some f -> f p.reason | None -> ());
        Rat.zero
    | exception Deadlocked -> Rat.zero
    | exception State_space_exceeded _ -> Rat.zero
