module Rat = Sdf.Rat
module Tile = Platform.Tile
module Archgraph = Platform.Archgraph
module Appgraph = Appmodel.Appgraph

let log_src = Logs.Src.create "sdfalloc.slices" ~doc:"TDMA slice allocation"

module Log = (val Logs.src_log log_src)

type outcome = { slices : int array; throughput : Rat.t; checks : int }

(* Wall-clock cost of one throughput probe (bind-aware build plus its
   constrained exploration): the distribution, not just the mean, is what
   explains a stalled rung — one blown-up probe dominates a search. *)
let probe_hist = Obs.Histogram.make "slice_alloc.probe_s"

type failure = {
  max_throughput : Rat.t;
  checks : int;
  budget_tripped : Budget.reason option;
}

let allocate ?connection_model ?max_states ?budget app arch binding schedules =
  let nt = Archgraph.num_tiles arch in
  let used = Array.make nt false in
  Array.iter (fun t -> if t >= 0 then used.(t) <- true) binding;
  let avail t = Tile.available_wheel (Archgraph.tile arch t) in
  let checks = ref 0 in
  let tripped = ref None in
  let throughput slices =
    incr checks;
    let thr =
      Obs.Histogram.time probe_hist (fun () ->
          let ba =
            Bind_aware.build ?connection_model ~app ~arch ~binding ~slices ()
          in
          Constrained.throughput_or_zero ?max_states ?budget
            ~on_budget_stop:(fun r -> if !tripped = None then tripped := Some r)
            ba ~schedules)
    in
    Log.debug (fun m ->
        m "probe #%d slices [%s] -> %s" !checks
          (String.concat ";" (Array.to_list (Array.map string_of_int slices)))
          (Rat.to_string thr));
    thr
  in
  let lambda = app.Appgraph.lambda in
  (* 10% above the constraint: lambda * 11/10. *)
  let close_enough thr = Rat.compare thr (Rat.mul lambda (Rat.make 11 10)) <= 0 in
  let slices_for s =
    Array.init nt (fun t -> if used.(t) then min s (avail t) else 0)
  in
  let max_slice =
    Array.to_list (Array.init nt Fun.id)
    |> List.filter (fun t -> used.(t))
    |> List.fold_left (fun acc t -> max acc (avail t)) 0
  in
  let thr_max = throughput (slices_for max_slice) in
  if Rat.compare thr_max lambda < 0 then
    Error { max_throughput = thr_max; checks = !checks; budget_tripped = !tripped }
  else begin
    (* Phase 1: smallest common slice meeting lambda, early-exit at 10%. *)
    let best = ref max_slice in
    let best_thr = ref thr_max in
    (if not (close_enough thr_max) then begin
       let lo = ref 1 and hi = ref (max_slice - 1) in
       let early = ref false in
       while (not !early) && !lo <= !hi do
         let mid = (!lo + !hi) / 2 in
         let thr = throughput (slices_for mid) in
         if Rat.compare thr lambda >= 0 then begin
           best := mid;
           best_thr := thr;
           if close_enough thr then early := true else hi := mid - 1
         end
         else lo := mid + 1
       done
     end);
    let slices = slices_for !best in
    let thr = ref !best_thr in
    (* Phase 2: shrink per-tile slices towards their relative load. *)
    let lp t = Cost.processing_load app arch binding t in
    let max_lp =
      Array.to_list (Array.init nt Fun.id)
      |> List.filter (fun t -> used.(t))
      |> List.fold_left (fun acc t -> Float.max acc (lp t)) 0.
    in
    for t = 0 to nt - 1 do
      if used.(t) && slices.(t) > 1 then begin
        let lower =
          if max_lp <= 0. then 1
          else
            Stdlib.max 1
              (int_of_float (Float.of_int slices.(t) *. lp t /. max_lp))
        in
        let lo = ref lower and hi = ref slices.(t) in
        (* Invariant: slices with slices.(t) = !hi are feasible. *)
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          let saved = slices.(t) in
          slices.(t) <- mid;
          let probe = throughput slices in
          if Rat.compare probe lambda >= 0 then begin
            hi := mid;
            thr := probe
          end
          else begin
            slices.(t) <- saved;
            lo := mid + 1
          end
        done;
        slices.(t) <- !hi
      end
    done;
    Ok { slices; throughput = !thr; checks = !checks }
  end
