module Tile = Platform.Tile
module Appgraph = Appmodel.Appgraph
module Archgraph = Platform.Archgraph

type failure_policy = Stop_at_first_failure | Skip_failed

type order = As_given | By_total_work_descending | By_total_work_ascending

type report = {
  allocations : Strategy.allocation list;
  rejected : Appgraph.t list;
  remaining : Archgraph.t;
  first_failure : Strategy.failure option;
  wheel_used : int;
  memory_used : int;
  connections_used : int;
  bw_in_used : int;
  bw_out_used : int;
}

let commit arch (alloc : Strategy.allocation) =
  let usage = Binding.usage alloc.Strategy.app arch alloc.Strategy.binding in
  let tiles =
    Array.mapi
      (fun t tile ->
        let u = usage.(t) in
        let omega = alloc.Strategy.slices.(t) in
        {
          tile with
          Tile.occupied = tile.Tile.occupied + omega;
          mem = tile.Tile.mem - u.Binding.memory;
          max_conns = tile.Tile.max_conns - u.Binding.conns;
          in_bw = tile.Tile.in_bw - u.Binding.bw_in;
          out_bw = tile.Tile.out_bw - u.Binding.bw_out;
        })
      (Archgraph.tiles arch)
  in
  Archgraph.with_tiles arch tiles

let reorder order apps =
  match order with
  | As_given -> apps
  | By_total_work_descending ->
      List.stable_sort
        (fun a b -> compare (Appgraph.total_work b) (Appgraph.total_work a))
        apps
  | By_total_work_ascending ->
      List.stable_sort
        (fun a b -> compare (Appgraph.total_work a) (Appgraph.total_work b))
        apps

let allocate_until_failure ?weights ?retry_ladder ?max_states ?budget
    ?(policy = Stop_at_first_failure) ?(order = As_given) apps arch =
  let apps = reorder order apps in
  let original = Archgraph.tiles arch in
  let attempt app arch =
    (* Route the single-setting case through the retry wrapper as a
       one-rung ladder: behaviourally identical to a direct
       [Strategy.allocate], but every path emits the per-rung
       "flow.attempt" telemetry records. *)
    let ladder =
      match retry_ladder with
      | Some l -> l
      | None -> [ Option.value weights ~default:Strategy.default_weights ]
    in
    let r =
      Flow.allocate_with_retry ~weight_ladder:ladder ?max_states ?budget app
        arch
    in
    match r.Flow.allocation with
    | Some alloc -> Ok alloc
    | None -> (
        match List.rev r.Flow.attempts with
        | last :: _ -> last.Flow.outcome
        | [] -> assert false)
  in
  (* Speculative parallel warm-up: try every application against the
     initial architecture concurrently, telemetry suppressed, outcomes
     discarded. Sequential resource commitment is a true dependency chain
     (each allocation shrinks the architecture the next one sees), so the
     authoritative pass below stays sequential and bit-identical to a
     [--jobs 1] run; the warm-up merely fills the analysis memo tables —
     fully for the first application, partially for later ones whose
     bindings survive the resource reductions. *)
  if
    Par.jobs () > 1
    && (not (Par.inside_task ()))
    && List.length apps > 1
    && Analysis.Memo.enabled ()
  then
    ignore
      (Par.map
         (fun app ->
           Obs.unrecorded (fun () -> try ignore (attempt app arch) with _ -> ()))
         apps);
  let rec go acc rejected failure arch = function
    | [] -> (List.rev acc, List.rev rejected, arch, failure)
    | app :: rest -> (
        match attempt app arch with
        | Ok alloc -> go (alloc :: acc) rejected failure (commit arch alloc) rest
        | Error f -> (
            let failure = if failure = None then Some f else failure in
            match policy with
            | Stop_at_first_failure -> (List.rev acc, List.rev rejected, arch, failure)
            | Skip_failed -> go acc (app :: rejected) failure arch rest))
  in
  let allocations, rejected, remaining, first_failure = go [] [] None arch apps in
  let sum f =
    Array.to_list (Archgraph.tiles remaining)
    |> List.mapi (fun i t -> f original.(i) t)
    |> List.fold_left ( + ) 0
  in
  {
    allocations;
    rejected;
    remaining;
    first_failure;
    wheel_used = sum (fun o t -> t.Tile.occupied - o.Tile.occupied);
    memory_used = sum (fun o t -> o.Tile.mem - t.Tile.mem);
    connections_used = sum (fun o t -> o.Tile.max_conns - t.Tile.max_conns);
    bw_in_used = sum (fun o t -> o.Tile.in_bw - t.Tile.in_bw);
    bw_out_used = sum (fun o t -> o.Tile.out_bw - t.Tile.out_bw);
  }
