module Rat = Sdf.Rat

(** TDMA time-slice allocation (paper Section 9.3).

    Phase 1 binary-searches one common slice size for all tiles that host
    actors (bounds: 1 time unit to the entire remaining wheel), probing the
    throughput of the binding-aware SDFG constrained by the schedules and
    the candidate slices. The search stops as soon as a slice allocation
    whose throughput is within 10% above the constraint is found (the
    paper's early-exit rule), or when the interval closes on the minimal
    feasible slice. It fails when even the entire remaining wheels are
    insufficient.

    Phase 2 exploits load imbalance: per tile, a second binary search
    shrinks the slice between [floor (l_p t * omega / max_t' l_p t')] and
    the phase-1 slice, keeping the throughput constraint satisfied. *)

type outcome = {
  slices : int array;  (** omega per tile (0 for unused tiles) *)
  throughput : Rat.t;  (** with the final slices *)
  checks : int;  (** number of throughput computations performed *)
}

type failure = {
  max_throughput : Rat.t;
      (** throughput with the entire remaining wheels allocated *)
  checks : int;
  budget_tripped : Budget.reason option;
      (** [Some _] when at least one probe was cut by the budget — the
          failure is then inconclusive, not a proof of infeasibility *)
}

val allocate :
  ?connection_model:Bind_aware.connection_model ->
  ?max_states:int ->
  ?budget:Budget.t ->
  Appmodel.Appgraph.t ->
  Platform.Archgraph.t ->
  Binding.t ->
  Schedule.t option array ->
  (outcome, failure) result
(** [allocate app arch binding schedules]. The schedules must order exactly
    the actors bound to each tile (from {!List_scheduler.schedules}).
    Under a finite [budget], every throughput probe runs budgeted and a
    budget-exhausted probe counts as throughput 0 (see
    {!Constrained.throughput_or_zero}); [failure.budget_tripped] records
    whether that happened, so the caller can distinguish "infeasible"
    from "ran out". *)
